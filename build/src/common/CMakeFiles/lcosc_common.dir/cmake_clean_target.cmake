file(REMOVE_RECURSE
  "liblcosc_common.a"
)
