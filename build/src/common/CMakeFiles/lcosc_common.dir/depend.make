# Empty dependencies file for lcosc_common.
# This may be replaced when dependencies are built.
