file(REMOVE_RECURSE
  "CMakeFiles/lcosc_common.dir/error.cpp.o"
  "CMakeFiles/lcosc_common.dir/error.cpp.o.d"
  "CMakeFiles/lcosc_common.dir/logging.cpp.o"
  "CMakeFiles/lcosc_common.dir/logging.cpp.o.d"
  "CMakeFiles/lcosc_common.dir/random.cpp.o"
  "CMakeFiles/lcosc_common.dir/random.cpp.o.d"
  "CMakeFiles/lcosc_common.dir/si_format.cpp.o"
  "CMakeFiles/lcosc_common.dir/si_format.cpp.o.d"
  "CMakeFiles/lcosc_common.dir/statistics.cpp.o"
  "CMakeFiles/lcosc_common.dir/statistics.cpp.o.d"
  "CMakeFiles/lcosc_common.dir/table_printer.cpp.o"
  "CMakeFiles/lcosc_common.dir/table_printer.cpp.o.d"
  "liblcosc_common.a"
  "liblcosc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
