# Empty compiler generated dependencies file for lcosc_safety.
# This may be replaced when dependencies are built.
