file(REMOVE_RECURSE
  "liblcosc_safety.a"
)
