
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/asymmetry_detector.cpp" "src/safety/CMakeFiles/lcosc_safety.dir/asymmetry_detector.cpp.o" "gcc" "src/safety/CMakeFiles/lcosc_safety.dir/asymmetry_detector.cpp.o.d"
  "/root/repo/src/safety/frequency_monitor.cpp" "src/safety/CMakeFiles/lcosc_safety.dir/frequency_monitor.cpp.o" "gcc" "src/safety/CMakeFiles/lcosc_safety.dir/frequency_monitor.cpp.o.d"
  "/root/repo/src/safety/low_amplitude_detector.cpp" "src/safety/CMakeFiles/lcosc_safety.dir/low_amplitude_detector.cpp.o" "gcc" "src/safety/CMakeFiles/lcosc_safety.dir/low_amplitude_detector.cpp.o.d"
  "/root/repo/src/safety/oscillation_watchdog.cpp" "src/safety/CMakeFiles/lcosc_safety.dir/oscillation_watchdog.cpp.o" "gcc" "src/safety/CMakeFiles/lcosc_safety.dir/oscillation_watchdog.cpp.o.d"
  "/root/repo/src/safety/safety_controller.cpp" "src/safety/CMakeFiles/lcosc_safety.dir/safety_controller.cpp.o" "gcc" "src/safety/CMakeFiles/lcosc_safety.dir/safety_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lcosc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/regulation/CMakeFiles/lcosc_regulation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
