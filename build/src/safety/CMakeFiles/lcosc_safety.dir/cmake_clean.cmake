file(REMOVE_RECURSE
  "CMakeFiles/lcosc_safety.dir/asymmetry_detector.cpp.o"
  "CMakeFiles/lcosc_safety.dir/asymmetry_detector.cpp.o.d"
  "CMakeFiles/lcosc_safety.dir/frequency_monitor.cpp.o"
  "CMakeFiles/lcosc_safety.dir/frequency_monitor.cpp.o.d"
  "CMakeFiles/lcosc_safety.dir/low_amplitude_detector.cpp.o"
  "CMakeFiles/lcosc_safety.dir/low_amplitude_detector.cpp.o.d"
  "CMakeFiles/lcosc_safety.dir/oscillation_watchdog.cpp.o"
  "CMakeFiles/lcosc_safety.dir/oscillation_watchdog.cpp.o.d"
  "CMakeFiles/lcosc_safety.dir/safety_controller.cpp.o"
  "CMakeFiles/lcosc_safety.dir/safety_controller.cpp.o.d"
  "liblcosc_safety.a"
  "liblcosc_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
