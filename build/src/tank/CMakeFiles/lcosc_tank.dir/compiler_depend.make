# Empty compiler generated dependencies file for lcosc_tank.
# This may be replaced when dependencies are built.
