file(REMOVE_RECURSE
  "liblcosc_tank.a"
)
