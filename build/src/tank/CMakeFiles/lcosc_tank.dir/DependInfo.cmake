
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tank/coupled_tanks.cpp" "src/tank/CMakeFiles/lcosc_tank.dir/coupled_tanks.cpp.o" "gcc" "src/tank/CMakeFiles/lcosc_tank.dir/coupled_tanks.cpp.o.d"
  "/root/repo/src/tank/inductance_matrix.cpp" "src/tank/CMakeFiles/lcosc_tank.dir/inductance_matrix.cpp.o" "gcc" "src/tank/CMakeFiles/lcosc_tank.dir/inductance_matrix.cpp.o.d"
  "/root/repo/src/tank/rlc_tank.cpp" "src/tank/CMakeFiles/lcosc_tank.dir/rlc_tank.cpp.o" "gcc" "src/tank/CMakeFiles/lcosc_tank.dir/rlc_tank.cpp.o.d"
  "/root/repo/src/tank/tank_faults.cpp" "src/tank/CMakeFiles/lcosc_tank.dir/tank_faults.cpp.o" "gcc" "src/tank/CMakeFiles/lcosc_tank.dir/tank_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
