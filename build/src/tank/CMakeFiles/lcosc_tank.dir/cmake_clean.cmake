file(REMOVE_RECURSE
  "CMakeFiles/lcosc_tank.dir/coupled_tanks.cpp.o"
  "CMakeFiles/lcosc_tank.dir/coupled_tanks.cpp.o.d"
  "CMakeFiles/lcosc_tank.dir/inductance_matrix.cpp.o"
  "CMakeFiles/lcosc_tank.dir/inductance_matrix.cpp.o.d"
  "CMakeFiles/lcosc_tank.dir/rlc_tank.cpp.o"
  "CMakeFiles/lcosc_tank.dir/rlc_tank.cpp.o.d"
  "CMakeFiles/lcosc_tank.dir/tank_faults.cpp.o"
  "CMakeFiles/lcosc_tank.dir/tank_faults.cpp.o.d"
  "liblcosc_tank.a"
  "liblcosc_tank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_tank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
