file(REMOVE_RECURSE
  "CMakeFiles/lcosc_spice.dir/ac_solver.cpp.o"
  "CMakeFiles/lcosc_spice.dir/ac_solver.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/circuit.cpp.o"
  "CMakeFiles/lcosc_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/dc_solver.cpp.o"
  "CMakeFiles/lcosc_spice.dir/dc_solver.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/diode.cpp.o"
  "CMakeFiles/lcosc_spice.dir/diode.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/element.cpp.o"
  "CMakeFiles/lcosc_spice.dir/element.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/elements_linear.cpp.o"
  "CMakeFiles/lcosc_spice.dir/elements_linear.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/mosfet.cpp.o"
  "CMakeFiles/lcosc_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/mutual_coupling.cpp.o"
  "CMakeFiles/lcosc_spice.dir/mutual_coupling.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/netlist_parser.cpp.o"
  "CMakeFiles/lcosc_spice.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/sweep.cpp.o"
  "CMakeFiles/lcosc_spice.dir/sweep.cpp.o.d"
  "CMakeFiles/lcosc_spice.dir/transient_solver.cpp.o"
  "CMakeFiles/lcosc_spice.dir/transient_solver.cpp.o.d"
  "liblcosc_spice.a"
  "liblcosc_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
