file(REMOVE_RECURSE
  "liblcosc_spice.a"
)
