
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac_solver.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/ac_solver.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/ac_solver.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/dc_solver.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/dc_solver.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/dc_solver.cpp.o.d"
  "/root/repo/src/spice/diode.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/diode.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/diode.cpp.o.d"
  "/root/repo/src/spice/element.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/element.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/element.cpp.o.d"
  "/root/repo/src/spice/elements_linear.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/elements_linear.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/elements_linear.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/mosfet.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/mosfet.cpp.o.d"
  "/root/repo/src/spice/mutual_coupling.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/mutual_coupling.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/mutual_coupling.cpp.o.d"
  "/root/repo/src/spice/netlist_parser.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/netlist_parser.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/spice/sweep.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/sweep.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/sweep.cpp.o.d"
  "/root/repo/src/spice/transient_solver.cpp" "src/spice/CMakeFiles/lcosc_spice.dir/transient_solver.cpp.o" "gcc" "src/spice/CMakeFiles/lcosc_spice.dir/transient_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/lcosc_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
