# Empty compiler generated dependencies file for lcosc_spice.
# This may be replaced when dependencies are built.
