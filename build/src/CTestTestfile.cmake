# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("numeric")
subdirs("waveform")
subdirs("spice")
subdirs("devices")
subdirs("dac")
subdirs("tank")
subdirs("driver")
subdirs("regulation")
subdirs("safety")
subdirs("system")
subdirs("core")
