# Empty compiler generated dependencies file for lcosc_driver.
# This may be replaced when dependencies are built.
