file(REMOVE_RECURSE
  "liblcosc_driver.a"
)
