
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/gm_stage.cpp" "src/driver/CMakeFiles/lcosc_driver.dir/gm_stage.cpp.o" "gcc" "src/driver/CMakeFiles/lcosc_driver.dir/gm_stage.cpp.o.d"
  "/root/repo/src/driver/oscillator_driver.cpp" "src/driver/CMakeFiles/lcosc_driver.dir/oscillator_driver.cpp.o" "gcc" "src/driver/CMakeFiles/lcosc_driver.dir/oscillator_driver.cpp.o.d"
  "/root/repo/src/driver/output_stage.cpp" "src/driver/CMakeFiles/lcosc_driver.dir/output_stage.cpp.o" "gcc" "src/driver/CMakeFiles/lcosc_driver.dir/output_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/lcosc_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/tank/CMakeFiles/lcosc_tank.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lcosc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/lcosc_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
