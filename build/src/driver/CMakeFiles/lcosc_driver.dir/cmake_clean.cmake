file(REMOVE_RECURSE
  "CMakeFiles/lcosc_driver.dir/gm_stage.cpp.o"
  "CMakeFiles/lcosc_driver.dir/gm_stage.cpp.o.d"
  "CMakeFiles/lcosc_driver.dir/oscillator_driver.cpp.o"
  "CMakeFiles/lcosc_driver.dir/oscillator_driver.cpp.o.d"
  "CMakeFiles/lcosc_driver.dir/output_stage.cpp.o"
  "CMakeFiles/lcosc_driver.dir/output_stage.cpp.o.d"
  "liblcosc_driver.a"
  "liblcosc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
