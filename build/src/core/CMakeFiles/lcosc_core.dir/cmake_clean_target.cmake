file(REMOVE_RECURSE
  "liblcosc_core.a"
)
