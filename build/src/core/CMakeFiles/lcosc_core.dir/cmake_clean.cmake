file(REMOVE_RECURSE
  "CMakeFiles/lcosc_core.dir/lc_oscillator.cpp.o"
  "CMakeFiles/lcosc_core.dir/lc_oscillator.cpp.o.d"
  "liblcosc_core.a"
  "liblcosc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
