# Empty dependencies file for lcosc_core.
# This may be replaced when dependencies are built.
