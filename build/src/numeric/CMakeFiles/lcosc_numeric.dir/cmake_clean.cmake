file(REMOVE_RECURSE
  "CMakeFiles/lcosc_numeric.dir/complex_lu.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/complex_lu.cpp.o.d"
  "CMakeFiles/lcosc_numeric.dir/interpolate.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/interpolate.cpp.o.d"
  "CMakeFiles/lcosc_numeric.dir/lu.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/lu.cpp.o.d"
  "CMakeFiles/lcosc_numeric.dir/matrix.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/lcosc_numeric.dir/newton.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/newton.cpp.o.d"
  "CMakeFiles/lcosc_numeric.dir/ode.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/ode.cpp.o.d"
  "CMakeFiles/lcosc_numeric.dir/roots.cpp.o"
  "CMakeFiles/lcosc_numeric.dir/roots.cpp.o.d"
  "liblcosc_numeric.a"
  "liblcosc_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
