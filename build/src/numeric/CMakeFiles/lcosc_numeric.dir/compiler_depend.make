# Empty compiler generated dependencies file for lcosc_numeric.
# This may be replaced when dependencies are built.
