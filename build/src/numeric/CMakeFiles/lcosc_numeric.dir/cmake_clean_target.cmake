file(REMOVE_RECURSE
  "liblcosc_numeric.a"
)
