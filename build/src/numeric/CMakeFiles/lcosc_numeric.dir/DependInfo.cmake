
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/complex_lu.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/complex_lu.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/complex_lu.cpp.o.d"
  "/root/repo/src/numeric/interpolate.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/interpolate.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/interpolate.cpp.o.d"
  "/root/repo/src/numeric/lu.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/lu.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/lu.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/matrix.cpp.o.d"
  "/root/repo/src/numeric/newton.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/newton.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/newton.cpp.o.d"
  "/root/repo/src/numeric/ode.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/ode.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/ode.cpp.o.d"
  "/root/repo/src/numeric/roots.cpp" "src/numeric/CMakeFiles/lcosc_numeric.dir/roots.cpp.o" "gcc" "src/numeric/CMakeFiles/lcosc_numeric.dir/roots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
