# Empty compiler generated dependencies file for lcosc_regulation.
# This may be replaced when dependencies are built.
