
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regulation/amplitude_detector.cpp" "src/regulation/CMakeFiles/lcosc_regulation.dir/amplitude_detector.cpp.o" "gcc" "src/regulation/CMakeFiles/lcosc_regulation.dir/amplitude_detector.cpp.o.d"
  "/root/repo/src/regulation/regulation_fsm.cpp" "src/regulation/CMakeFiles/lcosc_regulation.dir/regulation_fsm.cpp.o" "gcc" "src/regulation/CMakeFiles/lcosc_regulation.dir/regulation_fsm.cpp.o.d"
  "/root/repo/src/regulation/startup_sequencer.cpp" "src/regulation/CMakeFiles/lcosc_regulation.dir/startup_sequencer.cpp.o" "gcc" "src/regulation/CMakeFiles/lcosc_regulation.dir/startup_sequencer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lcosc_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
