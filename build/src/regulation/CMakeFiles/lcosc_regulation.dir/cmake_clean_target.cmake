file(REMOVE_RECURSE
  "liblcosc_regulation.a"
)
