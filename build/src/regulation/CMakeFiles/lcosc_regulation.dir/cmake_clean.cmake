file(REMOVE_RECURSE
  "CMakeFiles/lcosc_regulation.dir/amplitude_detector.cpp.o"
  "CMakeFiles/lcosc_regulation.dir/amplitude_detector.cpp.o.d"
  "CMakeFiles/lcosc_regulation.dir/regulation_fsm.cpp.o"
  "CMakeFiles/lcosc_regulation.dir/regulation_fsm.cpp.o.d"
  "CMakeFiles/lcosc_regulation.dir/startup_sequencer.cpp.o"
  "CMakeFiles/lcosc_regulation.dir/startup_sequencer.cpp.o.d"
  "liblcosc_regulation.a"
  "liblcosc_regulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_regulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
