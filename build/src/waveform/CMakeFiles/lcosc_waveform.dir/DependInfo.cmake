
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/waveform/csv_io.cpp" "src/waveform/CMakeFiles/lcosc_waveform.dir/csv_io.cpp.o" "gcc" "src/waveform/CMakeFiles/lcosc_waveform.dir/csv_io.cpp.o.d"
  "/root/repo/src/waveform/measurements.cpp" "src/waveform/CMakeFiles/lcosc_waveform.dir/measurements.cpp.o" "gcc" "src/waveform/CMakeFiles/lcosc_waveform.dir/measurements.cpp.o.d"
  "/root/repo/src/waveform/spectrum.cpp" "src/waveform/CMakeFiles/lcosc_waveform.dir/spectrum.cpp.o" "gcc" "src/waveform/CMakeFiles/lcosc_waveform.dir/spectrum.cpp.o.d"
  "/root/repo/src/waveform/svg_plot.cpp" "src/waveform/CMakeFiles/lcosc_waveform.dir/svg_plot.cpp.o" "gcc" "src/waveform/CMakeFiles/lcosc_waveform.dir/svg_plot.cpp.o.d"
  "/root/repo/src/waveform/trace.cpp" "src/waveform/CMakeFiles/lcosc_waveform.dir/trace.cpp.o" "gcc" "src/waveform/CMakeFiles/lcosc_waveform.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
