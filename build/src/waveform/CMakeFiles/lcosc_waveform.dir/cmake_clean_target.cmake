file(REMOVE_RECURSE
  "liblcosc_waveform.a"
)
