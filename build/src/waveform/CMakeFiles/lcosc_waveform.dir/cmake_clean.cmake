file(REMOVE_RECURSE
  "CMakeFiles/lcosc_waveform.dir/csv_io.cpp.o"
  "CMakeFiles/lcosc_waveform.dir/csv_io.cpp.o.d"
  "CMakeFiles/lcosc_waveform.dir/measurements.cpp.o"
  "CMakeFiles/lcosc_waveform.dir/measurements.cpp.o.d"
  "CMakeFiles/lcosc_waveform.dir/spectrum.cpp.o"
  "CMakeFiles/lcosc_waveform.dir/spectrum.cpp.o.d"
  "CMakeFiles/lcosc_waveform.dir/svg_plot.cpp.o"
  "CMakeFiles/lcosc_waveform.dir/svg_plot.cpp.o.d"
  "CMakeFiles/lcosc_waveform.dir/trace.cpp.o"
  "CMakeFiles/lcosc_waveform.dir/trace.cpp.o.d"
  "liblcosc_waveform.a"
  "liblcosc_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
