# Empty dependencies file for lcosc_waveform.
# This may be replaced when dependencies are built.
