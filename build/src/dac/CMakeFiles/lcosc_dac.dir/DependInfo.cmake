
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dac/control_code.cpp" "src/dac/CMakeFiles/lcosc_dac.dir/control_code.cpp.o" "gcc" "src/dac/CMakeFiles/lcosc_dac.dir/control_code.cpp.o.d"
  "/root/repo/src/dac/current_mirror.cpp" "src/dac/CMakeFiles/lcosc_dac.dir/current_mirror.cpp.o" "gcc" "src/dac/CMakeFiles/lcosc_dac.dir/current_mirror.cpp.o.d"
  "/root/repo/src/dac/dac_variants.cpp" "src/dac/CMakeFiles/lcosc_dac.dir/dac_variants.cpp.o" "gcc" "src/dac/CMakeFiles/lcosc_dac.dir/dac_variants.cpp.o.d"
  "/root/repo/src/dac/exponential_dac.cpp" "src/dac/CMakeFiles/lcosc_dac.dir/exponential_dac.cpp.o" "gcc" "src/dac/CMakeFiles/lcosc_dac.dir/exponential_dac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
