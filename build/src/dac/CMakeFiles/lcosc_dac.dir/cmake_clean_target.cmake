file(REMOVE_RECURSE
  "liblcosc_dac.a"
)
