file(REMOVE_RECURSE
  "CMakeFiles/lcosc_dac.dir/control_code.cpp.o"
  "CMakeFiles/lcosc_dac.dir/control_code.cpp.o.d"
  "CMakeFiles/lcosc_dac.dir/current_mirror.cpp.o"
  "CMakeFiles/lcosc_dac.dir/current_mirror.cpp.o.d"
  "CMakeFiles/lcosc_dac.dir/dac_variants.cpp.o"
  "CMakeFiles/lcosc_dac.dir/dac_variants.cpp.o.d"
  "CMakeFiles/lcosc_dac.dir/exponential_dac.cpp.o"
  "CMakeFiles/lcosc_dac.dir/exponential_dac.cpp.o.d"
  "liblcosc_dac.a"
  "liblcosc_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
