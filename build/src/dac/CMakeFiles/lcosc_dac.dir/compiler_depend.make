# Empty compiler generated dependencies file for lcosc_dac.
# This may be replaced when dependencies are built.
