file(REMOVE_RECURSE
  "liblcosc_system.a"
)
