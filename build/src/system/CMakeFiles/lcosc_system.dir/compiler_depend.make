# Empty compiler generated dependencies file for lcosc_system.
# This may be replaced when dependencies are built.
