file(REMOVE_RECURSE
  "CMakeFiles/lcosc_system.dir/dual_system.cpp.o"
  "CMakeFiles/lcosc_system.dir/dual_system.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/envelope_simulator.cpp.o"
  "CMakeFiles/lcosc_system.dir/envelope_simulator.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/fmea_campaign.cpp.o"
  "CMakeFiles/lcosc_system.dir/fmea_campaign.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/magnetic_sensor.cpp.o"
  "CMakeFiles/lcosc_system.dir/magnetic_sensor.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/oscillator_system.cpp.o"
  "CMakeFiles/lcosc_system.dir/oscillator_system.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/position_sensor.cpp.o"
  "CMakeFiles/lcosc_system.dir/position_sensor.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/receiver.cpp.o"
  "CMakeFiles/lcosc_system.dir/receiver.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/sensor_system.cpp.o"
  "CMakeFiles/lcosc_system.dir/sensor_system.cpp.o.d"
  "CMakeFiles/lcosc_system.dir/tolerance_analysis.cpp.o"
  "CMakeFiles/lcosc_system.dir/tolerance_analysis.cpp.o.d"
  "liblcosc_system.a"
  "liblcosc_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
