
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/system/dual_system.cpp" "src/system/CMakeFiles/lcosc_system.dir/dual_system.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/dual_system.cpp.o.d"
  "/root/repo/src/system/envelope_simulator.cpp" "src/system/CMakeFiles/lcosc_system.dir/envelope_simulator.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/envelope_simulator.cpp.o.d"
  "/root/repo/src/system/fmea_campaign.cpp" "src/system/CMakeFiles/lcosc_system.dir/fmea_campaign.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/fmea_campaign.cpp.o.d"
  "/root/repo/src/system/magnetic_sensor.cpp" "src/system/CMakeFiles/lcosc_system.dir/magnetic_sensor.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/magnetic_sensor.cpp.o.d"
  "/root/repo/src/system/oscillator_system.cpp" "src/system/CMakeFiles/lcosc_system.dir/oscillator_system.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/oscillator_system.cpp.o.d"
  "/root/repo/src/system/position_sensor.cpp" "src/system/CMakeFiles/lcosc_system.dir/position_sensor.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/position_sensor.cpp.o.d"
  "/root/repo/src/system/receiver.cpp" "src/system/CMakeFiles/lcosc_system.dir/receiver.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/receiver.cpp.o.d"
  "/root/repo/src/system/sensor_system.cpp" "src/system/CMakeFiles/lcosc_system.dir/sensor_system.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/sensor_system.cpp.o.d"
  "/root/repo/src/system/tolerance_analysis.cpp" "src/system/CMakeFiles/lcosc_system.dir/tolerance_analysis.cpp.o" "gcc" "src/system/CMakeFiles/lcosc_system.dir/tolerance_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/lcosc_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/tank/CMakeFiles/lcosc_tank.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/lcosc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/regulation/CMakeFiles/lcosc_regulation.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/lcosc_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/lcosc_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lcosc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lcosc_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
