file(REMOVE_RECURSE
  "liblcosc_devices.a"
)
