file(REMOVE_RECURSE
  "CMakeFiles/lcosc_devices.dir/bandgap.cpp.o"
  "CMakeFiles/lcosc_devices.dir/bandgap.cpp.o.d"
  "CMakeFiles/lcosc_devices.dir/charge_pump.cpp.o"
  "CMakeFiles/lcosc_devices.dir/charge_pump.cpp.o.d"
  "CMakeFiles/lcosc_devices.dir/comparator.cpp.o"
  "CMakeFiles/lcosc_devices.dir/comparator.cpp.o.d"
  "CMakeFiles/lcosc_devices.dir/lowpass.cpp.o"
  "CMakeFiles/lcosc_devices.dir/lowpass.cpp.o.d"
  "CMakeFiles/lcosc_devices.dir/rectifier.cpp.o"
  "CMakeFiles/lcosc_devices.dir/rectifier.cpp.o.d"
  "CMakeFiles/lcosc_devices.dir/vref_buffer.cpp.o"
  "CMakeFiles/lcosc_devices.dir/vref_buffer.cpp.o.d"
  "liblcosc_devices.a"
  "liblcosc_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcosc_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
