# Empty dependencies file for lcosc_devices.
# This may be replaced when dependencies are built.
