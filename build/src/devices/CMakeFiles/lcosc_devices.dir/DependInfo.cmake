
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/bandgap.cpp" "src/devices/CMakeFiles/lcosc_devices.dir/bandgap.cpp.o" "gcc" "src/devices/CMakeFiles/lcosc_devices.dir/bandgap.cpp.o.d"
  "/root/repo/src/devices/charge_pump.cpp" "src/devices/CMakeFiles/lcosc_devices.dir/charge_pump.cpp.o" "gcc" "src/devices/CMakeFiles/lcosc_devices.dir/charge_pump.cpp.o.d"
  "/root/repo/src/devices/comparator.cpp" "src/devices/CMakeFiles/lcosc_devices.dir/comparator.cpp.o" "gcc" "src/devices/CMakeFiles/lcosc_devices.dir/comparator.cpp.o.d"
  "/root/repo/src/devices/lowpass.cpp" "src/devices/CMakeFiles/lcosc_devices.dir/lowpass.cpp.o" "gcc" "src/devices/CMakeFiles/lcosc_devices.dir/lowpass.cpp.o.d"
  "/root/repo/src/devices/rectifier.cpp" "src/devices/CMakeFiles/lcosc_devices.dir/rectifier.cpp.o" "gcc" "src/devices/CMakeFiles/lcosc_devices.dir/rectifier.cpp.o.d"
  "/root/repo/src/devices/vref_buffer.cpp" "src/devices/CMakeFiles/lcosc_devices.dir/vref_buffer.cpp.o" "gcc" "src/devices/CMakeFiles/lcosc_devices.dir/vref_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
