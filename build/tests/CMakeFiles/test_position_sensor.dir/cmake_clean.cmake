file(REMOVE_RECURSE
  "CMakeFiles/test_position_sensor.dir/test_position_sensor.cpp.o"
  "CMakeFiles/test_position_sensor.dir/test_position_sensor.cpp.o.d"
  "test_position_sensor"
  "test_position_sensor.pdb"
  "test_position_sensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_position_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
