# Empty dependencies file for test_position_sensor.
# This may be replaced when dependencies are built.
