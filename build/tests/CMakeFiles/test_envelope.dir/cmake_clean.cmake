file(REMOVE_RECURSE
  "CMakeFiles/test_envelope.dir/test_envelope.cpp.o"
  "CMakeFiles/test_envelope.dir/test_envelope.cpp.o.d"
  "test_envelope"
  "test_envelope.pdb"
  "test_envelope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
