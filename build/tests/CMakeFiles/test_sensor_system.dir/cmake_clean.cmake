file(REMOVE_RECURSE
  "CMakeFiles/test_sensor_system.dir/test_sensor_system.cpp.o"
  "CMakeFiles/test_sensor_system.dir/test_sensor_system.cpp.o.d"
  "test_sensor_system"
  "test_sensor_system.pdb"
  "test_sensor_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
