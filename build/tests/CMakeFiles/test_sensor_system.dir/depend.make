# Empty dependencies file for test_sensor_system.
# This may be replaced when dependencies are built.
