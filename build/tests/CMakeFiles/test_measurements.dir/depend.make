# Empty dependencies file for test_measurements.
# This may be replaced when dependencies are built.
