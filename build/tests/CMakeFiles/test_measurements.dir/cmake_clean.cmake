file(REMOVE_RECURSE
  "CMakeFiles/test_measurements.dir/test_measurements.cpp.o"
  "CMakeFiles/test_measurements.dir/test_measurements.cpp.o.d"
  "test_measurements"
  "test_measurements.pdb"
  "test_measurements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
