file(REMOVE_RECURSE
  "CMakeFiles/test_dual_system.dir/test_dual_system.cpp.o"
  "CMakeFiles/test_dual_system.dir/test_dual_system.cpp.o.d"
  "test_dual_system"
  "test_dual_system.pdb"
  "test_dual_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
