# Empty dependencies file for test_dual_system.
# This may be replaced when dependencies are built.
