# Empty compiler generated dependencies file for test_gm_stage.
# This may be replaced when dependencies are built.
