file(REMOVE_RECURSE
  "CMakeFiles/test_gm_stage.dir/test_gm_stage.cpp.o"
  "CMakeFiles/test_gm_stage.dir/test_gm_stage.cpp.o.d"
  "test_gm_stage"
  "test_gm_stage.pdb"
  "test_gm_stage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gm_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
