file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_monitor.dir/test_frequency_monitor.cpp.o"
  "CMakeFiles/test_frequency_monitor.dir/test_frequency_monitor.cpp.o.d"
  "test_frequency_monitor"
  "test_frequency_monitor.pdb"
  "test_frequency_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
