# Empty dependencies file for test_frequency_monitor.
# This may be replaced when dependencies are built.
