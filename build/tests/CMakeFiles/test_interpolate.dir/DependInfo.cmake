
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_interpolate.cpp" "tests/CMakeFiles/test_interpolate.dir/test_interpolate.cpp.o" "gcc" "tests/CMakeFiles/test_interpolate.dir/test_interpolate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcosc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/lcosc_system.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/lcosc_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/regulation/CMakeFiles/lcosc_regulation.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/lcosc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/tank/CMakeFiles/lcosc_tank.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/lcosc_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lcosc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lcosc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/lcosc_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lcosc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lcosc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
