file(REMOVE_RECURSE
  "CMakeFiles/test_newton.dir/test_newton.cpp.o"
  "CMakeFiles/test_newton.dir/test_newton.cpp.o.d"
  "test_newton"
  "test_newton.pdb"
  "test_newton[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_newton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
