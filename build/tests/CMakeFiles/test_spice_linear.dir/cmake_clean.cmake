file(REMOVE_RECURSE
  "CMakeFiles/test_spice_linear.dir/test_spice_linear.cpp.o"
  "CMakeFiles/test_spice_linear.dir/test_spice_linear.cpp.o.d"
  "test_spice_linear"
  "test_spice_linear.pdb"
  "test_spice_linear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
