file(REMOVE_RECURSE
  "CMakeFiles/test_dac_coding.dir/test_dac_coding.cpp.o"
  "CMakeFiles/test_dac_coding.dir/test_dac_coding.cpp.o.d"
  "test_dac_coding"
  "test_dac_coding.pdb"
  "test_dac_coding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dac_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
