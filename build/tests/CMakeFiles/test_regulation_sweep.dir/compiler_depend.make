# Empty compiler generated dependencies file for test_regulation_sweep.
# This may be replaced when dependencies are built.
