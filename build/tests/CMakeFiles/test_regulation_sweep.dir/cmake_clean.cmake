file(REMOVE_RECURSE
  "CMakeFiles/test_regulation_sweep.dir/test_regulation_sweep.cpp.o"
  "CMakeFiles/test_regulation_sweep.dir/test_regulation_sweep.cpp.o.d"
  "test_regulation_sweep"
  "test_regulation_sweep.pdb"
  "test_regulation_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regulation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
