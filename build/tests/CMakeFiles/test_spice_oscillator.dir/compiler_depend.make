# Empty compiler generated dependencies file for test_spice_oscillator.
# This may be replaced when dependencies are built.
