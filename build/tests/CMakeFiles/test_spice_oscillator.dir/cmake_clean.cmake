file(REMOVE_RECURSE
  "CMakeFiles/test_spice_oscillator.dir/test_spice_oscillator.cpp.o"
  "CMakeFiles/test_spice_oscillator.dir/test_spice_oscillator.cpp.o.d"
  "test_spice_oscillator"
  "test_spice_oscillator.pdb"
  "test_spice_oscillator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
