# Empty dependencies file for test_oscillation_theory.
# This may be replaced when dependencies are built.
