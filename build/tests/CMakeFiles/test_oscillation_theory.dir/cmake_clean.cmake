file(REMOVE_RECURSE
  "CMakeFiles/test_oscillation_theory.dir/test_oscillation_theory.cpp.o"
  "CMakeFiles/test_oscillation_theory.dir/test_oscillation_theory.cpp.o.d"
  "test_oscillation_theory"
  "test_oscillation_theory.pdb"
  "test_oscillation_theory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oscillation_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
