file(REMOVE_RECURSE
  "CMakeFiles/test_magnetic_sensor.dir/test_magnetic_sensor.cpp.o"
  "CMakeFiles/test_magnetic_sensor.dir/test_magnetic_sensor.cpp.o.d"
  "test_magnetic_sensor"
  "test_magnetic_sensor.pdb"
  "test_magnetic_sensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_magnetic_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
