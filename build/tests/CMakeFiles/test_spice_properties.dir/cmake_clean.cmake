file(REMOVE_RECURSE
  "CMakeFiles/test_spice_properties.dir/test_spice_properties.cpp.o"
  "CMakeFiles/test_spice_properties.dir/test_spice_properties.cpp.o.d"
  "test_spice_properties"
  "test_spice_properties.pdb"
  "test_spice_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
