# Empty dependencies file for test_spice_properties.
# This may be replaced when dependencies are built.
