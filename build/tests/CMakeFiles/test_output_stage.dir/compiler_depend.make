# Empty compiler generated dependencies file for test_output_stage.
# This may be replaced when dependencies are built.
