file(REMOVE_RECURSE
  "CMakeFiles/test_output_stage.dir/test_output_stage.cpp.o"
  "CMakeFiles/test_output_stage.dir/test_output_stage.cpp.o.d"
  "test_output_stage"
  "test_output_stage.pdb"
  "test_output_stage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
