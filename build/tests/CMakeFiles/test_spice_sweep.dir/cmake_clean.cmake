file(REMOVE_RECURSE
  "CMakeFiles/test_spice_sweep.dir/test_spice_sweep.cpp.o"
  "CMakeFiles/test_spice_sweep.dir/test_spice_sweep.cpp.o.d"
  "test_spice_sweep"
  "test_spice_sweep.pdb"
  "test_spice_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
