# Empty compiler generated dependencies file for test_spice_sweep.
# This may be replaced when dependencies are built.
