file(REMOVE_RECURSE
  "CMakeFiles/test_startup_sequencer.dir/test_startup_sequencer.cpp.o"
  "CMakeFiles/test_startup_sequencer.dir/test_startup_sequencer.cpp.o.d"
  "test_startup_sequencer"
  "test_startup_sequencer.pdb"
  "test_startup_sequencer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_startup_sequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
