# Empty compiler generated dependencies file for test_dac_transfer.
# This may be replaced when dependencies are built.
