file(REMOVE_RECURSE
  "CMakeFiles/test_dac_transfer.dir/test_dac_transfer.cpp.o"
  "CMakeFiles/test_dac_transfer.dir/test_dac_transfer.cpp.o.d"
  "test_dac_transfer"
  "test_dac_transfer.pdb"
  "test_dac_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dac_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
