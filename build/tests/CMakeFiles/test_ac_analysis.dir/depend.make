# Empty dependencies file for test_ac_analysis.
# This may be replaced when dependencies are built.
