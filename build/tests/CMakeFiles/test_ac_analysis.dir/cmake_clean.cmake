file(REMOVE_RECURSE
  "CMakeFiles/test_ac_analysis.dir/test_ac_analysis.cpp.o"
  "CMakeFiles/test_ac_analysis.dir/test_ac_analysis.cpp.o.d"
  "test_ac_analysis"
  "test_ac_analysis.pdb"
  "test_ac_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ac_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
