file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_files.dir/test_netlist_files.cpp.o"
  "CMakeFiles/test_netlist_files.dir/test_netlist_files.cpp.o.d"
  "test_netlist_files"
  "test_netlist_files.pdb"
  "test_netlist_files[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
