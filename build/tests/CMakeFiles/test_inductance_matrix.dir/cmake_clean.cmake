file(REMOVE_RECURSE
  "CMakeFiles/test_inductance_matrix.dir/test_inductance_matrix.cpp.o"
  "CMakeFiles/test_inductance_matrix.dir/test_inductance_matrix.cpp.o.d"
  "test_inductance_matrix"
  "test_inductance_matrix.pdb"
  "test_inductance_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inductance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
