# Empty dependencies file for test_inductance_matrix.
# This may be replaced when dependencies are built.
