# Empty compiler generated dependencies file for test_current_mirror.
# This may be replaced when dependencies are built.
