file(REMOVE_RECURSE
  "CMakeFiles/test_current_mirror.dir/test_current_mirror.cpp.o"
  "CMakeFiles/test_current_mirror.dir/test_current_mirror.cpp.o.d"
  "test_current_mirror"
  "test_current_mirror.pdb"
  "test_current_mirror[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_current_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
