file(REMOVE_RECURSE
  "CMakeFiles/test_tolerance.dir/test_tolerance.cpp.o"
  "CMakeFiles/test_tolerance.dir/test_tolerance.cpp.o.d"
  "test_tolerance"
  "test_tolerance.pdb"
  "test_tolerance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
