file(REMOVE_RECURSE
  "CMakeFiles/test_tank.dir/test_tank.cpp.o"
  "CMakeFiles/test_tank.dir/test_tank.cpp.o.d"
  "test_tank"
  "test_tank.pdb"
  "test_tank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
