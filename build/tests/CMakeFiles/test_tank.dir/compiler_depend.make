# Empty compiler generated dependencies file for test_tank.
# This may be replaced when dependencies are built.
