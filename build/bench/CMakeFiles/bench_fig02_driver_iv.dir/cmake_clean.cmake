file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_driver_iv.dir/bench_fig02_driver_iv.cpp.o"
  "CMakeFiles/bench_fig02_driver_iv.dir/bench_fig02_driver_iv.cpp.o.d"
  "bench_fig02_driver_iv"
  "bench_fig02_driver_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_driver_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
