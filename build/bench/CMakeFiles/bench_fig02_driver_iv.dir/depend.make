# Empty dependencies file for bench_fig02_driver_iv.
# This may be replaced when dependencies are built.
