file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_unsupplied_current.dir/bench_fig17_unsupplied_current.cpp.o"
  "CMakeFiles/bench_fig17_unsupplied_current.dir/bench_fig17_unsupplied_current.cpp.o.d"
  "bench_fig17_unsupplied_current"
  "bench_fig17_unsupplied_current.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_unsupplied_current.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
