# Empty dependencies file for bench_fig17_unsupplied_current.
# This may be replaced when dependencies are built.
