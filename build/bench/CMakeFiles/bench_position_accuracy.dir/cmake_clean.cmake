file(REMOVE_RECURSE
  "CMakeFiles/bench_position_accuracy.dir/bench_position_accuracy.cpp.o"
  "CMakeFiles/bench_position_accuracy.dir/bench_position_accuracy.cpp.o.d"
  "bench_position_accuracy"
  "bench_position_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_position_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
