# Empty compiler generated dependencies file for bench_position_accuracy.
# This may be replaced when dependencies are built.
