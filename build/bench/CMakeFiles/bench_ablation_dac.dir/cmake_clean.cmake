file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dac.dir/bench_ablation_dac.cpp.o"
  "CMakeFiles/bench_ablation_dac.dir/bench_ablation_dac.cpp.o.d"
  "bench_ablation_dac"
  "bench_ablation_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
