# Empty compiler generated dependencies file for bench_ablation_dac.
# This may be replaced when dependencies are built.
