file(REMOVE_RECURSE
  "CMakeFiles/bench_temperature_drift.dir/bench_temperature_drift.cpp.o"
  "CMakeFiles/bench_temperature_drift.dir/bench_temperature_drift.cpp.o.d"
  "bench_temperature_drift"
  "bench_temperature_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temperature_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
