# Empty compiler generated dependencies file for bench_temperature_drift.
# This may be replaced when dependencies are built.
