file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_unsupplied_voltages.dir/bench_fig18_unsupplied_voltages.cpp.o"
  "CMakeFiles/bench_fig18_unsupplied_voltages.dir/bench_fig18_unsupplied_voltages.cpp.o.d"
  "bench_fig18_unsupplied_voltages"
  "bench_fig18_unsupplied_voltages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_unsupplied_voltages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
