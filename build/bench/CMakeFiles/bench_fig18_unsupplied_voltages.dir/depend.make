# Empty dependencies file for bench_fig18_unsupplied_voltages.
# This may be replaced when dependencies are built.
