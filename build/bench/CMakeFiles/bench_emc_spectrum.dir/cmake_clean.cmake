file(REMOVE_RECURSE
  "CMakeFiles/bench_emc_spectrum.dir/bench_emc_spectrum.cpp.o"
  "CMakeFiles/bench_emc_spectrum.dir/bench_emc_spectrum.cpp.o.d"
  "bench_emc_spectrum"
  "bench_emc_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emc_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
