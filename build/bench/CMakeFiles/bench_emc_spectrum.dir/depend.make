# Empty dependencies file for bench_emc_spectrum.
# This may be replaced when dependencies are built.
