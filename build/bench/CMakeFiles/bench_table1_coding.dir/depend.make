# Empty dependencies file for bench_table1_coding.
# This may be replaced when dependencies are built.
