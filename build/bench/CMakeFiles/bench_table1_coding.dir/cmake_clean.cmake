file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_coding.dir/bench_table1_coding.cpp.o"
  "CMakeFiles/bench_table1_coding.dir/bench_table1_coding.cpp.o.d"
  "bench_table1_coding"
  "bench_table1_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
