# Empty compiler generated dependencies file for bench_fig03_dac_transfer.
# This may be replaced when dependencies are built.
