file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_relative_step.dir/bench_fig04_relative_step.cpp.o"
  "CMakeFiles/bench_fig04_relative_step.dir/bench_fig04_relative_step.cpp.o.d"
  "bench_fig04_relative_step"
  "bench_fig04_relative_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_relative_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
