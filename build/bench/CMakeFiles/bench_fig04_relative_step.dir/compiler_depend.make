# Empty compiler generated dependencies file for bench_fig04_relative_step.
# This may be replaced when dependencies are built.
