file(REMOVE_RECURSE
  "CMakeFiles/bench_dual_redundancy.dir/bench_dual_redundancy.cpp.o"
  "CMakeFiles/bench_dual_redundancy.dir/bench_dual_redundancy.cpp.o.d"
  "bench_dual_redundancy"
  "bench_dual_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dual_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
