# Empty compiler generated dependencies file for bench_dual_redundancy.
# This may be replaced when dependencies are built.
