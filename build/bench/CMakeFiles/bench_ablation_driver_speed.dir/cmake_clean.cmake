file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_driver_speed.dir/bench_ablation_driver_speed.cpp.o"
  "CMakeFiles/bench_ablation_driver_speed.dir/bench_ablation_driver_speed.cpp.o.d"
  "bench_ablation_driver_speed"
  "bench_ablation_driver_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_driver_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
