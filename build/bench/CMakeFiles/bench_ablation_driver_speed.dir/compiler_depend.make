# Empty compiler generated dependencies file for bench_ablation_driver_speed.
# This may be replaced when dependencies are built.
