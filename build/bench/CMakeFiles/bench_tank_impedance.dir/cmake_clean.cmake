file(REMOVE_RECURSE
  "CMakeFiles/bench_tank_impedance.dir/bench_tank_impedance.cpp.o"
  "CMakeFiles/bench_tank_impedance.dir/bench_tank_impedance.cpp.o.d"
  "bench_tank_impedance"
  "bench_tank_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tank_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
