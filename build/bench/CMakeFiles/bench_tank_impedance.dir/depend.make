# Empty dependencies file for bench_tank_impedance.
# This may be replaced when dependencies are built.
