# Empty compiler generated dependencies file for bench_ablation_startup.
# This may be replaced when dependencies are built.
