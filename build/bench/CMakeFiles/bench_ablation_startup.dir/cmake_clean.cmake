file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_startup.dir/bench_ablation_startup.cpp.o"
  "CMakeFiles/bench_ablation_startup.dir/bench_ablation_startup.cpp.o.d"
  "bench_ablation_startup"
  "bench_ablation_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
