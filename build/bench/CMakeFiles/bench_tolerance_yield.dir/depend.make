# Empty dependencies file for bench_tolerance_yield.
# This may be replaced when dependencies are built.
