# Empty dependencies file for bench_fig15_regulation_steps.
# This may be replaced when dependencies are built.
