# Empty dependencies file for bench_fig16_startup.
# This may be replaced when dependencies are built.
