# Empty compiler generated dependencies file for bench_fig13_current_limitation.
# This may be replaced when dependencies are built.
