file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_current_limitation.dir/bench_fig13_current_limitation.cpp.o"
  "CMakeFiles/bench_fig13_current_limitation.dir/bench_fig13_current_limitation.cpp.o.d"
  "bench_fig13_current_limitation"
  "bench_fig13_current_limitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_current_limitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
