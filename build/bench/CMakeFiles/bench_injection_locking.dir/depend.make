# Empty dependencies file for bench_injection_locking.
# This may be replaced when dependencies are built.
