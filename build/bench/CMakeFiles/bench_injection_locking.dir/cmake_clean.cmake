file(REMOVE_RECURSE
  "CMakeFiles/bench_injection_locking.dir/bench_injection_locking.cpp.o"
  "CMakeFiles/bench_injection_locking.dir/bench_injection_locking.cpp.o.d"
  "bench_injection_locking"
  "bench_injection_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_injection_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
