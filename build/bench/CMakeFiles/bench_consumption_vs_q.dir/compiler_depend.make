# Empty compiler generated dependencies file for bench_consumption_vs_q.
# This may be replaced when dependencies are built.
