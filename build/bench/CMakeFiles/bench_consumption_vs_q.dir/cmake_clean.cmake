file(REMOVE_RECURSE
  "CMakeFiles/bench_consumption_vs_q.dir/bench_consumption_vs_q.cpp.o"
  "CMakeFiles/bench_consumption_vs_q.dir/bench_consumption_vs_q.cpp.o.d"
  "bench_consumption_vs_q"
  "bench_consumption_vs_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consumption_vs_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
