# Empty compiler generated dependencies file for bench_fig14_measured_step.
# This may be replaced when dependencies are built.
