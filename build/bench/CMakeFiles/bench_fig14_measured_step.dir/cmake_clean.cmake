file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_measured_step.dir/bench_fig14_measured_step.cpp.o"
  "CMakeFiles/bench_fig14_measured_step.dir/bench_fig14_measured_step.cpp.o.d"
  "bench_fig14_measured_step"
  "bench_fig14_measured_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_measured_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
