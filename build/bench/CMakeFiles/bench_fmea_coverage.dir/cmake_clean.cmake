file(REMOVE_RECURSE
  "CMakeFiles/bench_fmea_coverage.dir/bench_fmea_coverage.cpp.o"
  "CMakeFiles/bench_fmea_coverage.dir/bench_fmea_coverage.cpp.o.d"
  "bench_fmea_coverage"
  "bench_fmea_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fmea_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
