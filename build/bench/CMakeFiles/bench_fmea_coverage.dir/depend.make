# Empty dependencies file for bench_fmea_coverage.
# This may be replaced when dependencies are built.
