# Empty compiler generated dependencies file for regulation_tuning.
# This may be replaced when dependencies are built.
