file(REMOVE_RECURSE
  "CMakeFiles/regulation_tuning.dir/regulation_tuning.cpp.o"
  "CMakeFiles/regulation_tuning.dir/regulation_tuning.cpp.o.d"
  "regulation_tuning"
  "regulation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regulation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
