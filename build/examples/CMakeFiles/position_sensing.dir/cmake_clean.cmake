file(REMOVE_RECURSE
  "CMakeFiles/position_sensing.dir/position_sensing.cpp.o"
  "CMakeFiles/position_sensing.dir/position_sensing.cpp.o.d"
  "position_sensing"
  "position_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/position_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
