# Empty compiler generated dependencies file for position_sensing.
# This may be replaced when dependencies are built.
