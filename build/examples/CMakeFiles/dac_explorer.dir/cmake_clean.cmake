file(REMOVE_RECURSE
  "CMakeFiles/dac_explorer.dir/dac_explorer.cpp.o"
  "CMakeFiles/dac_explorer.dir/dac_explorer.cpp.o.d"
  "dac_explorer"
  "dac_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dac_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
