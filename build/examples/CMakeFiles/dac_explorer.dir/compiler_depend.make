# Empty compiler generated dependencies file for dac_explorer.
# This may be replaced when dependencies are built.
