# Empty compiler generated dependencies file for dual_redundant_demo.
# This may be replaced when dependencies are built.
