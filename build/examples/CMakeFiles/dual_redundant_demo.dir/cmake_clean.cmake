file(REMOVE_RECURSE
  "CMakeFiles/dual_redundant_demo.dir/dual_redundant_demo.cpp.o"
  "CMakeFiles/dual_redundant_demo.dir/dual_redundant_demo.cpp.o.d"
  "dual_redundant_demo"
  "dual_redundant_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_redundant_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
