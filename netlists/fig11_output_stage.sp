* Paper Fig. 11: bulk-switched output stage, unsupplied-chip testbench.
* Per-pin driver with the protection network (MP3 gate-cancel, MN3/MN5
* gate and bulk pulls into the shared switched p-well "nbulk"), plus the
* shared MP6/MP7/MN6 powered-bulk control.
* Sweep with:  netlist_runner fig11_output_stage.sp sweep Vdiff -3 3 61 lc1 lc2 vdd

.subckt pin11 lcx vdd nbulk
Mp1 lcx ng2 vdd vdd pmos wl=1000
Mn1 lcx ng1 0 nbulk nmos wl=400
Mp3 ng2 vdd lcx vdd pmos wl=10
Mn3 ng1 0 lcx nbulk nmos wl=10
Mn5 nbulk 0 lcx nbulk nmos wl=10
R1 ng2 vdd 200k
R2 ng1 0 200k
.ends

Vdiff lc1 lc2 0
Rleak1 lc1 0 1meg
Rleak2 lc2 0 1meg
Rrail vdd 0 2k

X1 lc1 vdd nbulk pin11
X2 lc2 vdd nbulk pin11

* Shared bulk control: powered -> MN6 shorts nbulk to ground.
Mp7 n7 n7 vdd vdd pmos wl=10
R7 n7 0 500k
Mp6 ng6 n7 vdd vdd pmos wl=10
R6 ng6 0 500k
Mn6 nbulk ng6 0 nbulk nmos wl=10
R3 nbulk 0 200k
.end
