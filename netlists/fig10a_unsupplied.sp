* Paper Fig. 10a: standard CMOS output stage, unsupplied-chip testbench.
* Both LC pin drivers, floating Vdd rail with the dead chip's rail load,
* differential drive across the pins, external 1M leakage for the common
* mode.  Sweep Vdiff with:  netlist_runner fig10a_unsupplied.sp sweep Vdiff -3 3 61 lc1 lc2 vdd

.subckt pin10a lcx vdd
Mp1 lcx ngp vdd vdd pmos wl=1000
Mn1 lcx ngn 0 0 nmos wl=400
Rgp ngp 0 200k
Rgn ngn 0 200k
.ends

Vdiff lc1 lc2 0
Rleak1 lc1 0 1meg
Rleak2 lc2 0 1meg
Rrail vdd 0 2k
X1 lc1 vdd pin10a
X2 lc2 vdd pin10a
.end
