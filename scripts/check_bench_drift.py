#!/usr/bin/env python3
"""Compare the telemetry.phases timings of two BENCH_campaigns.json files.

Usage:
    scripts/check_bench_drift.py BASELINE.json CANDIDATE.json [--threshold 0.25]

Every named phase present in both files is compared; the script fails
(exit 1) when any phase's wall time regressed by more than the threshold
(default 25 %).  Phases only present in one file are reported but never
fail the check (benches gain and lose phases across PRs).

Stdlib only -- safe to run on a bare CI image.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_phases(path: str) -> dict[str, float]:
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if not text.strip():
        sys.exit(
            f"error: {path} is empty -- the bench was killed before writing it "
            "(benches write atomically via temp+rename, so a zero-byte file "
            "predates this PR or was created by hand); re-run bench_perf_campaigns"
        )
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        sys.exit(
            f"error: {path} is not valid JSON ({err}) -- partial or corrupt "
            "bench artifact; re-run bench_perf_campaigns to regenerate it"
        )
    phases = doc.get("telemetry", {}).get("phases")
    if not isinstance(phases, dict) or not phases:
        sys.exit(
            f"error: {path} has no telemetry.phases section "
            "(re-run bench_perf_campaigns from this PR or newer)"
        )
    out: dict[str, float] = {}
    for name, value in phases.items():
        if not isinstance(value, (int, float)):
            sys.exit(f"error: {path}: phase {name!r} is not a number: {value!r}")
        out[name] = float(value)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="BENCH_campaigns.json of the reference run")
    parser.add_argument("candidate", help="BENCH_campaigns.json of the run under test")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed relative wall-time regression per phase (default 0.25)",
    )
    # Phases faster than this are dominated by timer noise on any host; a
    # ratio over a sub-millisecond baseline is meaningless.
    parser.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        help="ignore phases whose baseline is below this many ms (default 1.0)",
    )
    args = parser.parse_args()

    base = load_phases(args.baseline)
    cand = load_phases(args.candidate)

    # One-sided phases (benches gain and lose sections across PRs) are
    # reported but tolerated; zero overlap means the files do not describe
    # the same bench at all, which is a wiring error, not drift.
    if not set(base) & set(cand):
        sys.exit(
            f"error: {args.baseline} and {args.candidate} share no phase names; "
            "wrong baseline file?"
        )

    regressions = []
    width = max(len(n) for n in sorted(set(base) | set(cand)))
    print(f"{'phase':<{width}}  {'baseline':>10}  {'candidate':>10}  {'delta':>8}")
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>10}  {cand[name]:>8.2f}ms   (new)")
            continue
        if name not in cand:
            print(f"{name:<{width}}  {base[name]:>8.2f}ms  {'-':>10}   (removed)")
            continue
        b, c = base[name], cand[name]
        # The b <= 0 guard also protects the ratio when --min-ms is 0.
        if b <= 0.0 or b < args.min_ms:
            print(f"{name:<{width}}  {b:>8.2f}ms  {c:>8.2f}ms   (below --min-ms, skipped)")
            continue
        delta = (c - b) / b
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, b, c, delta))
        print(f"{name:<{width}}  {b:>8.2f}ms  {c:>8.2f}ms  {delta:>+7.1%}{marker}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} phase(s) regressed more than "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, b, c, delta in regressions:
            print(f"  {name}: {b:.2f}ms -> {c:.2f}ms ({delta:+.1%})", file=sys.stderr)
        return 1
    print(f"\nOK: no phase regressed more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
