#!/usr/bin/env python3
"""Schema-check the merged fleet telemetry artifacts (DESIGN.md §15).

Usage:
    scripts/validate_trace.py TRACE.json [--forensics FORENSICS.jsonl]
                              [--metrics METRICS.json]

Checks, per artifact:

  TRACE.json       a Chrome trace-event document: top-level object with a
                   "traceEvents" list; every event carries "ph" and
                   "pid"; process_name metadata names each pid; complete
                   ("X") events have a non-negative "dur"; and within
                   every pid the non-metadata timestamps are monotone
                   non-decreasing -- the invariant Perfetto's track
                   builder relies on.
  --forensics      one flat JSON object per line with the full worker
                   post-mortem key set (event taxonomy, exit code /
                   signal, rusage, last checkpoint index, stderr tail);
                   a nonzero signal must come with its conventional name.
  --metrics        the deterministic fleet merge: integer counters, no
                   gauges, histograms with len(counts) == len(bounds)+1
                   and count == sum(counts), and no wall-clock
                   (*.wall_ms) histograms -- those belong to summary.json.

Exit 0 when every requested artifact passes; exit 1 with one line per
problem otherwise.  Stdlib only -- safe to run on a bare CI image.
"""

from __future__ import annotations

import argparse
import json
import sys

FORENSICS_KEYS = {
    "ts_unix_ms",
    "shard",
    "attempt",
    "pid",
    "event",
    "exit_code",
    "signal",
    "signal_name",
    "wall_s",
    "cpu_user_s",
    "cpu_sys_s",
    "max_rss_kb",
    "last_checkpoint_index",
    "checkpoint_records",
    "stderr_tail",
}
FORENSICS_EVENTS = {"exit", "crash", "timeout", "shutdown", "spawn_error"}


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {path} is not valid JSON: {err}")


def check_trace(path: str) -> list[str]:
    doc = load_json(path)
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{path}: top level must be an object with a 'traceEvents' list"]
    named_pids = set()
    last_ts: dict[int, float] = {}
    events = doc["traceEvents"]
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        pid = event.get("pid")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing 'ph'")
            continue
        if not isinstance(pid, int):
            problems.append(f"{where}: missing integer 'pid'")
            continue
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(pid)
            continue
        ts = event.get("ts")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer 'tid'")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs a non-negative 'dur'")
        if pid in last_ts and ts < last_ts[pid]:
            problems.append(
                f"{where}: ts {ts} goes backwards within pid {pid} "
                f"(previous {last_ts[pid]})"
            )
        last_ts[pid] = ts

    unnamed = sorted(set(last_ts) - named_pids)
    if unnamed:
        problems.append(f"{path}: pids {unnamed} have no process_name metadata")
    if not problems:
        print(
            f"{path}: {len(events)} events across {len(last_ts)} shard pid(s), "
            "timestamps monotone per pid"
        )
    return problems


def check_forensics(path: str) -> list[str]:
    problems: list[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        return [f"error: cannot read {path}: {err}"]
    rows = 0
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        where = f"{path}:{i}"
        try:
            row = json.loads(line)
        except json.JSONDecodeError as err:
            problems.append(f"{where}: not valid JSON: {err}")
            continue
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        rows += 1
        missing = FORENSICS_KEYS - row.keys()
        if missing:
            problems.append(f"{where}: missing keys {sorted(missing)}")
        event = row.get("event")
        if event not in FORENSICS_EVENTS:
            problems.append(f"{where}: unknown event {event!r}")
        signal = row.get("signal")
        if isinstance(signal, int) and signal > 0 and not row.get("signal_name"):
            problems.append(f"{where}: signal {signal} has no signal_name")
    if rows == 0:
        problems.append(f"{path}: no forensics rows at all")
    if not problems:
        print(f"{path}: {rows} forensics rows, all well-formed")
    return problems


def check_metrics(path: str) -> list[str]:
    doc = load_json(path)
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    if doc.get("gauges"):
        problems.append(f"{path}: merged fleet metrics must not contain gauges")
    for name, value in (doc.get("counters") or {}).items():
        if not isinstance(value, int) or value < 0:
            problems.append(f"{path}: counter {name!r} is not a non-negative integer")
    histograms = doc.get("histograms") or {}
    for name, hist in histograms.items():
        where = f"{path}: histogram {name!r}"
        if name.endswith(".wall_ms"):
            problems.append(f"{where}: wall-clock data belongs in summary.json")
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            problems.append(f"{where}: missing bounds/counts arrays")
            continue
        if len(counts) != len(bounds) + 1:
            problems.append(
                f"{where}: {len(counts)} counts for {len(bounds)} bounds "
                "(need bounds + overflow)"
            )
        if hist.get("count") != sum(counts):
            problems.append(f"{where}: count {hist.get('count')} != sum(counts)")
    if not problems:
        print(
            f"{path}: {len(doc.get('counters') or {})} counters, "
            f"{len(histograms)} deterministic histograms"
        )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="merged Chrome trace (trace.json)")
    parser.add_argument("--forensics", help="forensics.jsonl to validate")
    parser.add_argument("--metrics", help="merged metrics.json to validate")
    args = parser.parse_args()
    if not (args.trace or args.forensics or args.metrics):
        parser.error("nothing to validate: pass a trace, --forensics or --metrics")

    problems: list[str] = []
    if args.trace:
        problems += check_trace(args.trace)
    if args.forensics:
        problems += check_forensics(args.forensics)
    if args.metrics:
        problems += check_metrics(args.metrics)
    for problem in problems:
        print(problem, file=sys.stderr)
    sys.exit(1 if problems else 0)


if __name__ == "__main__":
    main()
