#!/usr/bin/env bash
# Tier-1 verify: the exact command from ROADMAP.md, runnable from anywhere.
#
#   scripts/tier1.sh              full build + complete test suite
#   scripts/tier1.sh --sanitize   ASan+UBSan build of the fault-injection
#                                 and campaign suites (separate build dir)
#   scripts/tier1.sh --tsan       ThreadSanitizer build of the telemetry,
#                                 parallel-engine and campaign suites
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  # Build the whole tree: gtest discovery registers a NOT_BUILT placeholder
  # per missing binary, which ctest would report as a failure.
  cmake --build build-asan -j
  cd build-asan
  # gtest_discover_tests registers Suite.Case names; match the suites of
  # the fault-injection and campaign binaries.  (-R must precede the bare
  # -j or ctest parses it as the job count.)
  ctest --output-on-failure \
    -R '^(Campaign|Internal|Fault|Fmea|Parallel|System)' -j
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # ThreadSanitizer pass over everything that runs worker threads: the
  # telemetry layer (sharded metrics, per-thread trace buffers, the event
  # log mutex), the thread-pool engine and the campaign runners.  IPO is
  # off: TSan instrumentation and LTO interact badly on some toolchains.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLCOSC_ENABLE_IPO=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
  cmake --build build-tsan -j
  cd build-tsan
  ctest --output-on-failure \
    -R '^(Obs|Telemetry|JsonValidator|Campaign|Internal|Fault|Fmea|Parallel|System)' -j
  exit 0
fi

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j

# Smoke step: the transient solver's cached-base/LU-reuse path must be
# bit-identical to the full re-stamp reference on linear, time-varying
# and nonlinear circuits (the *BitIdentical* suites compare every trace
# sample with exact equality).
./tests/test_spice_reuse --gtest_filter='TransientReuse.*BitIdentical*'
