#!/usr/bin/env bash
# Tier-1 verify: the exact command from ROADMAP.md, runnable from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
