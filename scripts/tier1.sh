#!/usr/bin/env bash
# Tier-1 verify: the exact command from ROADMAP.md, runnable from anywhere.
#
#   scripts/tier1.sh              full build + complete test suite
#   scripts/tier1.sh --sanitize   ASan+UBSan build of the fault-injection
#                                 and campaign suites (separate build dir)
#   scripts/tier1.sh --tsan       ThreadSanitizer build of the telemetry,
#                                 parallel-engine and campaign suites
#   scripts/tier1.sh --bench      run bench_perf_campaigns and check the
#                                 telemetry.phases timings against the
#                                 committed per-host baseline
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build -S . && cmake --build build -j --target bench_perf_campaigns
  # bench_perf_campaigns writes BENCH_campaigns.json into the cwd; run it
  # from the repo root so the committed record is the one refreshed.
  ./build/bench/bench_perf_campaigns
  # Baselines are tagged by OS + core count: wall times are only
  # comparable on similar hosts.  First run on a new host seeds the
  # baseline instead of failing.
  tag="$(uname -s | tr '[:upper:]' '[:lower:]')-$(nproc)c"
  baseline="bench/baselines/${tag}.json"
  if [[ ! -f "$baseline" ]]; then
    mkdir -p bench/baselines
    cp BENCH_campaigns.json "$baseline"
    echo "no baseline for host tag '${tag}'; seeded ${baseline} from this run"
    exit 0
  fi
  # Single-digit-millisecond phases flap by tens of percent from timer
  # noise alone on small hosts, and back-to-back identical runs differ by
  # ~30% under container CPU contention; gate only phases long enough to
  # mean something, and only against step-change regressions.  Tighter
  # tracking belongs on a quiet dedicated host with its own baseline tag.
  scripts/check_bench_drift.py "$baseline" BENCH_campaigns.json --min-ms 5 --threshold 0.6
  exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  # Build the whole tree: gtest discovery registers a NOT_BUILT placeholder
  # per missing binary, which ctest would report as a failure.
  cmake --build build-asan -j
  cd build-asan
  # gtest_discover_tests registers Suite.Case names; match the suites of
  # the fault-injection, campaign and batched-lockstep binaries.  (-R must
  # precede the bare -j or ctest parses it as the job count.)
  ctest --output-on-failure \
    -R '^(Campaign|Internal|Fault|Fmea|Parallel|System|Tolerance|TransientBatch|Batched|DeviceBanks)' -j
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # ThreadSanitizer pass over everything that runs worker threads: the
  # telemetry layer (sharded metrics, per-thread trace buffers, the event
  # log mutex), the thread-pool engine and the campaign runners.  IPO is
  # off: TSan instrumentation and LTO interact badly on some toolchains.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLCOSC_ENABLE_IPO=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
  cmake --build build-tsan -j
  cd build-tsan
  ctest --output-on-failure \
    -R '^(Obs|Telemetry|JsonValidator|Campaign|Internal|Fault|Fmea|Parallel|System)' -j
  exit 0
fi

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j

# Smoke step: the transient solver's cached-base/LU-reuse path must be
# bit-identical to the full re-stamp reference on linear, time-varying
# and nonlinear circuits (the *BitIdentical* suites compare every trace
# sample with exact equality).
./tests/test_spice_reuse --gtest_filter='TransientReuse.*BitIdentical*'

# Smoke step: with adaptive stepping off (the default) the solver must
# reproduce the pre-adaptive golden trace byte for byte (hexfloat dump
# committed in tests/data/transient_fixed_reference.txt).
./tests/test_spice_adaptive --gtest_filter='TransientAdaptive.FixedPathMatchesPrePrGoldenTrace'

# Smoke step: the batched lockstep engines must be byte-identical to the
# serial reference — the tolerance campaign (report-level diff across
# engines and worker counts) and the batched transient/envelope paths
# (per-sample trace equality, shared-LU on and off).
./tests/test_tolerance --gtest_filter='ToleranceBatched.*:ToleranceSeeding.*'
./tests/test_spice_batch
./tests/test_batched_envelope --gtest_filter='BatchedEnvelope.*'
