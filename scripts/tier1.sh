#!/usr/bin/env bash
# Tier-1 verify: the exact command from ROADMAP.md, runnable from anywhere.
#
#   scripts/tier1.sh              full build + complete test suite
#   scripts/tier1.sh --sanitize   ASan+UBSan build of the fault-injection
#                                 and campaign suites (separate build dir)
#   scripts/tier1.sh --tsan       ThreadSanitizer build of the telemetry,
#                                 parallel-engine and campaign suites
#   scripts/tier1.sh --bench      run bench_perf_campaigns and check the
#                                 telemetry.phases timings against the
#                                 committed per-host baseline
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build -S . && cmake --build build -j --target bench_perf_campaigns
  # bench_perf_campaigns writes BENCH_campaigns.json into the cwd; run it
  # from the repo root so the committed record is the one refreshed.
  ./build/bench/bench_perf_campaigns
  # Baselines are tagged by OS + core count: wall times are only
  # comparable on similar hosts.  First run on a new host seeds the
  # baseline instead of failing.
  tag="$(uname -s | tr '[:upper:]' '[:lower:]')-$(nproc)c"
  baseline="bench/baselines/${tag}.json"
  if [[ ! -f "$baseline" ]]; then
    mkdir -p bench/baselines
    cp BENCH_campaigns.json "$baseline"
    echo "no baseline for host tag '${tag}'; seeded ${baseline} from this run"
    exit 0
  fi
  # Single-digit-millisecond phases flap by tens of percent from timer
  # noise alone on small hosts, and back-to-back identical runs differ by
  # ~30% under container CPU contention; gate only phases long enough to
  # mean something, and only against step-change regressions.  Tighter
  # tracking belongs on a quiet dedicated host with its own baseline tag.
  scripts/check_bench_drift.py "$baseline" BENCH_campaigns.json --min-ms 5 --threshold 0.6
  exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  # Build the whole tree: gtest discovery registers a NOT_BUILT placeholder
  # per missing binary, which ctest would report as a failure.
  cmake --build build-asan -j
  cd build-asan
  # gtest_discover_tests registers Suite.Case names; match the suites of
  # the fault-injection, campaign and batched-lockstep binaries.  (-R must
  # precede the bare -j or ctest parses it as the job count.)
  ctest --output-on-failure \
    -R '^(Campaign|Internal|Fault|Fmea|Parallel|System|Tolerance|TransientBatch|Batched|DeviceBanks|Checkpoint|NumericNameLess|Service|Queue|FleetObs|RunSession)' -j
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # ThreadSanitizer pass over everything that runs worker threads: the
  # telemetry layer (sharded metrics, per-thread trace buffers, the event
  # log mutex), the thread-pool engine and the campaign runners.  IPO is
  # off: TSan instrumentation and LTO interact badly on some toolchains.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLCOSC_ENABLE_IPO=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
  cmake --build build-tsan -j
  cd build-tsan
  ctest --output-on-failure \
    -R '^(Obs|Telemetry|JsonValidator|Campaign|Internal|Fault|Fmea|Parallel|System|Checkpoint|NumericNameLess|Service|Queue|FleetObs|RunSession)' -j
  exit 0
fi

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j

# Smoke step: the transient solver's cached-base/LU-reuse path must be
# bit-identical to the full re-stamp reference on linear, time-varying
# and nonlinear circuits (the *BitIdentical* suites compare every trace
# sample with exact equality).
./tests/test_spice_reuse --gtest_filter='TransientReuse.*BitIdentical*'

# Smoke step: with adaptive stepping off (the default) the solver must
# reproduce the pre-adaptive golden trace byte for byte (hexfloat dump
# committed in tests/data/transient_fixed_reference.txt).
./tests/test_spice_adaptive --gtest_filter='TransientAdaptive.FixedPathMatchesPrePrGoldenTrace'

# Smoke step: the batched lockstep engines must be byte-identical to the
# serial reference — the tolerance campaign (report-level diff across
# engines and worker counts) and the batched transient/envelope paths
# (per-sample trace equality, shared-LU on and off).
./tests/test_tolerance --gtest_filter='ToleranceBatched.*:ToleranceSeeding.*'
./tests/test_spice_batch
./tests/test_batched_envelope --gtest_filter='BatchedEnvelope.*'

# Smoke step: crash-resilient campaign service (DESIGN.md §13).  Start a
# sharded campaign, kill -9 a worker mid-run and then the coordinator
# itself, resume from the checkpoints, and require the finished report to
# be byte-identical to the uninterrupted single-process run.  (If the
# campaign outruns the kill on a fast host the resume is a no-op and the
# diff still gates the determinism contract.)
svc=./examples/campaign_service
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
"$svc" --kind tolerance --samples 96 --shards 1 \
  --checkpoint-dir "$smoke_dir/ref" --report "$smoke_dir/ref_report.txt" --quiet >/dev/null

"$svc" --kind tolerance --samples 96 --shards 2 \
  --checkpoint-dir "$smoke_dir/run" --report "$smoke_dir/run_report.txt" --quiet \
  >/dev/null 2>&1 &
coord=$!
# Kill the first worker that appears (workers are identifiable by the
# --lcosc-spec path inside our private smoke dir), then the coordinator.
for _ in $(seq 1 100); do
  worker=$(pgrep -f -- "--lcosc-spec $smoke_dir/run" | head -n1 || true)
  if [[ -n "${worker}" ]]; then
    kill -9 "$worker" 2>/dev/null || true
    break
  fi
  sleep 0.01
done
kill -9 "$coord" 2>/dev/null || true
wait "$coord" 2>/dev/null || true
# Reap any orphaned worker before resuming.
pkill -9 -f -- "--lcosc-spec $smoke_dir/run" 2>/dev/null || true
rm -f "$smoke_dir/run_report.txt"

"$svc" --kind tolerance --samples 96 --shards 2 \
  --checkpoint-dir "$smoke_dir/run" --report "$smoke_dir/run_report.txt" --quiet >/dev/null
cmp "$smoke_dir/ref_report.txt" "$smoke_dir/run_report.txt"
echo "service kill/resume smoke: report byte-identical to the single-process run"

# Smoke step: batch-aware shard drain (DESIGN.md §16).  The same campaign
# drained case by case (--chunk-lanes 1) across 3 shards must render the
# byte-identical report to the single-process lockstep-chunked reference
# above -- the chunk layout is a performance knob, never a result bit.
"$svc" --kind tolerance --samples 96 --shards 3 --chunk-lanes 1 \
  --checkpoint-dir "$smoke_dir/chunk1" --report "$smoke_dir/chunk1_report.txt" --quiet >/dev/null
cmp "$smoke_dir/ref_report.txt" "$smoke_dir/chunk1_report.txt"
echo "chunked drain smoke: per-case and lockstep-chunked reports byte-identical"

# Smoke step: multi-job campaign queue (DESIGN.md §14).  Submit two jobs
# at different priorities, kill -9 the draining coordinator mid-run,
# re-serve to drain the queue, and require both finished reports to be
# byte-identical to solo runs of the same specs.  (On a fast host the
# first drain may finish before the kill; the resume is then a no-op and
# the byte comparison still gates the contract.)
qdir="$smoke_dir/queue"
"$svc" submit --queue "$qdir" --kind tolerance --samples 48 --seed 5 --shards 2 \
  --name a --priority 1 >/dev/null
"$svc" submit --queue "$qdir" --kind tolerance --samples 48 --seed 6 --shards 2 \
  --name b --priority 5 >/dev/null
"$svc" serve --queue "$qdir" --quiet >/dev/null 2>&1 &
coord=$!
# Wait until some checkpointed work exists, so the kill lands mid-queue.
for _ in $(seq 1 200); do
  if ls "$qdir"/jobs/*/checkpoints/*.ckpt >/dev/null 2>&1; then break; fi
  sleep 0.01
done
kill -9 "$coord" 2>/dev/null || true
wait "$coord" 2>/dev/null || true
# Reap any orphaned worker before resuming.
pkill -9 -f -- "--lcosc-spec $qdir" 2>/dev/null || true

"$svc" serve --queue "$qdir" --quiet >/dev/null
"$svc" --kind tolerance --samples 48 --seed 5 --shards 1 \
  --checkpoint-dir "$smoke_dir/qref_a" --report "$smoke_dir/qref_a.txt" --quiet >/dev/null
"$svc" --kind tolerance --samples 48 --seed 6 --shards 1 \
  --checkpoint-dir "$smoke_dir/qref_b" --report "$smoke_dir/qref_b.txt" --quiet >/dev/null
"$svc" result --queue "$qdir" 000001-a | cmp - "$smoke_dir/qref_a.txt"
"$svc" result --queue "$qdir" 000002-b | cmp - "$smoke_dir/qref_b.txt"
echo "queue kill/resume smoke: both reports byte-identical to solo runs"

# Smoke step: fleet observability (DESIGN.md §15).  With telemetry on,
# the coordinator must merge the shard flush files into one metrics.json
# that is byte-identical for every shard layout, plus a schema-valid
# fleet Chrome trace and forensics log.
for shards in 2 3; do
  LCOSC_METRICS=1 LCOSC_TRACE=1 "$svc" --kind tolerance --samples 48 --shards "$shards" \
    --checkpoint-dir "$smoke_dir/obs$shards" \
    --report "$smoke_dir/obs${shards}_report.txt" --quiet >/dev/null
done
cmp "$smoke_dir/obs2/telemetry/metrics.json" "$smoke_dir/obs3/telemetry/metrics.json"
../scripts/validate_trace.py "$smoke_dir/obs2/telemetry/trace.json" \
  --forensics "$smoke_dir/obs2/telemetry/forensics.jsonl" \
  --metrics "$smoke_dir/obs2/telemetry/metrics.json"

# kill -9 a worker mid-run: the supervisor restarts the shard, the run
# still completes, and the forensics log names the signal.  (If the
# campaign outruns the kill on a fast host, the signal check is skipped
# but the forensics schema is still validated.)
"$svc" --kind tolerance --samples 96 --shards 2 --max-restarts 4 \
  --checkpoint-dir "$smoke_dir/obskill" \
  --report "$smoke_dir/obskill_report.txt" --quiet >/dev/null 2>&1 &
coord=$!
killed=0
for _ in $(seq 1 200); do
  worker=$(pgrep -f -- "--lcosc-spec $smoke_dir/obskill" | head -n1 || true)
  if [[ -n "${worker}" ]]; then
    if kill -9 "$worker" 2>/dev/null; then killed=1; fi
    break
  fi
  sleep 0.01
done
wait "$coord"
if [[ "$killed" == 1 ]]; then
  grep -q '"event": "crash"' "$smoke_dir/obskill/telemetry/forensics.jsonl"
  grep -q '"signal_name": "SIGKILL"' "$smoke_dir/obskill/telemetry/forensics.jsonl"
fi
../scripts/validate_trace.py --forensics "$smoke_dir/obskill/telemetry/forensics.jsonl"
echo "fleet observability smoke: merged metrics byte-identical across shard counts"
