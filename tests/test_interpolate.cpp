// Tests for PWL interpolation tables.
#include <gtest/gtest.h>

#include "common/error.h"
#include "numeric/interpolate.h"

namespace lcosc {
namespace {

TEST(PwlTable, InterpolatesInside) {
  const PwlTable t({{0.0, 0.0}, {1.0, 2.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(t(0.5), 1.0);
  EXPECT_DOUBLE_EQ(t(1.5), 2.0);
  EXPECT_DOUBLE_EQ(t(1.0), 2.0);
}

TEST(PwlTable, ExtrapolatesLinearly) {
  const PwlTable t({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(t(2.0), 2.0);
  EXPECT_DOUBLE_EQ(t(-1.0), -1.0);
}

TEST(PwlTable, Derivative) {
  const PwlTable t({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(t.derivative(0.5), 2.0);
  EXPECT_DOUBLE_EQ(t.derivative(2.0), 0.0);
  // Extrapolation uses the edge segments.
  EXPECT_DOUBLE_EQ(t.derivative(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(t.derivative(10.0), 0.0);
}

TEST(PwlTable, EndpointsExact) {
  const PwlTable t({{-2.0, 5.0}, {3.0, -1.0}});
  EXPECT_DOUBLE_EQ(t(-2.0), 5.0);
  EXPECT_DOUBLE_EQ(t(3.0), -1.0);
  EXPECT_DOUBLE_EQ(t.min_x(), -2.0);
  EXPECT_DOUBLE_EQ(t.max_x(), 3.0);
}

TEST(PwlTable, RejectsBadInput) {
  EXPECT_THROW(PwlTable({{0.0, 0.0}}), ConfigError);
  EXPECT_THROW(PwlTable({{0.0, 0.0}, {0.0, 1.0}}), ConfigError);
  EXPECT_THROW(PwlTable({{1.0, 0.0}, {0.0, 1.0}}), ConfigError);
}

TEST(PwlTable, DefaultIsEmpty) {
  const PwlTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t(0.0), ConfigError);
}

TEST(Lerp, Basics) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(lerp(-1.0, 1.0, 0.5), 0.0);
}

}  // namespace
}  // namespace lcosc
