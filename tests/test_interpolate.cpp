// Tests for PWL interpolation tables.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "numeric/interpolate.h"

namespace lcosc {
namespace {

TEST(PwlTable, InterpolatesInside) {
  const PwlTable t({{0.0, 0.0}, {1.0, 2.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(t(0.5), 1.0);
  EXPECT_DOUBLE_EQ(t(1.5), 2.0);
  EXPECT_DOUBLE_EQ(t(1.0), 2.0);
}

TEST(PwlTable, ExtrapolatesLinearly) {
  const PwlTable t({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(t(2.0), 2.0);
  EXPECT_DOUBLE_EQ(t(-1.0), -1.0);
}

TEST(PwlTable, Derivative) {
  const PwlTable t({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(t.derivative(0.5), 2.0);
  EXPECT_DOUBLE_EQ(t.derivative(2.0), 0.0);
  // Extrapolation uses the edge segments.
  EXPECT_DOUBLE_EQ(t.derivative(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(t.derivative(10.0), 0.0);
}

TEST(PwlTable, EndpointsExact) {
  const PwlTable t({{-2.0, 5.0}, {3.0, -1.0}});
  EXPECT_DOUBLE_EQ(t(-2.0), 5.0);
  EXPECT_DOUBLE_EQ(t(3.0), -1.0);
  EXPECT_DOUBLE_EQ(t.min_x(), -2.0);
  EXPECT_DOUBLE_EQ(t.max_x(), 3.0);
}

TEST(PwlTable, RejectsBadInput) {
  EXPECT_THROW(PwlTable({{0.0, 0.0}}), ConfigError);
  EXPECT_THROW(PwlTable({{0.0, 0.0}, {0.0, 1.0}}), ConfigError);
  EXPECT_THROW(PwlTable({{1.0, 0.0}, {0.0, 1.0}}), ConfigError);
}

TEST(PwlTable, DefaultIsEmpty) {
  const PwlTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t(0.0), ConfigError);
}

TEST(Lerp, Basics) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(lerp(-1.0, 1.0, 0.5), 0.0);
}

TEST(SampledCurve, EmptyCurveCannotBeEvaluated) {
  const SampledCurve c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_THROW(c(0.0), ConfigError);
  EXPECT_THROW(c.front_x(), ConfigError);
  EXPECT_THROW(c.back_x(), ConfigError);
}

TEST(SampledCurve, SingleKnotIsConstant) {
  SampledCurve c;
  c.append(2.0, 7.5);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c(2.0), 7.5);
  EXPECT_DOUBLE_EQ(c(-100.0), 7.5);
  EXPECT_DOUBLE_EQ(c(100.0), 7.5);
}

TEST(SampledCurve, KnotHitsReturnStoredOrdinatesExactly) {
  // The dense-output path relies on accepted solver states surviving the
  // resampling bit-for-bit, including irrational ordinates.
  SampledCurve c;
  const double y0 = 1.0 / 3.0;
  const double y1 = std::sqrt(2.0);
  const double y2 = -7.0 / 11.0;
  c.append(0.0, y0);
  c.append(0.1, y1);
  c.append(0.3, y2);
  EXPECT_EQ(c(0.0), y0);
  EXPECT_EQ(c(0.1), y1);
  EXPECT_EQ(c(0.3), y2);
}

TEST(SampledCurve, InteriorPointsInterpolateLinearly) {
  SampledCurve c;
  c.append(0.0, 0.0);
  c.append(2.0, 4.0);
  c.append(3.0, 1.0);
  EXPECT_DOUBLE_EQ(c(1.0), 2.0);
  EXPECT_DOUBLE_EQ(c(2.5), 2.5);
}

TEST(SampledCurve, OutOfRangeClampsToEndOrdinates) {
  // Clamped, not extrapolated: the output grid's end points may sit an
  // ulp outside the accepted-step range.
  SampledCurve c;
  c.append(0.0, 1.0);
  c.append(1.0, 3.0);
  EXPECT_DOUBLE_EQ(c(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(c(1.5), 3.0);
  EXPECT_DOUBLE_EQ(c(std::nextafter(1.0, 2.0)), 3.0);
}

TEST(SampledCurve, RejectsNonMonotoneAbscissa) {
  SampledCurve c;
  c.append(0.0, 1.0);
  EXPECT_THROW(c.append(0.0, 2.0), ConfigError);   // duplicate x
  EXPECT_THROW(c.append(-1.0, 2.0), ConfigError);  // decreasing x
  // The failed appends must not have corrupted the curve.
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c(0.0), 1.0);
}

TEST(SampledCurve, ClearResetsToEmpty) {
  SampledCurve c;
  c.append(0.0, 1.0);
  c.append(1.0, 2.0);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(c(0.5), ConfigError);
  // Reusable after clear, including x values below the old range.
  c.append(-5.0, 9.0);
  EXPECT_DOUBLE_EQ(c(-5.0), 9.0);
}

}  // namespace
}  // namespace lcosc
