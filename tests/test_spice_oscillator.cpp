// Transistor-level cross-validation of the behavioral driver model: a
// real cross-coupled NMOS pair on the paper's tank, simulated with the
// trapezoidal spice transient, must oscillate at the tank resonance with
// the amplitude the describing-function theory (Eqs. 1-4) predicts.
//
// Also covers the transient stimulus sources (SIN / PULSE).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/units.h"
#include "spice/circuit.h"
#include "spice/transient_solver.h"
#include "tank/rlc_tank.h"
#include "waveform/measurements.h"

namespace lcosc::spice {
namespace {

using namespace lcosc::literals;

TEST(TransientStimulus, SineSourceMatchesAcTheory) {
  // RC low-pass driven at its pole frequency: transient amplitude must be
  // 1/sqrt(2) of the drive (the same answer the AC solver gives).
  Circuit c;
  auto& v1 = c.voltage_source("V1", "in", "0", 0.0);
  const double f = 100e3;
  const double rc_tau = 1.0 / (kTwoPi * f);
  v1.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = f, .phase_deg = 0.0});
  c.resistor("R1", "in", "out", 1e3);
  c.capacitor("C1", "out", "0", rc_tau / 1e3);
  TransientOptions opt;
  opt.t_stop = 20.0 / f;  // settle, then measure
  opt.dt = 1.0 / (f * 200.0);
  opt.integration = Integration::Trapezoidal;
  opt.start_from_dc = true;
  const TransientResult r = run_transient(c, opt, {"out"});
  ASSERT_TRUE(r.converged);
  const Trace tail = r.trace("out").window(15.0 / f, 20.0 / f);
  EXPECT_NEAR(peak_amplitude(tail), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(TransientStimulus, PulseSourceShape) {
  Circuit c;
  auto& v1 = c.voltage_source("V1", "in", "0", 0.0);
  v1.set_pulse({.v1 = 0.0, .v2 = 2.0, .delay = 1e-6, .rise = 0.1e-6, .fall = 0.1e-6,
                .width = 2e-6, .period = 10e-6});
  c.resistor("R1", "in", "0", 1e3);
  TransientOptions opt;
  opt.t_stop = 12e-6;
  opt.dt = 20e-9;
  const TransientResult r = run_transient(c, opt, {"in"});
  const Trace& in = r.trace("in");
  EXPECT_NEAR(in.sample_at(0.5e-6), 0.0, 1e-9);   // before delay
  EXPECT_NEAR(in.sample_at(2.0e-6), 2.0, 1e-9);   // on the plateau
  EXPECT_NEAR(in.sample_at(4.0e-6), 0.0, 1e-9);   // back down
  EXPECT_NEAR(in.sample_at(11.6e-6), 2.0, 1e-6);  // second period's plateau
  EXPECT_NEAR(in.sample_at(10.5e-6), 0.0, 1e-6);  // still low before it
}

TEST(TransientStimulus, SineValueAtClosedForm) {
  Circuit c;
  auto& v1 = c.voltage_source("V1", "a", "0", 0.5);
  v1.set_sine({.offset = 0.25, .amplitude = 2.0, .frequency = 1e6, .phase_deg = 90.0});
  // 90 degrees: cosine.
  EXPECT_NEAR(v1.value_at(0.0), 0.25 + 2.0, 1e-12);
  EXPECT_NEAR(v1.value_at(0.25e-6), 0.25, 1e-9);
  // DC analyses keep the declared DC value.
  EXPECT_DOUBLE_EQ(v1.value(), 0.5);
}

TEST(TransistorOscillator, CrossCoupledPairMatchesTheory) {
  // The paper's tank (Q=40 at 4 MHz) driven by a real cross-coupled NMOS
  // pair with a 2 mA tail source.
  const tank::TankConfig tk = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  const tank::RlcTank model(tk);

  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);
  // Split tank: L/2 + Rs/2 from Vdd to each pin (same differential
  // resonance as the paper's series tank).
  c.inductor("L1", "vdd", "m1", tk.inductance / 2.0, 1e-3);
  c.resistor("Rs1", "m1", "lc1", tk.series_resistance / 2.0);
  c.inductor("L2", "vdd", "m2", tk.inductance / 2.0, 1e-3);
  c.resistor("Rs2", "m2", "lc2", tk.series_resistance / 2.0);
  c.capacitor("C1", "lc1", "0", tk.capacitance1, 5.1);   // slight imbalance
  c.capacitor("C2", "lc2", "0", tk.capacitance2, 4.9);   // kicks the startup
  // Cross-coupled pair with a tail current source.
  c.mosfet("M1", "lc1", "lc2", "tail", "0", nmos_035um(200.0));
  c.mosfet("M2", "lc2", "lc1", "tail", "0", nmos_035um(200.0));
  c.current_source("Itail", "tail", "0", 2e-3);

  TransientOptions opt;
  opt.t_stop = 60e-6;
  opt.dt = 2e-9;
  opt.integration = Integration::Trapezoidal;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"lc1", "lc2"});
  ASSERT_TRUE(r.converged);

  // Differential waveform from the two recorded traces.
  Trace vd("vd");
  const Trace& v1 = r.trace("lc1");
  const Trace& v2 = r.trace("lc2");
  for (std::size_t i = 0; i < v1.size(); ++i) {
    vd.append(v1.time(i) + 1e-15, v1.value(i) - v2.value(i));
  }

  // Frequency: the tank resonance (Eq. 1 territory).
  const Trace tail_window = vd.window(40e-6, 60e-6);
  const auto f = estimate_frequency(tail_window);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, model.resonance_frequency(), model.resonance_frequency() * 0.03);

  // Amplitude: a fully switching pair steers +-Itail/2 differentially; the
  // fundamental is (4/pi)(Itail/2) and the amplitude its product with Rp
  // (Eq. 4 with the square-wave shape factor).  Triode re-entry and finite
  // switching sharpness shave it, hence the generous band.
  const double predicted = kDriverShapeFactorSquare * 1e-3 * model.parallel_resistance();
  const double measured = peak_amplitude(tail_window);
  EXPECT_GT(measured, 0.55 * predicted);
  EXPECT_LT(measured, 1.15 * predicted);

  // The pins ride the Vdd bias (split-inductor topology).
  EXPECT_NEAR(mean(r.trace("lc1")), 5.0, 0.5);
}

}  // namespace
}  // namespace lcosc::spice
