// Receiving-coil subsystem: demodulation plus the Section-7 system-level
// supervision of a short between the oscillator and a receiving coil.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "system/receiver.h"

namespace lcosc::system {
namespace {

constexpr double kFreq = 4e6;
constexpr double kDt = 1.0 / (kFreq * 64.0);

// Drive the receiver for `duration`; the oscillator pin carries the
// excitation around its 2.5 V DC level.
void drive(Receiver& rx, double duration, double theta, double short_conductance) {
  double t = 0.0;
  while (t < duration) {
    const double v_exc = 2.7 * std::sin(kTwoPi * kFreq * t);
    rx.step(kDt, v_exc, theta, short_conductance, 2.5 + 0.5 * v_exc);
    t += kDt;
  }
}

TEST(Receiver, HealthyCoilPassesSupervision) {
  Receiver rx;
  drive(rx, 35e-3, 0.7, 0.0);
  EXPECT_GE(rx.supervision_cycles(), 3);
  EXPECT_FALSE(rx.coil_short_fault());
  // Position channels still work.
  EXPECT_NEAR(rx.estimated_angle(), 0.7, 0.05);
}

TEST(Receiver, ShortToOscillatorCoilDetected) {
  // 50 ohm short from the sense node to the oscillator pin clamps the DC
  // level: the injected test current can no longer move it.
  Receiver rx;
  drive(rx, 35e-3, 0.7, 1.0 / 50.0);
  EXPECT_TRUE(rx.coil_short_fault());
}

TEST(Receiver, DetectionNeedsAtLeastOneSupervisionCycle) {
  Receiver rx;
  drive(rx, 5e-3, 0.0, 1.0 / 50.0);  // shorter than the supervision period
  EXPECT_EQ(rx.supervision_cycles(), 0);
  EXPECT_FALSE(rx.coil_short_fault());
}

TEST(Receiver, WeakLeakageTolerated) {
  // A 1 Mohm leak barely loads the 100k bias network: still healthy.
  Receiver rx;
  drive(rx, 35e-3, 0.0, 1.0 / 1e6);
  EXPECT_GE(rx.supervision_cycles(), 3);
  EXPECT_FALSE(rx.coil_short_fault());
}

TEST(Receiver, BorderlineImpedanceThreshold) {
  // The fault fires when the shift drops below min_shift_fraction (50%):
  // that happens when the short resistance falls below ~Rbias.
  Receiver hard_short;
  drive(hard_short, 35e-3, 0.0, 1.0 / 10e3);  // 10k << 100k bias
  EXPECT_TRUE(hard_short.coil_short_fault());

  Receiver soft_leak;
  drive(soft_leak, 35e-3, 0.0, 1.0 / 500e3);  // 500k >> threshold
  EXPECT_FALSE(soft_leak.coil_short_fault());
}

TEST(Receiver, DcLevelTracksBias) {
  Receiver rx;
  drive(rx, 8e-3, 0.0, 0.0);
  // Outside injection windows the level sits at the bias.
  if (rx.supervision_phase() == SupervisionPhase::Idle) {
    EXPECT_NEAR(rx.dc_level(), 2.5, 1.1);  // may still be settling from a pulse
  }
  Receiver shorted;
  drive(shorted, 8e-3, 0.0, 1.0 / 50.0);
  // Clamped to the oscillator pin's DC neighborhood.
  EXPECT_NEAR(shorted.dc_level(), 2.5, 0.3);
}

TEST(Receiver, ResetClearsFaultAndCycles) {
  Receiver rx;
  drive(rx, 35e-3, 0.0, 1.0 / 50.0);
  EXPECT_TRUE(rx.coil_short_fault());
  rx.reset();
  EXPECT_FALSE(rx.coil_short_fault());
  EXPECT_EQ(rx.supervision_cycles(), 0);
}

TEST(Receiver, ConfigValidated) {
  ReceiverConfig bad;
  bad.injection_time = bad.supervision_period;  // does not fit
  EXPECT_THROW(Receiver{bad}, ConfigError);
  ReceiverConfig bad2;
  bad2.test_current = 0.0;
  EXPECT_THROW(Receiver{bad2}, ConfigError);
}

}  // namespace
}  // namespace lcosc::system
