// Unit tests of the telemetry layer (src/obs/): metrics registry
// (counters, gauges, histograms, snapshots), scoped span tracer and the
// structured JSONL event log, plus the LCOSC_LOG_LEVEL handling and the
// structured routing of log_message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::obs {
namespace {

// Every test starts from a known telemetry state; the registry is
// process-wide, so values are reset rather than re-created.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    set_trace_enabled(false);
    MetricsRegistry::instance().reset();
    clear_trace();
  }
  void TearDown() override {
    set_event_capture(nullptr);
    set_metrics_enabled(false);
    set_trace_enabled(false);
    clear_trace();
  }
};

// --- metrics --------------------------------------------------------------

TEST_F(ObsTest, CounterAccumulatesAcrossThreads) {
  Counter& c = MetricsRegistry::instance().counter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, DisabledCounterIsANoOp) {
  Counter& c = MetricsRegistry::instance().counter("test.disabled");
  set_metrics_enabled(false);
  c.add(42);
  EXPECT_EQ(c.total(), 0u);
  set_metrics_enabled(true);
  c.add(1);
  EXPECT_EQ(c.total(), 1u);
}

TEST_F(ObsTest, RegistryFindsOrCreatesByName) {
  auto& registry = MetricsRegistry::instance();
  Counter& a = registry.counter("test.same");
  Counter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("test.gauge");
  Gauge& g2 = registry.gauge("test.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.histogram("test.hist", {1.0, 2.0});
  // A second registration ignores the (different) bounds.
  Histogram& h2 = registry.histogram("test.hist", {5.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST_F(ObsTest, GaugeTracksValueAndPeak) {
  Gauge& g = MetricsRegistry::instance().gauge("test.level");
  g.set(3.0);
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_DOUBLE_EQ(g.peak(), 3.0);
  g.add(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.5);
  EXPECT_DOUBLE_EQ(g.peak(), 5.5);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  EXPECT_DOUBLE_EQ(g.peak(), 5.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.peak(), 0.0);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  // bucket 0: <= 1, bucket 1: <= 10, bucket 2: > 10 (overflow).
  Histogram& h = MetricsRegistry::instance().histogram("test.edges", {1.0, 10.0});
  h.record(0.5);
  h.record(1.0);  // on the boundary -> bucket 0
  h.record(1.0001);
  h.record(10.0);
  h.record(11.0);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_seen(), 11.0);
}

TEST_F(ObsTest, HistogramRecordManyMatchesRepeatedRecord) {
  Histogram& h = MetricsRegistry::instance().histogram("test.many", {2.0, 4.0});
  h.record_many(1.0, 7);
  h.record_many(3.0, 2);
  EXPECT_EQ(h.count(), 9u);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 7u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
}

TEST_F(ObsTest, SnapshotIsSortedAndSearchable) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("zz.last").add(2);
  registry.counter("aa.first").add(1);
  registry.gauge("mm.gauge").set(7.0);
  registry.histogram("hh.hist", {1.0}).record(0.5);

  const MetricsSnapshot snap = registry.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  const CounterSnapshot* first = snap.find_counter("aa.first");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, 1u);
  const GaugeSnapshot* gauge = snap.find_gauge("mm.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 7.0);
  const HistogramSnapshot* hist = snap.find_histogram("hh.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(snap.find_counter("no.such"), nullptr);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsDefinitions) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("keep.counter").add(5);
  registry.histogram("keep.hist", {1.0, 2.0}).record(1.5);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  const CounterSnapshot* c = snap.find_counter("keep.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 0u);
  const HistogramSnapshot* h = snap.find_histogram("keep.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
  EXPECT_EQ(h->bounds.size(), 2u);
}

TEST_F(ObsTest, SnapshotJsonContainsAllSections) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("json.counter").add(3);
  registry.gauge("json.gauge").set(2.5);
  registry.histogram("json.hist", {1.0}).record(4.0);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

TEST_F(ObsTest, EnvFlagParsing) {
  ::setenv("LCOSC_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("LCOSC_TEST_FLAG", false));
  ::setenv("LCOSC_TEST_FLAG", "off", 1);
  EXPECT_FALSE(env_flag("LCOSC_TEST_FLAG", true));
  ::setenv("LCOSC_TEST_FLAG", "TRUE", 1);
  EXPECT_TRUE(env_flag("LCOSC_TEST_FLAG", false));
  ::setenv("LCOSC_TEST_FLAG", "garbage", 1);
  EXPECT_TRUE(env_flag("LCOSC_TEST_FLAG", true));
  EXPECT_FALSE(env_flag("LCOSC_TEST_FLAG", false));
  ::unsetenv("LCOSC_TEST_FLAG");
  EXPECT_TRUE(env_flag("LCOSC_TEST_FLAG", true));
}

// --- tracer ---------------------------------------------------------------

TEST_F(ObsTest, SpanRecordsCompleteEvent) {
  set_trace_enabled(true);
  {
    LCOSC_SPAN("unit.span");
    trace_instant("unit.instant");
  }
  const std::vector<TraceEventRecord> events = trace_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(trace_event_count(), 2u);

  const TraceEventRecord* span = nullptr;
  const TraceEventRecord* instant = nullptr;
  for (const auto& e : events) {
    if (e.name == "unit.span") span = &e;
    if (e.name == "unit.instant") instant = &e;
  }
  ASSERT_NE(span, nullptr);
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(span->phase, 'X');
  EXPECT_EQ(instant->phase, 'i');
  EXPECT_GE(span->dur_us, 0.0);
  // The instant fired inside the span.
  EXPECT_GE(instant->ts_us, span->ts_us);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  {
    LCOSC_SPAN("unit.off");
    trace_instant("unit.off.instant");
  }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(ObsTest, TraceSnapshotSortedByThreadAndTime) {
  set_trace_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 16; ++i) {
        Span span("mt.span");
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<TraceEventRecord> events = trace_snapshot();
  EXPECT_EQ(events.size(), 64u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const bool ordered = events[i - 1].tid < events[i].tid ||
                         (events[i - 1].tid == events[i].tid &&
                          events[i - 1].ts_us <= events[i].ts_us);
    EXPECT_TRUE(ordered) << "event " << i << " out of (tid, ts) order";
  }
}

TEST_F(ObsTest, TraceEventLimitCountsDrops) {
  set_trace_enabled(true);
  set_trace_event_limit(4);
  for (int i = 0; i < 10; ++i) trace_instant("drop.me");
  EXPECT_EQ(trace_event_count(), 4u);
  EXPECT_EQ(trace_dropped_count(), 6u);
  set_trace_event_limit(1u << 20);
  clear_trace();
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST_F(ObsTest, WriteChromeTraceProducesLoadableJson) {
  set_trace_enabled(true);
  {
    LCOSC_SPAN("file.span");
  }
  trace_instant("file.instant");
  const std::string path = "obs_test_artifacts/trace_unit.json";
  ASSERT_TRUE(write_chrome_trace(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"file.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  std::filesystem::remove_all("obs_test_artifacts");
}

// --- event log ------------------------------------------------------------

TEST_F(ObsTest, EventsAreCapturedAsJsonLines) {
  std::vector<std::string> lines;
  set_event_capture(&lines);
  ASSERT_TRUE(events_enabled());
  {
    Event("unit.event").num("t", 1.5).integer("n", -3).boolean("ok", true).str("s", "x");
  }
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"unit.event\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"t\": 1.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"n\": -3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"s\": \"x\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\": "), std::string::npos);
}

TEST_F(ObsTest, EventStringsAreEscaped) {
  std::vector<std::string> lines;
  set_event_capture(&lines);
  { Event("unit.escape").str("msg", "a \"quoted\"\nline\\"); }
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("a \\\"quoted\\\"\\nline\\\\"), std::string::npos);
  // The line itself must stay single-line JSONL.
  EXPECT_EQ(lines[0].find('\n'), std::string::npos);
}

TEST_F(ObsTest, EventContextLabelsAreAttachedInnermostWins) {
  std::vector<std::string> lines;
  set_event_capture(&lines);
  {
    EventContext outer("outer");
    { Event("unit.ctx"); }
    {
      EventContext inner("inner");
      { Event("unit.ctx"); }
    }
    { Event("unit.ctx"); }
  }
  { Event("unit.ctx"); }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"ctx\": \"outer\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ctx\": \"inner\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ctx\": \"outer\""), std::string::npos);
  EXPECT_EQ(lines[3].find("\"ctx\""), std::string::npos);
}

TEST_F(ObsTest, SequenceNumbersIncrease) {
  std::vector<std::string> lines;
  set_event_capture(&lines);
  { Event("seq.a"); }
  { Event("seq.b"); }
  ASSERT_EQ(lines.size(), 2u);
  auto seq_of = [](const std::string& line) {
    const std::size_t pos = line.find("\"seq\": ");
    return std::strtoll(line.c_str() + pos + 7, nullptr, 10);
  };
  EXPECT_LT(seq_of(lines[0]), seq_of(lines[1]));
}

TEST_F(ObsTest, FileSinkWritesJsonl) {
  const std::string path = "obs_test_artifacts/events_unit.jsonl";
  ASSERT_TRUE(open_event_log(path));
  EXPECT_TRUE(events_enabled());
  { Event("file.event").integer("k", 7); }
  close_event_log();
  EXPECT_FALSE(events_enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"type\": \"file.event\""), std::string::npos);
  EXPECT_NE(line.find("\"k\": 7"), std::string::npos);
  std::filesystem::remove_all("obs_test_artifacts");
}

// --- logging integration --------------------------------------------------

TEST_F(ObsTest, ParseLogLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST_F(ObsTest, LogMessagesRouteIntoTheEventLog) {
  const LogLevel saved = log_level();
  std::vector<std::string> lines;
  set_event_capture(&lines);
  set_log_level(LogLevel::Info);
  log_message(LogLevel::Warn, "newton struggling");
  log_message(LogLevel::Debug, "below threshold");  // filtered out
  set_log_level(saved);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"log\""), std::string::npos);
  EXPECT_NE(lines[0].find("newton struggling"), std::string::npos);
}

}  // namespace
}  // namespace lcosc::obs
