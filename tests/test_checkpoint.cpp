// Crash-safety contract of the checkpoint record stream
// (service/checkpoint.h): every byte-level truncation of a valid file --
// the on-disk state a kill -9 can leave behind -- must read back as a
// clean prefix of fully-committed records, and a writer reopening the
// torn file must continue it seamlessly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/checkpoint.h"

namespace lcosc::service {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lcosc_ckpt_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "shard.ckpt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string file_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void write_file_bytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointTest, Crc32MatchesKnownVectors) {
  // The zlib/IEEE check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST_F(CheckpointTest, MissingFileReadsEmptyAndClean) {
  const CheckpointReadResult r = read_checkpoint(path_);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_TRUE(r.clean);
}

TEST_F(CheckpointTest, EmptyFileReadsEmptyAndClean) {
  write_file_bytes("");
  const CheckpointReadResult r = read_checkpoint(path_);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_TRUE(r.clean);
}

TEST_F(CheckpointTest, RoundTripsRecordsInOrder) {
  const std::vector<CheckpointRecord> written = {
      {0, "alpha"},
      {7, std::string("\x00\x01|\xff\npipe|newline", 17)},  // binary-safe payload
      {3, ""},                                              // empty payload is legal
  };
  {
    CheckpointWriter writer(path_);
    EXPECT_TRUE(writer.existing().empty());
    for (const CheckpointRecord& r : written) writer.append(r.index, r.payload);
  }
  const CheckpointReadResult r = read_checkpoint(path_);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.records, written);
  EXPECT_EQ(r.valid_bytes, file_bytes().size());
}

TEST_F(CheckpointTest, CrcCorruptionStopsAtTheBadFrame) {
  {
    CheckpointWriter writer(path_);
    writer.append(1, "first");
    writer.append(2, "second");
  }
  std::string bytes = file_bytes();
  // Flip one payload bit of the second record (last byte of the file).
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file_bytes(bytes);

  const CheckpointReadResult r = read_checkpoint(path_);
  EXPECT_FALSE(r.clean);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], (CheckpointRecord{1, "first"}));
}

TEST_F(CheckpointTest, AbsurdLengthHeaderIsTreatedAsCorruption) {
  {
    CheckpointWriter writer(path_);
    writer.append(1, "first");
  }
  // A torn header whose length field decodes as ~4 GiB must not make the
  // reader try to allocate it.
  std::string bytes = file_bytes();
  bytes += std::string("\xff\xff\xff\xff", 4);
  bytes += std::string(8, '\x00');
  write_file_bytes(bytes);

  const CheckpointReadResult r = read_checkpoint(path_);
  EXPECT_FALSE(r.clean);
  ASSERT_EQ(r.records.size(), 1u);
}

// The exhaustive kill-point sweep: truncating a valid two-record file at
// EVERY byte offset must yield the longest record prefix that fits --
// never garbage, never an error.
TEST_F(CheckpointTest, EveryTruncationOffsetReadsAValidPrefix) {
  {
    CheckpointWriter writer(path_);
    writer.append(10, "payload-a");
    writer.append(11, "pb");
  }
  const std::string full = file_bytes();
  const std::size_t first_frame = 12 + 9;  // header + "payload-a"

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_file_bytes(full.substr(0, cut));
    const CheckpointReadResult r = read_checkpoint(path_);

    std::size_t expect_records = 0;
    if (cut >= full.size()) {
      expect_records = 2;
    } else if (cut >= first_frame) {
      expect_records = 1;
    }
    EXPECT_EQ(r.records.size(), expect_records) << "cut at byte " << cut;
    EXPECT_EQ(r.clean, cut == full.size() || cut == first_frame || cut == 0)
        << "cut at byte " << cut;
    EXPECT_EQ(r.valid_bytes, expect_records == 2   ? full.size()
                             : expect_records == 1 ? first_frame
                                                   : 0u)
        << "cut at byte " << cut;
    if (expect_records >= 1) {
      EXPECT_EQ(r.records[0], (CheckpointRecord{10, "payload-a"}));
    }
  }
}

TEST_F(CheckpointTest, WriterTruncatesTornTailAndContinues) {
  {
    CheckpointWriter writer(path_);
    writer.append(1, "first");
    writer.append(2, "second");
  }
  const std::string full = file_bytes();
  // Tear the file mid-way through the second record's payload.
  write_file_bytes(full.substr(0, full.size() - 3));

  {
    CheckpointWriter writer(path_);
    ASSERT_EQ(writer.existing().size(), 1u);
    EXPECT_EQ(writer.existing()[0], (CheckpointRecord{1, "first"}));
    writer.append(2, "second");  // the resumed shard recomputes case 2
    writer.append(3, "third");
  }
  const CheckpointReadResult r = read_checkpoint(path_);
  EXPECT_TRUE(r.clean);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[2], (CheckpointRecord{3, "third"}));
  // The rewritten file is exactly the uninterrupted prefix plus the new
  // record: truncation left no gap and no stray bytes.
  EXPECT_EQ(file_bytes().substr(0, full.size()), full);
}

TEST(NumericNameLess, OrdersDigitRunsByValueNotLexically) {
  // The regression: a lexical sort puts shard_10 before shard_2, so a
  // first-wins merge preferred the wrong file for overlapping indices.
  EXPECT_TRUE(numeric_name_less("shard_2_of_12.ckpt", "shard_10_of_12.ckpt"));
  EXPECT_FALSE(numeric_name_less("shard_10_of_12.ckpt", "shard_2_of_12.ckpt"));
  EXPECT_TRUE(numeric_name_less("shard_9_of_12.ckpt", "shard_10_of_12.ckpt"));
  EXPECT_TRUE(numeric_name_less("shard_0_of_2.ckpt", "shard_1_of_2.ckpt"));

  // Non-digit runs still compare bytewise.
  EXPECT_TRUE(numeric_name_less("alpha.ckpt", "beta.ckpt"));
  EXPECT_TRUE(numeric_name_less("a2x.ckpt", "a2y.ckpt"));

  // Equal numeric values with different spellings (leading zeros) stay
  // distinct and totally ordered: exactly one direction holds.
  const bool ab = numeric_name_less("a02", "a2");
  const bool ba = numeric_name_less("a2", "a02");
  EXPECT_NE(ab, ba);
  EXPECT_FALSE(numeric_name_less("a2", "a2"));
}

TEST_F(CheckpointTest, MergeVisitsFilesInNumericOrder) {
  // Both shard files claim case 5 (a layout change mid-resume can do
  // this).  First-wins must follow numeric shard order: shard_2's record
  // wins over shard_10's, even though "shard_10..." sorts first lexically.
  {
    CheckpointWriter low((dir_ / "shard_2_of_12.ckpt").string());
    low.append(5, "from-shard-2");
  }
  {
    CheckpointWriter high((dir_ / "shard_10_of_12.ckpt").string());
    high.append(5, "from-shard-10");
    high.append(6, "six");
  }
  const auto merged = scan_checkpoint_dir(dir_.string());
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.at(5), "from-shard-2");
  EXPECT_EQ(merged.at(6), "six");
}

TEST_F(CheckpointTest, RealRecordsReplaceDegradedOnesInTheMerge) {
  // A shard that once synthesized a degraded row for case 3 must not
  // shadow the real record a later layout's shard committed.
  {
    CheckpointWriter first((dir_ / "shard_0_of_1.ckpt").string());
    first.append(3, "DEGRADED:3");
  }
  {
    CheckpointWriter second((dir_ / "shard_1_of_2.ckpt").string());
    second.append(3, "real-three");
  }
  const auto is_degraded = [](const std::string& record) {
    return record.rfind("DEGRADED:", 0) == 0;
  };
  EXPECT_EQ(scan_checkpoint_dir(dir_.string(), is_degraded).at(3), "real-three");
  // Plain first-wins without the predicate keeps the earlier record.
  EXPECT_EQ(scan_checkpoint_dir(dir_.string()).at(3), "DEGRADED:3");
  // A degraded record never replaces a real one, whatever the order.
  {
    CheckpointWriter third((dir_ / "shard_2_of_3.ckpt").string());
    third.append(3, "DEGRADED:late");
  }
  EXPECT_EQ(scan_checkpoint_dir(dir_.string(), is_degraded).at(3), "real-three");
}

}  // namespace
}  // namespace lcosc::service
