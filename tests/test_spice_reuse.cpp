// Transient-solver reuse path: the cached linear base + kept LU factor
// must be bit-identical to the full-re-stamp reference, the solver
// counters must reflect the claimed work savings, and the step/trace
// bookkeeping fixes (t=0 first sample, step-indexed time, unclamped
// Newton convergence) must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.h"
#include "spice/transient_solver.h"

namespace lcosc::spice {
namespace {

constexpr double kDt = 1.0 / (4e6 * 64.0);

// Time-invariant linear only: resistive divider driven by a DC source.
void build_invariant(Circuit& c) {
  c.voltage_source("Vs", "in", "0", 5.0);
  c.resistor("R1", "in", "a", 1e3);
  c.resistor("R2", "a", "0", 2e3);
}

// Adds reactive elements (time-varying linear rhs) and a sine stimulus.
void build_varying(Circuit& c) {
  VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
  vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4e6, .phase_deg = 0.0});
  c.resistor("Rs", "in", "a", 5.0);
  c.inductor("L", "a", "b", 3.3e-6);
  c.resistor("Rl", "b", "0", 2.0);
  c.capacitor("C1", "a", "0", 0.5e-9);
  c.capacitor("C2", "a", "0", 0.5e-9);
}

// Nonlinear on top: a diode clamp forces per-iteration re-stamping.
void build_nonlinear(Circuit& c) {
  build_varying(c);
  c.diode("Dclamp", "a", "0");
}

TransientResult run(void (*build)(Circuit&), const TransientOptions& options) {
  Circuit c;
  build(c);
  return run_transient(c, options, {"a"});
}

void expect_identical_traces(const TransientResult& a, const TransientResult& b) {
  ASSERT_EQ(a.traces.size(), b.traces.size());
  ASSERT_EQ(a.steps, b.steps);
  for (std::size_t p = 0; p < a.traces.size(); ++p) {
    ASSERT_EQ(a.traces[p].size(), b.traces[p].size());
    for (std::size_t i = 0; i < a.traces[p].size(); ++i) {
      // Bit-identity, not tolerance: the cached path must perform the
      // same floating-point operations as the reference.
      ASSERT_EQ(a.traces[p].time(i), b.traces[p].time(i)) << "sample " << i;
      ASSERT_EQ(a.traces[p].value(i), b.traces[p].value(i)) << "sample " << i;
    }
  }
}

TransientOptions base_options() {
  TransientOptions options;
  options.dt = kDt;
  options.t_stop = 300.0 * kDt;
  options.start_from_dc = false;
  return options;
}

TEST(TransientReuse, InvariantCircuitBitIdenticalAB) {
  TransientOptions options = base_options();
  options.reuse_lu = true;
  const TransientResult cached = run(build_invariant, options);
  options.reuse_lu = false;
  const TransientResult uncached = run(build_invariant, options);
  EXPECT_TRUE(cached.converged);
  expect_identical_traces(cached, uncached);
}

TEST(TransientReuse, TimeVaryingCircuitBitIdenticalAB) {
  TransientOptions options = base_options();
  options.reuse_lu = true;
  const TransientResult cached = run(build_varying, options);
  options.reuse_lu = false;
  const TransientResult uncached = run(build_varying, options);
  EXPECT_TRUE(cached.converged);
  expect_identical_traces(cached, uncached);
}

TEST(TransientReuse, NonlinearCircuitBitIdenticalAB) {
  TransientOptions options = base_options();
  options.reuse_lu = true;
  const TransientResult cached = run(build_nonlinear, options);
  options.reuse_lu = false;
  const TransientResult uncached = run(build_nonlinear, options);
  EXPECT_TRUE(cached.converged);
  expect_identical_traces(cached, uncached);
}

TEST(TransientReuse, TrapezoidalBitIdenticalAB) {
  TransientOptions options = base_options();
  options.integration = Integration::Trapezoidal;
  options.reuse_lu = true;
  const TransientResult cached = run(build_varying, options);
  options.reuse_lu = false;
  const TransientResult uncached = run(build_varying, options);
  expect_identical_traces(cached, uncached);
}

// Counter tests use a binary-exact dt so N*dt is exact and the final
// step is a full step; with the default dt the last remaining interval
// differs from dt by an ulp and (correctly) costs a second base stamp.
TransientOptions exact_options() {
  TransientOptions options;
  options.dt = std::ldexp(1.0, -28);  // 2^-28 s ~ 3.7 ns, exactly representable
  options.t_stop = 300.0 * options.dt;
  options.start_from_dc = false;
  return options;
}

TEST(TransientReuse, LinearCircuitFactorsOncePerStepSize) {
  TransientOptions options = exact_options();
  options.reuse_lu = true;
  const TransientResult r = run(build_varying, options);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.stats.halvings, 0u);
  // One step size for the whole run: one base stamp, one factorization.
  EXPECT_EQ(r.stats.matrix_stamps, 1u);
  EXPECT_EQ(r.stats.factorizations, 1u);
  // One rhs assembly and one substitution per accepted step.
  EXPECT_EQ(r.stats.rhs_stamps, r.steps);
  EXPECT_EQ(r.stats.rhs_solves, r.steps);
  EXPECT_EQ(r.stats.newton_iterations, r.steps);
  // Every step "converged" in one pass.
  EXPECT_EQ(r.stats.newton_histogram[0], r.steps);
}

TEST(TransientReuse, UncachedReferenceRestampsEveryStep) {
  TransientOptions options = base_options();
  options.reuse_lu = false;
  const TransientResult r = run(build_varying, options);
  ASSERT_TRUE(r.converged);
  // The reference path rebuilds the base and re-factors per iteration.
  EXPECT_EQ(r.stats.matrix_stamps, r.stats.newton_iterations);
  EXPECT_EQ(r.stats.factorizations, r.stats.newton_iterations);
}

TEST(TransientReuse, NonlinearRefactorsPerIterationButStampsBaseOnce) {
  TransientOptions options = exact_options();
  options.reuse_lu = true;
  const TransientResult r = run(build_nonlinear, options);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.stats.matrix_stamps, 1u);
  EXPECT_EQ(r.stats.factorizations, r.stats.newton_iterations);
  EXPECT_EQ(r.stats.rhs_solves, r.stats.newton_iterations);
  // The diode needs Newton: more total iterations than steps.
  EXPECT_GT(r.stats.newton_iterations, r.steps);
}

// Satellite regression: the first recorded sample sits at exactly t = 0
// (the historical implementation used a negative epsilon timestamp).
TEST(TransientReuse, FirstSampleAtExactlyTimeZero) {
  TransientOptions options = base_options();
  const TransientResult r = run(build_varying, options);
  ASSERT_GT(r.traces[0].size(), 0u);
  EXPECT_EQ(r.traces[0].time(0), 0.0);
  for (std::size_t i = 0; i < r.traces[0].size(); ++i) {
    EXPECT_GE(r.traces[0].time(i), 0.0);
  }
}

// Satellite regression: step-indexed time cannot drift against t_stop.
// 10000 accumulating additions of this dt land visibly off the grid; the
// step-indexed clock lands the final sample exactly on t_stop.
TEST(TransientReuse, StepIndexedTimeLandsExactlyOnStop) {
  TransientOptions options;
  options.dt = 1e-9;
  options.t_stop = 10000.0 * options.dt;
  options.start_from_dc = false;
  const TransientResult r = run(build_varying, options);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.steps, 10000u);
  const Trace& tr = r.traces[0];
  EXPECT_EQ(tr.time(tr.size() - 1), options.t_stop);
}

// A t_stop off the dt grid gets one reduced final step that lands on
// t_stop (within float addition of the remainder), not an extra step.
TEST(TransientReuse, PartialFinalStepLandsOnStop) {
  TransientOptions options = base_options();
  options.t_stop = 100.5 * options.dt;
  const TransientResult r = run(build_varying, options);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.steps, 101u);
  const Trace& tr = r.traces[0];
  EXPECT_NEAR(tr.time(tr.size() - 1), options.t_stop, 1e-12 * options.t_stop);
}

// Satellite regression: convergence is judged on the *unclamped* Newton
// delta.  With a voltage step limit far below the tolerance window, a
// still-moving iterate must not be accepted as converged -- the clamped
// update would always look "small enough".
TEST(TransientReuse, ConvergenceTestsUnclampedDelta) {
  TransientOptions options = base_options();
  options.t_stop = 50.0 * options.dt;
  // Step limit below voltage_abstol: the clamped delta can never exceed
  // the tolerance, so a clamped-delta test would accept after one pass.
  options.voltage_step_limit = 0.5e-6;
  options.max_iterations = 400;
  const TransientResult limited = run(build_nonlinear, options);
  // The true per-step voltage changes are ~mV: resolving them through a
  // 0.5 uV clamp requires many genuine Newton iterations per step.
  EXPECT_GT(limited.stats.newton_iterations, 10u * limited.steps);
}

TEST(TransientReuse, CountersAggregateWithPlusEquals) {
  TransientStats a;
  a.matrix_stamps = 1;
  a.rhs_solves = 2;
  a.newton_histogram[0] = 3;
  a.stamp_seconds = 0.5;
  TransientStats b;
  b.matrix_stamps = 10;
  b.rhs_solves = 20;
  b.newton_histogram[0] = 30;
  b.stamp_seconds = 0.25;
  a += b;
  EXPECT_EQ(a.matrix_stamps, 11u);
  EXPECT_EQ(a.rhs_solves, 22u);
  EXPECT_EQ(a.newton_histogram[0], 33u);
  EXPECT_DOUBLE_EQ(a.stamp_seconds, 0.75);
}

}  // namespace
}  // namespace lcosc::spice
