// Physically modeled 3-coil sensor (inductance-matrix magnetics).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "system/magnetic_sensor.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

MagneticSensorConfig magnetic_config(double angle) {
  MagneticSensorConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  cfg.rotor_angle = angle;
  return cfg;
}

TEST(MagneticSensor, RegulatesAndRecoversAngle) {
  MagneticSensorSystem sys(magnetic_config(0.7));
  const MagneticSensorResult r = sys.run(15e-3);
  EXPECT_NEAR(r.settled_amplitude, 2.7, 2.7 * 0.08);
  EXPECT_NEAR(r.angle_error, 0.0, 0.01);
}

class MagneticAngles : public ::testing::TestWithParam<double> {};

TEST_P(MagneticAngles, FullCircle) {
  MagneticSensorSystem sys(magnetic_config(GetParam()));
  const MagneticSensorResult r = sys.run(12e-3);
  EXPECT_NEAR(r.angle_error, 0.0, 0.01) << "theta = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Quadrants, MagneticAngles,
                         ::testing::Values(-2.8, -1.6, -0.5, 0.0, 0.9, 1.57, 2.4, 3.1));

TEST(MagneticSensor, ChannelAmplitudeMatchesTheory) {
  // Demodulated channel ~ (2/pi) * k * (A/2-ish...) -- more precisely the
  // synchronous average of the in-phase induced sense voltage:
  // EMF_peak = k * A * sqrt(L_rx / L_exc), attenuated by the load divider
  // R_load / (R_coil + R_load) and the small coil reactance phase.
  MagneticSensorConfig cfg = magnetic_config(kPi / 2.0);  // all into sin
  MagneticSensorSystem sys(cfg);
  const MagneticSensorResult r = sys.run(15e-3);
  const double emf_peak = cfg.peak_coupling * r.settled_amplitude *
                          std::sqrt(cfg.receive_inductance / cfg.tank.inductance);
  const double divider =
      cfg.load_resistance / (cfg.load_resistance + cfg.receive_resistance);
  const double expected = (2.0 / kPi) * emf_peak * divider;
  EXPECT_NEAR(r.sin_channel, expected, expected * 0.10);
  EXPECT_NEAR(r.cos_channel, 0.0, expected * 0.05);
}

TEST(MagneticSensor, CouplingModulatesBothChannels) {
  // 45 degrees: both channels equal.
  MagneticSensorSystem sys(magnetic_config(kPi / 4.0));
  const MagneticSensorResult r = sys.run(12e-3);
  EXPECT_NEAR(r.sin_channel, r.cos_channel, std::abs(r.sin_channel) * 0.05);
}

TEST(MagneticSensor, StiffLoadRejected) {
  MagneticSensorConfig cfg = magnetic_config(0.0);
  cfg.load_resistance = 100e3;  // pole far beyond the step
  EXPECT_THROW(MagneticSensorSystem{cfg}, ConfigError);
}

TEST(MagneticSensor, MagneticsArePhysical) {
  MagneticSensorSystem sys(magnetic_config(1.0));
  EXPECT_EQ(sys.magnetics().coil_count(), 3u);
  EXPECT_GT(sys.magnetics().stored_energy({1.0, 0.1, 0.1}), 0.0);
}

}  // namespace
}  // namespace lcosc::system
