// Tests for the ODE integrators: accuracy on closed-form problems,
// convergence order, observer control, energy behaviour on the harmonic
// oscillator (the core of the tank transient engine).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "numeric/ode.h"

namespace lcosc {
namespace {

// dx/dt = -x, x(0)=1 -> x(t) = exp(-t).
const OdeRhs kDecay = [](double, const Vector& x, Vector& d) { d[0] = -x[0]; };

// Harmonic oscillator x'' = -w^2 x as a 2-state system.
OdeRhs harmonic(double w) {
  return [w](double, const Vector& x, Vector& d) {
    d[0] = x[1];
    d[1] = -w * w * x[0];
  };
}

TEST(Rk4, ExponentialDecayAccuracy) {
  const OdeResult r = integrate_rk4(kDecay, 0.0, 1.0, {1.0}, {.step = 1e-3});
  EXPECT_NEAR(r.state[0], std::exp(-1.0), 1e-10);
  EXPECT_EQ(r.steps_taken, 1000u);
}

TEST(Rk4, FourthOrderConvergence) {
  auto error_at = [](double h) {
    const OdeResult r = integrate_rk4(kDecay, 0.0, 1.0, {1.0}, {.step = h});
    return std::abs(r.state[0] - std::exp(-1.0));
  };
  const double e1 = error_at(1e-2);
  const double e2 = error_at(5e-3);
  // Halving the step should cut the error ~16x for a 4th order method.
  EXPECT_NEAR(e1 / e2, 16.0, 3.0);
}

TEST(Rk4, HarmonicOscillatorEnergyStable) {
  const double w = kTwoPi * 1.0;  // 1 Hz
  // 100 periods at 200 steps/period.
  const OdeResult r = integrate_rk4(harmonic(w), 0.0, 100.0, {1.0, 0.0}, {.step = 1.0 / 200});
  const double energy = w * w * r.state[0] * r.state[0] + r.state[1] * r.state[1];
  EXPECT_NEAR(energy, w * w, w * w * 1e-4);
}

TEST(Rk4, ObserverStopsEarly) {
  std::size_t calls = 0;
  const OdeObserver observer = [&](double t, const Vector&) {
    ++calls;
    return t < 0.5;
  };
  const OdeResult r = integrate_rk4(kDecay, 0.0, 1.0, {1.0}, {.step = 1e-2}, observer);
  EXPECT_LT(r.t_end, 0.6);
  EXPECT_GT(calls, 10u);
}

TEST(Rk4, FinalPartialStepLandsExactly) {
  const OdeResult r = integrate_rk4(kDecay, 0.0, 0.95e-2, {1.0}, {.step = 1e-2});
  EXPECT_DOUBLE_EQ(r.t_end, 0.95e-2);
}

TEST(Rkf45, AdaptiveDecay) {
  Rkf45Options options;
  options.abs_tolerance = 1e-10;
  options.rel_tolerance = 1e-10;
  options.max_step = 0.1;
  const OdeResult r = integrate_rkf45(kDecay, 0.0, 1.0, {1.0}, options);
  EXPECT_NEAR(r.state[0], std::exp(-1.0), 1e-8);
  // Should need far fewer steps than fixed-step RK4 at similar accuracy.
  EXPECT_LT(r.steps_taken, 500u);
}

TEST(Rkf45, StepRejectionHappensOnSharpFeatures) {
  // A steep sigmoid transition forces rejections with a large max_step.
  const OdeRhs rhs = [](double t, const Vector& x, Vector& d) {
    (void)x;
    d[0] = 1.0 / (1.0 + std::exp(-200.0 * (t - 0.5)));
  };
  Rkf45Options options;
  options.initial_step = 0.25;
  options.max_step = 0.25;
  options.abs_tolerance = 1e-10;
  options.rel_tolerance = 1e-10;
  const OdeResult r = integrate_rkf45(rhs, 0.0, 1.0, {0.0}, options);
  EXPECT_GT(r.steps_rejected, 0u);
  EXPECT_NEAR(r.state[0], 0.5, 1e-2);  // integral of the sigmoid over [0,1]
}

TEST(Rkf45, HarmonicAgainstClosedForm) {
  const double w = kTwoPi * 3.0;
  Rkf45Options options;
  options.abs_tolerance = 1e-9;
  options.rel_tolerance = 1e-9;
  options.max_step = 1e-2;
  const OdeResult r = integrate_rkf45(harmonic(w), 0.0, 2.0, {1.0, 0.0}, options);
  EXPECT_NEAR(r.state[0], std::cos(w * 2.0), 1e-5);
  EXPECT_NEAR(r.state[1], -w * std::sin(w * 2.0), w * 1e-5);
}

TEST(Trapezoidal, DecayAccuracy) {
  const OdeResult r = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, {.step = 1e-3});
  EXPECT_NEAR(r.state[0], std::exp(-1.0), 1e-7);
}

TEST(Trapezoidal, AStableOnStiffDecay) {
  // lambda = -1e6 with a step far beyond the explicit stability limit.
  const OdeRhs stiff = [](double, const Vector& x, Vector& d) { d[0] = -1e6 * x[0]; };
  const OdeResult r = integrate_trapezoidal(stiff, 0.0, 1e-3, {1.0},
                                            {.step = 1e-5, .max_corrector_iterations = 200});
  EXPECT_TRUE(std::isfinite(r.state[0]));
  EXPECT_LT(std::abs(r.state[0]), 1.0);
}

TEST(Trapezoidal, SecondOrderConvergence) {
  auto error_at = [](double h) {
    const OdeResult r = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, {.step = h});
    return std::abs(r.state[0] - std::exp(-1.0));
  };
  const double e1 = error_at(1e-2);
  const double e2 = error_at(5e-3);
  EXPECT_NEAR(e1 / e2, 4.0, 1.0);
}

TEST(TrapezoidalAdaptive, OffByDefaultAndFixedPathUnchanged) {
  EXPECT_FALSE(TrapezoidalOptions{}.adaptive);
  // The adaptive flag must not perturb the default path: identical
  // doubles with and without the (defaulted) new fields present.
  const OdeResult a = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, {.step = 1e-3});
  TrapezoidalOptions opts;
  opts.step = 1e-3;
  opts.adaptive = false;
  const OdeResult b = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, opts);
  EXPECT_EQ(a.state[0], b.state[0]);
  EXPECT_EQ(a.steps_taken, b.steps_taken);
  EXPECT_EQ(b.steps_rejected, 0u);
}

TEST(TrapezoidalAdaptive, MatchesClosedFormWithFewerSteps) {
  // Smooth decay: the controller should coarsen far beyond the nominal
  // step while holding the reltol-scaled accuracy target.
  TrapezoidalOptions opts;
  opts.step = 1e-3;
  opts.adaptive = true;
  opts.abs_tolerance = 1e-9;
  opts.rel_tolerance = 1e-6;
  const OdeResult r = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, opts);
  EXPECT_NEAR(r.t_end, 1.0, 1e-9);
  EXPECT_NEAR(r.state[0], std::exp(-1.0), 1e-4);
  const OdeResult fixed = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, {.step = 1e-3});
  EXPECT_GE(fixed.steps_taken, 3 * r.steps_taken)
      << "fixed " << fixed.steps_taken << " adaptive " << r.steps_taken;
}

TEST(TrapezoidalAdaptive, StiffDetectorStateRefinesThenCoarsens) {
  // An RC detector state driven by a step at t = 0: fast initial
  // transient (tau = 10 us) followed by a flat tail.  The controller
  // must reject steps during the edge and ride the ceiling afterwards.
  const double tau = 10e-6;
  const OdeRhs detector = [tau](double, const Vector& x, Vector& d) {
    d[0] = (1.0 - x[0]) / tau;
  };
  TrapezoidalOptions opts;
  opts.step = 20e-6;  // deliberately coarse against the transient
  opts.adaptive = true;
  opts.abs_tolerance = 1e-9;
  opts.rel_tolerance = 1e-5;
  const OdeResult r = integrate_trapezoidal(detector, 0.0, 20e-3, {0.0}, opts);
  EXPECT_NEAR(r.state[0], 1.0, 1e-6);
  EXPECT_GT(r.steps_rejected, 0u);
  // Resolving the edge takes ~100 refined steps, but the flat tail rides
  // the 64x ceiling, so the total still beats the 1000 fixed steps 3x.
  const OdeResult fixed = integrate_trapezoidal(detector, 0.0, 20e-3, {0.0}, {.step = 20e-6});
  EXPECT_GE(fixed.steps_taken, 3 * r.steps_taken)
      << "fixed " << fixed.steps_taken << " adaptive " << r.steps_taken;
}

TEST(TrapezoidalAdaptive, ObserverSeesMonotoneTimesAndCanStop) {
  TrapezoidalOptions opts;
  opts.step = 1e-3;
  opts.adaptive = true;
  double last_t = -1.0;
  std::size_t calls = 0;
  const OdeObserver observer = [&](double t, const Vector&) {
    EXPECT_GT(t, last_t);
    last_t = t;
    ++calls;
    return t < 0.5;
  };
  const OdeResult r = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, opts, observer);
  EXPECT_GE(r.t_end, 0.5);
  EXPECT_LT(r.t_end, 1.0);
  EXPECT_EQ(calls, r.steps_taken + 1);  // initial sample plus accepted steps
}

TEST(TrapezoidalAdaptive, RespectsExplicitStepBounds) {
  TrapezoidalOptions opts;
  opts.step = 1e-3;
  opts.adaptive = true;
  opts.min_step = 1e-3;
  opts.max_step = 1e-3;  // degenerate bounds: behaves like the fixed grid
  const OdeResult r = integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, opts);
  EXPECT_NEAR(r.state[0], std::exp(-1.0), 1e-6);
  EXPECT_NEAR(static_cast<double>(r.steps_taken), 1000.0, 2.0);
}

TEST(OdeOptions, InvalidArgumentsThrow) {
  EXPECT_THROW(integrate_rk4(kDecay, 0.0, 1.0, {1.0}, {.step = 0.0}), ConfigError);
  EXPECT_THROW(integrate_rk4(kDecay, 1.0, 0.0, {1.0}, {.step = 1e-3}), ConfigError);
  EXPECT_THROW(integrate_trapezoidal(kDecay, 0.0, 1.0, {1.0}, {.step = -1.0}), ConfigError);
}

}  // namespace
}  // namespace lcosc
