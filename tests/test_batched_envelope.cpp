// Lockstep SoA envelope engine versus the serial EnvelopeSimulator
// reference, plus the building blocks (BatchedState, device banks).
// Every comparison here is EXACT equality: the batched engine's contract
// is bit-identity with the serial path, not closeness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "devices/batched_blocks.h"
#include "devices/lowpass.h"
#include "numeric/batched_state.h"
#include "system/batched_envelope.h"
#include "system/envelope_simulator.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

EnvelopeSimConfig base_config() {
  EnvelopeSimConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  return cfg;
}

TEST(BatchedState, ChannelsAreZeroInitializedSpans) {
  BatchedState state(3, 5);
  EXPECT_EQ(state.channels(), 3u);
  EXPECT_EQ(state.lanes(), 5u);
  for (std::size_t c = 0; c < 3; ++c) {
    auto span = state.channel(c);
    ASSERT_EQ(span.size(), 5u);
    for (const double v : span) EXPECT_EQ(v, 0.0);
  }
  state.at(1, 2) = 42.0;
  EXPECT_EQ(state.channel(1)[2], 42.0);
  EXPECT_EQ(state.channel(0)[2], 0.0);
}

TEST(BatchedState, DeactivationTracksActiveLanes) {
  BatchedState state(1, 3);
  EXPECT_TRUE(state.any_active());
  EXPECT_EQ(state.active_count(), 3u);
  state.deactivate(1);
  state.deactivate(1);  // idempotent
  EXPECT_EQ(state.active_count(), 2u);
  EXPECT_TRUE(state.active(0));
  EXPECT_FALSE(state.active(1));
  state.deactivate(0);
  state.deactivate(2);
  EXPECT_FALSE(state.any_active());
}

TEST(BatchedState, InvalidShapesRejected) {
  EXPECT_THROW(BatchedState(0, 4), Error);
  EXPECT_THROW(BatchedState(2, 0), Error);
}

TEST(DeviceBanks, LowPassBankMatchesScalarFilterExactly) {
  const double tau = 20e-6;
  constexpr std::size_t kLanes = 7;
  devices::LowPassBank bank(tau, kLanes);
  std::vector<devices::LowPassFilter> scalars(kLanes, devices::LowPassFilter(tau));

  std::vector<double> x(kLanes);
  for (int step = 0; step < 200; ++step) {
    // Mid-run dt change exercises the memoized alpha.
    const double dt = step < 120 ? 2e-6 : 1e-6;
    for (std::size_t i = 0; i < kLanes; ++i) {
      x[i] = std::sin(0.1 * step + 0.37 * static_cast<double>(i));
      scalars[i].step(dt, x[i]);
    }
    bank.step(dt, x);
    for (std::size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(bank.output(i), scalars[i].output()) << "lane " << i << " step " << step;
    }
  }
}

TEST(DeviceBanks, RectifiedMeanBankMatchesScalarExpression) {
  const std::vector<double> amps = {0.05, 1.0, 2.7, 3.3};
  std::vector<double> out(amps.size());
  devices::rectified_mean_bank(amps, out);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    EXPECT_EQ(out[i], amps[i] / kPi);
  }
}

TEST(DeviceBanks, WindowVerdictBankMatchesSerialClassification) {
  const std::vector<double> vdc1 = {0.5, 0.8, 1.2, 0.8600000000000001, 0.86};
  const std::vector<double> vr3 = {0.86, 0.86, 0.86, 0.86, 0.86};
  const std::vector<double> vr4 = {0.94, 0.94, 0.94, 0.94, 0.94};
  std::vector<devices::WindowState> out(vdc1.size());
  devices::window_verdict_bank(vdc1, vr3, vr4, out);
  for (std::size_t i = 0; i < vdc1.size(); ++i) {
    devices::WindowState expected = devices::WindowState::Inside;
    if (vdc1[i] < vr3[i]) expected = devices::WindowState::Below;
    else if (vdc1[i] > vr4[i]) expected = devices::WindowState::Above;
    EXPECT_EQ(out[i], expected) << "lane " << i;
  }
}

TEST(BatchedEnvelope, MatchesSerialSimulatorExactly) {
  // Heterogeneous lanes: component spread plus one mismatched DAC.
  std::vector<BatchedEnvelopeLane> lanes;
  const double scale[4] = {1.0, 0.93, 1.08, 1.02};
  for (int i = 0; i < 4; ++i) {
    BatchedEnvelopeLane lane;
    lane.config = base_config();
    lane.config.tank.inductance *= scale[i];
    lane.config.tank.capacitance1 *= scale[(i + 1) % 4];
    lane.config.tank.series_resistance *= scale[(i + 2) % 4];
    if (i == 2) {
      dac::MismatchConfig mismatch;
      lane.mismatch_dac = std::make_shared<const dac::CurrentLimitationDac>(
          lane.config.driver.unit_current, mismatch, 77u);
    }
    lanes.push_back(lane);
  }

  const double duration = 20e-3;
  const auto batched = run_batched_envelope(lanes, duration);
  ASSERT_EQ(batched.size(), lanes.size());

  for (std::size_t i = 0; i < lanes.size(); ++i) {
    EnvelopeSimulator sim(lanes[i].config);
    if (lanes[i].mismatch_dac != nullptr) {
      sim.driver().use_mismatched_dac(lanes[i].mismatch_dac);
    }
    const EnvelopeRunResult serial = sim.run(duration);

    EXPECT_FALSE(batched[i].setup_failed) << "lane " << i;
    EXPECT_FALSE(batched[i].diverged) << "lane " << i;
    EXPECT_EQ(batched[i].final_code, serial.final_code) << "lane " << i;
    EXPECT_EQ(batched[i].settled_amplitude, serial.settled_amplitude()) << "lane " << i;
    ASSERT_FALSE(serial.ticks.empty());
    EXPECT_EQ(batched[i].supply_current, serial.ticks.back().supply_current)
        << "lane " << i;
    EXPECT_EQ(batched[i].substeps, serial.substeps) << "lane " << i;
  }
}

TEST(BatchedEnvelope, BadLaneIsFlaggedNotFatal) {
  // A lane with a nonsense tank must not poison its batch mates.
  std::vector<BatchedEnvelopeLane> lanes(2);
  lanes[0].config = base_config();
  lanes[1].config = base_config();
  lanes[1].config.tank.inductance = -1.0;  // RlcTank construction throws
  const auto results = run_batched_envelope(lanes, 5e-3);
  EXPECT_FALSE(results[0].setup_failed);
  EXPECT_TRUE(results[1].setup_failed);

  EnvelopeSimulator reference(lanes[0].config);
  const auto serial = reference.run(5e-3);
  EXPECT_EQ(results[0].final_code, serial.final_code);
  EXPECT_EQ(results[0].settled_amplitude, serial.settled_amplitude());
}

TEST(BatchedEnvelope, StreamingEngineMatchesOneShotBatch) {
  // The rolling-window engine must produce, lane for lane, exactly the
  // result a single all-lanes-at-once batch produces -- lanes are
  // arithmetically independent, so grouping is invisible.  chunk sizes
  // that do not divide the total exercise the ragged final window.
  constexpr std::size_t kTotal = 11;
  const double scale[4] = {1.0, 0.93, 1.08, 1.02};
  auto make_lane = [&](std::size_t i) {
    BatchedEnvelopeLane lane;
    lane.config = base_config();
    lane.config.tank.inductance *= scale[i % 4];
    lane.config.tank.series_resistance *= scale[(i + 2) % 4];
    return lane;
  };

  std::vector<BatchedEnvelopeLane> all;
  for (std::size_t i = 0; i < kTotal; ++i) all.push_back(make_lane(i));
  const double duration = 5e-3;
  const std::vector<BatchedLaneResult> one_shot = run_batched_envelope(all, duration);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    const BatchedEnvelopeEngine engine(chunk);
    EXPECT_EQ(engine.chunk_lanes(), chunk);
    std::vector<BatchedLaneResult> streamed(kTotal);
    std::vector<std::size_t> order;
    engine.run(kTotal, duration, make_lane,
               [&](std::size_t index, const BatchedLaneResult& result) {
                 order.push_back(index);
                 streamed[index] = result;
               });
    // Sink fires once per lane, in lane order.
    ASSERT_EQ(order.size(), kTotal) << "chunk " << chunk;
    for (std::size_t i = 0; i < kTotal; ++i) EXPECT_EQ(order[i], i) << "chunk " << chunk;
    for (std::size_t i = 0; i < kTotal; ++i) {
      EXPECT_EQ(streamed[i].final_code, one_shot[i].final_code)
          << "chunk " << chunk << " lane " << i;
      EXPECT_EQ(streamed[i].settled_amplitude, one_shot[i].settled_amplitude)
          << "chunk " << chunk << " lane " << i;
      EXPECT_EQ(streamed[i].supply_current, one_shot[i].supply_current)
          << "chunk " << chunk << " lane " << i;
      EXPECT_EQ(streamed[i].substeps, one_shot[i].substeps)
          << "chunk " << chunk << " lane " << i;
    }
  }
}

TEST(BatchedEnvelope, StreamingEngineRejectsZeroChunk) {
  EXPECT_THROW(BatchedEnvelopeEngine(0), Error);
}

TEST(BatchedEnvelope, SharedGridIsRequired) {
  EXPECT_THROW((void)run_batched_envelope({}, 1e-3), Error);

  std::vector<BatchedEnvelopeLane> lanes(2);
  lanes[0].config = base_config();
  lanes[1].config = base_config();
  EXPECT_THROW((void)run_batched_envelope(lanes, 0.0), Error);

  lanes[1].config.dt *= 2.0;  // mismatched step grid
  EXPECT_THROW((void)run_batched_envelope(lanes, 1e-3), Error);

  lanes[1].config = base_config();
  lanes[1].config.adaptive = true;  // lockstep engine is fixed-step only
  EXPECT_THROW((void)run_batched_envelope(lanes, 1e-3), Error);
}

}  // namespace
}  // namespace lcosc::system
