// Transient (backward Euler) analysis cross-checks against closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "spice/circuit.h"
#include "spice/mutual_coupling.h"
#include "spice/transient_solver.h"
#include "waveform/measurements.h"

namespace lcosc::spice {
namespace {

TEST(Transient, RcCharge) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 1.0);
  c.resistor("R1", "in", "out", 1e3);
  c.capacitor("C1", "out", "0", 1e-6);  // tau = 1 ms
  TransientOptions opt;
  opt.t_stop = 5e-3;
  opt.dt = 5e-6;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"out"});
  EXPECT_TRUE(r.converged);
  const Trace& out = r.trace("out");
  // After 1 tau: 63.2%; after 5 tau: ~99.3%.
  EXPECT_NEAR(out.sample_at(1e-3), 1.0 - std::exp(-1.0), 0.01);
  EXPECT_NEAR(out.sample_at(5e-3), 1.0, 0.01);
}

TEST(Transient, RlCurrentRise) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 1.0);
  c.resistor("R1", "in", "out", 100.0);
  c.inductor("L1", "out", "0", 10e-3);  // tau = L/R = 100 us
  TransientOptions opt;
  opt.t_stop = 500e-6;
  opt.dt = 1e-6;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"out"});
  EXPECT_TRUE(r.converged);
  // v(out) = V exp(-t/tau) across the inductor.
  EXPECT_NEAR(r.trace("out").sample_at(100e-6), std::exp(-1.0), 0.02);
}

TEST(Transient, LcRingingFrequency) {
  Circuit c;
  // Pre-charged capacitor rings into an inductor.
  c.capacitor("C1", "a", "0", 1e-9, /*initial_voltage=*/1.0);
  c.inductor("L1", "a", "0", 1e-6);
  // f0 = 1/(2 pi sqrt(LC)) ~ 5.03 MHz.
  TransientOptions opt;
  opt.t_stop = 2e-6;
  opt.dt = 1e-9;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"a"});
  EXPECT_TRUE(r.converged);
  const auto f = estimate_frequency(r.trace("a"));
  ASSERT_TRUE(f.has_value());
  const double f0 = 1.0 / (kTwoPi * std::sqrt(1e-6 * 1e-9));
  EXPECT_NEAR(*f, f0, f0 * 0.05);
}

TEST(Transient, StartFromDcIsQuiet) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 2.0);
  c.resistor("R1", "in", "out", 1e3);
  c.capacitor("C1", "out", "0", 1e-6);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 10e-6;
  opt.start_from_dc = true;
  const TransientResult r = run_transient(c, opt, {"out"});
  EXPECT_TRUE(r.converged);
  // Already at the operating point: stays there.
  EXPECT_NEAR(peak_to_peak(r.trace("out")), 0.0, 1e-3);
}

TEST(Transient, DiodeRectifiesTransient) {
  // Half-wave rectifier driven by a pre-charged capacitor through the
  // diode into a load: output never goes significantly negative.
  Circuit c;
  c.capacitor("Csrc", "a", "0", 1e-6, 3.0);
  c.inductor("L1", "a", "0", 1e-3);  // rings, swinging a negative
  c.diode("D1", "a", "out");
  c.resistor("RL", "out", "0", 1e4);
  c.capacitor("CL", "out", "0", 1e-8);
  TransientOptions opt;
  opt.t_stop = 1e-4;
  opt.dt = 1e-7;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"a", "out"});
  EXPECT_TRUE(r.converged);
  double min_out = 1e9;
  for (const double v : r.trace("out").values()) min_out = std::min(min_out, v);
  EXPECT_GT(min_out, -0.1);
  EXPECT_GT(peak_amplitude(r.trace("out")), 1.0);
}

TEST(TransientTrapezoidal, SecondOrderBeatsBackwardEuler) {
  // Ring-down of a lossless LC: backward Euler damps the amplitude
  // numerically; trapezoidal preserves it.
  auto ring_amplitude = [](Integration method) {
    Circuit c;
    c.capacitor("C1", "a", "0", 1e-9, /*initial_voltage=*/1.0);
    c.inductor("L1", "a", "0", 1e-6);
    TransientOptions opt;
    opt.t_stop = 3e-6;  // ~15 ring cycles
    opt.dt = 2e-9;
    opt.integration = method;
    opt.start_from_dc = false;
    const TransientResult r = run_transient(c, opt, {"a"});
    EXPECT_TRUE(r.converged);
    const Trace tail = r.trace("a").window(2.5e-6, 3e-6);
    return peak_amplitude(tail);
  };
  const double be = ring_amplitude(Integration::BackwardEuler);
  const double trap = ring_amplitude(Integration::Trapezoidal);
  EXPECT_GT(trap, 0.95);          // energy preserved
  EXPECT_LT(be, 0.8 * trap);      // BE visibly damped
}

TEST(TransientTrapezoidal, RcAccuracy) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 1.0);
  c.resistor("R1", "in", "out", 1e3);
  c.capacitor("C1", "out", "0", 1e-6);
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.dt = 20e-6;
  opt.integration = Integration::Trapezoidal;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"out"});
  EXPECT_TRUE(r.converged);
  // Trapezoidal at a coarse step still tracks the exponential closely;
  // the residual error is the classic cold start through the t=0 step
  // input (i_hist starts at zero), not accumulation.
  EXPECT_NEAR(r.trace("out").sample_at(1e-3), 1.0 - std::exp(-1.0), 5e-3);
}

TEST(TransientTrapezoidal, RlCurrentRamp) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 1.0);
  c.resistor("R1", "in", "out", 100.0);
  c.inductor("L1", "out", "0", 10e-3);
  TransientOptions opt;
  opt.t_stop = 500e-6;
  opt.dt = 2e-6;
  opt.integration = Integration::Trapezoidal;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"out"});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.trace("out").sample_at(100e-6), std::exp(-1.0), 5e-3);
}

TEST(TransientCoupling, TransformerVoltageRatio) {
  // Ideal-ish transformer: drive L1 with a sine through a source resistor
  // and observe the open-circuit secondary: v2 ~ k sqrt(L2/L1) v(L1).
  Circuit c;
  auto& vs = c.voltage_source("V1", "in", "0", 0.0);
  (void)vs;
  c.resistor("Rs", "in", "p", 50.0);
  auto& l1 = c.inductor("L1", "p", "0", 100e-6);
  auto& l2 = c.inductor("L2", "s", "0", 400e-6);
  c.resistor("Rload", "s", "0", 1e6);  // near-open secondary
  c.add<MutualCoupling>("K1", l1, l2, 0.9);
  c.finalize();

  // Replace the DC source with a transient sine by manually stepping: use
  // the sweep-style approach -- run BE transient while updating V1 per step
  // is not supported, so instead excite with an initial capacitor. Simpler:
  // drive via initial current in L1 and watch the coupled ring-down.
  Circuit c2;
  auto& l1b = c2.inductor("L1", "p", "0", 100e-6, /*ic=*/10e-3);
  c2.capacitor("C1", "p", "0", 1e-9);
  auto& l2b = c2.inductor("L2", "s", "0", 400e-6);
  c2.resistor("Rload", "s", "0", 1e6);
  c2.capacitor("Cs", "s", "0", 1e-12);
  c2.add<MutualCoupling>("K1", l1b, l2b, 0.9);
  TransientOptions opt;
  opt.t_stop = 4e-6;
  opt.dt = 1e-9;
  opt.integration = Integration::Trapezoidal;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c2, opt, {"p", "s"});
  EXPECT_TRUE(r.converged);
  const double vp = peak_amplitude(r.trace("p"));
  const double vs_peak = peak_amplitude(r.trace("s"));
  // Voltage transformation: k * sqrt(L2/L1) = 0.9 * 2 = 1.8.
  EXPECT_NEAR(vs_peak / vp, 1.8, 0.15);
}

TEST(TransientCoupling, ZeroCouplingIsolates) {
  Circuit c;
  auto& l1 = c.inductor("L1", "p", "0", 100e-6, 10e-3);
  c.capacitor("C1", "p", "0", 1e-9);
  auto& l2 = c.inductor("L2", "s", "0", 100e-6);
  c.resistor("Rload", "s", "0", 1e3);
  c.add<MutualCoupling>("K1", l1, l2, 1e-6);
  TransientOptions opt;
  opt.t_stop = 2e-6;
  opt.dt = 1e-9;
  opt.start_from_dc = false;
  const TransientResult r = run_transient(c, opt, {"p", "s"});
  EXPECT_GT(peak_amplitude(r.trace("p")), 0.5);
  EXPECT_LT(peak_amplitude(r.trace("s")), 1e-3);
}

TEST(TransientCoupling, InvalidCouplingRejected) {
  Circuit c;
  auto& l1 = c.inductor("L1", "a", "0", 1e-6);
  auto& l2 = c.inductor("L2", "b", "0", 1e-6);
  EXPECT_THROW(c.add<MutualCoupling>("K1", l1, l2, 1.0), ConfigError);
  EXPECT_THROW(c.add<MutualCoupling>("K2", l1, l1, 0.5), ConfigError);
}

TEST(Transient, UnknownProbeThrows) {
  Circuit c;
  c.resistor("R1", "a", "0", 1.0);
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  EXPECT_THROW(run_transient(c, opt, {"zzz"}), NetlistError);
  const TransientResult r = run_transient(c, opt, {"a"});
  EXPECT_THROW(r.trace("zzz"), ConfigError);
}

}  // namespace
}  // namespace lcosc::spice
