// PI step controller and power-of-two step grid: the accept/reject
// policy shared by every adaptive engine in the tree.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "numeric/step_control.h"

namespace lcosc {
namespace {

TEST(PiStepController, SmallErrorGrowsStep) {
  PiStepController c{StepControlOptions{}};
  const double f = c.propose_factor(1e-4, true);
  EXPECT_GT(f, 1.0);
  EXPECT_LE(f, StepControlOptions{}.max_factor);
}

TEST(PiStepController, LargeErrorShrinksStep) {
  PiStepController c{StepControlOptions{}};
  const double f = c.propose_factor(100.0, false);
  EXPECT_LT(f, 1.0);
  EXPECT_GE(f, StepControlOptions{}.min_factor);
}

TEST(PiStepController, BoundaryErrorShrinksViaSafety) {
  // err slightly above 1: rejection must propose a genuinely smaller step.
  PiStepController c{StepControlOptions{}};
  EXPECT_LT(c.propose_factor(1.01, false), 1.0);
}

TEST(PiStepController, NoGrowthImmediatelyAfterRejection) {
  PiStepController c{StepControlOptions{}};
  (void)c.propose_factor(10.0, false);
  // The very next accepted step may not grow, however small its error:
  // growing right after shrinking re-triggers the rejection.
  EXPECT_LE(c.propose_factor(1e-8, true), 1.0);
  // Once a step was accepted without a preceding rejection, growth is
  // allowed again.
  EXPECT_GT(c.propose_factor(1e-8, true), 1.0);
}

TEST(PiStepController, NonFiniteErrorHitsMinFactor) {
  PiStepController c{StepControlOptions{}};
  EXPECT_EQ(c.propose_factor(std::numeric_limits<double>::infinity(), false),
            StepControlOptions{}.min_factor);
  EXPECT_EQ(c.propose_factor(std::numeric_limits<double>::quiet_NaN(), false),
            StepControlOptions{}.min_factor);
}

TEST(PiStepController, ZeroErrorHitsMaxFactor) {
  PiStepController c{StepControlOptions{}};
  EXPECT_EQ(c.propose_factor(0.0, true), StepControlOptions{}.max_factor);
}

TEST(PiStepController, HigherOrderReactsMoreGently) {
  // The same error ratio must move a 2nd-order method's step less than a
  // 1st-order method's (exponents scale with 1/(order+1)).
  StepControlOptions be;
  be.order = 1;
  StepControlOptions trap;
  trap.order = 2;
  PiStepController c1{be};
  PiStepController c2{trap};
  const double f1 = c1.propose_factor(0.01, true);
  const double f2 = c2.propose_factor(0.01, true);
  EXPECT_GT(f1, f2);
  EXPECT_GT(f2, 1.0);
}

TEST(PiStepController, ResetForgetsRejectionState) {
  PiStepController c{StepControlOptions{}};
  (void)c.propose_factor(10.0, false);
  c.reset();
  EXPECT_GT(c.propose_factor(1e-8, true), 1.0);
}

TEST(PiStepController, RejectsInvalidOptions) {
  StepControlOptions bad;
  bad.min_factor = 2.0;
  bad.max_factor = 1.0;
  EXPECT_THROW(PiStepController{bad}, ConfigError);
  StepControlOptions bad_order;
  bad_order.order = 0;
  EXPECT_THROW(PiStepController{bad_order}, ConfigError);
}

TEST(StepGrid, PowersOfTwoAreFixedPoints) {
  const StepGrid grid(4);
  for (int e = -30; e <= 10; ++e) {
    const double h = std::ldexp(1.0, e);
    EXPECT_EQ(grid.quantize(h), h) << "2^" << e;
  }
}

TEST(StepGrid, QuantizationNeverGrows) {
  const StepGrid grid(4);
  for (double h : {1.3e-9, 2.7e-6, 0.99, 5.01, 123.456}) {
    const double q = grid.quantize(h);
    EXPECT_LE(q, h);
    // Never more than one grid ratio below the request.
    EXPECT_GE(q, h / std::exp2(1.0 / 4.0) * (1.0 - 1e-12));
  }
}

TEST(StepGrid, HalvingStaysOnGrid) {
  // Step doubling probes h/2; the grid must treat it as a grid value so
  // the half-step base matrix is cacheable too.
  const StepGrid grid(4);
  const double h = grid.quantize(3.7e-7);
  EXPECT_EQ(grid.quantize(0.5 * h), 0.5 * h);
}

TEST(StepGrid, CoarserGridCollapsesMoreValues) {
  const StepGrid fine(8);
  const StepGrid coarse(1);
  // On a 1-point-per-octave grid everything quantizes to a power of two.
  const double q = coarse.quantize(3.7e-7);
  int exponent = 0;
  const double mantissa = std::frexp(q, &exponent);
  EXPECT_EQ(mantissa, 0.5);
  EXPECT_LE(coarse.quantize(3.7e-7), fine.quantize(3.7e-7));
}

TEST(StepGrid, RejectsBadResolution) {
  EXPECT_THROW(StepGrid(0), ConfigError);
  EXPECT_THROW(StepGrid(-3), ConfigError);
}

}  // namespace
}  // namespace lcosc
