// Tests for the behavioral device macro-models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "devices/bandgap.h"
#include "devices/charge_pump.h"
#include "devices/comparator.h"
#include "devices/lowpass.h"
#include "devices/rectifier.h"
#include "devices/vref_buffer.h"

namespace lcosc::devices {
namespace {

TEST(Comparator, BasicThreshold) {
  Comparator c;
  EXPECT_FALSE(c.update(0.0, -0.1));
  EXPECT_TRUE(c.update(1.0, 0.1));
  EXPECT_FALSE(c.update(2.0, -0.1));
}

TEST(Comparator, HysteresisHoldsState) {
  Comparator c({.hysteresis = 0.2});
  EXPECT_FALSE(c.update(0.0, 0.05));   // below +0.1 rise threshold
  EXPECT_TRUE(c.update(1.0, 0.15));    // crosses +0.1
  EXPECT_TRUE(c.update(2.0, -0.05));   // stays high above -0.1
  EXPECT_FALSE(c.update(3.0, -0.15));  // falls below -0.1
}

TEST(Comparator, PropagationDelay) {
  Comparator c({.delay = 1e-6});
  EXPECT_FALSE(c.update(0.0, 1.0));       // edge scheduled for t=1us
  EXPECT_FALSE(c.update(0.5e-6, 1.0));    // still propagating
  EXPECT_TRUE(c.update(1.5e-6, 1.0));     // arrived
}

TEST(Comparator, TimeMustNotGoBackwards) {
  Comparator c;
  c.update(1.0, 0.0);
  EXPECT_THROW(c.update(0.5, 0.0), ConfigError);
}

TEST(Comparator, ResetRestoresState) {
  Comparator c;
  c.update(0.0, 1.0);
  c.reset(false);
  EXPECT_FALSE(c.output());
}

TEST(WindowComparator, ThreeStates) {
  WindowComparator w({.low_threshold = 1.0, .high_threshold = 2.0});
  EXPECT_EQ(w.update(0.5), WindowState::Below);
  EXPECT_EQ(w.update(1.5), WindowState::Inside);
  EXPECT_EQ(w.update(2.5), WindowState::Above);
  EXPECT_EQ(w.update(1.5), WindowState::Inside);
}

TEST(WindowComparator, HysteresisNearThreshold) {
  WindowComparator w({.low_threshold = 1.0, .high_threshold = 2.0, .hysteresis = 0.2});
  EXPECT_EQ(w.update(0.5), WindowState::Below);
  // Needs low+h/2 = 1.1 to enter the window.
  EXPECT_EQ(w.update(1.05), WindowState::Below);
  EXPECT_EQ(w.update(1.15), WindowState::Inside);
  // Needs low-h/2 = 0.9 to fall back out.
  EXPECT_EQ(w.update(0.95), WindowState::Inside);
  EXPECT_EQ(w.update(0.85), WindowState::Below);
}

TEST(WindowComparator, InvalidConfigRejected) {
  EXPECT_THROW(WindowComparator({.low_threshold = 2.0, .high_threshold = 1.0}), ConfigError);
  EXPECT_THROW(
      WindowComparator({.low_threshold = 1.0, .high_threshold = 1.5, .hysteresis = 0.6}),
      ConfigError);
}

TEST(LowPass, ExactExponentialStep) {
  LowPassFilter f(1e-3);
  f.step(1e-3, 1.0);  // one tau towards 1.0
  EXPECT_NEAR(f.output(), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(LowPass, UnconditionallyStable) {
  LowPassFilter f(1e-6);
  // Step 1000x the time constant: lands exactly on the input, no blowup.
  f.step(1e-3, 2.0);
  EXPECT_NEAR(f.output(), 2.0, 1e-9);
}

TEST(LowPass, TracksSlowRamp) {
  LowPassFilter f(1e-6);
  double x = 0.0;
  for (int i = 0; i < 1000; ++i) {
    x = i * 1e-3;
    f.step(1e-6, x);
  }
  EXPECT_NEAR(f.output(), x, 0.01);
}

TEST(LowPass, MemoizedStepIsBitIdenticalAcrossDtChanges) {
  // The (dt, tau)-keyed memo must return the exact same doubles as a
  // fresh filter computing exp() every step, including when dt changes
  // mid-run (the adaptive envelope path varies the macro step).
  LowPassFilter memoized(1e-3);
  LowPassFilter reference(1e-3);
  const double dts[] = {1e-6, 1e-6, 4e-6, 1e-6, 32e-6, 32e-6};
  double x = 0.0;
  for (const double dt : dts) {
    x += 0.25;
    memoized.step(dt, x);
    // Fresh filter per step: same state, recomputed decay.
    LowPassFilter fresh(1e-3, reference.output());
    fresh.step(dt, x);
    reference.reset(fresh.output());
    EXPECT_EQ(memoized.output(), reference.output()) << "dt=" << dt;
  }
}

TEST(LowPass, SetTauInvalidatesCachedDecay) {
  // Regression: the memo used to key on dt alone, so a tau change with
  // an unchanged dt kept using the stale exp(-dt/tau_old).
  LowPassFilter f(1e-3);
  f.step(1e-3, 1.0);
  EXPECT_NEAR(f.output(), 1.0 - std::exp(-1.0), 1e-12);
  f.set_tau(0.5e-3);
  const double y0 = f.output();
  f.step(1e-3, 2.0);  // same dt, new tau: two taus towards 2.0
  EXPECT_NEAR(f.output(), 2.0 + (y0 - 2.0) * std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(f.tau(), 0.5e-3);
  EXPECT_THROW(f.set_tau(0.0), ConfigError);
}

TEST(Rectifier, FullWaveAverageOfSine) {
  FullWaveRectifierFilter r({.forward_drop = 0.0, .filter_tau = 100e-6});
  const double f = 1e5;
  const double dt = 1e-8;
  double t = 0.0;
  for (int i = 0; i < 500000; ++i) {
    r.step(dt, std::sin(kTwoPi * f * t));
    t += dt;
  }
  // Mean of |sin| = 2/pi.
  EXPECT_NEAR(r.output(), 2.0 / kPi, 0.02);
}

TEST(Rectifier, ForwardDropSubtracts) {
  FullWaveRectifierFilter r({.forward_drop = 0.3, .filter_tau = 1e-6});
  EXPECT_DOUBLE_EQ(r.rectify(1.0), 0.7);
  EXPECT_DOUBLE_EQ(r.rectify(-1.0), 0.7);
  EXPECT_DOUBLE_EQ(r.rectify(0.2), 0.0);  // below the drop
}

TEST(SynchronousRectifier, InPhaseSignalGivesDc) {
  SynchronousRectifierFilter r(100e-6);
  const double f = 1e5;
  const double dt = 1e-8;
  double t = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const double s = std::sin(kTwoPi * f * t);
    r.step(dt, 0.5 * s, s);  // in phase, half amplitude
    t += dt;
  }
  EXPECT_NEAR(r.output(), 0.5 * 2.0 / kPi, 0.02);
}

TEST(SynchronousRectifier, QuadratureAveragesToZero) {
  SynchronousRectifierFilter r(100e-6);
  const double f = 1e5;
  const double dt = 1e-8;
  double t = 0.0;
  for (int i = 0; i < 500000; ++i) {
    r.step(dt, std::cos(kTwoPi * f * t), std::sin(kTwoPi * f * t));
    t += dt;
  }
  EXPECT_NEAR(r.output(), 0.0, 0.02);
}

TEST(Bandgap, NominalAndCurvature) {
  BandgapReference bg;
  EXPECT_NEAR(bg.nominal(), 1.205, 1e-9);
  EXPECT_DOUBLE_EQ(bg.voltage(300.0), bg.nominal());
  // Curvature: both hot and cold are below nominal for negative curvature.
  EXPECT_LT(bg.voltage(233.0), bg.nominal());
  EXPECT_LT(bg.voltage(423.0), bg.nominal());
  // Automotive range drift stays in the tens of mV.
  EXPECT_NEAR(bg.voltage(423.0), bg.nominal(), 0.01);
}

TEST(Bandgap, TrimError) {
  BandgapConfig cfg;
  cfg.trim_error = 0.01;
  BandgapReference bg(cfg);
  EXPECT_NEAR(bg.nominal(), 1.205 * 1.01, 1e-9);
}

TEST(VrefBuffer, LinearRegion) {
  VrefBuffer buf;
  EXPECT_DOUBLE_EQ(buf.voltage(0.0), 2.5);
  // 120 uA load (the paper's dual-system coupling current).
  EXPECT_NEAR(buf.voltage(120e-6), 2.5 - 120e-6 * 50.0, 1e-9);
  EXPECT_FALSE(buf.overloaded(120e-6));
}

TEST(VrefBuffer, ClassALimit) {
  VrefBuffer buf;
  EXPECT_TRUE(buf.overloaded(500e-6));
  // Beyond the limit the droop grows catastrophically.
  const double droop_ok = 2.5 - buf.voltage(350e-6);
  const double droop_over = 2.5 - buf.voltage(450e-6);
  EXPECT_GT(droop_over, droop_ok * 10.0);
}

TEST(ChargePump, RampsToTargetWhenEnabled) {
  NegativeChargePump cp;
  cp.set_enabled(true);
  for (int i = 0; i < 100; ++i) cp.step(1e-6);
  EXPECT_NEAR(cp.output(), -1.2, 0.01);
}

TEST(ChargePump, DecaysWhenDisabled) {
  NegativeChargePump cp;
  cp.set_enabled(true);
  for (int i = 0; i < 100; ++i) cp.step(1e-6);
  cp.set_enabled(false);
  for (int i = 0; i < 100; ++i) cp.step(1e-6);
  EXPECT_NEAR(cp.output(), 0.0, 0.01);
}

TEST(ChargePump, MemoizedDecayTracksEnableToggles) {
  // The memo key is (dt, tau) and tau switches with enabled_: toggling
  // enable with an unchanged dt must recompute, not reuse the stale
  // factor.  Compare one step in each mode against the closed form.
  const ChargePumpConfig config{};
  NegativeChargePump cp(config);
  cp.set_enabled(true);
  const double dt = 1e-6;
  cp.step(dt);
  const double up = config.target_voltage * (1.0 - std::exp(-dt / config.startup_time));
  EXPECT_NEAR(cp.output(), up, 1e-15);
  cp.set_enabled(false);
  cp.step(dt);
  EXPECT_NEAR(cp.output(), up * std::exp(-dt / config.decay_time), 1e-15);
  // Back to enabled: the startup factor applies again.
  cp.set_enabled(true);
  const double before = cp.output();
  cp.step(dt);
  const double target = config.target_voltage;
  EXPECT_NEAR(cp.output(), target + (before - target) * std::exp(-dt / config.startup_time),
              1e-15);
}

}  // namespace
}  // namespace lcosc::devices
