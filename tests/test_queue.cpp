// Contract of the persistent multi-job campaign queue (DESIGN.md §14):
// jobs survive `kill -9` of the coordinator at any instant and resume
// from their checkpoints, claims follow (priority desc, submit order),
// concurrent campaigns share one bounded worker fleet, and every report
// stays byte-identical to a solo run of the same spec.  Defines its own
// main(): the coordinator under test re-execs this binary as the shard
// worker, so maybe_run_shard() must run before gtest does.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "service/flat_json.h"
#include "service/queue.h"
#include "service/supervisor.h"

namespace lcosc::service {
namespace {

namespace fs = std::filesystem;

CampaignSpec small_tolerance_spec(std::uint64_t seed = 7) {
  CampaignSpec spec;
  spec.kind = CampaignKind::Tolerance;
  spec.samples = 6;
  spec.seed = seed;
  spec.restart_backoff = RetryBackoff{.initial_ms = 5, .multiplier = 2.0, .max_ms = 50};
  return spec;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool wait_until(const std::function<bool()>& done, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

// Pids of live processes whose command line mentions `marker` (shard
// workers carry their --lcosc-spec path, which lives under the test's
// private queue root).
std::vector<pid_t> pids_mentioning(const std::string& marker) {
  std::vector<pid_t> pids;
  for (const auto& entry : fs::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.empty() || name.find_first_not_of("0123456789") != std::string::npos) continue;
    std::ifstream in(entry.path() / "cmdline", std::ios::binary);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    if (buf.str().find(marker) != std::string::npos) {
      pids.push_back(static_cast<pid_t>(std::stol(name)));
    }
  }
  return pids;
}

class QueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lcosc_queue_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    // A kill -9 test can leave an orphaned (stalled) worker behind; reap
    // it so nothing outlives the test.
    for (const pid_t pid : pids_mentioning(dir_.string())) kill(pid, SIGKILL);
    fs::remove_all(dir_);
  }

  [[nodiscard]] std::string subdir(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] std::string queue_root() const { return subdir("q"); }

  // The uninterrupted single-process reference a queued run must match.
  [[nodiscard]] std::string reference_report(CampaignSpec spec, const std::string& tag) {
    spec.shards = 1;
    spec.test_stall_once = false;
    spec.shard_timeout_ms = 0;
    spec.checkpoint_dir = subdir("ref_" + tag);
    spec.report_path.clear();
    return run_campaign_service(spec).report;
  }

  [[nodiscard]] static QueueCoordinatorOptions fast_options() {
    QueueCoordinatorOptions options;
    options.poll_ms = 5;
    options.progress_every_ms = 20;
    return options;
  }

  fs::path dir_;
};

TEST_F(QueueTest, SubmitCommitsAtomicallyAndSkipsHalfCreatedDirectories) {
  JobQueue queue(queue_root());
  // A submitter killed between mkdir and the job.json write leaves this:
  // a directory with no job record.  It must be invisible, and its
  // sequence number must never be reused.
  fs::create_directories(queue_root() + "/jobs/000099-torn");
  EXPECT_TRUE(queue.list().empty());

  const JobRecord job = queue.submit(small_tolerance_spec(), 3, "weird name/ok");
  EXPECT_EQ(job.sequence, 100u);
  EXPECT_EQ(job.state, JobState::Queued);
  EXPECT_EQ(job.priority, 3);
  // Name bytes outside [A-Za-z0-9_-] are mapped to '_'.
  EXPECT_EQ(job.id.find('/'), std::string::npos);
  EXPECT_NE(job.id.find("weird_name"), std::string::npos);

  // The submitted spec's artifact paths are rewritten into the job dir.
  const auto jobs = queue.list();
  ASSERT_EQ(jobs.size(), 1u);
  const CampaignSpec stored = queue.load_spec(jobs[0]);
  EXPECT_EQ(stored.checkpoint_dir, jobs[0].checkpoint_dir);
  EXPECT_EQ(stored.report_path, jobs[0].report_path);
  EXPECT_FALSE(queue.report(jobs[0]).has_value());
}

TEST_F(QueueTest, ClaimsFollowPriorityThenSubmitOrder) {
  JobQueue queue(queue_root());
  const JobRecord low = queue.submit(small_tolerance_spec(1), 1, "low");
  const JobRecord high = queue.submit(small_tolerance_spec(2), 5, "high");
  const JobRecord mid = queue.submit(small_tolerance_spec(3), 3, "mid");

  QueueCoordinatorOptions options = fast_options();
  options.max_parallel_jobs = 1;  // serialize so run_order is the claim order
  JobQueue serve_queue(queue_root());
  const QueueCoordinatorResult result = run_queue_coordinator(serve_queue, options);
  EXPECT_EQ(result.jobs_done, 3);
  EXPECT_EQ(result.jobs_failed, 0);

  const auto state = [&](const JobRecord& j) { return *queue.find(j.id); };
  EXPECT_EQ(state(high).run_order, 0);
  EXPECT_EQ(state(mid).run_order, 1);
  EXPECT_EQ(state(low).run_order, 2);
  for (const JobRecord& job : queue.list()) {
    EXPECT_EQ(job.state, JobState::Done) << job.id;
    EXPECT_EQ(job.runs, 1) << job.id;
  }
}

TEST_F(QueueTest, ConcurrentCampaignsShareTheFleetAndMatchSoloRuns) {
  JobQueue queue(queue_root());
  CampaignSpec a = small_tolerance_spec(11);
  CampaignSpec b = small_tolerance_spec(22);
  a.shards = 2;
  b.shards = 2;
  const JobRecord job_a = queue.submit(a, 0, "a");
  const JobRecord job_b = queue.submit(b, 0, "b");

  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  QueueCoordinatorOptions options = fast_options();
  options.max_parallel_jobs = 2;
  options.shard_slots = 1;  // 4 shard spawns total, never more than 1 live
  const QueueCoordinatorResult result = run_queue_coordinator(queue, options);
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);

  EXPECT_EQ(result.jobs_done, 2);
  // Both campaigns were genuinely in flight together...
  const obs::GaugeSnapshot* running = snapshot.find_gauge("queue.jobs.running");
  ASSERT_NE(running, nullptr);
  EXPECT_EQ(running->peak, 2.0);
  // ...yet the shared slot pool kept the worker fleet at its cap.
  const obs::GaugeSnapshot* live = snapshot.find_gauge("service.shards.live");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->peak, 1.0);

  // Fleet sharing must not leak into the reports: each is byte-identical
  // to its own uninterrupted single-process run.
  EXPECT_EQ(file_bytes(queue.find(job_a.id)->report_path), reference_report(a, "a"));
  EXPECT_EQ(file_bytes(queue.find(job_b.id)->report_path), reference_report(b, "b"));
}

TEST_F(QueueTest, KilledCoordinatorLeavesAResumableQueue) {
  JobQueue queue(queue_root());
  // The high-priority job is claimed first and cannot finish before the
  // kill: its first worker spawn stalls until the 500 ms shard timeout.
  CampaignSpec slow = small_tolerance_spec(11);
  slow.shards = 2;
  slow.test_stall_once = true;
  slow.shard_timeout_ms = 500;
  const JobRecord hi = queue.submit(slow, 5, "hi");
  const JobRecord lo = queue.submit(small_tolerance_spec(22), 1, "lo");

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    JobQueue child_queue(queue_root());
    try {
      (void)run_queue_coordinator(child_queue, fast_options());
    } catch (...) {
    }
    _exit(0);
  }
  // Wait until the coordinator has demonstrably claimed the job and
  // spawned a worker (the stall sentinel is the worker's first write),
  // then kill -9: the job is mid-run by construction.
  ASSERT_TRUE(wait_until(
      [&] {
        const auto job = queue.find(hi.id);
        return job && job->state == JobState::Running &&
               fs::exists(job->checkpoint_dir + "/stall_0.flag");
      },
      15000));
  ASSERT_EQ(kill(child, SIGKILL), 0);
  ASSERT_EQ(waitpid(child, nullptr, 0), child);
  // The kill orphaned the stalled worker; reap it like an operator would
  // (tier1.sh does the same) before resuming.
  for (const pid_t pid : pids_mentioning(queue_root())) kill(pid, SIGKILL);

  // The lease survived on disk: still `running`, nobody owns it.
  EXPECT_EQ(queue.find(hi.id)->state, JobState::Running);
  EXPECT_EQ(queue.find(hi.id)->runs, 1);

  // A fresh coordinator re-claims the stale job and drains the queue.
  const QueueCoordinatorResult resumed = run_queue_coordinator(queue, fast_options());
  EXPECT_EQ(resumed.jobs_done, 2);
  EXPECT_EQ(resumed.jobs_failed, 0);

  const JobRecord after = *queue.find(hi.id);
  EXPECT_EQ(after.state, JobState::Done);
  EXPECT_GE(after.runs, 2);        // first claim + post-crash resume
  EXPECT_EQ(after.run_order, 0);   // claim order is preserved, not reassigned
  EXPECT_EQ(file_bytes(after.report_path), reference_report(slow, "hi"));
  EXPECT_EQ(file_bytes(queue.find(lo.id)->report_path),
            reference_report(small_tolerance_spec(22), "lo"));
}

TEST_F(QueueTest, CancelledQueuedJobNeverRuns) {
  JobQueue queue(queue_root());
  const JobRecord keep = queue.submit(small_tolerance_spec(1), 0, "keep");
  const JobRecord drop = queue.submit(small_tolerance_spec(2), 9, "drop");
  ASSERT_TRUE(queue.cancel(drop.id));
  EXPECT_FALSE(queue.cancel("no-such-job"));

  const QueueCoordinatorResult result = run_queue_coordinator(queue, fast_options());
  EXPECT_EQ(result.jobs_done, 1);
  EXPECT_EQ(result.jobs_cancelled, 1);

  const JobRecord dropped = *queue.find(drop.id);
  EXPECT_EQ(dropped.state, JobState::Cancelled);
  EXPECT_EQ(dropped.runs, 0);  // despite its high priority, it never ran
  EXPECT_FALSE(queue.report(dropped).has_value());
  EXPECT_EQ(queue.find(keep.id)->state, JobState::Done);
  // Terminal jobs refuse further cancellation.
  EXPECT_FALSE(queue.cancel(drop.id));
  EXPECT_FALSE(queue.cancel(keep.id));
}

TEST_F(QueueTest, CancellingARunningJobKillsItsWorkers) {
  JobQueue queue(queue_root());
  CampaignSpec wedge = small_tolerance_spec();
  wedge.test_stall_once = true;  // stalls forever: cancel is the only exit
  const JobRecord job = queue.submit(wedge, 0, "wedged");

  QueueCoordinatorResult result;
  std::thread coordinator([&] {
    JobQueue serve_queue(queue_root());
    result = run_queue_coordinator(serve_queue, fast_options());
  });
  ASSERT_TRUE(wait_until(
      [&] {
        const auto live = queue.find(job.id);
        return live && live->state == JobState::Running &&
               !pids_mentioning(queue_root()).empty();
      },
      15000));
  ASSERT_TRUE(queue.cancel(job.id));
  coordinator.join();

  EXPECT_EQ(result.jobs_cancelled, 1);
  EXPECT_EQ(queue.find(job.id)->state, JobState::Cancelled);
  // The stalled worker was killed and reaped, not orphaned.
  EXPECT_TRUE(wait_until([&] { return pids_mentioning(queue_root()).empty(); }, 5000));
  EXPECT_FALSE(queue.report(job).has_value());
}

TEST_F(QueueTest, StaleRunningJobFromADeadCoordinatorIsReclaimed) {
  JobQueue queue(queue_root());
  JobRecord job = queue.submit(small_tolerance_spec(), 0, "stale");
  // Simulate a coordinator that claimed the job and died without a trace.
  queue.claim(job, 0);
  ASSERT_EQ(queue.find(job.id)->state, JobState::Running);

  const QueueCoordinatorResult result = run_queue_coordinator(queue, fast_options());
  EXPECT_EQ(result.jobs_done, 1);
  const JobRecord after = *queue.find(job.id);
  EXPECT_EQ(after.state, JobState::Done);
  EXPECT_EQ(after.runs, 2);
  EXPECT_EQ(after.run_order, 0);
}

TEST_F(QueueTest, SweepExpandsATemplateIntoOneJobPerValue) {
  JobQueue queue(queue_root());
  const CampaignSpec templ = small_tolerance_spec();
  const std::vector<JobRecord> jobs =
      queue.submit_sweep(templ, "seed", {"101", "202", "303"}, 2, "s");
  ASSERT_EQ(jobs.size(), 3u);
  const std::vector<std::uint64_t> want = {101, 202, 303};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CampaignSpec spec = queue.load_spec(jobs[i]);
    EXPECT_EQ(spec.seed, want[i]) << jobs[i].id;
    EXPECT_EQ(spec.samples, templ.samples);
    EXPECT_EQ(jobs[i].priority, 2);
    EXPECT_NE(jobs[i].id.find("s" + std::to_string(want[i])), std::string::npos)
        << jobs[i].id;
  }

  // Overrides go through the spec grammar: unknown keys and values that
  // fail validation are rejected up front, not at run time.
  EXPECT_THROW((void)apply_spec_override(templ, "sample_count", "4"), ConfigError);
  EXPECT_THROW((void)apply_spec_override(templ, "samples", "zero"), ConfigError);
  EXPECT_THROW((void)apply_spec_override(templ, "samples", "0"), ConfigError);
  EXPECT_EQ(apply_spec_override(templ, "samples", "9").samples, 9);
  EXPECT_EQ(apply_spec_override(templ, "campaign", "internal_fmea").kind,
            CampaignKind::InternalFmea);
}

TEST_F(QueueTest, ProgressCountsCheckpointedCasesPerShard) {
  JobQueue queue(queue_root());
  CampaignSpec spec = small_tolerance_spec();
  spec.shards = 2;
  const JobRecord job = queue.submit(spec, 0, "p");
  const JobProgress before = queue.progress(*queue.find(job.id));
  EXPECT_EQ(before.cases_total, 6u);
  EXPECT_EQ(before.cases_done, 0u);
  ASSERT_EQ(before.shards.size(), 2u);

  (void)run_queue_coordinator(queue, fast_options());

  const JobProgress after = queue.progress(*queue.find(job.id));
  EXPECT_EQ(after.cases_done, 6u);
  for (const JobProgress::Shard& shard : after.shards) {
    EXPECT_EQ(shard.done, shard.range.size()) << shard.index;
  }
  // The coordinator streamed a progress snapshot for external tooling.
  const std::string progress_path = queue.find(job.id)->progress_path;
  ASSERT_TRUE(fs::exists(progress_path));

  // The snapshot is one flat JSON object a poller (`campaign_service
  // top`) reads with FlatJsonParser: a wall-clock heartbeat to tell a
  // slow job from a dead coordinator, fleet slot utilization, and flat
  // per-shard keys.
  std::map<std::string, std::string> fields;
  FlatJsonParser(file_bytes(progress_path)).context("progress").parse_object(
      [&](const std::string& key, const std::string& value, bool) { fields[key] = value; });
  ASSERT_TRUE(fields.count("heartbeat_unix_ms"));
  EXPECT_GT(std::stoll(fields.at("heartbeat_unix_ms")), 1700000000000LL)
      << "heartbeat must be unix wall-clock milliseconds";
  EXPECT_EQ(fields.at("job"), job.id);
  EXPECT_EQ(fields.at("cases_total"), "6");
  EXPECT_EQ(fields.at("shards"), "2");
  EXPECT_TRUE(fields.count("fleet_slots_in_use"));
  EXPECT_TRUE(fields.count("fleet_slots_capacity"));
  for (const int shard : {0, 1}) {
    for (const char* suffix : {"begin", "end", "done", "spawns", "restarts", "timeouts"}) {
      const std::string key = "shard_" + std::to_string(shard) + "_" + suffix;
      EXPECT_TRUE(fields.count(key)) << key;
    }
  }
}

}  // namespace
}  // namespace lcosc::service

int main(int argc, char** argv) {
  // Shard-worker mode: the coordinator under test re-execs this binary.
  if (const auto shard_exit = lcosc::service::maybe_run_shard(argc, argv)) return *shard_exit;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
