// The composed position sensor: regulated excitation + receiver chain.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/units.h"
#include "system/sensor_system.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

SensorSystemConfig sensor_config(double angle) {
  SensorSystemConfig cfg;
  cfg.oscillator.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.oscillator.regulation.tick_period = 0.25e-3;
  cfg.oscillator.waveform_decimation = 1;
  cfg.rotor_angle = angle;
  return cfg;
}

TEST(SensorSystem, AngleRecoveredWithRegulatedExcitation) {
  SensorSystem sensor(sensor_config(0.9));
  const SensorRunResult r = sensor.run(20e-3);
  EXPECT_NEAR(r.oscillator.settled_amplitude(), 2.7, 2.7 * 0.08);
  EXPECT_NEAR(r.angle_error, 0.0, 0.03);
  EXPECT_FALSE(r.coil_short_fault);
  EXPECT_GE(r.supervision_cycles, 1);
}

TEST(SensorSystem, AngleAccuracyAcrossQuadrants) {
  for (const double angle : {-2.5, -1.0, 0.4, 2.9}) {
    SensorSystem sensor(sensor_config(angle));
    const SensorRunResult r = sensor.run(15e-3);
    EXPECT_NEAR(r.angle_error, 0.0, 0.05) << "angle " << angle;
  }
}

TEST(SensorSystem, CoilShortDetectedBySupervision) {
  SensorSystemConfig cfg = sensor_config(0.5);
  cfg.coil_short_conductance = 1.0 / 50.0;
  cfg.coil_short_time = 5e-3;
  SensorSystem sensor(cfg);
  const SensorRunResult r = sensor.run(30e-3);
  EXPECT_TRUE(r.coil_short_fault);
}

TEST(SensorSystem, AngleValidEvenDuringTankDriftFault) {
  // A degraded tank (Rs up 3x) lowers Q; regulation compensates and the
  // ratiometric angle stays accurate -- the reason amplitude regulation
  // exists (Section 1).
  SensorSystemConfig cfg = sensor_config(1.2);
  tank::FaultSeverity sev;
  sev.resistance_factor = 3.0;
  SensorSystem sensor(cfg);
  sensor.oscillator().schedule_fault(tank::TankFault::IncreasedResistance, 6e-3, sev);
  const SensorRunResult r = sensor.run(25e-3);
  EXPECT_FALSE(r.oscillator.final_faults.any());  // loop absorbed the drift
  EXPECT_NEAR(r.angle_error, 0.0, 0.05);
}

}  // namespace
}  // namespace lcosc::system
