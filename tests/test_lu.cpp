// Tests for LU decomposition with partial pivoting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "numeric/lu.h"

namespace lcosc {
namespace {

TEST(Lu, SolvesSimpleSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, IdentityReturnsRhs) {
  const LuDecomposition lu(Matrix::identity(4));
  const Vector x = lu.solve({1.0, 2.0, 3.0, 4.0});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], static_cast<double>(i + 1));
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve({1.0, 1.0}), ConvergenceError);
  Vector x;
  EXPECT_FALSE(lu.try_solve({1.0, 1.0}, x));
}

TEST(Lu, Determinant) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
  // Permutation sign: swapping rows flips the determinant.
  Matrix b{{0.0, 3.0}, {2.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(b).determinant(), -6.0, 1e-12);
}

TEST(Lu, DeterminantOfSingularIsZero) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(LuDecomposition(a).determinant(), 0.0);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), ConfigError);
}

TEST(Lu, RhsSizeMismatchThrows) {
  const LuDecomposition lu(Matrix::identity(2));
  EXPECT_THROW(lu.solve({1.0, 2.0, 3.0}), ConfigError);
}

// Property: random well-conditioned systems round-trip A*x = b.
TEST(Lu, RandomRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += 4.0;  // diagonally dominant => well conditioned
    }
    Vector x_true(n);
    for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
    const Vector b = a.multiply(x_true);
    const Vector x = solve_linear_system(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Lu, DefaultConstructedIsSingularUntilFactored) {
  LuDecomposition lu;
  EXPECT_TRUE(lu.singular());
  Vector x;
  EXPECT_FALSE(lu.try_solve({}, x));
}

// The workspace path behind the transient solver's LU reuse: re-factoring
// different matrices into one instance must match fresh decompositions.
TEST(Lu, FactorReusesWorkspaceAcrossMatrices) {
  LuDecomposition lu;
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  ASSERT_TRUE(lu.factor(a));
  Vector x;
  ASSERT_TRUE(lu.try_solve({5.0, 10.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);

  // Same size, different values: storage is recycled, result is fresh.
  Matrix b{{4.0, 0.0}, {0.0, 5.0}};
  ASSERT_TRUE(lu.factor(b));
  ASSERT_TRUE(lu.try_solve({8.0, 10.0}, x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, FactorRecoversAfterSingularMatrix) {
  LuDecomposition lu;
  ASSERT_TRUE(lu.factor(Matrix::identity(2)));
  // Singular input poisons the factor...
  EXPECT_FALSE(lu.factor(Matrix{{1.0, 2.0}, {2.0, 4.0}}));
  EXPECT_TRUE(lu.singular());
  Vector x;
  EXPECT_FALSE(lu.try_solve({1.0, 1.0}, x));
  // ...until the next successful factor().
  ASSERT_TRUE(lu.factor(Matrix{{3.0, 0.0}, {0.0, 3.0}}));
  ASSERT_TRUE(lu.try_solve({6.0, 9.0}, x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, KeptFactorSolvesManyRhs) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  LuDecomposition lu;
  ASSERT_TRUE(lu.factor(a));
  Vector x;
  for (int k = 1; k <= 5; ++k) {
    const Vector b{5.0 * k, 10.0 * k};
    ASSERT_TRUE(lu.try_solve(b, x));
    EXPECT_NEAR(x[0], 1.0 * k, 1e-12);
    EXPECT_NEAR(x[1], 3.0 * k, 1e-12);
  }
}

TEST(Lu, PivotRatioReflectsConditioning) {
  const LuDecomposition good(Matrix::identity(3));
  EXPECT_NEAR(good.pivot_ratio(), 1.0, 1e-12);
  Matrix bad{{1.0, 0.0}, {0.0, 1e-12}};
  EXPECT_LT(LuDecomposition(bad).pivot_ratio(), 1e-11);
}

}  // namespace
}  // namespace lcosc
