// Tests for scalar root finding / minimization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "numeric/roots.h"

namespace lcosc {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  const double r = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, EndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect_root([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, NoSignChangeThrows) {
  EXPECT_THROW(bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0), ConfigError);
}

TEST(Bisect, UnorderedIntervalThrows) {
  EXPECT_THROW(bisect_root([](double x) { return x; }, 1.0, -1.0), ConfigError);
}

TEST(Brent, FindsCosRoot) {
  const double r = brent_root([](double x) { return std::cos(x); }, 1.0, 2.0);
  EXPECT_NEAR(r, std::acos(0.0), 1e-10);
}

TEST(Brent, HardFlatFunction) {
  // x^9 is extremely flat near the root; Brent must still converge.
  const double r = brent_root([](double x) { return std::pow(x, 9.0); }, -1.0, 1.5,
                              {.x_tolerance = 1e-12, .f_tolerance = 0.0, .max_iterations = 500});
  EXPECT_NEAR(r, 0.0, 1e-3);
}

TEST(Brent, MatchesBisectOnPolynomial) {
  auto f = [](double x) { return x * x * x - x - 2.0; };
  const double b = bisect_root(f, 1.0, 2.0);
  const double br = brent_root(f, 1.0, 2.0);
  EXPECT_NEAR(b, br, 1e-8);
}

TEST(Threshold, FindsTransition) {
  const double edge = 0.73;
  const double r = bisect_threshold([edge](double x) { return x >= edge; }, 0.0, 1.0, 1e-9);
  EXPECT_NEAR(r, edge, 1e-8);
}

TEST(Threshold, PreconditionsChecked) {
  EXPECT_THROW(bisect_threshold([](double) { return true; }, 0.0, 1.0), ConfigError);
  EXPECT_THROW(bisect_threshold([](double) { return false; }, 0.0, 1.0), ConfigError);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const double m = golden_section_minimize([](double x) { return (x - 0.3) * (x - 0.3); },
                                           -1.0, 2.0, 1e-10);
  EXPECT_NEAR(m, 0.3, 1e-8);
}

TEST(GoldenSection, AsymmetricUnimodal) {
  const double m = golden_section_minimize(
      [](double x) { return std::exp(x) - 3.0 * x; }, 0.0, 3.0, 1e-10);
  EXPECT_NEAR(m, std::log(3.0), 1e-7);
}

}  // namespace
}  // namespace lcosc
