// SVG figure writer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "waveform/svg_plot.h"

namespace lcosc {
namespace {

SvgSeries make_series(const char* label, int n, double slope) {
  SvgSeries s;
  s.label = label;
  for (int i = 0; i < n; ++i) s.points.emplace_back(i, slope * i);
  return s;
}

TEST(SvgPlot, ProducesValidDocument) {
  const std::string svg =
      render_svg_plot({make_series("a", 20, 1.0), make_series("b", 20, -0.5)},
                      {.title = "test & demo", .x_label = "x", .y_label = "y"});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Both series drawn, title escaped.
  EXPECT_EQ(std::count(svg.begin(), svg.end(), 'M') >= 2, true);
  EXPECT_NE(svg.find("test &amp; demo"), std::string::npos);
  EXPECT_NE(svg.find(">a</text>"), std::string::npos);
  EXPECT_NE(svg.find(">b</text>"), std::string::npos);
}

TEST(SvgPlot, LogScaleSkipsNonPositive) {
  SvgSeries s;
  s.label = "log";
  s.points = {{0.0, 1.0}, {1.0, 0.0}, {2.0, 100.0}};  // zero must be skipped
  const std::string svg = render_svg_plot({s}, {.title = "log", .log_y = true});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  // The path restarts (two 'M' commands) around the skipped point.
  const std::size_t path_start = svg.find("<path");
  const std::string path = svg.substr(path_start, svg.find("/>", path_start) - path_start);
  EXPECT_EQ(std::count(path.begin(), path.end(), 'M'), 2);
}

TEST(SvgPlot, FromTrace) {
  Trace t("sig");
  for (int i = 0; i < 10; ++i) t.append(i * 1e-3, std::sin(i * 0.5));
  const SvgSeries s = SvgSeries::from_trace(t);
  EXPECT_EQ(s.label, "sig");
  EXPECT_EQ(s.points.size(), 10u);
  EXPECT_DOUBLE_EQ(s.points[3].first, 3e-3);
}

TEST(SvgPlot, WritesFileAndCreatesDirectory) {
  const std::string path = "/tmp/lcosc_svg_test/sub/plot.svg";
  std::remove(path.c_str());
  write_svg_plot(path, {make_series("x", 5, 2.0)}, {.title = "file"});
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_NE(line.find("<svg"), std::string::npos);
}

TEST(SvgPlot, EmptyInputsRejected) {
  EXPECT_THROW(render_svg_plot({}, {}), ConfigError);
  SvgSeries empty;
  empty.label = "none";
  EXPECT_THROW(render_svg_plot({empty}, {}), ConfigError);
}

TEST(SvgPlot, MarkersOption) {
  const std::string svg =
      render_svg_plot({make_series("m", 5, 1.0)}, {.title = "m", .markers = true});
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

}  // namespace
}  // namespace lcosc
