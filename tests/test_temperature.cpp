// Temperature behaviour: the regulation window thresholds are bandgap
// fractions (Fig. 8), so they drift with the bandgap curvature over the
// automotive range.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "devices/bandgap.h"
#include "regulation/amplitude_detector.h"

namespace lcosc::regulation {
namespace {

TEST(Temperature, NominalAt300K) {
  AmplitudeDetector det;
  EXPECT_DOUBLE_EQ(det.temperature(), 300.0);
  EXPECT_NEAR(0.5 * (det.amplitude_low() + det.amplitude_high()), 2.7, 1e-9);
}

TEST(Temperature, ThresholdsTrackBandgap) {
  AmplitudeDetector det;
  const double vr3_nominal = det.vr3();
  const devices::BandgapReference bg;

  for (const double t : {233.0, 273.0, 300.0, 398.0, 423.0}) {
    det.set_temperature(t);
    const double expected_scale = bg.voltage(t) / bg.nominal();
    EXPECT_NEAR(det.vr3() / vr3_nominal, expected_scale, 1e-12) << "T = " << t;
  }
}

TEST(Temperature, FractionsAreTemperatureInvariant) {
  // The resistor-divider fractions are fixed at design; only VBG moves.
  AmplitudeDetector det;
  const double f3 = det.vr3_bandgap_fraction();
  const double f4 = det.vr4_bandgap_fraction();
  det.set_temperature(233.0);
  // vrX_bandgap_fraction divides by the *nominal* bandgap, so it reports
  // the drifted threshold against the nominal reference.
  const devices::BandgapReference bg;
  const double scale = bg.voltage(233.0) / bg.nominal();
  EXPECT_NEAR(det.vr3_bandgap_fraction(), f3 * scale, 1e-12);
  EXPECT_NEAR(det.vr4_bandgap_fraction(), f4 * scale, 1e-12);
}

TEST(Temperature, AmplitudeDriftBoundedOverAutomotiveRange) {
  // -40..150 C: the curvature-only bandgap drifts tens of mV, so the
  // regulated amplitude target moves by well under 2%.
  AmplitudeDetector det;
  const double nominal_mid = 0.5 * (det.amplitude_low() + det.amplitude_high());
  double worst = 0.0;
  for (double t = 233.0; t <= 423.0; t += 10.0) {
    det.set_temperature(t);
    const double mid = 0.5 * (det.amplitude_low() + det.amplitude_high());
    worst = std::max(worst, std::abs(mid - nominal_mid) / nominal_mid);
  }
  EXPECT_LT(worst, 0.02);
  EXPECT_GT(worst, 1e-5);  // but it does move (curvature is modeled)
}

TEST(Temperature, WindowWidthRatioPreserved) {
  // Both thresholds scale together: the relative window width (the
  // anti-limit-cycling rule) is temperature independent.
  AmplitudeDetector det;
  const double width_nominal =
      (det.vr4() - det.vr3()) / (0.5 * (det.vr3() + det.vr4()));
  det.set_temperature(233.0);
  const double width_cold = (det.vr4() - det.vr3()) / (0.5 * (det.vr3() + det.vr4()));
  EXPECT_NEAR(width_cold, width_nominal, 1e-12);
}

TEST(Temperature, TrimErrorShiftsTarget) {
  devices::BandgapConfig bg;
  bg.trim_error = 0.02;  // +2% untrimmed reference
  AmplitudeDetector det({}, bg);
  // Thresholds are sized from the *actual* nominal voltage at build time,
  // so the window still centers on the target; what changes is the
  // bandgap fraction needed.
  EXPECT_NEAR(0.5 * (det.amplitude_low() + det.amplitude_high()), 2.7, 1e-9);
  AmplitudeDetector reference;
  EXPECT_LT(det.vr3_bandgap_fraction(), reference.vr3_bandgap_fraction());
}

TEST(Temperature, InvalidTemperatureRejected) {
  AmplitudeDetector det;
  EXPECT_THROW(det.set_temperature(0.0), ConfigError);
  EXPECT_THROW(det.set_temperature(-10.0), ConfigError);
}

}  // namespace
}  // namespace lcosc::regulation
