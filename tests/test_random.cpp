// Tests for the deterministic RNG used by mismatch Monte-Carlo.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace lcosc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(12);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const int v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++hits[static_cast<std::size_t>(v - 10)];
  }
  for (const int h : hits) EXPECT_GT(h, 8000);  // roughly uniform
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(99);
  Rng p2(99);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, ReseedClearsCachedNormalDeviate) {
  // Regression guard: the Marsaglia polar method caches a second deviate;
  // reseed() must drop it, or the first normal() after a reseed would be
  // leftover history instead of the fresh-seed value.
  Rng rng(5);
  (void)rng.normal();  // leaves the partner deviate cached
  rng.reseed(5);
  Rng fresh(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.normal(), fresh.normal());
}

TEST(Rng, ReseedMidStreamReproducesFreshSequence) {
  // The whole mixed-draw sequence after a mid-stream reseed must be
  // byte-identical to a fresh generator -- raw, uniform, and normal draws
  // interleaved, regardless of how much (and what) was consumed before.
  Rng rng(1234);
  for (int i = 0; i < 7; ++i) {
    (void)rng();
    (void)rng.uniform();
    (void)rng.normal();  // odd normal count: cache left hot
  }
  rng.reseed(1234);
  Rng fresh(1234);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rng(), fresh());
    EXPECT_EQ(rng.uniform(), fresh.uniform());
    EXPECT_EQ(rng.normal(), fresh.normal());
    EXPECT_EQ(rng.uniform_int(0, 1000), fresh.uniform_int(0, 1000));
  }
}

}  // namespace
}  // namespace lcosc
