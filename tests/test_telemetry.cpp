// End-to-end telemetry checks over the campaign engines (ISSUE
// acceptance): the metrics snapshot of a campaign is identical for 1 and
// 8 workers (counters and histograms; gauges model instantaneous pool
// state and are exempt by design), and the Chrome trace JSON written
// with tracing on is well-formed with monotone timestamps per thread.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "json_validator.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "spice/circuit.h"
#include "spice/transient_solver.h"
#include "system/internal_fmea.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

InternalFmeaConfig small_campaign() {
  InternalFmeaConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.system.regulation.tick_period = 0.25e-3;
  cfg.system.regulation.nvm_code = 45;
  cfg.system.waveform_decimation = 0;
  cfg.settle_time = 6e-3;
  cfg.observe_time = 2e-3;
  // A detected fault, an overdrive fault, a dead rectifier and the
  // control case: enough to exercise safety trips, FSM transitions and
  // the detection-latency histogram.
  cfg.faults = {faults::make_gm_collapse(),
                faults::make_fault(faults::InternalFaultKind::WindowStuckLow),
                faults::make_fault(faults::InternalFaultKind::RectifierDead),
                faults::make_fault(faults::InternalFaultKind::None)};
  return cfg;
}

// JSON well-formedness validation lives in tests/json_validator.h,
// shared with test_fleet_obs.cpp and test_service.cpp.
using lcosc::testutil::JsonValidator;

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator(R"({"a": [1, -2.5e3, "x\"y"], "b": {"c": true}})").valid());
  EXPECT_TRUE(JsonValidator("[]").valid());
  EXPECT_FALSE(JsonValidator(R"({"a": })").valid());
  EXPECT_FALSE(JsonValidator(R"({"a": 1,})").valid());
  EXPECT_FALSE(JsonValidator(R"({"a": 1} trailing)").valid());
  EXPECT_FALSE(JsonValidator(R"({"a" 1})").valid());
}

// --- acceptance: metrics determinism across worker counts -----------------

TEST(TelemetryDeterminism, CampaignSnapshotsIdenticalForOneAndEightWorkers) {
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(true);
  auto& registry = obs::MetricsRegistry::instance();

  InternalFmeaConfig cfg = small_campaign();

  cfg.workers = 1;
  registry.reset();
  const InternalFmeaReport serial = run_internal_fmea_campaign(cfg);
  const obs::MetricsSnapshot snap1 = registry.snapshot();

  cfg.workers = 8;
  registry.reset();
  const InternalFmeaReport parallel = run_internal_fmea_campaign(cfg);
  const obs::MetricsSnapshot snap8 = registry.snapshot();

  obs::set_metrics_enabled(false);

  // The campaign itself must agree before the metrics can.
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].detected, parallel.rows[i].detected) << "row " << i;
    EXPECT_EQ(serial.rows[i].detection_latency, parallel.rows[i].detection_latency)
        << "row " << i;
  }

  // Counters and histograms merge order-independently, so the snapshots
  // are identical for any LCOSC_THREADS (gauges track live pool state
  // and are exempt from this contract by design, DESIGN.md §10).
  ASSERT_EQ(snap1.counters.size(), snap8.counters.size());
  for (std::size_t i = 0; i < snap1.counters.size(); ++i) {
    EXPECT_EQ(snap1.counters[i], snap8.counters[i])
        << "counter " << snap1.counters[i].name;
  }
  ASSERT_EQ(snap1.histograms.size(), snap8.histograms.size());
  for (std::size_t i = 0; i < snap1.histograms.size(); ++i) {
    EXPECT_EQ(snap1.histograms[i], snap8.histograms[i])
        << "histogram " << snap1.histograms[i].name;
  }

  // The campaign recorded the expected shape: one case counter per row
  // and a detection latency for each detected fault.
  const obs::CounterSnapshot* cases = snap8.find_counter("campaign.cases");
  ASSERT_NE(cases, nullptr);
  EXPECT_EQ(cases->value, cfg.faults.size());
  const obs::HistogramSnapshot* latency =
      snap8.find_histogram("internal_fmea.detection_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, static_cast<std::uint64_t>(parallel.detected_count()));
}

// --- acceptance: trace JSON validity --------------------------------------

TEST(TelemetryTrace, ChromeTraceIsWellFormedWithMonotoneTimestamps) {
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(true);
  obs::clear_trace();
  // Keep the capture bounded: the per-step solver spans of even a short
  // campaign are plentiful.
  obs::set_trace_event_limit(200000);

  InternalFmeaConfig cfg = small_campaign();
  cfg.faults = {faults::make_gm_collapse()};
  cfg.settle_time = 2e-3;
  cfg.observe_time = 2e-3;
  cfg.workers = 2;
  (void)run_internal_fmea_campaign(cfg);

  // The system-level campaign uses its own fixed-step integrator; run a
  // short spice transient too so the solver-step spans land in the same
  // trace.
  {
    spice::Circuit c;
    spice::VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
    vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4.0_MHz, .phase_deg = 0.0});
    c.resistor("R", "in", "a", 50.0);
    c.capacitor("C", "a", "0", 1e-9);
    spice::TransientOptions options;
    options.dt = 1.0 / (4.0_MHz * 32.0);
    options.t_stop = 100.0 * options.dt;
    options.start_from_dc = false;
    (void)run_transient(c, options, {"a"});
  }

  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEventRecord> events = obs::trace_snapshot();
  ASSERT_FALSE(events.empty());

  // Monotone timestamps per thread in snapshot (= file) order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i - 1].tid != events[i].tid) continue;
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us) << "event " << i;
  }

  // The expected span names all made it in.
  auto has = [&](const std::string& name) {
    for (const auto& e : events) {
      if (e.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("internal_fmea:gm-collapse"));
  EXPECT_TRUE(has("system.run"));
  EXPECT_TRUE(has("transient.run"));
  EXPECT_TRUE(has("transient.step"));

  const std::string path = "telemetry_test_artifacts/trace_campaign.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  obs::clear_trace();
  obs::set_trace_event_limit(1u << 20);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << "trace JSON is not well-formed";
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"transient.step\""), std::string::npos);
  std::filesystem::remove_all("telemetry_test_artifacts");
}

}  // namespace
}  // namespace lcosc::system
