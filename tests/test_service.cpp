// End-to-end contract of the sharded campaign service (DESIGN.md §13):
// the merged report is byte-identical to the uninterrupted
// single-process run for any shard count, any kill/resume schedule, any
// checkpoint truncation, and any restart count.  This binary defines its
// own main(): the coordinator re-execs the test executable itself as the
// shard worker, so maybe_run_shard() must run before gtest does.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/campaign.h"
#include "common/error.h"
#include "json_validator.h"
#include "service/adapters.h"
#include "service/flat_json.h"
#include "service/supervisor.h"
#include "service/telemetry_merge.h"

namespace lcosc::service {
namespace {

namespace fs = std::filesystem;
using lcosc::testutil::JsonValidator;

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Save/restore one environment variable so telemetry toggles set for the
// exec'd shard workers never leak into later tests.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* value = std::getenv(name)) saved_ = value;
  }
  ~EnvGuard() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// Parse every forensics row under `checkpoint_dir` into key -> raw-value
// maps (one per line).
std::vector<std::map<std::string, std::string>> forensics_rows(
    const std::string& checkpoint_dir) {
  std::vector<std::map<std::string, std::string>> rows;
  std::ifstream in(forensics_path(checkpoint_dir));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, std::string> fields;
    FlatJsonParser(line).context("forensics").parse_object(
        [&](const std::string& key, const std::string& value, bool) {
          fields[key] = value;
        });
    rows.push_back(std::move(fields));
  }
  return rows;
}

CampaignSpec small_tolerance_spec() {
  CampaignSpec spec;
  spec.kind = CampaignKind::Tolerance;
  spec.samples = 6;
  spec.seed = 7;
  // Keep supervision snappy: restarts in tests should wait milliseconds.
  spec.restart_backoff = RetryBackoff{.initial_ms = 5, .multiplier = 2.0, .max_ms = 50};
  return spec;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lcosc_svc_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // A fresh checkpoint directory under this test's root.
  [[nodiscard]] std::string subdir(const std::string& name) const {
    return (dir_ / name).string();
  }

  // The uninterrupted single-process reference all other runs must match.
  [[nodiscard]] std::string reference_report(CampaignSpec spec) {
    spec.shards = 1;
    spec.checkpoint_dir = subdir("reference");
    fs::remove_all(spec.checkpoint_dir);
    return run_campaign_service(spec).report;
  }

  fs::path dir_;
};

TEST(ServiceSpec, JsonRoundTripsIncludingNonDefaults) {
  CampaignSpec spec;
  spec.kind = CampaignKind::InternalFmea;
  spec.seed = 99;
  spec.samples = 17;
  spec.shards = 4;
  spec.workers_per_shard = 3;
  spec.max_restarts = 5;
  spec.shard_timeout_ms = 1500;
  spec.case_backoff = RetryBackoff{.initial_ms = 2, .multiplier = 3.0, .max_ms = 20};
  spec.checkpoint_dir = "/tmp/with|pipe and \"quote\"";
  spec.report_path = "/tmp/report.txt";
  spec.test_kill_after_cases = 2;
  spec.test_stall_once = true;

  const CampaignSpec parsed = parse_campaign_spec(to_json(spec));
  EXPECT_EQ(to_json(parsed), to_json(spec));
  EXPECT_EQ(parsed.kind, CampaignKind::InternalFmea);
  EXPECT_EQ(parsed.case_backoff, spec.case_backoff);
  EXPECT_EQ(parsed.checkpoint_dir, spec.checkpoint_dir);
}

TEST(ServiceSpec, MissingKeysKeepDefaults) {
  const CampaignSpec spec = parse_campaign_spec(R"({"campaign": "fmea"})");
  EXPECT_EQ(spec.kind, CampaignKind::ExternalFmea);
  EXPECT_EQ(spec.shards, 1);
  EXPECT_EQ(spec.max_restarts, 2);
  EXPECT_EQ(spec.restart_backoff.initial_ms, 100);
}

TEST(ServiceSpec, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)parse_campaign_spec(R"({"campain": "fmea"})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"campaign": "fme"})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"samples": 0})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"shards": -1})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"samples": 1.5})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"test_stall_once": "yes"})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"samples": 4)"), ConfigError);  // truncated
  EXPECT_THROW((void)parse_campaign_spec(R"({"samples": 4} trailing)"), ConfigError);
}

TEST(ServiceSpec, SeedRoundTripsExactlyAbove53Bits) {
  // Seeds above 2^53 are not representable as doubles; a strtod-based
  // parse would hand re-parsing workers a different seed than the
  // coordinator and silently break the byte-identical-report contract.
  CampaignSpec spec;
  spec.seed = 9007199254740993ULL;  // 2^53 + 1
  EXPECT_EQ(parse_campaign_spec(to_json(spec)).seed, 9007199254740993ULL);
  spec.seed = 18446744073709551615ULL;  // 2^64 - 1
  EXPECT_EQ(parse_campaign_spec(to_json(spec)).seed, 18446744073709551615ULL);
  EXPECT_THROW((void)parse_campaign_spec(R"({"seed": -1})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"seed": 1.5})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"seed": 99999999999999999999})"),
               ConfigError);  // > 2^64 - 1
}

TEST(ServiceSpec, PathsWithControlCharactersRoundTrip) {
  CampaignSpec spec;
  spec.checkpoint_dir = "/tmp/tab\there\rand\x01" "ctl";
  spec.report_path = "bell\b_feed\f_line\n";
  const std::string json = to_json(spec);
  // Valid JSON for external tooling: no raw control characters inside
  // string values (the newlines between members are outside strings).
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  const CampaignSpec parsed = parse_campaign_spec(json);
  EXPECT_EQ(parsed.checkpoint_dir, spec.checkpoint_dir);
  EXPECT_EQ(parsed.report_path, spec.report_path);
}

TEST(ServiceSpec, DeterminismSignatureIgnoresSupervisionKnobs) {
  CampaignSpec a;
  CampaignSpec b = a;
  b.shards = 7;
  b.workers_per_shard = 3;
  b.max_restarts = 9;
  b.shard_timeout_ms = 123;
  b.checkpoint_dir = "/somewhere/else";
  b.report_path = "/report";
  b.test_kill_after_cases = 1;
  EXPECT_EQ(determinism_signature(a), determinism_signature(b));
  b.seed = a.seed + 1;
  EXPECT_NE(determinism_signature(a), determinism_signature(b));
  b.seed = a.seed;
  b.samples = a.samples + 1;
  EXPECT_NE(determinism_signature(a), determinism_signature(b));
}

TEST(ServiceShardCli, GarbageShardValuesFailInsteadOfBecomingShardZero) {
  // atoi("garbage") == 0 would silently duplicate shard 0's work; the
  // worker must instead exit with its config-error status.
  const char* argv[] = {"prog",          "--lcosc-shard",       "garbage",
                        "--lcosc-shard-count", "2",             "--lcosc-spec",
                        "/nonexistent"};
  const auto exit_code = maybe_run_shard(7, const_cast<char**>(argv));
  ASSERT_TRUE(exit_code.has_value());
  EXPECT_EQ(*exit_code, 3);

  const char* argv2[] = {"prog",          "--lcosc-shard",       "1x",
                         "--lcosc-shard-count", "2",             "--lcosc-spec",
                         "/nonexistent"};
  const auto exit_code2 = maybe_run_shard(7, const_cast<char**>(argv2));
  ASSERT_TRUE(exit_code2.has_value());
  EXPECT_EQ(*exit_code2, 3);
}

TEST(ServiceSharding, RangesPartitionTheCampaign) {
  for (const std::size_t total : {0u, 1u, 7u, 48u}) {
    for (const int shards : {1, 2, 3, 5}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (int s = 0; s < shards; ++s) {
        const CaseRange range = shard_case_range(total, s, shards);
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_LE(range.size(), total / static_cast<std::size_t>(shards) + 1);
        expected_begin = range.end;
        covered += range.size();
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expected_begin, total);
    }
  }
  EXPECT_THROW((void)shard_case_range(10, 2, 2), Error);
  EXPECT_THROW((void)shard_case_range(10, -1, 2), Error);
}

TEST_F(ServiceTest, ReportIsByteIdenticalForAnyShardCount) {
  CampaignSpec spec = small_tolerance_spec();
  const std::string reference = reference_report(spec);
  ASSERT_FALSE(reference.empty());

  for (const int shards : {2, 3}) {
    spec.shards = shards;
    spec.checkpoint_dir = subdir("shards_" + std::to_string(shards));
    const ServiceResult result = run_campaign_service(spec);
    EXPECT_EQ(result.report, reference) << shards << " shards";
    EXPECT_FALSE(result.degraded());
    EXPECT_EQ(result.cases_total, 6u);
    EXPECT_EQ(result.cases_resumed, 0u);
  }
}

TEST_F(ServiceTest, WorkersKilledAfterEveryCaseStillDeliverTheReferenceReport) {
  CampaignSpec spec = small_tolerance_spec();
  const std::string reference = reference_report(spec);

  // Every spawn commits exactly one fresh case, then dies like a kill -9
  // (_exit, no cleanup).  Progress is one case per life, so the restart
  // budget must cover cases-per-shard deaths.
  spec.shards = 2;
  spec.max_restarts = 8;
  spec.test_kill_after_cases = 1;
  spec.checkpoint_dir = subdir("killed");
  const ServiceResult result = run_campaign_service(spec);

  EXPECT_EQ(result.report, reference);
  EXPECT_FALSE(result.degraded());
  for (const ShardStatus& shard : result.shards) {
    EXPECT_GE(shard.restarts, 2);  // 3 cases per shard, one per life
    EXPECT_TRUE(shard.ok);
  }
}

TEST_F(ServiceTest, ExhaustedRestartBudgetDegradesInsteadOfAborting) {
  CampaignSpec spec = small_tolerance_spec();
  spec.shards = 2;
  spec.max_restarts = 0;
  spec.test_kill_after_cases = 1;
  spec.checkpoint_dir = subdir("degraded");
  const ServiceResult result = run_campaign_service(spec);

  // One case per shard survived; the rest are synthesized error rows.
  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.cases_failed, 4u);
  EXPECT_NE(result.report.find("simulation-error"), std::string::npos);
  EXPECT_NE(result.report.find("shard failed permanently"), std::string::npos);

  // Resuming the same directory with the hook disarmed -- and a
  // different shard count -- completes the campaign and converges to the
  // reference bytes.
  spec.test_kill_after_cases = 0;
  spec.max_restarts = 2;
  spec.shards = 3;
  const ServiceResult resumed = run_campaign_service(spec);
  EXPECT_FALSE(resumed.degraded());
  EXPECT_EQ(resumed.cases_resumed, 2u);
  EXPECT_EQ(resumed.report, reference_report(spec));
}

TEST_F(ServiceTest, ResumeUnderADifferentSpecIsRefused) {
  CampaignSpec spec = small_tolerance_spec();
  spec.checkpoint_dir = subdir("mismatch");
  ASSERT_FALSE(run_campaign_service(spec).report.empty());

  // Changing any record-content field must refuse the directory: merging
  // checkpoints computed under the old seed/samples would silently
  // corrupt the report.
  CampaignSpec changed = spec;
  changed.seed += 1;
  EXPECT_THROW((void)run_campaign_service(changed), ConfigError);
  changed = spec;
  changed.samples += 2;
  EXPECT_THROW((void)run_campaign_service(changed), ConfigError);

  // Supervision/sharding knobs may change freely between resumes.
  CampaignSpec resharded = spec;
  resharded.shards = 2;
  resharded.max_restarts = 5;
  const ServiceResult resumed = run_campaign_service(resharded);
  EXPECT_EQ(resumed.cases_resumed, 6u);
  EXPECT_EQ(resumed.report, reference_report(spec));
}

TEST_F(ServiceTest, TruncatedCheckpointsResumeToTheReferenceReport) {
  CampaignSpec spec = small_tolerance_spec();
  const std::string reference = reference_report(spec);

  spec.shards = 2;
  spec.checkpoint_dir = subdir("torn");
  ASSERT_EQ(run_campaign_service(spec).report, reference);

  const std::string ckpt = spec.checkpoint_dir + "/shard_0_of_2.ckpt";
  std::string bytes;
  {
    std::ifstream in(ckpt, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 20u);

  // Tear the shard-0 stream at assorted offsets, including mid-record
  // and mid-header, and resume each time: the service must recompute
  // exactly the lost cases and land on the same bytes.
  for (const std::size_t cut :
       {bytes.size() - 1, bytes.size() - 7, bytes.size() / 2, std::size_t{5}, std::size_t{0}}) {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();

    const ServiceResult resumed = run_campaign_service(spec);
    EXPECT_EQ(resumed.report, reference) << "cut at byte " << cut;
    EXPECT_FALSE(resumed.degraded());
  }
}

TEST_F(ServiceTest, StalledWorkerIsKilledOnTimeoutAndRestartDelivers) {
  CampaignSpec spec = small_tolerance_spec();
  const std::string reference = reference_report(spec);

  // First spawn of each shard wedges forever; the watchdog must SIGKILL
  // it and the restart (disarmed by the sentinel) must finish the work.
  spec.shards = 2;
  spec.shard_timeout_ms = 250;
  spec.test_stall_once = true;
  spec.checkpoint_dir = subdir("stalled");
  const ServiceResult result = run_campaign_service(spec);

  EXPECT_EQ(result.report, reference);
  EXPECT_FALSE(result.degraded());
  for (const ShardStatus& shard : result.shards) {
    EXPECT_GE(shard.timeouts, 1);
    EXPECT_GE(shard.spawns, 2);
  }

  // The watchdog kill left a forensics row naming the signal: event
  // "timeout", SIGKILL, and per-row attempt/rusage fields present.
  int timeout_rows = 0;
  for (const auto& row : forensics_rows(spec.checkpoint_dir)) {
    if (row.at("event") != "timeout") continue;
    ++timeout_rows;
    EXPECT_EQ(row.at("signal_name"), "SIGKILL");
    EXPECT_EQ(row.at("attempt"), "1");  // only the first spawn stalls
    EXPECT_TRUE(row.count("max_rss_kb"));
    EXPECT_TRUE(row.count("wall_s"));
  }
  EXPECT_EQ(timeout_rows, 2);
}

TEST_F(ServiceTest, FleetTelemetryArtifactsMergeDeterministicallyAcrossShardCounts) {
  // Workers are fork/exec'd, so telemetry toggles reach them through the
  // environment; the guards restore whatever the test runner had.
  EnvGuard metrics_env("LCOSC_METRICS");
  EnvGuard trace_env("LCOSC_TRACE");
  EnvGuard events_env("LCOSC_EVENTS");
  ::setenv("LCOSC_METRICS", "1", 1);
  ::setenv("LCOSC_TRACE", "1", 1);

  CampaignSpec spec = small_tolerance_spec();
  std::map<int, std::string> metrics_bytes;
  for (const int shards : {1, 2, 3}) {
    spec.shards = shards;
    spec.checkpoint_dir = subdir("fleet_" + std::to_string(shards));
    // Exercise the event-log path too: the env seed file is replaced by
    // the per-shard flush file as soon as the worker opens it.
    ::setenv("LCOSC_EVENTS", (spec.checkpoint_dir + "/events_seed.jsonl").c_str(), 1);
    const ServiceResult result = run_campaign_service(spec);
    ASSERT_FALSE(result.degraded());

    const std::string tdir = telemetry_dir(spec.checkpoint_dir);
    ASSERT_TRUE(fs::exists(tdir + "/metrics.json")) << shards << " shards";
    metrics_bytes[shards] = file_bytes(tdir + "/metrics.json");

    // The merged fleet trace: valid JSON, one pid per shard, and
    // timestamps monotone non-decreasing within every pid.
    const std::string trace = file_bytes(tdir + "/trace.json");
    EXPECT_TRUE(JsonValidator(trace).valid()) << shards << " shards";
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    std::map<int, double> last_ts;
    std::istringstream lines(trace);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t pid_at = line.find("\"pid\": ");
      const std::size_t ts_at = line.find("\"ts\": ");
      if (pid_at == std::string::npos || ts_at == std::string::npos) continue;
      const int pid = std::stoi(line.substr(pid_at + 7));
      const double ts = std::stod(line.substr(ts_at + 6));
      EXPECT_LT(pid, shards);
      const auto it = last_ts.find(pid);
      if (it != last_ts.end()) {
        EXPECT_GE(ts, it->second) << line;
      }
      last_ts[pid] = ts;
    }
    EXPECT_FALSE(last_ts.empty());

    // summary.json carries the wall-clock case-latency quantiles.
    const std::string summary = file_bytes(tdir + "/summary.json");
    EXPECT_TRUE(JsonValidator(summary).valid());
    EXPECT_NE(summary.find("\"service.case.wall_ms\""), std::string::npos);
    EXPECT_NE(summary.find("\"p50\""), std::string::npos);
    EXPECT_NE(summary.find("\"p95\""), std::string::npos);
    EXPECT_NE(summary.find("\"p99\""), std::string::npos);

    // Events concatenated in shard order, each line a flat object
    // tagged with its shard.
    const std::string events = file_bytes(tdir + "/events.jsonl");
    ASSERT_FALSE(events.empty());
    EXPECT_NE(events.find("\"shard\": 0"), std::string::npos);
  }

  // The deterministic artifact: byte-identical for every shard layout
  // (wall-clock histograms and gauges are excluded by design).
  EXPECT_FALSE(metrics_bytes[1].empty());
  EXPECT_EQ(metrics_bytes[1], metrics_bytes[2]);
  EXPECT_EQ(metrics_bytes[1], metrics_bytes[3]);
  EXPECT_EQ(metrics_bytes[1].find("wall_ms"), std::string::npos);
  EXPECT_NE(metrics_bytes[1].find("\"service.cases.computed\": 6"), std::string::npos)
      << metrics_bytes[1];
}

TEST_F(ServiceTest, ForensicsRecordsCrashedAndCleanWorkerExits) {
  CampaignSpec spec = small_tolerance_spec();
  spec.shards = 2;
  spec.max_restarts = 8;
  spec.test_kill_after_cases = 1;  // every spawn dies hard after one case
  spec.checkpoint_dir = subdir("forensics");
  const ServiceResult result = run_campaign_service(spec);
  ASSERT_FALSE(result.degraded());

  int crashes = 0;
  int clean_exits = 0;
  long long best_checkpoint = -1;
  for (const auto& row : forensics_rows(spec.checkpoint_dir)) {
    if (row.at("event") == "crash") {
      ++crashes;
      EXPECT_EQ(row.at("exit_code"), "137");
      EXPECT_EQ(row.at("signal"), "0");  // _exit(137), not a real signal
      best_checkpoint =
          std::max(best_checkpoint, std::stoll(row.at("last_checkpoint_index")));
    } else if (row.at("event") == "exit") {
      ++clean_exits;
      EXPECT_EQ(row.at("exit_code"), "0");
    }
    EXPECT_TRUE(row.count("pid"));
    EXPECT_TRUE(row.count("cpu_user_s"));
    EXPECT_TRUE(row.count("checkpoint_records"));
  }
  // 3 cases per shard, one per life: at least two crashes per shard
  // before the last life finishes cleanly.
  EXPECT_GE(crashes, 4);
  EXPECT_EQ(clean_exits, 2);
  // The crash rows point at real committed progress.
  EXPECT_GE(best_checkpoint, 0);
}

TEST_F(ServiceTest, WorkerStderrTailIsCapturedInForensics) {
  // A worker binary that only complains and fails: its stderr must come
  // back through the supervisor's capture pipe into the forensics row.
  const std::string script = subdir("worker.sh");
  {
    std::ofstream out(script);
    out << "#!/bin/sh\necho 'boom from worker' >&2\nexit 7\n";
  }
  fs::permissions(script, fs::perms::owner_all);

  CampaignSpec spec = small_tolerance_spec();
  spec.shards = 1;
  spec.max_restarts = 0;
  spec.checkpoint_dir = subdir("stderr");
  ServiceOptions options;
  options.worker_exe = script;
  const ServiceResult result = run_campaign_service(spec, options);
  EXPECT_TRUE(result.degraded());

  bool found = false;
  for (const auto& row : forensics_rows(spec.checkpoint_dir)) {
    if (row.at("event") != "crash") continue;
    found = true;
    EXPECT_EQ(row.at("exit_code"), "7");
    EXPECT_NE(row.at("stderr_tail").find("boom from worker"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST_F(ServiceTest, TelemetryOffLeavesReportsByteIdenticalAndNoArtifacts) {
  EnvGuard metrics_env("LCOSC_METRICS");
  EnvGuard trace_env("LCOSC_TRACE");
  EnvGuard events_env("LCOSC_EVENTS");
  ::unsetenv("LCOSC_METRICS");
  ::unsetenv("LCOSC_TRACE");
  ::unsetenv("LCOSC_EVENTS");

  CampaignSpec spec = small_tolerance_spec();
  const std::string reference = reference_report(spec);
  spec.shards = 2;
  spec.checkpoint_dir = subdir("dark");
  const ServiceResult result = run_campaign_service(spec);
  EXPECT_EQ(result.report, reference);

  // Forensics is always on; everything else must be absent so a
  // telemetry-free run leaves the checkpoint directory exactly as the
  // pre-telemetry service did (plus the forensics log).
  const std::string tdir = telemetry_dir(spec.checkpoint_dir);
  EXPECT_TRUE(fs::exists(forensics_path(spec.checkpoint_dir)));
  EXPECT_FALSE(fs::exists(tdir + "/metrics.json"));
  EXPECT_FALSE(fs::exists(tdir + "/trace.json"));
  EXPECT_FALSE(fs::exists(tdir + "/events.jsonl"));
  EXPECT_FALSE(fs::exists(tdir + "/summary.json"));
}

TEST_F(ServiceTest, ReportFileIsWrittenAtomicallyAtTheConfiguredPath) {
  CampaignSpec spec = small_tolerance_spec();
  spec.checkpoint_dir = subdir("report");
  spec.report_path = subdir("report") + "/final_report.txt";
  spec.shards = 2;
  const ServiceResult result = run_campaign_service(spec);

  std::ifstream in(spec.report_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), result.report);
  // No temp litter from the atomic write.
  for (const auto& entry : fs::directory_iterator(spec.checkpoint_dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos) << entry.path();
  }
}

// Count live processes whose command line mentions `marker` -- the shard
// workers of a run are identifiable by the --lcosc-spec path inside the
// test's private checkpoint directory.
int processes_mentioning(const std::string& marker) {
  int found = 0;
  for (const auto& entry : fs::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.empty() || name.find_first_not_of("0123456789") != std::string::npos) continue;
    std::ifstream in(entry.path() / "cmdline", std::ios::binary);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    if (buf.str().find(marker) != std::string::npos) ++found;
  }
  return found;
}

bool wait_until(const std::function<bool()>& done, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

TEST_F(ServiceTest, SignalledCoordinatorKillsAndReapsItsWorkers) {
  // The regression: a coordinator hit by SIGINT/SIGTERM died without
  // forwarding anything to its fork/exec'd workers, leaving them running
  // (here: stalled forever) with nobody left to reap or merge them.
  for (const int sig : {SIGTERM, SIGINT}) {
    CampaignSpec spec = small_tolerance_spec();
    spec.shards = 1;
    spec.test_stall_once = true;  // worker wedges forever; no timeout set
    spec.checkpoint_dir = subdir("sig" + std::to_string(sig));

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ServiceOptions options;
      options.poll_ms = 5;
      try {
        (void)run_campaign_service(spec, options);
      } catch (...) {
      }
      _exit(99);  // the signal must terminate the child before this
    }

    // The stalled worker drops its sentinel first thing, then wedges.
    ASSERT_TRUE(wait_until(
        [&] { return processes_mentioning(spec.checkpoint_dir) >= 1; }, 15000))
        << "worker never appeared";
    ASSERT_EQ(kill(child, sig), 0);

    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status)) << "coordinator exited instead of dying by signal";
    EXPECT_EQ(WTERMSIG(status), sig);

    // No orphan: the worker is gone (not just zombied -- a reaped child
    // has no /proc entry at all).
    EXPECT_TRUE(wait_until(
        [&] { return processes_mentioning(spec.checkpoint_dir) == 0; }, 5000))
        << "shard worker outlived the coordinator";
  }
}

TEST_F(ServiceTest, ChunkedDrainMatchesPerCaseDrainForAnyShardCount) {
  // chunk_lanes=1 forces per-case execution; chunk_lanes=4 drains whole
  // lockstep chunks.  With 10 cases over 3 shards the ranges are [0,4),
  // [4,7), [7,10): shard boundaries fall mid-chunk, so this exercises
  // spans that start and end away from global chunk boundaries.
  CampaignSpec spec = small_tolerance_spec();
  spec.samples = 10;
  spec.chunk_lanes = 1;
  const std::string per_case = reference_report(spec);
  ASSERT_FALSE(per_case.empty());

  spec.chunk_lanes = 4;
  for (const int shards : {1, 2, 3}) {
    spec.shards = shards;
    spec.checkpoint_dir = subdir("chunked_" + std::to_string(shards));
    const ServiceResult result = run_campaign_service(spec);
    EXPECT_EQ(result.report, per_case) << shards << " shards";
    EXPECT_FALSE(result.degraded());
  }
}

TEST_F(ServiceTest, WorkerKilledMidChunkResumesToTheReferenceReport) {
  CampaignSpec spec = small_tolerance_spec();
  spec.samples = 10;
  spec.chunk_lanes = 1;
  const std::string per_case = reference_report(spec);

  // Chunks of 4, but every spawn dies hard after committing 3 cases: the
  // chunk is checkpointed partially, and the respawn's first group is a
  // mid-chunk span clipped at the next global boundary.  First-wins
  // merge must still reproduce the per-case report byte for byte.
  spec.chunk_lanes = 4;
  spec.shards = 2;
  spec.max_restarts = 8;
  spec.test_kill_after_cases = 3;
  spec.checkpoint_dir = subdir("kill_mid_chunk");
  const ServiceResult killed = run_campaign_service(spec);
  EXPECT_EQ(killed.report, per_case);
  EXPECT_FALSE(killed.degraded());

  // And a clean rerun of the same directory resumes everything.
  spec.test_kill_after_cases = 0;
  const ServiceResult resumed = run_campaign_service(spec);
  EXPECT_EQ(resumed.report, per_case);
  EXPECT_EQ(resumed.cases_resumed, 10u);
}

TEST(ServiceAdapters, RunCasesSpanMatchesPerCaseRecords) {
  // The chunked drain feeds run_cases() where the per-case drain feeds
  // run_case(); for every campaign kind the two must emit identical
  // record bytes for any span (tolerance routes through the lockstep
  // batched engine, internal FMEA through the shared settle prefix).
  for (const CampaignKind kind :
       {CampaignKind::Tolerance, CampaignKind::ExternalFmea, CampaignKind::InternalFmea}) {
    CampaignSpec spec = small_tolerance_spec();
    spec.kind = kind;
    spec.chunk_lanes = 2;
    const auto campaign = make_campaign(spec);
    EXPECT_EQ(campaign->chunk_stride(),
              kind == CampaignKind::ExternalFmea ? std::size_t{1} : std::size_t{2})
        << to_string(kind);

    const std::size_t first = 1;
    const std::size_t count = std::min<std::size_t>(3, campaign->case_count() - first);
    const std::vector<std::string> batch = campaign->run_cases(first, count);
    ASSERT_EQ(batch.size(), count) << to_string(kind);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(batch[i], campaign->run_case(first + i))
          << to_string(kind) << " case " << (first + i);
    }
  }
}

TEST(ServiceSpec, ChunkLanesParsesValidatesAndStaysOutOfTheSignature) {
  CampaignSpec spec;
  spec.chunk_lanes = 7;
  EXPECT_EQ(parse_campaign_spec(to_json(spec)).chunk_lanes, 7);
  EXPECT_THROW((void)parse_campaign_spec(R"({"chunk_lanes": 0})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"chunk_lanes": 4097})"), ConfigError);
  EXPECT_THROW((void)parse_campaign_spec(R"({"chunk_lanes": 1.5})"), ConfigError);

  // Flag-built specs (--chunk-lanes) never pass through the JSON parser;
  // make_campaign enforces the same bound up front, so an out-of-range
  // value is refused before any shard worker spawns.
  CampaignSpec flags;
  flags.chunk_lanes = 0;
  EXPECT_THROW((void)make_campaign(flags), ConfigError);
  flags.chunk_lanes = 4097;
  EXPECT_THROW((void)make_campaign(flags), ConfigError);

  // Changing chunk_lanes never changes record bytes, so a resume across
  // a chunk_lanes change is legal: it must NOT invalidate checkpoints.
  CampaignSpec a;
  CampaignSpec b = a;
  b.chunk_lanes = 4096;
  EXPECT_EQ(determinism_signature(a), determinism_signature(b));
}

TEST(ServiceAdapters, ErrorRecordsAreDetectedByEveryCampaignKind) {
  for (const CampaignKind kind :
       {CampaignKind::Tolerance, CampaignKind::ExternalFmea, CampaignKind::InternalFmea}) {
    CampaignSpec spec = small_tolerance_spec();
    spec.kind = kind;
    const auto campaign = make_campaign(spec);
    EXPECT_TRUE(campaign->is_error_record(campaign->error_record(0, "injected failure")))
        << to_string(kind);
  }
  // A genuinely computed record must not look degraded, or the merge
  // would keep replacing it.
  const auto tolerance = make_campaign(small_tolerance_spec());
  EXPECT_FALSE(tolerance->is_error_record(tolerance->run_case(0)));
}

}  // namespace
}  // namespace lcosc::service

int main(int argc, char** argv) {
  // Shard-worker mode: the coordinator under test re-execs this binary.
  if (const auto shard_exit = lcosc::service::maybe_run_shard(argc, argv)) return *shard_exit;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
