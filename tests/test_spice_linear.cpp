// DC analysis of linear circuits: divider, bridges, sources, controlled
// sources, inductor/capacitor DC behaviour, floating nodes.
#include <gtest/gtest.h>

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"

namespace lcosc::spice {
namespace {

TEST(DcLinear, VoltageDivider) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 10.0);
  c.resistor("R1", "in", "mid", 1e3);
  c.resistor("R2", "mid", "0", 3e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "mid"), 7.5, 1e-6);
}

TEST(DcLinear, SourceBranchCurrent) {
  Circuit c;
  auto& v1 = c.voltage_source("V1", "a", "0", 5.0);
  c.resistor("R1", "a", "0", 1e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  // Current into the + terminal is negative when sourcing (SPICE sign).
  StampContext ctx;
  EXPECT_NEAR(v1.branch_current(s.x, ctx), -5e-3, 1e-9);
}

TEST(DcLinear, CurrentSourceIntoResistor) {
  Circuit c;
  c.current_source("I1", "0", "out", 2e-3);
  c.resistor("R1", "out", "0", 500.0);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "out"), 1.0, 1e-6);
}

TEST(DcLinear, InductorIsDcShort) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 1.0);
  c.resistor("R1", "in", "a", 1e3);
  auto& l1 = c.inductor("L1", "a", "b", 1e-3);
  c.resistor("R2", "b", "0", 1e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "a"), s.voltage(c, "b"), 1e-9);
  StampContext ctx;
  EXPECT_NEAR(l1.branch_current(s.x, ctx), 0.5e-3, 1e-9);
}

TEST(DcLinear, CapacitorIsDcOpen) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 1.0);
  c.resistor("R1", "in", "a", 1e3);
  c.capacitor("C1", "a", "0", 1e-9);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  // No DC path through the capacitor: node a sits at the source voltage.
  EXPECT_NEAR(s.voltage(c, "a"), 1.0, 1e-5);
}

TEST(DcLinear, FloatingNodeSolvedByGmin) {
  Circuit c;
  c.voltage_source("V1", "a", "0", 1.0);
  c.resistor("R1", "a", "b", 1e3);
  c.add_node("orphan");  // totally unconnected node
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "orphan"), 0.0, 1e-6);
  EXPECT_NEAR(s.voltage(c, "b"), 1.0, 1e-3);  // through gmin only
}

TEST(DcLinear, WheatstoneBridge) {
  Circuit c;
  c.voltage_source("V1", "top", "0", 10.0);
  c.resistor("R1", "top", "left", 1e3);
  c.resistor("R2", "top", "right", 2e3);
  c.resistor("R3", "left", "0", 2e3);
  c.resistor("R4", "right", "0", 4e3);
  c.resistor("Rg", "left", "right", 5e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  // Balanced bridge: no current through Rg, both mid nodes at 20/3 V.
  EXPECT_NEAR(s.voltage(c, "left"), s.voltage(c, "right"), 1e-6);
  EXPECT_NEAR(s.voltage(c, "left"), 10.0 * 2.0 / 3.0, 1e-5);
}

TEST(DcLinear, VccsAmplifier) {
  Circuit c;
  c.voltage_source("Vin", "in", "0", 0.1);
  c.vccs("G1", "0", "out", "in", "0", 1e-3);  // pushes gm*vin into out
  c.resistor("RL", "out", "0", 10e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "out"), 1.0, 1e-6);
}

TEST(DcLinear, VcvsGain) {
  Circuit c;
  c.voltage_source("Vin", "in", "0", 0.25);
  c.add<Vcvs>("E1", c.node_or_create("out"), Circuit::ground(), c.node("in"),
              Circuit::ground(), 4.0);
  c.resistor("RL", "out", "0", 1e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "out"), 1.0, 1e-9);
}

TEST(DcLinear, SeriesVoltageSourcesSum) {
  Circuit c;
  c.voltage_source("V1", "a", "0", 1.5);
  c.voltage_source("V2", "b", "a", 2.5);
  c.resistor("R1", "b", "0", 1e3);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "b"), 4.0, 1e-9);
}

TEST(Circuit, DuplicateNamesRejected) {
  Circuit c;
  c.resistor("R1", "a", "0", 1.0);
  EXPECT_THROW(c.resistor("R1", "b", "0", 1.0), NetlistError);
  c.add_node("x");
  EXPECT_THROW(c.add_node("x"), NetlistError);
}

TEST(Circuit, UnknownNodeLookupThrows) {
  Circuit c;
  EXPECT_THROW(c.node("nope"), NetlistError);
  EXPECT_EQ(c.node(std::string("0")), Circuit::ground());
  EXPECT_EQ(c.node("gnd"), Circuit::ground());
}

TEST(Circuit, FindElements) {
  Circuit c;
  c.resistor("R1", "a", "0", 1e3);
  EXPECT_NE(c.find("R1"), nullptr);
  EXPECT_EQ(c.find("R2"), nullptr);
  EXPECT_NE(c.find_as<Resistor>("R1"), nullptr);
  EXPECT_EQ(c.find_as<Capacitor>("R1"), nullptr);
}

TEST(Circuit, NonlinearDetection) {
  Circuit linear;
  linear.resistor("R1", "a", "0", 1.0);
  EXPECT_FALSE(linear.is_nonlinear());
  Circuit nl;
  nl.diode("D1", "a", "0");
  EXPECT_TRUE(nl.is_nonlinear());
}

}  // namespace
}  // namespace lcosc::spice
