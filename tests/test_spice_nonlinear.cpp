// DC analysis of nonlinear circuits: diodes, MOSFETs (all regions, both
// polarities, bulk diodes), switches, and convergence continuation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"

namespace lcosc::spice {
namespace {

TEST(Junction, ExponentialAndLimiting) {
  DiodeParams p;
  const JunctionEval low = evaluate_junction(0.3, p);
  const JunctionEval mid = evaluate_junction(0.6, p);
  EXPECT_GT(mid.current, low.current * 100.0);  // exponential region
  // Above the limit voltage the extension is linear in v.
  const JunctionEval a = evaluate_junction(p.limit_voltage + 1.0, p);
  const JunctionEval b = evaluate_junction(p.limit_voltage + 2.0, p);
  EXPECT_NEAR(b.current - a.current, a.conductance, a.conductance * 1e-6);
  EXPECT_TRUE(std::isfinite(evaluate_junction(100.0, p).current));
}

TEST(Junction, ReverseLeakageIsGmin) {
  DiodeParams p;
  const JunctionEval rev = evaluate_junction(-5.0, p);
  EXPECT_NEAR(rev.current, -p.saturation_current + p.gmin * -5.0, 1e-12);
}

TEST(DcDiode, ForwardDropAboutSixHundredMillivolts) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 5.0);
  c.resistor("R1", "in", "a", 1e3);
  c.diode("D1", "a", "0");
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  const double vd = s.voltage(c, "a");
  EXPECT_GT(vd, 0.55);
  EXPECT_LT(vd, 0.75);
}

TEST(DcDiode, ReverseBlocksCurrent) {
  Circuit c;
  c.voltage_source("V1", "in", "0", -5.0);
  c.resistor("R1", "in", "a", 1e3);
  c.diode("D1", "a", "0");
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "a"), -5.0, 1e-3);
}

TEST(DcDiode, SixtyMillivoltPerDecade) {
  // Two bias points a decade apart in current differ by ~ln(10)*nVt.
  auto drop_at = [](double i_bias) {
    Circuit c;
    c.current_source("I1", "0", "a", i_bias);
    c.diode("D1", "a", "0");
    const DcSolution s = solve_dc(c);
    EXPECT_TRUE(s.converged);
    return s.voltage(c, "a");
  };
  const double dv = drop_at(1e-3) - drop_at(1e-4);
  EXPECT_NEAR(dv, std::log(10.0) * 0.02585, 0.002);
}

TEST(MosfetEval, Regions) {
  MosfetParams p = nmos_035um(10.0);
  p.gamma = 0.0;
  // Cutoff.
  const MosfetEval off = Mosfet::evaluate_channel(1.0, 0.2, 0.0, 0.0, p);
  EXPECT_DOUBLE_EQ(off.ids, 0.0);
  // Saturation: vds > vgs - vt.
  const MosfetEval sat = Mosfet::evaluate_channel(3.0, 1.5, 0.0, 0.0, p);
  EXPECT_TRUE(sat.saturated);
  const double vov = 1.5 - p.threshold_voltage;
  EXPECT_NEAR(sat.ids, 0.5 * p.transconductance * vov * vov * (1.0 + p.lambda * 3.0),
              sat.ids * 1e-9);
  // Triode: vds small.
  const MosfetEval tri = Mosfet::evaluate_channel(0.05, 2.0, 0.0, 0.0, p);
  EXPECT_FALSE(tri.saturated);
  EXPECT_GT(tri.gds, sat.gds);
}

TEST(MosfetEval, SymmetricSwap) {
  MosfetParams p = nmos_035um(10.0);
  p.gamma = 0.0;
  p.lambda = 0.0;
  const MosfetEval fwd = Mosfet::evaluate_channel(2.0, 1.5, 0.0, 0.0, p);
  // Same terminal potentials with drain and source exchanged: the model
  // must normalize (swap) and report the same channel current.
  const MosfetEval rev = Mosfet::evaluate_channel(0.0, 1.5, 2.0, 0.0, p);
  EXPECT_TRUE(rev.swapped);
  EXPECT_NEAR(fwd.ids, rev.ids, fwd.ids * 1e-9);
}

TEST(MosfetEval, BodyEffectRaisesThreshold) {
  MosfetParams p = nmos_035um(10.0);  // gamma > 0
  const MosfetEval no_bias = Mosfet::evaluate_channel(3.0, 1.2, 0.0, 0.0, p);
  const MosfetEval back_bias = Mosfet::evaluate_channel(3.0, 1.2, 0.0, -2.0, p);
  EXPECT_LT(back_bias.ids, no_bias.ids);
  EXPECT_GT(back_bias.gmb, 0.0);
}

TEST(DcMosfet, NmosInverterRails) {
  auto vtc_point = [](double vin) {
    Circuit c;
    c.voltage_source("Vdd", "vdd", "0", 5.0);
    c.voltage_source("Vin", "in", "0", vin);
    c.resistor("RL", "vdd", "out", 10e3);
    c.mosfet("M1", "out", "in", "0", "0", nmos_035um(10.0));
    const DcSolution s = solve_dc(c);
    EXPECT_TRUE(s.converged);
    return s.voltage(c, "out");
  };
  EXPECT_NEAR(vtc_point(0.0), 5.0, 0.01);   // off: output at the rail
  EXPECT_LT(vtc_point(5.0), 0.4);           // hard on: output near ground
  // Monotone decreasing VTC.
  EXPECT_GT(vtc_point(1.0), vtc_point(1.5));
}

TEST(DcMosfet, PmosSourceFollowsPolarity) {
  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);
  c.voltage_source("Vg", "g", "0", 0.0);
  c.resistor("RL", "out", "0", 10e3);
  c.mosfet("M1", "out", "g", "vdd", "vdd", pmos_035um(20.0));
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  // Gate low, PMOS on: output pulled towards Vdd.
  EXPECT_GT(s.voltage(c, "out"), 4.0);
}

TEST(DcMosfet, PmosOffWhenGateHigh) {
  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);
  c.voltage_source("Vg", "g", "0", 5.0);
  c.resistor("RL", "out", "0", 10e3);
  c.mosfet("M1", "out", "g", "vdd", "vdd", pmos_035um(20.0));
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_LT(s.voltage(c, "out"), 0.1);
}

TEST(DcMosfet, BulkDiodeConductsWhenDrainBelowBulk) {
  // NMOS with grounded bulk: pulling the drain negative forward-biases
  // the bulk-drain junction (this is exactly the Fig. 10a failure path).
  Circuit c;
  c.voltage_source("V1", "d", "0", -2.0);
  // Series resistor so the junction current is observable via the drop.
  Circuit c2;
  c2.voltage_source("V1", "in", "0", -2.0);
  c2.resistor("Rs", "in", "d", 1e3);
  c2.mosfet("M1", "d", "0", "0", "0", nmos_035um(100.0));
  const DcSolution s = solve_dc(c2);
  ASSERT_TRUE(s.converged);
  // Junction clamps the drain near -0.6..-0.8 V.
  EXPECT_GT(s.voltage(c2, "d"), -0.9);
  EXPECT_LT(s.voltage(c2, "d"), -0.4);
}

TEST(DcMosfet, CascadeNeedsContinuation) {
  // Three-stage resistor-loaded chain: a harder Newton problem that should
  // still converge (possibly via gmin stepping).
  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);
  c.voltage_source("Vin", "in", "0", 1.2);
  std::string prev = "in";
  for (int stage = 0; stage < 3; ++stage) {
    const std::string out = "o" + std::to_string(stage);
    c.resistor("R" + std::to_string(stage), "vdd", out, 20e3);
    c.mosfet("M" + std::to_string(stage), out, prev, "0", "0", nmos_035um(5.0));
    prev = out;
  }
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  for (int stage = 0; stage < 3; ++stage) {
    const double v = s.voltage(c, "o" + std::to_string(stage));
    EXPECT_GE(v, -0.1);
    EXPECT_LE(v, 5.1);
  }
}

TEST(Zener, ForwardLikeNormalDiode) {
  Circuit c;
  c.voltage_source("V1", "in", "0", 5.0);
  c.resistor("R1", "in", "a", 1e3);
  c.add<ZenerDiode>("Z1", c.node_or_create("a"), Circuit::ground(), ZenerParams{});
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_GT(s.voltage(c, "a"), 0.55);
  EXPECT_LT(s.voltage(c, "a"), 0.75);
}

TEST(Zener, ReverseBreakdownClampsAtVz) {
  ZenerParams zp;
  zp.breakdown_voltage = 5.5;
  Circuit c;
  c.voltage_source("V1", "in", "0", -12.0);
  c.resistor("R1", "in", "a", 1e3);
  // Anode at node a, cathode at ground: node a negative = reverse bias.
  c.add<ZenerDiode>("Z1", c.node_or_create("a"), Circuit::ground(), zp);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "a"), -5.5, 0.4);
}

TEST(Zener, BlocksBelowBreakdown) {
  ZenerParams zp;
  zp.breakdown_voltage = 5.5;
  Circuit c;
  c.voltage_source("V1", "in", "0", -3.0);
  c.resistor("R1", "in", "a", 1e3);
  c.add<ZenerDiode>("Z1", c.node_or_create("a"), Circuit::ground(), zp);
  const DcSolution s = solve_dc(c);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(c, "a"), -3.0, 1e-2);
}

TEST(Zener, CharacteristicIsMonotone) {
  Circuit c;
  auto& z = c.add<ZenerDiode>("Z1", c.node_or_create("a"), Circuit::ground(), ZenerParams{});
  double prev = z.evaluate(-8.0).current;
  for (double v = -7.9; v <= 1.0; v += 0.1) {
    const double i = z.evaluate(v).current;
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(DcSwitch, OnOffStates) {
  Switch::Params sp;
  sp.r_on = 100.0;
  sp.r_off = 1e9;
  sp.threshold = 1.0;
  auto out_at = [&](double vctl) {
    Circuit c;
    c.voltage_source("V1", "in", "0", 2.0);
    c.voltage_source("Vc", "ctl", "0", vctl);
    c.resistor("R1", "in", "a", 100.0);
    c.sw("S1", "a", "0", "ctl", "0", sp);
    const DcSolution s = solve_dc(c);
    EXPECT_TRUE(s.converged);
    return s.voltage(c, "a");
  };
  EXPECT_NEAR(out_at(2.0), 1.0, 0.01);  // on: divider 100/100
  EXPECT_NEAR(out_at(0.0), 2.0, 0.01);  // off
}

TEST(DcSwitch, ConductanceTransitionIsSmooth) {
  Switch::Params sp;
  Circuit c;
  auto& s1 = c.sw("S1", "a", "0", "ctl", "0", sp);
  const double g_below = s1.conductance_at(-1.0);
  const double g_mid = s1.conductance_at(0.0);
  const double g_above = s1.conductance_at(1.0);
  EXPECT_LT(g_below, g_mid);
  EXPECT_LT(g_mid, g_above);
  EXPECT_NEAR(g_mid, 0.5 * (1.0 / sp.r_on + 1.0 / sp.r_off), 1e-6);
}

}  // namespace
}  // namespace lcosc::spice
