// Unit tests for the common substrate: units, constants, formatting,
// error handling, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/constants.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"

namespace lcosc {
namespace {

using namespace lcosc::literals;

TEST(Units, LiteralScales) {
  EXPECT_DOUBLE_EQ(1.0_V, 1.0);
  EXPECT_DOUBLE_EQ(12.5_uA, 12.5e-6);
  EXPECT_DOUBLE_EQ(100.0_uH, 1e-4);
  EXPECT_DOUBLE_EQ(2.2_nF, 2.2e-9);
  EXPECT_DOUBLE_EQ(4.0_MHz, 4e6);
  EXPECT_DOUBLE_EQ(1.0_ms, 1e-3);
  EXPECT_DOUBLE_EQ(10.0_mS, 1e-2);
  EXPECT_DOUBLE_EQ(3.3_kOhm, 3300.0);
}

TEST(Units, IntegerLiterals) {
  EXPECT_DOUBLE_EQ(5_V, 5.0);
  EXPECT_DOUBLE_EQ(250_uA, 250e-6);
  EXPECT_DOUBLE_EQ(2_MHz, 2e6);
}

TEST(Constants, PaperValues) {
  EXPECT_EQ(kDacCodeCount, 128);
  EXPECT_EQ(kDacCodeMax, 127);
  EXPECT_EQ(kDacFullScaleUnits, 1984);
  EXPECT_EQ(kStartupCode, 105);
  EXPECT_DOUBLE_EQ(kDacUnitCurrent, 12.5e-6);
  EXPECT_DOUBLE_EQ(kRegulationTickPeriod, 1e-3);
  EXPECT_NEAR(kMaxRelativeStepAbove16, 0.0625, 1e-12);
  EXPECT_NEAR(kMinRelativeStepAbove16, 0.0323, 1e-12);
}

TEST(Constants, ShapeFactors) {
  // 4/pi for a square-wave drive; ~0.9 quoted for the linear ramp limiter.
  EXPECT_NEAR(kDriverShapeFactorSquare, 1.2732, 1e-4);
  EXPECT_DOUBLE_EQ(kDriverShapeFactorLinear, 0.9);
}

TEST(Error, RequireThrowsConfigError) {
  EXPECT_THROW(LCOSC_REQUIRE(false, "boom"), ConfigError);
  EXPECT_NO_THROW(LCOSC_REQUIRE(true, "fine"));
}

TEST(Error, MessageContainsContext) {
  try {
    LCOSC_REQUIRE(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConvergenceError("x"), Error);
  EXPECT_THROW(throw NetlistError("x"), Error);
  EXPECT_THROW(throw ConfigError("x"), std::runtime_error);
}

TEST(SiFormat, EngineeringPrefixes) {
  EXPECT_EQ(si_format(12.5e-6, "A"), "12.5 uA");
  EXPECT_EQ(si_format(2.48e-2, "A", 3), "24.8 mA");
  EXPECT_EQ(si_format(4e6, "Hz", 1), "4 MHz");
  EXPECT_EQ(si_format(0.0, "V"), "0 V");
  EXPECT_EQ(si_format(-3.3, "V", 2), "-3.3 V");
}

TEST(SiFormat, SubNanoAndHuge) {
  EXPECT_EQ(si_format(15.8e-12, "F", 3), "15.8 pF");
  EXPECT_EQ(si_format(2e3, "Ohm", 1), "2 kOhm");
  EXPECT_EQ(si_format(1e12, "x", 1), "1 Tx");
}

TEST(SiFormat, NonFinite) {
  EXPECT_EQ(si_format(std::nan(""), "V"), "nan V");
  EXPECT_EQ(si_format(INFINITY, "V"), "inf V");
}

TEST(SiFormat, Percent) {
  EXPECT_EQ(percent_format(0.0625), "6.25%");
  EXPECT_EQ(percent_format(0.0323, 3), "3.23%");
}

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter t({"Code", "M"});
  t.add_values(0, 0);
  t.add_values(127, 1984);
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Code"), std::string::npos);
  EXPECT_NE(out.find("1984"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TablePrinter, CsvEscaping) {
  TablePrinter t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Logging, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold messages are discarded silently (no crash, no output
  // check possible here; exercise the path).
  LCOSC_LOG_DEBUG << "dropped";
  LCOSC_LOG_INFO << "dropped too";
  set_log_level(original);
}

}  // namespace
}  // namespace lcosc
