// Harmonic spectrum analysis (the EMC view).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "waveform/spectrum.h"

namespace lcosc {
namespace {

Trace make_square(double amplitude, double freq, double duration, double rate) {
  Trace t("sq");
  const double dt = 1.0 / rate;
  for (double time = 0.0; time <= duration; time += dt) {
    t.append(time, std::fmod(time * freq, 1.0) < 0.5 ? amplitude : -amplitude);
  }
  return t;
}

Trace make_sine(double amplitude, double freq, double duration, double rate) {
  Trace t("sin");
  const double dt = 1.0 / rate;
  for (double time = 0.0; time <= duration; time += dt) {
    t.append(time, amplitude * std::sin(kTwoPi * freq * time));
  }
  return t;
}

TEST(Spectrum, SquareWaveOddHarmonics) {
  const Trace t = make_square(1.0, 1e3, 0.05, 2e6);
  const auto spec = harmonic_spectrum(t, 1e3, 9);
  ASSERT_EQ(spec.size(), 9u);
  // Fundamental of a square wave: 4/pi.
  EXPECT_NEAR(spec[0].amplitude, 4.0 / kPi, 0.02);
  // 3rd harmonic: fundamental/3; even harmonics vanish.
  EXPECT_NEAR(spec[2].amplitude, 4.0 / (3.0 * kPi), 0.02);
  EXPECT_NEAR(spec[1].amplitude, 0.0, 0.02);
  EXPECT_NEAR(spec[3].amplitude, 0.0, 0.02);
  // 3rd harmonic level: -9.54 dBc.
  EXPECT_NEAR(spec[2].dbc, -9.54, 0.3);
}

TEST(Spectrum, PureSineIsClean) {
  const Trace t = make_sine(2.0, 1e3, 0.05, 2e6);
  const auto spec = harmonic_spectrum(t, 1e3, 9);
  EXPECT_NEAR(spec[0].amplitude, 2.0, 0.02);
  EXPECT_LT(worst_harmonic_dbc(spec), -40.0);
  EXPECT_LT(harmonic_power_ratio(spec), 1e-3);
}

TEST(Spectrum, WorstHarmonicPicksLargest) {
  const Trace t = make_square(1.0, 1e3, 0.05, 2e6);
  const auto spec = harmonic_spectrum(t, 1e3, 9);
  // For a square wave the 3rd harmonic is the worst offender.
  double best = -500.0;
  int best_h = 0;
  for (const auto& line : spec) {
    if (line.harmonic >= 2 && line.dbc > best) {
      best = line.dbc;
      best_h = line.harmonic;
    }
  }
  EXPECT_EQ(best_h, 3);
  EXPECT_NEAR(worst_harmonic_dbc(spec), best, 1e-12);
}

TEST(Spectrum, HarmonicPowerRatioIsThdSquared) {
  const Trace t = make_square(1.0, 1e3, 0.05, 2e6);
  const auto spec = harmonic_spectrum(t, 1e3, 9);
  // THD through 9th harmonic ~ 0.4291 -> power ratio ~ 0.184.
  EXPECT_NEAR(harmonic_power_ratio(spec), 0.4291 * 0.4291, 0.02);
}

TEST(Spectrum, FrequencyColumnsAreMultiples) {
  const Trace t = make_sine(1.0, 5e3, 0.01, 2e6);
  const auto spec = harmonic_spectrum(t, 5e3, 4);
  for (int h = 1; h <= 4; ++h) {
    EXPECT_DOUBLE_EQ(spec[static_cast<std::size_t>(h - 1)].frequency, 5e3 * h);
    EXPECT_EQ(spec[static_cast<std::size_t>(h - 1)].harmonic, h);
  }
}

TEST(Spectrum, InvalidArgumentsThrow) {
  const Trace t = make_sine(1.0, 1e3, 0.01, 1e6);
  EXPECT_THROW(harmonic_spectrum(t, 0.0, 5), ConfigError);
  EXPECT_THROW(harmonic_spectrum(t, 1e3, 0), ConfigError);
}

}  // namespace
}  // namespace lcosc
