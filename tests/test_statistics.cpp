// Descriptive statistics helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "common/statistics.h"

namespace lcosc {
namespace {

TEST(Statistics, SummaryOfKnownSample) {
  const SummaryStatistics s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Statistics, SingleSample) {
  const SummaryStatistics s = summarize({7.5});
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p05, 7.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
}

TEST(Statistics, EmptySampleThrows) {
  EXPECT_THROW(summarize({}), ConfigError);
  EXPECT_THROW(quantile({}, 0.5), ConfigError);
}

TEST(Statistics, QuantileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
  EXPECT_THROW(quantile(v, 1.5), ConfigError);
}

TEST(Statistics, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Statistics, NormalSampleMoments) {
  Rng rng(5);
  std::vector<double> v(50000);
  for (auto& x : v) x = rng.normal(10.0, 2.0);
  const SummaryStatistics s = summarize(v);
  EXPECT_NEAR(s.mean, 10.0, 0.05);
  EXPECT_NEAR(s.stddev, 2.0, 0.05);
  // Normal p05/p95 ~ mean -+ 1.645 sigma.
  EXPECT_NEAR(s.p05, 10.0 - 1.645 * 2.0, 0.1);
  EXPECT_NEAR(s.p95, 10.0 + 1.645 * 2.0, 0.1);
}

TEST(Statistics, HistogramBinsAndClamping) {
  const auto h = histogram({0.1, 0.2, 0.55, 0.9, -5.0, 5.0}, 0.0, 1.0, 4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 3u);  // 0.1, 0.2 and the clamped -5.0
  EXPECT_EQ(h[1], 0u);
  EXPECT_EQ(h[2], 1u);  // 0.55
  EXPECT_EQ(h[3], 2u);  // 0.9 and the clamped 5.0
}

TEST(Statistics, HistogramValidation) {
  EXPECT_THROW(histogram({1.0}, 1.0, 0.0, 4), ConfigError);
  EXPECT_THROW(histogram({1.0}, 0.0, 1.0, 0), ConfigError);
}

}  // namespace
}  // namespace lcosc
