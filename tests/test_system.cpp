// End-to-end single-system behaviour: startup, regulation into the window,
// fault injection and the safety reaction (Sections 4, 7, 9).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "common/units.h"
#include "system/fmea_campaign.h"
#include "system/oscillator_system.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

OscillatorSystemConfig default_config(double quality = 40.0) {
  OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, quality, 3.3_uH);
  // A faster regulation tick keeps run times short; the loop dynamics are
  // unchanged (one +-1 step per tick, window rule intact).
  cfg.regulation.tick_period = 0.25e-3;
  cfg.safety.low_amplitude.persistence = 2e-3;
  cfg.waveform_decimation = 0;  // envelopes and ticks only: faster, smaller
  return cfg;
}

TEST(System, StartupSettlesIntoRegulationWindow) {
  OscillatorSystem sys(default_config());
  const SimulationResult r = sys.run(25e-3);
  ASSERT_FALSE(r.ticks.empty());
  const double settled = r.settled_amplitude();
  // Regulation target 2.7 V differential peak, window +-5%.
  EXPECT_NEAR(settled, 2.7, 2.7 * 0.08);
  EXPECT_FALSE(r.final_faults.any());
  EXPECT_EQ(r.final_mode, regulation::RegulationMode::Regulating);
}

TEST(System, RegulationCodeMovesAtMostOnePerTick) {
  OscillatorSystem sys(default_config());
  const SimulationResult r = sys.run(15e-3);
  for (std::size_t i = 1; i < r.ticks.size(); ++i) {
    EXPECT_LE(std::abs(r.ticks[i].code - r.ticks[i - 1].code), 1);
  }
}

TEST(System, SteadyStateDoesNotLimitCycleAcrossWindow) {
  // The Section-4 design rule: because the window is wider than the worst
  // step, steady state toggles by at most one code around the target.
  OscillatorSystem sys(default_config());
  const SimulationResult r = sys.run(25e-3);
  ASSERT_GT(r.ticks.size(), 15u);
  int min_code = 127;
  int max_code = 0;
  for (std::size_t i = r.ticks.size() - 8; i < r.ticks.size(); ++i) {
    min_code = std::min(min_code, r.ticks[i].code);
    max_code = std::max(max_code, r.ticks[i].code);
  }
  EXPECT_LE(max_code - min_code, 1);
}

TEST(System, StartupFromCode105FasterThanFromZero) {
  // The POR preset exists to cut startup time (Section 4 / Fig. 16).
  auto settle_ticks = [](int startup_code) {
    OscillatorSystemConfig cfg = default_config(15.0);
    cfg.regulation.startup_code = startup_code;
    OscillatorSystem sys(cfg);
    const SimulationResult r = sys.run(40e-3);
    // First tick whose amplitude-equivalent is within 10% of the target.
    for (std::size_t i = 0; i < r.ticks.size(); ++i) {
      const double a = regulation::AmplitudeDetector::vdc1_to_amplitude(r.ticks[i].vdc1);
      if (std::abs(a - 2.7) < 0.27) return static_cast<int>(i);
    }
    return static_cast<int>(r.ticks.size());
  };
  EXPECT_LT(settle_ticks(105), settle_ticks(5));
}

TEST(System, NvmPresetSpeedsSettlingFurther) {
  OscillatorSystemConfig cfg = default_config();
  OscillatorSystem baseline(cfg);
  const SimulationResult rb = baseline.run(20e-3);
  const int settled_code = rb.final_code;

  OscillatorSystemConfig with_nvm = cfg;
  with_nvm.regulation.nvm_code = settled_code;
  OscillatorSystem nvm_sys(with_nvm);
  const SimulationResult rn = nvm_sys.run(20e-3);
  // With the NVM preset at the settled code, the code trajectory barely
  // moves after the preset.
  int moves = 0;
  for (std::size_t i = 1; i < rn.ticks.size(); ++i) {
    if (rn.ticks[i].code != rn.ticks[i - 1].code) ++moves;
  }
  EXPECT_LE(moves, 3);
}

TEST(System, MismatchedNonMonotonicDacStillRegulates) {
  // Section 4: "the converter can even be non-monotonic".
  const std::uint64_t seed = dac::find_seed_with_single_negative_step(96);
  OscillatorSystemConfig cfg = default_config();
  OscillatorSystem sys(cfg);
  sys.driver().use_mismatched_dac(std::make_shared<const dac::CurrentLimitationDac>(
      kDacUnitCurrent, dac::MismatchConfig{}, seed));
  const SimulationResult r = sys.run(25e-3);
  EXPECT_NEAR(r.settled_amplitude(), 2.7, 2.7 * 0.08);
  EXPECT_FALSE(r.final_faults.any());
}

TEST(System, SupplyCurrentScalesInverselyWithQuality) {
  // Section 9: 250 uA (good tank) .. 30 mA (poor tank).
  auto steady_current = [](double q) {
    OscillatorSystem sys(default_config(q));
    const SimulationResult r = sys.run(30e-3);
    return r.ticks.back().supply_current;
  };
  const double high_q = steady_current(150.0);
  const double low_q = steady_current(3.0);
  EXPECT_LT(high_q, 2e-3);
  EXPECT_GT(low_q, 5.0 * high_q);
}

TEST(System, EnvelopeIsRecordedEvenWithoutWaveforms) {
  OscillatorSystemConfig cfg = default_config();
  cfg.waveform_decimation = 0;
  OscillatorSystem sys(cfg);
  const SimulationResult r = sys.run(3e-3);
  EXPECT_TRUE(r.differential.empty());
  EXPECT_GT(r.envelope.size(), 1000u);
}

TEST(System, SlowDriverWastesCurrent) {
  // Section 5: the driver must be much faster than the oscillation; a
  // driver pole at f0 turns drive current reactive and costs extra code.
  auto settle = [](double bandwidth) {
    OscillatorSystemConfig cfg = default_config();
    cfg.driver_bandwidth = bandwidth;
    cfg.steps_per_period = 128;
    OscillatorSystem sys(cfg);
    return sys.run(25e-3);
  };
  const SimulationResult ideal = settle(0.0);
  const SimulationResult slow = settle(4.0e6);  // pole right at f0
  // Both regulate to target...
  EXPECT_NEAR(ideal.settled_amplitude(), 2.7, 2.7 * 0.08);
  EXPECT_NEAR(slow.settled_amplitude(), 2.7, 2.7 * 0.08);
  // ...but the slow driver needs substantially more current limit.
  EXPECT_GE(slow.final_code, ideal.final_code + 8);
  EXPECT_GT(slow.ticks.back().supply_current, 1.4 * ideal.ticks.back().supply_current);
}

// --- fault injection ---------------------------------------------------------

void expect_results_identical(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.ticks.size(), b.ticks.size());
  for (std::size_t i = 0; i < a.ticks.size(); ++i) {
    EXPECT_EQ(a.ticks[i].time, b.ticks[i].time) << "tick " << i;
    EXPECT_EQ(a.ticks[i].code, b.ticks[i].code) << "tick " << i;
    EXPECT_EQ(a.ticks[i].vdc1, b.ticks[i].vdc1) << "tick " << i;
    EXPECT_EQ(a.ticks[i].window, b.ticks[i].window) << "tick " << i;
    EXPECT_EQ(a.ticks[i].faults, b.ticks[i].faults) << "tick " << i;
    EXPECT_EQ(a.ticks[i].supply_current, b.ticks[i].supply_current) << "tick " << i;
  }
  ASSERT_EQ(a.envelope.size(), b.envelope.size());
  for (std::size_t i = 0; i < a.envelope.size(); ++i) {
    EXPECT_EQ(a.envelope.time(i), b.envelope.time(i)) << "envelope " << i;
    EXPECT_EQ(a.envelope.value(i), b.envelope.value(i)) << "envelope " << i;
  }
  EXPECT_EQ(a.final_faults, b.final_faults);
  EXPECT_EQ(a.final_code, b.final_code);
  EXPECT_EQ(a.final_mode, b.final_mode);
}

TEST(RunSession, FinishMatchesStraightRunExactly) {
  OscillatorSystem reference(default_config());
  const SimulationResult straight = reference.run(10e-3);

  OscillatorSystem base(default_config());
  RunSession session(base, 10e-3);
  session.advance_until(4e-3);
  EXPECT_GE(session.time(), 4e-3);
  expect_results_identical(straight, session.finish());
}

TEST(RunSession, CopyInjectMatchesScheduledFault) {
  // The batched internal-FMEA recipe: pause a healthy run at the
  // injection time, copy the session per fault, inject, finish.  The
  // result must be bit-identical to a fresh system with the fault
  // scheduled up front -- and one prefix must serve several variants.
  const double settle = 6e-3;
  const double duration = 10e-3;

  OscillatorSystem base(default_config());
  RunSession prefix(base, duration);
  prefix.advance_until(settle);

  for (const auto& fault :
       {faults::make_gm_collapse(),
        faults::make_fault(faults::InternalFaultKind::WindowStuckHigh)}) {
    OscillatorSystem reference(default_config());
    reference.schedule_internal_fault(fault, settle);
    const SimulationResult scheduled = reference.run(duration);

    RunSession variant(prefix);
    variant.inject_internal_fault(fault);
    expect_results_identical(scheduled, variant.finish());
  }
}

TEST(RunSession, InjectionRequiresNoPendingEvents) {
  // A session carrying scheduled events cannot also take a late
  // injection: the combined ordering would be ambiguous.
  OscillatorSystem sys(default_config());
  sys.schedule_internal_fault(faults::make_gm_collapse(), 8e-3);
  RunSession session(sys, 10e-3);
  EXPECT_THROW(session.inject_internal_fault(faults::make_gm_collapse()), ConfigError);
}

TEST(FaultInjection, OpenCoilTripsWatchdogAndSafeState) {
  OscillatorSystem sys(default_config());
  sys.schedule_fault(tank::TankFault::OpenCoil, 8e-3);
  const SimulationResult r = sys.run(16e-3);
  EXPECT_TRUE(r.final_faults.missing_oscillation);
  EXPECT_EQ(r.final_mode, regulation::RegulationMode::SafeState);
  // Safety reaction: maximum output current (Section 9).
  EXPECT_EQ(r.final_code, 127);
}

TEST(FaultInjection, ShortToGroundTripsWatchdog) {
  OscillatorSystem sys(default_config());
  sys.schedule_fault(tank::TankFault::CoilShortToGround, 8e-3);
  const SimulationResult r = sys.run(16e-3);
  EXPECT_TRUE(r.final_faults.missing_oscillation);
}

TEST(FaultInjection, IncreasedResistanceTripsLowAmplitude) {
  OscillatorSystem sys(default_config(20.0));
  tank::FaultSeverity sev;
  sev.resistance_factor = 30.0;  // drags the reachable amplitude way down
  sys.schedule_fault(tank::TankFault::IncreasedResistance, 8e-3, sev);
  const SimulationResult r = sys.run(20e-3);
  EXPECT_TRUE(r.final_faults.low_amplitude);
  EXPECT_EQ(r.final_mode, regulation::RegulationMode::SafeState);
}

TEST(FaultInjection, MissingCapacitorTripsAsymmetry) {
  OscillatorSystem sys(default_config());
  sys.schedule_fault(tank::TankFault::MissingCosc1, 8e-3);
  const SimulationResult r = sys.run(16e-3);
  EXPECT_TRUE(r.final_faults.asymmetry);
}

TEST(FaultInjection, HealthyRunStaysClean) {
  OscillatorSystem sys(default_config());
  const SimulationResult r = sys.run(16e-3);
  EXPECT_FALSE(r.final_faults.any());
  EXPECT_EQ(r.first_fault_tick(), -1);
}

// --- FMEA campaign ------------------------------------------------------------

TEST(Fmea, AllFaultClassesDetected) {
  FmeaCampaignConfig cfg;
  cfg.system = default_config();
  // Parametric faults must be severe enough that even maximum drive
  // current cannot reach the low-amplitude threshold -- otherwise the
  // regulation loop rightly compensates and nothing is flagged.
  cfg.severity.resistance_factor = 30.0;
  cfg.severity.shorted_turn_fraction = 0.9;
  const FmeaReport report = run_fmea_campaign(cfg);
  ASSERT_EQ(report.rows.size(), fmea_fault_list().size());
  for (const auto& row : report.rows) {
    EXPECT_TRUE(row.detected) << tank::to_string(row.fault);
    EXPECT_TRUE(row.safe_state_entered) << tank::to_string(row.fault);
  }
  EXPECT_TRUE(report.all_detected());
}

TEST(Fmea, ExpectedChannelsMostlyHit) {
  FmeaCampaignConfig cfg;
  cfg.system = default_config();
  cfg.severity.resistance_factor = 30.0;
  cfg.severity.shorted_turn_fraction = 0.9;
  const FmeaReport report = run_fmea_campaign(cfg);
  // Every fault must at least fire its designated channel.
  EXPECT_EQ(report.expected_channel_count(), report.rows.size());
}

TEST(Fmea, ControlCaseIsCleanAndLatencyRecorded) {
  FmeaCampaignConfig cfg;
  cfg.system = default_config();
  const FmeaRow control = run_fmea_case(cfg, tank::TankFault::None);
  EXPECT_FALSE(control.detected);
  EXPECT_TRUE(control.expected_channel_hit);

  const FmeaRow open = run_fmea_case(cfg, tank::TankFault::OpenCoil);
  ASSERT_TRUE(open.detection_latency.has_value());
  EXPECT_GT(*open.detection_latency, 0.0);
  EXPECT_LT(*open.detection_latency, 5e-3);
  EXPECT_EQ(open.status.outcome, CaseOutcome::Ok);
  EXPECT_EQ(open.status.retries, 0);
}

}  // namespace
}  // namespace lcosc::system
