// The PWL exponential transfer (Figs. 3-4) and the alternative control
// laws used by the ablation benches.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dac/dac_variants.h"
#include "dac/exponential_dac.h"

namespace lcosc::dac {
namespace {

TEST(PwlDac, Fig3Endpoints) {
  const PwlExponentialDac dac;
  EXPECT_EQ(dac.multiplication(0), 0);
  EXPECT_EQ(dac.multiplication(127), 1984);
  // Log-scale span of Fig. 3: from 1 (code 1) to 1984, over 3 decades.
  EXPECT_EQ(dac.multiplication(1), 1);
  EXPECT_GT(std::log10(1984.0), 3.0);
}

TEST(PwlDac, Fig3SegmentBoundaries) {
  const PwlExponentialDac dac;
  // First code of each segment (Fig. 3 x-axis grid lines).
  const int expected[] = {0, 16, 32, 64, 128, 256, 512, 1024};
  for (int seg = 0; seg < 8; ++seg) {
    EXPECT_EQ(dac.multiplication(seg * 16), expected[seg]) << "segment " << seg;
  }
}

TEST(PwlDac, Fig4RelativeStepBounds) {
  // "For codes above 16 the amplitude step varies between 3.23% and 6.25%."
  const PwlExponentialDac dac;
  for (int code = 16; code < 127; ++code) {
    const double step = dac.relative_step(code);
    EXPECT_GE(step, 0.0322) << "code " << code;
    EXPECT_LE(step, 0.0626) << "code " << code;
  }
  EXPECT_NEAR(dac.max_relative_step(16), 0.0625, 1e-9);
  EXPECT_NEAR(dac.min_relative_step(16), 2.0 / 62.0, 1e-9);  // 3.226%
}

TEST(PwlDac, Fig4WorstStepsAtSegmentStart) {
  const PwlExponentialDac dac;
  // 6.25% occurs right at the start of segments (e.g. 32 -> 34 over 32).
  EXPECT_NEAR(dac.relative_step(32), 0.0625, 1e-12);
  EXPECT_NEAR(dac.relative_step(64), 0.0625, 1e-12);
  // 3.23% at the carry into the next segment (62 -> 64 over 62).
  EXPECT_NEAR(dac.relative_step(47), 2.0 / 62.0, 1e-12);
}

TEST(PwlDac, LowCodesHaveLargeRelativeSteps) {
  // Below code 16 the relative step exceeds the regulation window -- this
  // is why the losses ensure operation stays above code 16 (Section 3).
  const PwlExponentialDac dac;
  EXPECT_DOUBLE_EQ(dac.relative_step(1), 1.0);     // 1 -> 2: 100%
  EXPECT_GT(dac.relative_step(8), 0.12);
}

TEST(PwlDac, CurrentScalesWithUnit) {
  const PwlExponentialDac dac(12.5e-6);
  EXPECT_NEAR(dac.current(127), 1984 * 12.5e-6, 1e-12);  // 24.8 mA full scale
  EXPECT_NEAR(dac.current(1), 12.5e-6, 1e-15);
  const PwlExponentialDac dac2(25e-6);
  EXPECT_NEAR(dac2.current(127) / dac.current(127), 2.0, 1e-12);
}

TEST(PwlDac, MonotonicIdealTransfer) {
  EXPECT_TRUE(PwlExponentialDac().is_monotonic());
}

TEST(PwlDac, TransferTableComplete) {
  const auto table = PwlExponentialDac().transfer_table();
  ASSERT_EQ(table.size(), 128u);
  EXPECT_EQ(table.front().code, 0);
  EXPECT_EQ(table.back().multiplication, 1984);
  // Relative step column is zero at the undefined endpoints.
  EXPECT_DOUBLE_EQ(table.front().relative_step, 0.0);
  EXPECT_DOUBLE_EQ(table.back().relative_step, 0.0);
}

TEST(PwlDac, ApproximatesExponentialWithin5Percent) {
  // The whole point of the PWL approximation (Eq. 6 / Fig. 3): M(n)
  // hugs an exponential above code 16.
  const PwlExponentialDac dac;
  const double delta = dac.fitted_growth_ratio();
  EXPECT_GT(delta, 0.035);
  EXPECT_LT(delta, 0.055);
  EXPECT_LT(dac.max_exponential_deviation(), 0.05);
}

TEST(PwlDac, EquivalentLinearResolution) {
  // 0..1984 needs an 11-bit linear DAC ("corresponding to a 11-bit
  // linear DAC").
  EXPECT_LE(kDacFullScaleUnits, (1 << kDacEquivalentLinearBits) - 1);
  EXPECT_GT(kDacFullScaleUnits, (1 << (kDacEquivalentLinearBits - 1)) - 1);
}

TEST(PwlDac, InvalidArguments) {
  const PwlExponentialDac dac;
  EXPECT_THROW(dac.relative_step(0), ConfigError);
  EXPECT_THROW(dac.relative_step(127), ConfigError);
  EXPECT_THROW(PwlExponentialDac(0.0), ConfigError);
}

// --- control law variants (ablation inputs) --------------------------------

TEST(LinearLaw, FullScaleMatchesPwl) {
  const LinearLaw lin;
  const PwlExponentialLaw pwl;
  EXPECT_NEAR(lin.current(127), pwl.current(127), 1e-12);
}

TEST(LinearLaw, RelativeStepExplodesAtLowCodes) {
  const LinearLaw lin;
  // Step from code 1 to 2 is 100%; from 16 to 17 is 6.25%; the law cannot
  // keep the step below the 6.25% bound over the full range.
  EXPECT_NEAR((lin.current(2) - lin.current(1)) / lin.current(1), 1.0, 1e-12);
  EXPECT_GT(lin.max_relative_step(1), 0.5);
}

TEST(LinearLaw, StepIsUniformAbsolute) {
  const LinearLaw lin;
  const double s1 = lin.current(10) - lin.current(9);
  const double s2 = lin.current(100) - lin.current(99);
  EXPECT_NEAR(s1, s2, 1e-15);
}

TEST(IdealExponentialLaw, MatchesPwlAnchors) {
  const IdealExponentialLaw exp_law;
  const PwlExponentialLaw pwl;
  EXPECT_NEAR(exp_law.current(16), pwl.current(16), 1e-12);
  EXPECT_NEAR(exp_law.current(127), pwl.current(127), pwl.current(127) * 1e-9);
  EXPECT_DOUBLE_EQ(exp_law.current(0), 0.0);
}

TEST(IdealExponentialLaw, ConstantRelativeStep) {
  const IdealExponentialLaw exp_law;
  const double r = exp_law.growth_ratio();
  for (int code = 20; code < 126; code += 13) {
    const double step = (exp_law.current(code + 1) - exp_law.current(code)) /
                        exp_law.current(code);
    EXPECT_NEAR(step, r - 1.0, 1e-12) << "code " << code;
  }
  // ~4.44% per code: between the PWL extremes of Fig. 4.
  EXPECT_GT(r - 1.0, kMinRelativeStepAbove16);
  EXPECT_LT(r - 1.0, kMaxRelativeStepAbove16);
}

TEST(ControlLawFactory, ProducesAllKinds) {
  EXPECT_EQ(make_control_law(ControlLawKind::PwlExponential)->name(), "pwl-exponential");
  EXPECT_EQ(make_control_law(ControlLawKind::Linear)->name(), "linear");
  EXPECT_EQ(make_control_law(ControlLawKind::IdealExponential)->name(), "ideal-exponential");
}

}  // namespace
}  // namespace lcosc::dac
