// The position-sensing application layer (Section 1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "common/random.h"
#include "system/position_sensor.h"

namespace lcosc::system {
namespace {

constexpr double kFreq = 4e6;
constexpr double kDt = 1.0 / (kFreq * 64.0);

void run_at_angle(PositionSensor& sensor, double theta, double duration,
                  double amplitude = 2.7, Rng* noise_rng = nullptr, double noise_rms = 0.0) {
  for (double t = 0.0; t < duration; t += kDt) {
    const double v = amplitude * std::sin(kTwoPi * kFreq * t);
    const double n1 = noise_rng ? noise_rng->normal(0.0, noise_rms) : 0.0;
    const double n2 = noise_rng ? noise_rng->normal(0.0, noise_rms) : 0.0;
    sensor.step(kDt, v, theta, n1, n2);
  }
}

double wrap_angle(double a) {
  while (a > kPi) a -= kTwoPi;
  while (a < -kPi) a += kTwoPi;
  return a;
}

TEST(PositionSensor, RecoversAngleFirstQuadrant) {
  PositionSensor sensor;
  run_at_angle(sensor, 0.7, 1e-3);
  EXPECT_NEAR(sensor.estimated_angle(), 0.7, 0.02);
}

class PositionQuadrants : public ::testing::TestWithParam<double> {};

TEST_P(PositionQuadrants, FullCircleRecovery) {
  PositionSensor sensor;
  const double theta = GetParam();
  run_at_angle(sensor, theta, 1e-3);
  EXPECT_NEAR(wrap_angle(sensor.estimated_angle() - theta), 0.0, 0.03)
      << "theta = " << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, PositionQuadrants,
                         ::testing::Values(-3.0, -2.2, -1.2, -0.4, 0.0, 0.4, 1.2, 2.2, 3.0));

TEST(PositionSensor, AmplitudeIndependent) {
  // The angle is a ratio of the two channels: the regulated excitation
  // amplitude cancels out.
  PositionSensor s1;
  PositionSensor s2;
  run_at_angle(s1, 1.0, 1e-3, 2.7);
  run_at_angle(s2, 1.0, 1e-3, 1.0);
  EXPECT_NEAR(s1.estimated_angle(), s2.estimated_angle(), 0.02);
}

TEST(PositionSensor, NoiseDegradesGracefully) {
  Rng rng(7);
  PositionSensor sensor({.coupling_gain = 0.3, .filter_tau = 100e-6, .noise_rms = 0.0});
  run_at_angle(sensor, 0.9, 2e-3, 2.7, &rng, 0.05);
  EXPECT_NEAR(sensor.estimated_angle(), 0.9, 0.1);
}

TEST(PositionSensor, ChannelsCarryCouplingGain) {
  PositionSensor sensor({.coupling_gain = 0.5, .filter_tau = 100e-6});
  run_at_angle(sensor, 0.0, 1e-3);  // cos channel only
  // Demodulated value ~ gain * amplitude * mean(|sin|) = 0.5*2.7*2/pi.
  EXPECT_NEAR(sensor.cos_channel(), 0.5 * 2.7 * 2.0 / kPi, 0.1);
  EXPECT_NEAR(sensor.sin_channel(), 0.0, 0.02);
}

TEST(PositionSensor, ResetClearsChannels) {
  PositionSensor sensor;
  run_at_angle(sensor, 1.0, 0.5e-3);
  sensor.reset();
  EXPECT_DOUBLE_EQ(sensor.sin_channel(), 0.0);
  EXPECT_DOUBLE_EQ(sensor.cos_channel(), 0.0);
}

}  // namespace
}  // namespace lcosc::system
