// The public facade: LcOscillatorDriver.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "core/lc_oscillator.h"

namespace lcosc {
namespace {

using namespace lcosc::literals;

LcOscillatorConfig quick_config() {
  LcOscillatorConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  cfg.waveform_decimation = 0;
  return cfg;
}

TEST(Facade, DefaultConfigConstructs) {
  LcOscillatorDriver osc;
  EXPECT_GT(osc.tank_model().quality_factor(), 1.0);
}

TEST(Facade, StartupRunSettles) {
  LcOscillatorDriver osc(quick_config());
  const auto r = osc.run_startup(25e-3);
  EXPECT_NEAR(r.settled_amplitude(), 2.7, 2.7 * 0.08);
  EXPECT_FALSE(r.final_faults.any());
}

TEST(Facade, PredictedAmplitudeGrowsWithCode) {
  LcOscillatorDriver osc(quick_config());
  const auto a_small = osc.predicted_amplitude(32);
  const auto a_large = osc.predicted_amplitude(64);
  ASSERT_TRUE(a_small && a_large);
  EXPECT_GT(*a_large, *a_small);
}

TEST(Facade, ExpectedSettlingCodeNearSimulation) {
  LcOscillatorDriver osc(quick_config());
  const auto expected = osc.expected_settling_code();
  ASSERT_TRUE(expected.has_value());
  const auto r = osc.run_startup(30e-3);
  EXPECT_NEAR(r.final_code, *expected, 2.0);
}

TEST(Facade, ExpectedSupplyCurrentInPaperRange) {
  // Across tank qualities the estimate spans the Section 9 envelope.
  LcOscillatorConfig good = quick_config();
  good.tank = tank::design_tank(4.0_MHz, 150.0, 3.3_uH);
  LcOscillatorConfig poor = quick_config();
  // Q below ~5 at this coil exceeds the 10 mS gm envelope; Q=5 is the
  // paper's "poor resonator" corner for this inductance.
  poor.tank = tank::design_tank(4.0_MHz, 5.0, 3.3_uH);
  const double i_good = LcOscillatorDriver(good).expected_supply_current();
  const double i_poor = LcOscillatorDriver(poor).expected_supply_current();
  EXPECT_LT(i_good, 1e-3);
  EXPECT_GT(i_poor, 2e-3);
  EXPECT_LT(i_poor, 35e-3);
}

TEST(Facade, FaultRunEntersSafeState) {
  LcOscillatorDriver osc(quick_config());
  const auto r = osc.run_with_fault(16e-3, tank::TankFault::OpenCoil, 8e-3);
  EXPECT_TRUE(r.final_faults.missing_oscillation);
  EXPECT_EQ(r.final_code, 127);
}

TEST(Facade, EnvelopeRunMatchesStartup) {
  LcOscillatorDriver osc(quick_config());
  const auto fast = osc.run_envelope(25e-3);
  const auto slow = osc.run_startup(25e-3);
  EXPECT_NEAR(fast.settled_amplitude(), slow.settled_amplitude(),
              slow.settled_amplitude() * 0.06);
}

TEST(Facade, MismatchSeedIsApplied) {
  LcOscillatorConfig cfg = quick_config();
  cfg.mismatch_seed = 424242;
  LcOscillatorDriver osc(cfg);
  LcOscillatorDriver ideal(quick_config());
  const auto a_mismatched = osc.predicted_amplitude(96);
  const auto a_ideal = ideal.predicted_amplitude(96);
  ASSERT_TRUE(a_mismatched && a_ideal);
  EXPECT_NE(*a_mismatched, *a_ideal);
  EXPECT_NEAR(*a_mismatched, *a_ideal, *a_ideal * 0.15);
}

TEST(Facade, ScenarioApiRunsEvents) {
  LcOscillatorDriver osc(quick_config());
  // The safe state parks the code at 127; after recovery the loop walks
  // back down one code per tick, so give it time to re-settle.
  const auto r = osc.run_scenario(
      45e-3, {{8e-3, system::FaultEvent{tank::TankFault::OpenCoil, {}}},
              {14e-3, system::RecoveryEvent{}}});
  EXPECT_FALSE(r.final_faults.any());
  EXPECT_NEAR(r.settled_amplitude(0.1), 2.7, 2.7 * 0.10);
}

TEST(Facade, ToleranceApiReportsYield) {
  LcOscillatorConfig cfg = quick_config();
  LcOscillatorDriver osc(cfg);
  const auto report = osc.run_tolerance(15);
  EXPECT_EQ(report.samples.size(), 15u);
  EXPECT_DOUBLE_EQ(report.yield(), 1.0);
  const auto stats = report.amplitude_statistics();
  EXPECT_NEAR(stats.median, 2.7, 0.2);
}

TEST(Facade, InvalidTankRejectedEarly) {
  LcOscillatorConfig cfg;
  cfg.tank.inductance = -1.0;
  EXPECT_THROW(LcOscillatorDriver{cfg}, ConfigError);
}

}  // namespace
}  // namespace lcosc
