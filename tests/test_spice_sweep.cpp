// DC sweeps with continuation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/sweep.h"

namespace lcosc::spice {
namespace {

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(-1.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), -1.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
}

TEST(Logspace, EndpointsAndRatio) {
  const auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_THROW(logspace(0.0, 1.0, 3), ConfigError);
}

TEST(DcSweep, LinearResistorIsOhmic) {
  Circuit c;
  auto& v1 = c.voltage_source("V1", "in", "0", 0.0);
  c.resistor("R1", "in", "0", 2e3);
  const SweepResult r = dc_sweep(c, v1, linspace(-1.0, 1.0, 11));
  EXPECT_EQ(r.converged_count(), 11u);
  StampContext ctx;
  for (const auto& p : r.points) {
    ASSERT_TRUE(p.converged);
    EXPECT_NEAR(v1.branch_current(p.solution.x, ctx), -p.value / 2e3, 1e-9);
  }
}

TEST(DcSweep, DiodeIvIsExponential) {
  Circuit c;
  auto& v1 = c.voltage_source("V1", "a", "0", 0.0);
  c.diode("D1", "a", "0");
  const SweepResult r = dc_sweep(c, v1, linspace(0.40, 0.62, 23));
  EXPECT_EQ(r.converged_count(), 23u);
  // log(I) vs V is a straight line with slope 1/nVt in the exponential
  // region; check two well-separated points.
  StampContext ctx;
  const double i_low = -v1.branch_current(r.points.front().solution.x, ctx);
  const double i_high = -v1.branch_current(r.points.back().solution.x, ctx);
  const double slope = std::log(i_high / i_low) / (0.62 - 0.40);
  EXPECT_NEAR(slope, 1.0 / 0.02585, 1.0 / 0.02585 * 0.02);
}

TEST(DcSweep, RestoresOriginalSourceValue) {
  Circuit c;
  auto& v1 = c.voltage_source("V1", "a", "0", 1.25);
  c.resistor("R1", "a", "0", 1e3);
  (void)dc_sweep(c, v1, linspace(0.0, 1.0, 5));
  EXPECT_DOUBLE_EQ(v1.value(), 1.25);
}

TEST(DcSweep, CurrentSourceSweep) {
  Circuit c;
  auto& i1 = c.current_source("I1", "0", "a", 0.0);
  c.resistor("R1", "a", "0", 1e3);
  const SweepResult r = dc_sweep(c, i1, linspace(0.0, 1e-3, 5));
  EXPECT_EQ(r.converged_count(), 5u);
  EXPECT_NEAR(r.points.back().solution.voltage(c, "a"), 1.0, 1e-6);
}

TEST(DcSweep, ContinuationHelpsStiffCircuit) {
  // Diode stack with a tiny series resistor: each point uses the previous
  // solution; all must converge.
  Circuit c;
  auto& v1 = c.voltage_source("V1", "in", "0", 0.0);
  c.resistor("Rs", "in", "d1", 10.0);
  c.diode("D1", "d1", "d2");
  c.diode("D2", "d2", "d3");
  c.diode("D3", "d3", "0");
  const SweepResult r = dc_sweep(c, v1, linspace(0.0, 3.0, 61));
  EXPECT_EQ(r.converged_count(), 61u);
}

}  // namespace
}  // namespace lcosc::spice
