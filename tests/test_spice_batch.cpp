// Batched lockstep transient: run_transient_batch must produce results
// bit-identical to N independent run_transient calls, while sharing LU
// factors across variants whose linear base system matches byte for byte.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/transient_solver.h"

namespace lcosc::spice {
namespace {

constexpr double kDt = 1.0 / (4e6 * 64.0);

// RLC divider variant: `scale` perturbs the series loss the way a
// Monte-Carlo draw would, changing the linear base matrix.
void build_rlc(Circuit& c, double scale) {
  VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
  vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4e6, .phase_deg = 0.0});
  c.resistor("Rs", "in", "a", 5.0 * scale);
  c.inductor("L", "a", "b", 3.3e-6);
  c.resistor("Rl", "b", "0", 2.0);
  c.capacitor("C1", "a", "0", 1e-9);
}

void build_nonlinear(Circuit& c, double scale) {
  build_rlc(c, scale);
  c.diode("Dclamp", "a", "0");
}

TransientOptions base_options() {
  TransientOptions options;
  options.dt = kDt;
  options.t_stop = 200.0 * kDt;
  options.start_from_dc = false;
  return options;
}

void expect_identical(const TransientResult& a, const TransientResult& b) {
  ASSERT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t p = 0; p < a.traces.size(); ++p) {
    ASSERT_EQ(a.traces[p].size(), b.traces[p].size());
    for (std::size_t i = 0; i < a.traces[p].size(); ++i) {
      // Bit-identity, not tolerance: shared factors must not change a
      // single operation.
      ASSERT_EQ(a.traces[p].time(i), b.traces[p].time(i)) << "sample " << i;
      ASSERT_EQ(a.traces[p].value(i), b.traces[p].value(i)) << "sample " << i;
    }
  }
}

TEST(TransientBatch, MatchesIndependentRunsBitForBit) {
  // Mixed batch: three identical variants and two perturbed ones.
  const std::vector<double> scales = {1.0, 1.0, 1.07, 1.0, 0.93};
  const TransientOptions options = base_options();

  std::vector<Circuit> circuits(scales.size());
  std::vector<Circuit*> pointers;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    build_rlc(circuits[i], scales[i]);
    pointers.push_back(&circuits[i]);
  }
  const auto batched = run_transient_batch(pointers, options, {"a"});
  ASSERT_EQ(batched.size(), scales.size());

  for (std::size_t i = 0; i < scales.size(); ++i) {
    Circuit reference;
    build_rlc(reference, scales[i]);
    const TransientResult serial = run_transient(reference, options, {"a"});
    expect_identical(batched[i], serial);
  }
}

TEST(TransientBatch, SharesFactorsAcrossIdenticalVariants) {
  // 3 variants share a base with variant 0; 2 have distinct bases.
  const std::vector<double> scales = {1.0, 1.0, 1.07, 1.0, 0.93};
  const TransientOptions options = base_options();

  std::vector<Circuit> circuits(scales.size());
  std::vector<Circuit*> pointers;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    build_rlc(circuits[i], scales[i]);
    pointers.push_back(&circuits[i]);
  }
  const auto results = run_transient_batch(pointers, options, {"a"});

  std::size_t factorizations = 0;
  std::size_t shared_hits = 0;
  for (const auto& r : results) {
    factorizations += r.stats.factorizations;
    shared_hits += r.stats.shared_factor_hits;
  }

  // A standalone run tells us how many (dt, base) factorizations one
  // variant needs (the final partial step adds a second dt key).
  Circuit reference;
  build_rlc(reference, 1.0);
  const std::size_t per_variant =
      run_transient(reference, options, {"a"}).stats.factorizations;
  ASSERT_GT(per_variant, 0u);

  // The batch factors each system once per DISTINCT base (3: nominal,
  // 1.07, 0.93); the two duplicate-nominal variants hit the pool instead.
  EXPECT_EQ(factorizations, 3u * per_variant);
  EXPECT_EQ(shared_hits, 2u * per_variant);
}

TEST(TransientBatch, ReferencePathNeverShares) {
  const std::vector<double> scales = {1.0, 1.0, 1.0};
  TransientOptions options = base_options();
  options.reuse_lu = false;

  std::vector<Circuit> circuits(scales.size());
  std::vector<Circuit*> pointers;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    build_rlc(circuits[i], scales[i]);
    pointers.push_back(&circuits[i]);
  }
  const auto results = run_transient_batch(pointers, options, {"a"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stats.shared_factor_hits, 0u) << "variant " << i;

    Circuit reference;
    build_rlc(reference, scales[i]);
    const TransientResult serial = run_transient(reference, options, {"a"});
    expect_identical(results[i], serial);
  }
}

TEST(TransientBatch, NonlinearVariantsMatchSerial) {
  // Nonlinear circuits never take the shared-factor path (their system
  // changes every Newton iteration) but must still batch correctly.
  const std::vector<double> scales = {1.0, 1.1};
  const TransientOptions options = base_options();

  std::vector<Circuit> circuits(scales.size());
  std::vector<Circuit*> pointers;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    build_nonlinear(circuits[i], scales[i]);
    pointers.push_back(&circuits[i]);
  }
  const auto batched = run_transient_batch(pointers, options, {"a"});

  for (std::size_t i = 0; i < scales.size(); ++i) {
    EXPECT_EQ(batched[i].stats.shared_factor_hits, 0u);
    Circuit reference;
    build_nonlinear(reference, scales[i]);
    const TransientResult serial = run_transient(reference, options, {"a"});
    expect_identical(batched[i], serial);
  }
}

TEST(TransientBatch, SingleVariantMatchesRunTransient) {
  const TransientOptions options = base_options();
  Circuit batched_circuit;
  build_rlc(batched_circuit, 1.0);
  const auto batched =
      run_transient_batch({&batched_circuit}, options, {"a"});
  ASSERT_EQ(batched.size(), 1u);

  Circuit serial_circuit;
  build_rlc(serial_circuit, 1.0);
  const TransientResult serial = run_transient(serial_circuit, options, {"a"});
  expect_identical(batched[0], serial);
  // A one-variant batch has nobody to share with.
  EXPECT_EQ(batched[0].stats.shared_factor_hits, 0u);
}

TEST(TransientBatch, InvalidBatchesRejected) {
  TransientOptions options = base_options();
  Circuit c;
  build_rlc(c, 1.0);

  options.adaptive = true;
  EXPECT_THROW((void)run_transient_batch({&c}, options, {"a"}), Error);

  options = base_options();
  EXPECT_THROW((void)run_transient_batch({nullptr}, options, {"a"}), Error);

  EXPECT_TRUE(run_transient_batch({}, options, {"a"}).empty());
}

}  // namespace
}  // namespace lcosc::spice
