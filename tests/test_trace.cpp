// Tests for the Trace container and CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "waveform/csv_io.h"
#include "waveform/trace.h"

namespace lcosc {
namespace {

Trace ramp(std::size_t n) {
  Trace t("ramp");
  for (std::size_t i = 0; i < n; ++i) t.append(static_cast<double>(i), 2.0 * i);
  return t;
}

TEST(Trace, AppendAndAccess) {
  Trace t("x");
  t.append(0.0, 1.0);
  t.append(1.0, 3.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.time(1), 1.0);
  EXPECT_DOUBLE_EQ(t.value(1), 3.0);
  EXPECT_DOUBLE_EQ(t.duration(), 1.0);
}

TEST(Trace, MonotonicTimeEnforced) {
  Trace t;
  t.append(0.0, 1.0);
  EXPECT_THROW(t.append(0.0, 2.0), ConfigError);
  EXPECT_THROW(t.append(-1.0, 2.0), ConfigError);
}

TEST(Trace, SampleAtInterpolates) {
  Trace t;
  t.append(0.0, 0.0);
  t.append(2.0, 4.0);
  EXPECT_DOUBLE_EQ(t.sample_at(1.0), 2.0);
  // Clamped outside.
  EXPECT_DOUBLE_EQ(t.sample_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.sample_at(5.0), 4.0);
}

TEST(Trace, Window) {
  const Trace t = ramp(10);
  const Trace w = t.window(2.0, 5.0);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.start_time(), 2.0);
  EXPECT_DOUBLE_EQ(w.end_time(), 5.0);
}

TEST(Trace, DecimatedKeepsLastSample) {
  const Trace t = ramp(10);  // times 0..9
  const Trace d = t.decimated(4);
  // Keeps 0, 4, 8 and the final sample 9.
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.time(3), 9.0);
}

TEST(Trace, DecimationByOneIsIdentity) {
  const Trace t = ramp(5);
  const Trace d = t.decimated(1);
  EXPECT_EQ(d.size(), t.size());
}

TEST(Trace, EmptyAccessorsThrow) {
  const Trace t;
  EXPECT_THROW(t.start_time(), ConfigError);
  EXPECT_THROW(t.sample_at(0.0), ConfigError);
}

TEST(Trace, ClearAndReserve) {
  Trace t = ramp(5);
  t.clear();
  EXPECT_TRUE(t.empty());
  t.reserve(100);
  t.append(0.0, 1.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CsvIo, SingleTrace) {
  Trace t("sig");
  t.append(0.0, 1.5);
  t.append(1.0, -2.5);
  std::ostringstream os;
  write_trace_csv(os, t);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time,sig"), std::string::npos);
  EXPECT_NE(csv.find("-2.5"), std::string::npos);
}

TEST(CsvIo, MultiTraceUnionGrid) {
  Trace a("a");
  a.append(0.0, 0.0);
  a.append(2.0, 2.0);
  Trace b("b");
  b.append(1.0, 10.0);
  std::ostringstream os;
  write_traces_csv(os, {a, b});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time,a,b"), std::string::npos);
  // The union grid has 3 rows: t=0, 1, 2 (plus header).
  int lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(CsvIo, EmptyListThrows) {
  std::ostringstream os;
  EXPECT_THROW(write_traces_csv(os, {}), ConfigError);
}

}  // namespace
}  // namespace lcosc
