// Graceful-degradation contract of the shared campaign runner
// (common/campaign.h): exceptions become recorded outcomes, bounded
// retry applies only to convergence failures, budgets never retry.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/campaign.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace lcosc {
namespace {

TEST(Campaign, SuccessFirstAttemptIsOkWithZeroRetries) {
  int calls = 0;
  const CampaignCase status = run_guarded_case([&](int attempt) {
    ++calls;
    EXPECT_EQ(attempt, 0);
  });
  EXPECT_EQ(status.outcome, CaseOutcome::Ok);
  EXPECT_EQ(status.retries, 0);
  EXPECT_TRUE(status.error.empty());
  EXPECT_TRUE(status.completed());
  EXPECT_EQ(calls, 1);
}

TEST(Campaign, ConvergenceErrorRetriesWithIncrementedAttempt) {
  int calls = 0;
  const CampaignCase status = run_guarded_case([&](int attempt) {
    ++calls;
    if (attempt == 0) throw ConvergenceError("first attempt diverged");
  });
  EXPECT_EQ(status.outcome, CaseOutcome::Ok);
  EXPECT_EQ(status.retries, 1);
  EXPECT_EQ(calls, 2);
}

TEST(Campaign, PersistentConvergenceErrorBecomesSimulationError) {
  int calls = 0;
  const CampaignCase status = run_guarded_case(
      [&](int) {
        ++calls;
        throw ConvergenceError("always diverges");
      },
      2);
  EXPECT_EQ(status.outcome, CaseOutcome::SimulationError);
  EXPECT_EQ(status.retries, 2);
  EXPECT_EQ(status.error, "always diverges");
  EXPECT_FALSE(status.completed());
  EXPECT_EQ(calls, 3);  // nominal + 2 retries
}

TEST(Campaign, BudgetExceededBecomesTimeoutWithoutRetry) {
  int calls = 0;
  const CampaignCase status = run_guarded_case(
      [&](int) {
        ++calls;
        throw BudgetExceededError("step budget exceeded");
      },
      3);
  EXPECT_EQ(status.outcome, CaseOutcome::Timeout);
  EXPECT_EQ(status.retries, 0);
  EXPECT_EQ(status.error, "step budget exceeded");
  EXPECT_FALSE(status.completed());
  EXPECT_EQ(calls, 1);  // budgets are deterministic: retry is pointless
}

TEST(Campaign, OtherExceptionsFailImmediately) {
  int calls = 0;
  const CampaignCase status = run_guarded_case(
      [&](int) {
        ++calls;
        throw std::runtime_error("unexpected");
      },
      3);
  EXPECT_EQ(status.outcome, CaseOutcome::SimulationError);
  EXPECT_EQ(status.retries, 0);
  EXPECT_EQ(status.error, "unexpected");
  EXPECT_EQ(calls, 1);
}

TEST(Campaign, OutcomeLabels) {
  EXPECT_EQ(to_string(CaseOutcome::Ok), "ok");
  EXPECT_EQ(to_string(CaseOutcome::Undetected), "undetected");
  EXPECT_EQ(to_string(CaseOutcome::SimulationError), "simulation-error");
  EXPECT_EQ(to_string(CaseOutcome::Timeout), "timeout");
}

TEST(Campaign, BackoffDelaySequenceIsExponentialAndCapped) {
  const RetryBackoff backoff{.initial_ms = 100, .multiplier = 2.0, .max_ms = 2000};
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 0), 0);  // no delay before attempt 1
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 1), 100);
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 2), 200);
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 3), 400);
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 5), 1600);
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 6), 2000);   // cap reached
  EXPECT_EQ(retry_backoff_delay_ms(backoff, 50), 2000);  // no overflow past the cap
}

TEST(Campaign, DisabledBackoffAlwaysYieldsZeroDelay) {
  const RetryBackoff disabled{};
  EXPECT_FALSE(disabled.enabled());
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(retry_backoff_delay_ms(disabled, attempt), 0);
  }
}

// The policy contract of the satellite: backoff only changes when a
// retry runs, never whether it runs -- the recorded status (the thing
// that ends up in a report) must match the no-backoff run exactly.
TEST(Campaign, BackoffDoesNotChangeRecordedStatus) {
  auto run = [](const RetryBackoff& backoff) {
    return run_guarded_case(
        [&](int attempt) {
          if (attempt < 2) throw ConvergenceError("diverged");
        },
        3, backoff);
  };
  const CampaignCase plain = run(RetryBackoff{});
  const CampaignCase delayed = run(RetryBackoff{.initial_ms = 1, .multiplier = 2.0,
                                                .max_ms = 4});
  EXPECT_EQ(plain.outcome, delayed.outcome);
  EXPECT_EQ(plain.retries, delayed.retries);
  EXPECT_EQ(plain.error, delayed.error);
}

TEST(Campaign, RetryAndTimeoutCountersTrackGuardedCases) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& registry = obs::MetricsRegistry::instance();
  const std::uint64_t retries_before = registry.counter("campaign.case.retries").total();
  const std::uint64_t timeouts_before = registry.counter("campaign.case.timeouts").total();

  (void)run_guarded_case(
      [&](int attempt) {
        if (attempt < 2) throw ConvergenceError("diverged");
      },
      3);
  (void)run_guarded_case([&](int) { throw BudgetExceededError("over budget"); }, 3);

  EXPECT_EQ(registry.counter("campaign.case.retries").total(), retries_before + 2);
  EXPECT_EQ(registry.counter("campaign.case.timeouts").total(), timeouts_before + 1);
  obs::set_metrics_enabled(was_enabled);
}

}  // namespace
}  // namespace lcosc
