// Graceful-degradation contract of the shared campaign runner
// (common/campaign.h): exceptions become recorded outcomes, bounded
// retry applies only to convergence failures, budgets never retry.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/campaign.h"
#include "common/error.h"

namespace lcosc {
namespace {

TEST(Campaign, SuccessFirstAttemptIsOkWithZeroRetries) {
  int calls = 0;
  const CampaignCase status = run_guarded_case([&](int attempt) {
    ++calls;
    EXPECT_EQ(attempt, 0);
  });
  EXPECT_EQ(status.outcome, CaseOutcome::Ok);
  EXPECT_EQ(status.retries, 0);
  EXPECT_TRUE(status.error.empty());
  EXPECT_TRUE(status.completed());
  EXPECT_EQ(calls, 1);
}

TEST(Campaign, ConvergenceErrorRetriesWithIncrementedAttempt) {
  int calls = 0;
  const CampaignCase status = run_guarded_case([&](int attempt) {
    ++calls;
    if (attempt == 0) throw ConvergenceError("first attempt diverged");
  });
  EXPECT_EQ(status.outcome, CaseOutcome::Ok);
  EXPECT_EQ(status.retries, 1);
  EXPECT_EQ(calls, 2);
}

TEST(Campaign, PersistentConvergenceErrorBecomesSimulationError) {
  int calls = 0;
  const CampaignCase status = run_guarded_case(
      [&](int) {
        ++calls;
        throw ConvergenceError("always diverges");
      },
      2);
  EXPECT_EQ(status.outcome, CaseOutcome::SimulationError);
  EXPECT_EQ(status.retries, 2);
  EXPECT_EQ(status.error, "always diverges");
  EXPECT_FALSE(status.completed());
  EXPECT_EQ(calls, 3);  // nominal + 2 retries
}

TEST(Campaign, BudgetExceededBecomesTimeoutWithoutRetry) {
  int calls = 0;
  const CampaignCase status = run_guarded_case(
      [&](int) {
        ++calls;
        throw BudgetExceededError("step budget exceeded");
      },
      3);
  EXPECT_EQ(status.outcome, CaseOutcome::Timeout);
  EXPECT_EQ(status.retries, 0);
  EXPECT_EQ(status.error, "step budget exceeded");
  EXPECT_FALSE(status.completed());
  EXPECT_EQ(calls, 1);  // budgets are deterministic: retry is pointless
}

TEST(Campaign, OtherExceptionsFailImmediately) {
  int calls = 0;
  const CampaignCase status = run_guarded_case(
      [&](int) {
        ++calls;
        throw std::runtime_error("unexpected");
      },
      3);
  EXPECT_EQ(status.outcome, CaseOutcome::SimulationError);
  EXPECT_EQ(status.retries, 0);
  EXPECT_EQ(status.error, "unexpected");
  EXPECT_EQ(calls, 1);
}

TEST(Campaign, OutcomeLabels) {
  EXPECT_EQ(to_string(CaseOutcome::Ok), "ok");
  EXPECT_EQ(to_string(CaseOutcome::Undetected), "undetected");
  EXPECT_EQ(to_string(CaseOutcome::SimulationError), "simulation-error");
  EXPECT_EQ(to_string(CaseOutcome::Timeout), "timeout");
}

}  // namespace
}  // namespace lcosc
