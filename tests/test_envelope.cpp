// The envelope-domain fast engine, pinned against the cycle-accurate one.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/units.h"
#include "dac/dac_variants.h"
#include "system/envelope_simulator.h"
#include "system/oscillator_system.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

EnvelopeSimConfig envelope_config(double quality = 40.0) {
  EnvelopeSimConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, quality, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  return cfg;
}

TEST(Envelope, SettlesToRegulationTarget) {
  EnvelopeSimulator sim(envelope_config());
  const EnvelopeRunResult r = sim.run(30e-3);
  EXPECT_NEAR(r.settled_amplitude(), 2.7, 2.7 * 0.08);
}

TEST(Envelope, AgreesWithCycleAccurateEngine) {
  // The two engines must settle to the same amplitude and nearby codes.
  const double q = 40.0;
  EnvelopeSimulator fast(envelope_config(q));
  const EnvelopeRunResult fr = fast.run(25e-3);

  OscillatorSystemConfig slow_cfg;
  slow_cfg.tank = tank::design_tank(4.0_MHz, q, 3.3_uH);
  slow_cfg.regulation.tick_period = 0.25e-3;
  slow_cfg.waveform_decimation = 0;
  OscillatorSystem slow(slow_cfg);
  const SimulationResult sr = slow.run(25e-3);

  EXPECT_NEAR(fr.settled_amplitude(), sr.settled_amplitude(),
              sr.settled_amplitude() * 0.06);
  EXPECT_NEAR(fr.final_code, sr.final_code, 2.0);
}

TEST(Envelope, AgreementAcrossTwoDecadesOfQ) {
  // The paper's operating claim across tank quality.  Q below ~5 at this
  // coil is outside the driver's gm envelope (Gm0 > 10 mS), matching the
  // paper's statement that ~10 mS serves the poorest resonators.
  for (const double q : {5.0, 30.0, 150.0}) {
    EnvelopeSimulator fast(envelope_config(q));
    const EnvelopeRunResult fr = fast.run(40e-3);
    OscillatorSystemConfig slow_cfg;
    slow_cfg.tank = tank::design_tank(4.0_MHz, q, 3.3_uH);
    slow_cfg.regulation.tick_period = 0.25e-3;
    slow_cfg.waveform_decimation = 0;
    OscillatorSystem slow(slow_cfg);
    const SimulationResult sr = slow.run(40e-3);
    EXPECT_NEAR(fr.settled_amplitude(), sr.settled_amplitude(),
                std::max(sr.settled_amplitude() * 0.08, 0.05))
        << "Q = " << q;
  }
}

TEST(Envelope, SteadyRippleBoundedByWindow) {
  EnvelopeSimulator sim(envelope_config());
  const EnvelopeRunResult r = sim.run(40e-3);
  // Ripple stays below the regulation window width plus one step.
  EXPECT_LT(r.steady_ripple(), 2.7 * (0.10 + 0.0625));
}

TEST(Envelope, SettlingTickDetector) {
  EnvelopeSimulator sim(envelope_config());
  const EnvelopeRunResult r = sim.run(30e-3);
  const int tick = r.settling_tick(2.7 * 0.9, 2.7 * 1.1);
  ASSERT_GE(tick, 0);
  EXPECT_LT(tick, static_cast<int>(r.ticks.size()));
}

TEST(Envelope, LinearLawSettlesSlowerFromPreset) {
  // Ablation mechanics: with a linear DAC the preset code 105 maps to a
  // very different current, so settling takes more ticks for high-Q tanks.
  EnvelopeSimConfig cfg = envelope_config(150.0);

  EnvelopeSimulator pwl(cfg);
  const EnvelopeRunResult rp = pwl.run(60e-3);

  EnvelopeSimulator lin(cfg);
  lin.driver().use_control_law(std::make_shared<const dac::LinearLaw>());
  const EnvelopeRunResult rl = lin.run(60e-3);

  const int tp = rp.settling_tick(2.7 * 0.9, 2.7 * 1.1);
  const int tl = rl.settling_tick(2.7 * 0.9, 2.7 * 1.1);
  ASSERT_GE(tp, 0);
  // Linear law either settles later or not at all within the run.
  EXPECT_TRUE(tl < 0 || tl >= tp) << "pwl " << tp << " lin " << tl;
}

TEST(Envelope, GrowthFromSmallKick) {
  // Startup is fast: from the 50 mV kick the envelope exceeds 10x the kick
  // within the first regulation tick (the paper's Fig. 16 startup is on
  // the microsecond scale).
  EnvelopeSimulator sim(envelope_config());
  const EnvelopeRunResult r = sim.run(2e-3);
  ASSERT_GT(r.amplitude.size(), 100u);
  EXPECT_GT(r.amplitude.value(50), 10.0 * sim.config().initial_amplitude);
  EXPECT_GT(r.settled_amplitude(), 1.0);
}

TEST(Envelope, FinalTickAtDurationBoundaryNotSkipped) {
  // Regression: the run loop used to accumulate t += dt in floating
  // point, so the drift over thousands of steps could skip the final
  // regulation tick when `duration` is an exact multiple of the tick
  // period.  20 ms / 0.25 ms = 80 ticks, the last one exactly at 20 ms.
  EnvelopeSimConfig cfg = envelope_config();
  EnvelopeSimulator sim(cfg);
  const double duration = 20e-3;
  const EnvelopeRunResult r = sim.run(duration);
  ASSERT_FALSE(r.ticks.empty());
  EXPECT_EQ(r.ticks.size(), 80u);
  EXPECT_NEAR(r.ticks.back().time, duration, cfg.dt * 0.5);
  // The amplitude trace also ends on the duration boundary.
  EXPECT_NEAR(r.amplitude.end_time(), duration, cfg.dt * 0.5);
}

TEST(Envelope, StepCountExactForMultipleDurations) {
  // t = i * dt indexing: no duplicated or dropped steps across run lengths.
  EnvelopeSimConfig cfg = envelope_config();
  for (const double duration : {1e-3, 7.5e-3, 40e-3}) {
    EnvelopeSimulator sim(cfg);
    const EnvelopeRunResult r = sim.run(duration);
    const auto expected = static_cast<std::size_t>(std::llround(duration / cfg.dt));
    EXPECT_EQ(r.amplitude.size(), expected) << "duration " << duration;
  }
}

TEST(Envelope, TickRecordsSupplyCurrent) {
  EnvelopeSimulator sim(envelope_config());
  const EnvelopeRunResult r = sim.run(10e-3);
  ASSERT_FALSE(r.ticks.empty());
  for (const auto& tick : r.ticks) {
    EXPECT_GT(tick.supply_current, 0.0);
    EXPECT_LT(tick.supply_current, 50e-3);
  }
}

TEST(EnvelopeAdaptive, MatchesFixedPathWithinTolerance) {
  // Same run, adaptive macro stepping on: identical trace shape and tick
  // schedule, amplitude within a reltol-scaled band of the fixed result.
  const double duration = 30e-3;
  EnvelopeSimulator fixed(envelope_config());
  const EnvelopeRunResult fr = fixed.run(duration);

  EnvelopeSimConfig cfg = envelope_config();
  cfg.adaptive = true;
  EnvelopeSimulator adaptive(cfg);
  const EnvelopeRunResult ar = adaptive.run(duration);

  ASSERT_EQ(ar.amplitude.size(), fr.amplitude.size());
  double scale = 0.0;
  for (std::size_t i = 0; i < fr.amplitude.size(); ++i) {
    scale = std::max(scale, std::abs(fr.amplitude.value(i)));
  }
  for (std::size_t i = 0; i < fr.amplitude.size(); ++i) {
    ASSERT_EQ(ar.amplitude.time(i), fr.amplitude.time(i)) << "sample " << i;
    // The regulation loop quantizes through the DAC code, so small LTE
    // differences can shift a code step by one tick; 2% of full scale
    // absorbs that while still pinning the trajectory.
    ASSERT_NEAR(ar.amplitude.value(i), fr.amplitude.value(i), 0.02 * scale) << "sample " << i;
  }
  ASSERT_EQ(ar.ticks.size(), fr.ticks.size());
  for (std::size_t i = 0; i < fr.ticks.size(); ++i) {
    EXPECT_EQ(ar.ticks[i].time, fr.ticks[i].time) << "tick " << i;
  }
  EXPECT_NEAR(ar.settled_amplitude(), fr.settled_amplitude(), fr.settled_amplitude() * 0.02);
  EXPECT_NEAR(ar.final_code, fr.final_code, 1.0);
}

TEST(EnvelopeAdaptive, CutsMacroStepsAtLeastThreefold) {
  // The ISSUE acceptance floor: a settled regulation run must coarsen by
  // at least 3x (in practice far more: most of the run sits at the step
  // ceiling once amplitude and code have settled).
  const double duration = 30e-3;
  EnvelopeSimulator fixed(envelope_config());
  const EnvelopeRunResult fr = fixed.run(duration);

  EnvelopeSimConfig cfg = envelope_config();
  cfg.adaptive = true;
  EnvelopeSimulator adaptive(cfg);
  const EnvelopeRunResult ar = adaptive.run(duration);

  EXPECT_GE(fr.macro_steps, 3 * ar.macro_steps)
      << "fixed " << fr.macro_steps << " vs adaptive " << ar.macro_steps;
  // Substeps (the actual integrator work) must drop too, despite the 3x
  // step-doubling overhead per macro step.
  EXPECT_GT(fr.substeps, ar.substeps);
}

TEST(EnvelopeAdaptive, AdaptiveIsOffByDefaultAndFloorsAtFixedGrid) {
  EXPECT_FALSE(EnvelopeSimConfig{}.adaptive);
  // max_step_multiple = 1 degenerates to the fixed grid: every macro step
  // is one dt, and nothing is ever rejected (n = 1 always accepts).
  EnvelopeSimConfig cfg = envelope_config();
  cfg.adaptive = true;
  cfg.max_step_multiple = 1;
  EnvelopeSimulator sim(cfg);
  const EnvelopeRunResult r = sim.run(5e-3);
  const auto expected = static_cast<std::size_t>(std::llround(5e-3 / cfg.dt));
  EXPECT_EQ(r.macro_steps, expected);
  EXPECT_EQ(r.rejected_steps, 0u);
  EXPECT_EQ(r.amplitude.size(), expected);
}

}  // namespace
}  // namespace lcosc::system
