// Tank physics (paper Section 2) and fault transformations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "tank/coupled_tanks.h"
#include "tank/rlc_tank.h"
#include "tank/tank_faults.h"

namespace lcosc::tank {
namespace {

using namespace lcosc::literals;

TEST(RlcTank, EffectiveCapacitanceSeries) {
  RlcTank t({.inductance = 100.0_uH,
             .capacitance1 = 2.0_nF,
             .capacitance2 = 2.0_nF,
             .series_resistance = 10.0});
  EXPECT_NEAR(t.effective_capacitance(), 1.0e-9, 1e-15);
}

TEST(RlcTank, AsymmetricCapacitors) {
  RlcTank t({.inductance = 100.0_uH,
             .capacitance1 = 1.0_nF,
             .capacitance2 = 3.0_nF,
             .series_resistance = 10.0});
  EXPECT_NEAR(t.effective_capacitance(), 0.75e-9, 1e-15);
}

TEST(RlcTank, ResonanceFormula) {
  // w0 = sqrt(2/(L C)) for symmetric capacitors.
  const TankConfig cfg{.inductance = 100.0_uH,
                       .capacitance1 = 2.0_nF,
                       .capacitance2 = 2.0_nF,
                       .series_resistance = 10.0};
  RlcTank t(cfg);
  const double expected = std::sqrt(2.0 / (cfg.inductance * cfg.capacitance1));
  EXPECT_NEAR(t.angular_resonance(), expected, expected * 1e-12);
}

TEST(RlcTank, ParallelResistanceAndCriticalGm) {
  // Rp = 2L/(C Rs) and Gm0 = Rs C / L = 2/Rp (Eq. 1).
  const TankConfig cfg{.inductance = 100.0_uH,
                       .capacitance1 = 2.0_nF,
                       .capacitance2 = 2.0_nF,
                       .series_resistance = 10.0};
  RlcTank t(cfg);
  const double rp = 2.0 * cfg.inductance / (cfg.capacitance1 * cfg.series_resistance);
  EXPECT_NEAR(t.parallel_resistance(), rp, rp * 1e-12);
  EXPECT_NEAR(t.critical_gm(), 2.0 / rp, 1e-15);
  EXPECT_NEAR(t.critical_gm(),
              cfg.series_resistance * cfg.capacitance1 / cfg.inductance, 1e-15);
}

TEST(RlcTank, QualityFactorDefinition) {
  const TankConfig cfg = design_tank(4.0_MHz, 50.0, 100.0_uH);
  RlcTank t(cfg);
  EXPECT_NEAR(t.quality_factor(), 50.0, 50.0 * 1e-9);
}

TEST(DesignTank, RoundTripsFrequencyAndQ) {
  for (const double f : {2.0e6, 3.0e6, 5.0e6}) {
    for (const double q : {1.0, 10.0, 100.0}) {
      RlcTank t(design_tank(f, q, 47.0_uH));
      EXPECT_NEAR(t.resonance_frequency(), f, f * 1e-9);
      EXPECT_NEAR(t.quality_factor(), q, q * 1e-9);
    }
  }
}

TEST(DesignTank, TwoDecadesOfQSpanPaperRange) {
  // "Quality factor of the external LC network can vary two decades."
  RlcTank low(typical_low_q_tank());
  RlcTank high(typical_high_q_tank());
  EXPECT_GE(high.quality_factor() / low.quality_factor(), 50.0);
  EXPECT_GE(low.resonance_frequency(), kMinOscFrequency);
  EXPECT_LE(high.resonance_frequency(), kMaxOscFrequency);
}

TEST(RlcTank, EnergyAndPower) {
  RlcTank t(design_tank(4.0_MHz, 20.0, 100.0_uH));
  const double a = 2.7;
  EXPECT_NEAR(t.stored_energy(a), 0.5 * t.effective_capacitance() * a * a, 1e-18);
  // Eq. 2: P = V_rms^2 * Gm0 / 2 with V_rms = a/sqrt(2) and Gm0 = 2/Rp.
  const double p_expected = 0.5 * a * a / t.parallel_resistance();
  EXPECT_NEAR(t.dissipated_power(a), p_expected, p_expected * 1e-12);
}

TEST(RlcTank, InvalidConfigRejected) {
  EXPECT_THROW(RlcTank({.inductance = 0.0,
                        .capacitance1 = 1e-9,
                        .capacitance2 = 1e-9,
                        .series_resistance = 1.0}),
               ConfigError);
  EXPECT_THROW(RlcTank({.inductance = 1e-4,
                        .capacitance1 = -1e-9,
                        .capacitance2 = 1e-9,
                        .series_resistance = 1.0}),
               ConfigError);
}

// --- faults ---------------------------------------------------------------

TEST(TankFaults, OpenCoilIsStructural) {
  const FaultedTank f = apply_fault(typical_mid_q_tank(), TankFault::OpenCoil);
  EXPECT_TRUE(f.loop_open);
  EXPECT_FALSE(f.pin1_grounded);
}

TEST(TankFaults, Shorts) {
  EXPECT_TRUE(apply_fault(typical_mid_q_tank(), TankFault::CoilShortToGround).pin1_grounded);
  EXPECT_TRUE(apply_fault(typical_mid_q_tank(), TankFault::CoilShortToSupply).pin1_to_supply);
}

TEST(TankFaults, ShortedTurnsDegradeQ) {
  const TankConfig healthy = typical_mid_q_tank();
  const FaultedTank f = apply_fault(healthy, TankFault::ShortedTurns);
  RlcTank before(healthy);
  RlcTank after(f.config);
  EXPECT_LT(after.quality_factor(), before.quality_factor());
  EXPECT_LT(f.config.inductance, healthy.inductance);
}

TEST(TankFaults, IncreasedResistanceScalesRs) {
  FaultSeverity sev;
  sev.resistance_factor = 8.0;
  const TankConfig healthy = typical_mid_q_tank();
  const FaultedTank f = apply_fault(healthy, TankFault::IncreasedResistance, sev);
  EXPECT_NEAR(f.config.series_resistance, healthy.series_resistance * 8.0, 1e-12);
}

TEST(TankFaults, MissingCapacitorLeavesParasitic) {
  const TankConfig healthy = typical_mid_q_tank();
  const FaultedTank f = apply_fault(healthy, TankFault::MissingCosc1);
  EXPECT_NEAR(f.config.capacitance1, 10e-12, 1e-15);
  EXPECT_DOUBLE_EQ(f.config.capacitance2, healthy.capacitance2);
}

TEST(TankFaults, ExpectedDetectionChannels) {
  EXPECT_EQ(expected_detection(TankFault::OpenCoil), DetectionChannel::MissingOscillation);
  EXPECT_EQ(expected_detection(TankFault::IncreasedResistance),
            DetectionChannel::LowAmplitude);
  EXPECT_EQ(expected_detection(TankFault::MissingCosc2), DetectionChannel::Asymmetry);
  EXPECT_EQ(expected_detection(TankFault::None), DetectionChannel::NoneExpected);
}

TEST(TankFaults, Names) {
  EXPECT_EQ(to_string(TankFault::OpenCoil), "open-coil");
  EXPECT_EQ(to_string(DetectionChannel::Asymmetry), "asymmetry");
}

// --- coupled tanks -----------------------------------------------------------

TEST(CoupledTanks, MutualInductance) {
  CoupledTanksConfig cfg;
  cfg.tank1 = design_tank(4.0_MHz, 20.0, 100.0_uH);
  cfg.tank2 = design_tank(4.0_MHz, 20.0, 400.0_uH);
  cfg.coupling = 0.25;
  CoupledTanks ct(cfg);
  EXPECT_NEAR(ct.mutual_inductance(), 0.25 * std::sqrt(100.0_uH * 400.0_uH), 1e-12);
}

TEST(CoupledTanks, ZeroCouplingDecouples) {
  CoupledTanksConfig cfg;
  cfg.tank1 = design_tank(4.0_MHz, 20.0, 100.0_uH);
  cfg.tank2 = cfg.tank1;
  cfg.coupling = 0.0;
  CoupledTanks ct(cfg);
  const auto d = ct.current_derivatives(1.0, 0.0);
  EXPECT_NEAR(d[0], 1.0 / cfg.tank1.inductance, 1e-3);
  EXPECT_NEAR(d[1], 0.0, 1e-12);
}

TEST(CoupledTanks, InverseInductanceMatrix) {
  CoupledTanksConfig cfg;
  cfg.tank1 = design_tank(4.0_MHz, 20.0, 100.0_uH);
  cfg.tank2 = cfg.tank1;
  cfg.coupling = 0.3;
  CoupledTanks ct(cfg);
  // L * (di/dt) must reproduce the applied voltages.
  const auto d = ct.current_derivatives(1.0, -0.5);
  const double l = cfg.tank1.inductance;
  const double m = ct.mutual_inductance();
  EXPECT_NEAR(l * d[0] + m * d[1], 1.0, 1e-9);
  EXPECT_NEAR(m * d[0] + l * d[1], -0.5, 1e-9);
}

TEST(CoupledTanks, ModeSplit) {
  CoupledTanksConfig cfg;
  cfg.tank1 = design_tank(4.0_MHz, 20.0, 100.0_uH);
  cfg.tank2 = cfg.tank1;
  cfg.coupling = 0.2;
  CoupledTanks ct(cfg);
  const auto modes = ct.coupled_mode_frequencies();
  EXPECT_LT(modes[0], 4.0e6);
  EXPECT_GT(modes[1], 4.0e6);
  EXPECT_NEAR(modes[0], 4.0e6 / std::sqrt(1.2), 1e3);
}

TEST(CoupledTanks, RejectsUnityCoupling) {
  CoupledTanksConfig cfg;
  cfg.tank1 = design_tank(4.0_MHz, 20.0, 100.0_uH);
  cfg.tank2 = cfg.tank1;
  cfg.coupling = 1.0;
  EXPECT_THROW(CoupledTanks{cfg}, ConfigError);
}

}  // namespace
}  // namespace lcosc::tank
