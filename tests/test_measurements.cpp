// Tests for waveform measurements (the "bench instruments").
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "waveform/measurements.h"

namespace lcosc {
namespace {

Trace sine(double amplitude, double freq, double duration, double rate, double offset = 0.0) {
  Trace t("sine");
  const double dt = 1.0 / rate;
  for (double time = 0.0; time <= duration; time += dt) {
    t.append(time + 1e-15 * t.size(), offset + amplitude * std::sin(kTwoPi * freq * time));
  }
  return t;
}

Trace square(double amplitude, double freq, double duration, double rate) {
  Trace t("square");
  const double dt = 1.0 / rate;
  for (double time = 0.0; time <= duration; time += dt) {
    const double phase = std::fmod(time * freq, 1.0);
    t.append(time + 1e-15 * t.size(), phase < 0.5 ? amplitude : -amplitude);
  }
  return t;
}

TEST(Measurements, PeakAmplitude) {
  const Trace t = sine(2.7, 1000.0, 0.01, 1e6);
  EXPECT_NEAR(peak_amplitude(t), 2.7, 1e-3);
}

TEST(Measurements, PeakAmplitudeTail) {
  Trace t;
  // Growing envelope: tail peak exceeds early peak.
  for (int i = 0; i < 1000; ++i) {
    const double time = i * 1e-5;
    t.append(time, (0.1 + time * 100.0) * std::sin(kTwoPi * 1000.0 * time));
  }
  const double all = peak_amplitude(t);
  const double tail = peak_amplitude_tail(t, 2e-3);
  EXPECT_NEAR(tail, all, all * 0.05);
  EXPECT_GT(tail, 0.5 * all);
}

TEST(Measurements, PeakToPeakOfOffsetSine) {
  const Trace t = sine(1.0, 500.0, 0.01, 1e6, 10.0);
  EXPECT_NEAR(peak_to_peak(t), 2.0, 1e-3);
}

TEST(Measurements, RmsOfSine) {
  const Trace t = sine(2.0, 1000.0, 0.01, 1e6);
  EXPECT_NEAR(rms(t), 2.0 / std::sqrt(2.0), 2e-3);
}

TEST(Measurements, RmsOfSquare) {
  const Trace t = square(1.5, 1000.0, 0.01, 1e6);
  EXPECT_NEAR(rms(t), 1.5, 2e-3);
}

TEST(Measurements, MeanOfOffsetSine) {
  const Trace t = sine(1.0, 1000.0, 0.01, 1e6, 0.75);
  EXPECT_NEAR(mean(t), 0.75, 2e-3);
}

TEST(Measurements, RisingCrossingsCount) {
  const Trace t = sine(1.0, 1000.0, 0.01, 1e6);
  const auto crossings = rising_crossings(t);
  EXPECT_NEAR(static_cast<double>(crossings.size()), 10.0, 1.0);
}

TEST(Measurements, FrequencyEstimate) {
  const Trace t = sine(1.0, 4.0e6, 10e-6, 4e6 * 64);
  const auto f = estimate_frequency(t);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 4.0e6, 4.0e6 * 1e-3);
}

TEST(Measurements, FrequencyTail) {
  const Trace t = sine(1.0, 2.0e6, 20e-6, 2e6 * 64);
  const auto f = estimate_frequency_tail(t, 5e-6);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 2.0e6, 2.0e6 * 2e-3);
}

TEST(Measurements, FrequencyOfDcIsNull) {
  Trace t;
  t.append(0.0, 1.0);
  t.append(1.0, 1.0);
  EXPECT_FALSE(estimate_frequency(t).has_value());
}

TEST(Measurements, EnvelopeOfModulatedSine) {
  Trace t;
  const double f = 1e5;
  for (int i = 0; i < 20000; ++i) {
    const double time = i * 1e-7;
    const double env = 1.0 + 0.5 * time * 1000.0;  // slow ramp
    t.append(time, env * std::sin(kTwoPi * f * time));
  }
  const Trace env = extract_envelope(t);
  ASSERT_GT(env.size(), 100u);
  // The envelope should follow the ramp within a few percent.
  const double expected_end = 1.0 + 0.5 * env.end_time() * 1000.0;
  EXPECT_NEAR(env.value(env.size() - 1), expected_end, expected_end * 0.05);
}

TEST(Measurements, SettlingTime) {
  Trace t;
  for (int i = 0; i <= 1000; ++i) {
    const double time = i * 1e-3;
    t.append(time, 1.0 - std::exp(-time * 10.0));
  }
  const auto ts = settling_time(t, 1.0, 0.05);
  ASSERT_TRUE(ts.has_value());
  // 1 - exp(-10 t) = 0.95 at t = ln(20)/10 ~ 0.2996.
  EXPECT_NEAR(*ts, std::log(20.0) / 10.0, 0.01);
}

TEST(Measurements, SettlingNeverReached) {
  Trace t;
  t.append(0.0, 0.0);
  t.append(1.0, 0.1);
  EXPECT_FALSE(settling_time(t, 1.0, 0.05).has_value());
}

TEST(Measurements, FourierMagnitudeOfPureSine) {
  const Trace t = sine(1.2, 1000.0, 0.02, 1e6);
  EXPECT_NEAR(fourier_magnitude(t, 1000.0), 1.2, 0.02);
  EXPECT_NEAR(fourier_magnitude(t, 3000.0), 0.0, 0.02);
}

TEST(Measurements, FourierBoundaryPartialSegmentInterpolated) {
  // A coarsely-sampled sine whose integer-period analysis window starts
  // between two samples: the partial trapezoid straddling t_begin must be
  // interpolated, not dropped.  At 7.9 samples per period over 1.31
  // periods the dropped segment used to bias the magnitude ~16% low
  // (1.007 instead of 1.2).
  const Trace t = sine(1.2, 1000.0, 1.31e-3, 7.9e3);
  EXPECT_NEAR(fourier_magnitude(t, 1000.0), 1.2, 0.02);
}

TEST(Measurements, FourierStableUnderWindowPhase) {
  // Analytic sine measured through windows whose start falls at varying
  // sub-sample offsets: with the boundary sample interpolated the
  // magnitude stays put; dropping it erred by 0.06..0.19 on these.
  for (const double duration : {1.31e-3, 1.45e-3, 1.62e-3, 1.88e-3}) {
    const Trace t = sine(1.2, 1000.0, duration, 7.9e3);
    EXPECT_NEAR(fourier_magnitude(t, 1000.0), 1.2, 0.02) << "duration " << duration;
  }
}

TEST(Measurements, ThdOfSquareWave) {
  // Ideal square THD (through 9th harmonic) = sqrt(sum 1/n^2)/1 for odd n:
  // sqrt(1/9 + 1/25 + 1/49 + 1/81) ~ 0.4291.
  const Trace t = square(1.0, 1000.0, 0.05, 2e6);
  EXPECT_NEAR(total_harmonic_distortion(t, 1000.0, 9), 0.4291, 0.02);
}

TEST(Measurements, ThdOfSineIsSmall) {
  const Trace t = sine(1.0, 1000.0, 0.05, 2e6);
  EXPECT_LT(total_harmonic_distortion(t, 1000.0), 0.02);
}

}  // namespace
}  // namespace lcosc
