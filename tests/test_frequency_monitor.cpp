// Oscillation-frequency supervision (out-of-band detection).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "safety/frequency_monitor.h"
#include "safety/safety_controller.h"

namespace lcosc::safety {
namespace {

void drive_freq(FrequencyMonitor& mon, double freq, double t0, double t1, double amplitude) {
  const double dt = 1.0 / (freq * 64.0);
  for (double t = t0; t < t1; t += dt) {
    mon.step(t, amplitude * std::sin(kTwoPi * freq * t));
  }
}

TEST(FrequencyMonitor, InBandIsQuiet) {
  FrequencyMonitor mon;
  drive_freq(mon, 4.0e6, 0.0, 200e-6, 2.7);
  EXPECT_FALSE(mon.fault());
  EXPECT_NEAR(mon.measured_frequency(), 4.0e6, 4.0e6 * 0.01);
}

TEST(FrequencyMonitor, BandEdgesAreFine) {
  for (const double f : {2.1e6, 4.9e6}) {
    FrequencyMonitor mon;
    drive_freq(mon, f, 0.0, 200e-6, 2.7);
    EXPECT_FALSE(mon.fault()) << f;
    EXPECT_NEAR(mon.measured_frequency(), f, f * 0.01);
  }
}

TEST(FrequencyMonitor, HighFrequencyFaults) {
  // Missing Cosc pushes the resonance several times higher.
  FrequencyMonitor mon;
  drive_freq(mon, 20.0e6, 0.0, 300e-6, 2.7);
  EXPECT_TRUE(mon.fault());
  EXPECT_NEAR(mon.measured_frequency(), 20.0e6, 20.0e6 * 0.02);
}

TEST(FrequencyMonitor, LowFrequencyFaults) {
  FrequencyMonitor mon;
  drive_freq(mon, 0.5e6, 0.0, 600e-6, 2.7);
  EXPECT_TRUE(mon.fault());
}

TEST(FrequencyMonitor, BriefGlitchRidesThrough) {
  FrequencyMonitor mon({.persistence = 100e-6});
  drive_freq(mon, 4.0e6, 0.0, 200e-6, 2.7);
  // 20 us of off-frequency (shorter than persistence), then back.
  drive_freq(mon, 10.0e6, 200e-6, 220e-6, 2.7);
  drive_freq(mon, 4.0e6, 220e-6, 500e-6, 2.7);
  EXPECT_FALSE(mon.fault());
}

TEST(FrequencyMonitor, NoEdgesNoVerdict) {
  // A dead oscillation is the watchdog's job; the monitor stays silent.
  FrequencyMonitor mon;
  for (double t = 0.0; t < 1e-3; t += 1e-7) mon.step(t, 0.0);
  EXPECT_FALSE(mon.fault());
  EXPECT_DOUBLE_EQ(mon.measured_frequency(), 0.0);
}

TEST(FrequencyMonitor, ResetClears) {
  FrequencyMonitor mon;
  drive_freq(mon, 20.0e6, 0.0, 300e-6, 2.7);
  EXPECT_TRUE(mon.fault());
  mon.reset(300e-6);
  EXPECT_FALSE(mon.fault());
  EXPECT_DOUBLE_EQ(mon.measured_frequency(), 0.0);
}

TEST(FrequencyMonitor, ConfigValidated) {
  FrequencyMonitorConfig bad;
  bad.min_frequency = 5e6;
  bad.max_frequency = 2e6;
  EXPECT_THROW(FrequencyMonitor{bad}, ConfigError);
  FrequencyMonitorConfig bad2;
  bad2.averaging_edges = 1;
  EXPECT_THROW(FrequencyMonitor{bad2}, ConfigError);
}

TEST(SafetyControllerFrequency, IntegratedChannel) {
  SafetyController ctl;
  // Healthy 4 MHz past the 2 ms arm delay, then the tank jumps to 25 MHz
  // (missing capacitor resonance shift).
  const double dt = 1.0 / (4.0e6 * 64.0);
  for (double t = 0.0; t < 5e-3; t += dt) {
    const double vd = 2.7 * std::sin(kTwoPi * 4.0e6 * t);
    ctl.step(t, dt, 0.5 * vd, -0.5 * vd);
  }
  EXPECT_FALSE(ctl.flags().frequency_out_of_band);
  const double dt2 = 1.0 / (25.0e6 * 64.0);
  for (double t = 5e-3; t < 5.5e-3; t += dt2) {
    const double vd = 2.7 * std::sin(kTwoPi * 25.0e6 * t);
    ctl.step(t, dt2, 0.5 * vd, -0.5 * vd);
  }
  EXPECT_TRUE(ctl.flags().frequency_out_of_band);
  EXPECT_TRUE(ctl.safe_state_requested());
}

}  // namespace
}  // namespace lcosc::safety
