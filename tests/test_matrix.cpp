// Tests for the dense matrix / vector helpers.
#include <gtest/gtest.h>

#include "common/error.h"
#include "numeric/matrix.h"

namespace lcosc {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ConfigError);
}

TEST(Matrix, CheckedAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), ConfigError);
  EXPECT_THROW(m.at(0, 2), ConfigError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.multiply(Vector{1.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, MatrixVectorSizeMismatchThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0, 3.0}), ConfigError);
}

TEST(Matrix, MatrixMatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, SetZeroAndMaxAbs) {
  Matrix m{{-5.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 5.0);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m.max_abs(), 0.0);
}

TEST(VectorOps, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(VectorOps, SubtractAddScaledDot) {
  const Vector a{1.0, 2.0};
  const Vector b{0.5, -1.0};
  const Vector d = subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  const Vector s = add_scaled(a, 2.0, b);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(dot(a, b), -1.5);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW(subtract(Vector{1.0}, Vector{1.0, 2.0}), ConfigError);
  EXPECT_THROW(dot(Vector{1.0}, Vector{1.0, 2.0}), ConfigError);
}

}  // namespace
}  // namespace lcosc
