// Safety detectors (Section 7): watchdog, low amplitude, asymmetry, and
// the aggregating controller.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "safety/safety_controller.h"

namespace lcosc::safety {
namespace {

constexpr double kFreq = 4e6;
constexpr double kDt = 1.0 / (kFreq * 64.0);

// Drive a detector-style step function with a differential sine of the
// given amplitude between [t0, t1].
template <typename StepFn>
void drive(StepFn&& fn, double t0, double t1, double amplitude) {
  for (double t = t0; t < t1; t += kDt) {
    const double vd = amplitude * std::sin(kTwoPi * kFreq * t);
    fn(t, vd);
  }
}

TEST(Watchdog, HealthyOscillationNeverFaults) {
  OscillationWatchdog wd;
  drive([&](double t, double vd) { wd.step(t, vd); }, 0.0, 200e-6, 2.7);
  EXPECT_FALSE(wd.fault());
  EXPECT_GT(wd.edge_count(), 700);
}

TEST(Watchdog, StoppedClockFaultsAfterTimeout) {
  OscillationWatchdog wd;
  drive([&](double t, double vd) { wd.step(t, vd); }, 0.0, 100e-6, 2.7);
  EXPECT_FALSE(wd.fault());
  // Oscillation dies: feed DC.
  drive([&](double t, double) { wd.step(t, 0.0); }, 100e-6, 150e-6, 0.0);
  EXPECT_TRUE(wd.fault());
}

TEST(Watchdog, TinyAmplitudeBelowHysteresisCountsAsMissing) {
  OscillationWatchdog wd({.comparator_hysteresis = 50e-3, .timeout = 20e-6});
  drive([&](double t, double vd) { wd.step(t, vd); }, 0.0, 100e-6, 0.01);
  EXPECT_TRUE(wd.fault());
}

TEST(Watchdog, LatencyWithinTimeoutPlusDecay) {
  OscillationWatchdog wd({.comparator_hysteresis = 50e-3, .timeout = 20e-6});
  drive([&](double t, double vd) { wd.step(t, vd); }, 0.0, 50e-6, 2.7);
  double fault_time = -1.0;
  for (double t = 50e-6; t < 200e-6; t += kDt) {
    if (wd.step(t, 0.0)) {
      fault_time = t;
      break;
    }
  }
  ASSERT_GT(fault_time, 0.0);
  EXPECT_LT(fault_time - 50e-6, 25e-6);
}

TEST(Watchdog, ResetClearsFault) {
  OscillationWatchdog wd;
  drive([&](double t, double) { wd.step(t, 0.0); }, 0.0, 100e-6, 0.0);
  EXPECT_TRUE(wd.fault());
  wd.reset(100e-6);
  EXPECT_FALSE(wd.fault());
}

TEST(LowAmplitude, HealthyAmplitudePasses) {
  LowAmplitudeDetector det;
  drive([&](double t, double vd) { det.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 5e-3, 2.7);
  EXPECT_FALSE(det.fault());
}

TEST(LowAmplitude, DegradedAmplitudeFaultsAfterPersistence) {
  LowAmplitudeDetector det;  // threshold = 50% of 2.7
  drive([&](double t, double vd) { det.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 5e-3, 1.0);
  EXPECT_TRUE(det.fault());
}

TEST(LowAmplitude, ShortDipRidesThrough) {
  LowAmplitudeDetector det;
  drive([&](double t, double vd) { det.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 4e-3, 2.7);
  // 1 ms dip, shorter than the 3 ms persistence.
  drive([&](double t, double vd) { det.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 4e-3, 5e-3, 0.5);
  drive([&](double t, double vd) { det.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 5e-3, 8e-3, 2.7);
  EXPECT_FALSE(det.fault());
}

TEST(Asymmetry, SymmetricTankIsQuiet) {
  AsymmetryDetector det;
  drive([&](double t, double vd) { det.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 3e-3, 2.7);
  EXPECT_FALSE(det.fault());
  EXPECT_NEAR(det.detector_output(), 0.0, 5e-3);
}

TEST(Asymmetry, UnequalPinSwingsFault) {
  // Missing Cosc2: LC1 swings 0.9 of the differential, LC2 only 0.1 -> the
  // midpoint oscillates in phase with the differential.
  AsymmetryDetector det;
  for (double t = 0.0; t < 3e-3; t += kDt) {
    const double vd = 2.7 * std::sin(kTwoPi * kFreq * t);
    det.step(t, kDt, 0.9 * vd, -0.1 * vd);
  }
  EXPECT_TRUE(det.fault());
  EXPECT_GT(std::abs(det.detector_output()), 60e-3);
}

TEST(Asymmetry, SignIdentifiesFailedSide) {
  AsymmetryDetector det1;
  AsymmetryDetector det2;
  for (double t = 0.0; t < 2e-3; t += kDt) {
    const double vd = 2.7 * std::sin(kTwoPi * kFreq * t);
    det1.step(t, kDt, 0.9 * vd, -0.1 * vd);  // LC1 side dominates
    det2.step(t, kDt, 0.1 * vd, -0.9 * vd);  // LC2 side dominates
  }
  EXPECT_GT(det1.detector_output(), 0.0);
  EXPECT_LT(det2.detector_output(), 0.0);
}

TEST(Controller, CleanRunRaisesNothing) {
  SafetyController ctl;
  drive([&](double t, double vd) { ctl.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 8e-3, 2.7);
  EXPECT_FALSE(ctl.safe_state_requested());
  EXPECT_EQ(ctl.flags(), FaultFlags{});
}

TEST(Controller, BlankingSuppressesStartupFaults) {
  SafetyController ctl;
  // During the first 1 ms amplitude is tiny (startup); detectors must not
  // latch because of it.
  drive([&](double t, double vd) { ctl.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 1e-3, 0.3);
  drive([&](double t, double vd) { ctl.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 1e-3, 9e-3, 2.7);
  EXPECT_FALSE(ctl.flags().low_amplitude);
}

TEST(Controller, AggregatesAllChannels) {
  SafetyController ctl;
  // Healthy, then dead oscillation -> watchdog fires, then the filtered
  // amplitude collapses -> low amplitude fires too.
  drive([&](double t, double vd) { ctl.step(t, kDt, 0.5 * vd, -0.5 * vd); }, 0.0, 5e-3, 2.7);
  drive([&](double t, double) { ctl.step(t, kDt, 0.0, 0.0); }, 5e-3, 15e-3, 0.0);
  EXPECT_TRUE(ctl.flags().missing_oscillation);
  EXPECT_TRUE(ctl.flags().low_amplitude);
  EXPECT_TRUE(ctl.safe_state_requested());
  EXPECT_TRUE(ctl.outputs_safe());
}

TEST(Controller, ResetClearsEverything) {
  SafetyController ctl;
  drive([&](double t, double) { ctl.step(t, kDt, 0.0, 0.0); }, 0.0, 10e-3, 0.0);
  EXPECT_TRUE(ctl.safe_state_requested());
  ctl.reset(10e-3);
  EXPECT_FALSE(ctl.safe_state_requested());
}

}  // namespace
}  // namespace lcosc::safety
