// Parameterized property sweep of the full regulation loop across the
// paper's operating plane (2-5 MHz, two decades of usable Q).  Uses the
// envelope engine so the whole grid stays cheap.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/units.h"
#include "system/envelope_simulator.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

struct GridPoint {
  double frequency;
  double quality;
};

class RegulationGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  EnvelopeRunResult run_grid_point() const {
    EnvelopeSimConfig cfg;
    cfg.tank = tank::design_tank(GetParam().frequency, GetParam().quality, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    EnvelopeSimulator sim(cfg);
    return sim.run(60e-3);
  }
};

TEST_P(RegulationGrid, SettlesInsideTheWindow) {
  const EnvelopeRunResult r = run_grid_point();
  EXPECT_NEAR(r.settled_amplitude(), 2.7, 2.7 * 0.08)
      << "f0 = " << GetParam().frequency << " Q = " << GetParam().quality;
}

TEST_P(RegulationGrid, CodeStaysInUsableRange) {
  const EnvelopeRunResult r = run_grid_point();
  // Above the code-16 floor (Section 3: losses keep the code there) and
  // below full scale with margin to regulate upward.
  EXPECT_GE(r.final_code, 5);
  EXPECT_LE(r.final_code, 120);
}

TEST_P(RegulationGrid, NoSteadyLimitCycling) {
  const EnvelopeRunResult r = run_grid_point();
  ASSERT_GE(r.ticks.size(), 60u);
  int changes = 0;
  for (std::size_t i = r.ticks.size() - 40; i < r.ticks.size(); ++i) {
    if (r.ticks[i].code != r.ticks[i - 1].code) ++changes;
  }
  EXPECT_LE(changes, 2);
}

TEST_P(RegulationGrid, SupplyCurrentWithinPaperEnvelope) {
  const EnvelopeRunResult r = run_grid_point();
  const double supply = r.ticks.back().supply_current;
  EXPECT_GT(supply, 100e-6);
  EXPECT_LT(supply, 30e-3);
}

std::string grid_name(const ::testing::TestParamInfo<GridPoint>& info) {
  return "f" + std::to_string(static_cast<int>(info.param.frequency / 1e5)) + "e5_Q" +
         std::to_string(static_cast<int>(info.param.quality * 10.0));
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPlane, RegulationGrid,
    // Points chosen inside the operable envelope for a 3.3 uH coil: the
    // needed gm stays under ~10 mS AND the settled code stays >= 16
    // (Section 3's assumption; see LowQGmEnvelope / LowCodeLimitCycle
    // below for the edges).
    ::testing::Values(GridPoint{2.0e6, 15.0}, GridPoint{2.0e6, 40.0},
                      GridPoint{2.0e6, 150.0}, GridPoint{3.0e6, 15.0},
                      GridPoint{3.0e6, 80.0}, GridPoint{4.0e6, 5.0},
                      GridPoint{4.0e6, 25.0}, GridPoint{4.0e6, 150.0},
                      GridPoint{5.0e6, 10.0}, GridPoint{5.0e6, 60.0},
                      GridPoint{5.0e6, 200.0}),
    grid_name);

// Edge of the operating envelope, Section 3: a tank so good that its
// operating code falls below 16 sees relative DAC steps above the
// regulation window (Fig. 4 blows past 6.25% there) and limit-cycles --
// which is why the paper requires losses to keep the code above 16.
TEST(RegulationGridProperties, LowCodeLimitCyclesBelowCode16) {
  EnvelopeSimConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 320.0, 3.3_uH);  // operating code ~9
  cfg.regulation.tick_period = 0.25e-3;
  EnvelopeSimulator sim(cfg);
  const EnvelopeRunResult r = sim.run(60e-3);
  EXPECT_LT(r.final_code, 16);
  int changes = 0;
  for (std::size_t i = r.ticks.size() - 40; i < r.ticks.size(); ++i) {
    if (r.ticks[i].code != r.ticks[i - 1].code) ++changes;
  }
  EXPECT_GT(changes, 5);  // the predicted limit cycle
}

// Edge of the envelope on the lossy side: below the gm the active stages
// can deliver at the required code, the oscillation collapses and the
// loop hunts (the ~10 mS bound of Section 9).
TEST(RegulationGridProperties, LowQGmEnvelope) {
  EnvelopeSimConfig cfg;
  cfg.tank = tank::design_tank(2.0_MHz, 8.0, 3.3_uH);  // Gm0 ~ 6 mS at code ~101
  cfg.regulation.tick_period = 0.25e-3;
  EnvelopeSimulator sim(cfg);
  const EnvelopeRunResult r = sim.run(60e-3);
  // Cannot hold the target: settles visibly low or keeps hunting.
  EXPECT_LT(r.settled_amplitude(), 2.7 * 0.95);
}

// Monotonicity property across the grid: better tanks settle at lower
// codes and draw less current at the same frequency.
TEST(RegulationGridProperties, CodeMonotoneInQuality) {
  int prev_code = 128;
  for (const double q : {5.0, 15.0, 45.0, 135.0}) {
    EnvelopeSimConfig cfg;
    cfg.tank = tank::design_tank(4.0_MHz, q, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    EnvelopeSimulator sim(cfg);
    const EnvelopeRunResult r = sim.run(60e-3);
    EXPECT_LT(r.final_code, prev_code) << "Q = " << q;
    prev_code = r.final_code;
  }
}

TEST(RegulationGridProperties, FrequencyDoesNotChangeTheCodeMuch) {
  // At fixed Q and L, Rp = Q*w0*L grows with f0, so the settled code falls
  // slightly with frequency -- but stays within a few steps (the loop is
  // frequency-agnostic by design; only the tank impedance matters).
  int code_2mhz = 0;
  int code_5mhz = 0;
  for (const double f : {2.0e6, 5.0e6}) {
    EnvelopeSimConfig cfg;
    cfg.tank = tank::design_tank(f, 40.0, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    EnvelopeSimulator sim(cfg);
    const EnvelopeRunResult r = sim.run(60e-3);
    (f < 3e6 ? code_2mhz : code_5mhz) = r.final_code;
  }
  EXPECT_GT(code_2mhz, code_5mhz);  // smaller Rp at lower f -> more current
  EXPECT_LT(code_2mhz - code_5mhz, 40);
}

}  // namespace
}  // namespace lcosc::system
