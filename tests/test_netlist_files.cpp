// The shipped .sp netlists (the paper's output-stage topologies as text)
// must parse and reproduce the Fig. 17 behaviour of the C++-built
// testbenches.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "spice/netlist_parser.h"
#include "spice/sweep.h"

#ifndef LCOSC_NETLIST_DIR
#define LCOSC_NETLIST_DIR "netlists"
#endif

namespace lcosc::spice {
namespace {

std::string netlist_path(const char* file) {
  return std::string(LCOSC_NETLIST_DIR) + "/" + file;
}

double pin_current_at(Circuit& circuit, double vd) {
  auto* src = circuit.find_as<VoltageSource>("Vdiff");
  EXPECT_NE(src, nullptr);
  DcOptions options;
  options.max_iterations = 500;
  // Continuation from 0 to the target.
  const auto grid = linspace(0.0, vd, 31);
  const SweepResult r = dc_sweep(circuit, *src, grid, options);
  EXPECT_TRUE(r.points.back().converged);
  StampContext ctx;
  return -src->branch_current(r.points.back().solution.x, ctx);
}

TEST(NetlistFiles, Fig10aParsesAndClamps) {
  auto circuit = parse_netlist_file(netlist_path("fig10a_unsupplied.sp"));
  // Structural spot checks: two scoped pin drivers.
  EXPECT_NE(circuit->find("X1.Mp1"), nullptr);
  EXPECT_NE(circuit->find("X2.Mn1"), nullptr);
  // Heavy conduction at +3 V differential (the Fig. 10a failure).
  const double i = pin_current_at(*circuit, 3.0);
  EXPECT_GT(i, 5e-3);
}

TEST(NetlistFiles, Fig11ParsesAndStaysQuiet) {
  auto circuit = parse_netlist_file(netlist_path("fig11_output_stage.sp"));
  EXPECT_NE(circuit->find("X1.Mn5"), nullptr);
  EXPECT_NE(circuit->find("Mn6"), nullptr);
  const double i3 = pin_current_at(*circuit, 3.0);
  // Bounded like Fig. 17 (sub-mA at +3 V)...
  EXPECT_LT(std::abs(i3), 1.5e-3);
  // ...and near-zero inside the 2.7 Vpp operating range.
  auto circuit2 = parse_netlist_file(netlist_path("fig11_output_stage.sp"));
  const double i_op = pin_current_at(*circuit2, 1.35);
  EXPECT_LT(std::abs(i_op), 60e-6);
}

TEST(NetlistFiles, TopologiesDiffer) {
  auto fig10a = parse_netlist_file(netlist_path("fig10a_unsupplied.sp"));
  auto fig11 = parse_netlist_file(netlist_path("fig11_output_stage.sp"));
  const double i10a = std::abs(pin_current_at(*fig10a, 2.7));
  const double i11 = std::abs(pin_current_at(*fig11, 2.7));
  EXPECT_GT(i10a, 10.0 * i11);  // who wins, from the text netlists alone
}

}  // namespace
}  // namespace lcosc::spice
