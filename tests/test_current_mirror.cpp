// The physical current-mirror DAC with mismatch: reproduces the
// "measured" behaviour of Figs. 13-14 including the non-monotonic code.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "dac/current_mirror.h"
#include "dac/exponential_dac.h"

namespace lcosc::dac {
namespace {

MismatchConfig zero_mismatch() {
  MismatchConfig cfg;
  cfg.unit_sigma = 0.0;
  cfg.prescaler_sigma = 0.0;
  cfg.reference_sigma = 0.0;
  return cfg;
}

TEST(CurrentMirror, ZeroMismatchMatchesIdeal) {
  const CurrentLimitationDac dac(kDacUnitCurrent, zero_mismatch(), 1);
  const PwlExponentialDac ideal;
  for (int code = 0; code <= 127; ++code) {
    EXPECT_NEAR(dac.output_current(code), ideal.current(code), 1e-15) << "code " << code;
    EXPECT_NEAR(dac.top_current(code), dac.bottom_current(code), 1e-18);
  }
}

TEST(CurrentMirror, DeterministicFromSeed) {
  const MismatchConfig cfg;
  const CurrentLimitationDac a(kDacUnitCurrent, cfg, 77);
  const CurrentLimitationDac b(kDacUnitCurrent, cfg, 77);
  for (int code = 0; code <= 127; code += 11) {
    EXPECT_DOUBLE_EQ(a.output_current(code), b.output_current(code));
  }
}

TEST(CurrentMirror, TopAndBottomAreIndependentDraws) {
  const CurrentLimitationDac dac(kDacUnitCurrent, {}, 5);
  bool any_difference = false;
  for (int code = 1; code <= 127; ++code) {
    if (std::abs(dac.top_current(code) - dac.bottom_current(code)) >
        1e-9 * dac.top_current(code)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(CurrentMirror, MismatchIsBoundedByConfig) {
  MismatchConfig cfg;
  cfg.unit_sigma = 0.02;
  cfg.prescaler_sigma = 0.01;
  cfg.reference_sigma = 0.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const CurrentLimitationDac dac(kDacUnitCurrent, cfg, seed);
    for (int code = 1; code <= 127; code += 7) {
      const double rel_err =
          std::abs(dac.output_current(code) - dac.ideal_current(code)) /
          dac.ideal_current(code);
      // 2% unit sigma, averaged over many devices: total well below 10%.
      EXPECT_LT(rel_err, 0.10) << "seed " << seed << " code " << code;
    }
  }
}

TEST(CurrentMirror, ReferenceErrorIsPureGain) {
  MismatchConfig cfg = zero_mismatch();
  cfg.reference_sigma = 0.05;
  const CurrentLimitationDac dac(kDacUnitCurrent, cfg, 3);
  const double gain = dac.output_current(64) / dac.ideal_current(64);
  for (int code = 1; code <= 127; code += 9) {
    EXPECT_NEAR(dac.output_current(code) / dac.ideal_current(code), gain, 1e-12);
  }
  // A pure gain error can never create non-monotonicity.
  EXPECT_TRUE(dac.non_monotonic_codes().empty());
}

TEST(CurrentMirror, SeedSearchReproducesCode96Anomaly) {
  // The silicon of the paper is non-monotonic at code 96 (Fig. 14).
  const std::uint64_t seed = find_seed_with_single_negative_step(96);
  const CurrentLimitationDac dac(kDacUnitCurrent, {}, seed);
  const auto bad = dac.non_monotonic_codes();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.front(), 96);
  EXPECT_LT(dac.relative_step(95), 0.0);  // the step INTO code 96
}

TEST(CurrentMirror, NonMonotonicityPrefersMajorCarries) {
  // Monte Carlo: non-monotonic steps should concentrate at segment
  // boundaries where the branch set changes most.
  const auto stats = monte_carlo_non_monotonicity(400);
  double carry_total = 0.0;
  for (const auto& [code, p] : stats) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    carry_total += p;
  }
  // With default sigmas some carries do go backwards occasionally.
  EXPECT_GT(carry_total, 0.0);

  // Within-segment steps essentially never go backwards: check a few.
  int within_hits = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const CurrentLimitationDac dac(kDacUnitCurrent, {}, seed);
    for (const int code : {20, 40, 70, 100}) {
      if (dac.output_current(code + 1) <= dac.output_current(code)) ++within_hits;
    }
  }
  EXPECT_EQ(within_hits, 0);
}

TEST(CurrentMirror, MoreMismatchMoreNonMonotonic) {
  MismatchConfig low;
  low.unit_sigma = 0.002;
  low.prescaler_sigma = 0.001;
  MismatchConfig high;
  high.unit_sigma = 0.06;
  high.prescaler_sigma = 0.03;
  const auto stats_low = monte_carlo_non_monotonicity(300, low);
  const auto stats_high = monte_carlo_non_monotonicity(300, high);
  double total_low = 0.0;
  double total_high = 0.0;
  for (const auto& [c, p] : stats_low) total_low += p;
  for (const auto& [c, p] : stats_high) total_high += p;
  EXPECT_GT(total_high, total_low);
}

TEST(CurrentMirror, RegulationToleranceBound) {
  // Section 4: "The maximum step must only remain below a limit given by
  // the regulation window".  Even mismatched, steps above code 16 stay
  // well under the 10% default window for typical sigmas.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const CurrentLimitationDac dac(kDacUnitCurrent, {}, seed);
    for (int code = 16; code < 127; ++code) {
      EXPECT_LT(dac.relative_step(code), 0.10)
          << "seed " << seed << " code " << code;
    }
  }
}

TEST(MirrorBank, IdealDefaultFactors) {
  const MirrorBank bank;
  for (const double f : bank.fixed_factors()) EXPECT_DOUBLE_EQ(f, 1.0);
  for (const double f : bank.binary_factors()) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(MirrorBank, LargerBranchesMatchBetter) {
  // sigma scales as 1/sqrt(weight): across many draws the 64-unit branch
  // must be tighter than the 1-unit branch.
  MismatchConfig cfg;
  cfg.unit_sigma = 0.05;
  double var1 = 0.0;
  double var64 = 0.0;
  const int n = 500;
  Rng rng(42);
  for (int i = 0; i < n; ++i) {
    Rng branch_rng = rng.fork(static_cast<std::uint64_t>(i));
    const MirrorBank bank(cfg, branch_rng);
    const double e1 = bank.binary_factors()[0] - 1.0;   // weight 1
    const double e64 = bank.binary_factors()[6] - 1.0;  // weight 64
    var1 += e1 * e1;
    var64 += e64 * e64;
  }
  EXPECT_GT(var1 / var64, 16.0);  // expect ~64x, allow slack
}

}  // namespace
}  // namespace lcosc::dac
