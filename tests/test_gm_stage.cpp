// The current-limited Gm stage (paper Fig. 2) and its describing function.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "driver/gm_stage.h"

namespace lcosc::driver {
namespace {

TEST(GmStage, Fig2HardCharacteristic) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  // Linear region.
  EXPECT_DOUBLE_EQ(st.output_current(0.5), 0.5e-3);
  EXPECT_DOUBLE_EQ(st.output_current(-0.5), -0.5e-3);
  // Clipped at +-Im.
  EXPECT_DOUBLE_EQ(st.output_current(5.0), 1e-3);
  EXPECT_DOUBLE_EQ(st.output_current(-5.0), -1e-3);
  EXPECT_DOUBLE_EQ(st.saturation_voltage(), 1.0);
}

TEST(GmStage, TanhIsSmoothAndBounded) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Tanh});
  EXPECT_NEAR(st.output_current(0.01), 0.01e-3, 1e-8);  // small-signal gm
  EXPECT_LT(st.output_current(100.0), 1e-3 + 1e-12);
  EXPECT_GT(st.output_current(100.0), 0.999e-3);
}

TEST(GmStage, ZeroLimitKillsOutput) {
  GmStage st({.gm = 1e-3, .current_limit = 0.0, .shape = LimitShape::Hard});
  EXPECT_DOUBLE_EQ(st.output_current(3.0), 0.0);
  GmStage st_tanh({.gm = 1e-3, .current_limit = 0.0, .shape = LimitShape::Tanh});
  EXPECT_DOUBLE_EQ(st_tanh.output_current(3.0), 0.0);
}

TEST(GmStage, DescribingGainSmallSignal) {
  GmStage st({.gm = 2e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  // Below saturation (A < Im/gm = 0.5) the gain is exactly gm.
  EXPECT_DOUBLE_EQ(st.describing_gain(0.4), 2e-3);
  EXPECT_DOUBLE_EQ(st.describing_gain(0.0), 2e-3);
}

TEST(GmStage, DescribingGainDeepLimitAsymptote) {
  GmStage st({.gm = 2e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  // N(A) -> 4 Im / (pi A) deep in limiting.
  const double a = 100.0;
  EXPECT_NEAR(st.describing_gain(a), 4.0 * 1e-3 / (kPi * a), 1e-9);
}

TEST(GmStage, DescribingGainMonotoneDecreasing) {
  GmStage st({.gm = 1e-3, .current_limit = 0.5e-3, .shape = LimitShape::Hard});
  double prev = st.describing_gain(0.1);
  for (double a = 0.6; a < 20.0; a *= 1.5) {
    const double n = st.describing_gain(a);
    EXPECT_LE(n, prev + 1e-15);
    prev = n;
  }
}

TEST(GmStage, FundamentalCurrentSaturates) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  // Fundamental of a fully clipped drive: (4/pi) Im.
  EXPECT_NEAR(st.fundamental_current(1000.0), kDriverShapeFactorSquare * 1e-3, 1e-8);
}

TEST(GmStage, ShapeFactorRangeCoversPaperK) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  // The paper quotes k ~ 0.9 for the linear approximation at moderate
  // overdrive; the shape factor must pass through that value.
  const double k_mild = st.shape_factor(1.2);   // barely clipping
  const double k_deep = st.shape_factor(50.0);  // deep clipping
  EXPECT_LT(k_mild, 1.2);
  EXPECT_GT(k_deep, 1.25);
  bool crossed_09 = false;
  for (double a = 0.2; a < 50.0; a *= 1.05) {
    const double k = st.shape_factor(a);
    if (k >= 0.895 && k <= 0.95) crossed_09 = true;
  }
  EXPECT_TRUE(crossed_09);
}

TEST(GmStage, TanhDescribingGainNumericallyConsistent) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Tanh});
  // Small signal: approaches gm.
  EXPECT_NEAR(st.describing_gain(1e-3), 1e-3, 2e-5);
  // Deep limiting: approaches the square-wave asymptote.
  EXPECT_NEAR(st.describing_gain(200.0), 4.0 * 1e-3 / (kPi * 200.0), 1e-8);
}

TEST(GmStage, HardAndTanhAgreeInLimits) {
  GmStage hard({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  GmStage tanh({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Tanh});
  EXPECT_NEAR(hard.fundamental_current(300.0), tanh.fundamental_current(300.0), 1e-6);
}

TEST(GmStage, SettersValidate) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  st.set_current_limit(2e-3);
  EXPECT_DOUBLE_EQ(st.output_current(10.0), 2e-3);
  st.set_gm(5e-3);
  EXPECT_DOUBLE_EQ(st.output_current(0.1), 0.5e-3);
  EXPECT_THROW(st.set_current_limit(-1.0), ConfigError);
  EXPECT_THROW(st.set_gm(0.0), ConfigError);
}

TEST(GmStage, NegativeAmplitudeRejected) {
  GmStage st({.gm = 1e-3, .current_limit = 1e-3, .shape = LimitShape::Hard});
  EXPECT_THROW(st.describing_gain(-1.0), ConfigError);
}

}  // namespace
}  // namespace lcosc::driver
