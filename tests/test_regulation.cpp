// Amplitude detector (Fig. 8) and regulation FSM (Section 4).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"

namespace lcosc::regulation {
namespace {

using devices::WindowState;

void drive_sine(AmplitudeDetector& det, double amplitude, double freq, double duration) {
  const double dt = 1.0 / (freq * 64.0);
  double t = 0.0;
  while (t < duration) {
    const double vd = amplitude * std::sin(kTwoPi * freq * t);
    det.step(dt, 0.5 * vd, -0.5 * vd);
    t += dt;
  }
}

TEST(AmplitudeDetector, Vdc1SettlesToAOverPi) {
  AmplitudeDetector det;
  drive_sine(det, 2.7, 4e6, 300e-6);
  EXPECT_NEAR(det.vdc1(), 2.7 / kPi, 2.7 / kPi * 0.03);
}

TEST(AmplitudeDetector, AmplitudeMappingRoundTrip) {
  EXPECT_NEAR(AmplitudeDetector::vdc1_to_amplitude(AmplitudeDetector::amplitude_to_vdc1(2.7)),
              2.7, 1e-12);
}

TEST(AmplitudeDetector, WindowCentersOnTarget) {
  AmplitudeDetector det;
  EXPECT_NEAR(0.5 * (det.amplitude_low() + det.amplitude_high()), 2.7, 1e-9);
  // Window width 10% of target.
  EXPECT_NEAR(det.amplitude_high() - det.amplitude_low(), 0.27, 1e-9);
}

TEST(AmplitudeDetector, WindowWiderThanWorstDacStep) {
  // The design rule of Section 4: window wider than 6.25%.
  AmplitudeDetector det;
  const double rel_width = (det.vr4() - det.vr3()) / (0.5 * (det.vr3() + det.vr4()));
  EXPECT_GT(rel_width, kMaxRelativeStepAbove16);
}

TEST(AmplitudeDetector, ClassifiesAmplitudes) {
  AmplitudeDetector det;
  drive_sine(det, 1.0, 4e6, 300e-6);  // well below target 2.7
  EXPECT_EQ(det.window_state(), WindowState::Below);
  det.reset();
  drive_sine(det, 2.7, 4e6, 300e-6);
  EXPECT_EQ(det.window_state(), WindowState::Inside);
  det.reset();
  drive_sine(det, 4.0, 4e6, 300e-6);
  EXPECT_EQ(det.window_state(), WindowState::Above);
}

TEST(AmplitudeDetector, BandgapFractionsAreSubUnity) {
  // VR3/VR4 are built as fractions of the bandgap (Fig. 8).
  AmplitudeDetector det;
  EXPECT_GT(det.vr3_bandgap_fraction(), 0.3);
  EXPECT_LT(det.vr4_bandgap_fraction(), 1.1);
  EXPECT_LT(det.vr3_bandgap_fraction(), det.vr4_bandgap_fraction());
}

TEST(AmplitudeDetector, InvalidConfigRejected) {
  AmplitudeDetectorConfig bad;
  bad.window_width = 0.0;
  EXPECT_THROW(AmplitudeDetector{bad}, ConfigError);
  bad.window_width = 1.5;
  EXPECT_THROW(AmplitudeDetector{bad}, ConfigError);
}

// --- FSM ----------------------------------------------------------------------

TEST(RegulationFsm, PowerOnPresetIs105) {
  RegulationFsm fsm;
  EXPECT_EQ(fsm.code(), 105);
  EXPECT_EQ(fsm.mode(), RegulationMode::PowerOnReset);
}

TEST(RegulationFsm, TickMovesOneStep) {
  RegulationFsm fsm;
  EXPECT_EQ(fsm.tick(WindowState::Below), 106);
  EXPECT_EQ(fsm.tick(WindowState::Below), 107);
  EXPECT_EQ(fsm.tick(WindowState::Above), 106);
  EXPECT_EQ(fsm.tick(WindowState::Inside), 106);
  EXPECT_EQ(fsm.tick_count(), 4);
}

TEST(RegulationFsm, ClampsAtRangeEnds) {
  RegulationConfig cfg;
  cfg.startup_code = 126;
  RegulationFsm fsm(cfg);
  fsm.tick(WindowState::Below);
  fsm.tick(WindowState::Below);
  EXPECT_EQ(fsm.code(), 127);
  RegulationConfig cfg2;
  cfg2.startup_code = 1;
  RegulationFsm fsm2(cfg2);
  fsm2.tick(WindowState::Above);
  fsm2.tick(WindowState::Above);
  EXPECT_EQ(fsm2.code(), 0);
}

TEST(RegulationFsm, NvmPresetSpeedsSettling) {
  RegulationConfig cfg;
  cfg.nvm_code = 42;
  RegulationFsm fsm(cfg);
  EXPECT_EQ(fsm.code(), 105);  // POR value first
  fsm.apply_nvm_preset();
  EXPECT_EQ(fsm.code(), 42);
  EXPECT_EQ(fsm.mode(), RegulationMode::Regulating);
}

TEST(RegulationFsm, NvmDisabledKeepsCode) {
  RegulationFsm fsm;  // nvm_code = -1
  fsm.apply_nvm_preset();
  EXPECT_EQ(fsm.code(), 105);
}

TEST(RegulationFsm, SafeStateForcesMaxCurrent) {
  RegulationFsm fsm;
  fsm.enter_safe_state();
  EXPECT_EQ(fsm.code(), 127);
  EXPECT_EQ(fsm.mode(), RegulationMode::SafeState);
  // Ticks are ignored in safe state.
  fsm.tick(WindowState::Above);
  EXPECT_EQ(fsm.code(), 127);
  // NVM preset is also ignored.
  fsm.apply_nvm_preset();
  EXPECT_EQ(fsm.mode(), RegulationMode::SafeState);
}

TEST(RegulationFsm, ClearSafeStateResumes) {
  RegulationFsm fsm;
  fsm.enter_safe_state();
  fsm.clear_safe_state();
  EXPECT_EQ(fsm.mode(), RegulationMode::Regulating);
  fsm.tick(WindowState::Above);
  EXPECT_EQ(fsm.code(), 126);
}

TEST(RegulationFsm, PorResetRestoresStartup) {
  RegulationFsm fsm;
  fsm.tick(WindowState::Below);
  fsm.por_reset();
  EXPECT_EQ(fsm.code(), 105);
  EXPECT_EQ(fsm.tick_count(), 0);
}

TEST(RegulationFsm, ConfigValidated) {
  RegulationConfig bad;
  bad.startup_code = 200;
  EXPECT_THROW(RegulationFsm{bad}, ConfigError);
  RegulationConfig bad2;
  bad2.nvm_code = 500;
  EXPECT_THROW(RegulationFsm{bad2}, ConfigError);
  RegulationConfig bad3;
  bad3.tick_period = 0.0;
  EXPECT_THROW(RegulationFsm{bad3}, ConfigError);
}

// Property: the window rule of Section 4.  Because the window (10%) is
// wider than the worst DAC step (6.25%), a single regulation step starting
// inside the window can never jump across it.
TEST(RegulationProperty, StepCannotJumpAcrossWindow) {
  AmplitudeDetector det;
  const double lo = det.amplitude_low();
  const double hi = det.amplitude_high();
  // Worst case: amplitude scales with the DAC step (Eq. 5).
  for (double a = lo; a <= hi; a += (hi - lo) / 50.0) {
    const double worst_up = a * (1.0 + kMaxRelativeStepAbove16);
    const double worst_down = a / (1.0 + kMaxRelativeStepAbove16);
    // From inside, one step up cannot exceed the high edge by more than
    // the step itself AND one step cannot swap sides entirely.
    EXPECT_FALSE(a >= lo && a <= hi && worst_up < lo);
    EXPECT_FALSE(a >= lo && a <= hi && worst_down > hi);
    // A step from the low edge stays below the high edge.
    if (a == lo) EXPECT_LT(worst_up, hi);
  }
}

}  // namespace
}  // namespace lcosc::regulation
