// Power-up sequencing: POR -> charge pump -> driver enable -> NVM.
#include <gtest/gtest.h>

#include "common/error.h"
#include "regulation/startup_sequencer.h"

namespace lcosc::regulation {
namespace {

// Run the sequencer from power-on at t=0 until `duration`.
StartupPhase run_until(StartupSequencer& seq, double duration, double dt = 0.1e-6) {
  StartupPhase phase = seq.phase();
  for (double t = 0.0; t < duration; t += dt) phase = seq.step(t, dt);
  return phase;
}

TEST(StartupSequencer, FullSequenceOrder) {
  StartupSequencer seq;
  seq.power_on(0.0);
  run_until(seq, 50e-6);
  ASSERT_GE(seq.events().size(), 4u);
  EXPECT_EQ(seq.events()[0].phase, StartupPhase::PorDelay);
  EXPECT_EQ(seq.events()[1].phase, StartupPhase::ChargePumpRamp);
  EXPECT_EQ(seq.events()[2].phase, StartupPhase::DriverEnabled);
  EXPECT_EQ(seq.events()[3].phase, StartupPhase::Running);
  // Monotone event times.
  for (std::size_t i = 1; i < seq.events().size(); ++i) {
    EXPECT_GE(seq.events()[i].time, seq.events()[i - 1].time);
  }
}

TEST(StartupSequencer, TimingBudget) {
  StartupSequencer seq;
  seq.power_on(0.0);
  run_until(seq, 100e-6);
  const double total = seq.startup_time();
  ASSERT_GT(total, 0.0);
  // POR 2 us + pump ramp (tau 5 us to 80%: ~8 us) + NVM 8 us: tens of us.
  EXPECT_GT(total, 10e-6);
  EXPECT_LT(total, 40e-6);
}

TEST(StartupSequencer, DriverWaitsForChargePump) {
  StartupSequencerConfig cfg;
  cfg.charge_pump.startup_time = 20e-6;  // slow pump
  StartupSequencer seq(cfg);
  seq.power_on(0.0);
  run_until(seq, 5e-6);
  EXPECT_FALSE(seq.driver_enabled());
  EXPECT_EQ(seq.phase(), StartupPhase::ChargePumpRamp);
  run_until(seq, 120e-6);
  EXPECT_TRUE(seq.driver_enabled());
  // The pump rail really is near its target when the driver goes live.
  EXPECT_LT(seq.charge_pump_voltage(), 0.8 * cfg.charge_pump.target_voltage + 1e-3);
}

TEST(StartupSequencer, NvmDelayAfterEnable) {
  StartupSequencer seq;
  seq.power_on(0.0);
  run_until(seq, 100e-6);
  double t_enable = -1.0;
  double t_running = -1.0;
  for (const auto& e : seq.events()) {
    if (e.phase == StartupPhase::DriverEnabled) t_enable = e.time;
    if (e.phase == StartupPhase::Running) t_running = e.time;
  }
  ASSERT_GT(t_enable, 0.0);
  ASSERT_GT(t_running, 0.0);
  EXPECT_NEAR(t_running - t_enable, StartupSequencerConfig{}.nvm_delay, 0.5e-6);
}

TEST(StartupSequencer, PowerOffResetsEverything) {
  StartupSequencer seq;
  seq.power_on(0.0);
  run_until(seq, 50e-6);
  EXPECT_TRUE(seq.nvm_applied());
  seq.power_off(50e-6);
  EXPECT_EQ(seq.phase(), StartupPhase::PowerOff);
  EXPECT_FALSE(seq.driver_enabled());
  // The pump decays once disabled.
  for (double t = 50e-6; t < 80e-6; t += 0.1e-6) seq.step(t, 0.1e-6);
  EXPECT_GT(seq.charge_pump_voltage(), -0.1);
}

TEST(StartupSequencer, DoublePowerOnRejected) {
  StartupSequencer seq;
  seq.power_on(0.0);
  EXPECT_THROW(seq.power_on(1e-6), ConfigError);
}

TEST(StartupSequencer, PhaseNames) {
  EXPECT_EQ(to_string(StartupPhase::PowerOff), "power-off");
  EXPECT_EQ(to_string(StartupPhase::Running), "running");
}

TEST(StartupSequencer, StartupTimeUnreachedIsNegative) {
  StartupSequencer seq;
  seq.power_on(0.0);
  run_until(seq, 1e-6);  // still in POR
  EXPECT_LT(seq.startup_time(), 0.0);
}

}  // namespace
}  // namespace lcosc::regulation
