// The parallel campaign engine: order preservation, worker-count
// invariance (byte-identical campaign reports), exception propagation,
// nesting, and the thread pool itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/units.h"
#include "system/fmea_campaign.h"
#include "system/tolerance_analysis.h"

namespace lcosc {
namespace {

using namespace lcosc::literals;

TEST(Parallel, DefaultWorkerCountIsPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

TEST(Parallel, ResolveWorkerCountDefaultsToHardware) {
  EXPECT_EQ(resolve_worker_count(0, 4), 4u);
  EXPECT_EQ(resolve_worker_count(0, 1), 1u);
}

TEST(Parallel, ResolveWorkerCountFallsBackWhenHardwareUnknown) {
  // hardware_concurrency() may legitimately return 0.
  EXPECT_EQ(resolve_worker_count(0, 0), 1u);
  EXPECT_EQ(resolve_worker_count(64, 0), kMaxWorkerOversubscription);
}

TEST(Parallel, ResolveWorkerCountClampsEnvOverride) {
  // LCOSC_THREADS=64 on a 1-core host must not spawn 64 threads.
  EXPECT_EQ(resolve_worker_count(64, 1), 1u * kMaxWorkerOversubscription);
  EXPECT_EQ(resolve_worker_count(64, 4), 4u * kMaxWorkerOversubscription);
}

TEST(Parallel, ResolveWorkerCountHonoursModestOverride) {
  EXPECT_EQ(resolve_worker_count(2, 8), 2u);
  EXPECT_EQ(resolve_worker_count(64, 16), 64u);
}

TEST(Parallel, MapPreservesOrder) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::vector<std::size_t> out =
        parallel_map(1000, [](std::size_t i) { return i * i; }, workers);
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i) << "workers = " << workers;
    }
  }
}

TEST(Parallel, EmptyMapIsEmpty) {
  const std::vector<int> out = parallel_map(0, [](std::size_t) { return 1; }, 4);
  EXPECT_TRUE(out.empty());
}

TEST(Parallel, ForVisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(257);
  parallel_for(visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ExceptionFromWorkerPropagates) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_THROW(
        parallel_for(
            100,
            [](std::size_t i) {
              if (i == 37) throw std::runtime_error("index 37 failed");
            },
            workers),
        std::runtime_error)
        << "workers = " << workers;
  }
}

TEST(Parallel, LowestFailingIndexWins) {
  // Deterministic choice among several failures, for any worker count.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    try {
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 11 || i == 73) throw std::runtime_error(std::to_string(i));
          },
          workers);
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "11") << "workers = " << workers;
    }
  }
}

TEST(Parallel, AllIndicesRunDespiteEarlyFailure) {
  // The parallel contract attempts every index even when one throws.
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(
                   50,
                   [&](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 0) throw std::runtime_error("first");
                   },
                   1),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 50);
}

TEST(Parallel, NestedMapsRunCorrectly) {
  // Inner calls from pool workers fall back to inline execution instead
  // of deadlocking on the shared pool.
  const std::vector<std::size_t> out = parallel_map(
      16,
      [](std::size_t i) {
        const std::vector<std::size_t> inner =
            parallel_map(8, [&](std::size_t j) { return i * 8 + j; }, 4);
        std::size_t sum = 0;
        for (const std::size_t v : inner) sum += v;
        return sum;
      },
      4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t expected = 0;
    for (std::size_t j = 0; j < 8; ++j) expected += i * 8 + j;
    EXPECT_EQ(out[i], expected);
  }
}

TEST(Parallel, ThreadPoolExecutesSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      const std::lock_guard<std::mutex> lock(mutex);
      ++completed;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return completed == 10; }));
}

TEST(Parallel, ToleranceReportIdenticalForAnyWorkerCount) {
  // The campaign's per-sample Rng streams are forked from a never-advanced
  // master, so the report must be byte-identical for 1, 2 and N workers.
  system::ToleranceConfig cfg;
  cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.nominal.regulation.tick_period = 0.25e-3;
  cfg.samples = 8;
  cfg.run_duration = 10e-3;

  cfg.workers = 1;
  const system::ToleranceReport serial = run_tolerance_analysis(cfg);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    cfg.workers = workers;
    const system::ToleranceReport report = run_tolerance_analysis(cfg);
    ASSERT_EQ(report.samples.size(), serial.samples.size());
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
      const system::ToleranceSample& a = serial.samples[i];
      const system::ToleranceSample& b = report.samples[i];
      EXPECT_EQ(a.tank.inductance, b.tank.inductance);
      EXPECT_EQ(a.tank.capacitance1, b.tank.capacitance1);
      EXPECT_EQ(a.tank.capacitance2, b.tank.capacitance2);
      EXPECT_EQ(a.tank.series_resistance, b.tank.series_resistance);
      EXPECT_EQ(a.resonance_frequency, b.resonance_frequency);
      EXPECT_EQ(a.quality_factor, b.quality_factor);
      EXPECT_EQ(a.settled_code, b.settled_code);
      EXPECT_EQ(a.settled_amplitude, b.settled_amplitude);
      EXPECT_EQ(a.supply_current, b.supply_current);
      EXPECT_EQ(a.in_window, b.in_window);
    }
  }
}

TEST(Parallel, FmeaReportIdenticalForAnyWorkerCount) {
  system::FmeaCampaignConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.system.regulation.tick_period = 0.25e-3;
  cfg.system.waveform_decimation = 0;
  cfg.settle_time = 3e-3;
  cfg.observe_time = 4e-3;

  cfg.workers = 1;
  const system::FmeaReport serial = run_fmea_campaign(cfg);
  cfg.workers = 4;
  const system::FmeaReport parallel = run_fmea_campaign(cfg);

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const system::FmeaRow& a = serial.rows[i];
    const system::FmeaRow& b = parallel.rows[i];
    EXPECT_EQ(a.fault, b.fault);
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.expected_channel_hit, b.expected_channel_hit);
    EXPECT_EQ(a.safe_state_entered, b.safe_state_entered);
    EXPECT_EQ(a.detection_latency, b.detection_latency);
    EXPECT_EQ(a.final_code, b.final_code);
  }
}

}  // namespace
}  // namespace lcosc
