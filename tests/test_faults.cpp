// Internal fault taxonomy and the FaultBus hooks through the DAC, the
// driver, the detector chain, the regulation FSM and the safety
// controller.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dac/control_code.h"
#include "dac/exponential_dac.h"
#include "driver/oscillator_driver.h"
#include "faults/fault_bus.h"
#include "faults/internal_fault.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"
#include "safety/safety_controller.h"

namespace lcosc {
namespace {

using faults::DacBus;
using faults::FaultBus;
using faults::InternalFault;
using faults::InternalFaultKind;

TEST(InternalFaultTaxonomy, StandardListCoversEveryLineSegmentAndBlock) {
  const std::vector<InternalFault> list = faults::internal_fault_list();
  // (3 + 4 + 7) lines x stuck-0/1, 8 segments, 2 comparator levels,
  // rectifier, FSM, watchdog, gm collapse.
  EXPECT_EQ(list.size(), 2u * 14u + 8u + 6u);
  for (const InternalFault& f : list) {
    EXPECT_NE(f.kind, InternalFaultKind::SelfTestThrow);
    EXPECT_NE(f.kind, InternalFaultKind::SelfTestStall);
    EXPECT_NE(f.kind, InternalFaultKind::None);
    // Every fault either names an expected channel or explains its gap.
    if (faults::expected_detection(f) == faults::DetectionChannel::None) {
      EXPECT_FALSE(faults::gap_note(f).empty()) << faults::to_string(f);
    } else {
      EXPECT_TRUE(faults::gap_note(f).empty()) << faults::to_string(f);
    }
  }
}

TEST(InternalFaultTaxonomy, ExpectedDetectionMapping) {
  EXPECT_EQ(faults::expected_detection(faults::make_fault(InternalFaultKind::WindowStuckHigh)),
            faults::DetectionChannel::LowAmplitude);
  EXPECT_EQ(faults::expected_detection(faults::make_gm_collapse()),
            faults::DetectionChannel::MissingOscillation);
  EXPECT_EQ(faults::expected_detection(faults::make_fault(InternalFaultKind::WatchdogDead)),
            faults::DetectionChannel::None);
  EXPECT_EQ(faults::expected_detection(faults::make_line_stuck(DacBus::OscF, 3, true)),
            faults::DetectionChannel::None);
}

TEST(InternalFaultTaxonomy, Labels) {
  EXPECT_EQ(faults::to_string(faults::make_line_stuck(DacBus::OscF, 3, true)),
            "oscf<3>-stuck-1");
  EXPECT_EQ(faults::to_string(faults::make_line_stuck(DacBus::OscD, 2, false)),
            "oscd<2>-stuck-0");
  EXPECT_EQ(faults::to_string(faults::make_segment_dead(4)), "segment4-dead");
  EXPECT_EQ(faults::to_string(faults::make_fault(InternalFaultKind::WindowStuckHigh)),
            "window-comparator-stuck-high");
}

TEST(InternalFaultTaxonomy, FactoriesValidateArguments) {
  EXPECT_THROW(faults::make_line_stuck(DacBus::OscD, 3, true), ConfigError);
  EXPECT_THROW(faults::make_segment_dead(8), ConfigError);
  EXPECT_THROW(faults::make_gm_collapse(1.5), ConfigError);
}

TEST(FaultBusTest, StuckLineMasksApplyOnlyToTheirBus) {
  FaultBus bus;
  EXPECT_FALSE(bus.active());
  bus.inject(faults::make_line_stuck(DacBus::OscF, 2, true));
  EXPECT_TRUE(bus.active());
  EXPECT_EQ(bus.apply_stuck(DacBus::OscF, 0b0000000), 0b0000100);
  EXPECT_EQ(bus.apply_stuck(DacBus::OscD, 0b000), 0b000);  // other bus untouched
  bus.inject(faults::make_line_stuck(DacBus::OscE, 0, false));
  EXPECT_EQ(bus.apply_stuck(DacBus::OscE, 0b1111), 0b1110);
  EXPECT_EQ(bus.apply_stuck(DacBus::OscF, 0b1111111), 0b1111111);  // previous fault cleared
  bus.clear();
  EXPECT_FALSE(bus.active());
  EXPECT_EQ(bus.apply_stuck(DacBus::OscE, 0b1111), 0b1111);
}

TEST(FaultBusTest, FlagKindsAnswerFromTheInjectedFault) {
  FaultBus bus;
  EXPECT_FALSE(bus.rectifier_dead());
  EXPECT_FALSE(bus.fsm_frozen());
  EXPECT_FALSE(bus.watchdog_dead());
  EXPECT_FALSE(bus.stalled());
  bus.inject(faults::make_fault(InternalFaultKind::RectifierDead));
  EXPECT_TRUE(bus.rectifier_dead());
  bus.inject(faults::make_fault(InternalFaultKind::FsmFrozen));
  EXPECT_TRUE(bus.fsm_frozen());
  EXPECT_FALSE(bus.rectifier_dead());
  bus.inject(faults::make_fault(InternalFaultKind::WatchdogDead));
  EXPECT_TRUE(bus.watchdog_dead());
  bus.inject(faults::make_fault(InternalFaultKind::SelfTestStall));
  EXPECT_TRUE(bus.stalled());
  bus.inject(faults::make_gm_collapse(0.1));
  EXPECT_DOUBLE_EQ(bus.gm_scale(), 0.1);
  bus.inject(faults::make_fault(InternalFaultKind::WindowStuckHigh));
  EXPECT_EQ(bus.window_override(), faults::WindowOverride::ForceAbove);
  bus.inject(faults::make_fault(InternalFaultKind::WindowStuckLow));
  EXPECT_EQ(bus.window_override(), faults::WindowOverride::ForceBelow);
  bus.inject(faults::make_fault(InternalFaultKind::None));
  EXPECT_FALSE(bus.active());
}

TEST(FaultBusTest, RawPrescalerCoversNonThermometerPatterns) {
  // Physical mirror ratios 1 + b0 + 2 b1 + 4 b2; agrees with the healthy
  // decoder on the four thermometer codes.
  EXPECT_EQ(dac::prescale_factor_raw(0b000), 1);
  EXPECT_EQ(dac::prescale_factor_raw(0b001), 2);
  EXPECT_EQ(dac::prescale_factor_raw(0b011), 4);
  EXPECT_EQ(dac::prescale_factor_raw(0b111), 8);
  // Faulted (non-thermometer) patterns do not throw.
  EXPECT_EQ(dac::prescale_factor_raw(0b010), 3);
  EXPECT_EQ(dac::prescale_factor_raw(0b100), 5);
  EXPECT_EQ(dac::prescale_factor_raw(0b101), 6);
  EXPECT_EQ(dac::prescale_factor_raw(0b110), 7);
}

TEST(FaultedDac, InactiveOrNoneFaultMatchesHealthyTransfer) {
  dac::PwlExponentialDac healthy;
  dac::PwlExponentialDac faulted;
  FaultBus bus;
  faulted.attach_fault_bus(&bus);
  bus.inject(faults::make_fault(InternalFaultKind::None));
  for (int code = 0; code < kDacCodeCount; ++code) {
    EXPECT_EQ(faulted.multiplication(code), healthy.multiplication(code)) << code;
  }
}

TEST(FaultedDac, StuckOscFLineReshapesTheTransfer) {
  dac::PwlExponentialDac dut;
  FaultBus bus;
  dut.attach_fault_bus(&bus);
  bus.inject(faults::make_line_stuck(DacBus::OscF, 0, true));
  // Code 16 (segment 1, OscF = 0): bit 0 stuck high adds one unit.
  EXPECT_EQ(dut.multiplication(16), dac::multiplication_factor(16) + 1);
  // Code 17 (OscF = 1): the stuck line is already set, no change.
  EXPECT_EQ(dut.multiplication(17), dac::multiplication_factor(17));
}

TEST(FaultedDac, StuckOscDLineUsesRawPrescalerInsteadOfThrowing) {
  dac::PwlExponentialDac dut;
  FaultBus bus;
  dut.attach_fault_bus(&bus);
  bus.inject(faults::make_line_stuck(DacBus::OscD, 2, true));
  // Code 16: healthy OscD=000 -> faulted 100 (not a thermometer code);
  // raw prescale 5 instead of 1.
  EXPECT_EQ(dut.multiplication(16), 5 * dac::multiplication_factor(16));
}

TEST(FaultedDac, DeadSegmentZeroesTheBinaryContribution) {
  dac::PwlExponentialDac dut;
  FaultBus bus;
  dut.attach_fault_bus(&bus);
  bus.inject(faults::make_segment_dead(2));
  // Inside segment 2 the OscF bank contributes nothing: transfer is flat
  // at prescale * fixed units.
  EXPECT_EQ(dut.multiplication(32), dut.multiplication(47));
  EXPECT_LT(dut.multiplication(47), dac::multiplication_factor(47));
  // Other segments unaffected.
  EXPECT_EQ(dut.multiplication(16), dac::multiplication_factor(16));
}

TEST(FaultedDriver, GmCollapseScalesTransconductance) {
  driver::OscillatorDriver healthy;
  driver::OscillatorDriver dut;
  FaultBus bus;
  dut.attach_fault_bus(&bus);
  healthy.set_code(45);
  dut.set_code(45);
  EXPECT_DOUBLE_EQ(dut.equivalent_gm(), healthy.equivalent_gm());
  bus.inject(faults::make_gm_collapse(0.05));
  EXPECT_DOUBLE_EQ(dut.equivalent_gm(), 0.05 * healthy.equivalent_gm());
}

TEST(FaultedDriver, StuckOscELineChangesActiveStages) {
  driver::OscillatorDriver dut;
  FaultBus bus;
  dut.attach_fault_bus(&bus);
  dut.set_code(0);  // healthy OscE = 0000 -> 1 stage
  const double gm_one_stage = dut.equivalent_gm();
  bus.inject(faults::make_line_stuck(DacBus::OscE, 3, true));
  // Bit 3 stuck high adds 4 stages.
  EXPECT_DOUBLE_EQ(dut.equivalent_gm(), 5.0 * gm_one_stage);
}

// Feed a differential sinusoid of amplitude `a` for `steps` samples; the
// filtered rectified mean settles to a/pi (mid-window at the target).
void drive_sinusoid(regulation::AmplitudeDetector& det, double a, int steps) {
  const double dt = 1e-8;
  for (int i = 0; i < steps; ++i) {
    const double v = 0.5 * a * std::sin(kTwoPi * 4e6 * (i * dt));
    det.step(dt, v, -v);
  }
}

TEST(FaultedDetector, WindowOverrideForcesTheReportedState) {
  regulation::AmplitudeDetector det;
  FaultBus bus;
  det.attach_fault_bus(&bus);
  // Settle the rectifier output inside the window.
  drive_sinusoid(det, det.config().target_amplitude, 20000);
  EXPECT_EQ(det.window_state(), devices::WindowState::Inside);
  bus.inject(faults::make_fault(InternalFaultKind::WindowStuckHigh));
  EXPECT_EQ(det.window_state(), devices::WindowState::Above);
  bus.inject(faults::make_fault(InternalFaultKind::WindowStuckLow));
  EXPECT_EQ(det.window_state(), devices::WindowState::Below);
  bus.clear();
  EXPECT_EQ(det.window_state(), devices::WindowState::Inside);
}

TEST(FaultedDetector, DeadRectifierDecaysVdc1ToZero) {
  regulation::AmplitudeDetector det;
  FaultBus bus;
  det.attach_fault_bus(&bus);
  drive_sinusoid(det, det.config().target_amplitude, 20000);
  EXPECT_GT(det.vdc1(), det.vr3());
  bus.inject(faults::make_fault(InternalFaultKind::RectifierDead));
  // Same pin swing, but the rectifier no longer sees it: VDC1 decays.
  drive_sinusoid(det, det.config().target_amplitude, 20000);
  EXPECT_LT(det.vdc1(), 0.05 * det.vr3());
  EXPECT_EQ(det.window_state(), devices::WindowState::Below);
}

TEST(FaultedFsm, FrozenFsmLatchesTheCode) {
  regulation::RegulationFsm fsm;
  FaultBus bus;
  fsm.attach_fault_bus(&bus);
  fsm.por_reset();
  const int startup = fsm.code();
  bus.inject(faults::make_fault(InternalFaultKind::FsmFrozen));
  EXPECT_EQ(fsm.tick(devices::WindowState::Below), startup);
  EXPECT_EQ(fsm.tick(devices::WindowState::Above), startup);
  fsm.apply_nvm_preset();
  EXPECT_EQ(fsm.code(), startup);
  fsm.enter_safe_state();
  EXPECT_EQ(fsm.mode(), regulation::RegulationMode::SafeState);
  EXPECT_EQ(fsm.code(), startup);  // reaction cannot move the stuck register
  bus.clear();
  fsm.clear_safe_state();
  EXPECT_EQ(fsm.tick(devices::WindowState::Below), startup + 1);
}

TEST(FaultedSafety, DeadWatchdogMasksMissingOscillation) {
  safety::SafetyController healthy;
  safety::SafetyController dut;
  FaultBus bus;
  dut.attach_fault_bus(&bus);
  bus.inject(faults::make_fault(InternalFaultKind::WatchdogDead));
  healthy.reset(0.0);
  dut.reset(0.0);
  // Flat differential voltage well past the watchdog timeout.
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += 1e-7;
    healthy.step(t, 1e-7, 0.0, 0.0);
    dut.step(t, 1e-7, 0.0, 0.0);
  }
  EXPECT_TRUE(healthy.flags().missing_oscillation);
  EXPECT_FALSE(dut.flags().missing_oscillation);
  EXPECT_FALSE(dut.safe_state_requested());
}

}  // namespace
}  // namespace lcosc
