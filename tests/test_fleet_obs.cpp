// Unit contracts of the fleet telemetry pipeline (DESIGN.md §15):
// metrics snapshot round-trip and order-independent merge, histogram
// quantile interpolation, trace JSONL torn-tail tolerance, the merged
// fleet Chrome trace (valid JSON, per-pid monotone timestamps), crash
// forensics rows, and the shard flush-file naming.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_validator.h"
#include "obs/metrics.h"
#include "obs/snapshot_io.h"
#include "obs/span_tracer.h"
#include "service/flat_json.h"
#include "service/telemetry_merge.h"

namespace lcosc::obs {
namespace {

namespace fs = std::filesystem;
using lcosc::testutil::JsonValidator;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class FleetObsFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lcosc_obs_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// --- histogram quantiles ---------------------------------------------------

HistogramSnapshot histogram(std::vector<double> bounds, std::vector<std::uint64_t> counts,
                            double min, double max) {
  HistogramSnapshot h;
  h.name = "h";
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  for (const std::uint64_t c : h.counts) h.count += c;
  h.min = min;
  h.max = max;
  return h;
}

TEST(FleetObsQuantile, EmptyHistogramIsNaN) {
  HistogramSnapshot h;
  h.name = "empty";
  h.bounds = {1.0, 2.0};
  h.counts = {0, 0, 0};
  EXPECT_TRUE(std::isnan(histogram_quantile(h, 0.5)));
  EXPECT_TRUE(std::isnan(histogram_quantile(HistogramSnapshot{}, 0.99)));
}

TEST(FleetObsQuantile, SingleValuedHistogramReturnsThatValueExactly) {
  // Every sample equal: min == max pins every quantile to the value, no
  // matter which bucket holds it or how wide that bucket is.
  const HistogramSnapshot h = histogram({1.0, 10.0, 100.0}, {0, 5, 0, 0}, 7.5, 7.5);
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram_quantile(h, q), 7.5) << "q=" << q;
  }
}

TEST(FleetObsQuantile, InterpolatesInsideABucket) {
  // 10 samples uniformly inside (1, 2]: target rank 5 of 10 lands mid
  // bucket; edges are bounds[0]=1 and bounds[1]=2.
  const HistogramSnapshot h = histogram({1.0, 2.0}, {0, 10, 0}, 1.05, 1.95);
  const double p50 = histogram_quantile(h, 0.5);
  EXPECT_DOUBLE_EQ(p50, 1.5);
  // Quantiles are monotone in q.
  EXPECT_LE(histogram_quantile(h, 0.25), p50);
  EXPECT_LE(p50, histogram_quantile(h, 0.75));
  // And clamped into the observed range at the extremes.
  EXPECT_GE(histogram_quantile(h, 0.0), h.min);
  EXPECT_LE(histogram_quantile(h, 1.0), h.max);
}

TEST(FleetObsQuantile, SaturatedOverflowBucketInterpolatesToMax) {
  // Everything above the last bound: the overflow bucket's edges are
  // bounds.back() and the observed max -- finite, no divergence.
  const HistogramSnapshot h = histogram({1.0, 2.0}, {0, 0, 8}, 3.0, 11.0);
  const double p50 = histogram_quantile(h, 0.5);
  EXPECT_GE(p50, 3.0);
  EXPECT_LE(p50, 11.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 11.0);
  EXPECT_LE(histogram_quantile(h, 0.25), histogram_quantile(h, 0.99));
}

TEST(FleetObsQuantile, QOutsideZeroOneIsClamped) {
  const HistogramSnapshot h = histogram({10.0}, {4, 0}, 2.0, 8.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, -3.0), histogram_quantile(h, 0.0));
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 42.0), histogram_quantile(h, 1.0));
}

// --- metrics snapshot round-trip and merge ---------------------------------

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot s;
  s.counters = {{"a.count", 3}, {"z.count", 41}};
  s.gauges = {{"pool.busy", 2.0, 5.0}};
  s.histograms = {histogram({0.5, 1.0, 2.0}, {1, 2, 0, 4}, 0.25, 9.0)};
  s.histograms[0].name = "case.wall_ms";
  return s;
}

TEST(FleetObsSnapshotIo, ToJsonRoundTripsThroughTheParser) {
  const MetricsSnapshot original = sample_snapshot();
  MetricsSnapshot parsed;
  ASSERT_TRUE(parse_metrics_snapshot(original.to_json(), parsed));
  EXPECT_EQ(parsed.counters, original.counters);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_EQ(parsed.gauges[0], original.gauges[0]);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0], original.histograms[0]);
  // And the canonical byte form is reproduced exactly.
  EXPECT_EQ(parsed.to_json(), original.to_json());
}

TEST(FleetObsSnapshotIo, EmptyHistogramParsesAsMergeIdentity) {
  // to_json omits min/max when count == 0; the parser must hand back the
  // merge identities so an idle worker's file folds away.
  MetricsSnapshot s;
  s.histograms = {histogram({1.0}, {0, 0}, 0.0, 0.0)};
  s.histograms[0].name = "idle";
  MetricsSnapshot parsed;
  ASSERT_TRUE(parse_metrics_snapshot(s.to_json(), parsed));
  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].min, std::numeric_limits<double>::infinity());
  EXPECT_EQ(parsed.histograms[0].max, -std::numeric_limits<double>::infinity());
}

TEST(FleetObsSnapshotIo, MalformedInputIsRejectedNotCrashed) {
  MetricsSnapshot out;
  EXPECT_FALSE(parse_metrics_snapshot("", out));
  EXPECT_FALSE(parse_metrics_snapshot("not json", out));
  EXPECT_FALSE(parse_metrics_snapshot(R"({"counters": {"a": )", out));
  EXPECT_FALSE(parse_metrics_snapshot(R"({"unknown_section": {}})", out));
  // A counts/bounds length mismatch is structural corruption.
  EXPECT_FALSE(parse_metrics_snapshot(
      R"({"histograms": {"h": {"bounds": [1], "counts": [1], "count": 1}}})", out));
  EXPECT_TRUE(out.counters.empty());
}

TEST(FleetObsSnapshotIo, MergeIsOrderIndependentAndByteStable) {
  MetricsSnapshot a;
  a.counters = {{"cases", 4}, {"solves", 100}};
  a.histograms = {histogram({1.0, 2.0}, {1, 2, 1}, 0.5, 3.0)};
  a.histograms[0].name = "lat";
  MetricsSnapshot b;
  b.counters = {{"cases", 2}, {"retries", 1}};
  b.histograms = {histogram({1.0, 2.0}, {0, 3, 2}, 0.9, 7.0)};
  b.histograms[0].name = "lat";
  MetricsSnapshot c;  // an idle worker
  c.histograms = {histogram({1.0, 2.0}, {0, 0, 0},
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity())};
  c.histograms[0].name = "lat";

  const MetricsSnapshot abc = merge_metrics_snapshots({a, b, c});
  const MetricsSnapshot cba = merge_metrics_snapshots({c, b, a});
  EXPECT_EQ(abc.to_json(), cba.to_json());

  ASSERT_EQ(abc.counters.size(), 3u);  // name-sorted: cases, retries, solves
  EXPECT_EQ(abc.counters[0], (CounterSnapshot{"cases", 6}));
  EXPECT_EQ(abc.counters[1], (CounterSnapshot{"retries", 1}));
  EXPECT_EQ(abc.counters[2], (CounterSnapshot{"solves", 100}));
  ASSERT_EQ(abc.histograms.size(), 1u);
  EXPECT_EQ(abc.histograms[0].counts, (std::vector<std::uint64_t>{1, 5, 3}));
  EXPECT_EQ(abc.histograms[0].count, 9u);
  EXPECT_DOUBLE_EQ(abc.histograms[0].min, 0.5);
  EXPECT_DOUBLE_EQ(abc.histograms[0].max, 7.0);
  EXPECT_TRUE(abc.gauges.empty());  // gauges are per-process state: dropped
}

TEST(FleetObsSnapshotIo, GaugesAreDroppedByTheMerge) {
  const MetricsSnapshot merged = merge_metrics_snapshots({sample_snapshot()});
  EXPECT_TRUE(merged.gauges.empty());
  EXPECT_EQ(merged.counters.size(), 2u);
}

TEST_F(FleetObsFiles, SnapshotWriteIsAtomicAndReadable) {
  const std::string file = path("nested/dir/metrics.json");
  ASSERT_TRUE(write_metrics_snapshot_json(sample_snapshot(), file));
  MetricsSnapshot parsed;
  ASSERT_TRUE(parse_metrics_snapshot(read_file(file), parsed));
  EXPECT_EQ(parsed.to_json(), sample_snapshot().to_json());
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos) << entry.path();
  }
}

// --- trace JSONL -----------------------------------------------------------

std::vector<TraceEventRecord> sample_events() {
  return {
      {"case \"7\"", 'X', 0, 100.0, 50.0},
      {"solve", 'X', 1, 120.5, 10.25},
      {"trip", 'i', 0, 130.0, 0.0},
  };
}

TEST_F(FleetObsFiles, TraceJsonlRoundTripsIncludingEscapes) {
  const std::string file = path("t.jsonl");
  ASSERT_TRUE(write_trace_jsonl(sample_events(), file));
  std::vector<TraceEventRecord> parsed;
  ASSERT_TRUE(parse_trace_jsonl(read_file(file), parsed));
  EXPECT_EQ(parsed, sample_events());
}

TEST_F(FleetObsFiles, TornTailLosesOneLineNotTheFile) {
  const std::string file = path("t.jsonl");
  ASSERT_TRUE(write_trace_jsonl(sample_events(), file));
  // Simulate a writer killed mid-line.
  std::ofstream out(file, std::ios::binary | std::ios::app);
  out << "{\"name\": \"torn";
  out.close();

  std::vector<TraceEventRecord> parsed;
  ASSERT_TRUE(parse_trace_jsonl(read_file(file), parsed));
  EXPECT_EQ(parsed, sample_events());

  // All-garbage input reports failure instead of an empty success.
  parsed.clear();
  EXPECT_FALSE(parse_trace_jsonl("garbage\nmore garbage", parsed));
  EXPECT_TRUE(parse_trace_jsonl("", parsed));
}

TEST_F(FleetObsFiles, FleetChromeTraceIsValidJsonWithPerPidMonotoneTimestamps) {
  // Deliberately unsorted events per process: the writer must sort.
  FleetTraceProcess p0{0, "shard 0 of 2", {{"b", 'X', 0, 50.0, 5.0},
                                           {"a", 'X', 0, 10.0, 80.0},
                                           {"nest", 'X', 1, 10.0, 20.0}}};
  FleetTraceProcess p1{1, "shard 1 of 2", {{"c", 'i', 0, 7.0, 0.0}}};
  const std::string file = path("trace.json");
  ASSERT_TRUE(write_fleet_chrome_trace({p1, p0}, file, 3));

  const std::string text = read_file(file);
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("shard 0 of 2"), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\": 3"), std::string::npos);

  // Per-pid monotonicity: scan the per-line event stream the writer
  // emits, tracking the last ts of each pid.
  std::map<int, double> last_ts;
  std::istringstream lines(text);
  std::string line;
  int events = 0;
  while (std::getline(lines, line)) {
    int pid = -1;
    double ts = -1.0;
    const std::size_t pid_at = line.find("\"pid\": ");
    const std::size_t ts_at = line.find("\"ts\": ");
    if (pid_at == std::string::npos || ts_at == std::string::npos) continue;
    pid = std::stoi(line.substr(pid_at + 7));
    ts = std::stod(line.substr(ts_at + 6));
    ++events;
    const auto it = last_ts.find(pid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << line;
    }
    last_ts[pid] = ts;
  }
  EXPECT_EQ(events, 4);
  // Tie at ts=10: the enclosing (longer) span must come first so
  // Perfetto nests the shorter one inside it.
  EXPECT_LT(text.find("\"name\": \"a\""), text.find("\"name\": \"nest\""));
}

// --- shard file naming and forensics ---------------------------------------

TEST(FleetObsNaming, ShardTelemetryBaseEncodesShardAndAttempt) {
  using service::shard_telemetry_base;
  EXPECT_EQ(shard_telemetry_base(3, 8, 1), "shard_3_of_8.a1");
  EXPECT_EQ(shard_telemetry_base(0, 1, 12), "shard_0_of_1.a12");
  EXPECT_NE(shard_telemetry_base(2, 4, 1), shard_telemetry_base(2, 4, 2))
      << "restarted workers must never overwrite a predecessor's flush";
}

TEST(FleetObsNaming, WallMetricSuffixSelectsSummaryNotMetrics) {
  EXPECT_TRUE(service::is_wall_metric("service.case.wall_ms"));
  EXPECT_FALSE(service::is_wall_metric("internal_fmea.detection_latency_ms"));
  EXPECT_FALSE(service::is_wall_metric("wall_ms"));  // needs the dot
  EXPECT_FALSE(service::is_wall_metric("service.cases.computed"));
}

TEST(FleetObsNaming, SignalNamesAreConventional) {
  EXPECT_EQ(service::signal_name(SIGKILL), "SIGKILL");
  EXPECT_EQ(service::signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(service::signal_name(64), "signal_64");
}

TEST_F(FleetObsFiles, ForensicsRowsAppendAsParseableFlatJsonl) {
  const std::string ckpt = path("job");
  const std::string file = service::forensics_path(ckpt);

  service::ForensicsRow row;
  row.ts_unix_ms = 1754650000000;
  row.shard = 2;
  row.attempt = 3;
  row.pid = 4242;
  row.event = "crash";
  row.exit_code = 137;
  row.signal = SIGKILL;
  row.wall_s = 1.25;
  row.cpu_user_s = 0.5;
  row.cpu_sys_s = 0.125;
  row.max_rss_kb = 51200;
  row.last_checkpoint_index = 17;
  row.checkpoint_records = 18;
  row.stderr_tail = "boom\nline \"two\"";
  ASSERT_TRUE(service::append_forensics_row(file, row));
  row.event = "exit";
  row.signal = 0;
  row.exit_code = 0;
  ASSERT_TRUE(service::append_forensics_row(file, row));

  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    // Every row is a flat object the service-side FlatJsonParser reads.
    std::map<std::string, std::string> fields;
    service::FlatJsonParser(line).context("forensics").parse_object(
        [&](const std::string& key, const std::string& value, bool) {
          fields[key] = value;
        });
    EXPECT_EQ(fields.at("shard"), "2");
    EXPECT_EQ(fields.at("attempt"), "3");
    EXPECT_EQ(fields.at("last_checkpoint_index"), "17");
    if (rows == 1) {
      EXPECT_EQ(fields.at("event"), "crash");
      EXPECT_EQ(fields.at("signal_name"), "SIGKILL");
      EXPECT_EQ(fields.at("exit_code"), "137");
      EXPECT_EQ(fields.at("stderr_tail"), "boom\nline \"two\"");
    } else {
      EXPECT_EQ(fields.at("event"), "exit");
      EXPECT_EQ(fields.at("signal_name"), "");
    }
  }
  EXPECT_EQ(rows, 2);
}

// --- fleet merge over flush files ------------------------------------------

TEST_F(FleetObsFiles, FleetMergeIsShardLayoutIndependentAndSkipsWallMetrics) {
  // The same logical fleet flushed as 2 shards vs 3 shards (one of them
  // restarted, so two attempts): merged metrics.json must be
  // byte-identical, and the wall histogram must surface only in the
  // summary.
  auto snapshot_with = [](std::uint64_t cases, std::uint64_t solves,
                          std::vector<std::uint64_t> wall_counts, double wmin, double wmax) {
    MetricsSnapshot s;
    s.counters = {{"service.cases.computed", cases}, {"solver.steps", solves}};
    s.gauges = {{"pool.live", 1.0, 2.0}};
    s.histograms = {histogram({1.0, 10.0}, std::move(wall_counts), wmin, wmax)};
    s.histograms[0].name = "service.case.wall_ms";
    return s;
  };

  const std::string dir_a = path("a/telemetry");
  ASSERT_TRUE(write_metrics_snapshot_json(snapshot_with(4, 400, {1, 2, 1}, 0.5, 20.0),
                                          dir_a + "/shard_0_of_2.a1.metrics.json"));
  ASSERT_TRUE(write_metrics_snapshot_json(snapshot_with(2, 200, {0, 1, 1}, 2.0, 30.0),
                                          dir_a + "/shard_1_of_2.a1.metrics.json"));

  const std::string dir_b = path("b/telemetry");
  ASSERT_TRUE(write_metrics_snapshot_json(snapshot_with(1, 150, {1, 0, 0}, 0.5, 0.9),
                                          dir_b + "/shard_0_of_3.a1.metrics.json"));
  ASSERT_TRUE(write_metrics_snapshot_json(snapshot_with(3, 250, {0, 2, 1}, 1.5, 20.0),
                                          dir_b + "/shard_1_of_3.a1.metrics.json"));
  ASSERT_TRUE(write_metrics_snapshot_json(snapshot_with(1, 100, {0, 1, 0}, 2.0, 2.0),
                                          dir_b + "/shard_2_of_3.a1.metrics.json"));
  ASSERT_TRUE(write_metrics_snapshot_json(snapshot_with(1, 100, {0, 0, 1}, 30.0, 30.0),
                                          dir_b + "/shard_2_of_3.a2.metrics.json"));
  // An unrelated file must be ignored, not merged.
  std::ofstream(dir_b + "/notes.txt") << "not telemetry\n";

  const service::FleetTelemetry a = service::merge_fleet_metrics(dir_a);
  const service::FleetTelemetry b = service::merge_fleet_metrics(dir_b);
  EXPECT_EQ(a.metrics_files, 2);
  EXPECT_EQ(b.metrics_files, 4);
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
  EXPECT_TRUE(a.metrics.gauges.empty());
  EXPECT_TRUE(a.metrics.histograms.empty());  // the only histogram is wall-clock
  ASSERT_EQ(a.wall_histograms.size(), 1u);
  EXPECT_EQ(a.wall_histograms[0].count, 6u);
  EXPECT_EQ(a.wall_histograms[0].count, b.wall_histograms[0].count);
  const CounterSnapshot* cases = a.metrics.find_counter("service.cases.computed");
  ASSERT_NE(cases, nullptr);
  EXPECT_EQ(cases->value, 6u);
}

TEST_F(FleetObsFiles, MergeFleetTelemetryWithoutShardFilesWritesNothing) {
  // Telemetry off: only forensics exists in the directory; the merge must
  // leave no metrics/trace/summary artifacts behind.
  const std::string ckpt = path("job");
  service::ForensicsRow row;
  row.event = "exit";
  ASSERT_TRUE(service::append_forensics_row(service::forensics_path(ckpt), row));

  service::FleetSummaryInfo info;
  info.campaign = "tolerance";
  EXPECT_FALSE(service::merge_fleet_telemetry(ckpt, info));
  const std::string tdir = service::telemetry_dir(ckpt);
  EXPECT_FALSE(fs::exists(tdir + "/metrics.json"));
  EXPECT_FALSE(fs::exists(tdir + "/trace.json"));
  EXPECT_FALSE(fs::exists(tdir + "/summary.json"));
}

TEST_F(FleetObsFiles, SummaryJsonCarriesQuantilesAndShardCounters) {
  const std::string ckpt = path("job");
  const std::string tdir = service::telemetry_dir(ckpt);

  MetricsSnapshot s;
  s.counters = {{"service.cases.computed", 6}};
  s.histograms = {histogram({1.0, 10.0, 100.0}, {2, 3, 1, 0}, 0.5, 42.0)};
  s.histograms[0].name = "service.case.wall_ms";
  ASSERT_TRUE(write_metrics_snapshot_json(s, tdir + "/shard_0_of_1.a1.metrics.json"));
  ASSERT_TRUE(write_trace_jsonl(sample_events(), tdir + "/shard_0_of_1.a1.trace.jsonl"));

  service::FleetSummaryInfo info;
  info.campaign = "tolerance";
  info.cases_total = 6;
  info.shards = 1;
  info.per_shard = {{0, 0, 6, 2, 1, 0, 6, 1.5, true}};
  ASSERT_TRUE(service::merge_fleet_telemetry(ckpt, info));

  const std::string summary = read_file(tdir + "/summary.json");
  EXPECT_TRUE(JsonValidator(summary).valid()) << summary;
  EXPECT_NE(summary.find("\"service.case.wall_ms\""), std::string::npos);
  EXPECT_NE(summary.find("\"p50\""), std::string::npos);
  EXPECT_NE(summary.find("\"p95\""), std::string::npos);
  EXPECT_NE(summary.find("\"p99\""), std::string::npos);
  EXPECT_NE(summary.find("\"campaign\": \"tolerance\""), std::string::npos);
  EXPECT_NE(summary.find("\"restarts\": 1"), std::string::npos);

  // The deterministic artifact must not contain the wall-clock histogram.
  const std::string metrics = read_file(tdir + "/metrics.json");
  EXPECT_TRUE(JsonValidator(metrics).valid());
  EXPECT_EQ(metrics.find("wall_ms"), std::string::npos);
  EXPECT_NE(metrics.find("service.cases.computed"), std::string::npos);

  // And the merged trace is a valid single-timeline Chrome trace.
  const std::string trace = read_file(tdir + "/trace.json");
  EXPECT_TRUE(JsonValidator(trace).valid());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace lcosc::obs
