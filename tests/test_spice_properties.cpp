// Physics-law property tests of the MNA solver on randomized networks:
// superposition, reciprocity and power balance must hold for any linear
// circuit the generator produces.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"

namespace lcosc::spice {
namespace {

// Build a random connected resistor network over `nodes` nodes (node 0 is
// ground), with a spanning chain plus extra random edges.
void build_random_resistor_network(Circuit& c, Rng& rng, int nodes, int extra_edges) {
  auto node_name = [](int i) { return i == 0 ? std::string("0") : "n" + std::to_string(i); };
  int edge = 0;
  for (int i = 1; i <= nodes; ++i) {
    c.resistor("Rchain" + std::to_string(edge++), node_name(i - 1), node_name(i),
               rng.uniform(100.0, 10e3));
  }
  for (int e = 0; e < extra_edges; ++e) {
    const int a = rng.uniform_int(0, nodes);
    int b = rng.uniform_int(0, nodes);
    if (a == b) b = (b + 1) % (nodes + 1);
    c.resistor("Rx" + std::to_string(edge++), node_name(a), node_name(b),
               rng.uniform(100.0, 10e3));
  }
}

TEST(SpiceProperties, SuperpositionHolds) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = rng.uniform_int(4, 9);

    auto solve_with = [&](double i1, double i2, Vector& out) {
      Circuit c;
      Rng net_rng(1000 + trial);  // identical network each time
      build_random_resistor_network(c, net_rng, nodes, nodes);
      c.current_source("I1", "0", "n1", i1);
      c.current_source("I2", "0", "n" + std::to_string(nodes), i2);
      const DcSolution s = solve_dc(c);
      ASSERT_TRUE(s.converged);
      out = s.x;
    };

    Vector both, only1, only2;
    solve_with(1e-3, 2e-3, both);
    solve_with(1e-3, 0.0, only1);
    solve_with(0.0, 2e-3, only2);
    ASSERT_EQ(both.size(), only1.size());
    for (std::size_t i = 0; i < both.size(); ++i) {
      EXPECT_NEAR(both[i], only1[i] + only2[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(SpiceProperties, ReciprocityHolds) {
  // For a passive resistive network: V at j due to a current source at i
  // equals V at i due to the same source at j.
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = rng.uniform_int(4, 9);
    const int inject = 1;
    const int measure = nodes;

    auto transfer = [&](int src_node, int probe_node) {
      Circuit c;
      Rng net_rng(2000 + trial);
      build_random_resistor_network(c, net_rng, nodes, nodes);
      c.current_source("Isrc", "0", "n" + std::to_string(src_node), 1e-3);
      const DcSolution s = solve_dc(c);
      EXPECT_TRUE(s.converged);
      return s.voltage(c, "n" + std::to_string(probe_node));
    };

    EXPECT_NEAR(transfer(inject, measure), transfer(measure, inject), 1e-9)
        << "trial " << trial;
  }
}

TEST(SpiceProperties, PowerBalanceHolds) {
  // Total power delivered by sources equals total dissipated in resistors.
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = rng.uniform_int(4, 8);
    Circuit c;
    Rng net_rng(3000 + trial);
    build_random_resistor_network(c, net_rng, nodes, nodes);
    auto& v1 = c.voltage_source("V1", "n1", "0", rng.uniform(1.0, 10.0));
    c.current_source("I1", "0", "n" + std::to_string(nodes), rng.uniform(1e-4, 5e-3));
    const DcSolution s = solve_dc(c);
    ASSERT_TRUE(s.converged);

    StampContext ctx;
    double dissipated = 0.0;
    double delivered = 0.0;
    for (const auto& e : c.elements()) {
      if (const auto* r = dynamic_cast<const Resistor*>(e.get())) {
        const double i = r->branch_current(s.x, ctx);
        dissipated += i * i * r->resistance();
      } else if (const auto* vs = dynamic_cast<const VoltageSource*>(e.get())) {
        // Current INTO the + terminal is negative when sourcing power.
        delivered += -vs->branch_current(s.x, ctx) * vs->value();
      } else if (const auto* is = dynamic_cast<const CurrentSource*>(e.get())) {
        delivered += is->value() * s.voltage(c, "n" + std::to_string(nodes));
      }
    }
    (void)v1;
    EXPECT_NEAR(dissipated, delivered, std::max(1e-9, dissipated * 1e-6))
        << "trial " << trial;
  }
}

TEST(SpiceProperties, GroundedNetworkHasBoundedVoltages) {
  // No node in a passive divider network can exceed the source voltage.
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = rng.uniform_int(4, 9);
    Circuit c;
    Rng net_rng(4000 + trial);
    build_random_resistor_network(c, net_rng, nodes, nodes);
    const double vs = rng.uniform(1.0, 10.0);
    c.voltage_source("V1", "n1", "0", vs);
    const DcSolution s = solve_dc(c);
    ASSERT_TRUE(s.converged);
    for (int n = 1; n <= nodes; ++n) {
      const double v = s.voltage(c, "n" + std::to_string(n));
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, vs + 1e-9);
    }
  }
}

}  // namespace
}  // namespace lcosc::spice
