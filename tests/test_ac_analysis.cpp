// Small-signal AC analysis: complex LU, filters, resonance curves, and
// linearized nonlinear devices.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "numeric/complex_lu.h"
#include "spice/ac_solver.h"
#include "spice/mutual_coupling.h"
#include "spice/sweep.h"
#include "tank/rlc_tank.h"

namespace lcosc::spice {
namespace {

using namespace lcosc::literals;

TEST(ComplexLu, SolvesComplexSystem) {
  ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 1.0};
  a(0, 1) = {0.0, 0.0};
  a(1, 0) = {0.0, 0.0};
  a(1, 1) = {0.0, 2.0};
  const ComplexVector x = solve_complex_system(a, {{2.0, 0.0}, {0.0, 4.0}});
  // (1+j) x0 = 2 -> x0 = 1 - j ; 2j x1 = 4j -> x1 = 2.
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 2.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), 0.0, 1e-12);
}

TEST(ComplexLu, PivotsAndDetectsSingular) {
  ComplexMatrix a(2, 2);
  a(0, 0) = {0.0, 0.0};
  a(0, 1) = {1.0, 0.0};
  a(1, 0) = {1.0, 0.0};
  a(1, 1) = {0.0, 0.0};
  const ComplexVector x = solve_complex_system(a, {{3.0, 0.0}, {5.0, 0.0}});
  EXPECT_NEAR(x[0].real(), 5.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 3.0, 1e-12);

  ComplexMatrix s(2, 2);
  s(0, 0) = {1.0, 0.0};
  s(0, 1) = {2.0, 0.0};
  s(1, 0) = {2.0, 0.0};
  s(1, 1) = {4.0, 0.0};
  EXPECT_TRUE(ComplexLu(s).singular());
}

TEST(ComplexLu, RoundTripMultiply) {
  ComplexMatrix a(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = {0.3 * static_cast<double>(r) - 0.2 * static_cast<double>(c),
                 0.1 * static_cast<double>(r + c)};
    }
    a(r, r) += Complex{3.0, 1.0};
  }
  const ComplexVector x_true = {{1.0, -1.0}, {0.5, 2.0}, {-2.0, 0.0}};
  const ComplexVector b = a.multiply(x_true);
  const ComplexVector x = solve_complex_system(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-10);
  }
}

TEST(AcAnalysis, RcLowPassPole) {
  Circuit c;
  auto& vin = c.voltage_source("Vin", "in", "0", 0.0);
  vin.set_ac_magnitude(1.0);
  c.resistor("R1", "in", "out", 1e3);
  c.capacitor("C1", "out", "0", 1e-9);  // f_3dB = 1/(2 pi RC) ~ 159 kHz
  c.finalize();
  const Vector dc_op(c.unknown_count(), 0.0);

  const double f3db = 1.0 / (kTwoPi * 1e3 * 1e-9);
  const auto points = ac_sweep(c, dc_op, {f3db / 100.0, f3db, f3db * 100.0});
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) ASSERT_TRUE(p.ok);
  // Passband: |H| ~ 1; at the pole: 1/sqrt(2); far above: ~ f3db/f.
  EXPECT_NEAR(std::abs(points[0].voltage(c, "out")), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(points[1].voltage(c, "out")), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(points[2].voltage(c, "out")), 0.01, 1e-3);
  // Phase at the pole: -45 degrees.
  EXPECT_NEAR(std::arg(points[1].voltage(c, "out")), -kPi / 4.0, 1e-3);
}

TEST(AcAnalysis, InductorImpedanceRises) {
  Circuit c;
  auto& probe = c.current_source("Iprobe", "0", "a", 0.0);
  c.inductor("L1", "a", "0", 1e-6);
  c.finalize();
  const Vector dc_op(c.unknown_count(), 0.0);
  const auto curve = measure_impedance(c, probe, "a", "0", dc_op, {1e6, 2e6});
  // |Z| = wL.
  EXPECT_NEAR(std::abs(curve[0].impedance), kTwoPi * 1e6 * 1e-6, 1e-3);
  EXPECT_NEAR(std::abs(curve[1].impedance) / std::abs(curve[0].impedance), 2.0, 1e-3);
  // Purely reactive: +90 degrees.
  EXPECT_NEAR(std::arg(curve[0].impedance), kPi / 2.0, 1e-3);
}

TEST(AcAnalysis, TankResonanceMatchesRlcModel) {
  // Build the paper's tank as a netlist and compare the AC resonance and
  // bandwidth-Q with the analytic RlcTank numbers.
  const tank::TankConfig cfg = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  const tank::RlcTank model(cfg);

  Circuit c;
  auto& probe = c.current_source("Iprobe", "lc2", "lc1", 0.0);
  c.capacitor("C1", "lc1", "0", cfg.capacitance1);
  c.capacitor("C2", "lc2", "0", cfg.capacitance2);
  c.inductor("L", "lc1", "mid", cfg.inductance);
  c.resistor("Rs", "mid", "lc2", cfg.series_resistance);
  c.finalize();
  const Vector dc_op(c.unknown_count(), 0.0);

  const auto freqs = linspace(3.6e6, 4.4e6, 401);
  const auto curve = measure_impedance(c, probe, "lc1", "lc2", dc_op, freqs);
  const ResonanceSummary res = summarize_resonance(curve);

  EXPECT_NEAR(res.peak_frequency, model.resonance_frequency(),
              model.resonance_frequency() * 0.01);
  EXPECT_NEAR(res.peak_magnitude, model.parallel_resistance(),
              model.parallel_resistance() * 0.05);
  EXPECT_NEAR(res.quality_factor, model.quality_factor(), model.quality_factor() * 0.10);
}

TEST(AcAnalysis, MosfetCommonSourceGain) {
  // Common-source amplifier: |gain| = gm * (RL || ro) at the DC op point.
  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);
  auto& vin = c.voltage_source("Vin", "g", "0", 1.2);
  vin.set_ac_magnitude(1.0);
  c.resistor("RL", "vdd", "d", 10e3);
  auto& m1 = c.mosfet("M1", "d", "g", "0", "0", nmos_035um(10.0));
  const DcSolution op = solve_dc(c);
  ASSERT_TRUE(op.converged);

  const MosfetEval eval = Mosfet::evaluate_channel(
      op.voltage(c, "d"), op.voltage(c, "g"), 0.0, 0.0, m1.params());
  const double expected =
      eval.gm * 1.0 / (1.0 / 10e3 + eval.gds);

  const auto points = ac_sweep(c, op.x, {1e3});
  ASSERT_TRUE(points[0].ok);
  EXPECT_NEAR(std::abs(points[0].voltage(c, "d")), expected, expected * 1e-3);
  // Inverting stage: output 180 degrees from input.
  EXPECT_NEAR(std::abs(std::arg(points[0].voltage(c, "d"))), kPi, 1e-3);
}

TEST(AcAnalysis, DiodeSmallSignalConductance) {
  Circuit c;
  c.current_source("Ibias", "0", "a", 1e-3);
  auto& probe = c.current_source("Iprobe", "0", "a", 0.0);
  c.diode("D1", "a", "0");
  const DcSolution op = solve_dc(c);
  ASSERT_TRUE(op.converged);
  const auto curve = measure_impedance(c, probe, "a", "0", op.x, {1e3});
  // rd = nVt / Id ~ 25.85 ohm at 1 mA.
  EXPECT_NEAR(std::abs(curve[0].impedance), 0.02585 / 1e-3, 0.5);
}

TEST(AcAnalysis, MutualCouplingTransformer) {
  // Loosely loaded transformer in AC: |v_secondary / v_primary| equals
  // k sqrt(L2/L1) well above the secondary's corner frequency.
  Circuit c;
  auto& vin = c.voltage_source("Vin", "in", "0", 0.0);
  vin.set_ac_magnitude(1.0);
  c.resistor("Rsrc", "in", "p", 10.0);
  auto& l1 = c.add<Inductor>("L1", c.node_or_create("p"), Circuit::ground(), 100e-6);
  auto& l2 = c.add<Inductor>("L2", c.node_or_create("s"), Circuit::ground(), 400e-6);
  c.resistor("Rload", "s", "0", 1e6);
  c.add<MutualCoupling>("K1", l1, l2, 0.8);
  c.finalize();
  const Vector dc_op(c.unknown_count(), 0.0);
  const auto points = ac_sweep(c, dc_op, {4e6});
  ASSERT_TRUE(points[0].ok);
  const double ratio = std::abs(points[0].voltage(c, "s")) /
                       std::abs(points[0].voltage(c, "p"));
  EXPECT_NEAR(ratio, 0.8 * 2.0, 0.05);
}

TEST(AcAnalysis, SourcesAreAcGroundByDefault) {
  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);  // no AC magnitude
  c.resistor("R1", "vdd", "out", 1e3);
  c.resistor("R2", "out", "0", 1e3);
  c.finalize();
  const DcSolution op = solve_dc(c);
  const auto points = ac_sweep(c, op.x, {1e3});
  ASSERT_TRUE(points[0].ok);
  EXPECT_NEAR(std::abs(points[0].voltage(c, "out")), 0.0, 1e-9);
}

TEST(AcAnalysis, ResonanceSummaryRejectsTinyCurves) {
  EXPECT_THROW(summarize_resonance({}), ConfigError);
}

}  // namespace
}  // namespace lcosc::spice
