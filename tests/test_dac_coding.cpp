// Bit-exact reproduction of Table 1: the control-bus coding of the
// current limitation DAC.
#include <gtest/gtest.h>

#include "common/error.h"
#include "dac/control_code.h"

namespace lcosc::dac {
namespace {

// The eight rows of Table 1 as printed in the paper.
struct Table1Row {
  int segment;
  int prescaler_output;
  int active_gm;
  int step;
  int range_min;
  int range_max;
  std::uint8_t osc_d;
  std::uint8_t osc_e;
};

constexpr Table1Row kTable1[] = {
    {0, 1, 1, 1, 0, 15, 0b000, 0b0000},
    {1, 1, 2, 1, 16, 31, 0b000, 0b0001},
    {2, 2, 2, 2, 32, 62, 0b001, 0b0001},
    {3, 2, 3, 4, 64, 124, 0b001, 0b0011},
    {4, 4, 3, 8, 128, 248, 0b011, 0b0011},
    {5, 4, 5, 16, 256, 496, 0b011, 0b0111},
    {6, 8, 5, 32, 512, 992, 0b111, 0b0111},
    {7, 8, 9, 64, 1024, 1984, 0b111, 0b1111},
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, RowMatchesPaper) {
  const Table1Row& row = GetParam();
  const int base_code = row.segment * 16;
  const ControlSignals s = encode_control(base_code);

  EXPECT_EQ(s.osc_d, row.osc_d);
  EXPECT_EQ(s.osc_e, row.osc_e);
  EXPECT_EQ(prescale_factor(s.osc_d), row.prescaler_output);
  EXPECT_EQ(active_gm_stages(s.osc_e), row.active_gm);
  EXPECT_EQ(segment_step(row.segment), row.step);
  EXPECT_EQ(segment_range_min(row.segment), row.range_min);
  EXPECT_EQ(segment_range_max(row.segment), row.range_max);
}

TEST_P(Table1Test, StepIsConstantWithinSegment) {
  const Table1Row& row = GetParam();
  for (int b = 0; b < 15; ++b) {
    const int code = row.segment * 16 + b;
    EXPECT_EQ(multiplication_factor(code + 1) - multiplication_factor(code), row.step)
        << "code " << code;
  }
}

TEST_P(Table1Test, OscFCarriesShiftedLsbs) {
  const Table1Row& row = GetParam();
  for (int b = 0; b < 16; ++b) {
    const ControlSignals s = encode_control(row.segment * 16 + b);
    EXPECT_EQ(s.osc_f, b << mirror_shift(row.segment));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSegments, Table1Test, ::testing::ValuesIn(kTable1),
                         [](const ::testing::TestParamInfo<Table1Row>& info) {
                           return "segment" + std::to_string(info.param.segment);
                         });

TEST(ControlCode, SegmentOf) {
  EXPECT_EQ(segment_of(0), 0);
  EXPECT_EQ(segment_of(15), 0);
  EXPECT_EQ(segment_of(16), 1);
  EXPECT_EQ(segment_of(105), 6);
  EXPECT_EQ(segment_of(127), 7);
}

TEST(ControlCode, OutOfRangeThrows) {
  EXPECT_THROW(encode_control(-1), ConfigError);
  EXPECT_THROW(encode_control(128), ConfigError);
  EXPECT_THROW(segment_step(8), ConfigError);
  EXPECT_THROW(prescale_factor(0b010), ConfigError);  // not a thermometer code
}

TEST(ControlCode, FullScaleIs1984) {
  EXPECT_EQ(multiplication_factor(127), 1984);
  EXPECT_EQ(multiplication_factor(0), 0);
}

TEST(ControlCode, DynamicRangeMatchesPaper) {
  // "wide dynamic range of output current (0:1984)".
  int max_m = 0;
  for (int code = 0; code <= 127; ++code) max_m = std::max(max_m, multiplication_factor(code));
  EXPECT_EQ(max_m, 1984);
}

TEST(ControlCode, ReconstructionFromSignalsMatchesDirect) {
  for (int code = 0; code <= 127; ++code) {
    EXPECT_EQ(multiplication_factor(encode_control(code)), multiplication_factor(code));
  }
}

TEST(ControlCode, FixedMirrorUnits) {
  EXPECT_EQ(fixed_mirror_units(0b0000), 0);
  EXPECT_EQ(fixed_mirror_units(0b0001), 16);
  EXPECT_EQ(fixed_mirror_units(0b0011), 32);
  EXPECT_EQ(fixed_mirror_units(0b0111), 64);
  EXPECT_EQ(fixed_mirror_units(0b1111), 128);
}

TEST(ControlCode, ActiveGmStagesWeights) {
  // Fig. 7: always-on stage plus Gm, Gm, 2Gm, 4Gm.
  EXPECT_EQ(active_gm_stages(0b0000), 1);
  EXPECT_EQ(active_gm_stages(0b1111), 9);
  EXPECT_EQ(active_gm_stages(0b0100), 3);
  EXPECT_EQ(active_gm_stages(0b1000), 5);
}

TEST(ControlCode, MonotoneNonDecreasingBuses) {
  // As the code rises, the prescaler and Gm-enable buses never step back.
  for (int code = 0; code < 127; ++code) {
    const ControlSignals a = encode_control(code);
    const ControlSignals b = encode_control(code + 1);
    EXPECT_GE(prescale_factor(b.osc_d), prescale_factor(a.osc_d));
    EXPECT_GE(active_gm_stages(b.osc_e), active_gm_stages(a.osc_e));
  }
}

TEST(ControlCode, FormatBus) {
  const auto s = format_bus(0b011, 3);
  EXPECT_STREQ(s.data(), "011");
  const auto s7 = format_bus(0b1000000, 7);
  EXPECT_STREQ(s7.data(), "1000000");
}

TEST(ControlCode, StartupCode105IsSegment6) {
  // Code 105 (POR preset) lands in segment 6: high current but below the
  // maximum, matching the "about 40% of maximum consumption" statement
  // (M(105) / M(127) = 1096/1984 greater current ratio is tamed by the
  // prescaler; the code itself is below full scale).
  const ControlSignals s = encode_control(105);
  EXPECT_EQ(segment_of(105), 6);
  EXPECT_EQ(prescale_factor(s.osc_d), 8);
  EXPECT_LT(multiplication_factor(105), multiplication_factor(127));
}

}  // namespace
}  // namespace lcosc::dac
