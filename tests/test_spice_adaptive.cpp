// Adaptive LTE-controlled transient stepping: the default-off path must
// stay byte-identical to the pre-adaptive fixed-step solver (golden
// trace), the adaptive path must track the fixed solution within the
// LTE tolerance while taking far fewer steps on smooth waveforms, and
// the dt-keyed base/LU cache must be invisible in the results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_file.h"
#include "spice/circuit.h"
#include "spice/netlist_parser.h"
#include "spice/transient_solver.h"

#ifndef LCOSC_NETLIST_DIR
#define LCOSC_NETLIST_DIR "netlists"
#endif
#ifndef LCOSC_TEST_DATA_DIR
#define LCOSC_TEST_DATA_DIR "tests/data"
#endif

namespace lcosc::spice {
namespace {

std::string golden_path() {
  return std::string(LCOSC_TEST_DATA_DIR) + "/transient_fixed_reference.txt";
}

// The reference run: MUST match the recipe that generated
// tests/data/transient_fixed_reference.txt against the pre-adaptive
// solver.  Any change here invalidates the golden file.
TransientResult run_reference() {
  auto circuit = parse_netlist_file(std::string(LCOSC_NETLIST_DIR) + "/fig10a_unsupplied.sp");
  auto* vdiff = circuit->find_as<VoltageSource>("Vdiff");
  EXPECT_NE(vdiff, nullptr);
  vdiff->set_sine({.offset = 0.0, .amplitude = 2.5, .frequency = 4e6, .phase_deg = 0.0});
  TransientOptions options;
  options.dt = std::ldexp(1.0, -28);
  options.t_stop = 400.0 * options.dt;
  options.integration = Integration::BackwardEuler;
  options.start_from_dc = true;
  return run_transient(*circuit, options, {"lc1", "lc2", "vdd"});
}

// Render the result in the golden file's exact byte format: two comment
// lines, then per trace a header and hexfloat (time, value) lines.
std::string render_reference(const TransientResult& r) {
  std::string out;
  out += "# fixed-step transient reference: fig10a_unsupplied.sp, sine 2.5V@4MHz,\n";
  out += "# BE, dt=2^-28 s, 400 steps, probes lc1 lc2 vdd (hexfloat, exact bits)\n";
  char line[128];
  for (const auto& trace : r.traces) {
    std::snprintf(line, sizeof(line), "trace %s %zu\n", trace.name().c_str(), trace.size());
    out += line;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::snprintf(line, sizeof(line), "%a %a\n", trace.time(i), trace.value(i));
      out += line;
    }
  }
  return out;
}

// The tier-1 A/B contract: with adaptive = false the solver output is
// byte-identical to the trace recorded before the adaptive engine (and
// its dt-keyed LRU refactor) was introduced.  Regenerate deliberately
// with LCOSC_REGEN_GOLDEN=1 after an intentional numeric change.
TEST(TransientAdaptive, FixedPathMatchesPrePrGoldenTrace) {
  const TransientResult r = run_reference();
  ASSERT_TRUE(r.converged);
  const std::string rendered = render_reference(r);

  if (std::getenv("LCOSC_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(lcosc::write_file_atomic(golden_path(), rendered))
        << "cannot write " << golden_path();
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path();
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (rendered != golden) {
    // Find the first differing line for a readable failure.
    std::istringstream a(golden), b(rendered);
    std::string la, lb;
    std::size_t line_no = 0;
    while (std::getline(a, la) && std::getline(b, lb)) {
      ++line_no;
      ASSERT_EQ(la, lb) << "first divergence at golden line " << line_no;
    }
    FAIL() << "golden and rendered traces differ in length";
  }
}

TEST(TransientAdaptive, AdaptiveIsOffByDefault) {
  EXPECT_FALSE(TransientOptions{}.adaptive);
  // Fixed-path runs must not touch the adaptive counters.
  const TransientResult r = run_reference();
  EXPECT_EQ(r.stats.accepted_steps, 0u);
  EXPECT_EQ(r.stats.rejected_steps, 0u);
  std::size_t hist = 0;
  for (const auto b : r.stats.dt_histogram) hist += b;
  EXPECT_EQ(hist, 0u);
}

// Smooth single-time-constant charge curve: tau = 1 ms probed with a
// 1 us output grid, so the adaptive engine should coarsen far beyond
// the output dt.
void build_slow_rc(Circuit& c) {
  c.voltage_source("Vs", "in", "0", 5.0);
  c.resistor("R", "in", "out", 1e3);
  c.capacitor("C", "out", "0", 1e-6);
}

// Sine-driven RLC resolved at 64 points per period: the waveform always
// moves, so this exercises accept/reject and cache traffic rather than
// coarsening.
void build_rlc(Circuit& c) {
  VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
  vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4e6, .phase_deg = 0.0});
  c.resistor("Rs", "in", "a", 5.0);
  c.inductor("L", "a", "b", 3.3e-6);
  c.resistor("Rl", "b", "0", 2.0);
  c.capacitor("C", "a", "0", 1e-9);
}

double max_abs_value(const Trace& t) {
  double m = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) m = std::max(m, std::abs(t.value(i)));
  return m;
}

// Adaptive output arrives on the same fixed grid as the fixed-step run
// and deviates by at most `rel` of the trace scale.
void expect_same_grid_close_values(const TransientResult& fixed, const TransientResult& adaptive,
                                   double rel) {
  ASSERT_EQ(fixed.traces.size(), adaptive.traces.size());
  for (std::size_t p = 0; p < fixed.traces.size(); ++p) {
    const Trace& f = fixed.traces[p];
    const Trace& a = adaptive.traces[p];
    ASSERT_EQ(f.size(), a.size()) << "probe " << f.name();
    const double tol = rel * std::max(max_abs_value(f), 1e-12);
    for (std::size_t i = 0; i < f.size(); ++i) {
      ASSERT_EQ(f.time(i), a.time(i)) << "probe " << f.name() << " sample " << i;
      ASSERT_NEAR(f.value(i), a.value(i), tol) << "probe " << f.name() << " sample " << i;
    }
  }
}

TEST(TransientAdaptive, SmoothRunCoarsensWellBeyondOutputGrid) {
  TransientOptions options;
  options.dt = 1e-6;
  options.t_stop = 400e-6;
  options.start_from_dc = false;

  Circuit fixed_c;
  build_slow_rc(fixed_c);
  const TransientResult fixed = run_transient(fixed_c, options, {"out"});
  ASSERT_TRUE(fixed.converged);

  options.adaptive = true;
  Circuit adaptive_c;
  build_slow_rc(adaptive_c);
  const TransientResult adaptive = run_transient(adaptive_c, options, {"out"});
  ASSERT_TRUE(adaptive.converged);

  // The acceptance floor from ISSUE.md: at least a 3x step reduction
  // (each adaptive step costs three solves, so fewer means slower).
  EXPECT_GE(fixed.steps, 3 * adaptive.steps)
      << "fixed " << fixed.steps << " vs adaptive " << adaptive.steps;
  EXPECT_EQ(adaptive.steps, adaptive.stats.accepted_steps);
  expect_same_grid_close_values(fixed, adaptive, 0.01);
}

TEST(TransientAdaptive, TrapezoidalAdaptiveTracksFixed) {
  TransientOptions options;
  options.dt = 1.0 / (4e6 * 64.0);
  options.t_stop = 256.0 * options.dt;
  options.integration = Integration::Trapezoidal;
  options.start_from_dc = false;

  Circuit fixed_c;
  build_rlc(fixed_c);
  const TransientResult fixed = run_transient(fixed_c, options, {"a"});
  ASSERT_TRUE(fixed.converged);

  options.adaptive = true;
  Circuit adaptive_c;
  build_rlc(adaptive_c);
  const TransientResult adaptive = run_transient(adaptive_c, options, {"a"});
  ASSERT_TRUE(adaptive.converged);
  EXPECT_GT(adaptive.stats.accepted_steps, 0u);
  // 2nd-order LTE control on a resolved waveform: stay within 2% of the
  // fixed-step trace on the shared output grid.
  expect_same_grid_close_values(fixed, adaptive, 0.02);
}

TEST(TransientAdaptive, DtHistogramCountsEveryAcceptedStep) {
  TransientOptions options;
  options.dt = 1e-6;
  options.t_stop = 200e-6;
  options.start_from_dc = false;
  options.adaptive = true;

  Circuit c;
  build_slow_rc(c);
  const TransientResult r = run_transient(c, options, {"out"});
  ASSERT_TRUE(r.converged);
  std::size_t total = 0;
  for (const auto b : r.stats.dt_histogram) total += b;
  EXPECT_EQ(total, r.stats.accepted_steps);
  // The smooth run must actually reach step sizes above the output dt.
  std::size_t above = 0;
  for (std::size_t i = kDtHistogramZeroBucket + 1; i < kDtHistogramBuckets; ++i) {
    above += r.stats.dt_histogram[i];
  }
  EXPECT_GT(above, 0u);
}

TEST(TransientAdaptive, BaseCacheCapacityIsInvisibleInResults) {
  TransientOptions options;
  options.dt = 1.0 / (4e6 * 64.0);
  options.t_stop = 256.0 * options.dt;
  options.start_from_dc = false;
  options.adaptive = true;

  options.base_cache_capacity = 128;  // enough for every grid point in range
  Circuit big_c;
  build_rlc(big_c);
  const TransientResult big = run_transient(big_c, options, {"a"});

  options.base_cache_capacity = 1;
  Circuit tiny_c;
  build_rlc(tiny_c);
  const TransientResult tiny = run_transient(tiny_c, options, {"a"});

  // Re-stamping a base for the same (dt, integration) is deterministic,
  // so cache capacity can only change the counters, never the solution.
  ASSERT_EQ(big.traces.size(), tiny.traces.size());
  for (std::size_t p = 0; p < big.traces.size(); ++p) {
    ASSERT_EQ(big.traces[p].size(), tiny.traces[p].size());
    for (std::size_t i = 0; i < big.traces[p].size(); ++i) {
      ASSERT_EQ(big.traces[p].value(i), tiny.traces[p].value(i)) << "sample " << i;
    }
  }
  EXPECT_EQ(big.stats.base_cache_evictions, 0u);
  if (big.stats.matrix_stamps > 1) {
    EXPECT_GT(tiny.stats.base_cache_evictions, 0u);
    EXPECT_GT(tiny.stats.matrix_stamps, big.stats.matrix_stamps);
  }
}

TEST(TransientAdaptive, AdaptiveCacheHitsDominateOnSteadyStepSize) {
  TransientOptions options;
  options.dt = 1e-6;
  options.t_stop = 400e-6;
  options.start_from_dc = false;
  options.adaptive = true;

  Circuit c;
  build_slow_rc(c);
  const TransientResult r = run_transient(c, options, {"out"});
  ASSERT_TRUE(r.converged);
  // Step-doubling solves full and half steps, and the quantized grid
  // revisits the same dt values: the cache must absorb nearly all of it.
  EXPECT_GT(r.stats.base_cache_hits, r.stats.base_cache_misses);
  EXPECT_EQ(r.stats.base_cache_misses, r.stats.matrix_stamps);
}

TEST(TransientAdaptive, AdaptiveRespectsDtFloorAndCeiling) {
  TransientOptions options;
  options.dt = 1e-6;
  options.t_stop = 100e-6;
  options.start_from_dc = false;
  options.adaptive = true;
  options.dt_min = 1e-6;  // floor at the output grid...
  options.dt_max = 2e-6;  // ...and a ceiling one octave up

  Circuit c;
  build_slow_rc(c);
  const TransientResult r = run_transient(c, options, {"out"});
  ASSERT_TRUE(r.converged);
  // 100 us at steps within [1, 2] us: 50 to 100 accepted steps, plus at
  // most one truncated final step landing exactly on t_stop.
  EXPECT_GE(r.stats.accepted_steps, 50u);
  EXPECT_LE(r.stats.accepted_steps, 101u);
  // Nothing above the ceiling may appear; below the floor only the
  // t_stop-truncated final step is allowed.
  std::size_t below = 0;
  for (std::size_t i = 0; i < kDtHistogramBuckets; ++i) {
    if (i > kDtHistogramZeroBucket + 1) {
      EXPECT_EQ(r.stats.dt_histogram[i], 0u) << "bucket " << i;
    } else if (i < kDtHistogramZeroBucket) {
      below += r.stats.dt_histogram[i];
    }
  }
  EXPECT_LE(below, 1u);
}

}  // namespace
}  // namespace lcosc::spice
