// Property tests pinning the cycle-accurate transient engine to the
// paper's theory (Section 2): oscillation condition (Eq. 1), amplitude
// law (Eq. 4), and the resonance frequency.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "common/units.h"
#include "numeric/roots.h"
#include "system/oscillator_system.h"
#include "waveform/measurements.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

// Minimal free-running transient: fixed code, regulation effectively
// disabled by pinning the window at the startup code.
OscillatorSystemConfig fixed_code_config(const tank::TankConfig& tk, int code,
                                         double gm_per_stage = 1.1e-3) {
  OscillatorSystemConfig cfg;
  cfg.tank = tk;
  cfg.driver.gm_per_stage = gm_per_stage;
  cfg.regulation.startup_code = code;
  cfg.regulation.nvm_code = code;
  // Pin the code: the collapsed range makes every tick a no-op.
  cfg.regulation.min_code = code;
  cfg.regulation.max_code = code;
  // Keep safety from forcing max current.
  cfg.safety.low_amplitude.persistence = 1.0;
  cfg.safety.watchdog.timeout = 1.0;
  cfg.waveform_decimation = 1;
  return cfg;
}

// Does a fixed-code run sustain oscillation?
bool sustains(const tank::TankConfig& tk, int code, double gm_per_stage) {
  OscillatorSystem sys(fixed_code_config(tk, code, gm_per_stage));
  const double f0 = tank::RlcTank(tk).resonance_frequency();
  const double duration = 400.0 / f0;  // 400 cycles
  const SimulationResult r = sys.run(duration);
  // Compare the late envelope with the startup kick.
  const double late = peak_amplitude_tail(r.differential, 40.0 / f0);
  return late > 0.06;  // grew beyond the 50 mV kick
}

struct QCase {
  double frequency;
  double quality;
};

class OscillationCondition : public ::testing::TestWithParam<QCase> {};

TEST_P(OscillationCondition, CriticalGmMatchesEq1) {
  const QCase p = GetParam();
  const tank::TankConfig tk = tank::design_tank(p.frequency, p.quality, 3.3_uH);
  const tank::RlcTank model(tk);
  const double gm0 = model.critical_gm();

  // Fixed code 16: 2 active stages, so gm_per_stage = gm_equiv / 2.
  const int code = 16;
  const auto sustains_at = [&](double gm_equiv) {
    return sustains(tk, code, gm_equiv / 2.0);
  };
  // The threshold found by bisection must sit within ~20% of Eq. 1.
  ASSERT_FALSE(sustains_at(gm0 * 0.25));
  ASSERT_TRUE(sustains_at(gm0 * 4.0));
  const double threshold = bisect_threshold(sustains_at, gm0 * 0.25, gm0 * 4.0, gm0 * 0.02);
  EXPECT_NEAR(threshold, gm0, gm0 * 0.20);
}

INSTANTIATE_TEST_SUITE_P(
    QSweep, OscillationCondition,
    ::testing::Values(QCase{4.0e6, 10.0}, QCase{4.0e6, 40.0}, QCase{2.0e6, 20.0},
                      QCase{5.0e6, 20.0}),
    [](const ::testing::TestParamInfo<QCase>& info) {
      return "f" + std::to_string(static_cast<int>(info.param.frequency / 1e6)) + "MHz_Q" +
             std::to_string(static_cast<int>(info.param.quality));
    });

TEST(OscillationFrequency, MatchesTankResonance) {
  for (const double f : {2.0e6, 3.5e6, 5.0e6}) {
    const tank::TankConfig tk = tank::design_tank(f, 30.0, 3.3_uH);
    OscillatorSystem sys(fixed_code_config(tk, 32));
    const SimulationResult r = sys.run(300.0 / f);
    const auto measured = estimate_frequency_tail(r.differential, 50.0 / f);
    ASSERT_TRUE(measured.has_value());
    EXPECT_NEAR(*measured, f, f * 0.02) << "f0 = " << f;
  }
}

TEST(AmplitudeLaw, SimulationMatchesDescribingFunction) {
  // Eq. 4: steady amplitude = the describing-function balance, across
  // codes (current limits) and tank quality.
  const tank::TankConfig tk = tank::design_tank(4.0e6, 60.0, 3.3_uH);
  for (const int code : {24, 32, 40}) {
    OscillatorSystem sys(fixed_code_config(tk, code));
    driver::OscillatorDriver drv(fixed_code_config(tk, code).driver);
    drv.set_code(code);
    const auto pred = drv.predicted_amplitude(tank::RlcTank(tk));
    ASSERT_TRUE(pred.has_value());

    const SimulationResult r = sys.run(1200.0 / 4.0e6);
    const double measured = peak_amplitude_tail(r.differential, 80.0 / 4.0e6);
    EXPECT_NEAR(measured, *pred, *pred * 0.08) << "code " << code;
  }
}

TEST(AmplitudeLaw, AmplitudeScalesWithCurrentLimit) {
  // Doubling M roughly doubles the amplitude (exponential control is what
  // makes equal relative voltage steps possible, Eq. 5).
  const tank::TankConfig tk = tank::design_tank(4.0e6, 60.0, 3.3_uH);
  auto settled = [&](int code) {
    OscillatorSystem sys(fixed_code_config(tk, code));
    const SimulationResult r = sys.run(1500.0 / 4.0e6);
    return peak_amplitude_tail(r.differential, 80.0 / 4.0e6);
  };
  const double a32 = settled(32);  // M = 32
  const double a48 = settled(48);  // M = 64
  EXPECT_NEAR(a48 / a32, 2.0, 0.25);
}

TEST(AmplitudeLaw, HigherLossNeedsMoreCurrent) {
  // Same code, worse tank -> smaller amplitude.
  auto settled = [&](double q) {
    const tank::TankConfig tk = tank::design_tank(4.0e6, q, 3.3_uH);
    OscillatorSystem sys(fixed_code_config(tk, 32));
    const SimulationResult r = sys.run(1200.0 / 4.0e6);
    return peak_amplitude_tail(r.differential, 80.0 / 4.0e6);
  };
  EXPECT_GT(settled(80.0), 1.5 * settled(20.0));
}

}  // namespace
}  // namespace lcosc::system
