// SPICE-flavoured netlist parsing.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/ac_solver.h"
#include "spice/dc_solver.h"
#include "spice/mutual_coupling.h"
#include "spice/netlist_parser.h"

namespace lcosc::spice {
namespace {

TEST(EngineeringValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_engineering_value("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_engineering_value("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1e-9"), 1e-9);
}

TEST(EngineeringValue, Suffixes) {
  EXPECT_DOUBLE_EQ(parse_engineering_value("3.3u"), 3.3e-6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("2k"), 2e3);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("100n"), 100e-9);
  EXPECT_DOUBLE_EQ(parse_engineering_value("15p"), 15e-12);
  EXPECT_DOUBLE_EQ(parse_engineering_value("2.5m"), 2.5e-3);
  EXPECT_DOUBLE_EQ(parse_engineering_value("4f"), 4e-15);
  EXPECT_DOUBLE_EQ(parse_engineering_value("7g"), 7e9);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1t"), 1e12);
}

TEST(EngineeringValue, UnitDecorationIgnored) {
  EXPECT_DOUBLE_EQ(parse_engineering_value("12.5uA"), 12.5e-6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("100nF"), 100e-9);
  EXPECT_DOUBLE_EQ(parse_engineering_value("2kohm"), 2e3);
  EXPECT_DOUBLE_EQ(parse_engineering_value("5V"), 5.0);  // 'V' is not a suffix
}

TEST(EngineeringValue, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(parse_engineering_value("2K"), 2e3);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("3.3U"), 3.3e-6);
}

TEST(EngineeringValue, MalformedRejected) {
  EXPECT_THROW(parse_engineering_value(""), NetlistError);
  EXPECT_THROW(parse_engineering_value("abc"), NetlistError);
  EXPECT_THROW(parse_engineering_value("1.2.3"), NetlistError);
  EXPECT_THROW(parse_engineering_value("3u3"), NetlistError);
}

TEST(NetlistParser, VoltageDivider) {
  const auto circuit = parse_netlist(R"(
* a comment
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.end
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "mid"), 7.5, 1e-6);
}

TEST(NetlistParser, ContinuationLines) {
  const auto circuit = parse_netlist("V1 in 0\n+ 5\nR1 in 0 1k\n");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "in"), 5.0, 1e-9);
}

TEST(NetlistParser, InlineCommentsStripped) {
  const auto circuit = parse_netlist("V1 in 0 2 ; the supply\nR1 in 0 1k\n");
  EXPECT_NE(circuit->find("V1"), nullptr);
}

TEST(NetlistParser, DiodeWithOptions) {
  const auto circuit = parse_netlist(R"(
V1 in 0 5
R1 in a 1k
D1 a 0 is=1e-12 n=1.5
)");
  const auto* d = circuit->find_as<Diode>("D1");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->params().saturation_current, 1e-12);
  EXPECT_DOUBLE_EQ(d->params().emission_coefficient, 1.5);
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_GT(s.voltage(*circuit, "a"), 0.5);
}

TEST(NetlistParser, MosfetInverter) {
  const auto circuit = parse_netlist(R"(
Vdd vdd 0 5
Vin g 0 5
RL vdd d 10k
M1 d g 0 0 nmos wl=10
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_LT(s.voltage(*circuit, "d"), 0.4);
}

TEST(NetlistParser, MosfetParameterOverrides) {
  const auto circuit = parse_netlist("M1 d g s b pmos wl=20 vt=0.7 lambda=0.02 gamma=0\n");
  const auto* m = circuit->find_as<Mosfet>("M1");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->params().type, MosType::Pmos);
  EXPECT_DOUBLE_EQ(m->params().threshold_voltage, 0.7);
  EXPECT_DOUBLE_EQ(m->params().lambda, 0.02);
  EXPECT_DOUBLE_EQ(m->params().gamma, 0.0);
  EXPECT_NEAR(m->params().transconductance, 58e-6 * 20.0, 1e-12);
}

TEST(NetlistParser, ControlledSourcesAndSwitch) {
  const auto circuit = parse_netlist(R"(
Vin in 0 0.1
G1 0 out in 0 1m
RL out 0 10k
E1 buf 0 out 0 2
Rb buf 0 1k
Vc ctl 0 5
S1 out 0 ctl 0 ron=1meg roff=1g
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "out"), 1.0, 0.05);
  EXPECT_NEAR(s.voltage(*circuit, "buf"), 2.0 * s.voltage(*circuit, "out"), 1e-6);
}

TEST(NetlistParser, AcMagnitudeAndSweep) {
  const auto circuit = parse_netlist(R"(
V1 in 0 0 ac=1
R1 in out 1k
C1 out 0 1n
)");
  const Vector dc_op(circuit->unknown_count(), 0.0);
  const auto points = ac_sweep(*circuit, dc_op, {1.0});
  ASSERT_TRUE(points[0].ok);
  EXPECT_NEAR(std::abs(points[0].voltage(*circuit, "out")), 1.0, 1e-3);
}

TEST(NetlistParser, InitialConditionsParsed) {
  const auto circuit = parse_netlist("C1 a 0 1n ic=2.5\nL1 a 0 1u ic=1m\n");
  const auto* l = circuit->find_as<Inductor>("L1");
  ASSERT_NE(l, nullptr);
  EXPECT_DOUBLE_EQ(l->initial_current(), 1e-3);
}

TEST(NetlistParser, DotEndStopsParsing) {
  const auto circuit = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 2k\n");
  EXPECT_NE(circuit->find("R1"), nullptr);
  EXPECT_EQ(circuit->find("R2"), nullptr);
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_netlist("R1 a 0 1k\nX1 a 0 1k\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParser, MalformedCardsRejected) {
  EXPECT_THROW((void)parse_netlist("R1 a 0\n"), NetlistError);           // missing value
  EXPECT_THROW((void)parse_netlist("M1 d g s b bjt\n"), NetlistError);   // bad model
  EXPECT_THROW((void)parse_netlist("D1 a 0 bogus=1\n"), NetlistError);   // unknown option
  EXPECT_THROW((void)parse_netlist("+ continuation\n"), NetlistError);   // dangling +
}

TEST(NetlistParser, MissingFileThrows) {
  EXPECT_THROW((void)parse_netlist_file("/nonexistent/netlist.sp"), NetlistError);
}

TEST(NetlistParser, MutualCouplingCard) {
  const auto circuit = parse_netlist(R"(
L1 a 0 100u
L2 b 0 400u
K1 L1 L2 0.5
)");
  const auto* k = circuit->find_as<MutualCoupling>("K1");
  ASSERT_NE(k, nullptr);
  EXPECT_DOUBLE_EQ(k->coupling(), 0.5);
  EXPECT_NEAR(k->mutual_inductance(), 0.5 * std::sqrt(100e-6 * 400e-6), 1e-12);
}

TEST(NetlistParser, MutualCouplingUnknownInductorRejected) {
  EXPECT_THROW((void)parse_netlist("L1 a 0 1u\nK1 L1 Lx 0.5\n"), NetlistError);
}

TEST(NetlistParser, ZenerCard) {
  const auto circuit = parse_netlist("Z1 a 0 vz=6.2 is=1e-13\n");
  const auto* z = circuit->find_as<ZenerDiode>("Z1");
  ASSERT_NE(z, nullptr);
  EXPECT_DOUBLE_EQ(z->params().breakdown_voltage, 6.2);
  EXPECT_DOUBLE_EQ(z->params().junction.saturation_current, 1e-13);
}

TEST(NetlistParser, SubcircuitInstantiation) {
  const auto circuit = parse_netlist(R"(
.subckt divider in out
Rtop in out 1k
Rbot out 0 1k
.ends
V1 a 0 8
X1 a mid divider
X2 mid lo divider
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  // Two cascaded dividers: mid carries a loaded division of 8 V.
  // X2 loads X1: v(mid) = 8 * (2k/3k) / (1 + 2/3)... solve directly:
  // mid node: (8-m)/1k = m/1k... with X2 input impedance 2k:
  // m = 8 * (2k || 2k ... ) -- just assert the structural facts instead.
  EXPECT_GT(s.voltage(*circuit, "mid"), 3.0);
  EXPECT_LT(s.voltage(*circuit, "mid"), 8.0);
  // Scoped elements and internal nodes exist.
  EXPECT_NE(circuit->find("X1.Rtop"), nullptr);
  EXPECT_NE(circuit->find("X2.Rbot"), nullptr);
  // The two instances share nothing internally.
  EXPECT_NE(s.voltage(*circuit, "mid"), s.voltage(*circuit, "lo"));
}

TEST(NetlistParser, SubcircuitGroundIsGlobal) {
  const auto circuit = parse_netlist(R"(
.subckt shunt a
R1 a 0 1k
.ends
V1 in 0 2
Rs in n 1k
X1 n shunt
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "n"), 1.0, 1e-6);  // divider through the subckt shunt
}

TEST(NetlistParser, NestedSubcircuits) {
  const auto circuit = parse_netlist(R"(
.subckt leaf a b
R1 a b 1k
.ends
.subckt pair a b
X1 a m leaf
X2 m b leaf
.ends
V1 in 0 2
X1 in out pair
Rload out 0 2k
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  // 2k series (two 1k leaves) into 2k load: out = 1 V.
  EXPECT_NEAR(s.voltage(*circuit, "out"), 1.0, 1e-6);
  EXPECT_NE(circuit->find("X1.X1.R1"), nullptr);
}

TEST(NetlistParser, SubcircuitErrors) {
  EXPECT_THROW((void)parse_netlist(".subckt a in\nR1 in 0 1k\n"), NetlistError);  // no .ends
  EXPECT_THROW((void)parse_netlist(".ends\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("X1 a b nosuch\n"), NetlistError);
  EXPECT_THROW(
      (void)parse_netlist(".subckt s in out\nR1 in out 1k\n.ends\nX1 a s\n"),
      NetlistError);  // port count mismatch
}

TEST(NetlistParser, CrlfLineEndingsParse) {
  // A netlist written on Windows: every line ends "\r\n", including the
  // directives.  Must parse identically to the Unix spelling.
  const auto circuit =
      parse_netlist("V1 in 0 10\r\nR1 in mid 1k\r\nR2 mid 0 3k\r\n.end\r\n");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "mid"), 7.5, 1e-6);
}

TEST(NetlistParser, TrailingWhitespaceIgnored) {
  const auto circuit = parse_netlist("V1 in 0 5   \t\nR1 in 0 1k \t \n.end  \n");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "in"), 5.0, 1e-9);
}

TEST(NetlistParser, GroundAliasIsCaseInsensitive) {
  // "GND" used to silently create a floating node named GND instead of
  // connecting to ground.
  const auto circuit = parse_netlist("V1 in GND 2\nR1 in Gnd 1k\n");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.voltage(*circuit, "in"), 2.0, 1e-9);
}

TEST(NetlistParser, CaseAliasedNodesRejected) {
  // "N1" after "n1" is a typo creating a second floating node, not a
  // second spelling of the same net.
  try {
    (void)parse_netlist("V1 n1 0 5\nR1 N1 0 1k\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("case"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParser, UnknownDotDirectiveRejected) {
  // ".endsx" is not ".ends"; prefix matching used to swallow it.
  EXPECT_THROW((void)parse_netlist(".subckt s a\nR1 a 0 1k\n.endsx\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("R1 a 0 1k\n.tran 1u 1m\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("R1 a 0 1k\n.endx\n"), NetlistError);
}

TEST(NetlistParser, DuplicateSubcircuitPortsRejected) {
  EXPECT_THROW((void)parse_netlist(".subckt s in In\nR1 in 0 1k\n.ends\n"), NetlistError);
}

TEST(NetlistParser, ExtraTokensOnFixedArityCardsRejected) {
  EXPECT_THROW((void)parse_netlist("R1 a 0 1k extra\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("K1 L1 L2 0.5 junk\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("Vin in 0 1\nG1 0 out in 0 1m trailing\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("Vin in 0 1\nE1 o 0 in 0 2 trailing\n"), NetlistError);
}

TEST(NetlistParser, Fig10aTopologyFromText) {
  // The standard CMOS output stage as a netlist file would express it.
  const auto circuit = parse_netlist(R"(
* Fig. 10a unsupplied stage, one pin
Vd lc1 0 3
Rrail vdd 0 2k
Mp1 lc1 ngp vdd vdd pmos wl=1000
Mn1 lc1 ngn 0 0 nmos wl=400
Rgp ngp 0 200k
Rgn ngn 0 200k
)");
  const DcSolution s = solve_dc(*circuit);
  ASSERT_TRUE(s.converged);
  // The MP1 bulk diode lifts the floating rail below the pin.
  EXPECT_GT(s.voltage(*circuit, "vdd"), 1.0);
  EXPECT_LT(s.voltage(*circuit, "vdd"), 3.0);
}

}  // namespace
}  // namespace lcosc::spice
