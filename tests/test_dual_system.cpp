// The redundant dual system (Fig. 9 / Section 8): losing one supply must
// not load the other system when the Fig. 11 output stage is used, and
// visibly does with the Fig. 10a stage.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "system/dual_system.h"
#include "waveform/measurements.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

DualSystemConfig dual_config() {
  DualSystemConfig cfg;
  cfg.tanks.tank1 = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.tanks.tank2 = cfg.tanks.tank1;
  cfg.tanks.coupling = 0.15;
  cfg.regulation.tick_period = 0.2e-3;
  return cfg;
}

// Synthetic dead-chip I-V curves standing in for the spice extraction
// (shape-matched; the spice-extracted versions are exercised in
// test_output_stage and the dual-redundancy bench).
PwlTable fig11_like_iv() {
  // Essentially open within +-1.5 V, soft conduction beyond.
  return PwlTable({{-3.0, -0.7e-3}, {-1.5, -20e-6}, {0.0, 0.0}, {1.5, 20e-6}, {3.0, 0.7e-3}});
}

PwlTable fig10a_like_iv() {
  // Diode clamps at +-0.7 V with low series impedance.
  return PwlTable({{-3.0, -45e-3}, {-0.7, -0.1e-3}, {0.0, 0.0}, {0.7, 0.1e-3}, {3.0, 45e-3}});
}

TEST(DualSystem, BothSystemsRegulateWhenHealthy) {
  DualSystem sys(dual_config());
  const DualRunResult r = sys.run(16e-3);
  const double a1 = r.mean_envelope1(14e-3, 16e-3);
  EXPECT_NEAR(a1, 2.7, 2.7 * 0.10);
  ASSERT_FALSE(r.codes2.empty());
  EXPECT_GE(r.codes2.back(), 0);  // still alive
}

TEST(DualSystem, SupplyLossWithBulkSwitchedStageIsBenign) {
  DualSystem sys(dual_config());
  sys.schedule_supply_loss(16e-3, fig11_like_iv());
  const DualRunResult r = sys.run(24e-3);
  const double before = r.mean_envelope1(14e-3, 16e-3);
  const double after = r.mean_envelope1(21e-3, 24e-3);
  // "the unsupplied system does not significantly influence the other".
  EXPECT_NEAR(after, before, before * 0.10);
  EXPECT_NEAR(after, 2.7, 2.7 * 0.10);
}

TEST(DualSystem, SupplyLossWithStandardStageLoadsTheSurvivor) {
  DualSystem fig11_sys(dual_config());
  fig11_sys.schedule_supply_loss(12e-3, fig11_like_iv());
  const DualRunResult r11 = fig11_sys.run(20e-3);

  DualSystem fig10_sys(dual_config());
  fig10_sys.schedule_supply_loss(12e-3, fig10a_like_iv());
  const DualRunResult r10 = fig10_sys.run(20e-3);

  // The dead chip's clamped pins kill its own tank swing, which reflects
  // into the live tank through the coupling: the surviving system must be
  // visibly worse off with the standard stage.
  const double dead_env_11 = [&] {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < r11.envelope2.size(); ++i) {
      if (r11.envelope2.time(i) > 16e-3) {
        acc += r11.envelope2.value(i);
        ++n;
      }
    }
    return n ? acc / n : 0.0;
  }();
  const double dead_env_10 = [&] {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < r10.envelope2.size(); ++i) {
      if (r10.envelope2.time(i) > 16e-3) {
        acc += r10.envelope2.value(i);
        ++n;
      }
    }
    return n ? acc / n : 0.0;
  }();
  EXPECT_LT(dead_env_10, 0.7 * dead_env_11);

  // And the survivor has to burn more current (higher code) or lose
  // amplitude with the clamping stage.
  const double a10 = r10.mean_envelope1(17e-3, 20e-3);
  const double a11 = r11.mean_envelope1(17e-3, 20e-3);
  const int code10 = r10.codes1.back();
  const int code11 = r11.codes1.back();
  EXPECT_TRUE(a10 < a11 * 0.97 || code10 > code11)
      << "a10 " << a10 << " a11 " << a11 << " code10 " << code10 << " code11 " << code11;
}

TEST(DualSystem, DeadSystemStopsRegulating) {
  DualSystem sys(dual_config());
  sys.schedule_supply_loss(5e-3, fig11_like_iv());
  const DualRunResult r = sys.run(10e-3);
  EXPECT_EQ(r.codes2.back(), -1);
  EXPECT_EQ(r.event_time, 5e-3);
}

TEST(DualSystem, CouplingInjectionLocksFrequencies) {
  // With coupled coils both envelopes coexist without beating artifacts:
  // both regulate near target.
  DualSystemConfig cfg = dual_config();
  cfg.tanks.coupling = 0.25;
  DualSystem sys(cfg);
  const DualRunResult r = sys.run(16e-3);
  double acc2 = 0.0;
  std::size_t n2 = 0;
  for (std::size_t i = 0; i < r.envelope2.size(); ++i) {
    if (r.envelope2.time(i) > 14e-3) {
      acc2 += r.envelope2.value(i);
      ++n2;
    }
  }
  ASSERT_GT(n2, 0u);
  EXPECT_NEAR(acc2 / n2, 2.7, 2.7 * 0.15);
}

TEST(DualSystem, InjectionLockingInsideLockRange) {
  // 1% tank detuning at k=0.15: the pair locks to one common frequency
  // (paper Section 8: "the two systems are running at the same frequency").
  DualSystemConfig cfg = dual_config();
  cfg.tanks.tank2 = tank::design_tank(4.0_MHz * 1.01, 40.0, 3.3_uH);
  cfg.waveform_decimation = 1;
  DualSystem sys(cfg);
  const DualRunResult r = sys.run(4e-3);
  const double t_end = r.differential1.end_time();
  const auto f1 = estimate_frequency(r.differential1.window(t_end - 100e-6, t_end));
  const auto f2 = estimate_frequency(r.differential2.window(t_end - 100e-6, t_end));
  ASSERT_TRUE(f1 && f2);
  EXPECT_LT(std::abs(*f1 - *f2), 1e3);
}

TEST(DualSystem, BeatsOutsideLockRange) {
  // 8% detuning at weak coupling: no lock, the oscillators run apart.
  DualSystemConfig cfg = dual_config();
  cfg.tanks.coupling = 0.04;
  cfg.tanks.tank2 = tank::design_tank(4.0_MHz * 1.08, 40.0, 3.3_uH);
  cfg.waveform_decimation = 1;
  DualSystem sys(cfg);
  const DualRunResult r = sys.run(4e-3);
  const double t_end = r.differential1.end_time();
  const auto f1 = estimate_frequency(r.differential1.window(t_end - 100e-6, t_end));
  const auto f2 = estimate_frequency(r.differential2.window(t_end - 100e-6, t_end));
  ASSERT_TRUE(f1 && f2);
  EXPECT_GT(std::abs(*f1 - *f2), 50e3);
}

TEST(DualSystem, SupplyLossRequiresIvTable) {
  DualSystem sys(dual_config());
  sys.schedule_supply_loss(1e-3, PwlTable());
  EXPECT_THROW(sys.run(2e-3), ConfigError);
}

}  // namespace
}  // namespace lcosc::system
