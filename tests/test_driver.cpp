// The oscillator driver macro-model: code -> current limit / gm mapping,
// cross-coupled outputs, amplitude prediction (Eq. 4), supply current.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/constants.h"
#include "common/units.h"
#include "dac/exponential_dac.h"
#include "driver/oscillator_driver.h"
#include "tank/rlc_tank.h"

namespace lcosc::driver {
namespace {

using namespace lcosc::literals;

TEST(Driver, CurrentLimitFollowsIdealDac) {
  OscillatorDriver drv;
  const dac::PwlExponentialDac ideal;
  for (int code = 0; code <= 127; code += 17) {
    drv.set_code(code);
    EXPECT_NEAR(drv.current_limit(), ideal.current(code), 1e-15);
  }
}

TEST(Driver, EquivalentGmScalesWithActiveStages) {
  DriverConfig cfg;
  cfg.gm_per_stage = 1.1_mS;
  OscillatorDriver drv(cfg);
  drv.set_code(0);  // 1 stage
  EXPECT_NEAR(drv.equivalent_gm(), 1.1e-3, 1e-12);
  drv.set_code(127);  // 9 stages -> ~10 mS, the paper's max
  EXPECT_NEAR(drv.equivalent_gm(), 9.9e-3, 1e-12);
  EXPECT_LE(drv.equivalent_gm(), kMaxEquivalentTransconductance * 1.05);
}

TEST(Driver, CrossCoupledOutputSigns) {
  OscillatorDriver drv;
  drv.set_code(64);
  // v1 positive, v2 negative: stage sensing v2 pushes current INTO LC1.
  const NodeCurrents out = drv.output(0.1, -0.1);
  EXPECT_GT(out.into_lc1, 0.0);
  EXPECT_LT(out.into_lc2, 0.0);
  // Regenerative: power delivered into the differential port is positive.
  EXPECT_GT(out.into_lc1 * 0.1 + out.into_lc2 * -0.1, 0.0);
}

TEST(Driver, OutputLimitedByDacCurrent) {
  OscillatorDriver drv;
  drv.set_code(32);
  const double limit = drv.current_limit();
  // Well inside the rail-compliance range: full limited drive available.
  const NodeCurrents out = drv.output(1.0, -1.0);
  EXPECT_NEAR(std::abs(out.into_lc1), limit, 1e-15);
  EXPECT_NEAR(std::abs(out.into_lc2), limit, 1e-15);
}

TEST(Driver, OutputComplianceCollapsesAtTheRail) {
  // The stage cannot push a pin past its supply rail: the outward current
  // rolls off to zero at rail_headroom, while pulling back stays intact.
  OscillatorDriver drv;
  drv.set_code(64);
  const double rail = DriverConfig{}.rail_headroom;
  const NodeCurrents at_rail = drv.output(rail + 0.1, -(rail + 0.1));
  EXPECT_DOUBLE_EQ(at_rail.into_lc1, 0.0);  // outward push gone
  EXPECT_DOUBLE_EQ(at_rail.into_lc2, 0.0);
  // A pin parked at the rail can still be pulled back toward Vref: with
  // LC2 positive, the stage sinks current out of LC1 (inward), which the
  // compliance must not block even with LC1 at the rail.
  const NodeCurrents pull_back = drv.output(rail + 0.1, 0.5);
  EXPECT_LT(pull_back.into_lc1, 0.0);
}

TEST(Driver, DisabledDriverIsDead) {
  OscillatorDriver drv;
  drv.set_code(64);
  drv.set_enabled(false);
  const NodeCurrents out = drv.output(1.0, -1.0);
  EXPECT_DOUBLE_EQ(out.into_lc1, 0.0);
  EXPECT_DOUBLE_EQ(out.into_lc2, 0.0);
  EXPECT_DOUBLE_EQ(drv.current_limit(), 0.0);
  EXPECT_DOUBLE_EQ(drv.supply_current(1.0), 0.0);
}

TEST(Driver, InvalidCodeRejected) {
  OscillatorDriver drv;
  EXPECT_THROW(drv.set_code(-1), ConfigError);
  EXPECT_THROW(drv.set_code(128), ConfigError);
}

TEST(Driver, PredictedAmplitudeProportionalToCurrentLimit) {
  // Eq. 4/5: V ~ I_M, so doubling M doubles the amplitude (deep limiting).
  const tank::RlcTank tk(tank::design_tank(4.0_MHz, 50.0, 100.0_uH));
  OscillatorDriver drv;
  drv.set_code(48);  // M = 64
  const auto a1 = drv.predicted_amplitude(tk);
  drv.set_code(64);  // M = 128
  const auto a2 = drv.predicted_amplitude(tk);
  ASSERT_TRUE(a1 && a2);
  EXPECT_NEAR(*a2 / *a1, 2.0, 0.15);
}

TEST(Driver, PredictedAmplitudeMatchesEq4ShapeFactor) {
  // Deep limiting: A ~ k * Im * Rp with k in [0.9, 4/pi].
  const tank::RlcTank tk(tank::design_tank(4.0_MHz, 50.0, 100.0_uH));
  OscillatorDriver drv;
  drv.set_code(64);
  const auto a = drv.predicted_amplitude(tk);
  ASSERT_TRUE(a.has_value());
  const double k = *a / (drv.current_limit() * tk.parallel_resistance());
  EXPECT_GT(k, 0.85);
  EXPECT_LT(k, kDriverShapeFactorSquare + 0.01);
}

TEST(Driver, NoOscillationBelowCriticalGm) {
  // A very lossy tank whose Gm0 exceeds the driver's equivalent gm.
  const tank::RlcTank lossy(tank::design_tank(4.0_MHz, 0.2, 100.0_uH));
  OscillatorDriver drv;
  drv.set_code(16);  // low code -> 2 stages only
  EXPECT_GT(lossy.critical_gm(), drv.equivalent_gm());
  EXPECT_FALSE(drv.predicted_amplitude(lossy).has_value());
}

TEST(Driver, OscillatesAboveCriticalGm) {
  const tank::RlcTank good(tank::design_tank(4.0_MHz, 100.0, 100.0_uH));
  OscillatorDriver drv;
  drv.set_code(16);
  EXPECT_LT(good.critical_gm(), drv.equivalent_gm());
  EXPECT_TRUE(drv.predicted_amplitude(good).has_value());
}

TEST(Driver, FundamentalPortCurrentHalvesGm) {
  OscillatorDriver drv;
  drv.set_code(127);
  // Small amplitude: port current = (gm/2) * A.
  const double a = 1e-4;
  EXPECT_NEAR(drv.fundamental_port_current(a), 0.5 * drv.equivalent_gm() * a,
              0.5 * drv.equivalent_gm() * a * 1e-6);
}

TEST(Driver, SupplyCurrentRangeMatchesSection9) {
  // "Current consumption of the driver ... varies from 250 uA to 30 mA."
  OscillatorDriver drv;
  // High-Q tank: regulation settles at a low code.
  drv.set_code(8);
  const double low_q_current = drv.supply_current(2.7);
  EXPECT_LT(low_q_current, 500e-6);
  EXPECT_GT(low_q_current, 100e-6);
  // Full code, deeply driven (saturation voltage at code 127 is ~5 V, so
  // the clipped regime needs a large swing): tens of mA.
  drv.set_code(127);
  const double high = drv.supply_current(12.0);
  EXPECT_GT(high, 10e-3);
  EXPECT_LT(high, 35e-3);
}

TEST(Driver, SupplyCurrentMonotoneInCode) {
  OscillatorDriver drv;
  double prev = -1.0;
  for (int code = 1; code <= 127; code += 9) {
    drv.set_code(code);
    const double i = drv.supply_current(2.7);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(Driver, MismatchedDacChangesLimit) {
  OscillatorDriver drv;
  drv.set_code(96);
  const double ideal = drv.current_limit();
  auto dac = std::make_shared<const dac::CurrentLimitationDac>(
      kDacUnitCurrent, dac::MismatchConfig{}, 12345u);
  drv.use_mismatched_dac(dac);
  EXPECT_NE(drv.current_limit(), ideal);
  EXPECT_NEAR(drv.current_limit(), ideal, ideal * 0.15);
}

TEST(Driver, ControlLawOverride) {
  OscillatorDriver drv;
  drv.use_control_law(std::make_shared<const dac::LinearLaw>());
  drv.set_code(64);
  EXPECT_NEAR(drv.current_limit(), 64.0 / 127.0 * kDacUnitCurrent * kDacFullScaleUnits,
              1e-12);
}

}  // namespace
}  // namespace lcosc::driver
