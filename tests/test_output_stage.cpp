// The floating-supply output-stage testbench (Figs. 10/11 -> 17/18):
// the bulk-switched topology must not load the pins within the operating
// range, while the standard CMOS stage clamps a diode drop away.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "driver/output_stage.h"

namespace lcosc::driver {
namespace {

// Sweeps are moderately expensive; share them across tests.
class UnsuppliedSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    standard_ = new UnsuppliedSweep(
        UnsuppliedDriverTestbench(OutputStageTopology::StandardCmos).sweep(-3.0, 3.0, 61));
    series_ = new UnsuppliedSweep(
        UnsuppliedDriverTestbench(OutputStageTopology::SeriesPmos).sweep(-3.0, 3.0, 61));
    bulk_ = new UnsuppliedSweep(
        UnsuppliedDriverTestbench(OutputStageTopology::BulkSwitched).sweep(-3.0, 3.0, 61));
  }
  static void TearDownTestSuite() {
    delete standard_;
    delete series_;
    delete bulk_;
    standard_ = series_ = bulk_ = nullptr;
  }

  static const UnsuppliedSweep* standard_;
  static const UnsuppliedSweep* series_;
  static const UnsuppliedSweep* bulk_;
};

const UnsuppliedSweep* UnsuppliedSweepTest::standard_ = nullptr;
const UnsuppliedSweep* UnsuppliedSweepTest::series_ = nullptr;
const UnsuppliedSweep* UnsuppliedSweepTest::bulk_ = nullptr;

TEST_F(UnsuppliedSweepTest, AllPointsConverge) {
  for (const auto* sweep : {standard_, series_, bulk_}) {
    std::size_t converged = 0;
    for (const auto& p : sweep->points) {
      if (p.converged) ++converged;
    }
    EXPECT_GE(converged, sweep->points.size() - 2)
        << to_string(sweep->topology);
  }
}

TEST_F(UnsuppliedSweepTest, ZeroBiasZeroCurrent) {
  for (const auto* sweep : {standard_, series_, bulk_}) {
    for (const auto& p : sweep->points) {
      if (std::abs(p.differential_voltage) < 1e-9) {
        EXPECT_LT(std::abs(p.pin_current), 1e-6) << to_string(sweep->topology);
      }
    }
  }
}

TEST_F(UnsuppliedSweepTest, Fig17BulkSwitchedQuietInOperatingRange) {
  // "For maximum operating amplitude, which is 2.7 Vpp, the unsupplied
  // system does not significantly influence the other system."
  EXPECT_LT(bulk_->max_abs_current_within(1.35), 50e-6);
}

TEST_F(UnsuppliedSweepTest, Fig17BulkSwitchedBoundedAtFullSweep) {
  // Fig. 17 y-range: below ~1 mA at +-3 V.
  EXPECT_LT(bulk_->max_abs_current(), 1.5e-3);
}

TEST_F(UnsuppliedSweepTest, StandardCmosClampsHard) {
  // The Fig. 10a stage conducts heavily within the operating range:
  // an order of magnitude above the bulk-switched stage's bound.
  EXPECT_GT(standard_->max_abs_current_within(1.35), 10.0 * 50e-6);
  EXPECT_GT(standard_->max_abs_current_within(2.7),
            20.0 * bulk_->max_abs_current_within(2.7));
}

TEST_F(UnsuppliedSweepTest, SeriesPmosFixesNegativeSide) {
  // Fig. 10b: the pin "can go negative" -- negative-side current far below
  // the standard stage's.
  auto worst_negative = [](const UnsuppliedSweep& s) {
    double worst = 0.0;
    for (const auto& p : s.points) {
      if (p.differential_voltage < -0.5) worst = std::max(worst, std::abs(p.pin_current));
    }
    return worst;
  };
  EXPECT_LT(worst_negative(*series_), 0.2 * worst_negative(*standard_));
}

TEST_F(UnsuppliedSweepTest, CurrentIsOddIsh) {
  // The topologies are symmetric per pin; the I-V must change sign with
  // the drive (not necessarily perfectly odd because the two pin circuits
  // see different polarities).
  auto at = [](const UnsuppliedSweep& s, double v) {
    for (const auto& p : s.points) {
      if (std::abs(p.differential_voltage - v) < 1e-6) return p.pin_current;
    }
    ADD_FAILURE() << "sweep point not found";
    return 0.0;
  };
  EXPECT_GT(at(*standard_, 3.0), 0.0);
  EXPECT_LT(at(*standard_, -3.0), 0.0);
}

TEST_F(UnsuppliedSweepTest, Fig18FloatingVddFollowsPositiveOverdrive) {
  // "For positive overdrive on LCx bulk diode of MP1 is activated": the
  // floating Vdd rail gets pulled up roughly a diode below the high pin.
  double vdd_at_3 = 0.0;
  double lc1_at_3 = 0.0;
  for (const auto& p : bulk_->points) {
    if (std::abs(p.differential_voltage - 3.0) < 1e-6) {
      vdd_at_3 = p.v_vdd;
      lc1_at_3 = p.v_lc1;
    }
  }
  EXPECT_GT(lc1_at_3, 0.5);
  EXPECT_GT(vdd_at_3, 0.05);
  EXPECT_LT(vdd_at_3, lc1_at_3);
}

TEST_F(UnsuppliedSweepTest, Fig18PinsSplitTheDifferential) {
  for (const auto& p : bulk_->points) {
    if (!p.converged) continue;
    EXPECT_NEAR(p.v_lc1 - p.v_lc2, p.differential_voltage, 1e-6);
  }
}

TEST(OutputStage, ExtractIvMonotoneGrid) {
  UnsuppliedDriverTestbench tb(OutputStageTopology::BulkSwitched);
  const PwlTable iv = tb.extract_iv(-3.0, 3.0, 31);
  EXPECT_GE(iv.size(), 25u);
  EXPECT_NEAR(iv(0.0), 0.0, 1e-6);
  // Evaluation anywhere in range is finite.
  for (double v = -3.0; v <= 3.0; v += 0.37) {
    EXPECT_TRUE(std::isfinite(iv(v)));
  }
}

TEST(OutputStage, TopologyNames) {
  EXPECT_EQ(to_string(OutputStageTopology::StandardCmos), "fig10a-standard-cmos");
  EXPECT_EQ(to_string(OutputStageTopology::SeriesPmos), "fig10b-series-pmos");
  EXPECT_EQ(to_string(OutputStageTopology::BulkSwitched), "fig11-bulk-switched");
}

}  // namespace
}  // namespace lcosc::driver
