// Internal FMEA campaign: hard on-chip faults are detected (or honestly
// reported as gaps), and the hardened runner degrades gracefully -- a
// throwing case and an over-budget case become recorded rows while the
// rest of the campaign completes identically for any worker count.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "system/internal_fmea.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

InternalFmeaConfig fast_config() {
  InternalFmeaConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  // Faster ticks shorten the code walks; dynamics per tick are unchanged.
  cfg.system.regulation.tick_period = 0.25e-3;
  // NVM preset near the settled code (paper Section 4): the loop is
  // regulating well before the fault injects at settle_time.
  cfg.system.regulation.nvm_code = 45;
  cfg.system.waveform_decimation = 0;
  cfg.settle_time = 6e-3;
  cfg.observe_time = 4e-3;
  return cfg;
}

TEST(InternalFmea, GmCollapseTripsTheWatchdog) {
  const InternalFmeaConfig cfg = fast_config();
  const InternalFmeaRow row = run_internal_fmea_case(cfg, faults::make_gm_collapse());
  EXPECT_EQ(row.status.outcome, CaseOutcome::Ok);
  EXPECT_TRUE(row.detected);
  EXPECT_TRUE(row.observed.missing_oscillation);
  EXPECT_TRUE(row.expected_channel_hit);
  EXPECT_TRUE(row.safe_state_entered);
  ASSERT_TRUE(row.detection_latency.has_value());
  EXPECT_LT(*row.detection_latency, 2e-3);
}

TEST(InternalFmea, WindowStuckHighWalksIntoLowAmplitude) {
  InternalFmeaConfig cfg = fast_config();
  // The code walks down one step per 0.25 ms tick and then the 3 ms
  // low-amplitude persistence must elapse.
  cfg.observe_time = 10e-3;
  const InternalFmeaRow row = run_internal_fmea_case(
      cfg, faults::make_fault(faults::InternalFaultKind::WindowStuckHigh));
  EXPECT_EQ(row.status.outcome, CaseOutcome::Ok);
  EXPECT_TRUE(row.detected);
  EXPECT_TRUE(row.observed.low_amplitude);
  EXPECT_TRUE(row.expected_channel_hit);
  EXPECT_TRUE(row.safe_state_entered);
  ASSERT_TRUE(row.detection_latency.has_value());
}

TEST(InternalFmea, LatentFaultsAreHonestGaps) {
  const InternalFmeaConfig cfg = fast_config();
  for (const auto kind : {faults::InternalFaultKind::FsmFrozen,
                          faults::InternalFaultKind::WatchdogDead}) {
    const InternalFmeaRow row = run_internal_fmea_case(cfg, faults::make_fault(kind));
    EXPECT_EQ(row.status.outcome, CaseOutcome::Ok) << faults::to_string(kind);
    EXPECT_FALSE(row.detected) << faults::to_string(kind);
    EXPECT_FALSE(row.detection_latency.has_value()) << faults::to_string(kind);
    EXPECT_FALSE(faults::gap_note(row.fault).empty()) << faults::to_string(kind);
  }
}

TEST(InternalFmea, ThrowingAndStallingCasesDegradeGracefully) {
  InternalFmeaConfig cfg = fast_config();
  cfg.observe_time = 2e-3;
  cfg.faults = {faults::make_fault(faults::InternalFaultKind::SelfTestThrow),
                faults::make_fault(faults::InternalFaultKind::SelfTestStall),
                faults::make_fault(faults::InternalFaultKind::None)};
  const InternalFmeaReport report = run_internal_fmea_campaign(cfg);
  ASSERT_EQ(report.rows.size(), 3u);

  // The always-throwing case: retried once (tightened integrator), then
  // recorded as a simulation error with the exception message.
  const InternalFmeaRow& thrown = report.rows[0];
  EXPECT_EQ(thrown.status.outcome, CaseOutcome::SimulationError);
  EXPECT_EQ(thrown.status.retries, cfg.max_retries);
  EXPECT_NE(thrown.status.error.find("self-test fault"), std::string::npos);

  // The stalled case: the frozen simulation clock trips the step budget.
  const InternalFmeaRow& stalled = report.rows[1];
  EXPECT_EQ(stalled.status.outcome, CaseOutcome::Timeout);
  EXPECT_EQ(stalled.status.retries, 0);
  EXPECT_NE(stalled.status.error.find("budget"), std::string::npos);

  // The rest of the campaign completed normally.
  const InternalFmeaRow& control = report.rows[2];
  EXPECT_EQ(control.status.outcome, CaseOutcome::Ok);
  EXPECT_FALSE(control.detected);
  EXPECT_EQ(report.completed_count(), 1u);
  EXPECT_EQ(report.error_count(), 2u);
}

void expect_rows_identical(const std::vector<InternalFmeaRow>& as,
                           const std::vector<InternalFmeaRow>& bs) {
  ASSERT_EQ(as.size(), bs.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    const InternalFmeaRow& a = as[i];
    const InternalFmeaRow& b = bs[i];
    EXPECT_EQ(a.fault, b.fault) << "row " << i;
    EXPECT_EQ(a.expected, b.expected) << "row " << i;
    EXPECT_EQ(a.observed, b.observed) << "row " << i;
    EXPECT_EQ(a.detected, b.detected) << "row " << i;
    EXPECT_EQ(a.expected_channel_hit, b.expected_channel_hit) << "row " << i;
    EXPECT_EQ(a.safe_state_entered, b.safe_state_entered) << "row " << i;
    EXPECT_EQ(a.detection_latency, b.detection_latency) << "row " << i;
    EXPECT_EQ(a.final_code, b.final_code) << "row " << i;
    EXPECT_EQ(a.status, b.status) << "row " << i;
  }
}

TEST(InternalFmea, ReportIdenticalForAnyWorkerCount) {
  InternalFmeaConfig cfg = fast_config();
  cfg.observe_time = 2e-3;
  cfg.faults = {faults::make_fault(faults::InternalFaultKind::SelfTestThrow),
                faults::make_fault(faults::InternalFaultKind::SelfTestStall),
                faults::make_gm_collapse(),
                faults::make_fault(faults::InternalFaultKind::None),
                faults::make_line_stuck(faults::DacBus::OscF, 3, true)};

  cfg.workers = 1;
  const InternalFmeaReport serial = run_internal_fmea_campaign(cfg);
  cfg.workers = 4;
  const InternalFmeaReport parallel = run_internal_fmea_campaign(cfg);
  expect_rows_identical(serial.rows, parallel.rows);
}

TEST(InternalFmea, SharedPrefixSpanMatchesPerCaseRows) {
  // The batched span path (one shared healthy settle prefix, one session
  // copy per fault) must reproduce the per-case rows exactly -- including
  // the degraded ones, whose continuations throw and fall back to the
  // full serial case with its retry accounting and error text.
  InternalFmeaConfig cfg = fast_config();
  cfg.observe_time = 2e-3;
  cfg.faults = {faults::make_fault(faults::InternalFaultKind::SelfTestThrow),
                faults::make_gm_collapse(),
                faults::make_fault(faults::InternalFaultKind::SelfTestStall),
                faults::make_fault(faults::InternalFaultKind::None),
                faults::make_line_stuck(faults::DacBus::OscF, 3, true)};

  std::vector<InternalFmeaRow> per_case;
  for (std::size_t i = 0; i < cfg.faults.size(); ++i) {
    per_case.push_back(run_internal_fmea_case_at(cfg, i));
  }

  expect_rows_identical(per_case, run_internal_fmea_cases(cfg, 0, cfg.faults.size()));

  // A mid-list span (as a shard or a mid-chunk resume would request).
  const std::vector<InternalFmeaRow> middle = run_internal_fmea_cases(cfg, 1, 3);
  expect_rows_identical({per_case[1], per_case[2], per_case[3]}, middle);

  EXPECT_TRUE(run_internal_fmea_cases(cfg, 2, 0).empty());
  EXPECT_THROW((void)run_internal_fmea_cases(cfg, 4, 2), ConfigError);
}

TEST(InternalFmea, CoverageMatrixBucketsEveryRow) {
  InternalFmeaConfig cfg = fast_config();
  cfg.observe_time = 2e-3;
  cfg.faults = {faults::make_gm_collapse(),
                faults::make_fault(faults::InternalFaultKind::SelfTestThrow),
                faults::make_line_stuck(faults::DacBus::OscF, 0, true),
                faults::make_line_stuck(faults::DacBus::OscF, 1, true)};
  const InternalFmeaReport report = run_internal_fmea_campaign(cfg);
  const std::vector<CoverageEntry> matrix = report.coverage_matrix();
  std::size_t total = 0;
  for (const CoverageEntry& e : matrix) {
    std::size_t bucketed = e.errors;
    for (const std::size_t n : e.by_channel) bucketed += n;
    EXPECT_EQ(bucketed, e.total) << faults::to_string(e.kind);
    total += e.total;
  }
  EXPECT_EQ(total, report.rows.size());
  // Both stuck lines collapse into one matrix entry.
  ASSERT_EQ(matrix.size(), 3u);
}

TEST(InternalFmea, StallWithoutBudgetIsRejectedUpFront) {
  OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.waveform_decimation = 0;
  OscillatorSystem sys(cfg);
  sys.schedule_internal_fault(
      faults::make_fault(faults::InternalFaultKind::SelfTestStall), 1e-4);
  EXPECT_THROW((void)sys.run(1e-3), ConfigError);
}

}  // namespace
}  // namespace lcosc::system
