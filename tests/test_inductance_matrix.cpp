// N-coil coupled magnetics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "tank/coupled_tanks.h"
#include "tank/inductance_matrix.h"
#include "tank/rlc_tank.h"

namespace lcosc::tank {
namespace {

TEST(InductanceMatrix, SingleCoilIsTrivial) {
  const InductanceMatrix m = InductanceMatrix::uniform({1e-6}, 0.0);
  const Vector d = m.current_derivatives({2.0});
  EXPECT_NEAR(d[0], 2.0 / 1e-6, 1e-3);
  EXPECT_NEAR(m.stored_energy({3.0}), 0.5 * 1e-6 * 9.0, 1e-12);
}

TEST(InductanceMatrix, TwoCoilsMatchCoupledTanks) {
  // The dedicated two-coil class and the general matrix must agree.
  CoupledTanksConfig cfg;
  cfg.tank1 = design_tank(4e6, 20.0, 3.3e-6);
  cfg.tank2 = design_tank(4e6, 20.0, 6.6e-6);
  cfg.coupling = 0.25;
  const CoupledTanks two(cfg);
  const InductanceMatrix m =
      InductanceMatrix::uniform({cfg.tank1.inductance, cfg.tank2.inductance}, 0.25);

  const auto d2 = two.current_derivatives(1.0, -0.5);
  const Vector dn = m.current_derivatives({1.0, -0.5});
  EXPECT_NEAR(dn[0], d2[0], std::abs(d2[0]) * 1e-9);
  EXPECT_NEAR(dn[1], d2[1], std::abs(d2[1]) * 1e-9);
  EXPECT_NEAR(m.mutual(0, 1), two.mutual_inductance(), 1e-15);
}

TEST(InductanceMatrix, InverseRoundTrip) {
  // L * (di/dt) reproduces the applied voltages for a 3-coil system.
  const InductanceMatrix m = InductanceMatrix::uniform({3.3e-6, 1.0e-6, 1.0e-6}, 0.2);
  const Vector v = {1.0, -0.3, 0.7};
  const Vector d = m.current_derivatives(v);
  // Reconstruct v = L d.
  for (std::size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 3; ++j) acc += m.mutual(i, j) * d[j];
    EXPECT_NEAR(acc, v[i], 1e-9);
  }
}

TEST(InductanceMatrix, EnergyIsPositive) {
  const InductanceMatrix m = InductanceMatrix::uniform({3.3e-6, 1.0e-6, 2.2e-6}, 0.3);
  for (const Vector i : {Vector{1.0, 0.0, 0.0}, Vector{-1.0, 2.0, 0.5},
                         Vector{0.1, -0.1, 0.1}}) {
    EXPECT_GT(m.stored_energy(i), 0.0);
  }
}

TEST(InductanceMatrix, FluxLinkageSuperposes) {
  const InductanceMatrix m = InductanceMatrix::uniform({1e-6, 1e-6}, 0.5);
  const Vector f1 = m.flux_linkage({1.0, 0.0});
  EXPECT_NEAR(f1[0], 1e-6, 1e-15);
  EXPECT_NEAR(f1[1], 0.5e-6, 1e-15);  // mutual flux into coil 2
}

TEST(InductanceMatrix, UnphysicalCouplingRejected) {
  // Three coils all coupled at k=0.9 pairwise: L is not positive definite
  // for k > 0.5 with equal self inductances... actually -0.9: negative
  // uniform coupling beyond -1/(n-1) breaks positive definiteness.
  EXPECT_THROW(InductanceMatrix::uniform({1e-6, 1e-6, 1e-6}, -0.6), ConfigError);
  // |k| >= 1 is rejected outright.
  Matrix k(2, 2);
  k(0, 1) = k(1, 0) = 1.0;
  EXPECT_THROW(InductanceMatrix({1e-6, 1e-6}, k), ConfigError);
}

TEST(InductanceMatrix, AsymmetricCouplingRejected) {
  Matrix k(2, 2);
  k(0, 1) = 0.3;
  k(1, 0) = 0.2;
  EXPECT_THROW(InductanceMatrix({1e-6, 1e-6}, k), ConfigError);
}

TEST(InductanceMatrix, SensorGeometry) {
  // Excitation coil + two receiving coils: couplings vary with rotor
  // angle; the matrix stays physical across the whole revolution.
  for (double theta = 0.0; theta < 6.28; theta += 0.3) {
    Matrix k(3, 3);
    k(0, 1) = k(1, 0) = 0.3 * std::sin(theta);
    k(0, 2) = k(2, 0) = 0.3 * std::cos(theta);
    k(1, 2) = k(2, 1) = 0.05;
    const InductanceMatrix m({3.3e-6, 1.0e-6, 1.0e-6}, k);
    EXPECT_GT(m.stored_energy({1.0, 0.1, -0.1}), 0.0);
  }
}

}  // namespace
}  // namespace lcosc::tank
