// Tests for the damped Newton solver.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/newton.h"

namespace lcosc {
namespace {

TEST(Newton, Scalar) {
  // x^2 = 4.
  const NewtonSystem system = [](const Vector& x, Vector& f, Matrix& jac) {
    f[0] = x[0] * x[0] - 4.0;
    jac(0, 0) = 2.0 * x[0];
  };
  const NewtonResult r = solve_newton(system, {1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.solution[0], 2.0, 1e-8);
}

TEST(Newton, TwoDimensional) {
  // Intersection of a circle and a line: x^2 + y^2 = 2, x = y.
  const NewtonSystem system = [](const Vector& x, Vector& f, Matrix& jac) {
    f[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
    f[1] = x[0] - x[1];
    jac(0, 0) = 2.0 * x[0];
    jac(0, 1) = 2.0 * x[1];
    jac(1, 0) = 1.0;
    jac(1, 1) = -1.0;
  };
  const NewtonResult r = solve_newton(system, {2.0, 0.5});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.solution[0], 1.0, 1e-8);
  EXPECT_NEAR(r.solution[1], 1.0, 1e-8);
}

TEST(Newton, ExponentialNeedsDampingOrClamp) {
  // exp(x) = 1e6: naive Newton from 0 overshoots badly without damping.
  const NewtonSystem system = [](const Vector& x, Vector& f, Matrix& jac) {
    f[0] = std::exp(x[0]) - 1e6;
    jac(0, 0) = std::exp(x[0]);
  };
  NewtonOptions options;
  options.max_step = 2.0;
  options.max_iterations = 200;
  options.residual_tolerance = 1e-3;  // residual scale is 1e6
  const NewtonResult r = solve_newton(system, {0.0}, options);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.solution[0], std::log(1e6), 1e-6);
}

TEST(Newton, ReportsNonConvergence) {
  // No real root: x^2 + 1 = 0.
  const NewtonSystem system = [](const Vector& x, Vector& f, Matrix& jac) {
    f[0] = x[0] * x[0] + 1.0;
    jac(0, 0) = 2.0 * x[0];
  };
  NewtonOptions options;
  options.max_iterations = 30;
  const NewtonResult r = solve_newton(system, {3.0}, options);
  EXPECT_FALSE(r.converged);
}

TEST(Newton, AlreadyAtSolution) {
  const NewtonSystem system = [](const Vector& x, Vector& f, Matrix& jac) {
    f[0] = x[0] - 5.0;
    jac(0, 0) = 1.0;
  };
  const NewtonResult r = solve_newton(system, {5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(Newton, SingularJacobianRegularized) {
  // f(x) = x^3 has a zero-derivative root at 0; the solver should still
  // creep in (slow linear convergence) rather than blow up.
  const NewtonSystem system = [](const Vector& x, Vector& f, Matrix& jac) {
    f[0] = x[0] * x[0] * x[0];
    jac(0, 0) = 3.0 * x[0] * x[0];
  };
  NewtonOptions options;
  options.max_iterations = 500;
  options.residual_tolerance = 1e-9;
  const NewtonResult r = solve_newton(system, {1.0}, options);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.solution[0], 0.0, 1e-2);
}

}  // namespace
}  // namespace lcosc
