// Scripted multi-event scenarios: fault -> safe state -> repair ->
// recovery, and temperature steps during operation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "system/oscillator_system.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

OscillatorSystemConfig scenario_config() {
  OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  cfg.safety.low_amplitude.persistence = 2e-3;
  cfg.waveform_decimation = 0;
  return cfg;
}

TEST(Scenario, FaultThenRecoveryReturnsToRegulation) {
  OscillatorSystem sys(scenario_config());
  sys.schedule_event(8e-3, FaultEvent{tank::TankFault::OpenCoil, {}});
  sys.schedule_event(16e-3, RecoveryEvent{});
  const SimulationResult r = sys.run(40e-3);

  // During the fault: safe state (code 127, watchdog latched).
  bool saw_safe_state = false;
  for (const auto& tick : r.ticks) {
    if (tick.time > 10e-3 && tick.time < 16e-3) {
      saw_safe_state |= tick.faults.missing_oscillation && tick.code == 127;
    }
  }
  EXPECT_TRUE(saw_safe_state);

  // After recovery: faults cleared, regulation pulls the code back down
  // from 127 and the amplitude returns to the window.
  EXPECT_FALSE(r.final_faults.any());
  EXPECT_EQ(r.final_mode, regulation::RegulationMode::Regulating);
  EXPECT_LT(r.final_code, 127);
  EXPECT_NEAR(r.settled_amplitude(0.1), 2.7, 2.7 * 0.10);
}

TEST(Scenario, RepeatedFaultsEachDetected) {
  OscillatorSystem sys(scenario_config());
  sys.schedule_event(8e-3, FaultEvent{tank::TankFault::CoilShortToGround, {}});
  sys.schedule_event(14e-3, RecoveryEvent{});
  sys.schedule_event(24e-3, FaultEvent{tank::TankFault::OpenCoil, {}});
  const SimulationResult r = sys.run(32e-3);

  // First fault latched, then cleared, then latched again.
  bool cleared_between = false;
  for (const auto& tick : r.ticks) {
    if (tick.time > 18e-3 && tick.time < 23e-3 && !tick.faults.any()) {
      cleared_between = true;
    }
  }
  EXPECT_TRUE(cleared_between);
  EXPECT_TRUE(r.final_faults.missing_oscillation);
  EXPECT_EQ(r.final_mode, regulation::RegulationMode::SafeState);
}

TEST(Scenario, TemperatureStepShiftsTheWindow) {
  // A hot step drifts the bandgap window slightly; the loop stays locked
  // (the drift is well below one regulation step).
  OscillatorSystem sys(scenario_config());
  sys.schedule_event(15e-3, TemperatureEvent{423.0});
  const SimulationResult r = sys.run(30e-3);
  EXPECT_FALSE(r.final_faults.any());
  EXPECT_NEAR(r.settled_amplitude(0.2), 2.7, 2.7 * 0.08);
}

TEST(Scenario, EventsSortedRegardlessOfScheduleOrder) {
  OscillatorSystem sys(scenario_config());
  sys.schedule_event(16e-3, RecoveryEvent{});
  sys.schedule_event(8e-3, FaultEvent{tank::TankFault::OpenCoil, {}});  // earlier, added later
  const SimulationResult r = sys.run(30e-3);
  EXPECT_FALSE(r.final_faults.any());  // recovery really ran after the fault
}

TEST(Scenario, NegativeEventTimeRejected) {
  OscillatorSystem sys(scenario_config());
  EXPECT_THROW(sys.schedule_event(-1.0, RecoveryEvent{}), ConfigError);
}

}  // namespace
}  // namespace lcosc::system
