// Minimal JSON well-formedness validator shared by the telemetry and
// fleet-observability tests: values, objects, arrays, strings with
// escapes, numbers, true/false/null, and nothing after the top-level
// value.  Intentionally strict about structure and lax about semantics
// (duplicate keys pass) -- the tests assert content separately.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

namespace lcosc::testutil {

class JsonValidator {
 public:
  explicit JsonValidator(std::string text) : text_(std::move(text)) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string_view(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    return digits && pos_ > start;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (pos_ < text_.size()) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (pos_ < text_.size()) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace lcosc::testutil
