// Monte-Carlo tolerance analysis over external component spread.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "system/tolerance_analysis.h"

namespace lcosc::system {
namespace {

using namespace lcosc::literals;

ToleranceConfig base_config(int samples = 40) {
  ToleranceConfig cfg;
  cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.nominal.regulation.tick_period = 0.25e-3;
  cfg.samples = samples;
  cfg.run_duration = 40e-3;
  return cfg;
}

TEST(Tolerance, FullYieldAtTenPercentComponents) {
  // The headline claim: the regulation absorbs component spread.
  const ToleranceReport report = run_tolerance_analysis(base_config());
  EXPECT_EQ(report.samples.size(), 40u);
  EXPECT_DOUBLE_EQ(report.yield(), 1.0);
  // All samples inside the amplitude acceptance band.
  EXPECT_GT(report.min_amplitude(), 2.7 * 0.9);
  EXPECT_LT(report.max_amplitude(), 2.7 * 1.1);
}

TEST(Tolerance, CodesSpreadWithComponents) {
  const ToleranceReport report = run_tolerance_analysis(base_config());
  // Rs varies +-30%: the settled code must move to compensate.
  EXPECT_GT(report.max_code() - report.min_code(), 2);
  // But stays inside the code range with margin.
  EXPECT_GT(report.min_code(), 16);
  EXPECT_LT(report.max_code(), 127);
}

TEST(Tolerance, DeterministicFromSeed) {
  const ToleranceReport a = run_tolerance_analysis(base_config(10));
  const ToleranceReport b = run_tolerance_analysis(base_config(10));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].settled_amplitude, b.samples[i].settled_amplitude);
    EXPECT_EQ(a.samples[i].settled_code, b.samples[i].settled_code);
  }
}

TEST(Tolerance, SeedChangesSamples) {
  ToleranceConfig cfg = base_config(10);
  cfg.seed = 2;
  const ToleranceReport a = run_tolerance_analysis(base_config(10));
  const ToleranceReport b = run_tolerance_analysis(cfg);
  bool different = false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (a.samples[i].settled_code != b.samples[i].settled_code) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(Tolerance, ZeroToleranceIsNominal) {
  ToleranceConfig cfg = base_config(5);
  cfg.inductance_tolerance = 0.0;
  cfg.capacitance_tolerance = 0.0;
  cfg.resistance_tolerance = 0.0;
  cfg.include_dac_mismatch = false;
  const ToleranceReport report = run_tolerance_analysis(cfg);
  for (std::size_t i = 1; i < report.samples.size(); ++i) {
    EXPECT_EQ(report.samples[i].settled_code, report.samples[0].settled_code);
    EXPECT_DOUBLE_EQ(report.samples[i].settled_amplitude,
                     report.samples[0].settled_amplitude);
  }
}

TEST(Tolerance, ResonanceAndQRecorded) {
  const ToleranceReport report = run_tolerance_analysis(base_config(10));
  for (const auto& s : report.samples) {
    EXPECT_GT(s.resonance_frequency, 3.0e6);
    EXPECT_LT(s.resonance_frequency, 5.0e6);
    EXPECT_GT(s.quality_factor, 20.0);
    EXPECT_LT(s.quality_factor, 80.0);
    EXPECT_GT(s.supply_current, 0.0);
  }
}

TEST(Tolerance, ExtremeSpreadDegradesYield) {
  // Sanity: blow the tolerance up until some samples fall outside the
  // acceptance band (e.g. the driver runs out of code range).
  // Start from a marginal tank (Q=8) so the worst Rs/L/C corners push the
  // required drive beyond the code range / gm envelope.
  ToleranceConfig cfg = base_config(30);
  cfg.nominal.tank = tank::design_tank(4.0_MHz, 8.0, 3.3_uH);
  cfg.resistance_tolerance = 0.9;
  cfg.capacitance_tolerance = 0.4;
  cfg.inductance_tolerance = 0.4;
  cfg.amplitude_tolerance = 0.05;
  const ToleranceReport report = run_tolerance_analysis(cfg);
  EXPECT_LT(report.yield(), 1.0);
}

TEST(Tolerance, EmptyReportAccessorsAreWellDefined) {
  // Regression: the min/max accessors used to return garbage sentinels
  // (1e300 / 127 / 0) on an empty report; they now require samples.
  const ToleranceReport empty;
  EXPECT_DOUBLE_EQ(empty.yield(), 0.0);
  EXPECT_THROW((void)empty.min_amplitude(), Error);
  EXPECT_THROW((void)empty.max_amplitude(), Error);
  EXPECT_THROW((void)empty.min_code(), Error);
  EXPECT_THROW((void)empty.max_code(), Error);
  EXPECT_THROW((void)empty.max_supply_current(), Error);
}

TEST(Tolerance, SingleSampleAccessorsAgree) {
  const ToleranceReport report = run_tolerance_analysis(base_config(1));
  ASSERT_EQ(report.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(report.min_amplitude(), report.samples[0].settled_amplitude);
  EXPECT_DOUBLE_EQ(report.max_amplitude(), report.samples[0].settled_amplitude);
  EXPECT_EQ(report.min_code(), report.samples[0].settled_code);
  EXPECT_EQ(report.max_code(), report.samples[0].settled_code);
  EXPECT_DOUBLE_EQ(report.max_supply_current(), report.samples[0].supply_current);
}

TEST(Tolerance, AllFailedReportAccessorsThrow) {
  // A zero-yield report (every sample errored out) has no completed
  // sample to take an extremum over: accessors must throw, not fold the
  // zero-initialized result fields of the failed samples.
  ToleranceReport report;
  report.samples.resize(3);
  for (auto& s : report.samples) {
    s.status.outcome = CaseOutcome::SimulationError;
    s.settled_amplitude = 0.0;
    s.settled_code = 0;
  }
  EXPECT_DOUBLE_EQ(report.yield(), 0.0);
  EXPECT_EQ(report.error_count(), 3u);
  EXPECT_THROW((void)report.min_amplitude(), Error);
  EXPECT_THROW((void)report.max_amplitude(), Error);
  EXPECT_THROW((void)report.min_code(), Error);
  EXPECT_THROW((void)report.max_code(), Error);
  EXPECT_THROW((void)report.max_supply_current(), Error);
  EXPECT_THROW((void)report.amplitude_statistics(), Error);
  EXPECT_THROW((void)report.supply_statistics(), Error);
}

TEST(Tolerance, AccessorsSkipFailedSamples) {
  // Mixed report: one good sample between two failures.  The extrema
  // must come from the completed sample alone.
  ToleranceReport report;
  report.samples.resize(3);
  report.samples[0].status.outcome = CaseOutcome::SimulationError;
  report.samples[2].status.outcome = CaseOutcome::Timeout;
  report.samples[1].settled_amplitude = 2.71;
  report.samples[1].settled_code = 42;
  report.samples[1].supply_current = 1.3e-3;
  EXPECT_DOUBLE_EQ(report.min_amplitude(), 2.71);
  EXPECT_DOUBLE_EQ(report.max_amplitude(), 2.71);
  EXPECT_EQ(report.min_code(), 42);
  EXPECT_EQ(report.max_code(), 42);
  EXPECT_DOUBLE_EQ(report.max_supply_current(), 1.3e-3);
  EXPECT_EQ(report.amplitude_statistics().count, 1u);
}

void expect_samples_byte_identical(const std::vector<ToleranceSample>& a,
                                   const std::vector<ToleranceSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ToleranceSample& x = a[i];
    const ToleranceSample& y = b[i];
    // Exact equality throughout -- the two engines must perform the same
    // floating-point operations, not merely agree to a tolerance.
    EXPECT_EQ(x.tank.inductance, y.tank.inductance) << "sample " << i;
    EXPECT_EQ(x.tank.capacitance1, y.tank.capacitance1) << "sample " << i;
    EXPECT_EQ(x.tank.capacitance2, y.tank.capacitance2) << "sample " << i;
    EXPECT_EQ(x.tank.series_resistance, y.tank.series_resistance) << "sample " << i;
    EXPECT_EQ(x.resonance_frequency, y.resonance_frequency) << "sample " << i;
    EXPECT_EQ(x.quality_factor, y.quality_factor) << "sample " << i;
    EXPECT_EQ(x.settled_code, y.settled_code) << "sample " << i;
    EXPECT_EQ(x.settled_amplitude, y.settled_amplitude) << "sample " << i;
    EXPECT_EQ(x.supply_current, y.supply_current) << "sample " << i;
    EXPECT_EQ(x.in_window, y.in_window) << "sample " << i;
    EXPECT_EQ(x.status.outcome, y.status.outcome) << "sample " << i;
    EXPECT_EQ(x.status.retries, y.status.retries) << "sample " << i;
  }
}

void expect_reports_byte_identical(const ToleranceReport& a, const ToleranceReport& b) {
  expect_samples_byte_identical(a.samples, b.samples);
}

TEST(ToleranceBatched, BatchedMatchesSerialByteForByte) {
  // The headline contract of DESIGN.md §12: same seed, same report, to
  // the last bit, whichever engine ran.
  ToleranceConfig cfg = base_config(24);
  cfg.engine = ToleranceEngine::Serial;
  const ToleranceReport serial = run_tolerance_analysis(cfg);
  cfg.engine = ToleranceEngine::Batched;
  const ToleranceReport batched = run_tolerance_analysis(cfg);
  expect_reports_byte_identical(serial, batched);
}

TEST(ToleranceBatched, WorkerCountInvariant) {
  ToleranceConfig cfg = base_config(12);
  cfg.workers = 1;
  const ToleranceReport one = run_tolerance_analysis(cfg);
  cfg.workers = 8;
  const ToleranceReport eight = run_tolerance_analysis(cfg);
  expect_reports_byte_identical(one, eight);
}

TEST(ToleranceBatched, AdaptiveNominalFallsBackToSerial) {
  // The lockstep engine is fixed-step only; an adaptive nominal config
  // must silently take the serial path and still produce a full report.
  ToleranceConfig cfg = base_config(4);
  cfg.nominal.adaptive = true;
  const ToleranceReport report = run_tolerance_analysis(cfg);
  EXPECT_EQ(report.samples.size(), 4u);
  EXPECT_GT(report.yield(), 0.0);
}

TEST(ToleranceSeeding, SampledParametersDependOnlyOnSeedAndIndex) {
  // The sampled (L, C, Rs) for case i must be a pure function of
  // (campaign seed, i): identical across engines and worker counts.
  ToleranceConfig cfg = base_config(16);
  cfg.run_duration = 5e-3;  // parameters are drawn before the run; keep it short

  std::vector<ToleranceReport> reports;
  for (const auto [engine, workers] :
       {std::pair{ToleranceEngine::Serial, std::size_t{1}},
        std::pair{ToleranceEngine::Serial, std::size_t{8}},
        std::pair{ToleranceEngine::Batched, std::size_t{1}},
        std::pair{ToleranceEngine::Batched, std::size_t{8}}}) {
    cfg.engine = engine;
    cfg.workers = workers;
    reports.push_back(run_tolerance_analysis(cfg));
  }
  for (std::size_t r = 1; r < reports.size(); ++r) {
    ASSERT_EQ(reports[r].samples.size(), reports[0].samples.size());
    for (std::size_t i = 0; i < reports[0].samples.size(); ++i) {
      const auto& base = reports[0].samples[i].tank;
      const auto& other = reports[r].samples[i].tank;
      EXPECT_EQ(other.inductance, base.inductance) << "report " << r << " sample " << i;
      EXPECT_EQ(other.capacitance1, base.capacitance1) << "report " << r << " sample " << i;
      EXPECT_EQ(other.capacitance2, base.capacitance2) << "report " << r << " sample " << i;
      EXPECT_EQ(other.series_resistance, base.series_resistance)
          << "report " << r << " sample " << i;
    }
  }
}

TEST(ToleranceChunked, SpanMatchesFullSweepForAnySlicing) {
  // run_tolerance_samples cuts a span at GLOBAL chunk_lanes boundaries,
  // so every slicing -- aligned, mid-chunk start, straddling a boundary
  // -- yields exactly the samples the full sweep yields at those
  // indices.  This is what makes shard boundaries and mid-chunk resume
  // invisible in the report bytes.
  ToleranceConfig cfg = base_config(20);
  cfg.run_duration = 5e-3;
  cfg.chunk_lanes = 8;
  const std::vector<ToleranceSample> full = run_tolerance_samples(cfg, 0, 20);
  expect_samples_byte_identical(full, run_tolerance_analysis(cfg).samples);

  const std::pair<std::size_t, std::size_t> spans[] = {
      {0, 20}, {0, 7}, {7, 6}, {13, 7}, {5, 11}, {8, 8}, {19, 1}, {4, 0}};
  for (const auto& [first, count] : spans) {
    const std::vector<ToleranceSample> span = run_tolerance_samples(cfg, first, count);
    const std::vector<ToleranceSample> expected(full.begin() + static_cast<long>(first),
                                                full.begin() + static_cast<long>(first + count));
    expect_samples_byte_identical(expected, span);
  }
}

TEST(ToleranceChunked, ChunkLanesNeverChangesSampleBytes) {
  // chunk_lanes is a wall-time/memory knob only: 20 samples through
  // chunks of 1, 7 (non-divisible) and 64 (single chunk) must all match
  // the serial engine bit for bit.
  ToleranceConfig cfg = base_config(20);
  cfg.run_duration = 5e-3;
  cfg.engine = ToleranceEngine::Serial;
  const std::vector<ToleranceSample> serial = run_tolerance_samples(cfg, 0, 20);
  cfg.engine = ToleranceEngine::Batched;
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    cfg.chunk_lanes = lanes;
    expect_samples_byte_identical(serial, run_tolerance_samples(cfg, 0, 20));
  }
}

TEST(ToleranceChunked, ChunkLanesBoundsValidated) {
  ToleranceConfig cfg = base_config(5);
  cfg.chunk_lanes = 0;
  EXPECT_THROW(run_tolerance_analysis(cfg), ConfigError);
  EXPECT_THROW(run_tolerance_samples(cfg, 0, 5), ConfigError);
  cfg.chunk_lanes = kMaxChunkLanes + 1;
  EXPECT_THROW(run_tolerance_analysis(cfg), ConfigError);
  cfg.chunk_lanes = 64;
  // Span outside [0, samples] is rejected, including overflow-prone
  // first/count combinations.
  EXPECT_THROW((void)run_tolerance_samples(cfg, 0, 6), ConfigError);
  EXPECT_THROW((void)run_tolerance_samples(cfg, 6, 0), ConfigError);
  EXPECT_THROW((void)run_tolerance_samples(cfg, 3, 3), ConfigError);
}

TEST(Tolerance, InvalidConfigRejected) {
  ToleranceConfig cfg = base_config(0);
  EXPECT_THROW(run_tolerance_analysis(cfg), ConfigError);
  ToleranceConfig cfg2 = base_config(5);
  cfg2.resistance_tolerance = 1.5;
  EXPECT_THROW(run_tolerance_analysis(cfg2), ConfigError);
}

}  // namespace
}  // namespace lcosc::system
