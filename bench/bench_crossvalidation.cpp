// Cross-validation of the macro-model against transistor-level physics:
// a real cross-coupled NMOS pair (square-law devices, trapezoidal MNA
// transient) on the paper's tank, swept over the tail current.  The
// measured amplitude must track the describing-function law the whole
// reproduction rests on (Eq. 4 with the square-wave shape factor), and
// the frequency must stay at the tank resonance (Eq. 1 territory).
#include <iostream>
#include <vector>

#include "common/constants.h"
#include "common/parallel.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "spice/circuit.h"
#include "spice/transient_solver.h"
#include "tank/rlc_tank.h"
#include "waveform/measurements.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::spice;

int main() {
  std::cout << "=== Cross-validation: transistor-level pair vs Eq. 4 ===\n\n";

  const tank::TankConfig tk = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  const tank::RlcTank model(tk);
  std::cout << "tank: f0 = " << si_format(model.resonance_frequency(), "Hz")
            << ", Rp = " << si_format(model.parallel_resistance(), "Ohm") << "\n\n";

  TablePrinter table({"I_tail", "f measured [MHz]", "A measured [V]",
                      "A theory (4/pi)(I/2)Rp [V]", "ratio"});

  // Each tail-current case builds its own circuit and transient run, so
  // the cases fan out over the parallel campaign engine; rows are
  // collected by index and printed in order.
  struct Row {
    double itail = 0.0;
    double frequency = 0.0;
    double amplitude = 0.0;
    double theory = 0.0;
  };
  const std::vector<double> tail_currents = {0.5e-3, 1.0e-3, 2.0e-3, 4.0e-3};
  const std::vector<Row> rows = parallel_map(tail_currents.size(), [&](std::size_t idx) {
    const double itail = tail_currents[idx];
    Circuit c;
    c.voltage_source("Vdd", "vdd", "0", 5.0);
    c.inductor("L1", "vdd", "m1", tk.inductance / 2.0, itail / 2.0);
    c.resistor("Rs1", "m1", "lc1", tk.series_resistance / 2.0);
    c.inductor("L2", "vdd", "m2", tk.inductance / 2.0, itail / 2.0);
    c.resistor("Rs2", "m2", "lc2", tk.series_resistance / 2.0);
    c.capacitor("C1", "lc1", "0", tk.capacitance1, 5.1);
    c.capacitor("C2", "lc2", "0", tk.capacitance2, 4.9);
    c.mosfet("M1", "lc1", "lc2", "tail", "0", nmos_035um(200.0));
    c.mosfet("M2", "lc2", "lc1", "tail", "0", nmos_035um(200.0));
    c.current_source("Itail", "tail", "0", itail);

    TransientOptions opt;
    opt.t_stop = 60e-6;
    opt.dt = 2e-9;
    opt.integration = Integration::Trapezoidal;
    opt.start_from_dc = false;
    const TransientResult r = run_transient(c, opt, {"lc1", "lc2"});

    Trace vd("vd");
    const Trace& v1 = r.trace("lc1");
    const Trace& v2 = r.trace("lc2");
    for (std::size_t i = 0; i < v1.size(); ++i) {
      vd.append(v1.time(i) + 1e-15, v1.value(i) - v2.value(i));
    }
    const Trace tail_window = vd.window(40e-6, 60e-6);
    Row row;
    row.itail = itail;
    row.frequency = estimate_frequency(tail_window).value_or(0.0);
    row.amplitude = peak_amplitude(tail_window);
    row.theory = kDriverShapeFactorSquare * (itail / 2.0) * model.parallel_resistance();
    return row;
  });
  for (const Row& row : rows) {
    table.add_values(si_format(row.itail, "A"), format_significant(row.frequency / 1e6, 4),
                     format_significant(row.amplitude, 4), format_significant(row.theory, 4),
                     format_significant(row.amplitude / row.theory, 3));
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  - amplitude scales LINEARLY with the tail current (the premise of\n"
            << "    the paper's current-limitation amplitude control, Eqs. 4-5);\n"
            << "  - the measured/theory ratio is ~1.0: the square-law pair switches\n"
            << "    sharply, so the square-wave shape factor 4/pi applies almost\n"
            << "    exactly -- the paper's k is this factor for its softer limiter;\n"
            << "  - frequency stays at the tank resonance regardless of drive.\n";
  return 0;
}
