// EMC view (paper abstract: "low EMC emissions"): harmonic spectrum of
// the coil current versus the driver current.  The driver clips (Fig. 2),
// but the tank only draws the fundamental -- the radiating coil current
// is nearly sinusoidal, and the higher the Q the cleaner it gets.
#include <cmath>
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/oscillator_system.h"
#include "waveform/measurements.h"
#include "waveform/spectrum.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

namespace {

// Reconstruct the driver output current i(LC1) from the recorded pin
// voltages using the driver model at the settled code.
Trace driver_current_trace(const SimulationResult& r, driver::OscillatorDriver& drv) {
  Trace i("i_driver");
  for (std::size_t k = 0; k < r.v_lc1.size(); ++k) {
    const driver::NodeCurrents out = drv.output(r.v_lc1.value(k), r.v_lc2.value(k));
    i.append(r.v_lc1.time(k), out.into_lc1);
  }
  return i;
}

}  // namespace

int main() {
  std::cout << "=== EMC: harmonic content of coil vs driver current ===\n\n";

  TablePrinter table({"Q", "signal", "fundamental", "H2 [dBc]", "H3 [dBc]", "H5 [dBc]",
                      "THD"});
  for (const double q : {10.0, 40.0}) {
    OscillatorSystemConfig cfg;
    cfg.tank = tank::design_tank(4.0_MHz, q, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    cfg.waveform_decimation = 1;
    OscillatorSystem sys(cfg);
    const SimulationResult r = sys.run(20e-3);

    // Steady-state window only.  Use the MEASURED oscillation frequency as
    // the fundamental: over thousands of cycles even a 0.02% detuning from
    // the design f0 would decorrelate the Fourier projection.
    const Trace vd = r.differential.window(r.differential.end_time() - 0.5e-3,
                                           r.differential.end_time());
    const double f0 = estimate_frequency(vd).value_or(
        tank::RlcTank(cfg.tank).resonance_frequency());
    driver::OscillatorDriver drv(cfg.driver);
    drv.set_code(r.final_code);
    SimulationResult tail;
    tail.v_lc1 = r.v_lc1.window(vd.start_time(), vd.end_time());
    tail.v_lc2 = r.v_lc2.window(vd.start_time(), vd.end_time());
    const Trace i_drv = driver_current_trace(tail, drv);

    for (const auto& [name, trace] : {std::pair<const char*, const Trace*>{"coil voltage", &vd},
                                      {"driver current", &i_drv}}) {
      const auto spec = harmonic_spectrum(*trace, f0, 9);
      const double thd = std::sqrt(harmonic_power_ratio(spec));
      auto dbc = [&](int h) {
        for (const auto& line : spec) {
          if (line.harmonic == h) return line.dbc;
        }
        return -400.0;
      };
      table.add_values(format_significant(q, 3), name,
                       si_format(spec[0].amplitude, name[0] == 'c' ? "V" : "A"),
                       format_significant(dbc(2), 3), format_significant(dbc(3), 3),
                       format_significant(dbc(5), 3), percent_format(thd));
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  - the coil (tank) waveform is far cleaner than the driver current:\n"
            << "    the resonator filters the clipping harmonics, which is the paper's\n"
            << "    low-EMC-emissions mechanism;\n"
            << "  - higher Q -> stronger filtering -> lower coil THD.\n";
  return 0;
}
