// Ablation (Section 4): the regulation window must be wider than the
// maximum DAC step (6.25%).  Whether a too-narrow window actually limit
// cycles depends on whether some code happens to land inside it, so the
// sweep runs many tank qualities per width and reports how many of them
// end up limit cycling (steady code activity) -- the failure the paper's
// sizing rule excludes BY CONSTRUCTION rather than by luck.
#include <iostream>

#include "common/constants.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "spice/sweep.h"
#include "system/envelope_simulator.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

namespace {

// Count code changes over the trailing ticks (steady-state activity).
int trailing_code_activity(const EnvelopeRunResult& r, std::size_t window) {
  if (r.ticks.size() < window + 1) return -1;
  int changes = 0;
  for (std::size_t i = r.ticks.size() - window; i < r.ticks.size(); ++i) {
    if (r.ticks[i].code != r.ticks[i - 1].code) ++changes;
  }
  return changes;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: regulation window width vs the 6.25% max DAC step ===\n\n";

  const std::vector<double> qualities = spice::logspace(8.0, 200.0, 15);

  TablePrinter table({"window width", "vs max step", "tanks limit-cycling", "worst steady "
                      "code activity", "worst amplitude error"});

  for (const double width : {0.15, 0.10, 0.08, 0.0625, 0.05, 0.03, 0.02}) {
    int cycling = 0;
    int worst_activity = 0;
    double worst_error = 0.0;
    for (const double q : qualities) {
      EnvelopeSimConfig cfg;
      cfg.tank = tank::design_tank(4.0_MHz, q, 3.3_uH);
      cfg.regulation.tick_period = 0.25e-3;
      cfg.detector.window_width = width;
      EnvelopeSimulator sim(cfg);
      const EnvelopeRunResult r = sim.run(60e-3);
      const int activity = trailing_code_activity(r, 40);
      if (activity > 2) ++cycling;
      worst_activity = std::max(worst_activity, activity);
      worst_error = std::max(worst_error,
                             std::abs(r.settled_amplitude() - 2.7) / 2.7);
    }
    const char* relation = width > kMaxRelativeStepAbove16    ? "wider (safe)"
                           : width == kMaxRelativeStepAbove16 ? "equal (marginal)"
                                                              : "NARROWER (violates rule)";
    table.add_values(percent_format(width), relation,
                     std::to_string(cycling) + "/" + std::to_string(qualities.size()),
                     worst_activity, percent_format(worst_error));
  }
  table.print(std::cout);

  std::cout << "\nShape check: with the window wider than the worst step, NO tank limit\n"
               "cycles -- a step from inside the window cannot leave it on the other\n"
               "side.  Narrower windows limit-cycle whenever the code grid has no\n"
               "point inside the window for that tank, wasting current and spraying\n"
               "EMC sidebands (the paper sizes the window to exclude this).\n";
  return 0;
}
