// Table 1 of the paper: coding of the driver control signals across the
// eight DAC segments, regenerated from the implementation.
#include <iostream>

#include "common/constants.h"
#include "common/table_printer.h"
#include "dac/control_code.h"

using namespace lcosc;
using namespace lcosc::dac;

int main() {
  std::cout << "=== Table 1: coding of driver control signals ===\n\n";

  TablePrinter table({"segment", "MSBs", "prescaler out", "active Gm", "step", "range min",
                      "range max", "OscD<2:0>", "OscE<3:0>", "OscF<6:0> (b=LSBs)"});
  for (int seg = 0; seg < kDacSegmentCount; ++seg) {
    const ControlSignals s = encode_control(seg * 16);
    const auto osc_d = format_bus(s.osc_d, 3);
    const auto osc_e = format_bus(s.osc_e, 4);

    // Render the OscF pattern symbolically: where the 4 LSBs sit.
    std::string osc_f(7, '0');
    const int shift = mirror_shift(seg);
    for (int bit = 0; bit < 4; ++bit) {
      // OscF bit (shift + bit) carries LSB 'bit'.
      osc_f[static_cast<std::size_t>(6 - (shift + bit))] = static_cast<char>('0' + bit);
    }
    // Display as B3 B2 B1 B0 positions, matching the paper's row format.
    std::string pattern;
    for (const char ch : osc_f) {
      if (ch == '0') pattern += "0";
      else pattern += "B" + std::string(1, ch);
      pattern += " ";
    }

    table.add_values(seg, format_bus(static_cast<std::uint8_t>(seg), 3).data(),
                     prescale_factor(s.osc_d), active_gm_stages(s.osc_e), segment_step(seg),
                     segment_range_min(seg), segment_range_max(seg), osc_d.data(),
                     osc_e.data(), pattern);
  }
  table.print(std::cout);

  std::cout << "\nOutput formula check: M = prescale(OscD) * (fixed(OscE) + OscF)\n";
  TablePrinter check({"code", "OscD", "OscE", "OscF", "M reconstructed", "M direct"});
  for (const int code : {0, 15, 16, 31, 47, 48, 96, 105, 127}) {
    const ControlSignals s = encode_control(code);
    check.add_values(code, format_bus(s.osc_d, 3).data(), format_bus(s.osc_e, 4).data(),
                     format_bus(s.osc_f, 7).data(), multiplication_factor(s),
                     multiplication_factor(code));
  }
  check.print(std::cout);
  return 0;
}
