// Injection locking of the dual system (paper Section 8: "the two systems
// are running at the same frequency").  Two oscillators whose tanks are
// detuned by a few percent still lock to a common frequency through the
// coil coupling -- up to a lock range that grows with the coupling factor.
// Outside the lock range the redundant pair beats, which would corrupt the
// amplitude comparison in the receivers.
#include <cmath>
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/dual_system.h"
#include "waveform/measurements.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

namespace {

struct LockResult {
  double f1 = 0.0;
  double f2 = 0.0;
  bool locked = false;
};

LockResult run_detuned(double coupling, double detune_fraction) {
  DualSystemConfig cfg;
  cfg.tanks.tank1 = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.tanks.tank2 = tank::design_tank(4.0_MHz * (1.0 + detune_fraction), 40.0, 3.3_uH);
  cfg.tanks.coupling = coupling;
  cfg.regulation.tick_period = 0.2e-3;
  cfg.waveform_decimation = 1;
  DualSystem sys(cfg);
  const DualRunResult r = sys.run(6e-3);

  // Measure both frequencies over the trailing 100 us.
  const double t1 = r.differential1.end_time();
  const Trace tail1 = r.differential1.window(t1 - 100e-6, t1);
  const Trace tail2 = r.differential2.window(t1 - 100e-6, t1);
  LockResult out;
  out.f1 = estimate_frequency(tail1).value_or(0.0);
  out.f2 = estimate_frequency(tail2).value_or(0.0);
  out.locked = std::abs(out.f1 - out.f2) < 1e3;  // within 1 kHz = locked
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Injection locking of the redundant pair (Section 8) ===\n\n";

  TablePrinter table({"coupling k", "tank detuning", "f1 [MHz]", "f2 [MHz]", "|f1-f2|",
                      "locked"});
  for (const double k : {0.05, 0.15, 0.30}) {
    for (const double detune : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10}) {
      const LockResult r = run_detuned(k, detune);
      table.add_values(format_significant(k, 3), percent_format(detune),
                       format_significant(r.f1 / 1e6, 5), format_significant(r.f2 / 1e6, 5),
                       si_format(std::abs(r.f1 - r.f2), "Hz", 3), r.locked);
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  - identical tanks always lock (the paper's nominal case);\n"
            << "  - the lock range grows with the coupling factor k: tighter coupling\n"
            << "    tolerates more component detuning between the two tanks;\n"
            << "  - beyond the lock range the two oscillators run apart and beat --\n"
            << "    the failure mode the paper's 'same frequency' requirement avoids.\n";
  return 0;
}
