// Fig. 14 of the paper: measured relative current limitation step.  The
// silicon sample is non-monotonic at code 96 (a negative step at the
// segment-6 major carry) -- the paper removes that point from the log plot
// and notes that the regulation loop tolerates it.  This bench reproduces
// the same one-bad-code sample via the deterministic seed search and adds
// the Monte-Carlo probability of non-monotonicity per carry.
#include <cmath>
#include <iostream>

#include "common/constants.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "dac/current_mirror.h"

using namespace lcosc;
using namespace lcosc::dac;

int main() {
  std::cout << "=== Fig. 14: measured relative current limitation step ===\n\n";

  const std::uint64_t seed = find_seed_with_single_negative_step(96);
  const CurrentLimitationDac dac(kDacUnitCurrent, MismatchConfig{}, seed);
  std::cout << "mismatch sample seed: " << seed << "\n\n";

  TablePrinter table({"code n->n+1", "step [LSB]", "relative step", "log-plot note"});
  for (int code = 1; code < 127; ++code) {
    const double step_lsb =
        (dac.output_current(code + 1) - dac.output_current(code)) / kDacUnitCurrent;
    const double rel = dac.relative_step(code);
    const bool carry = (code + 1) % 16 == 0 || code % 16 == 0;
    if (code < 16 || carry || code % 8 == 0 || rel <= 0.0) {
      table.add_values(std::to_string(code) + "->" + std::to_string(code + 1),
                       format_significant(step_lsb, 4), percent_format(rel),
                       rel <= 0.0 ? "NEGATIVE (removed in Fig. 14 log scale)" : "");
    }
  }
  table.print(std::cout);

  const auto bad = dac.non_monotonic_codes();
  std::cout << "\nNon-monotonic codes of this sample: ";
  for (const int c : bad) std::cout << c << ' ';
  std::cout << "(paper: code 96)\n";

  std::cout << "\nMonte-Carlo probability of a backward step at each major carry\n"
               "(1000 mismatch samples, default sigmas):\n";
  TablePrinter mc({"carry into code", "P(step <= 0)"});
  for (const auto& [code, p] : monte_carlo_non_monotonicity(1000)) {
    mc.add_values(code, percent_format(p));
  }
  mc.print(std::cout);

  std::cout << "\nShape check: backward steps concentrate at the segment carries\n"
               "(disjoint branch sets); within-segment steps are binary-weighted\n"
               "increments of an already-flowing current and stay positive.\n";
  return 0;
}
