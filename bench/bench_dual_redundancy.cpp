// Section 8 / Fig. 9 of the paper: the redundant dual system.  One chip
// loses its supply mid-run; its pins then load its tank with the I-V
// characteristic EXTRACTED FROM THE TRANSISTOR-LEVEL TESTBENCH (the same
// netlists that regenerate Fig. 17).  With the Fig. 11 bulk-switched
// stage the survivor keeps regulating; with the standard Fig. 10a stage
// the dead chip's junction clamps drag it down.
#include <iostream>

#include "common/logging.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "driver/output_stage.h"
#include "system/dual_system.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

namespace {

struct Outcome {
  double live_before = 0.0;
  double live_after = 0.0;
  double dead_after = 0.0;
  int live_code_after = 0;
};

Outcome run_scenario(const PwlTable& dead_iv) {
  DualSystemConfig cfg;
  cfg.tanks.tank1 = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.tanks.tank2 = cfg.tanks.tank1;
  cfg.tanks.coupling = 0.15;
  cfg.regulation.tick_period = 0.2e-3;

  DualSystem sys(cfg);
  sys.schedule_supply_loss(16e-3, dead_iv);
  const DualRunResult r = sys.run(24e-3);

  Outcome out;
  out.live_before = r.mean_envelope1(14e-3, 16e-3);
  out.live_after = r.mean_envelope1(21e-3, 24e-3);
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < r.envelope2.size(); ++i) {
    if (r.envelope2.time(i) > 21e-3) {
      acc += r.envelope2.value(i);
      ++n;
    }
  }
  out.dead_after = n ? acc / n : 0.0;
  out.live_code_after = r.codes1.back();
  return out;
}

}  // namespace

int main() {
  // Isolated non-converged sweep points are dropped by extraction; keep
  // the table output clean.
  set_log_level(LogLevel::Error);
  std::cout << "=== Section 8 / Fig. 9: dual redundant system, supply loss on chip 2 ===\n\n";
  std::cout << "extracting dead-chip I-V characteristics from the spice testbench...\n";

  driver::UnsuppliedDriverTestbench fig11_tb(driver::OutputStageTopology::BulkSwitched);
  driver::UnsuppliedDriverTestbench fig10a_tb(driver::OutputStageTopology::StandardCmos);
  const PwlTable iv11 = fig11_tb.extract_iv(-3.0, 3.0, 41);
  const PwlTable iv10a = fig10a_tb.extract_iv(-3.0, 3.0, 41);
  std::cout << "  Fig.11  I(+2.7 V) = " << si_format(iv11(2.7), "A") << ", I(-2.7 V) = "
            << si_format(iv11(-2.7), "A") << "\n"
            << "  Fig.10a I(+2.7 V) = " << si_format(iv10a(2.7), "A") << ", I(-2.7 V) = "
            << si_format(iv10a(-2.7), "A") << "\n\n";

  const Outcome o11 = run_scenario(iv11);
  const Outcome o10a = run_scenario(iv10a);

  TablePrinter table({"dead-chip output stage", "live amp before [V]", "live amp after [V]",
                      "change", "live code after", "dead tank swing [V]"});
  table.add_values("fig11-bulk-switched", format_significant(o11.live_before, 4),
                   format_significant(o11.live_after, 4),
                   percent_format((o11.live_after - o11.live_before) /
                                  std::max(o11.live_before, 1e-12)),
                   o11.live_code_after, format_significant(o11.dead_after, 4));
  table.add_values("fig10a-standard-cmos", format_significant(o10a.live_before, 4),
                   format_significant(o10a.live_after, 4),
                   percent_format((o10a.live_after - o10a.live_before) /
                                  std::max(o10a.live_before, 1e-12)),
                   o10a.live_code_after, format_significant(o10a.dead_after, 4));
  table.print(std::cout);

  std::cout << "\nShape checks vs the paper:\n"
            << "  Fig.11: the live system 'stays working' -- amplitude change within the\n"
            << "  regulation window, no extra drive current needed.\n"
            << "  Fig.10a: the dead chip clamps its tank swing to the junction drops,\n"
            << "  which reflects through the coil coupling into the live system\n"
            << "  (lower amplitude and/or higher regulation code).\n";
  return 0;
}
