// Fig. 13 of the paper: measured current limitation of the driver
// (1 LSB = 12.5 uA).  "Measured" here means the Monte-Carlo mismatched
// current-mirror model with the release seed, found deterministically so
// that -- like the measured silicon -- the transfer has exactly one
// negative step, at code 96 (see Fig. 14).
#include <cmath>
#include <iostream>

#include "common/constants.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "dac/current_mirror.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::dac;

int main() {
  std::cout << "=== Fig. 13: measured current limitation (mismatch model) ===\n\n";

  const std::uint64_t seed = find_seed_with_single_negative_step(96);
  std::cout << "mismatch sample seed: " << seed
            << " (deterministic search: single negative step at code 96)\n"
            << "unit current (1 LSB): " << si_format(kDacUnitCurrent, "A") << "\n\n";

  const CurrentLimitationDac dac(kDacUnitCurrent, MismatchConfig{}, seed);

  TablePrinter table({"code", "I [mA] (lin)", "log10(I[A])", "ideal I [mA]"});
  for (int code = 0; code <= 127; code += 4) {
    const double i = dac.output_current(code);
    table.add_values(code, format_significant(i * 1e3, 5),
                     i > 0 ? format_significant(std::log10(i), 4) : "-inf",
                     format_significant(dac.ideal_current(code) * 1e3, 5));
  }
  table.print(std::cout);

  {
    SvgSeries meas, ideal;
    meas.label = "measured (mismatch)";
    ideal.label = "ideal";
    for (int code = 0; code <= 127; ++code) {
      meas.points.emplace_back(code, dac.output_current(code) * 1e3);
      ideal.points.emplace_back(code, dac.ideal_current(code) * 1e3);
    }
    write_svg_plot("artifacts/fig13_current_limitation.svg", {meas, ideal},
                   {.title = "Fig. 13: measured current limitation",
                    .x_label = "code", .y_label = "I [mA]"});
    write_svg_plot("artifacts/fig13_current_limitation_log.svg", {meas},
                   {.title = "Fig. 13: measured current limitation (log)",
                    .x_label = "code", .y_label = "I [mA]", .log_y = true});
    std::cout << "\n(figures: artifacts/fig13_current_limitation{,_log}.svg)\n";
  }

  std::cout << "\nShape checks vs the paper:\n"
            << "  full scale I(127) = " << si_format(dac.output_current(127), "A")
            << " (paper: ~24.8 mA at 12.5 uA LSB)\n"
            << "  dynamic range     = 0 : "
            << format_significant(dac.output_current(127) / dac.output_current(1), 4)
            << " (paper: 0:1984)\n"
            << "  log plot spans    = "
            << format_significant(
                   std::log10(dac.output_current(127) / dac.output_current(1)), 3)
            << " decades (Fig. 13 right axis: 1e-5..1e-1 A)\n";
  return 0;
}
