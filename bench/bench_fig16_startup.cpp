// Fig. 16 of the paper: oscillator startup after enabling the driver.
// The power-on-reset preset (code 105) gives the fast envelope ramp of the
// scope shot; the NVM preset applied a few microseconds later jumps the
// code to the stored operating point to speed settling.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/oscillator_system.h"
#include "waveform/measurements.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Fig. 16: oscillator startup ===\n\n";

  OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  cfg.waveform_decimation = 4;

  OscillatorSystem sys(cfg);
  const SimulationResult r = sys.run(2e-3);

  std::cout << "startup preset: code " << cfg.regulation.startup_code
            << " (power-on reset), NVM preset after "
            << si_format(cfg.regulation.nvm_delay, "s") << "\n\n";

  std::cout << "Envelope of v(LC1)-v(LC2) during startup:\n";
  TablePrinter table({"t [us]", "envelope [V]"});
  double next_sample = 0.0;
  for (std::size_t i = 0; i < r.envelope.size(); ++i) {
    if (r.envelope.time(i) >= next_sample) {
      table.add_values(format_significant(r.envelope.time(i) * 1e6, 4),
                       format_significant(r.envelope.value(i), 4));
      next_sample += (next_sample < 20e-6) ? 2e-6 : (next_sample < 100e-6 ? 10e-6 : 100e-6);
    }
  }
  table.print(std::cout);

  write_svg_plot("artifacts/fig16_startup.svg",
                 {SvgSeries::from_trace(r.envelope.decimated(8), "envelope |v_diff|")},
                 {.title = "Fig. 16: oscillator startup envelope",
                  .x_label = "t [s]", .y_label = "envelope [V]"});
  std::cout << "\n(figure: artifacts/fig16_startup.svg)\n";

  // Time for the envelope to first reach 90% of the regulation target.
  double t90 = -1.0;
  for (std::size_t i = 0; i < r.envelope.size(); ++i) {
    if (r.envelope.value(i) >= 0.9 * 2.7) {
      t90 = r.envelope.time(i);
      break;
    }
  }
  const auto f = estimate_frequency_tail(r.differential, 20e-6);
  std::cout << "\nShape checks vs the paper:\n"
            << "  envelope reaches 90% of target in "
            << (t90 > 0 ? si_format(t90, "s") : std::string("(not reached)"))
            << " (Fig. 16: microsecond-scale ramp)\n"
            << "  oscillation frequency: "
            << (f ? si_format(*f, "Hz") : std::string("-")) << " (design 4 MHz, range 2-5 MHz)\n"
            << "  startup consumption at code 105 vs code 127: "
            << percent_format(static_cast<double>(dac::multiplication_factor(105)) /
                              dac::multiplication_factor(127))
            << " of full-scale current limit (paper: ~40% of max consumption)\n";
  return 0;
}
