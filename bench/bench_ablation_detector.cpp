// Ablation: detector filter time constant (the RC low-pass after the full
// wave rectifier, Fig. 8).  Too fast and the 2*f0 rectification ripple
// reaches the window comparator, chattering the loop near the window
// edges; too slow and the amplitude reading lags faults (longer detection
// latency).  The paper's design point sits comfortably between the
// oscillation period (~250 ns) and the 1 ms regulation tick.
#include <cmath>
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/oscillator_system.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Ablation: detector filter time constant (Fig. 8 RC) ===\n\n";

  TablePrinter table({"filter tau", "vs T0 (250 ns)", "settled code", "amplitude [V]",
                      "VDC1 ripple (est)", "steady code changes"});

  for (const double tau : {0.25e-6, 1e-6, 5e-6, 20e-6, 100e-6}) {
    OscillatorSystemConfig cfg;
    cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    cfg.detector.filter_tau = tau;
    cfg.safety.low_amplitude.filter_tau = tau;
    cfg.waveform_decimation = 0;
    OscillatorSystem sys(cfg);
    const SimulationResult r = sys.run(30e-3);

    // First-order estimate of the 2f0 rectification ripple on VDC1:
    // a full-wave rectified sine's dominant ripple component (2/3 of the
    // mean, at 2 f0) attenuated by the RC pole.
    const double f0 = tank::RlcTank(cfg.tank).resonance_frequency();
    const double mean_vdc1 = r.ticks.back().vdc1;
    const double ripple =
        mean_vdc1 * (2.0 / 3.0) / std::sqrt(1.0 + std::pow(2.0 * f0 * kTwoPi * tau, 2.0));

    int changes = 0;
    for (std::size_t i = r.ticks.size() - 40; i < r.ticks.size(); ++i) {
      if (r.ticks[i].code != r.ticks[i - 1].code) ++changes;
    }
    table.add_values(si_format(tau, "s"),
                     "x" + format_significant(tau / 0.25e-6, 4), r.ticks.back().code,
                     format_significant(r.settled_amplitude(), 3), si_format(ripple, "V"),
                     changes);
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  - taus of a few oscillation periods leave volts of ripple on VDC1:\n"
            << "    the comparator verdict depends on sampling phase (chatter risk);\n"
            << "  - by tau ~ 20 us (the design point) the ripple is millivolts while\n"
            << "    the reading still settles ~10x faster than the regulation tick.\n";
  return 0;
}
