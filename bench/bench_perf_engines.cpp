// Engine micro-benchmarks (google-benchmark): throughput of the numeric
// kernels and the simulation engines, so performance regressions in the
// substrates are visible.
#include <benchmark/benchmark.h>

#include "common/units.h"
#include "dac/current_mirror.h"
#include "numeric/lu.h"
#include "numeric/ode.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/transient_solver.h"
#include "system/envelope_simulator.h"
#include "system/oscillator_system.h"

using namespace lcosc;
using namespace lcosc::literals;

namespace {

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 4.0;
  }
  Vector b(n, 1.0);
  for (auto _ : state) {
    LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_Rk4HarmonicOscillator(benchmark::State& state) {
  const OdeRhs rhs = [](double, const Vector& x, Vector& d) {
    d[0] = x[1];
    d[1] = -1e14 * x[0];
  };
  for (auto _ : state) {
    const OdeResult r =
        integrate_rk4(rhs, 0.0, 1e-5, {1.0, 0.0}, {.step = 4e-9});  // 2500 steps
    benchmark::DoNotOptimize(r.state[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2500);
}
BENCHMARK(BM_Rk4HarmonicOscillator);

void BM_DcOperatingPointMosfetChain(benchmark::State& state) {
  using namespace lcosc::spice;
  Circuit c;
  c.voltage_source("Vdd", "vdd", "0", 5.0);
  c.voltage_source("Vin", "in", "0", 1.2);
  std::string prev = "in";
  for (int stage = 0; stage < 4; ++stage) {
    const std::string out = "o" + std::to_string(stage);
    c.resistor("R" + std::to_string(stage), "vdd", out, 20e3);
    c.mosfet("M" + std::to_string(stage), out, prev, "0", "0", nmos_035um(5.0));
    prev = out;
  }
  c.finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_dc(c).converged);
  }
}
BENCHMARK(BM_DcOperatingPointMosfetChain);

// Transient hot path with and without the cached-base / kept-LU reuse
// (state.range(0): 0 = uncached reference, 1 = reuse).  The two modes
// must produce bit-identical traces; the interesting number is the ratio.
void BM_TransientLinearRlc(benchmark::State& state) {
  using namespace lcosc::spice;
  TransientOptions options;
  options.dt = 1.0 / (4.0_MHz * 64.0);
  options.t_stop = 500.0 * options.dt;
  options.start_from_dc = false;
  options.reuse_lu = state.range(0) != 0;
  const tank::TankConfig tk = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  for (auto _ : state) {
    Circuit c;
    VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
    vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4.0_MHz, .phase_deg = 0.0});
    c.resistor("Rs", "in", "a", 5.0);
    c.inductor("L", "a", "b", tk.inductance);
    c.resistor("Rl", "b", "0", tk.series_resistance);
    c.capacitor("C1", "a", "0", tk.capacitance1);
    c.capacitor("C2", "a", "0", tk.capacitance2);
    const TransientResult r = run_transient(c, options, {"a"});
    benchmark::DoNotOptimize(r.stats.rhs_solves);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_TransientLinearRlc)->Arg(0)->Arg(1);

void BM_TransientDiodeClamp(benchmark::State& state) {
  using namespace lcosc::spice;
  TransientOptions options;
  options.dt = 1.0 / (4.0_MHz * 64.0);
  options.t_stop = 500.0 * options.dt;
  options.start_from_dc = false;
  options.reuse_lu = state.range(0) != 0;
  const tank::TankConfig tk = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  for (auto _ : state) {
    Circuit c;
    VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
    vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4.0_MHz, .phase_deg = 0.0});
    c.resistor("Rs", "in", "a", 5.0);
    c.inductor("L", "a", "b", tk.inductance);
    c.resistor("Rl", "b", "0", tk.series_resistance);
    c.capacitor("C1", "a", "0", tk.capacitance1);
    c.capacitor("C2", "a", "0", tk.capacitance2);
    c.diode("Dclamp", "a", "0");
    const TransientResult r = run_transient(c, options, {"a"});
    benchmark::DoNotOptimize(r.stats.newton_iterations);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_TransientDiodeClamp)->Arg(0)->Arg(1);

// Startup-shaped RC transient, fixed grid vs adaptive LTE stepping
// (state.range(0): 0 = fixed, 1 = adaptive).  The adaptive run resolves
// the charging edge and then rides the 64x step ceiling, so the ratio
// tracks the accepted-step reduction.
void BM_TransientStartupRc(benchmark::State& state) {
  using namespace lcosc::spice;
  TransientOptions options;
  options.dt = 1e-6;
  options.t_stop = 4000.0 * options.dt;
  options.start_from_dc = false;
  options.adaptive = state.range(0) != 0;
  for (auto _ : state) {
    Circuit c;
    c.voltage_source("Vs", "in", "0", 5.0);
    c.resistor("R", "in", "out", 1e3);
    c.capacitor("C", "out", "0", 1e-6);
    const TransientResult r = run_transient(c, options, {"out"});
    benchmark::DoNotOptimize(r.stats.rhs_solves);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_TransientStartupRc)->Arg(0)->Arg(1);

void BM_MismatchedDacFullTransfer(benchmark::State& state) {
  const dac::CurrentLimitationDac mirror(kDacUnitCurrent, dac::MismatchConfig{}, 42);
  for (auto _ : state) {
    double acc = 0.0;
    for (int code = 0; code <= 127; ++code) acc += mirror.output_current(code);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_MismatchedDacFullTransfer);

// state.range(0): 0 = fixed dt grid, 1 = adaptive macro stepping.
void BM_EnvelopeSimMillisecond(benchmark::State& state) {
  system::EnvelopeSimConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.adaptive = state.range(0) != 0;
  for (auto _ : state) {
    system::EnvelopeSimulator sim(cfg);
    benchmark::DoNotOptimize(sim.run(1e-3).final_code);
  }
}
BENCHMARK(BM_EnvelopeSimMillisecond)->Arg(0)->Arg(1);

void BM_CycleAccurateSimMillisecond(benchmark::State& state) {
  system::OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.waveform_decimation = 0;
  for (auto _ : state) {
    system::OscillatorSystem sys(cfg);
    benchmark::DoNotOptimize(sys.run(1e-3).final_code);
  }
}
BENCHMARK(BM_CycleAccurateSimMillisecond);

}  // namespace

BENCHMARK_MAIN();
