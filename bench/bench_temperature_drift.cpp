// Temperature drift of the regulation target over the automotive range:
// VR3/VR4 are bandgap fractions (Fig. 8), so the regulated amplitude
// follows the bandgap curvature.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "devices/bandgap.h"
#include "regulation/amplitude_detector.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::regulation;

int main() {
  std::cout << "=== Temperature drift of the regulation window (-40..+150 C) ===\n\n";

  devices::BandgapReference bandgap;
  AmplitudeDetector detector;

  TablePrinter table({"T [C]", "VBG [V]", "VR3 [V]", "VR4 [V]", "amplitude target [V]",
                      "drift"});
  const double nominal_mid = 0.5 * (detector.amplitude_low() + detector.amplitude_high());
  for (double t_c = -40.0; t_c <= 150.0; t_c += 20.0) {
    const double t_k = t_c + 273.15;
    detector.set_temperature(t_k);
    const double mid = 0.5 * (detector.amplitude_low() + detector.amplitude_high());
    table.add_values(format_significant(t_c, 3), format_significant(bandgap.voltage(t_k), 5),
                     format_significant(detector.vr3(), 4),
                     format_significant(detector.vr4(), 4), format_significant(mid, 4),
                     percent_format((mid - nominal_mid) / nominal_mid));
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  - the curvature-only (trimmed) bandgap keeps the regulated amplitude\n"
            << "    within a fraction of a percent across the automotive range;\n"
            << "  - both thresholds scale together, so the relative window width (the\n"
            << "    Section 4 anti-limit-cycling rule) is temperature independent.\n";
  return 0;
}
