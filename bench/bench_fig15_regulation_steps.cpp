// Fig. 15 of the paper: detail of the oscillator regulation steps -- the
// amplitude staircase produced by the +-1-code-per-tick loop in steady
// state, regenerated with the cycle-accurate engine.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/oscillator_system.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Fig. 15: oscillator regulation steps (detail) ===\n\n";

  OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25e-3;
  cfg.waveform_decimation = 0;

  OscillatorSystem sys(cfg);
  const SimulationResult r = sys.run(30e-3);

  std::cout << "tank: f0 = " << si_format(sys.healthy_tank().resonance_frequency(), "Hz")
            << ", Q = " << format_significant(sys.healthy_tank().quality_factor(), 3)
            << ", Rp = " << si_format(sys.healthy_tank().parallel_resistance(), "Ohm")
            << "\nregulation tick: " << si_format(cfg.regulation.tick_period, "s")
            << ", window: "
            << format_significant(regulation::AmplitudeDetector().amplitude_low(), 3) << ".."
            << format_significant(regulation::AmplitudeDetector().amplitude_high(), 3)
            << " V differential peak\n\n";

  TablePrinter table({"tick", "t [ms]", "code", "VDC1 [V]", "amplitude-eq [V]", "window"});
  // Print the detail view: the approach plus steady-state toggling.
  const std::size_t first = r.ticks.size() > 40 ? r.ticks.size() - 40 : 0;
  for (std::size_t i = first; i < r.ticks.size(); ++i) {
    const auto& tick = r.ticks[i];
    const char* window = tick.window == devices::WindowState::Below    ? "below -> +1"
                         : tick.window == devices::WindowState::Above ? "above -> -1"
                                                                      : "inside -> hold";
    table.add_values(i, format_significant(tick.time * 1e3, 4), tick.code,
                     format_significant(tick.vdc1, 4),
                     format_significant(
                         regulation::AmplitudeDetector::vdc1_to_amplitude(tick.vdc1), 4),
                     window);
  }
  table.print(std::cout);

  {
    SvgSeries code_series, amp_series;
    code_series.label = "code";
    amp_series.label = "amplitude-eq [V] x10";
    for (std::size_t i = 0; i < r.ticks.size(); ++i) {
      code_series.points.emplace_back(r.ticks[i].time * 1e3, r.ticks[i].code);
      amp_series.points.emplace_back(
          r.ticks[i].time * 1e3,
          10.0 * regulation::AmplitudeDetector::vdc1_to_amplitude(r.ticks[i].vdc1));
    }
    write_svg_plot("artifacts/fig15_regulation_steps.svg", {code_series, amp_series},
                   {.title = "Fig. 15: regulation steps (code walk and amplitude)",
                    .x_label = "t [ms]", .y_label = "code / amplitude x10",
                    .markers = true});
    std::cout << "\n(figure: artifacts/fig15_regulation_steps.svg)\n";
  }

  int min_code = 127;
  int max_code = 0;
  for (std::size_t i = r.ticks.size() - 10; i < r.ticks.size(); ++i) {
    min_code = std::min(min_code, r.ticks[i].code);
    max_code = std::max(max_code, r.ticks[i].code);
  }
  std::cout << "\nShape checks vs the paper:\n"
            << "  steady-state code span (last 10 ticks): " << max_code - min_code
            << " (window wider than the max step -> no limit cycling across it)\n"
            << "  settled amplitude: " << format_significant(r.settled_amplitude(), 4)
            << " V (target 2.7 V)\n"
            << "  per-step amplitude change stays below 6.25% (Fig. 4 bound).\n";
  return 0;
}
