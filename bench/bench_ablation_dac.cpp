// Ablation (Section 3, Eq. 5): why the amplitude control DAC must be
// exponential.  Run the same regulation loop with the paper's PWL
// exponential law, a linear law with the same full scale, and an exact
// exponential, across the tank quality range.  The figure of merit is the
// worst relative amplitude step at the operating code (the linear law
// explodes at the low codes high-quality tanks regulate at) and the
// settling behaviour.
#include <iostream>
#include <memory>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "dac/dac_variants.h"
#include "system/envelope_simulator.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Ablation: PWL-exponential vs linear vs ideal-exponential control ===\n\n";

  TablePrinter table({"control law", "Q", "settled code", "amplitude [V]",
                      "step at code", "settling ticks", "steady ripple [V]"});

  for (const double q : {10.0, 40.0, 160.0}) {
    for (const auto kind : {dac::ControlLawKind::PwlExponential, dac::ControlLawKind::Linear,
                            dac::ControlLawKind::IdealExponential}) {
      EnvelopeSimConfig cfg;
      cfg.tank = tank::design_tank(4.0_MHz, q, 3.3_uH);
      cfg.regulation.tick_period = 0.25e-3;
      EnvelopeSimulator sim(cfg);
      std::shared_ptr<const dac::AmplitudeControlLaw> law = dac::make_control_law(kind);
      sim.driver().use_control_law(law);
      const EnvelopeRunResult r = sim.run(60e-3);

      const int code = r.final_code;
      double step_at_code = 0.0;
      if (code >= 1 && code < 127 && law->current(code) > 0.0) {
        step_at_code =
            (law->current(code + 1) - law->current(code)) / law->current(code);
      }
      const int settle = r.settling_tick(2.7 * 0.9, 2.7 * 1.1);
      table.add_values(law->name(), format_significant(q, 3), code,
                       format_significant(r.settled_amplitude(), 3),
                       percent_format(step_at_code),
                       settle >= 0 ? std::to_string(settle) : "never",
                       format_significant(r.steady_ripple(), 3));
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  - the linear law's relative step at low codes exceeds the regulation\n"
            << "    window, so high-Q tanks limit-cycle or settle off-target;\n"
            << "  - the PWL exponential tracks the ideal exponential closely (Fig. 3)\n"
            << "    while remaining implementable as switched binary mirror branches.\n";
  return 0;
}
