// Ablation (Section 4): the power-on-reset preset (code 105) and the NVM
// preset.  Compare startup from code 0, 105, 127 and with an NVM preset at
// the operating code: settling ticks and startup current-limit demand.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "dac/exponential_dac.h"
#include "system/envelope_simulator.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Ablation: startup preset code and the NVM preset ===\n\n";

  const dac::PwlExponentialDac dac;

  // Reference run to learn the operating code.
  EnvelopeSimConfig ref_cfg;
  ref_cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  ref_cfg.regulation.tick_period = 0.25e-3;
  const int operating_code = EnvelopeSimulator(ref_cfg).run(60e-3).final_code;
  std::cout << "operating code for this tank: " << operating_code << "\n\n";

  struct Case {
    const char* name;
    int startup_code;
    int nvm_code;  // -1 = disabled
  };
  const Case cases[] = {
      {"preset 0 (no preset)", 1, -1},
      {"preset 105 (paper POR)", 105, -1},
      {"preset 127 (max)", 127, -1},
      {"preset 105 + NVM at operating code", 105, operating_code},
  };

  TablePrinter table({"startup policy", "start code", "settling ticks",
                      "startup current limit", "vs max"});
  for (const Case& c : cases) {
    EnvelopeSimConfig cfg = ref_cfg;
    cfg.regulation.startup_code = c.startup_code;
    cfg.regulation.nvm_code = c.nvm_code;
    EnvelopeSimulator sim(cfg);
    const EnvelopeRunResult r = sim.run(60e-3);
    const int settle = r.settling_tick(2.7 * 0.9, 2.7 * 1.1);
    table.add_values(c.name, c.startup_code,
                     settle >= 0 ? std::to_string(settle) : "never",
                     si_format(dac.current(c.startup_code), "A"),
                     percent_format(static_cast<double>(dac.multiplication(c.startup_code)) /
                                    dac.multiplication(127)));
  }
  table.print(std::cout);

  std::cout << "\nShape checks vs the paper:\n"
            << "  - code 105 draws ~"
            << percent_format(static_cast<double>(dac.multiplication(105)) /
                              dac.multiplication(127))
            << " of the full-scale current limit yet still starts every tank that\n"
            << "    needs maximum code for full amplitude ('approx. 40% of the maximum\n"
            << "    current consumption');\n"
            << "  - starting from a low code risks never starting (below the\n"
            << "    oscillation condition) and settles far slower;\n"
            << "  - the NVM preset essentially removes the settling walk.\n";
  return 0;
}
