// Serial-vs-parallel wall time of the campaign-shaped workloads driven
// by common/parallel.h (the Monte-Carlo tolerance campaign, the FMEA
// fault sweep, and the AC impedance sweep) plus the cached-vs-uncached
// spice transient hot path with its solver counters.  Prints tables and
// writes a machine-readable BENCH_campaigns.json so later PRs can track
// the perf trajectory (speedup is ~1x on single-core hosts; the JSON
// records the hardware concurrency so runs are comparable).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "common/parallel.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "service/adapters.h"
#include "service/queue.h"
#include "service/supervisor.h"
#include "service/telemetry_merge.h"
#include "spice/ac_solver.h"
#include "spice/circuit.h"
#include "spice/sweep.h"
#include "spice/transient_solver.h"
#include "system/batched_envelope.h"
#include "system/envelope_simulator.h"
#include "system/fmea_campaign.h"
#include "system/tolerance_analysis.h"

using namespace lcosc;
using namespace lcosc::literals;

namespace {

struct CampaignTiming {
  std::string name;
  std::size_t items = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;  // parallel result matches the serial one

  [[nodiscard]] double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

CampaignTiming bench_tolerance() {
  system::ToleranceConfig cfg;
  cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.nominal.regulation.tick_period = 0.25e-3;
  cfg.samples = 48;
  cfg.run_duration = 20e-3;

  CampaignTiming t;
  t.name = "tolerance_monte_carlo";
  t.items = static_cast<std::size_t>(cfg.samples);

  system::ToleranceReport serial;
  system::ToleranceReport parallel;
  cfg.workers = 1;
  t.serial_ms = time_ms([&] { serial = run_tolerance_analysis(cfg); });
  cfg.workers = 0;
  t.parallel_ms = time_ms([&] { parallel = run_tolerance_analysis(cfg); });

  t.identical = serial.samples.size() == parallel.samples.size();
  for (std::size_t i = 0; t.identical && i < serial.samples.size(); ++i) {
    t.identical = serial.samples[i].settled_amplitude == parallel.samples[i].settled_amplitude &&
                  serial.samples[i].settled_code == parallel.samples[i].settled_code &&
                  serial.samples[i].supply_current == parallel.samples[i].supply_current;
  }
  return t;
}

CampaignTiming bench_fmea() {
  system::FmeaCampaignConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.system.regulation.tick_period = 0.25e-3;
  cfg.system.waveform_decimation = 0;

  CampaignTiming t;
  t.name = "fmea_fault_sweep";
  t.items = system::fmea_fault_list().size();

  system::FmeaReport serial;
  system::FmeaReport parallel;
  cfg.workers = 1;
  t.serial_ms = time_ms([&] { serial = run_fmea_campaign(cfg); });
  cfg.workers = 0;
  t.parallel_ms = time_ms([&] { parallel = run_fmea_campaign(cfg); });

  t.identical = serial.rows.size() == parallel.rows.size();
  for (std::size_t i = 0; t.identical && i < serial.rows.size(); ++i) {
    t.identical = serial.rows[i].fault == parallel.rows[i].fault &&
                  serial.rows[i].detected == parallel.rows[i].detected &&
                  serial.rows[i].final_code == parallel.rows[i].final_code &&
                  serial.rows[i].detection_latency == parallel.rows[i].detection_latency;
  }
  return t;
}

CampaignTiming bench_ac_sweep() {
  const tank::TankConfig tk = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  spice::Circuit c;
  c.inductor("L", "a", "b", tk.inductance);
  c.resistor("Rs", "b", "0", tk.series_resistance);
  c.capacitor("C1", "a", "0", tk.capacitance1);
  c.capacitor("C2", "a", "0", tk.capacitance2);
  spice::CurrentSource& probe = c.current_source("Iprobe", "0", "a", 0.0);
  c.finalize();
  const Vector dc_op(c.unknown_count(), 0.0);
  const std::vector<double> freqs = spice::logspace(1.0_MHz, 16.0_MHz, 2000);

  CampaignTiming t;
  t.name = "ac_impedance_sweep";
  t.items = freqs.size();

  std::vector<spice::ImpedancePoint> serial;
  std::vector<spice::ImpedancePoint> parallel;
  t.serial_ms =
      time_ms([&] { serial = measure_impedance(c, probe, "a", "0", dc_op, freqs, 1); });
  t.parallel_ms =
      time_ms([&] { parallel = measure_impedance(c, probe, "a", "0", dc_op, freqs, 0); });

  t.identical = serial.size() == parallel.size();
  for (std::size_t i = 0; t.identical && i < serial.size(); ++i) {
    t.identical = serial[i].impedance == parallel[i].impedance;
  }
  return t;
}

// Cached-vs-uncached transient solve of one circuit (identical traces
// required), with the solver counters of the cached run.
struct TransientTiming {
  std::string name;
  double cached_ms = 0.0;
  double uncached_ms = 0.0;
  bool identical = false;  // cached traces match the uncached ones exactly
  spice::TransientStats stats;  // counters of the cached run

  [[nodiscard]] double speedup() const {
    return cached_ms > 0.0 ? uncached_ms / cached_ms : 0.0;
  }
};

// Series-RLC tank driven by a sine source: fully linear, so the cached
// path factors once and only re-solves the rhs each step.
void build_linear_rlc(spice::Circuit& c) {
  const tank::TankConfig tk = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  spice::VoltageSource& vs = c.voltage_source("Vs", "in", "0", 0.0);
  vs.set_sine({.offset = 0.0, .amplitude = 1.0, .frequency = 4.0_MHz, .phase_deg = 0.0});
  c.resistor("Rs", "in", "a", 5.0);
  c.inductor("L", "a", "b", tk.inductance);
  c.resistor("Rl", "b", "0", tk.series_resistance);
  c.capacitor("C1", "a", "0", tk.capacitance1);
  c.capacitor("C2", "a", "0", tk.capacitance2);
}

// The same tank with a diode clamp: the nonlinear overlay is re-stamped
// per Newton iteration on top of the cached linear base.
void build_clamped_rlc(spice::Circuit& c) {
  build_linear_rlc(c);
  c.diode("Dclamp", "a", "0");
}

TransientTiming bench_transient(const std::string& name, bool nonlinear) {
  spice::TransientOptions options;
  options.dt = 1.0 / (4.0_MHz * 64.0);
  options.t_stop = 2000.0 * options.dt;
  options.start_from_dc = false;

  TransientTiming t;
  t.name = name;

  spice::TransientResult cached;
  spice::TransientResult uncached;
  // A fresh circuit per run: element transient history must not leak
  // between the A and B runs.
  auto run = [&](bool reuse) {
    spice::Circuit c;
    if (nonlinear) build_clamped_rlc(c);
    else build_linear_rlc(c);
    options.reuse_lu = reuse;
    return run_transient(c, options, {"a", "b"});
  };
  t.uncached_ms = time_ms([&] { uncached = run(false); });
  t.cached_ms = time_ms([&] { cached = run(true); });
  t.stats = cached.stats;

  t.identical = cached.traces.size() == uncached.traces.size();
  for (std::size_t p = 0; t.identical && p < cached.traces.size(); ++p) {
    const Trace& a = cached.traces[p];
    const Trace& b = uncached.traces[p];
    t.identical = a.size() == b.size();
    for (std::size_t i = 0; t.identical && i < a.size(); ++i) {
      t.identical = a.time(i) == b.time(i) && a.value(i) == b.value(i);
    }
  }
  return t;
}

// Fixed-grid vs adaptive LTE-controlled stepping of the same workload.
// The adaptive run must stay inside a reltol-scaled band of the fixed
// trace; the interesting numbers are the accepted-step reduction and the
// wall-time ratio.
struct AdaptiveTiming {
  std::string name;
  double fixed_ms = 0.0;
  double adaptive_ms = 0.0;
  std::size_t fixed_steps = 0;
  std::size_t adaptive_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  double max_deviation = 0.0;  // against the fixed trace, same grid
  double tolerance = 0.0;      // acceptance band for max_deviation
  bool within_tolerance = false;

  [[nodiscard]] double speedup() const {
    return adaptive_ms > 0.0 ? fixed_ms / adaptive_ms : 0.0;
  }
  [[nodiscard]] double step_reduction() const {
    return adaptive_steps > 0 ? static_cast<double>(fixed_steps) / adaptive_steps : 0.0;
  }
};

// Startup-shaped spice transient: an RC charging edge resolved on a grid
// fine enough for the initial slope, where the LTE controller coarsens
// by ~2 orders of magnitude once the exponential flattens.
AdaptiveTiming bench_transient_startup() {
  spice::TransientOptions options;
  options.dt = 1e-6;
  options.t_stop = 4000.0 * options.dt;  // 4 time constants
  options.start_from_dc = false;
  auto run = [&](bool adaptive) {
    spice::Circuit c;
    c.voltage_source("Vs", "in", "0", 5.0);
    c.resistor("R", "in", "out", 1e3);
    c.capacitor("C", "out", "0", 1e-6);
    options.adaptive = adaptive;
    return run_transient(c, options, {"out"});
  };

  AdaptiveTiming t;
  t.name = "transient_startup_rc";
  spice::TransientResult fixed;
  spice::TransientResult adaptive;
  t.fixed_ms = time_ms([&] { fixed = run(false); });
  t.adaptive_ms = time_ms([&] { adaptive = run(true); });
  t.fixed_steps = fixed.steps;
  t.adaptive_steps = adaptive.stats.accepted_steps;
  t.rejected_steps = adaptive.stats.rejected_steps;
  t.cache_hits = adaptive.stats.base_cache_hits;
  t.cache_misses = adaptive.stats.base_cache_misses;
  t.cache_evictions = adaptive.stats.base_cache_evictions;

  const Trace& a = adaptive.traces[0];
  const Trace& b = fixed.traces[0];
  double scale = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) scale = std::max(scale, std::abs(b.value(i)));
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    t.max_deviation = std::max(t.max_deviation, std::abs(a.value(i) - b.value(i)));
  }
  t.tolerance = 0.01 * scale;  // 10x the default lte_reltol, same as the tests
  t.within_tolerance = a.size() == b.size() && t.max_deviation <= t.tolerance;
  return t;
}

// The envelope regulation campaign run: fixed dt grid vs adaptive macro
// stepping (implicit log-Euler trials on power-of-two multiples of dt).
AdaptiveTiming bench_envelope_regulation() {
  const double duration = 30e-3;
  auto make_config = [](bool adaptive) {
    system::EnvelopeSimConfig cfg;
    cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    cfg.adaptive = adaptive;
    return cfg;
  };

  AdaptiveTiming t;
  t.name = "envelope_regulation";
  system::EnvelopeRunResult fixed;
  system::EnvelopeRunResult adaptive;
  t.fixed_ms = time_ms([&] {
    system::EnvelopeSimulator sim(make_config(false));
    fixed = sim.run(duration);
  });
  t.adaptive_ms = time_ms([&] {
    system::EnvelopeSimulator sim(make_config(true));
    adaptive = sim.run(duration);
  });
  t.fixed_steps = fixed.macro_steps;
  t.adaptive_steps = adaptive.macro_steps;
  t.rejected_steps = adaptive.rejected_steps;

  double scale = 0.0;
  for (std::size_t i = 0; i < fixed.amplitude.size(); ++i) {
    scale = std::max(scale, std::abs(fixed.amplitude.value(i)));
  }
  const std::size_t n = std::min(fixed.amplitude.size(), adaptive.amplitude.size());
  for (std::size_t i = 0; i < n; ++i) {
    t.max_deviation =
        std::max(t.max_deviation, std::abs(adaptive.amplitude.value(i) - fixed.amplitude.value(i)));
  }
  // The regulation loop quantizes through the DAC code, so a one-tick
  // code shift is legitimate; 2% of full scale absorbs it (same band as
  // tests/test_envelope.cpp).
  t.tolerance = 0.02 * scale;
  t.within_tolerance =
      fixed.amplitude.size() == adaptive.amplitude.size() && t.max_deviation <= t.tolerance;
  return t;
}

// The tolerance Monte-Carlo campaign with its envelope engine flipped to
// adaptive: the yield and per-sample settle amplitudes must hold.  (The
// fixed side now runs the batched SoA engine by default, which beats the
// adaptive serial path on wall time; this row keeps tracking the
// accuracy contract of the adaptive fallback.)
AdaptiveTiming bench_tolerance_adaptive() {
  system::ToleranceConfig cfg;
  cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.nominal.regulation.tick_period = 0.25e-3;
  cfg.samples = 48;
  cfg.run_duration = 20e-3;
  cfg.workers = 1;  // serial: wall time comparable across hosts

  AdaptiveTiming t;
  t.name = "tolerance_monte_carlo_adaptive";
  system::ToleranceReport fixed;
  system::ToleranceReport adaptive;
  t.fixed_ms = time_ms([&] { fixed = run_tolerance_analysis(cfg); });
  cfg.nominal.adaptive = true;
  t.adaptive_ms = time_ms([&] { adaptive = run_tolerance_analysis(cfg); });

  const double target = cfg.nominal.detector.target_amplitude;
  bool ok = fixed.samples.size() == adaptive.samples.size() && fixed.yield() == adaptive.yield();
  for (std::size_t i = 0; ok && i < fixed.samples.size(); ++i) {
    t.max_deviation = std::max(
        t.max_deviation,
        std::abs(adaptive.samples[i].settled_amplitude - fixed.samples[i].settled_amplitude));
    ok = adaptive.samples[i].in_window == fixed.samples[i].in_window;
  }
  t.tolerance = 0.02 * target;
  t.within_tolerance = ok && t.max_deviation <= t.tolerance;
  return t;
}

// Serial reference vs lockstep batched engine over the same variant set
// (DESIGN.md §12).  `identical` demands byte equality of the full result
// set -- the batched engine is only allowed to be faster, never
// different.
struct BatchedTiming {
  std::string name;
  std::size_t items = 0;
  double serial_ms = 0.0;
  double batched_ms = 0.0;
  bool identical = false;
  std::size_t factorizations = 0;     // batched run
  std::size_t shared_factor_hits = 0;  // batched run

  [[nodiscard]] double speedup() const {
    return batched_ms > 0.0 ? serial_ms / batched_ms : 0.0;
  }
};

// The acceptance row: the tolerance Monte-Carlo campaign through the
// SoA envelope engine vs one EnvelopeSimulator per sample, single
// worker so the ratio is pure engine speedup, not thread count.
BatchedTiming bench_tolerance_batched() {
  system::ToleranceConfig cfg;
  cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.nominal.regulation.tick_period = 0.25e-3;
  cfg.samples = 48;
  cfg.run_duration = 20e-3;
  cfg.workers = 1;

  BatchedTiming t;
  t.name = "tolerance_monte_carlo";
  t.items = static_cast<std::size_t>(cfg.samples);

  system::ToleranceReport serial;
  system::ToleranceReport batched;
  cfg.engine = system::ToleranceEngine::Serial;
  t.serial_ms = time_ms([&] { serial = run_tolerance_analysis(cfg); });
  cfg.engine = system::ToleranceEngine::Batched;
  t.batched_ms = time_ms([&] { batched = run_tolerance_analysis(cfg); });

  t.identical = serial.samples.size() == batched.samples.size();
  for (std::size_t i = 0; t.identical && i < serial.samples.size(); ++i) {
    const auto& a = serial.samples[i];
    const auto& b = batched.samples[i];
    t.identical = a.tank.inductance == b.tank.inductance &&
                  a.tank.capacitance1 == b.tank.capacitance1 &&
                  a.tank.series_resistance == b.tank.series_resistance &&
                  a.settled_amplitude == b.settled_amplitude &&
                  a.settled_code == b.settled_code &&
                  a.supply_current == b.supply_current && a.in_window == b.in_window;
  }
  return t;
}

// Lockstep spice batch with cross-case LU sharing: 8 linear variants, 4
// of them sharing the nominal base matrix bit for bit.
BatchedTiming bench_transient_batch() {
  spice::TransientOptions options;
  options.dt = 1.0 / (4.0_MHz * 64.0);
  options.t_stop = 2000.0 * options.dt;
  options.start_from_dc = false;

  const std::vector<double> scales = {1.0, 1.0, 1.05, 1.0, 0.95, 1.1, 1.0, 0.9};
  auto build = [](spice::Circuit& c, double scale) {
    build_linear_rlc(c);
    auto* rs = c.find_as<spice::Resistor>("Rs");
    rs->set_resistance(rs->resistance() * scale);
  };

  BatchedTiming t;
  t.name = "transient_sweep_batch";
  t.items = scales.size();

  std::vector<spice::TransientResult> serial(scales.size());
  t.serial_ms = time_ms([&] {
    for (std::size_t i = 0; i < scales.size(); ++i) {
      spice::Circuit c;
      build(c, scales[i]);
      serial[i] = run_transient(c, options, {"a", "b"});
    }
  });

  std::vector<spice::TransientResult> batched;
  t.batched_ms = time_ms([&] {
    std::vector<spice::Circuit> circuits(scales.size());
    std::vector<spice::Circuit*> pointers;
    for (std::size_t i = 0; i < scales.size(); ++i) {
      build(circuits[i], scales[i]);
      pointers.push_back(&circuits[i]);
    }
    batched = run_transient_batch(pointers, options, {"a", "b"});
  });

  t.identical = batched.size() == serial.size();
  for (std::size_t v = 0; t.identical && v < serial.size(); ++v) {
    t.factorizations += batched[v].stats.factorizations;
    t.shared_factor_hits += batched[v].stats.shared_factor_hits;
    t.identical = batched[v].traces.size() == serial[v].traces.size();
    for (std::size_t p = 0; t.identical && p < serial[v].traces.size(); ++p) {
      const Trace& a = batched[v].traces[p];
      const Trace& b = serial[v].traces[p];
      t.identical = a.size() == b.size();
      for (std::size_t i = 0; t.identical && i < a.size(); ++i) {
        t.identical = a.time(i) == b.time(i) && a.value(i) == b.value(i);
      }
    }
  }
  return t;
}

// 1-process vs N-process sharding through the crash-resilient campaign
// service (DESIGN.md §13).  `identical` demands byte equality of the two
// rendered reports -- the service's core determinism contract.  The
// sharded run pays the fork/exec + checkpoint-fsync tax, so its speedup
// is below the in-process engines' on the same workload; the row exists
// to keep that overhead visible and bounded.
struct ServiceTiming {
  std::string name;
  std::size_t items = 0;
  int shards = 1;
  double single_ms = 0.0;
  double sharded_ms = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return sharded_ms > 0.0 ? single_ms / sharded_ms : 0.0;
  }
};

ServiceTiming bench_service_sharding() {
  namespace fs = std::filesystem;
  service::CampaignSpec spec;
  spec.kind = service::CampaignKind::Tolerance;
  spec.samples = 48;
  spec.run_duration = 20e-3;

  ServiceTiming t;
  t.name = "tolerance_service";
  t.items = static_cast<std::size_t>(spec.samples);
  t.shards = std::thread::hardware_concurrency() > 1 ? 2 : 1;

  auto run_with = [&](int shards, const std::string& dir) {
    fs::remove_all(dir);
    spec.shards = shards;
    spec.checkpoint_dir = dir;
    service::ServiceResult result;
    const double ms = time_ms([&] { result = run_campaign_service(spec); });
    fs::remove_all(dir);
    return std::pair<double, std::string>(ms, std::move(result.report));
  };

  const auto [single_ms, single_report] = run_with(1, "artifacts/bench_service_1");
  const auto [sharded_ms, sharded_report] =
      run_with(t.shards, "artifacts/bench_service_n");
  t.single_ms = single_ms;
  t.sharded_ms = sharded_ms;
  t.identical = single_report == sharded_report;
  return t;
}

// Chunked shard drain vs per-case shard drain (DESIGN.md §16).  The
// timed loops are exactly what a shard worker executes per checkpoint
// record: the pre-chunk worker called run_case (one EnvelopeSimulator
// per case) for every remaining index; the chunked worker calls
// run_cases once per chunk-aligned group and commits the same
// one-record-per-case checkpoints.  The fork/exec + fsync tax is
// identical on both sides (the "service" row keeps it visible), so it is
// excluded here.  `identical` demands (a) record-for-record equality of
// the two drains and (b) byte equality of full service reports run with
// chunk_lanes=1 vs 64 -- chunking must never move a result bit.
struct BatchedServiceTiming {
  std::string name;
  std::size_t items = 0;
  int chunk_lanes = 1;
  double per_case_ms = 0.0;
  double chunked_ms = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return chunked_ms > 0.0 ? per_case_ms / chunked_ms : 0.0;
  }
};

BatchedServiceTiming bench_batched_service() {
  namespace fs = std::filesystem;
  service::CampaignSpec spec;
  spec.kind = service::CampaignKind::Tolerance;
  spec.samples = 48;
  spec.run_duration = 20e-3;

  BatchedServiceTiming t;
  t.name = "tolerance_shard_drain";
  t.items = static_cast<std::size_t>(spec.samples);
  t.chunk_lanes = 64;
  spec.chunk_lanes = t.chunk_lanes;

  const std::unique_ptr<ShardableCampaign> campaign = service::make_campaign(spec);
  const std::size_t n = campaign->case_count();
  const std::size_t stride = campaign->chunk_stride();

  std::vector<std::string> per_case_records;
  t.per_case_ms = time_ms([&] {
    for (std::size_t i = 0; i < n; ++i) per_case_records.push_back(campaign->run_case(i));
  });

  std::vector<std::string> chunked_records;
  t.chunked_ms = time_ms([&] {
    for (std::size_t first = 0; first < n; first += stride) {
      const std::size_t count = std::min(stride, n - first);
      for (std::string& r : campaign->run_cases(first, count)) {
        chunked_records.push_back(std::move(r));
      }
    }
  });
  t.identical = per_case_records == chunked_records;

  // Full-service cross-check: the rendered report must not depend on the
  // chunk layout either.
  auto report_with = [&](int chunk_lanes, const std::string& dir) {
    fs::remove_all(dir);
    spec.chunk_lanes = chunk_lanes;
    spec.checkpoint_dir = dir;
    std::string report = run_campaign_service(spec).report;
    fs::remove_all(dir);
    return report;
  };
  t.identical = t.identical && report_with(1, "artifacts/bench_chunk_1") ==
                                   report_with(t.chunk_lanes, "artifacts/bench_chunk_n");
  return t;
}

// Streaming sweep memory (DESIGN.md §16): the same 10,000-variant
// envelope sweep once through the bounded rolling window and once as a
// single materialized batch, each in a forked child so wait4's ru_maxrss
// isolates that path's peak RSS.  Both children fork from the same
// parent image back to back, so the delta is the path's own footprint:
// the one-shot side holds every lane's config + SoA state at once, the
// streaming side only chunk_lanes of them.
struct StreamingTiming {
  std::string name;
  std::size_t lanes = 0;
  std::size_t chunk = 0;
  double streaming_ms = 0.0;
  double one_shot_ms = 0.0;
  long streaming_rss_kb = 0;
  long one_shot_rss_kb = 0;
  bool identical = false;    // per-lane result checksums match
  bool rss_bounded = false;  // streaming peak RSS <= one-shot peak RSS
};

system::BatchedEnvelopeLane streaming_lane(std::size_t i) {
  static const double scale[5] = {1.0, 0.94, 1.07, 1.02, 0.98};
  system::BatchedEnvelopeLane lane;
  lane.config.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  lane.config.regulation.tick_period = 0.25e-3;
  lane.config.tank.inductance *= scale[i % 5];
  lane.config.tank.series_resistance *= scale[(i + 2) % 5];
  lane.config.tank.capacitance1 *= scale[(i + 3) % 5];
  return lane;
}

// Order-sensitive checksum over the fields campaign code consumes; equal
// sums across the two paths is the bit-identity check without shipping
// 10k results through a pipe.
std::uint64_t mix_result(std::uint64_t h, std::size_t index,
                         const system::BatchedLaneResult& r) {
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  std::uint64_t amp = 0;
  std::uint64_t supply = 0;
  std::memcpy(&amp, &r.settled_amplitude, sizeof(amp));
  std::memcpy(&supply, &r.supply_current, sizeof(supply));
  mix(static_cast<std::uint64_t>(index));
  mix(static_cast<std::uint64_t>(r.final_code));
  mix(amp);
  mix(supply);
  mix(r.substeps);
  return h;
}

// Runs `body` in a forked child: the child writes "<checksum> <ms>" to
// `result_path` and exits 0; the parent reads the child's peak RSS from
// wait4 (ru_maxrss, kilobytes on Linux).
bool run_rss_child(const std::string& result_path,
                   const std::function<std::pair<std::uint64_t, double>()>& body,
                   std::uint64_t& checksum, double& ms, long& rss_kb) {
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    const std::pair<std::uint64_t, double> r = body();
    std::ostringstream line;
    line << r.first << " " << r.second << "\n";
    (void)write_file_atomic(result_path, line.str());
    std::_Exit(0);
  }
  int status = 0;
  struct rusage usage {};
  if (::wait4(pid, &status, 0, &usage) != pid) return false;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return false;
  std::ifstream in(result_path);
  if (!(in >> checksum >> ms)) return false;
  rss_kb = usage.ru_maxrss;
  return true;
}

StreamingTiming bench_streaming_sweep() {
  namespace fs = std::filesystem;
  StreamingTiming t;
  t.name = "streaming_sweep_10k";
  t.lanes = 10000;
  t.chunk = 64;
  const double duration = 2e-3;
  std::error_code ec;
  fs::create_directories("artifacts", ec);

  auto streaming_body = [&] {
    std::uint64_t sum = 0;
    const system::BatchedEnvelopeEngine engine(t.chunk);
    const double ms = time_ms([&] {
      engine.run(t.lanes, duration, streaming_lane,
                 [&](std::size_t index, const system::BatchedLaneResult& r) {
                   sum = mix_result(sum, index, r);
                 });
    });
    return std::pair<std::uint64_t, double>(sum, ms);
  };
  auto one_shot_body = [&] {
    std::uint64_t sum = 0;
    std::vector<system::BatchedLaneResult> results;
    const double ms = time_ms([&] {
      std::vector<system::BatchedEnvelopeLane> lanes;
      lanes.reserve(t.lanes);
      for (std::size_t i = 0; i < t.lanes; ++i) lanes.push_back(streaming_lane(i));
      results = system::run_batched_envelope(lanes, duration);
    });
    for (std::size_t i = 0; i < results.size(); ++i) sum = mix_result(sum, i, results[i]);
    return std::pair<std::uint64_t, double>(sum, ms);
  };

  std::uint64_t stream_sum = 0;
  std::uint64_t one_shot_sum = 0;
  const bool stream_ok = run_rss_child("artifacts/bench_stream_windowed.txt", streaming_body,
                                       stream_sum, t.streaming_ms, t.streaming_rss_kb);
  const bool one_ok = run_rss_child("artifacts/bench_stream_one_shot.txt", one_shot_body,
                                    one_shot_sum, t.one_shot_ms, t.one_shot_rss_kb);
  t.identical = stream_ok && one_ok && stream_sum == one_shot_sum;
  t.rss_bounded = stream_ok && one_ok && t.streaming_rss_kb <= t.one_shot_rss_kb;
  fs::remove("artifacts/bench_stream_windowed.txt", ec);
  fs::remove("artifacts/bench_stream_one_shot.txt", ec);
  return t;
}

// Multi-job queue throughput (DESIGN.md §14): N campaigns run back-to-
// back directly vs submitted to the job queue and drained by one
// coordinator with a shared worker fleet.  `identical` demands byte
// equality of every queued report against its direct run -- fleet
// sharing must not leak into results.  The queued side overlaps the
// campaigns, so it gains roughly the parallelism the fleet cap allows,
// minus the queue's claim/fsync bookkeeping.
struct QueueTiming {
  std::string name;
  std::size_t jobs = 0;
  double direct_ms = 0.0;
  double queued_ms = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return queued_ms > 0.0 ? direct_ms / queued_ms : 0.0;
  }
};

QueueTiming bench_queue_throughput() {
  namespace fs = std::filesystem;
  const std::vector<std::uint64_t> seeds = {1, 2};
  auto spec_for = [](std::uint64_t seed) {
    service::CampaignSpec spec;
    spec.kind = service::CampaignKind::Tolerance;
    spec.samples = 24;
    spec.seed = seed;
    return spec;
  };

  QueueTiming t;
  t.name = "tolerance_queue";
  t.jobs = seeds.size();
  const int fleet = std::thread::hardware_concurrency() > 1 ? 2 : 1;

  fs::remove_all("artifacts/bench_queue_direct");
  std::vector<std::string> direct_reports;
  t.direct_ms = time_ms([&] {
    for (const std::uint64_t seed : seeds) {
      service::CampaignSpec spec = spec_for(seed);
      spec.checkpoint_dir = "artifacts/bench_queue_direct/" + std::to_string(seed);
      direct_reports.push_back(run_campaign_service(spec).report);
    }
  });

  fs::remove_all("artifacts/bench_queue");
  service::JobQueue queue("artifacts/bench_queue");
  t.queued_ms = time_ms([&] {
    for (const std::uint64_t seed : seeds) {
      (void)queue.submit(spec_for(seed), 0, "s" + std::to_string(seed));
    }
    service::QueueCoordinatorOptions options;
    options.max_parallel_jobs = fleet;
    options.shard_slots = fleet;
    options.poll_ms = 5;
    (void)run_queue_coordinator(queue, options);
  });

  const std::vector<service::JobRecord> jobs = queue.list();
  t.identical = jobs.size() == seeds.size();
  for (std::size_t i = 0; i < jobs.size() && t.identical; ++i) {
    const std::optional<std::string> report = queue.report(jobs[i]);
    t.identical = report.has_value() && *report == direct_reports[i];
  }
  fs::remove_all("artifacts/bench_queue_direct");
  fs::remove_all("artifacts/bench_queue");
  return t;
}

// Telemetry tax on the sharded service (DESIGN.md §15): the same
// campaign with the fleet observability pipeline off vs on.  The LCOSC_*
// toggles travel through the environment across the coordinator's
// fork/exec, so the on-run's workers flush metrics + trace snapshots and
// the coordinator merges them.  `identical` demands byte equality of the
// two reports -- telemetry must never leak into results -- and the
// "fleet_obs" phases feed the check_bench_drift.py gate, which keeps the
// overhead bounded.
struct FleetObsTiming {
  std::string name;
  std::size_t items = 0;
  int shards = 1;
  double off_ms = 0.0;
  double on_ms = 0.0;
  bool identical = false;    // telemetry-on report == telemetry-off report
  bool artifacts_ok = false;  // merged metrics/trace/summary all present

  [[nodiscard]] double overhead() const { return off_ms > 0.0 ? on_ms / off_ms : 0.0; }
};

FleetObsTiming bench_fleet_obs() {
  namespace fs = std::filesystem;
  service::CampaignSpec spec;
  spec.kind = service::CampaignKind::Tolerance;
  spec.samples = 48;
  spec.run_duration = 20e-3;
  spec.shards = std::thread::hardware_concurrency() > 1 ? 2 : 1;

  FleetObsTiming t;
  t.name = "tolerance_fleet_obs";
  t.items = static_cast<std::size_t>(spec.samples);
  t.shards = spec.shards;

  // Remember the caller's toggles; this process's own latched obs flags
  // are unaffected (env is read once at first use), only the exec'd
  // workers see these changes.
  const char* saved_metrics = std::getenv("LCOSC_METRICS");
  const char* saved_trace = std::getenv("LCOSC_TRACE");
  const std::string old_metrics = saved_metrics ? saved_metrics : "";
  const std::string old_trace = saved_trace ? saved_trace : "";

  auto run_with = [&](bool telemetry, const std::string& dir) {
    if (telemetry) {
      ::setenv("LCOSC_METRICS", "1", 1);
      ::setenv("LCOSC_TRACE", "1", 1);
    } else {
      ::unsetenv("LCOSC_METRICS");
      ::unsetenv("LCOSC_TRACE");
    }
    fs::remove_all(dir);
    spec.checkpoint_dir = dir;
    service::ServiceResult result;
    const double ms = time_ms([&] { result = run_campaign_service(spec); });
    return std::pair<double, std::string>(ms, std::move(result.report));
  };

  const auto [off_ms, off_report] = run_with(false, "artifacts/bench_fleet_obs_off");
  const auto [on_ms, on_report] = run_with(true, "artifacts/bench_fleet_obs_on");
  t.off_ms = off_ms;
  t.on_ms = on_ms;
  t.identical = off_report == on_report;

  const std::string tdir = service::telemetry_dir("artifacts/bench_fleet_obs_on");
  t.artifacts_ok = fs::exists(tdir + "/metrics.json") && fs::exists(tdir + "/trace.json") &&
                   fs::exists(tdir + "/summary.json");

  if (saved_metrics) ::setenv("LCOSC_METRICS", old_metrics.c_str(), 1);
  else ::unsetenv("LCOSC_METRICS");
  if (saved_trace) ::setenv("LCOSC_TRACE", old_trace.c_str(), 1);
  else ::unsetenv("LCOSC_TRACE");
  fs::remove_all("artifacts/bench_fleet_obs_off");
  fs::remove_all("artifacts/bench_fleet_obs_on");
  return t;
}

void write_json(const std::string& path, const std::vector<CampaignTiming>& timings,
                const std::vector<TransientTiming>& transients,
                const std::vector<AdaptiveTiming>& adaptives,
                const std::vector<BatchedTiming>& batched,
                const std::vector<ServiceTiming>& services,
                const std::vector<BatchedServiceTiming>& batched_services,
                const std::vector<StreamingTiming>& streams,
                const std::vector<QueueTiming>& queues,
                const std::vector<FleetObsTiming>& fleet_obs) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"bench_perf_campaigns\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"default_worker_count\": " << default_worker_count() << ",\n"
      << "  \"campaigns\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const CampaignTiming& t = timings[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"items\": " << t.items << ",\n"
        << "      \"serial_ms\": " << t.serial_ms << ",\n"
        << "      \"parallel_ms\": " << t.parallel_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"identical_results\": " << (t.identical ? "true" : "false") << "\n"
        << "    }" << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"transient_solver\": [\n";
  for (std::size_t i = 0; i < transients.size(); ++i) {
    const TransientTiming& t = transients[i];
    const spice::TransientStats& s = t.stats;
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"cached_ms\": " << t.cached_ms << ",\n"
        << "      \"uncached_ms\": " << t.uncached_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"identical_traces\": " << (t.identical ? "true" : "false") << ",\n"
        << "      \"matrix_stamps\": " << s.matrix_stamps << ",\n"
        << "      \"rhs_stamps\": " << s.rhs_stamps << ",\n"
        << "      \"factorizations\": " << s.factorizations << ",\n"
        << "      \"rhs_solves\": " << s.rhs_solves << ",\n"
        << "      \"newton_iterations\": " << s.newton_iterations << ",\n"
        << "      \"retried_steps\": " << s.retried_steps << ",\n"
        << "      \"halvings\": " << s.halvings << ",\n"
        << "      \"newton_histogram\": [";
    for (std::size_t b = 0; b < s.newton_histogram.size(); ++b) {
      out << s.newton_histogram[b] << (b + 1 < s.newton_histogram.size() ? ", " : "");
    }
    out << "],\n"
        << "      \"stamp_seconds\": " << s.stamp_seconds << ",\n"
        << "      \"factor_seconds\": " << s.factor_seconds << ",\n"
        << "      \"solve_seconds\": " << s.solve_seconds << "\n"
        << "    }" << (i + 1 < transients.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"adaptive\": [\n";
  for (std::size_t i = 0; i < adaptives.size(); ++i) {
    const AdaptiveTiming& t = adaptives[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"fixed_ms\": " << t.fixed_ms << ",\n"
        << "      \"adaptive_ms\": " << t.adaptive_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"fixed_steps\": " << t.fixed_steps << ",\n"
        << "      \"adaptive_steps\": " << t.adaptive_steps << ",\n"
        << "      \"step_reduction\": " << t.step_reduction() << ",\n"
        << "      \"rejected_steps\": " << t.rejected_steps << ",\n"
        << "      \"base_cache_hits\": " << t.cache_hits << ",\n"
        << "      \"base_cache_misses\": " << t.cache_misses << ",\n"
        << "      \"base_cache_evictions\": " << t.cache_evictions << ",\n"
        << "      \"max_deviation\": " << t.max_deviation << ",\n"
        << "      \"tolerance\": " << t.tolerance << ",\n"
        << "      \"within_tolerance\": " << (t.within_tolerance ? "true" : "false") << "\n"
        << "    }" << (i + 1 < adaptives.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batched\": [\n";
  for (std::size_t i = 0; i < batched.size(); ++i) {
    const BatchedTiming& t = batched[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"items\": " << t.items << ",\n"
        << "      \"serial_ms\": " << t.serial_ms << ",\n"
        << "      \"batched_ms\": " << t.batched_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"identical_results\": " << (t.identical ? "true" : "false") << ",\n"
        << "      \"factorizations\": " << t.factorizations << ",\n"
        << "      \"shared_factor_hits\": " << t.shared_factor_hits << "\n"
        << "    }" << (i + 1 < batched.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"service\": [\n";
  for (std::size_t i = 0; i < services.size(); ++i) {
    const ServiceTiming& t = services[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"items\": " << t.items << ",\n"
        << "      \"shards\": " << t.shards << ",\n"
        << "      \"single_process_ms\": " << t.single_ms << ",\n"
        << "      \"sharded_ms\": " << t.sharded_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"identical_reports\": " << (t.identical ? "true" : "false") << "\n"
        << "    }" << (i + 1 < services.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batched_service\": [\n";
  for (std::size_t i = 0; i < batched_services.size(); ++i) {
    const BatchedServiceTiming& t = batched_services[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"items\": " << t.items << ",\n"
        << "      \"chunk_lanes\": " << t.chunk_lanes << ",\n"
        << "      \"per_case_ms\": " << t.per_case_ms << ",\n"
        << "      \"chunked_ms\": " << t.chunked_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"identical_reports\": " << (t.identical ? "true" : "false") << "\n"
        << "    }" << (i + 1 < batched_services.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"streaming\": [\n";
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const StreamingTiming& t = streams[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"lanes\": " << t.lanes << ",\n"
        << "      \"chunk_lanes\": " << t.chunk << ",\n"
        << "      \"streaming_ms\": " << t.streaming_ms << ",\n"
        << "      \"one_shot_ms\": " << t.one_shot_ms << ",\n"
        << "      \"streaming_peak_rss_kb\": " << t.streaming_rss_kb << ",\n"
        << "      \"one_shot_peak_rss_kb\": " << t.one_shot_rss_kb << ",\n"
        << "      \"identical_results\": " << (t.identical ? "true" : "false") << ",\n"
        << "      \"rss_bounded\": " << (t.rss_bounded ? "true" : "false") << "\n"
        << "    }" << (i + 1 < streams.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"queue\": [\n";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const QueueTiming& t = queues[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"jobs\": " << t.jobs << ",\n"
        << "      \"direct_ms\": " << t.direct_ms << ",\n"
        << "      \"queued_ms\": " << t.queued_ms << ",\n"
        << "      \"speedup\": " << t.speedup() << ",\n"
        << "      \"identical_reports\": " << (t.identical ? "true" : "false") << "\n"
        << "    }" << (i + 1 < queues.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fleet_obs\": [\n";
  for (std::size_t i = 0; i < fleet_obs.size(); ++i) {
    const FleetObsTiming& t = fleet_obs[i];
    out << "    {\n"
        << "      \"name\": \"" << t.name << "\",\n"
        << "      \"items\": " << t.items << ",\n"
        << "      \"shards\": " << t.shards << ",\n"
        << "      \"telemetry_off_ms\": " << t.off_ms << ",\n"
        << "      \"telemetry_on_ms\": " << t.on_ms << ",\n"
        << "      \"overhead\": " << t.overhead() << ",\n"
        << "      \"identical_reports\": " << (t.identical ? "true" : "false") << ",\n"
        << "      \"artifacts_present\": " << (t.artifacts_ok ? "true" : "false") << "\n"
        << "    }" << (i + 1 < fleet_obs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  // Telemetry: a flat phase->milliseconds map (the drift checker's
  // contract, scripts/check_bench_drift.py), the full metrics snapshot
  // and the span accounting of this run.
  out << "  \"telemetry\": {\n    \"phases\": {\n";
  bool first = true;
  auto phase = [&](const std::string& name, double ms) {
    out << (first ? "" : ",\n") << "      \"" << name << "\": " << ms;
    first = false;
  };
  for (const CampaignTiming& t : timings) {
    phase(t.name + ".serial", t.serial_ms);
    phase(t.name + ".parallel", t.parallel_ms);
  }
  for (const TransientTiming& t : transients) {
    phase(t.name + ".uncached", t.uncached_ms);
    phase(t.name + ".cached", t.cached_ms);
  }
  for (const AdaptiveTiming& t : adaptives) {
    phase(t.name + ".fixed", t.fixed_ms);
    phase(t.name + ".adaptive", t.adaptive_ms);
  }
  // ".serial_ref"/".batched" suffixes keep these distinct from the
  // campaigns section's ".serial"/".parallel" keys for the same workload.
  for (const BatchedTiming& t : batched) {
    phase(t.name + ".serial_ref", t.serial_ms);
    phase(t.name + ".batched", t.batched_ms);
  }
  for (const ServiceTiming& t : services) {
    phase(t.name + ".single_process", t.single_ms);
    phase(t.name + ".sharded", t.sharded_ms);
  }
  for (const BatchedServiceTiming& t : batched_services) {
    phase(t.name + ".per_case", t.per_case_ms);
    phase(t.name + ".chunked", t.chunked_ms);
  }
  for (const StreamingTiming& t : streams) {
    phase(t.name + ".windowed", t.streaming_ms);
    phase(t.name + ".one_shot", t.one_shot_ms);
  }
  for (const QueueTiming& t : queues) {
    phase(t.name + ".direct", t.direct_ms);
    phase(t.name + ".queued", t.queued_ms);
  }
  // The drift gate holds these two phases together: telemetry-on wall
  // time regressing against its own baseline is the overhead signal.
  for (const FleetObsTiming& t : fleet_obs) {
    phase("fleet_obs.telemetry_off", t.off_ms);
    phase("fleet_obs.telemetry_on", t.on_ms);
  }
  out << "\n    },\n"
      << "    \"metrics_enabled\": " << (obs::metrics_enabled() ? "true" : "false") << ",\n"
      << "    \"trace_enabled\": " << (obs::trace_enabled() ? "true" : "false") << ",\n"
      << "    \"trace_events\": " << obs::trace_event_count() << ",\n"
      << "    \"trace_dropped\": " << obs::trace_dropped_count() << ",\n"
      << "    \"metrics\": " << obs::MetricsRegistry::instance().snapshot().to_json(4)
      << "\n  }\n}\n";

  // Atomic write (temp + rename): a bench killed mid-emit must never
  // leave a truncated BENCH_*.json for the drift checker to trip over.
  if (!write_file_atomic(path, out.str())) {
    std::cerr << "warning: cannot write " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The service bench re-execs this binary as its shard worker.
  if (const auto shard_exit = service::maybe_run_shard(argc, argv)) return *shard_exit;

  // Telemetry defaults for the bench: metrics on (they cost one relaxed
  // atomic per event and feed the "telemetry" JSON section), tracing off
  // (opt in with LCOSC_TRACE=1 to get a Perfetto-loadable span file).
  obs::set_metrics_enabled(obs::env_flag("LCOSC_METRICS", true));
  obs::set_trace_enabled(obs::env_flag("LCOSC_TRACE", false));

  std::cout << "=== Campaign engine: serial vs parallel wall time ===\n\n"
            << "hardware threads: " << std::thread::hardware_concurrency()
            << ", default workers: " << default_worker_count() << "\n\n";

  const std::vector<CampaignTiming> timings = {
      bench_tolerance(), bench_fmea(), bench_ac_sweep()};

  TablePrinter table({"campaign", "items", "serial [ms]", "parallel [ms]", "speedup",
                      "identical"});
  for (const CampaignTiming& t : timings) {
    table.add_values(t.name, t.items, format_significant(t.serial_ms, 4),
                     format_significant(t.parallel_ms, 4), format_significant(t.speedup(), 3),
                     t.identical);
  }
  table.print(std::cout);

  std::cout << "\n=== Transient solver: cached base + LU reuse vs full re-stamp ===\n\n";
  const std::vector<TransientTiming> transients = {
      bench_transient("transient_linear_rlc", false),
      bench_transient("transient_clamped_rlc", true)};
  TablePrinter ttable({"circuit", "uncached [ms]", "cached [ms]", "speedup", "identical",
                       "factorizations", "rhs solves", "newton iters"});
  for (const TransientTiming& t : transients) {
    ttable.add_values(t.name, format_significant(t.uncached_ms, 4),
                      format_significant(t.cached_ms, 4), format_significant(t.speedup(), 3),
                      t.identical, t.stats.factorizations, t.stats.rhs_solves,
                      t.stats.newton_iterations);
  }
  ttable.print(std::cout);

  std::cout << "\n=== Batched lockstep engines vs serial reference ===\n\n";
  const std::vector<BatchedTiming> batched = {bench_tolerance_batched(),
                                              bench_transient_batch()};
  TablePrinter btable({"workload", "items", "serial [ms]", "batched [ms]", "speedup",
                       "identical", "factorizations", "shared hits"});
  for (const BatchedTiming& t : batched) {
    btable.add_values(t.name, t.items, format_significant(t.serial_ms, 4),
                      format_significant(t.batched_ms, 4), format_significant(t.speedup(), 3),
                      t.identical, t.factorizations, t.shared_factor_hits);
  }
  btable.print(std::cout);

  std::cout << "\n=== Campaign service: 1 process vs sharded subprocesses ===\n\n";
  const std::vector<ServiceTiming> services = {bench_service_sharding()};
  TablePrinter stable({"workload", "items", "shards", "1-proc [ms]", "sharded [ms]",
                       "speedup", "identical"});
  for (const ServiceTiming& t : services) {
    stable.add_values(t.name, t.items, t.shards, format_significant(t.single_ms, 4),
                      format_significant(t.sharded_ms, 4), format_significant(t.speedup(), 3),
                      t.identical);
  }
  stable.print(std::cout);

  std::cout << "\n=== Shard worker: per-case drain vs chunked drain ===\n\n";
  const std::vector<BatchedServiceTiming> batched_services = {bench_batched_service()};
  TablePrinter cstable({"workload", "items", "chunk", "per-case [ms]", "chunked [ms]",
                        "speedup", "identical"});
  for (const BatchedServiceTiming& t : batched_services) {
    cstable.add_values(t.name, t.items, t.chunk_lanes,
                       format_significant(t.per_case_ms, 4),
                       format_significant(t.chunked_ms, 4),
                       format_significant(t.speedup(), 3), t.identical);
  }
  cstable.print(std::cout);

  std::cout << "\n=== Streaming sweep: rolling window vs one-shot batch (peak RSS) ===\n\n";
  const std::vector<StreamingTiming> streams = {bench_streaming_sweep()};
  TablePrinter wtable({"workload", "lanes", "chunk", "windowed [ms]", "one-shot [ms]",
                       "windowed RSS [kB]", "one-shot RSS [kB]", "identical", "bounded"});
  for (const StreamingTiming& t : streams) {
    wtable.add_values(t.name, t.lanes, t.chunk, format_significant(t.streaming_ms, 4),
                      format_significant(t.one_shot_ms, 4), t.streaming_rss_kb,
                      t.one_shot_rss_kb, t.identical, t.rss_bounded);
  }
  wtable.print(std::cout);

  std::cout << "\n=== Job queue: direct back-to-back vs shared-fleet drain ===\n\n";
  const std::vector<QueueTiming> queues = {bench_queue_throughput()};
  TablePrinter qtable({"workload", "jobs", "direct [ms]", "queued [ms]", "speedup",
                       "identical"});
  for (const QueueTiming& t : queues) {
    qtable.add_values(t.name, t.jobs, format_significant(t.direct_ms, 4),
                      format_significant(t.queued_ms, 4), format_significant(t.speedup(), 3),
                      t.identical);
  }
  qtable.print(std::cout);

  std::cout << "\n=== Fleet observability: telemetry off vs on ===\n\n";
  const std::vector<FleetObsTiming> fleet_obs = {bench_fleet_obs()};
  TablePrinter otable({"workload", "items", "shards", "telemetry off [ms]",
                       "telemetry on [ms]", "overhead", "identical", "artifacts"});
  for (const FleetObsTiming& t : fleet_obs) {
    otable.add_values(t.name, t.items, t.shards, format_significant(t.off_ms, 4),
                      format_significant(t.on_ms, 4), format_significant(t.overhead(), 3),
                      t.identical, t.artifacts_ok);
  }
  otable.print(std::cout);

  // Fixed-vs-adaptive A/B (skip with LCOSC_ADAPTIVE=0, e.g. to time the
  // classic sections alone; the drift checker tolerates missing phases).
  std::vector<AdaptiveTiming> adaptives;
  if (obs::env_flag("LCOSC_ADAPTIVE", true)) {
    std::cout << "\n=== Adaptive LTE stepping vs fixed grid ===\n\n";
    adaptives = {bench_transient_startup(), bench_envelope_regulation(),
                 bench_tolerance_adaptive()};
    TablePrinter atable({"workload", "fixed [ms]", "adaptive [ms]", "speedup", "steps",
                         "adaptive steps", "rejected", "max dev", "ok"});
    for (const AdaptiveTiming& t : adaptives) {
      atable.add_values(t.name, format_significant(t.fixed_ms, 4),
                        format_significant(t.adaptive_ms, 4),
                        format_significant(t.speedup(), 3), t.fixed_steps, t.adaptive_steps,
                        t.rejected_steps, format_significant(t.max_deviation, 3),
                        t.within_tolerance);
    }
    atable.print(std::cout);
  }

  write_json("BENCH_campaigns.json", timings, transients, adaptives, batched, services,
             batched_services, streams, queues, fleet_obs);
  if (obs::trace_enabled()) {
    obs::write_chrome_trace("artifacts/trace_campaigns.json");
    std::cout << "\n(trace: artifacts/trace_campaigns.json, "
              << obs::trace_event_count() << " events)\n";
  }
  std::cout << "\n(machine-readable record: BENCH_campaigns.json)\n"
            << "\nShape checks:\n"
            << "  - identical=true on every row: the parallel campaigns are\n"
            << "    byte-identical to serial (per-index Rng forking, order-preserving\n"
            << "    parallel_map);\n"
            << "  - speedup approaches the worker count on multi-core hosts and ~1.0\n"
            << "    on a single core (the engine adds no meaningful overhead);\n"
            << "  - ok=true on every adaptive row: the LTE-controlled runs stay inside\n"
            << "    the reltol-scaled band of their fixed-grid references while cutting\n"
            << "    the accepted-step count (>= 3x on the startup and regulation rows);\n"
            << "  - identical=true on every batched row at >= 3x speedup on the\n"
            << "    tolerance campaign: the lockstep engines return byte-identical\n"
            << "    results while sharing work across variants;\n"
            << "  - identical=true on the service row: sharding the campaign across\n"
            << "    worker subprocesses (fork/exec + checkpoint fsync per case)\n"
            << "    reproduces the single-process report byte for byte;\n"
            << "  - identical=true on the batched_service row at >= 2x speedup: the\n"
            << "    chunked shard drain (lockstep chunks per run_cases call, one\n"
            << "    checkpoint record per case) reproduces the per-case drain's report\n"
            << "    byte for byte while amortizing the envelope time loop;\n"
            << "  - identical=true and bounded=true on the streaming row: the 10k-lane\n"
            << "    rolling-window sweep matches the one-shot batch checksum for\n"
            << "    checksum while its peak RSS stays at the O(chunk_lanes) floor\n"
            << "    instead of the one-shot side's O(total);\n"
            << "  - identical=true on the queue row: draining prioritized jobs\n"
            << "    through the shared-fleet coordinator reproduces each job's\n"
            << "    back-to-back direct report byte for byte;\n"
            << "  - identical=true and artifacts=true on the fleet_obs row: turning\n"
            << "    the telemetry pipeline on changes no report byte, produces the\n"
            << "    merged metrics/trace/summary artifacts, and its overhead stays\n"
            << "    inside the bench drift gate.\n";
  return 0;
}
