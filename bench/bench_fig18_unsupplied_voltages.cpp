// Fig. 18 of the paper: voltages on LC1, LC2 and the floating Vdd rail of
// the unsupplied chip versus the differential drive (Fig. 11 topology).
// For positive overdrive the MP1 bulk diode lifts the floating rail to a
// junction drop below the high pin; MP3 lifts the MP1 gate so no channel
// path opens.
#include <iostream>

#include "common/logging.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "driver/output_stage.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::driver;

int main() {
  // Isolated non-converged sweep points are dropped by extraction; keep
  // the table output clean.
  set_log_level(LogLevel::Error);
  std::cout << "=== Fig. 18: LC1 / LC2 / Vdd voltages, floating supply (Fig. 11 stage) ===\n\n";

  UnsuppliedDriverTestbench tb(OutputStageTopology::BulkSwitched);
  const UnsuppliedSweep sweep = tb.sweep(-3.0, 3.0, 61);

  TablePrinter table({"Vd [V]", "v(LC1) [V]", "v(LC2) [V]", "v(Vdd) [V]"});
  for (std::size_t i = 0; i < sweep.points.size(); i += 2) {
    const auto& p = sweep.points[i];
    table.add_values(format_significant(p.differential_voltage, 3),
                     format_significant(p.v_lc1, 4), format_significant(p.v_lc2, 4),
                     format_significant(p.v_vdd, 4));
  }
  table.print(std::cout);

  {
    SvgSeries lc1, lc2, vdd;
    lc1.label = "LC1";
    lc2.label = "LC2";
    vdd.label = "Vdd";
    for (const auto& p : sweep.points) {
      if (!p.converged) continue;
      lc1.points.emplace_back(p.differential_voltage, p.v_lc1);
      lc2.points.emplace_back(p.differential_voltage, p.v_lc2);
      vdd.points.emplace_back(p.differential_voltage, p.v_vdd);
    }
    write_svg_plot("artifacts/fig18_unsupplied_voltages.svg", {lc1, lc2, vdd},
                   {.title = "Fig. 18: LC1/LC2/Vdd, Vdd floating",
                    .x_label = "V(LC1)-V(LC2) [V]", .y_label = "V [V]"});
    std::cout << "(figure: artifacts/fig18_unsupplied_voltages.svg)\n\n";
  }

  // Locate the +3 V point for the summary.
  const auto& hi = sweep.points.back();
  std::cout << "\nShape checks vs the paper:\n"
            << "  at Vd = +3 V: LC1 = " << format_significant(hi.v_lc1, 3)
            << " V, Vdd = " << format_significant(hi.v_vdd, 3)
            << " V (rail rides a diode below the high pin)\n"
            << "  the low pin goes NEGATIVE without clamping: MN3/MN5 hold the\n"
            << "  output NMOS gate and bulk at the pin potential, so no junction\n"
            << "  to ground conducts (Section 8).\n";
  return 0;
}
