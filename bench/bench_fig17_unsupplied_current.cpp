// Fig. 17 of the paper: DC current through the LC1/LC2 pins of the
// UNSUPPLIED chip as a function of the differential voltage forced across
// them (Vdd floating).  Regenerated from the transistor-level MNA
// testbench for the paper's Fig. 11 bulk-switched output stage, with the
// Fig. 10a (standard CMOS) and Fig. 10b (series PMOS) topologies as the
// baselines the paper argues against.
#include <iostream>

#include "common/constants.h"
#include "common/logging.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "driver/output_stage.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::driver;

int main() {
  // Isolated non-converged sweep points are dropped by extraction; keep
  // the table output clean.
  set_log_level(LogLevel::Error);
  std::cout << "=== Fig. 17: pin current with floating Vdd (DC sweep -3..+3 V) ===\n\n";

  UnsuppliedDriverTestbench fig11(OutputStageTopology::BulkSwitched);
  UnsuppliedDriverTestbench fig10a(OutputStageTopology::StandardCmos);
  UnsuppliedDriverTestbench fig10b(OutputStageTopology::SeriesPmos);

  const UnsuppliedSweep s11 = fig11.sweep(-3.0, 3.0, 61);
  const UnsuppliedSweep s10a = fig10a.sweep(-3.0, 3.0, 61);
  const UnsuppliedSweep s10b = fig10b.sweep(-3.0, 3.0, 61);

  TablePrinter table({"Vd [V]", "Fig.11 I [mA]", "Fig.10a I [mA]", "Fig.10b I [mA]"});
  for (std::size_t i = 0; i < s11.points.size(); i += 2) {
    table.add_values(format_significant(s11.points[i].differential_voltage, 3),
                     format_significant(s11.points[i].pin_current * 1e3, 4),
                     format_significant(s10a.points[i].pin_current * 1e3, 4),
                     format_significant(s10b.points[i].pin_current * 1e3, 4));
  }
  table.print(std::cout);

  {
    auto to_series = [](const UnsuppliedSweep& s, const char* label) {
      SvgSeries series;
      series.label = label;
      for (const auto& p : s.points) {
        if (p.converged) series.points.emplace_back(p.differential_voltage,
                                                    p.pin_current * 1e3);
      }
      return series;
    };
    write_svg_plot("artifacts/fig17_unsupplied_current.svg",
                   {to_series(s11, "Fig.11"), to_series(s10b, "Fig.10b")},
                   {.title = "Fig. 17: pin current, Vdd floating",
                    .x_label = "V(LC1)-V(LC2) [V]", .y_label = "I [mA]"});
    std::cout << "(figure: artifacts/fig17_unsupplied_current.svg)\n\n";
  }

  const double op_half = 0.5 * kMaxOperatingAmplitudePeakToPeak;  // 1.35 V
  std::cout << "\nShape checks vs the paper:\n"
            << "  Fig.11  max |I| at +-3 V              = "
            << si_format(s11.max_abs_current(), "A") << "  (Fig. 17 y-range: < ~0.8 mA)\n"
            << "  Fig.11  max |I| within 2.7 Vpp        = "
            << si_format(s11.max_abs_current_within(op_half), "A")
            << "  ('does not significantly influence the other system')\n"
            << "  Fig.10a max |I| within 2.7 Vpp        = "
            << si_format(s10a.max_abs_current_within(op_half), "A")
            << "  (intrinsic diodes load the live system)\n"
            << "  Fig.10a max |I| at +-3 V              = "
            << si_format(s10a.max_abs_current(), "A") << "\n"
            << "  who wins: Fig.11 leaks "
            << format_significant(
                   s10a.max_abs_current_within(op_half) /
                       std::max(s11.max_abs_current_within(op_half), 1e-12),
                   3)
            << "x less than Fig.10a inside the operating range\n"
            << "  Fig.10b blocks the negative side (pin 'can go negative') but keeps\n"
            << "  the positive Vdd-diode path -- the intermediate topology.\n";
  return 0;
}
