// Monte-Carlo yield over the external component spread: the paper's
// "wide range of external components parameters" claim quantified.
#include <iostream>
#include <vector>

#include "common/parallel.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/tolerance_analysis.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Tolerance Monte-Carlo: yield vs component spread ===\n\n";

  TablePrinter table({"L/C tol", "Rs tol", "DAC mismatch", "yield", "amplitude span [V]",
                      "code span", "max supply"});
  struct Case {
    double lc;
    double rs;
    bool mismatch;
  };
  const std::vector<Case> cases = {
      {0.00, 0.00, false}, {0.05, 0.10, false}, {0.10, 0.30, false},
      {0.10, 0.30, true},  {0.20, 0.50, true},
  };
  // The campaigns themselves run their 120 samples on the parallel
  // engine; the cases stay serial so each campaign gets the full pool.
  const std::vector<ToleranceReport> reports =
      parallel_map(cases.size(), [&](std::size_t i) {
        ToleranceConfig cfg;
        cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
        cfg.nominal.regulation.tick_period = 0.25e-3;
        cfg.inductance_tolerance = cases[i].lc;
        cfg.capacitance_tolerance = cases[i].lc;
        cfg.resistance_tolerance = cases[i].rs;
        cfg.include_dac_mismatch = cases[i].mismatch;
        cfg.samples = 120;
        return run_tolerance_analysis(cfg);
      }, 1);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& k = cases[i];
    const ToleranceReport& report = reports[i];
    table.add_values(percent_format(k.lc), percent_format(k.rs), k.mismatch,
                     percent_format(report.yield()),
                     format_significant(report.min_amplitude(), 3) + ".." +
                         format_significant(report.max_amplitude(), 3),
                     std::to_string(report.min_code()) + ".." +
                         std::to_string(report.max_code()),
                     si_format(report.max_supply_current(), "A"));
  }
  table.print(std::cout);

  // Distribution detail for the realistic case.
  {
    ToleranceConfig cfg;
    cfg.nominal.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
    cfg.nominal.regulation.tick_period = 0.25e-3;
    cfg.inductance_tolerance = 0.10;
    cfg.capacitance_tolerance = 0.10;
    cfg.resistance_tolerance = 0.30;
    cfg.include_dac_mismatch = true;
    cfg.samples = 120;
    const ToleranceReport report = run_tolerance_analysis(cfg);
    const SummaryStatistics amp = report.amplitude_statistics();
    const SummaryStatistics sup = report.supply_statistics();
    std::cout << "\nRealistic case (10% L/C, 30% Rs, mismatch) distributions:\n"
              << "  amplitude: mean " << format_significant(amp.mean, 4) << " V, p05 "
              << format_significant(amp.p05, 4) << ", p95 " << format_significant(amp.p95, 4)
              << ", sigma " << format_significant(amp.stddev, 3) << "\n"
              << "  supply:    median " << si_format(sup.median, "A") << ", p95 "
              << si_format(sup.p95, "A") << "\n";
  }

  std::cout << "\nShape checks:\n"
            << "  - the regulation loop absorbs realistic spreads (10% reactives, 30%\n"
            << "    coil loss, DAC mismatch) with 100% yield: the settled CODE moves,\n"
            << "    the amplitude stays inside the window;\n"
            << "  - the code span shows how much of the exponential DAC's range the\n"
            << "    component spread consumes -- the Section 3 sizing argument.\n";
  return 0;
}
