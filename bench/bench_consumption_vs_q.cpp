// Section 9 of the paper: "Current consumption of the driver depends on
// the quality of the used LC resonance network and varies from 250 uA to
// 30 mA."  Sweep the tank quality across the operable range and report
// the settled regulation code and supply current (envelope engine).
#include <iostream>
#include <vector>

#include "common/parallel.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "spice/sweep.h"
#include "system/envelope_simulator.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Section 9: supply current vs tank quality (two decades of Q) ===\n\n";

  TablePrinter table({"Q", "Rp [ohm]", "Gm0 [mS]", "settled code", "amplitude [V]",
                      "supply current"});
  SvgSeries consumption;
  consumption.label = "supply current [mA]";

  // The Q sweep is a tank parameter sweep with one independent envelope
  // run per point: fan it out over the parallel campaign engine and
  // collect the rows in sweep order.
  struct QPoint {
    double q = 0.0;
    double rp = 0.0;
    double gm0 = 0.0;
    int code = 0;
    double amplitude = 0.0;
    double supply = 0.0;
  };
  const std::vector<double> qs = spice::logspace(5.0, 320.0, 10);
  const std::vector<QPoint> points = parallel_map(qs.size(), [&](std::size_t i) {
    EnvelopeSimConfig cfg;
    cfg.tank = tank::design_tank(4.0_MHz, qs[i], 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    EnvelopeSimulator sim(cfg);
    const EnvelopeRunResult r = sim.run(40e-3);
    const tank::RlcTank tk(cfg.tank);
    QPoint p;
    p.q = qs[i];
    p.rp = tk.parallel_resistance();
    p.gm0 = tk.critical_gm();
    p.code = r.final_code;
    p.amplitude = r.settled_amplitude();
    p.supply = r.ticks.back().supply_current;
    return p;
  });

  double i_min = 1e9;
  double i_max = 0.0;
  for (const QPoint& p : points) {
    consumption.points.emplace_back(p.q, p.supply * 1e3);
    i_min = std::min(i_min, p.supply);
    i_max = std::max(i_max, p.supply);
    table.add_values(format_significant(p.q, 3), format_significant(p.rp, 4),
                     format_significant(p.gm0 * 1e3, 3), p.code,
                     format_significant(p.amplitude, 3), si_format(p.supply, "A"));
  }
  table.print(std::cout);

  write_svg_plot("artifacts/consumption_vs_q.svg", {consumption},
                 {.title = "Supply current vs tank quality (Section 9)",
                  .x_label = "Q", .y_label = "I [mA]", .log_y = true, .markers = true});
  std::cout << "\n(figure: artifacts/consumption_vs_q.svg)\n";

  std::cout << "\nShape checks vs the paper:\n"
            << "  consumption span: " << si_format(i_min, "A") << " .. " << si_format(i_max, "A")
            << " (paper: 250 uA .. 30 mA over the application range)\n"
            << "  high-quality tanks regulate at low codes -> the exponential DAC's\n"
            << "  fine low-end steps are what keeps their consumption minimal.\n";
  return 0;
}
