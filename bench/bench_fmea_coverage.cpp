// Section 7 of the paper: failure mode effect analysis.  Inject every
// external fault class into the running system and report which detection
// channel fired, the latency, and whether the safe state (maximum output
// current, outputs safe) engaged.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/fmea_campaign.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Section 7: FMEA fault-injection campaign ===\n\n";

  FmeaCampaignConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.system.regulation.tick_period = 0.25e-3;
  cfg.system.waveform_decimation = 0;
  cfg.severity.resistance_factor = 30.0;
  cfg.severity.shorted_turn_fraction = 0.9;

  const FmeaReport report = run_fmea_campaign(cfg);

  TablePrinter table({"fault", "expected channel", "missing-osc", "low-amp", "asymmetry",
                      "latency", "safe state", "final code", "outcome"});
  for (const auto& row : report.rows) {
    table.add_values(tank::to_string(row.fault), tank::to_string(row.expected),
                     row.observed.missing_oscillation, row.observed.low_amplitude,
                     row.observed.asymmetry,
                     row.detection_latency ? si_format(*row.detection_latency, "s")
                                           : std::string("-"),
                     row.safe_state_entered, row.final_code, to_string(row.status.outcome));
  }
  table.print(std::cout);

  std::cout << "\nCoverage: " << report.detected_count() << "/" << report.rows.size()
            << " faults detected, " << report.expected_channel_count() << "/"
            << report.rows.size() << " on the designated channel.\n"
            << "Safety reaction (paper Section 9): driver to maximum output current\n"
            << "(code 127) and system outputs set to safe values.\n";
  return 0;
}
