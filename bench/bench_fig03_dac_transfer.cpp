// Fig. 3 of the paper: multiplication factor M(n) of the 7-bit
// PWL-approximated exponential DAC (linear and log scale columns), with
// the per-segment step annotations 1,1,2,4,8,16,32,64.
#include <cmath>
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "dac/control_code.h"
#include "dac/exponential_dac.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::dac;

int main() {
  std::cout << "=== Fig. 3: current multiplication factor M(n), 7-bit PWL exponential DAC ===\n\n";

  const PwlExponentialDac dac;

  std::cout << "Segment map (step value annotations of Fig. 3):\n";
  TablePrinter segments({"segment", "codes", "step", "M range"});
  for (int seg = 0; seg < kDacSegmentCount; ++seg) {
    segments.add_values(seg,
                        std::to_string(seg * 16) + ".." + std::to_string(seg * 16 + 15),
                        segment_step(seg),
                        std::to_string(segment_range_min(seg)) + ".." +
                            std::to_string(segment_range_max(seg)));
  }
  segments.print(std::cout);

  std::cout << "\nTransfer (every 4th code; full resolution in the CSV-style dump of\n"
               "bench_fig13 which adds mismatch):\n";
  TablePrinter table({"code", "M(n) (lin)", "log10 M(n)"});
  for (int code = 0; code <= 127; code += 4) {
    const int m = dac.multiplication(code);
    table.add_values(code, m, m > 0 ? format_significant(std::log10(m), 4) : "-inf");
  }
  table.add_values(127, dac.multiplication(127),
                   format_significant(std::log10(dac.multiplication(127)), 4));
  table.print(std::cout);

  // Emit the figure as SVG next to the ASCII table.
  {
    SvgSeries lin;
    lin.label = "M(n)";
    for (int code = 0; code <= 127; ++code) {
      lin.points.emplace_back(code, dac.multiplication(code));
    }
    write_svg_plot("artifacts/fig03_dac_transfer.svg", {lin},
                   {.title = "Fig. 3: current multiplication factor (lin scale)",
                    .x_label = "code", .y_label = "M(n)", .markers = true});
    write_svg_plot("artifacts/fig03_dac_transfer_log.svg", {lin},
                   {.title = "Fig. 3: current multiplication factor (log scale)",
                    .x_label = "code", .y_label = "M(n)", .log_y = true});
    std::cout << "\n(figures: artifacts/fig03_dac_transfer{,_log}.svg)\n";
  }

  std::cout << "\nShape checks vs the paper:\n"
            << "  full scale M(127)          = " << dac.multiplication(127) << " (paper: 1984)\n"
            << "  equivalent linear bits     = " << kDacEquivalentLinearBits << " (paper: 11)\n"
            << "  fitted per-code growth     = " << percent_format(dac.fitted_growth_ratio())
            << " per code\n"
            << "  worst deviation from exp   = "
            << percent_format(dac.max_exponential_deviation()) << " (codes >= 16)\n"
            << "  monotonic (ideal)          = " << (dac.is_monotonic() ? "yes" : "no") << "\n";
  return 0;
}
