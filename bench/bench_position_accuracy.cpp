// The application workload of the paper's introduction: rotor position
// from the amplitude comparison of two receiving coils.  Run on the
// PHYSICAL 3-coil magnetics (full inductance matrix, induced EMFs), with
// the regulated driver providing the excitation -- a rotor sweep with the
// resulting angle accuracy, plus the same sweep on a degraded tank to
// show that regulation keeps the sensor accurate.
#include <cmath>
#include <iostream>

#include "common/constants.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/magnetic_sensor.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Position accuracy on physical 3-coil magnetics ===\n\n";

  TablePrinter table({"rotor [deg]", "tank", "excitation [V]", "code", "estimated [deg]",
                      "error [deg]"});
  double worst_nominal = 0.0;
  double worst_degraded = 0.0;
  for (const double deg : {-135.0, -45.0, 0.0, 60.0, 150.0}) {
    for (const bool degraded : {false, true}) {
      MagneticSensorConfig cfg;
      // Degraded tank: half the quality -- regulation absorbs it.
      cfg.tank = tank::design_tank(4.0_MHz, degraded ? 20.0 : 40.0, 3.3_uH);
      cfg.regulation.tick_period = 0.25e-3;
      cfg.rotor_angle = deg * kPi / 180.0;
      MagneticSensorSystem sys(cfg);
      const MagneticSensorResult r = sys.run(16e-3);
      const double err_deg = r.angle_error * 180.0 / kPi;
      (degraded ? worst_degraded : worst_nominal) =
          std::max(degraded ? worst_degraded : worst_nominal, std::abs(err_deg));
      table.add_values(format_significant(deg, 4), degraded ? "Q=20 (degraded)" : "Q=40",
                       format_significant(r.settled_amplitude, 3), r.final_code,
                       format_significant(r.estimated_angle * 180.0 / kPi, 4),
                       format_significant(err_deg, 3));
    }
  }
  table.print(std::cout);

  std::cout << "\nworst-case angle error: nominal "
            << format_significant(worst_nominal, 3) << " deg, degraded tank "
            << format_significant(worst_degraded, 3) << " deg.\n"
            << "Shape check: the regulated amplitude makes the ratiometric angle\n"
            << "estimate insensitive to tank quality -- the degraded tank costs a\n"
            << "higher regulation code, not accuracy (the paper's Section 1 premise).\n";
  return 0;
}
