// Fig. 2 of the paper: the static V-I characteristic of the
// current-limited driver stage -- linear transconductance with hard
// clipping at +-Im (plus the smooth tanh variant for comparison).
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "driver/gm_stage.h"

using namespace lcosc;
using namespace lcosc::driver;

int main() {
  std::cout << "=== Fig. 2: driver output current vs input voltage (static) ===\n\n";

  const double gm = 5e-3;
  const double im = 2e-3;
  GmStage hard({.gm = gm, .current_limit = im, .shape = LimitShape::Hard});
  GmStage smooth({.gm = gm, .current_limit = im, .shape = LimitShape::Tanh});

  std::cout << "gm = " << si_format(gm, "S") << ", Im = " << si_format(im, "A")
            << ", saturation at v = " << si_format(hard.saturation_voltage(), "V") << "\n\n";

  TablePrinter table({"v [V]", "i hard [mA]", "i tanh [mA]"});
  for (double v = -1.2; v <= 1.2001; v += 0.1) {
    table.add_values(format_significant(v, 3),
                     format_significant(hard.output_current(v) * 1e3, 4),
                     format_significant(smooth.output_current(v) * 1e3, 4));
  }
  table.print(std::cout);

  std::cout << "\nDescribing-function view (input sine amplitude A):\n";
  TablePrinter df({"A [V]", "N(A)/gm", "fundamental/Im (k of Eq. 3)"});
  for (const double a : {0.1, 0.4, 0.5, 0.8, 1.2, 2.0, 5.0, 20.0}) {
    df.add_values(format_significant(a, 3),
                  format_significant(hard.describing_gain(a) / gm, 4),
                  format_significant(hard.shape_factor(a), 4));
  }
  df.print(std::cout);

  std::cout << "\nShape check: k passes ~0.9 (the paper's quoted value) at moderate\n"
               "overdrive and saturates at 4/pi = 1.273 deep in limiting.\n";
  return 0;
}
