// Fig. 4 of the paper: relative voltage step as a function of the current
// limitation code.  For codes above 16 the step stays inside
// [3.23%, 6.25%]; below 16 it grows toward 100% (which is why the losses
// keep the operating code above 16, Section 3).
#include <iostream>

#include "common/constants.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "dac/exponential_dac.h"
#include "waveform/svg_plot.h"

using namespace lcosc;
using namespace lcosc::dac;

int main() {
  std::cout << "=== Fig. 4: relative step vs current limitation code ===\n\n";

  const PwlExponentialDac dac;
  TablePrinter table({"code", "M(n)", "M(n+1)", "relative step"});
  for (int code = 1; code < 127; ++code) {
    if (code < 16 ? (code % 2 == 1) : (code % 3 == 0) || code == 16 || (code % 16) <= 1) {
      table.add_values(code, dac.multiplication(code), dac.multiplication(code + 1),
                       percent_format(dac.relative_step(code)));
    }
  }
  table.print(std::cout);

  {
    SvgSeries steps;
    steps.label = "relative step";
    for (int code = 1; code < 127; ++code) {
      steps.points.emplace_back(code, dac.relative_step(code) * 100.0);
    }
    write_svg_plot("artifacts/fig04_relative_step.svg", {steps},
                   {.title = "Fig. 4: relative voltage step vs code",
                    .x_label = "code", .y_label = "relative step [%]", .markers = true});
    std::cout << "\n(figure: artifacts/fig04_relative_step.svg)\n";
  }

  std::cout << "\nShape checks vs the paper (codes >= 16):\n"
            << "  max relative step = " << percent_format(dac.max_relative_step(16))
            << "  (paper: 6.25%)\n"
            << "  min relative step = " << percent_format(dac.min_relative_step(16))
            << "  (paper: 3.23%)\n"
            << "  regulation window must exceed "
            << percent_format(kMaxRelativeStepAbove16)
            << " so one step can never jump across it (Section 4).\n";
  return 0;
}
