// Internal single-point fault coverage: inject every fault of the
// on-chip taxonomy (DAC control lines stuck, dead PWL segments, stuck
// window comparator, dead rectifier, frozen regulation FSM, dead
// watchdog, gm collapse) into the running system, and report the
// fault x detection-channel coverage matrix, the diagnostic-coverage
// percentage, per-fault detection latency, and the explicit list of
// uncovered gaps.  Also demonstrates the hardened campaign runner: a
// case that throws or exceeds its step budget is recorded as a
// simulation-error / timeout row instead of aborting the campaign.
// Writes a machine-readable BENCH_fault_coverage.json.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "system/internal_fmea.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

namespace {

InternalFmeaConfig campaign_config() {
  InternalFmeaConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  // Faster regulation ticks shorten the stuck-comparator code walk so the
  // whole campaign fits a short observation window, and the NVM preset
  // (paper Section 4) lands the loop at its settled code well before the
  // injection instant.
  cfg.system.regulation.tick_period = 0.25e-3;
  cfg.system.regulation.nvm_code = 45;
  cfg.system.waveform_decimation = 0;
  cfg.settle_time = 6e-3;
  cfg.observe_time = 12e-3;
  return cfg;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const std::string& path, const InternalFmeaReport& report,
                const std::vector<InternalFmeaRow>& hardening) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"bench_fault_coverage\",\n"
      << "  \"faults\": " << report.rows.size() << ",\n"
      << "  \"detected\": " << report.detected_count() << ",\n"
      << "  \"completed\": " << report.completed_count() << ",\n"
      << "  \"errors\": " << report.error_count() << ",\n"
      << "  \"diagnostic_coverage\": " << report.diagnostic_coverage() << ",\n";

  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const InternalFmeaRow& r = report.rows[i];
    out << "    {\"fault\": \"" << faults::to_string(r.fault) << "\", \"expected\": \""
        << faults::to_string(r.expected) << "\", \"observed\": \""
        << faults::to_string(r.observed_channel()) << "\", \"detected\": "
        << (r.detected ? "true" : "false") << ", \"safe_state\": "
        << (r.safe_state_entered ? "true" : "false") << ", \"latency_s\": "
        << (r.detection_latency ? std::to_string(*r.detection_latency) : "null")
        << ", \"final_code\": " << r.final_code << ", \"outcome\": \""
        << to_string(r.status.outcome) << "\", \"retries\": " << r.status.retries << "}"
        << (i + 1 < report.rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  const std::vector<CoverageEntry> matrix = report.coverage_matrix();
  out << "  \"coverage_matrix\": [\n";
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const CoverageEntry& e = matrix[i];
    out << "    {\"kind\": \"" << faults::to_string(e.kind) << "\", \"undetected\": "
        << e.by_channel[0] << ", \"missing_oscillation\": " << e.by_channel[1]
        << ", \"low_amplitude\": " << e.by_channel[2] << ", \"asymmetry\": "
        << e.by_channel[3] << ", \"frequency_out_of_band\": " << e.by_channel[4]
        << ", \"errors\": " << e.errors << ", \"total\": " << e.total << "}"
        << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  const std::vector<std::string> gaps = report.uncovered_gaps();
  out << "  \"uncovered_gaps\": [\n";
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    out << "    \"" << json_escape(gaps[i]) << "\"" << (i + 1 < gaps.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"runner_hardening\": [\n";
  for (std::size_t i = 0; i < hardening.size(); ++i) {
    const InternalFmeaRow& r = hardening[i];
    out << "    {\"fault\": \"" << faults::to_string(r.fault) << "\", \"outcome\": \""
        << to_string(r.status.outcome) << "\", \"retries\": " << r.status.retries
        << ", \"error\": \"" << json_escape(r.status.error) << "\"}"
        << (i + 1 < hardening.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  // Telemetry: the registry snapshot includes the per-fault detection
  // latency histogram (internal_fmea.detection_latency_ms) recorded by
  // the campaign runner.
  out << "  \"telemetry\": {\n"
      << "    \"metrics_enabled\": " << (obs::metrics_enabled() ? "true" : "false") << ",\n"
      << "    \"trace_enabled\": " << (obs::trace_enabled() ? "true" : "false") << ",\n"
      << "    \"trace_events\": " << obs::trace_event_count() << ",\n"
      << "    \"metrics\": " << obs::MetricsRegistry::instance().snapshot().to_json(4)
      << "\n  }\n}\n";

  // Atomic write (temp + rename): a bench killed mid-emit must never
  // leave a truncated BENCH_*.json for the drift checker to trip over.
  if (!write_file_atomic(path, out.str())) {
    std::cerr << "warning: cannot write " << path << "\n";
  }
}

}  // namespace

int main() {
  // Metrics on by default so the JSON gets the detection-latency
  // histogram; tracing is opt-in via LCOSC_TRACE=1.
  lcosc::obs::set_metrics_enabled(lcosc::obs::env_flag("LCOSC_METRICS", true));
  lcosc::obs::set_trace_enabled(lcosc::obs::env_flag("LCOSC_TRACE", false));

  std::cout << "=== Internal single-point fault coverage (on-chip FMEA) ===\n\n";

  const InternalFmeaConfig cfg = campaign_config();
  const InternalFmeaReport report = run_internal_fmea_campaign(cfg);

  TablePrinter table({"fault", "expected", "observed", "latency", "safe state",
                      "final code", "outcome"});
  for (const auto& row : report.rows) {
    table.add_values(faults::to_string(row.fault), faults::to_string(row.expected),
                     faults::to_string(row.observed_channel()),
                     row.detection_latency ? si_format(*row.detection_latency, "s")
                                           : std::string("-"),
                     row.safe_state_entered, row.final_code, to_string(row.status.outcome));
  }
  table.print(std::cout);

  std::cout << "\n--- Coverage matrix (cases per observed channel) ---\n";
  TablePrinter matrix_table({"fault kind", "undetected", "missing-osc", "low-amp",
                             "asymmetry", "freq-band", "errors", "total"});
  for (const CoverageEntry& e : report.coverage_matrix()) {
    matrix_table.add_values(faults::to_string(e.kind), e.by_channel[0], e.by_channel[1],
                            e.by_channel[2], e.by_channel[3], e.by_channel[4], e.errors,
                            e.total);
  }
  matrix_table.print(std::cout);

  std::cout << "\nDiagnostic coverage: " << report.detected_count() << "/"
            << report.completed_count() << " completed cases detected ("
            << format_significant(100.0 * report.diagnostic_coverage(), 3) << " %), "
            << report.error_count() << " case errors.\n";

  std::cout << "\n--- Uncovered gaps (completed, no channel fired) ---\n";
  for (const std::string& gap : report.uncovered_gaps()) {
    std::cout << "  - " << gap << "\n";
  }

  // Runner hardening demo: a case that throws at the injection instant
  // and a case whose frozen simulation clock trips the step budget must
  // both produce recorded rows, never abort the campaign.
  std::cout << "\n--- Campaign runner hardening (self-test faults) ---\n";
  InternalFmeaConfig hard_cfg = campaign_config();
  hard_cfg.observe_time = 2e-3;
  hard_cfg.faults = {faults::make_fault(faults::InternalFaultKind::SelfTestThrow),
                     faults::make_fault(faults::InternalFaultKind::SelfTestStall),
                     faults::make_fault(faults::InternalFaultKind::None)};
  const InternalFmeaReport hard = run_internal_fmea_campaign(hard_cfg);
  TablePrinter hard_table({"case", "outcome", "retries", "error"});
  for (const auto& row : hard.rows) {
    hard_table.add_values(faults::to_string(row.fault.kind), to_string(row.status.outcome),
                          row.status.retries,
                          row.status.error.empty() ? std::string("-") : row.status.error);
  }
  hard_table.print(std::cout);

  write_json("BENCH_fault_coverage.json", report, hard.rows);
  if (lcosc::obs::trace_enabled()) {
    lcosc::obs::write_chrome_trace("artifacts/trace_fault_coverage.json");
    std::cout << "\n(trace: artifacts/trace_fault_coverage.json, "
              << lcosc::obs::trace_event_count() << " events)\n";
  }
  std::cout << "\n(machine-readable record: BENCH_fault_coverage.json)\n"
            << "\nShape checks:\n"
            << "  - gm collapse -> missing-oscillation and window-comparator-stuck-high\n"
            << "    -> low-amplitude are detected with the safety reaction engaged;\n"
            << "  - overdrive faults (comparator stuck low, dead rectifier), the frozen\n"
            << "    FSM and the dead watchdog are honest uncovered gaps (the paper's\n"
            << "    channels observe the amplitude, not the supply current);\n"
            << "  - the self-test rows show simulation-error / timeout outcomes with\n"
            << "    the campaign still completing every other case.\n";
  return 0;
}
