// Ablation (Section 5): "to limit losses the driver must be much faster
// than oscillation frequency, which is up to 5 MHz."  Sweep the driver's
// output bandwidth relative to the oscillation frequency: a slow driver
// lags the pins, part of the drive goes reactive, and the regulation loop
// must burn more code (current) for the same amplitude -- until the loop
// runs out of range entirely.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/oscillator_system.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Ablation: driver speed vs oscillation frequency (Section 5) ===\n\n";

  const double f0 = 4.0e6;
  TablePrinter table({"driver BW / f0", "settled code", "amplitude [V]",
                      "supply current", "vs ideal", "faults"});

  double ideal_supply = 0.0;
  struct Case {
    const char* label;
    double bandwidth;
  };
  const Case cases[] = {
      {"ideal", 0.0},   {"8x", 8.0 * f0}, {"4x", 4.0 * f0},
      {"2x", 2.0 * f0}, {"1x", 1.0 * f0}, {"0.5x", 0.5 * f0},
  };
  for (const Case& k : cases) {
    OscillatorSystemConfig cfg;
    cfg.tank = tank::design_tank(f0, 40.0, 3.3_uH);
    cfg.regulation.tick_period = 0.25e-3;
    cfg.driver_bandwidth = k.bandwidth;
    cfg.steps_per_period = 128;  // resolve the driver pole accurately
    cfg.waveform_decimation = 0;
    OscillatorSystem sys(cfg);
    const SimulationResult r = sys.run(30e-3);

    const double supply = r.ticks.back().supply_current;
    if (k.bandwidth == 0.0) ideal_supply = supply;
    std::string faults;
    if (r.final_faults.missing_oscillation) faults += "missing-osc ";
    if (r.final_faults.low_amplitude) faults += "low-amp ";
    if (faults.empty()) faults = "-";
    table.add_values(k.label, r.final_code, format_significant(r.settled_amplitude(), 3),
                     si_format(supply, "A"),
                     ideal_supply > 0.0
                         ? "x" + format_significant(supply / ideal_supply, 3)
                         : "-",
                     faults);
  }
  table.print(std::cout);

  std::cout << "\nShape checks vs the paper:\n"
            << "  - a driver several times faster than f0 behaves like the ideal one\n"
            << "    (the paper's design point);\n"
            << "  - at ~1-2x f0 the phase lag turns drive current reactive: higher\n"
            << "    code and supply current for the same amplitude ('losses');\n"
            << "  - below that the loop saturates or the oscillation fails entirely,\n"
            << "    which is why the mirror/Gm chain is designed for high speed.\n";
  return 0;
}
