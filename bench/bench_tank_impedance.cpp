// Tank characterization by small-signal AC analysis: the impedance curve
// across the LC1-LC2 port, its resonance peak (= Rp, what the driver must
// overcome, Eq. 2) and the bandwidth-derived quality factor -- the
// netlist-level cross-check of the Section 2 arithmetic.
#include <cmath>
#include <iostream>

#include "common/constants.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "spice/ac_solver.h"
#include "spice/sweep.h"
#include "tank/rlc_tank.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::spice;

namespace {

ResonanceSummary characterize(const tank::TankConfig& cfg, TablePrinter* curve_table) {
  Circuit c;
  auto& probe = c.current_source("Iprobe", "lc2", "lc1", 0.0);
  c.capacitor("C1", "lc1", "0", cfg.capacitance1);
  c.capacitor("C2", "lc2", "0", cfg.capacitance2);
  c.inductor("L", "lc1", "mid", cfg.inductance);
  c.resistor("Rs", "mid", "lc2", cfg.series_resistance);
  c.finalize();
  const Vector dc_op(c.unknown_count(), 0.0);

  const tank::RlcTank model(cfg);
  const double f0 = model.resonance_frequency();
  const auto freqs = linspace(f0 * 0.85, f0 * 1.15, 601);
  const auto curve = measure_impedance(c, probe, "lc1", "lc2", dc_op, freqs);
  if (curve_table != nullptr) {
    for (std::size_t i = 0; i < curve.size(); i += 60) {
      curve_table->add_values(format_significant(curve[i].frequency / 1e6, 4),
                              format_significant(std::abs(curve[i].impedance), 4),
                              format_significant(std::arg(curve[i].impedance) * 180.0 / kPi, 3));
    }
  }
  return summarize_resonance(curve);
}

}  // namespace

int main() {
  std::cout << "=== Tank impedance characterization (small-signal AC) ===\n\n";

  const tank::TankConfig mid = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  std::cout << "impedance magnitude/phase across the LC1-LC2 port (Q = 40):\n";
  TablePrinter curve({"f [MHz]", "|Z| [ohm]", "phase [deg]"});
  const ResonanceSummary mid_summary = characterize(mid, &curve);
  curve.print(std::cout);

  std::cout << "\nResonance summaries vs the analytic model (Section 2):\n";
  TablePrinter table({"Q (design)", "f0 model [MHz]", "f0 AC [MHz]", "Rp model [ohm]",
                      "|Z|peak AC [ohm]", "Q from -3dB BW"});
  for (const double q : {5.0, 20.0, 40.0, 100.0}) {
    const tank::TankConfig cfg = tank::design_tank(4.0_MHz, q, 3.3_uH);
    const tank::RlcTank model(cfg);
    const ResonanceSummary s = characterize(cfg, nullptr);
    table.add_values(format_significant(q, 3),
                     format_significant(model.resonance_frequency() / 1e6, 4),
                     format_significant(s.peak_frequency / 1e6, 4),
                     format_significant(model.parallel_resistance(), 4),
                     format_significant(s.peak_magnitude, 4),
                     format_significant(s.quality_factor, 3));
  }
  table.print(std::cout);

  std::cout << "\nShape check: |Z|peak = Rp = 2L/(C Rs) and the bandwidth Q match the\n"
               "series-to-parallel transformation the oscillation condition (Eq. 1)\n"
               "is built on.  (Mid-Q run above peaks at "
            << si_format(mid_summary.peak_magnitude, "Ohm") << ".)\n";
  return 0;
}
