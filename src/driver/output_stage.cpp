#include "driver/output_stage.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lcosc::driver {

using spice::MosfetParams;
using spice::nmos_035um;
using spice::pmos_035um;

std::string to_string(OutputStageTopology topology) {
  switch (topology) {
    case OutputStageTopology::StandardCmos: return "fig10a-standard-cmos";
    case OutputStageTopology::SeriesPmos: return "fig10b-series-pmos";
    case OutputStageTopology::BulkSwitched: return "fig11-bulk-switched";
  }
  return "?";
}

double UnsuppliedSweep::max_abs_current() const {
  double worst = 0.0;
  for (const auto& p : points) worst = std::max(worst, std::abs(p.pin_current));
  return worst;
}

double UnsuppliedSweep::max_abs_current_within(double differential_limit) const {
  double worst = 0.0;
  for (const auto& p : points) {
    if (std::abs(p.differential_voltage) <= differential_limit) {
      worst = std::max(worst, std::abs(p.pin_current));
    }
  }
  return worst;
}

UnsuppliedDriverTestbench::UnsuppliedDriverTestbench(OutputStageTopology topology,
                                                     OutputStageParams params)
    : topology_(topology), params_(params) {
  build();
}

void UnsuppliedDriverTestbench::build_pin_driver(const std::string& pin,
                                                 const std::string& suffix) {
  const MosfetParams out_n = nmos_035um(params_.output_nmos_wl);
  const MosfetParams out_p = pmos_035um(params_.output_pmos_wl);
  const MosfetParams prot_n = nmos_035um(params_.protection_wl);
  const MosfetParams prot_p = pmos_035um(params_.protection_wl);
  const double rg = params_.gate_resistance;

  switch (topology_) {
    case OutputStageTopology::StandardCmos: {
      // Fig. 10a.  Dead pre-driver logic leaks all gates to ground, bulks
      // are hard-wired to the rails: the drain-bulk diode of MP1 plus the
      // (gate-low, hence conducting) PMOS of the opposite pin form the
      // loading path the paper calls out.
      circuit_.mosfet("MP1" + suffix, pin, "ngp" + suffix, "vdd", "vdd", out_p);
      circuit_.mosfet("MN1" + suffix, pin, "ngn" + suffix, "0", "0", out_n);
      circuit_.resistor("Rgp" + suffix, "ngp" + suffix, "0", rg);
      circuit_.resistor("Rgn" + suffix, "ngn" + suffix, "0", rg);
      break;
    }
    case OutputStageTopology::SeriesPmos: {
      // Fig. 10b: PMOS MP1d in series with the pull-down NMOS, bulk tied
      // to the internal node, so the pin can go negative without forward
      // biasing a junction to ground.  The positive Vdd path through MP1
      // remains (the paper's residual limitation), and in normal operation
      // MP1d costs gate drive -- the quoted voltage-range penalty.
      circuit_.mosfet("MP1" + suffix, pin, "ngp" + suffix, "vdd", "vdd", out_p);
      circuit_.mosfet("MP1d" + suffix, pin, "ngd" + suffix, "nx" + suffix, "nx" + suffix,
                      out_p);
      circuit_.mosfet("MN1" + suffix, "nx" + suffix, "ngn" + suffix, "0", "0", out_n);
      circuit_.resistor("Rgp" + suffix, "ngp" + suffix, "0", rg);
      circuit_.resistor("Rgd" + suffix, "ngd" + suffix, "0", rg);
      circuit_.resistor("Rgn" + suffix, "ngn" + suffix, "0", rg);
      break;
    }
    case OutputStageTopology::BulkSwitched: {
      // Fig. 11.  The output NMOS sits in a switched p-well ("nbulk",
      // shared by both pins).  MN5 connects nbulk to the pin and MN3
      // connects the MN1 gate (ng1) to the pin for negative excursions;
      // MP3 lifts the MP1 gate (ng2) to the pin for positive overdrive to
      // cancel the channel path through MP1.
      circuit_.mosfet("MP1" + suffix, pin, "ng2" + suffix, "vdd", "vdd", out_p);
      circuit_.mosfet("MN1" + suffix, pin, "ng1" + suffix, "0", "nbulk", out_n);
      circuit_.mosfet("MP3" + suffix, "ng2" + suffix, "vdd", pin, "vdd", prot_p);
      circuit_.mosfet("MN3" + suffix, "ng1" + suffix, "0", pin, "nbulk", prot_n);
      circuit_.mosfet("MN5" + suffix, "nbulk", "0", pin, "nbulk", prot_n);
      // R1: default PMOS gate pull to Vdd; R2: NMOS gate pull to the
      // (unpowered: 0 V) negative charge pump rail.
      circuit_.resistor("R1" + suffix, "ng2" + suffix, "vdd", rg);
      circuit_.resistor("R2" + suffix, "ng1" + suffix, "0", rg);
      break;
    }
  }
}

void UnsuppliedDriverTestbench::build() {
  // Differential drive across the pins; external network leakage gives the
  // common mode a DC reference.
  v_diff_ = &circuit_.voltage_source("Vdiff", "lc1", "lc2", 0.0);
  circuit_.resistor("Rleak1", "lc1", "0", params_.external_leak);
  circuit_.resistor("Rleak2", "lc2", "0", params_.external_leak);

  // The dead chip's Vdd rail: the rest of the chip (logic, ESD power
  // clamp) presents a resistive load once the rail is lifted by a pin.
  circuit_.resistor("Rrail", "vdd", "0", 2e3);

  build_pin_driver("lc1", "1");
  build_pin_driver("lc2", "2");

  if (topology_ == OutputStageTopology::BulkSwitched) {
    // Shared bulk control: when powered (Vdd above ~2 PMOS Vt) MP7/MP6
    // raise ng6 and MN6 shorts nbulk to ground; unpowered everything is
    // off and the per-pin MN5 devices own nbulk.
    const MosfetParams prot_n = nmos_035um(params_.protection_wl);
    const MosfetParams prot_p = pmos_035um(params_.protection_wl);
    circuit_.mosfet("MP7", "n7", "n7", "vdd", "vdd", prot_p);  // diode-connected
    circuit_.resistor("R7", "n7", "0", 500e3);
    circuit_.mosfet("MP6", "ng6", "n7", "vdd", "vdd", prot_p);
    circuit_.resistor("R6", "ng6", "0", 500e3);
    circuit_.mosfet("MN6", "nbulk", "ng6", "0", "nbulk", prot_n);
    // R3: weak default of the switched well towards ground.
    circuit_.resistor("R3", "nbulk", "0", params_.gate_resistance);
  }
  circuit_.finalize();
}

UnsuppliedSweep UnsuppliedDriverTestbench::sweep(double vd_min, double vd_max,
                                                 std::size_t points) {
  LCOSC_REQUIRE(points >= 2, "sweep needs at least two points");
  // One monotone continuation pass: each point seeds the next, walking the
  // protection devices through their turn-on corners without restarts.
  const std::vector<double> grid = spice::linspace(vd_min, vd_max, points);

  spice::DcOptions options;
  options.max_iterations = 500;

  UnsuppliedSweep result;
  result.topology = topology_;
  result.points.reserve(grid.size());

  const spice::SweepResult swept = dc_sweep(circuit_, *v_diff_, grid, options);
  for (const auto& p : swept.points) {
    UnsuppliedPoint point;
    point.differential_voltage = p.value;
    point.converged = p.converged;
    if (p.converged) {
      // The source branch current flows lc1 -> (source) -> lc2; the chip
      // therefore absorbs -i_branch at the LC1 pin.
      spice::StampContext ctx;
      point.pin_current = -v_diff_->branch_current(p.solution.x, ctx);
      point.v_lc1 = p.solution.voltage(circuit_, "lc1");
      point.v_lc2 = p.solution.voltage(circuit_, "lc2");
      point.v_vdd = p.solution.voltage(circuit_, "vdd");
    }
    result.points.push_back(point);
  }
  return result;
}

PwlTable UnsuppliedDriverTestbench::extract_iv(double vd_min, double vd_max,
                                               std::size_t points) {
  const UnsuppliedSweep swept = sweep(vd_min, vd_max, points);
  std::vector<std::pair<double, double>> table;
  table.reserve(swept.points.size());
  double last_v = -1e300;
  for (const auto& p : swept.points) {
    if (!p.converged) continue;
    if (p.differential_voltage <= last_v) continue;
    table.emplace_back(p.differential_voltage, p.pin_current);
    last_v = p.differential_voltage;
  }
  LCOSC_REQUIRE(table.size() >= 2, "unsupplied I-V extraction produced too few points");
  return PwlTable(std::move(table));
}

}  // namespace lcosc::driver
