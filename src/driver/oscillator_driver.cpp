#include "driver/oscillator_driver.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "numeric/roots.h"

namespace lcosc::driver {

OscillatorDriver::OscillatorDriver(DriverConfig config)
    : config_(config), ideal_dac_(config.unit_current) {
  LCOSC_REQUIRE(config_.gm_per_stage > 0.0, "gm per stage must be positive");
  LCOSC_REQUIRE(config_.unit_current > 0.0, "unit current must be positive");
  LCOSC_REQUIRE(config_.quiescent_current >= 0.0, "quiescent current must be non-negative");
}

void OscillatorDriver::use_mismatched_dac(
    std::shared_ptr<const dac::CurrentLimitationDac> mirror_dac) {
  mirror_dac_ = std::move(mirror_dac);
  law_.reset();
  stage_cache_valid_ = false;
}

void OscillatorDriver::use_control_law(std::shared_ptr<const dac::AmplitudeControlLaw> law) {
  law_ = std::move(law);
  mirror_dac_.reset();
  stage_cache_valid_ = false;
}

void OscillatorDriver::attach_fault_bus(const faults::FaultBus* bus) {
  fault_bus_ = bus;
  ideal_dac_.attach_fault_bus(bus);
  stage_cache_valid_ = false;
}

void OscillatorDriver::set_code(int code) {
  LCOSC_REQUIRE(code >= 0 && code <= kDacCodeMax, "amplitude code out of range 0..127");
  code_ = code;
  stage_cache_valid_ = false;
}

double OscillatorDriver::current_limit() const {
  if (!enabled_) return 0.0;
  if (mirror_dac_) return mirror_dac_->output_current(code_);
  if (law_) return law_->current(code_);
  return ideal_dac_.current(code_);
}

double OscillatorDriver::equivalent_gm() const {
  dac::ControlSignals signals = dac::encode_control(code_);
  double scale = 1.0;
  if (fault_bus_ != nullptr && fault_bus_->active()) {
    signals.osc_e = fault_bus_->apply_stuck(faults::DacBus::OscE, signals.osc_e);
    scale = fault_bus_->gm_scale();
  }
  return scale * config_.gm_per_stage * dac::active_gm_stages(signals.osc_e);
}

void OscillatorDriver::refresh_stage_cache(std::uint64_t revision) const {
  stage_cache_ = GmStage({.gm = equivalent_gm(), .current_limit = current_limit(),
                          .shape = config_.shape});
  stage_cache_revision_ = revision;
  stage_cache_valid_ = true;
}

GmStage OscillatorDriver::differential_port_stage() const {
  // Differential port view: i_port = clamp((Gm/2) * vd, +-Im), because a
  // stage with transconductance Gm sensing a single-ended pin sees only
  // half the differential swing.
  return GmStage({.gm = 0.5 * equivalent_gm(), .current_limit = current_limit(),
                  .shape = config_.shape});
}

double OscillatorDriver::fundamental_port_current(double amplitude) const {
  if (!enabled_) return 0.0;
  GmStage port = differential_port_stage();
  return port.fundamental_current(amplitude);
}

std::optional<double> OscillatorDriver::predicted_amplitude(const tank::RlcTank& tank) const {
  if (!enabled_) return std::nullopt;
  const double rp = tank.parallel_resistance();
  const double gm_port = 0.5 * equivalent_gm();
  if (gm_port * rp <= 1.0) return std::nullopt;  // below the oscillation condition
  const double im = current_limit();
  if (im <= 0.0) return std::nullopt;

  // Steady state: fundamental port current balances tank loss current.
  const double a_hi = 1.5 * kDriverShapeFactorSquare * im * rp;
  const auto balance = [&](double a) { return fundamental_port_current(a) - a / rp; };
  if (balance(a_hi) >= 0.0) return a_hi;  // numerically flat; should not happen
  return bisect_root(balance, 1e-9, a_hi, {.x_tolerance = 1e-9, .f_tolerance = 0.0});
}

double OscillatorDriver::supply_current(double amplitude) const {
  LCOSC_REQUIRE(amplitude >= 0.0, "amplitude must be non-negative");
  if (!enabled_) return 0.0;
  // One conduction path per half cycle: Vdd -> top mirror -> LC1 -> tank
  // -> LC2 -> bottom mirror -> ground, so the supply sees the average
  // rectified port current plus the bias.
  GmStage port = differential_port_stage();
  return config_.quiescent_current + average_rectified_port_current(port, amplitude);
}

double average_rectified_port_current(const GmStage& port, double amplitude) {
  constexpr int kPoints = 256;
  double acc = 0.0;
  for (int i = 0; i < kPoints; ++i) {
    const double theta = (i + 0.5) * (0.5 * kPi) / kPoints;
    acc += port.output_current(amplitude * std::sin(theta));
  }
  return acc * (2.0 / kPi) * (0.5 * kPi / kPoints);
}

}  // namespace lcosc::driver
