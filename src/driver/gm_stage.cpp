#include "driver/gm_stage.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace lcosc::driver {

GmStage::GmStage(GmStageConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.gm > 0.0, "gm must be positive");
  LCOSC_REQUIRE(config_.current_limit >= 0.0, "current limit must be non-negative");
}

void GmStage::set_current_limit(double limit) {
  LCOSC_REQUIRE(limit >= 0.0, "current limit must be non-negative");
  config_.current_limit = limit;
}

void GmStage::set_gm(double gm) {
  LCOSC_REQUIRE(gm > 0.0, "gm must be positive");
  config_.gm = gm;
}

double GmStage::saturation_voltage() const { return config_.current_limit / config_.gm; }

double GmStage::describing_gain(double amplitude) const {
  LCOSC_REQUIRE(amplitude >= 0.0, "amplitude must be non-negative");
  if (amplitude == 0.0) return config_.gm;
  if (config_.current_limit == 0.0) return 0.0;

  if (config_.shape == LimitShape::Hard) {
    const double vs = saturation_voltage();
    if (amplitude <= vs) return config_.gm;
    // Classic saturating-amplifier describing function.
    const double r = vs / amplitude;
    return config_.gm * (2.0 / kPi) * (std::asin(r) + r * std::sqrt(1.0 - r * r));
  }

  // Numeric Fourier projection over one quarter period (odd symmetric).
  constexpr int kPoints = 512;
  double acc = 0.0;
  for (int i = 0; i < kPoints; ++i) {
    const double theta = (i + 0.5) * (0.5 * kPi) / kPoints;
    const double s = std::sin(theta);
    acc += output_current(amplitude * s) * s;
  }
  // N(A) = (4 / (pi * A)) * integral_0^{pi/2} f(A sin) sin dtheta * 2
  const double fundamental = acc * (0.5 * kPi / kPoints) * (4.0 / kPi);
  return fundamental / amplitude;
}

double GmStage::fundamental_current(double amplitude) const {
  return describing_gain(amplitude) * amplitude;
}

double GmStage::shape_factor(double amplitude) const {
  LCOSC_REQUIRE(config_.current_limit > 0.0, "shape factor needs a nonzero limit");
  return fundamental_current(amplitude) / config_.current_limit;
}

}  // namespace lcosc::driver
