// The oscillator driver macro-model: two cross-coupled current-limited Gm
// stages (paper Fig. 1) whose current limit is set by the amplitude code
// through the current limitation DAC (Figs. 5-7, Table 1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

#include "dac/current_mirror.h"
#include "dac/dac_variants.h"
#include "driver/gm_stage.h"
#include "faults/fault_bus.h"
#include "tank/rlc_tank.h"

namespace lcosc::driver {

struct DriverConfig {
  // Transconductance of one unit Gm output stage.  Table 1 activates
  // 1..9 units, so the equivalent transconductance spans ~1.1..10 mS,
  // matching the paper's "up to around 10 mS".
  double gm_per_stage = 1.1e-3;
  LimitShape shape = LimitShape::Hard;
  double unit_current = kDacUnitCurrent;  // 12.5 uA LSB (Fig. 13)
  // Quiescent (bias) supply current of the driver and support blocks.
  double quiescent_current = 150e-6;
  // Output compliance: pin deviation from Vref at which the output stage
  // runs out of headroom (mirror devices leave saturation near the rail),
  // and the width of the soft roll-off.  Vref sits at mid supply, so the
  // rail is ~2.5 V away; the mirrors need a couple hundred mV.
  double rail_headroom = 2.3;
  double compliance_width = 0.2;
};

// Currents injected by the driver into the two LC pins (voltages are
// relative to the Vref mid-supply operating point).
struct NodeCurrents {
  double into_lc1 = 0.0;
  double into_lc2 = 0.0;
};

class OscillatorDriver {
 public:
  explicit OscillatorDriver(DriverConfig config = {});

  // Use a mismatched current limitation DAC instead of the ideal PWL law.
  void use_mismatched_dac(std::shared_ptr<const dac::CurrentLimitationDac> mirror_dac);

  // Use an alternative control law (ablation studies).
  void use_control_law(std::shared_ptr<const dac::AmplitudeControlLaw> law);

  // Observe an internal-fault bus (nullptr detaches): stuck DAC control
  // lines and dead segments reshape the ideal-DAC current limit, stuck
  // OscE lines change the active Gm stage count, and a gm-collapse fault
  // scales the transconductance.
  void attach_fault_bus(const faults::FaultBus* bus);

  // Amplitude regulation code (0..127).
  void set_code(int code);
  [[nodiscard]] int code() const { return code_; }

  // Enable/disable the driver output stages (startup, safe state).
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    stage_cache_valid_ = false;
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Current limit selected by the present code [A].
  [[nodiscard]] double current_limit() const;

  // Equivalent transconductance of one driver at the present code
  // (unit gm times the number of active Gm stages from Table 1).
  [[nodiscard]] double equivalent_gm() const;

  // Cross-coupled static output: i(LC1) = f(-v2), i(LC2) = f(-v1).
  //
  // Hot path: the behavioral RK4 loop evaluates this four times per step
  // for tens of millions of steps, so the effective GmStage parameters
  // (DAC decode, fault-bus hooks) are cached and only recomputed when a
  // setter runs or the attached fault bus changes revision.  The cached
  // parameters are the exact values equivalent_gm()/current_limit()
  // return, so results are bit-identical to the uncached evaluation.
  // Defined inline so the system's derivative evaluation can absorb it.
  [[nodiscard]] NodeCurrents output(double v1, double v2) const {
    if (!enabled_) return {};
    const GmStage& st = stage();
    // Output compliance: a stage pushing current outward loses headroom as
    // the pin approaches its rail (the mirror devices drop out of
    // saturation); pulling back towards Vref is unaffected.
    const auto comply = [&](double i, double v) {
      const double w = config_.compliance_width;
      // Fast path: a pin at least one transition width away from both
      // rails has both clamp arguments >= 1, so the factor is exactly 1.0
      // and i * 1.0 == i bit-for-bit -- skip the division.  (NaN inputs
      // fail both comparisons and fall through to the exact slow path.)
      if (v <= config_.rail_headroom - w && v >= w - config_.rail_headroom) return i;
      if (i > 0.0) {
        return i * std::clamp((config_.rail_headroom - v) / w, 0.0, 1.0);
      }
      return i * std::clamp((v + config_.rail_headroom) / w, 0.0, 1.0);
    };
    // Cross-coupled inverting stages referenced to Vref (v are deviations
    // from Vref): each stage senses the opposite pin.
    return {.into_lc1 = comply(st.output_current(-v2), v1),
            .into_lc2 = comply(st.output_current(-v1), v2)};
  }

  // Fundamental drive current delivered into the differential port for a
  // differential oscillation amplitude A (describing-function view; feeds
  // the envelope simulator).
  [[nodiscard]] double fundamental_port_current(double amplitude) const;

  // Steady-state amplitude prediction on a tank (Eq. 4): solves
  // I_fund(A) = A / Rp.  Returns nullopt if oscillation cannot sustain.
  [[nodiscard]] std::optional<double> predicted_amplitude(const tank::RlcTank& tank) const;

  // Estimated average supply current at differential amplitude A:
  // quiescent plus the average rectified stage output currents.
  [[nodiscard]] double supply_current(double amplitude) const;

  // The effective differential-port stage at the present code: half the
  // equivalent transconductance with the DAC current limit -- exactly the
  // stage fundamental_port_current() and supply_current() construct per
  // call.  The batched envelope engine caches this per lane (refreshing
  // on code changes), so the cached stage equals the serial per-call
  // construction bit for bit.
  [[nodiscard]] GmStage differential_port_stage() const;

  [[nodiscard]] const DriverConfig& config() const { return config_; }

 private:
  // Cached effective stage for output(); revalidated against the setters
  // and the fault-bus revision (see output() above).
  [[nodiscard]] const GmStage& stage() const {
    const std::uint64_t rev = fault_bus_ != nullptr ? fault_bus_->revision() : 0;
    if (!stage_cache_valid_ || rev != stage_cache_revision_) refresh_stage_cache(rev);
    return stage_cache_;
  }
  void refresh_stage_cache(std::uint64_t revision) const;

  DriverConfig config_;
  int code_ = 0;
  bool enabled_ = true;
  std::shared_ptr<const dac::CurrentLimitationDac> mirror_dac_;
  std::shared_ptr<const dac::AmplitudeControlLaw> law_;
  dac::PwlExponentialDac ideal_dac_;
  const faults::FaultBus* fault_bus_ = nullptr;

  mutable GmStage stage_cache_{GmStageConfig{}};
  mutable bool stage_cache_valid_ = false;
  mutable std::uint64_t stage_cache_revision_ = 0;
};

// Average rectified output current of `port` over a half oscillation
// cycle at differential amplitude A -- the quadrature inside
// OscillatorDriver::supply_current(), exposed so the batched envelope
// engine computes bit-identical supply figures from its cached port.
[[nodiscard]] double average_rectified_port_current(const GmStage& port, double amplitude);

}  // namespace lcosc::driver
