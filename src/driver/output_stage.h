// Output driver topologies of paper Section 8 (Figs. 10-11) and the
// floating-supply DC testbench that regenerates Figs. 17 and 18.
//
// The testbench builds the unsupplied chip as a transistor-level spice
// netlist: both LC pin drivers, the (floating) Vdd rail, the bulk/gate
// protection network of Fig. 11, and a differential source across the
// LC1-LC2 pins with the common mode softly referenced to ground through
// the external network's leakage.
#pragma once

#include <string>
#include <vector>

#include "numeric/interpolate.h"
#include "spice/circuit.h"
#include "spice/sweep.h"

namespace lcosc::driver {

enum class OutputStageTopology {
  StandardCmos,  // Fig. 10a: plain inverter, bulks hard-wired to the rails
  SeriesPmos,    // Fig. 10b: extra series PMOS blocks the Vdd diode path
  BulkSwitched,  // Fig. 11: switched NMOS bulk (Nbulk), MN3/MN5 gate pulls,
                 //          MP3 gate-cancel of the MP1 channel path
};

[[nodiscard]] std::string to_string(OutputStageTopology topology);

struct OutputStageParams {
  // W/L of the output devices (big, they carry up to ~25 mA).
  double output_nmos_wl = 400.0;
  double output_pmos_wl = 1000.0;
  // W/L of the small protection devices (MN3, MN5, MP3, MP6, MN6).
  double protection_wl = 10.0;
  // Gate/bulk network resistors R1-R3 [ohm].
  double gate_resistance = 200e3;
  // External DC leakage from each pin to ground (sensor network) [ohm].
  double external_leak = 1e6;
  // Nominal supply for the *powered* checks [V].
  double vdd = 5.0;
};

// One point of the Fig. 17/18 sweep.
struct UnsuppliedPoint {
  double differential_voltage = 0.0;  // V(LC1) - V(LC2) forced by the source
  double pin_current = 0.0;           // current into the LC1 pin [A]
  double v_lc1 = 0.0;
  double v_lc2 = 0.0;
  double v_vdd = 0.0;                 // the floating supply rail
  bool converged = false;
};

struct UnsuppliedSweep {
  OutputStageTopology topology{};
  std::vector<UnsuppliedPoint> points;
  [[nodiscard]] double max_abs_current() const;
  // Worst |pin current| for |vd| <= limit (the paper checks 2.7 Vpp).
  [[nodiscard]] double max_abs_current_within(double differential_limit) const;
};

// Testbench owning the netlist for one topology.
class UnsuppliedDriverTestbench {
 public:
  explicit UnsuppliedDriverTestbench(OutputStageTopology topology,
                                     OutputStageParams params = {});

  // Sweep the differential drive; uses DC continuation point to point.
  [[nodiscard]] UnsuppliedSweep sweep(double vd_min, double vd_max, std::size_t points);

  // Extract the differential I-V characteristic as a PWL table usable as a
  // nonlinear load in the dual-system behavioral model.
  [[nodiscard]] PwlTable extract_iv(double vd_min, double vd_max, std::size_t points);

  [[nodiscard]] OutputStageTopology topology() const { return topology_; }
  [[nodiscard]] spice::Circuit& circuit() { return circuit_; }

 private:
  void build();
  void build_pin_driver(const std::string& pin, const std::string& suffix);

  OutputStageTopology topology_;
  OutputStageParams params_;
  spice::Circuit circuit_;
  spice::VoltageSource* v_diff_ = nullptr;  // the swept differential source
};

}  // namespace lcosc::driver
