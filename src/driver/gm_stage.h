// Current-limited transconductance stage: the nonlinearity that regulates
// the oscillation amplitude (paper Fig. 2 and Section 2).
#pragma once

#include <algorithm>
#include <cmath>

namespace lcosc::driver {

// Shape of the limiting V-I characteristic.
enum class LimitShape {
  Hard,  // linear with hard clipping (the paper's Fig. 2 approximation)
  Tanh,  // smooth saturation (closer to a real differential pair)
};

struct GmStageConfig {
  double gm = 1e-3;             // small-signal transconductance [S]
  double current_limit = 1e-3;  // +-Im [A]
  LimitShape shape = LimitShape::Hard;
};

class GmStage {
 public:
  explicit GmStage(GmStageConfig config);

  [[nodiscard]] const GmStageConfig& config() const { return config_; }
  void set_current_limit(double limit);
  void set_gm(double gm);

  // Static output current for input voltage v (Fig. 2).  Inline: this is
  // the innermost call of the RK4 system loop (four derivative
  // evaluations per step, two stages each).
  [[nodiscard]] double output_current(double v) const {
    const double im = config_.current_limit;
    switch (config_.shape) {
      case LimitShape::Hard:
        return std::clamp(config_.gm * v, -im, im);
      case LimitShape::Tanh:
        return im > 0.0 ? im * std::tanh(config_.gm * v / im) : 0.0;
    }
    return 0.0;
  }

  // Input voltage at which limiting starts (Hard shape): Im / gm.
  [[nodiscard]] double saturation_voltage() const;

  // Describing function N(A): ratio of the fundamental output current to a
  // sinusoidal input of amplitude A.  Closed form for Hard, numeric
  // quadrature for Tanh.  N(0+) = gm; N(inf) -> 4*Im/(pi*A).
  [[nodiscard]] double describing_gain(double amplitude) const;

  // Fundamental output current amplitude for sine input of amplitude A.
  [[nodiscard]] double fundamental_current(double amplitude) const;

  // The paper's k factor: fundamental current / current limit at input
  // amplitude A (approaches 4/pi deep in limiting; ~0.9 near moderate
  // overdrive, matching the paper's quoted value for the linear shape).
  [[nodiscard]] double shape_factor(double amplitude) const;

 private:
  GmStageConfig config_;
};

}  // namespace lcosc::driver
