#include "waveform/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/atomic_file.h"
#include "common/error.h"

namespace lcosc {
namespace {

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 50;

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                          "#9467bd", "#8c564b", "#17becf"};

// Round a span endpoint to a "nice" number for axis labels.
double nice_number(double x, bool round_up) {
  if (x == 0.0) return 0.0;
  const double exp10 = std::floor(std::log10(std::abs(x)));
  const double f = std::abs(x) / std::pow(10.0, exp10);
  double nf = 0.0;
  if (round_up) {
    nf = f <= 1.0 ? 1.0 : f <= 2.0 ? 2.0 : f <= 5.0 ? 5.0 : 10.0;
  } else {
    nf = f < 1.5 ? 1.0 : f < 3.0 ? 2.0 : f < 7.0 ? 5.0 : 10.0;
  }
  return std::copysign(nf * std::pow(10.0, exp10), x);
}

std::string format_tick(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

std::string escape_xml(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

SvgSeries SvgSeries::from_trace(const Trace& trace, std::string label) {
  SvgSeries s;
  s.label = label.empty() ? trace.name() : std::move(label);
  s.points.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    s.points.emplace_back(trace.time(i), trace.value(i));
  }
  return s;
}

std::string render_svg_plot(const std::vector<SvgSeries>& series,
                            const SvgPlotOptions& options) {
  LCOSC_REQUIRE(!series.empty(), "SVG plot needs at least one series");

  // Data extents.
  double x_min = 1e300, x_max = -1e300, y_min = 1e300, y_max = -1e300;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (options.log_y && y <= 0.0) continue;
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      const double yv = options.log_y ? std::log10(y) : y;
      y_min = std::min(y_min, yv);
      y_max = std::max(y_max, yv);
    }
  }
  LCOSC_REQUIRE(x_min <= x_max && y_min <= y_max, "SVG plot has no drawable points");
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) {
    y_max += 0.5;
    y_min -= 0.5;
  }
  if (!options.log_y) {
    y_min = nice_number(y_min, false) == y_min ? y_min : y_min - 0.05 * (y_max - y_min);
    y_max = y_max + 0.05 * (y_max - y_min);
  }

  const double plot_w = options.width - kMarginLeft - kMarginRight;
  const double plot_h = options.height - kMarginTop - kMarginBottom;
  auto px = [&](double x) {
    return kMarginLeft + (x - x_min) / (x_max - x_min) * plot_w;
  };
  auto py = [&](double y) {
    const double yv = options.log_y ? std::log10(y) : y;
    return kMarginTop + (1.0 - (yv - y_min) / (y_max - y_min)) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << options.width << "' height='"
      << options.height << "' viewBox='0 0 " << options.width << ' ' << options.height
      << "'>\n";
  svg << "<rect width='100%' height='100%' fill='white'/>\n";
  svg << "<text x='" << options.width / 2 << "' y='24' text-anchor='middle' "
      << "font-family='sans-serif' font-size='16'>" << escape_xml(options.title)
      << "</text>\n";

  // Axes box.
  svg << "<rect x='" << kMarginLeft << "' y='" << kMarginTop << "' width='" << plot_w
      << "' height='" << plot_h << "' fill='none' stroke='#444'/>\n";

  // Grid and ticks: 6 divisions on each axis.
  for (int i = 0; i <= 6; ++i) {
    const double fx = x_min + (x_max - x_min) * i / 6.0;
    const double gx = px(fx);
    svg << "<line x1='" << gx << "' y1='" << kMarginTop << "' x2='" << gx << "' y2='"
        << kMarginTop + plot_h << "' stroke='#ddd'/>\n";
    svg << "<text x='" << gx << "' y='" << kMarginTop + plot_h + 18
        << "' text-anchor='middle' font-family='sans-serif' font-size='11'>"
        << format_tick(fx) << "</text>\n";

    const double fy = y_min + (y_max - y_min) * i / 6.0;
    const double gy = kMarginTop + (1.0 - static_cast<double>(i) / 6.0) * plot_h;
    svg << "<line x1='" << kMarginLeft << "' y1='" << gy << "' x2='" << kMarginLeft + plot_w
        << "' y2='" << gy << "' stroke='#ddd'/>\n";
    const double label = options.log_y ? std::pow(10.0, fy) : fy;
    svg << "<text x='" << kMarginLeft - 6 << "' y='" << gy + 4
        << "' text-anchor='end' font-family='sans-serif' font-size='11'>"
        << format_tick(label) << "</text>\n";
  }

  // Axis labels.
  svg << "<text x='" << kMarginLeft + plot_w / 2 << "' y='" << options.height - 10
      << "' text-anchor='middle' font-family='sans-serif' font-size='13'>"
      << escape_xml(options.x_label) << "</text>\n";
  svg << "<text x='16' y='" << kMarginTop + plot_h / 2
      << "' text-anchor='middle' font-family='sans-serif' font-size='13' "
      << "transform='rotate(-90 16 " << kMarginTop + plot_h / 2 << ")'>"
      << escape_xml(options.y_label) << "</text>\n";

  // Series.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char* color = kPalette[si % (sizeof(kPalette) / sizeof(kPalette[0]))];
    std::ostringstream path;
    bool pen_down = false;
    for (const auto& [x, y] : series[si].points) {
      if (options.log_y && y <= 0.0) {
        pen_down = false;  // break the line at non-plottable points
        continue;
      }
      path << (pen_down ? 'L' : 'M') << px(x) << ' ' << py(y) << ' ';
      pen_down = true;
    }
    svg << "<path d='" << path.str() << "' fill='none' stroke='" << color
        << "' stroke-width='1.6'/>\n";
    if (options.markers) {
      for (const auto& [x, y] : series[si].points) {
        if (options.log_y && y <= 0.0) continue;
        svg << "<circle cx='" << px(x) << "' cy='" << py(y) << "' r='2.4' fill='" << color
            << "'/>\n";
      }
    }
    // Legend entry.
    const int ly = kMarginTop + 14 + static_cast<int>(si) * 16;
    svg << "<line x1='" << kMarginLeft + plot_w - 120 << "' y1='" << ly << "' x2='"
        << kMarginLeft + plot_w - 100 << "' y2='" << ly << "' stroke='" << color
        << "' stroke-width='2'/>\n";
    svg << "<text x='" << kMarginLeft + plot_w - 94 << "' y='" << ly + 4
        << "' font-family='sans-serif' font-size='11'>" << escape_xml(series[si].label)
        << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_svg_plot(const std::string& path, const std::vector<SvgSeries>& series,
                    const SvgPlotOptions& options) {
  if (!write_file_atomic(path, render_svg_plot(series, options))) {
    throw Error("cannot open SVG file for writing: " + path);
  }
}

}  // namespace lcosc
