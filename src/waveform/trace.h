// Time-series container produced by the transient engines.
//
// A Trace is a non-uniformly sampled scalar signal (time, value) with
// strictly increasing time stamps; the measurement routines in
// measurements.h all consume Traces.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace lcosc {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Append a sample; time must be strictly greater than the previous
  // sample's (throws ConfigError otherwise).
  void append(double time, double value);

  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] std::size_t size() const { return times_.size(); }

  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] double time(std::size_t i) const { return times_[i]; }
  [[nodiscard]] double value(std::size_t i) const { return values_[i]; }

  [[nodiscard]] double start_time() const;
  [[nodiscard]] double end_time() const;
  [[nodiscard]] double duration() const;

  // Linear interpolation at an arbitrary time inside [start, end]
  // (clamped outside).
  [[nodiscard]] double sample_at(double time) const;

  // Sub-trace restricted to [t0, t1] (samples inside the window).
  [[nodiscard]] Trace window(double t0, double t1) const;

  // Reduce memory: keep every n-th sample (n >= 1), always keeping the
  // last sample.
  [[nodiscard]] Trace decimated(std::size_t n) const;

  void clear();
  void reserve(std::size_t n);

 private:
  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace lcosc
