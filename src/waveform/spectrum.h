// Harmonic spectrum analysis -- the EMC view of the driver currents.
//
// The paper's abstract claims "low EMC emissions"; the mechanism is that
// the driver only replaces tank losses with a limited current while the
// high-Q tank filters the harmonics, so the coil current (what actually
// radiates) is nearly sinusoidal even though the driver current clips.
// These helpers quantify that: per-harmonic amplitudes and dBc levels of
// any trace, by direct Fourier projection over whole periods.
#pragma once

#include <vector>

#include "waveform/trace.h"

namespace lcosc {

struct SpectrumLine {
  int harmonic = 0;        // 1 = fundamental
  double frequency = 0.0;  // [Hz]
  double amplitude = 0.0;  // peak amplitude of the component
  double dbc = 0.0;        // level relative to the fundamental [dB]
};

// Amplitudes of harmonics 1..max_harmonic of a (near-)periodic trace.
[[nodiscard]] std::vector<SpectrumLine> harmonic_spectrum(const Trace& trace,
                                                          double fundamental_hz,
                                                          int max_harmonic = 9);

// Worst (largest) harmonic level above the fundamental, in dBc; returns
// -inf-like -400 dB when all harmonics vanish.
[[nodiscard]] double worst_harmonic_dbc(const std::vector<SpectrumLine>& spectrum);

// Total harmonic power ratio: sum of squared harmonic amplitudes over the
// squared fundamental (THD^2).
[[nodiscard]] double harmonic_power_ratio(const std::vector<SpectrumLine>& spectrum);

}  // namespace lcosc
