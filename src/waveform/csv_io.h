// CSV export of traces so figure data can be plotted externally.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "waveform/trace.h"

namespace lcosc {

// Write one trace as two columns (time,value) with a header line.
void write_trace_csv(std::ostream& os, const Trace& trace);

// Write multiple traces resampled onto the union of time stamps; missing
// values are linearly interpolated (clamped at the ends).
void write_traces_csv(std::ostream& os, const std::vector<Trace>& traces);

// Convenience: write to a file path, throwing lcosc::Error on I/O failure.
void write_trace_csv_file(const std::string& path, const Trace& trace);
void write_traces_csv_file(const std::string& path, const std::vector<Trace>& traces);

}  // namespace lcosc
