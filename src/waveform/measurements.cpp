#include "waveform/measurements.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace lcosc {

double peak_amplitude(const Trace& trace) {
  LCOSC_REQUIRE(!trace.empty(), "trace is empty");
  double peak = 0.0;
  for (const double v : trace.values()) peak = std::max(peak, std::abs(v));
  return peak;
}

double peak_amplitude_tail(const Trace& trace, double tail_duration) {
  LCOSC_REQUIRE(!trace.empty(), "trace is empty");
  const double t0 = trace.end_time() - tail_duration;
  double peak = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.time(i) >= t0) peak = std::max(peak, std::abs(trace.value(i)));
  }
  return peak;
}

double peak_to_peak(const Trace& trace) {
  LCOSC_REQUIRE(!trace.empty(), "trace is empty");
  const auto [lo, hi] = std::minmax_element(trace.values().begin(), trace.values().end());
  return *hi - *lo;
}

double rms(const Trace& trace) {
  LCOSC_REQUIRE(trace.size() >= 2, "rms needs at least two samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace.time(i) - trace.time(i - 1);
    const double v0 = trace.value(i - 1);
    const double v1 = trace.value(i);
    acc += 0.5 * dt * (v0 * v0 + v1 * v1);
  }
  return std::sqrt(acc / trace.duration());
}

double mean(const Trace& trace) {
  LCOSC_REQUIRE(trace.size() >= 2, "mean needs at least two samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace.time(i) - trace.time(i - 1);
    acc += 0.5 * dt * (trace.value(i - 1) + trace.value(i));
  }
  return acc / trace.duration();
}

std::vector<double> rising_crossings(const Trace& trace, double level) {
  std::vector<double> crossings;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double v0 = trace.value(i - 1) - level;
    const double v1 = trace.value(i) - level;
    if (v0 < 0.0 && v1 >= 0.0) {
      const double f = v0 / (v0 - v1);
      crossings.push_back(trace.time(i - 1) + f * (trace.time(i) - trace.time(i - 1)));
    }
  }
  return crossings;
}

std::optional<double> estimate_frequency(const Trace& trace, double level) {
  const auto crossings = rising_crossings(trace, level);
  if (crossings.size() < 2) return std::nullopt;
  const double span = crossings.back() - crossings.front();
  if (span <= 0.0) return std::nullopt;
  return static_cast<double>(crossings.size() - 1) / span;
}

std::optional<double> estimate_frequency_tail(const Trace& trace, double tail_duration,
                                              double level) {
  if (trace.empty()) return std::nullopt;
  const Trace tail = trace.window(trace.end_time() - tail_duration, trace.end_time());
  return estimate_frequency(tail, level);
}

Trace extract_envelope(const Trace& trace, double level) {
  Trace envelope(trace.name() + ".env");
  double current_peak = 0.0;
  double peak_time = 0.0;
  bool have_sample = false;
  bool last_above = false;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const bool above = trace.value(i) >= level;
    const double magnitude = std::abs(trace.value(i) - level);
    if (i == 0) {
      last_above = above;
    }
    if (above != last_above && have_sample) {
      // Half cycle finished: record its peak.
      envelope.append(peak_time, current_peak);
      current_peak = 0.0;
      have_sample = false;
      last_above = above;
    }
    if (magnitude >= current_peak) {
      current_peak = magnitude;
      peak_time = trace.time(i);
      have_sample = true;
    }
  }
  if (have_sample && (envelope.empty() || peak_time > envelope.end_time())) {
    envelope.append(peak_time, current_peak);
  }
  return envelope;
}

std::optional<double> settling_time(const Trace& trace, double target, double tolerance) {
  LCOSC_REQUIRE(!trace.empty(), "trace is empty");
  // Scan backwards for the last sample outside the band.
  std::size_t last_outside = trace.size();  // sentinel: all inside
  for (std::size_t i = trace.size(); i-- > 0;) {
    if (std::abs(trace.value(i) - target) > tolerance) {
      last_outside = i;
      break;
    }
  }
  if (last_outside == trace.size()) return trace.start_time();
  if (last_outside + 1 >= trace.size()) return std::nullopt;  // still outside at the end
  return trace.time(last_outside + 1);
}

namespace {

// Fourier coefficient magnitude at `frequency_hz` over an integer number of
// periods (truncated from the trace end).
double fourier_component(const Trace& trace, double frequency_hz) {
  const double period = 1.0 / frequency_hz;
  const double whole = std::floor(trace.duration() / period) * period;
  if (whole <= 0.0) return 0.0;
  const double t_begin = trace.end_time() - whole;

  std::size_t first = 0;
  while (first < trace.size() && trace.time(first) < t_begin) ++first;
  if (first == trace.size()) return 0.0;

  double re = 0.0;
  double im = 0.0;
  double prev_t = 0.0;
  double prev_re = 0.0;
  double prev_im = 0.0;
  bool primed = false;
  if (first > 0 && trace.time(first) > t_begin) {
    // The window boundary falls between two samples: interpolate the
    // value at t_begin so the partial trapezoid is integrated instead of
    // dropped (dropping it biases magnitudes low on coarse traces).
    const double t0 = trace.time(first - 1);
    const double t1 = trace.time(first);
    const double frac = (t_begin - t0) / (t1 - t0);
    const double v = trace.value(first - 1) + frac * (trace.value(first) - trace.value(first - 1));
    const double w = kTwoPi * frequency_hz * t_begin;
    prev_t = t_begin;
    prev_re = v * std::cos(w);
    prev_im = v * std::sin(w);
    primed = true;
  }
  for (std::size_t i = first; i < trace.size(); ++i) {
    const double t = trace.time(i);
    const double w = kTwoPi * frequency_hz * t;
    const double vre = trace.value(i) * std::cos(w);
    const double vim = trace.value(i) * std::sin(w);
    if (primed) {
      const double dt = t - prev_t;
      re += 0.5 * dt * (prev_re + vre);
      im += 0.5 * dt * (prev_im + vim);
    }
    prev_t = t;
    prev_re = vre;
    prev_im = vim;
    primed = true;
  }
  // Amplitude of the component: 2/T * |integral|.
  return 2.0 / whole * std::hypot(re, im);
}

}  // namespace

double fourier_magnitude(const Trace& trace, double frequency_hz) {
  LCOSC_REQUIRE(frequency_hz > 0.0, "frequency must be positive");
  return fourier_component(trace, frequency_hz);
}

double total_harmonic_distortion(const Trace& trace, double fundamental_hz, int max_harmonic) {
  LCOSC_REQUIRE(max_harmonic >= 2, "need at least the 2nd harmonic");
  const double fundamental = fourier_component(trace, fundamental_hz);
  if (fundamental <= 0.0) return 0.0;
  double harmonics_sq = 0.0;
  for (int h = 2; h <= max_harmonic; ++h) {
    const double mag = fourier_component(trace, fundamental_hz * h);
    harmonics_sq += mag * mag;
  }
  return std::sqrt(harmonics_sq) / fundamental;
}

}  // namespace lcosc
