#include "waveform/spectrum.h"

#include <cmath>

#include "common/error.h"
#include "waveform/measurements.h"

namespace lcosc {

std::vector<SpectrumLine> harmonic_spectrum(const Trace& trace, double fundamental_hz,
                                            int max_harmonic) {
  LCOSC_REQUIRE(fundamental_hz > 0.0, "fundamental must be positive");
  LCOSC_REQUIRE(max_harmonic >= 1, "need at least the fundamental");

  std::vector<SpectrumLine> spectrum;
  spectrum.reserve(static_cast<std::size_t>(max_harmonic));
  const double fundamental = fourier_magnitude(trace, fundamental_hz);
  for (int h = 1; h <= max_harmonic; ++h) {
    SpectrumLine line;
    line.harmonic = h;
    line.frequency = fundamental_hz * h;
    line.amplitude = (h == 1) ? fundamental : fourier_magnitude(trace, line.frequency);
    line.dbc = (fundamental > 0.0 && line.amplitude > 0.0)
                   ? 20.0 * std::log10(line.amplitude / fundamental)
                   : -400.0;
    spectrum.push_back(line);
  }
  return spectrum;
}

double worst_harmonic_dbc(const std::vector<SpectrumLine>& spectrum) {
  double worst = -400.0;
  for (const auto& line : spectrum) {
    if (line.harmonic >= 2) worst = std::max(worst, line.dbc);
  }
  return worst;
}

double harmonic_power_ratio(const std::vector<SpectrumLine>& spectrum) {
  double fundamental = 0.0;
  double harmonics = 0.0;
  for (const auto& line : spectrum) {
    if (line.harmonic == 1) fundamental = line.amplitude;
    else harmonics += line.amplitude * line.amplitude;
  }
  return fundamental > 0.0 ? harmonics / (fundamental * fundamental) : 0.0;
}

}  // namespace lcosc
