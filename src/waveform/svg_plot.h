// Dependency-free SVG line plots, so the figure benches can emit actual
// plot files (artifacts/figXX.svg) next to their ASCII tables.
#pragma once

#include <string>
#include <vector>

#include "waveform/trace.h"

namespace lcosc {

struct SvgSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;

  // Convenience: build from a Trace.
  static SvgSeries from_trace(const Trace& trace, std::string label = "");
};

struct SvgPlotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width = 800;
  int height = 480;
  bool log_y = false;   // base-10 log scale (positive values only)
  bool markers = false; // draw point markers in addition to lines
};

// Render the series as an SVG document string.
[[nodiscard]] std::string render_svg_plot(const std::vector<SvgSeries>& series,
                                          const SvgPlotOptions& options);

// Render and write to a file; creates the parent directory if needed.
// Throws lcosc::Error on I/O failure.
void write_svg_plot(const std::string& path, const std::vector<SvgSeries>& series,
                    const SvgPlotOptions& options);

}  // namespace lcosc
