#include "waveform/trace.h"

#include <algorithm>

#include "common/error.h"

namespace lcosc {

void Trace::append(double time, double value) {
  LCOSC_REQUIRE(times_.empty() || time > times_.back(),
                "trace time stamps must be strictly increasing");
  times_.push_back(time);
  values_.push_back(value);
}

double Trace::start_time() const {
  LCOSC_REQUIRE(!times_.empty(), "trace is empty");
  return times_.front();
}

double Trace::end_time() const {
  LCOSC_REQUIRE(!times_.empty(), "trace is empty");
  return times_.back();
}

double Trace::duration() const { return end_time() - start_time(); }

double Trace::sample_at(double time) const {
  LCOSC_REQUIRE(!times_.empty(), "trace is empty");
  if (time <= times_.front()) return values_.front();
  if (time >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), time);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const double t0 = times_[hi - 1];
  const double t1 = times_[hi];
  const double f = (time - t0) / (t1 - t0);
  return values_[hi - 1] + f * (values_[hi] - values_[hi - 1]);
}

Trace Trace::window(double t0, double t1) const {
  Trace out(name_);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t0 && times_[i] <= t1) out.append(times_[i], values_[i]);
  }
  return out;
}

Trace Trace::decimated(std::size_t n) const {
  LCOSC_REQUIRE(n >= 1, "decimation factor must be >= 1");
  Trace out(name_);
  for (std::size_t i = 0; i < times_.size(); i += n) out.append(times_[i], values_[i]);
  if (!times_.empty() && (times_.size() - 1) % n != 0) {
    out.append(times_.back(), values_.back());
  }
  return out;
}

void Trace::clear() {
  times_.clear();
  values_.clear();
}

void Trace::reserve(std::size_t n) {
  times_.reserve(n);
  values_.reserve(n);
}

}  // namespace lcosc
