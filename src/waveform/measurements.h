// Scope-style measurements on Traces: amplitude, frequency, envelope,
// settling, RMS, THD.  These are the "bench instruments" of the
// reproduction; figure benches report numbers produced here.
#pragma once

#include <optional>
#include <vector>

#include "waveform/trace.h"

namespace lcosc {

// Peak amplitude (max |value|) over the trace (or a trailing window).
[[nodiscard]] double peak_amplitude(const Trace& trace);
[[nodiscard]] double peak_amplitude_tail(const Trace& trace, double tail_duration);

// Peak-to-peak value over the trace.
[[nodiscard]] double peak_to_peak(const Trace& trace);

// RMS value over the trace (trapezoidal time weighting).
[[nodiscard]] double rms(const Trace& trace);

// Mean value over the trace (trapezoidal time weighting).
[[nodiscard]] double mean(const Trace& trace);

// Times of rising zero crossings (linear interpolation), relative to the
// given threshold level.
[[nodiscard]] std::vector<double> rising_crossings(const Trace& trace, double level = 0.0);

// Average frequency from rising level-crossings over the trailing window;
// nullopt if fewer than two crossings exist.
[[nodiscard]] std::optional<double> estimate_frequency(const Trace& trace, double level = 0.0);
[[nodiscard]] std::optional<double> estimate_frequency_tail(const Trace& trace,
                                                            double tail_duration,
                                                            double level = 0.0);

// Envelope extraction: per-half-cycle peak magnitudes as a new trace
// (sampled at the peak times).  Suitable for staircase/startup plots.
[[nodiscard]] Trace extract_envelope(const Trace& trace, double level = 0.0);

// First time after which |value - target| <= tolerance holds to the end of
// the trace; nullopt if never settled.
[[nodiscard]] std::optional<double> settling_time(const Trace& trace, double target,
                                                  double tolerance);

// Total harmonic distortion of a (near-)periodic signal: ratio of harmonic
// RMS (2nd..max_harmonic) to fundamental RMS, computed by direct Fourier
// projection over an integer number of periods at `fundamental_hz`.
[[nodiscard]] double total_harmonic_distortion(const Trace& trace, double fundamental_hz,
                                               int max_harmonic = 9);

// Single-frequency Fourier magnitude (Goertzel-style direct projection
// with trapezoidal weights) over the whole trace.
[[nodiscard]] double fourier_magnitude(const Trace& trace, double frequency_hz);

}  // namespace lcosc
