#include "waveform/csv_io.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/error.h"

namespace lcosc {

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os << "time," << (trace.name().empty() ? std::string("value") : trace.name()) << '\n';
  os.precision(12);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    os << trace.time(i) << ',' << trace.value(i) << '\n';
  }
}

void write_traces_csv(std::ostream& os, const std::vector<Trace>& traces) {
  LCOSC_REQUIRE(!traces.empty(), "no traces to write");
  // Union of all time stamps.
  std::vector<double> times;
  for (const auto& t : traces) {
    times.insert(times.end(), t.times().begin(), t.times().end());
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  os << "time";
  for (std::size_t c = 0; c < traces.size(); ++c) {
    os << ',' << (traces[c].name().empty() ? "trace" + std::to_string(c) : traces[c].name());
  }
  os << '\n';
  os.precision(12);
  for (const double t : times) {
    os << t;
    for (const auto& trace : traces) os << ',' << trace.sample_at(t);
    os << '\n';
  }
}

void write_trace_csv_file(const std::string& path, const Trace& trace) {
  std::ostringstream os;
  write_trace_csv(os, trace);
  if (!write_file_atomic(path, os.str())) {
    throw Error("cannot open file for writing: " + path);
  }
}

void write_traces_csv_file(const std::string& path, const std::vector<Trace>& traces) {
  std::ostringstream os;
  write_traces_csv(os, traces);
  if (!write_file_atomic(path, os.str())) {
    throw Error("cannot open file for writing: " + path);
  }
}

}  // namespace lcosc
