// Public facade of the lcosc library.
//
// Wraps the full simulation stack behind a small, application-facing API:
//
//   using namespace lcosc;
//   LcOscillatorConfig cfg;
//   cfg.tank = tank::design_tank(4e6, 50.0, 100e-6);
//   LcOscillatorDriver osc(cfg);
//   auto startup = osc.run_startup(10e-3);
//   std::cout << "settled at " << startup.settled_amplitude() << " V, code "
//             << startup.final_code << "\n";
//
// Everything underneath (tank physics, Table-1 DAC coding, detectors,
// regulation FSM, fault injection, spice-extracted output stages) remains
// available through the module headers for power users.
#pragma once

#include <cstdint>
#include <optional>

#include "system/dual_system.h"
#include "system/envelope_simulator.h"
#include "system/fmea_campaign.h"
#include "system/oscillator_system.h"
#include "system/tolerance_analysis.h"

namespace lcosc {

struct LcOscillatorConfig {
  tank::TankConfig tank = tank::typical_mid_q_tank();
  driver::DriverConfig driver{};
  regulation::AmplitudeDetectorConfig detector{};
  regulation::RegulationConfig regulation{};
  safety::SafetyControllerConfig safety{};

  // Optional Monte-Carlo mismatch on the current limitation DAC.
  std::optional<std::uint64_t> mismatch_seed;
  dac::MismatchConfig mismatch{};

  // Integration resolution of the cycle-accurate engine.
  int steps_per_period = 64;
  // Waveform recording decimation (0 = no waveforms, envelopes only).
  int waveform_decimation = 1;
};

class LcOscillatorDriver {
 public:
  explicit LcOscillatorDriver(LcOscillatorConfig config = {});

  // --- simulation entry points ---------------------------------------------

  // Power-on startup (POR code 105, optional NVM preset) for `duration`.
  [[nodiscard]] system::SimulationResult run_startup(double duration);

  // Startup with a fault injected at `fault_time`.
  [[nodiscard]] system::SimulationResult run_with_fault(double duration, tank::TankFault fault,
                                                        double fault_time,
                                                        const tank::FaultSeverity& severity = {});

  // Scripted scenario: events (faults, recoveries, temperature steps)
  // applied at their times during one run.
  [[nodiscard]] system::SimulationResult run_scenario(
      double duration, const std::vector<std::pair<double, system::ScenarioAction>>& events);

  // Monte-Carlo tolerance analysis around this configuration.
  [[nodiscard]] system::ToleranceReport run_tolerance(int samples,
                                                      double lc_tolerance = 0.10,
                                                      double rs_tolerance = 0.30) const;

  // Fast envelope-domain run (long campaigns; no safety detectors).
  [[nodiscard]] system::EnvelopeRunResult run_envelope(double duration);

  // --- analysis ----------------------------------------------------------------

  // The tank as configured.
  [[nodiscard]] tank::RlcTank tank_model() const { return tank::RlcTank(config_.tank); }

  // Steady-state amplitude prediction at a given code (Eq. 4).
  [[nodiscard]] std::optional<double> predicted_amplitude(int code) const;

  // Code the regulation loop should settle near for the configured target.
  [[nodiscard]] std::optional<int> expected_settling_code() const;

  // Estimated supply current at the regulation target (Section 9 range:
  // ~250 uA for high-Q tanks up to ~30 mA for poor ones).
  [[nodiscard]] double expected_supply_current() const;

  [[nodiscard]] const LcOscillatorConfig& config() const { return config_; }

 private:
  [[nodiscard]] system::OscillatorSystemConfig system_config() const;
  [[nodiscard]] driver::OscillatorDriver make_driver() const;

  LcOscillatorConfig config_;
  std::shared_ptr<const dac::CurrentLimitationDac> mismatched_dac_;
};

}  // namespace lcosc
