#include "core/lc_oscillator.h"

#include "common/error.h"

namespace lcosc {

LcOscillatorDriver::LcOscillatorDriver(LcOscillatorConfig config) : config_(std::move(config)) {
  if (config_.mismatch_seed) {
    mismatched_dac_ = std::make_shared<const dac::CurrentLimitationDac>(
        config_.driver.unit_current, config_.mismatch, *config_.mismatch_seed);
  }
  // Validate early.
  (void)tank::RlcTank(config_.tank);
}

system::OscillatorSystemConfig LcOscillatorDriver::system_config() const {
  system::OscillatorSystemConfig sys;
  sys.tank = config_.tank;
  sys.driver = config_.driver;
  sys.detector = config_.detector;
  sys.regulation = config_.regulation;
  sys.safety = config_.safety;
  sys.steps_per_period = config_.steps_per_period;
  sys.waveform_decimation = config_.waveform_decimation;
  return sys;
}

driver::OscillatorDriver LcOscillatorDriver::make_driver() const {
  driver::OscillatorDriver drv(config_.driver);
  if (mismatched_dac_) drv.use_mismatched_dac(mismatched_dac_);
  return drv;
}

system::SimulationResult LcOscillatorDriver::run_startup(double duration) {
  system::OscillatorSystem sys(system_config());
  if (mismatched_dac_) sys.driver().use_mismatched_dac(mismatched_dac_);
  return sys.run(duration);
}

system::SimulationResult LcOscillatorDriver::run_with_fault(
    double duration, tank::TankFault fault, double fault_time,
    const tank::FaultSeverity& severity) {
  system::OscillatorSystem sys(system_config());
  if (mismatched_dac_) sys.driver().use_mismatched_dac(mismatched_dac_);
  sys.schedule_fault(fault, fault_time, severity);
  return sys.run(duration);
}

system::SimulationResult LcOscillatorDriver::run_scenario(
    double duration, const std::vector<std::pair<double, system::ScenarioAction>>& events) {
  system::OscillatorSystem sys(system_config());
  if (mismatched_dac_) sys.driver().use_mismatched_dac(mismatched_dac_);
  for (const auto& [time, action] : events) sys.schedule_event(time, action);
  return sys.run(duration);
}

system::ToleranceReport LcOscillatorDriver::run_tolerance(int samples, double lc_tolerance,
                                                          double rs_tolerance) const {
  system::ToleranceConfig cfg;
  cfg.nominal.tank = config_.tank;
  cfg.nominal.driver = config_.driver;
  cfg.nominal.detector = config_.detector;
  cfg.nominal.regulation = config_.regulation;
  cfg.inductance_tolerance = lc_tolerance;
  cfg.capacitance_tolerance = lc_tolerance;
  cfg.resistance_tolerance = rs_tolerance;
  cfg.include_dac_mismatch = config_.mismatch_seed.has_value();
  cfg.mismatch = config_.mismatch;
  cfg.samples = samples;
  return run_tolerance_analysis(cfg);
}

system::EnvelopeRunResult LcOscillatorDriver::run_envelope(double duration) {
  system::EnvelopeSimConfig env;
  env.tank = config_.tank;
  env.driver = config_.driver;
  env.detector = config_.detector;
  env.regulation = config_.regulation;
  system::EnvelopeSimulator sim(env);
  if (mismatched_dac_) sim.driver().use_mismatched_dac(mismatched_dac_);
  return sim.run(duration);
}

std::optional<double> LcOscillatorDriver::predicted_amplitude(int code) const {
  driver::OscillatorDriver drv = make_driver();
  drv.set_code(code);
  return drv.predicted_amplitude(tank_model());
}

std::optional<int> LcOscillatorDriver::expected_settling_code() const {
  const double target = config_.detector.target_amplitude;
  for (int code = 0; code <= kDacCodeMax; ++code) {
    const auto amplitude = predicted_amplitude(code);
    if (amplitude && *amplitude >= target) return code;
  }
  return std::nullopt;
}

double LcOscillatorDriver::expected_supply_current() const {
  const auto code = expected_settling_code();
  driver::OscillatorDriver drv = make_driver();
  drv.set_code(code.value_or(kDacCodeMax));
  const auto amplitude = drv.predicted_amplitude(tank_model());
  return drv.supply_current(amplitude.value_or(0.0));
}

}  // namespace lcosc
