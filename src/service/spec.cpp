#include "service/spec.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "common/error.h"

namespace lcosc::service {

std::string to_string(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::Tolerance:
      return "tolerance";
    case CampaignKind::ExternalFmea:
      return "fmea";
    case CampaignKind::InternalFmea:
      return "internal_fmea";
  }
  return "?";
}

namespace {

// Minimal single-pass parser for the flat JSON object a spec is: string,
// number and boolean values only.  Strings support \" \\ \/ \n \t
// escapes -- enough to round-trip filesystem paths.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  // Calls visit(key, raw_value, is_string) per member.
  template <typename Visit>
  void parse_object(Visit&& visit) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        bool is_string = false;
        std::string value;
        const char c = peek();
        if (c == '"') {
          value = parse_string();
          is_string = true;
        } else if (c == 't' || c == 'f') {
          value = parse_keyword();
        } else if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
          value = parse_number();
        } else {
          fail("expected a string, number or boolean value");
        }
        visit(key, value, is_string);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the spec object");
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("campaign spec: " + why + " (at byte " + std::to_string(pos_) + ")");
  }
  char peek() const {
    if (pos_ >= text_.size()) {
      throw ConfigError("campaign spec: unexpected end of input (truncated file?)");
    }
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': append_codepoint(out, parse_hex4()); break;
          default: fail("unsupported string escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }
  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else fail("expected four hex digits after \\u");
      cp = cp * 16 + digit;
    }
    return cp;
  }
  void append_codepoint(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      // BMP only: surrogate pairs never appear in the specs we emit.
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }
  std::string parse_keyword() {
    for (const std::string_view kw : {"true", "false"}) {
      if (text_.substr(pos_, kw.size()) == kw) {
        pos_ += kw.size();
        return std::string(kw);
      }
    }
    fail("expected true or false");
  }
  std::string parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double to_number(const std::string& key, const std::string& raw) {
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
    throw ConfigError("campaign spec: key '" + key + "' is not a finite number");
  }
  return v;
}

int to_int(const std::string& key, const std::string& raw) {
  const double v = to_number(key, raw);
  if (v != std::floor(v)) {
    throw ConfigError("campaign spec: key '" + key + "' must be an integer");
  }
  return static_cast<int>(v);
}

// Exact 64-bit parse: routing a seed through double would silently round
// values above 2^53 (and cast UB above 2^63), giving re-parsing workers a
// different seed than the coordinator.
std::uint64_t to_u64(const std::string& key, const std::string& raw) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (raw.empty() || raw[0] == '-' || end == raw.c_str() || *end != '\0' ||
      errno == ERANGE) {
    throw ConfigError("campaign spec: key '" + key +
                      "' must be a non-negative integer (64-bit)");
  }
  return v;
}

bool to_bool(const std::string& key, const std::string& raw, bool is_string) {
  if (is_string || (raw != "true" && raw != "false")) {
    throw ConfigError("campaign spec: key '" + key + "' must be true or false");
  }
  return raw == "true";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

CampaignSpec parse_campaign_spec(const std::string& json_text) {
  CampaignSpec spec;
  FlatJsonParser parser(json_text);
  parser.parse_object([&](const std::string& key, const std::string& raw, bool is_string) {
    auto num = [&] { return to_number(key, raw); };
    auto integer = [&] { return to_int(key, raw); };
    if (key == "campaign") {
      if (raw == "tolerance") spec.kind = CampaignKind::Tolerance;
      else if (raw == "fmea") spec.kind = CampaignKind::ExternalFmea;
      else if (raw == "internal_fmea") spec.kind = CampaignKind::InternalFmea;
      else throw ConfigError("campaign spec: unknown campaign kind '" + raw + "'");
    } else if (key == "seed") {
      spec.seed = to_u64(key, raw);
    } else if (key == "samples") {
      spec.samples = integer();
    } else if (key == "run_duration_ms") {
      spec.run_duration = num() * 1e-3;
    } else if (key == "settle_ms") {
      spec.settle_time = num() * 1e-3;
    } else if (key == "observe_ms") {
      spec.observe_time = num() * 1e-3;
    } else if (key == "max_retries") {
      spec.max_retries = integer();
    } else if (key == "shards") {
      spec.shards = integer();
    } else if (key == "workers_per_shard") {
      spec.workers_per_shard = integer();
    } else if (key == "max_restarts") {
      spec.max_restarts = integer();
    } else if (key == "shard_timeout_ms") {
      spec.shard_timeout_ms = num();
    } else if (key == "restart_backoff_initial_ms") {
      spec.restart_backoff.initial_ms = integer();
    } else if (key == "restart_backoff_multiplier") {
      spec.restart_backoff.multiplier = num();
    } else if (key == "restart_backoff_max_ms") {
      spec.restart_backoff.max_ms = integer();
    } else if (key == "case_backoff_initial_ms") {
      spec.case_backoff.initial_ms = integer();
    } else if (key == "case_backoff_multiplier") {
      spec.case_backoff.multiplier = num();
    } else if (key == "case_backoff_max_ms") {
      spec.case_backoff.max_ms = integer();
    } else if (key == "checkpoint_dir") {
      spec.checkpoint_dir = raw;
    } else if (key == "report_path") {
      spec.report_path = raw;
    } else if (key == "test_kill_after_cases") {
      spec.test_kill_after_cases = integer();
    } else if (key == "test_stall_once") {
      spec.test_stall_once = to_bool(key, raw, is_string);
    } else {
      throw ConfigError("campaign spec: unknown key '" + key + "'");
    }
  });

  if (spec.samples <= 0) throw ConfigError("campaign spec: samples must be positive");
  if (spec.shards < 1) throw ConfigError("campaign spec: shards must be >= 1");
  if (spec.max_restarts < 0) throw ConfigError("campaign spec: max_restarts must be >= 0");
  if (spec.max_retries < 0) throw ConfigError("campaign spec: max_retries must be >= 0");
  if (spec.shard_timeout_ms < 0) {
    throw ConfigError("campaign spec: shard_timeout_ms must be >= 0");
  }
  return spec;
}

std::string determinism_signature(const CampaignSpec& spec) {
  char run_d[32], settle[32], observe[32];
  std::snprintf(run_d, sizeof run_d, "%a", spec.run_duration);
  std::snprintf(settle, sizeof settle, "%a", spec.settle_time);
  std::snprintf(observe, sizeof observe, "%a", spec.observe_time);
  std::ostringstream out;
  out << to_string(spec.kind) << "|seed=" << spec.seed << "|samples=" << spec.samples
      << "|run=" << run_d << "|settle=" << settle << "|observe=" << observe
      << "|retries=" << spec.max_retries;
  return out.str();
}

std::string to_json(const CampaignSpec& spec) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n"
      << "  \"campaign\": \"" << to_string(spec.kind) << "\",\n"
      << "  \"seed\": " << spec.seed << ",\n"
      << "  \"samples\": " << spec.samples << ",\n"
      << "  \"run_duration_ms\": " << spec.run_duration * 1e3 << ",\n"
      << "  \"settle_ms\": " << spec.settle_time * 1e3 << ",\n"
      << "  \"observe_ms\": " << spec.observe_time * 1e3 << ",\n"
      << "  \"max_retries\": " << spec.max_retries << ",\n"
      << "  \"shards\": " << spec.shards << ",\n"
      << "  \"workers_per_shard\": " << spec.workers_per_shard << ",\n"
      << "  \"max_restarts\": " << spec.max_restarts << ",\n"
      << "  \"shard_timeout_ms\": " << spec.shard_timeout_ms << ",\n"
      << "  \"restart_backoff_initial_ms\": " << spec.restart_backoff.initial_ms << ",\n"
      << "  \"restart_backoff_multiplier\": " << spec.restart_backoff.multiplier << ",\n"
      << "  \"restart_backoff_max_ms\": " << spec.restart_backoff.max_ms << ",\n"
      << "  \"case_backoff_initial_ms\": " << spec.case_backoff.initial_ms << ",\n"
      << "  \"case_backoff_multiplier\": " << spec.case_backoff.multiplier << ",\n"
      << "  \"case_backoff_max_ms\": " << spec.case_backoff.max_ms << ",\n"
      << "  \"checkpoint_dir\": \"" << json_escape(spec.checkpoint_dir) << "\",\n"
      << "  \"report_path\": \"" << json_escape(spec.report_path) << "\",\n"
      << "  \"test_kill_after_cases\": " << spec.test_kill_after_cases << ",\n"
      << "  \"test_stall_once\": " << (spec.test_stall_once ? "true" : "false") << "\n"
      << "}\n";
  return out.str();
}

}  // namespace lcosc::service
