#include "service/spec.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "service/flat_json.h"

namespace lcosc::service {

std::string to_string(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::Tolerance:
      return "tolerance";
    case CampaignKind::ExternalFmea:
      return "fmea";
    case CampaignKind::InternalFmea:
      return "internal_fmea";
  }
  return "?";
}

CampaignKind parse_campaign_kind(const std::string& name) {
  if (name == "tolerance") return CampaignKind::Tolerance;
  if (name == "fmea") return CampaignKind::ExternalFmea;
  if (name == "internal_fmea") return CampaignKind::InternalFmea;
  throw ConfigError("unknown campaign kind '" + name + "'");
}

CampaignSpec parse_campaign_spec(const std::string& json_text) {
  CampaignSpec spec;
  FlatJsonParser parser(json_text);
  parser.context("campaign spec");
  parser.parse_object([&](const std::string& key, const std::string& raw, bool is_string) {
    auto num = [&] { return json_to_number(key, raw); };
    auto integer = [&] { return json_to_int(key, raw); };
    if (key == "campaign") {
      spec.kind = parse_campaign_kind(raw);
    } else if (key == "seed") {
      spec.seed = json_to_u64(key, raw);
    } else if (key == "samples") {
      spec.samples = integer();
    } else if (key == "run_duration_ms") {
      spec.run_duration = num() * 1e-3;
    } else if (key == "settle_ms") {
      spec.settle_time = num() * 1e-3;
    } else if (key == "observe_ms") {
      spec.observe_time = num() * 1e-3;
    } else if (key == "max_retries") {
      spec.max_retries = integer();
    } else if (key == "chunk_lanes") {
      spec.chunk_lanes = integer();
    } else if (key == "shards") {
      spec.shards = integer();
    } else if (key == "workers_per_shard") {
      spec.workers_per_shard = integer();
    } else if (key == "max_restarts") {
      spec.max_restarts = integer();
    } else if (key == "shard_timeout_ms") {
      spec.shard_timeout_ms = num();
    } else if (key == "restart_backoff_initial_ms") {
      spec.restart_backoff.initial_ms = integer();
    } else if (key == "restart_backoff_multiplier") {
      spec.restart_backoff.multiplier = num();
    } else if (key == "restart_backoff_max_ms") {
      spec.restart_backoff.max_ms = integer();
    } else if (key == "case_backoff_initial_ms") {
      spec.case_backoff.initial_ms = integer();
    } else if (key == "case_backoff_multiplier") {
      spec.case_backoff.multiplier = num();
    } else if (key == "case_backoff_max_ms") {
      spec.case_backoff.max_ms = integer();
    } else if (key == "checkpoint_dir") {
      spec.checkpoint_dir = raw;
    } else if (key == "report_path") {
      spec.report_path = raw;
    } else if (key == "test_kill_after_cases") {
      spec.test_kill_after_cases = integer();
    } else if (key == "test_stall_once") {
      spec.test_stall_once = json_to_bool(key, raw, is_string);
    } else {
      throw ConfigError("campaign spec: unknown key '" + key + "'");
    }
  });

  if (spec.samples <= 0) throw ConfigError("campaign spec: samples must be positive");
  if (spec.shards < 1) throw ConfigError("campaign spec: shards must be >= 1");
  if (spec.max_restarts < 0) throw ConfigError("campaign spec: max_restarts must be >= 0");
  if (spec.max_retries < 0) throw ConfigError("campaign spec: max_retries must be >= 0");
  if (spec.chunk_lanes < 1 || spec.chunk_lanes > 4096) {
    throw ConfigError("campaign spec: chunk_lanes must be in [1, 4096]");
  }
  if (spec.shard_timeout_ms < 0) {
    throw ConfigError("campaign spec: shard_timeout_ms must be >= 0");
  }
  return spec;
}

std::string determinism_signature(const CampaignSpec& spec) {
  char run_d[32], settle[32], observe[32];
  std::snprintf(run_d, sizeof run_d, "%a", spec.run_duration);
  std::snprintf(settle, sizeof settle, "%a", spec.settle_time);
  std::snprintf(observe, sizeof observe, "%a", spec.observe_time);
  std::ostringstream out;
  out << to_string(spec.kind) << "|seed=" << spec.seed << "|samples=" << spec.samples
      << "|run=" << run_d << "|settle=" << settle << "|observe=" << observe
      << "|retries=" << spec.max_retries;
  return out.str();
}

std::string to_json(const CampaignSpec& spec) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n"
      << "  \"campaign\": \"" << to_string(spec.kind) << "\",\n"
      << "  \"seed\": " << spec.seed << ",\n"
      << "  \"samples\": " << spec.samples << ",\n"
      << "  \"run_duration_ms\": " << spec.run_duration * 1e3 << ",\n"
      << "  \"settle_ms\": " << spec.settle_time * 1e3 << ",\n"
      << "  \"observe_ms\": " << spec.observe_time * 1e3 << ",\n"
      << "  \"max_retries\": " << spec.max_retries << ",\n"
      << "  \"chunk_lanes\": " << spec.chunk_lanes << ",\n"
      << "  \"shards\": " << spec.shards << ",\n"
      << "  \"workers_per_shard\": " << spec.workers_per_shard << ",\n"
      << "  \"max_restarts\": " << spec.max_restarts << ",\n"
      << "  \"shard_timeout_ms\": " << spec.shard_timeout_ms << ",\n"
      << "  \"restart_backoff_initial_ms\": " << spec.restart_backoff.initial_ms << ",\n"
      << "  \"restart_backoff_multiplier\": " << spec.restart_backoff.multiplier << ",\n"
      << "  \"restart_backoff_max_ms\": " << spec.restart_backoff.max_ms << ",\n"
      << "  \"case_backoff_initial_ms\": " << spec.case_backoff.initial_ms << ",\n"
      << "  \"case_backoff_multiplier\": " << spec.case_backoff.multiplier << ",\n"
      << "  \"case_backoff_max_ms\": " << spec.case_backoff.max_ms << ",\n"
      << "  \"checkpoint_dir\": \"" << json_escape(spec.checkpoint_dir) << "\",\n"
      << "  \"report_path\": \"" << json_escape(spec.report_path) << "\",\n"
      << "  \"test_kill_after_cases\": " << spec.test_kill_after_cases << ",\n"
      << "  \"test_stall_once\": " << (spec.test_stall_once ? "true" : "false") << "\n"
      << "}\n";
  return out.str();
}

}  // namespace lcosc::service
