// ShardableCampaign adapters for the three campaign runners (external
// FMEA, internal FMEA, Monte-Carlo tolerance).  Each adapter maps a case
// index onto the runner's per-index function (system/fmea_campaign.h,
// system/internal_fmea.h, system/tolerance_analysis.h), serializes the
// resulting row with an exact field codec (hexfloat doubles, escaped
// strings), and renders the final report from the records in index
// order.  Because both the case result and its serialization are pure
// functions of the index, a record replayed from a checkpoint is
// byte-identical to one computed fresh -- the determinism the service's
// kill/resume contract rests on.
#pragma once

#include <memory>

#include "common/campaign.h"
#include "service/spec.h"

namespace lcosc::service {

// Build the campaign a spec describes (bench-default system configs with
// the spec's knobs applied).
[[nodiscard]] std::unique_ptr<ShardableCampaign> make_campaign(const CampaignSpec& spec);

}  // namespace lcosc::service
