// Campaign job specification for the sharded service: which campaign to
// run, how to shard it across worker subprocesses, and how to supervise
// them.  Serialized as a small JSON object so a spec file fully
// describes a resumable run (the coordinator re-writes the effective
// spec into the checkpoint directory; shard workers re-exec from it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/campaign.h"

namespace lcosc::service {

enum class CampaignKind { Tolerance, ExternalFmea, InternalFmea };

[[nodiscard]] std::string to_string(CampaignKind kind);
// Inverse of to_string; throws lcosc::ConfigError on an unknown name.
[[nodiscard]] CampaignKind parse_campaign_kind(const std::string& name);

struct CampaignSpec {
  CampaignKind kind = CampaignKind::Tolerance;

  // Campaign parameters (the subset the service exposes; everything else
  // uses the bench defaults, see service/adapters.cpp).
  std::uint64_t seed = 1;       // tolerance Monte-Carlo seed
  int samples = 48;             // tolerance sample count
  double run_duration = 20e-3;  // tolerance per-sample sim duration [s]
  double settle_time = 6e-3;    // FMEA settle before injection [s]
  double observe_time = 10e-3;  // FMEA observation window [s]
  int max_retries = 1;          // per-case bounded retry (run_guarded_case)
  // Lanes per lockstep chunk of the batched tolerance engine; chunk
  // boundaries are cut in GLOBAL case index, so the value changes wall
  // time and memory, never a record byte -- it is deliberately NOT part
  // of determinism_signature.  Bounds [1, 4096].
  int chunk_lanes = 64;

  // Sharding & supervision.
  int shards = 1;               // worker subprocesses; cases split contiguously
  int workers_per_shard = 1;    // threads inside one shard (0 = default pool)
  int max_restarts = 2;         // per-shard restart budget (crash or timeout)
  double shard_timeout_ms = 0;  // per-spawn wall ceiling; 0 = unlimited
  RetryBackoff restart_backoff{.initial_ms = 100, .multiplier = 2.0, .max_ms = 5000};
  RetryBackoff case_backoff{};  // per-case retry backoff (default: disabled)

  // Artifacts.
  std::string checkpoint_dir;  // per-shard record streams + effective spec
  std::string report_path;     // final report (atomic write); empty = none

  // Fault-injection hooks for the supervision tests/smoke runs; both are
  // inert (0 / false) in production specs.  kill_after_cases makes every
  // worker spawn _exit(137) after committing that many fresh cases;
  // stall_once makes the first spawn of every shard sleep forever (the
  // sentinel file it drops in checkpoint_dir disarms later spawns), so
  // the coordinator's timeout/kill/restart path runs deterministically.
  int test_kill_after_cases = 0;
  bool test_stall_once = false;
};

// Parse a spec from JSON text.  Unknown keys are rejected (a typo in a
// supervision field must not silently fall back to a default); missing
// keys keep their defaults.  Throws lcosc::ConfigError on malformed
// JSON, unknown keys, or out-of-range values.
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& json_text);

// Serialize (round-trips through parse_campaign_spec).
[[nodiscard]] std::string to_json(const CampaignSpec& spec);

// The subset of the spec that determines record content: campaign kind,
// seed, sample count, durations, per-case retry limit.  Two specs with
// equal signatures produce byte-identical records for every case index,
// so checkpoints written under one may be resumed under the other;
// sharding/supervision/artifact knobs are deliberately excluded (resume
// with a different shard count is a supported workflow).
[[nodiscard]] std::string determinism_signature(const CampaignSpec& spec);

}  // namespace lcosc::service
