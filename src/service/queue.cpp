#include "service/queue.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/campaign.h"
#include "common/error.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "service/adapters.h"
#include "service/checkpoint.h"
#include "service/flat_json.h"

namespace lcosc::service {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

void count_metric(const char* name, std::uint64_t delta = 1) {
  if (obs::metrics_enabled()) obs::MetricsRegistry::instance().counter(name).add(delta);
}

void gauge_set(const char* name, double value) {
  if (obs::metrics_enabled()) obs::MetricsRegistry::instance().gauge(name).set(value);
}

void emit_job_event(const char* action, const JobRecord& job) {
  if (!obs::events_enabled()) return;
  obs::Event event("queue.job");
  event.str("action", action)
      .str("id", job.id)
      .str("state", to_string(job.state))
      .integer("priority", job.priority)
      .integer("runs", job.runs);
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Directory-name suffix: anything outside [A-Za-z0-9_-] maps to '_' so a
// sweep value like "2.5e-3" still yields a portable path component.
std::string sanitize_name(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) != 0 || c == '-' || c == '_' ? c : '_');
    if (out.size() >= 40) break;
  }
  return out;
}

void fill_paths(JobRecord& job, const std::string& dir) {
  job.dir = dir;
  job.spec_path = dir + "/spec.json";
  job.checkpoint_dir = dir + "/checkpoints";
  job.report_path = dir + "/report.txt";
  job.progress_path = dir + "/progress.json";
}

// Committed records bucketed by absolute case index (no degraded
// preference: for progress accounting a synthesized row still counts as
// a delivered case).
std::size_t count_in_range(const std::map<std::uint32_t, std::string>& merged,
                           const CaseRange& range) {
  const auto lo = merged.lower_bound(static_cast<std::uint32_t>(range.begin));
  const auto hi = merged.lower_bound(static_cast<std::uint32_t>(range.end));
  return static_cast<std::size_t>(std::distance(lo, hi));
}

}  // namespace

std::string to_string(JobState state) {
  switch (state) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Done:
      return "done";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
  }
  return "?";
}

JobState parse_job_state(const std::string& name) {
  if (name == "queued") return JobState::Queued;
  if (name == "running") return JobState::Running;
  if (name == "done") return JobState::Done;
  if (name == "failed") return JobState::Failed;
  if (name == "cancelled") return JobState::Cancelled;
  throw ConfigError("unknown job state '" + name + "'");
}

bool claim_order_less(const JobRecord& a, const JobRecord& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.sequence < b.sequence;
}

CampaignSpec apply_spec_override(const CampaignSpec& templ, const std::string& key,
                                 const std::string& value) {
  // Rewrite the template's own JSON with one value swapped, then re-parse:
  // the override inherits exactly the spec grammar (key set, types,
  // validation) with no second switch over the fields to keep in sync.
  const std::string json = to_json(templ);
  std::ostringstream out;
  out << "{";
  bool found = false;
  bool first = true;
  FlatJsonParser parser(json);
  parser.context("spec template");
  parser.parse_object([&](const std::string& k, const std::string& raw, bool is_string) {
    const bool here = k == key;
    found = found || here;
    const std::string& use = here ? value : raw;
    out << (first ? "\n" : ",\n") << "  \"" << json_escape(k) << "\": ";
    first = false;
    if (is_string) {
      out << '"' << json_escape(use) << '"';
    } else {
      out << use;
    }
  });
  out << "\n}\n";
  if (!found) throw ConfigError("sweep key '" + key + "' is not a campaign spec key");
  return parse_campaign_spec(out.str());
}

JobQueue::JobQueue(std::string root) : root_(std::move(root)) {
  LCOSC_REQUIRE(!root_.empty(), "queue root is required");
  std::error_code ec;
  fs::create_directories(jobs_dir(), ec);
  if (ec) throw Error("queue: cannot create " + jobs_dir() + ": " + ec.message());
}

JobRecord JobQueue::submit(const CampaignSpec& spec, int priority, const std::string& name) {
  const std::string suffix = sanitize_name(name);

  // Next submit-order number: one past the largest numeric prefix of any
  // existing entry (committed or not, so a half-created directory never
  // gets its number reused).
  std::uint64_t seq = 0;
  for (const auto& entry : fs::directory_iterator(jobs_dir())) {
    const std::string base = entry.path().filename().string();
    std::uint64_t value = 0;
    std::size_t i = 0;
    while (i < base.size() && std::isdigit(static_cast<unsigned char>(base[i])) != 0) {
      value = value * 10 + static_cast<std::uint64_t>(base[i] - '0');
      ++i;
    }
    if (i > 0) seq = std::max(seq, value);
  }
  ++seq;

  JobRecord job;
  while (true) {
    char number[16];
    std::snprintf(number, sizeof number, "%06llu", static_cast<unsigned long long>(seq));
    job.id = suffix.empty() ? std::string(number) : std::string(number) + "-" + suffix;
    const std::string dir = jobs_dir() + "/" + job.id;
    std::error_code ec;
    if (fs::create_directory(dir, ec)) {
      fill_paths(job, dir);
      break;
    }
    if (ec) throw Error("queue: cannot create " + dir + ": " + ec.message());
    ++seq;  // lost a race with a concurrent submitter; take the next number
  }
  job.sequence = seq;
  job.priority = priority;

  CampaignSpec effective = spec;
  effective.checkpoint_dir = job.checkpoint_dir;
  effective.report_path = job.report_path;
  if (!write_file_atomic(job.spec_path, to_json(effective))) {
    throw Error("queue: cannot write " + job.spec_path);
  }
  write_job(job);  // commit point: the job is now visible to list()/claim

  count_metric("queue.jobs.submitted");
  emit_job_event("submit", job);
  return job;
}

std::vector<JobRecord> JobQueue::submit_sweep(const CampaignSpec& templ,
                                              const std::string& key,
                                              const std::vector<std::string>& values,
                                              int priority, const std::string& name) {
  LCOSC_REQUIRE(!values.empty(), "sweep needs at least one value");
  std::vector<JobRecord> jobs;
  jobs.reserve(values.size());
  for (const std::string& value : values) {
    jobs.push_back(submit(apply_spec_override(templ, key, value), priority, name + value));
  }
  return jobs;
}

std::optional<JobRecord> JobQueue::read_job(const std::string& dir) const {
  const std::optional<std::string> text = read_text_file(dir + "/job.json");
  if (!text) return std::nullopt;
  JobRecord job;
  try {
    FlatJsonParser parser(*text);
    parser.context("queue job");
    parser.parse_object([&](const std::string& key, const std::string& raw, bool is_string) {
      (void)is_string;
      if (key == "id") {
        job.id = raw;
      } else if (key == "sequence") {
        job.sequence = json_to_u64(key, raw);
      } else if (key == "priority") {
        job.priority = json_to_int(key, raw);
      } else if (key == "state") {
        job.state = parse_job_state(raw);
      } else if (key == "runs") {
        job.runs = json_to_int(key, raw);
      } else if (key == "run_order") {
        job.run_order = json_to_int(key, raw);
      } else if (key == "error") {
        job.error = raw;
      } else {
        throw ConfigError("queue job: unknown key '" + key + "'");
      }
    });
  } catch (const Error&) {
    return std::nullopt;  // torn or foreign record: invisible, never claimable
  }
  if (job.id.empty()) job.id = fs::path(dir).filename().string();
  fill_paths(job, dir);
  job.cancel_requested = fs::exists(dir + "/cancel.flag");
  return job;
}

std::vector<JobRecord> JobQueue::list() const {
  std::vector<JobRecord> jobs;
  for (const auto& entry : fs::directory_iterator(jobs_dir())) {
    if (!entry.is_directory()) continue;
    if (std::optional<JobRecord> job = read_job(entry.path().string())) {
      jobs.push_back(std::move(*job));
    }
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.sequence < b.sequence; });
  return jobs;
}

std::optional<JobRecord> JobQueue::find(const std::string& id) const {
  if (id.empty() || id.find('/') != std::string::npos) return std::nullopt;
  return read_job(jobs_dir() + "/" + id);
}

bool JobQueue::cancel(const std::string& id) {
  const std::optional<JobRecord> job = find(id);
  if (!job || job->terminal()) return false;
  if (!write_file_atomic(job->dir + "/cancel.flag", "cancel\n")) {
    throw Error("queue: cannot write " + job->dir + "/cancel.flag");
  }
  count_metric("queue.jobs.cancel_requested");
  emit_job_event("cancel_request", *job);
  return true;
}

bool JobQueue::cancel_requested(const JobRecord& job) const {
  return fs::exists(job.dir + "/cancel.flag");
}

JobProgress JobQueue::progress(const JobRecord& job) const {
  const CampaignSpec spec = load_spec(job);
  JobProgress progress;
  progress.cases_total = make_campaign(spec)->case_count();
  const std::map<std::uint32_t, std::string> merged = scan_checkpoint_dir(job.checkpoint_dir);
  for (const auto& [index, payload] : merged) {
    (void)payload;
    if (index < progress.cases_total) ++progress.cases_done;
  }
  progress.shards.reserve(static_cast<std::size_t>(spec.shards));
  for (int i = 0; i < spec.shards; ++i) {
    JobProgress::Shard shard;
    shard.index = i;
    shard.range = shard_case_range(progress.cases_total, i, spec.shards);
    shard.done = count_in_range(merged, shard.range);
    progress.shards.push_back(shard);
  }
  return progress;
}

CampaignSpec JobQueue::load_spec(const JobRecord& job) const {
  const std::optional<std::string> text = read_text_file(job.spec_path);
  if (!text) throw ConfigError("queue: cannot read " + job.spec_path);
  return parse_campaign_spec(*text);
}

std::optional<std::string> JobQueue::report(const JobRecord& job) const {
  return read_text_file(job.report_path);
}

void JobQueue::mark(JobRecord& job, JobState state, const std::string& error) {
  job.state = state;
  job.error = error;
  write_job(job);
}

void JobQueue::claim(JobRecord& job, long long run_order) {
  job.state = JobState::Running;
  ++job.runs;
  if (job.run_order < 0) job.run_order = run_order;
  write_job(job);
}

std::vector<JobRecord> JobQueue::claimable(const std::vector<std::string>& exclude) const {
  std::vector<JobRecord> ready;
  for (JobRecord& job : list()) {
    const bool mine = std::find(exclude.begin(), exclude.end(), job.id) != exclude.end();
    if (job.state == JobState::Queued || (job.state == JobState::Running && !mine)) {
      ready.push_back(std::move(job));
    }
  }
  std::sort(ready.begin(), ready.end(), claim_order_less);
  return ready;
}

long long JobQueue::max_run_order() const {
  long long max_order = -1;
  for (const JobRecord& job : list()) max_order = std::max(max_order, job.run_order);
  return max_order;
}

void JobQueue::write_progress(const JobRecord& job, const std::vector<ShardStatus>& shards,
                              int slots_in_use, int slots_capacity) const {
  const std::map<std::uint32_t, std::string> merged = scan_checkpoint_dir(job.checkpoint_dir);
  std::size_t total = 0;
  for (const ShardStatus& shard : shards) total = std::max(total, shard.range.end);
  std::size_t done = 0;
  for (const auto& [index, payload] : merged) {
    (void)payload;
    if (index < total) ++done;
  }

  // Fleet-wide context from the metrics snapshot (live workers and fresh
  // cases span every concurrent campaign sharing the pool).
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::instance().snapshot();
  double fleet_live = 0.0;
  std::uint64_t fleet_computed = 0;
  if (const obs::GaugeSnapshot* gauge = snapshot.find_gauge("service.shards.live")) {
    fleet_live = gauge->value;
  }
  if (const obs::CounterSnapshot* counter = snapshot.find_counter("service.cases.computed")) {
    fleet_computed = counter->value;
  }

  // Wall clock, not steady: external tooling compares the heartbeat to
  // its own clock to tell a slow job from a dead coordinator.
  const long long heartbeat_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                     std::chrono::system_clock::now().time_since_epoch())
                                     .count();

  // Windowed throughput: average the committed-case delta over a
  // trailing ~10 s of snapshots.  A chunked shard drain commits up to
  // chunk_lanes cases in one fsync burst, so the delta between adjacent
  // snapshots (250 ms apart) alternates between 0 and a whole chunk; the
  // window smooths the bursts into the true rate.
  constexpr double kRateWindowSeconds = 10.0;
  const std::chrono::steady_clock::time_point now = std::chrono::steady_clock::now();
  std::deque<ProgressSample>& window = rate_history_[job.id];
  window.push_back({done, now});
  while (window.size() > 2 &&
         std::chrono::duration<double>(now - window[1].at).count() >= kRateWindowSeconds) {
    window.pop_front();
  }
  double cases_per_s = -1.0;
  const ProgressSample& oldest = window.front();
  const double window_s = std::chrono::duration<double>(now - oldest.at).count();
  if (window_s > 0.0 && done >= oldest.cases_done) {
    cases_per_s = static_cast<double>(done - oldest.cases_done) / window_s;
  }

  std::ostringstream out;
  out << "{\n"
      << "  \"job\": \"" << json_escape(job.id) << "\",\n"
      << "  \"state\": \"" << to_string(job.state) << "\",\n"
      << "  \"heartbeat_unix_ms\": " << heartbeat_ms << ",\n"
      << "  \"cases_total\": " << total << ",\n"
      << "  \"cases_done\": " << done << ",\n";
  if (cases_per_s >= 0.0) {
    char rate_buf[32];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.3f", cases_per_s);
    out << "  \"cases_per_s\": " << rate_buf << ",\n";
  }
  out
      << "  \"fleet_shards_live\": " << static_cast<long long>(fleet_live) << ",\n"
      << "  \"fleet_cases_computed\": " << fleet_computed << ",\n"
      << "  \"fleet_slots_in_use\": " << slots_in_use << ",\n"
      << "  \"fleet_slots_capacity\": " << slots_capacity << ",\n"
      << "  \"shards\": " << shards.size();
  // Flat numeric keys per shard so FlatJsonParser consumers (`top`) read
  // them without string-splitting.
  for (const ShardStatus& shard : shards) {
    const std::string prefix = "\n  \"shard_" + std::to_string(shard.index) + "_";
    out << "," << prefix << "begin\": " << shard.range.begin
        << "," << prefix << "end\": " << shard.range.end
        << "," << prefix << "done\": " << count_in_range(merged, shard.range)
        << "," << prefix << "spawns\": " << shard.spawns
        << "," << prefix << "restarts\": " << shard.restarts
        << "," << prefix << "timeouts\": " << shard.timeouts;
  }
  out << "\n}\n";
  write_file_atomic(job.progress_path, out.str());  // best-effort stream
}

void JobQueue::write_job(const JobRecord& job) const {
  std::ostringstream out;
  out << "{\n"
      << "  \"id\": \"" << json_escape(job.id) << "\",\n"
      << "  \"sequence\": " << job.sequence << ",\n"
      << "  \"priority\": " << job.priority << ",\n"
      << "  \"state\": \"" << to_string(job.state) << "\",\n"
      << "  \"runs\": " << job.runs << ",\n"
      << "  \"run_order\": " << job.run_order << ",\n"
      << "  \"error\": \"" << json_escape(job.error) << "\"\n"
      << "}\n";
  if (!write_file_atomic(job.dir + "/job.json", out.str())) {
    throw Error("queue: cannot write " + job.dir + "/job.json");
  }
}

QueueCoordinatorResult run_queue_coordinator(JobQueue& queue,
                                             const QueueCoordinatorOptions& options) {
  struct ActiveJob {
    JobRecord job;
    std::unique_ptr<CampaignSupervisor> supervisor;
    Clock::time_point last_progress{};
  };

  ScopedSignalCapture signals;
  ShardSlotPool slots(options.shard_slots);
  std::vector<ActiveJob> active;
  QueueCoordinatorResult result;
  long long next_run_order = queue.max_run_order() + 1;
  const int max_jobs = std::max(1, options.max_parallel_jobs);
  const auto progress_period =
      std::chrono::milliseconds(std::max(0, options.progress_every_ms));

  const auto note = [&options](const JobRecord& job, const char* what,
                               const std::string& detail = "") {
    if (!options.verbose) return;
    std::fprintf(stderr, "[queue] job %s %s%s%s\n", job.id.c_str(), what,
                 detail.empty() ? "" : ": ", detail.c_str());
  };
  const auto settle = [&queue, &result, &note](JobRecord& job, JobState state,
                                               const std::string& error) {
    queue.mark(job, state, error);
    switch (state) {
      case JobState::Done:
        ++result.jobs_done;
        count_metric("queue.jobs.completed");
        emit_job_event("done", job);
        note(job, "done");
        break;
      case JobState::Failed:
        ++result.jobs_failed;
        count_metric("queue.jobs.failed");
        emit_job_event("failed", job);
        note(job, "failed", error);
        break;
      default:
        ++result.jobs_cancelled;
        count_metric("queue.jobs.cancelled");
        emit_job_event("cancelled", job);
        note(job, "cancelled");
        break;
    }
  };

  while (true) {
    if (const int sig = signals.pending()) {
      // Leave every active job `running` on disk: it is a lease, and the
      // next coordinator resumes it from its checkpoints.
      for (ActiveJob& entry : active) {
        if (entry.supervisor) entry.supervisor->kill_all();
      }
      count_metric("queue.coordinator.interrupted");
      ScopedSignalCapture::exit_via(sig);
    }

    // Advance every active campaign by one supervision poll.
    for (auto it = active.begin(); it != active.end();) {
      ActiveJob& entry = *it;
      if (queue.cancel_requested(entry.job)) {
        entry.supervisor->kill_all();
        entry.supervisor.reset();
        settle(entry.job, JobState::Cancelled, "");
        it = active.erase(it);
        continue;
      }
      bool finished = false;
      try {
        finished = entry.supervisor->step();
      } catch (const std::exception& e) {
        entry.supervisor.reset();  // destructor reaps any live workers
        settle(entry.job, JobState::Failed, e.what());
        it = active.erase(it);
        continue;
      }
      const auto now = Clock::now();
      if (finished || now - entry.last_progress >= progress_period) {
        entry.last_progress = now;
        queue.write_progress(entry.job, entry.supervisor->shard_statuses(), slots.in_use(),
                             slots.capacity());
      }
      if (finished) {
        try {
          const ServiceResult service = entry.supervisor->finish();
          if (service.degraded()) {
            settle(entry.job, JobState::Failed,
                   std::to_string(service.cases_failed) +
                       " cases degraded to SimulationError");
          } else {
            settle(entry.job, JobState::Done, "");
          }
        } catch (const std::exception& e) {
          settle(entry.job, JobState::Failed, e.what());
        }
        it = active.erase(it);
        continue;
      }
      ++it;
    }

    // Claim new work in (priority desc, submit order) while slots allow.
    std::vector<std::string> mine;
    mine.reserve(active.size());
    for (const ActiveJob& entry : active) mine.push_back(entry.job.id);
    std::vector<JobRecord> ready = queue.claimable(mine);
    int queued_depth = 0;
    for (const JobRecord& job : ready) {
      if (job.state == JobState::Queued) ++queued_depth;
    }
    for (JobRecord& job : ready) {
      if (static_cast<int>(active.size()) >= max_jobs) break;
      const bool was_queued = job.state == JobState::Queued;
      if (job.cancel_requested) {
        settle(job, JobState::Cancelled, "");
        if (was_queued) --queued_depth;
        continue;
      }
      const bool resumed = job.runs > 0;
      const long long before = job.run_order;
      queue.claim(job, next_run_order);
      if (before < 0) ++next_run_order;
      count_metric("queue.jobs.claimed");
      if (resumed) count_metric("queue.jobs.resumed");
      emit_job_event(resumed ? "resume" : "claim", job);
      note(job, resumed ? "resumed" : "claimed");
      if (was_queued) --queued_depth;

      ServiceOptions service_options;
      service_options.worker_exe = options.worker_exe;
      service_options.poll_ms = options.poll_ms;
      service_options.verbose = options.verbose;
      try {
        const CampaignSpec spec = queue.load_spec(job);
        ActiveJob entry;
        entry.job = job;
        entry.supervisor = std::make_unique<CampaignSupervisor>(spec, service_options, &slots);
        entry.last_progress = Clock::now();
        queue.write_progress(entry.job, entry.supervisor->shard_statuses(), slots.in_use(),
                             slots.capacity());
        active.push_back(std::move(entry));
      } catch (const std::exception& e) {
        settle(job, JobState::Failed, e.what());
      }
    }

    gauge_set("queue.depth", static_cast<double>(std::max(0, queued_depth)));
    gauge_set("queue.jobs.running", static_cast<double>(active.size()));

    if (active.empty()) {
      if (options.drain_and_exit) {
        bool open_jobs = false;
        for (const JobRecord& job : queue.list()) {
          if (!job.terminal()) {
            open_jobs = true;
            break;
          }
        }
        if (!open_jobs) break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(std::max(1, options.poll_ms)));
  }

  gauge_set("queue.jobs.running", 0.0);
  return result;
}

}  // namespace lcosc::service
