// Crash-resilient sharded campaign coordinator.
//
// run_campaign_service() splits a campaign's case range contiguously
// across `spec.shards` worker subprocesses (fork/exec of the same binary
// in --lcosc-shard mode), supervises them with per-shard wall timeouts
// and a bounded exponential-backoff restart budget, and merges the
// per-shard checkpoint streams into the final report in case-index
// order.  The report is byte-identical for any shard count, any kill or
// resume schedule, and any restart count (DESIGN.md §13); a shard that
// exhausts its restart budget degrades gracefully -- its undelivered
// cases become SimulationError rows instead of aborting the run.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "service/spec.h"

namespace lcosc::service {

// Contiguous case range [begin, end) of one shard.
struct CaseRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const CaseRange&, const CaseRange&) = default;
};

// Deterministic contiguous split: ranges cover [0, total) in order, and
// sizes differ by at most one.
[[nodiscard]] CaseRange shard_case_range(std::size_t total, int shard_index, int shard_count);

struct ShardStatus {
  int index = 0;
  CaseRange range{};
  int spawns = 0;
  int restarts = 0;
  int timeouts = 0;
  int last_exit_code = 0;
  bool ok = false;                // delivered (or inherited) all its cases
  std::size_t cases_computed = 0;  // fresh records this run
  double active_seconds = 0.0;     // summed subprocess lifetimes
};

struct ServiceResult {
  std::string report;
  std::size_t cases_total = 0;
  std::size_t cases_resumed = 0;  // replayed from pre-existing checkpoints
  std::size_t cases_failed = 0;   // synthesized SimulationError rows
  std::vector<ShardStatus> shards;

  // True when a permanently-failed shard forced synthesized rows.
  [[nodiscard]] bool degraded() const { return cases_failed > 0; }
};

struct ServiceOptions {
  // Binary re-exec'd in --lcosc-shard mode; empty = this binary
  // (/proc/self/exe).  Its main() must call maybe_run_shard() first.
  std::string worker_exe;
  int poll_ms = 20;      // supervision poll period
  bool verbose = false;  // stream shard lifecycle lines to stderr
};

// Coordinator entry.  Requires spec.checkpoint_dir; re-running with the
// same directory resumes (checkpointed cases are never recomputed).
// Writes the report to spec.report_path (atomically) when set.
[[nodiscard]] ServiceResult run_campaign_service(const CampaignSpec& spec,
                                                 const ServiceOptions& options = {});

// Worker-mode guard: when argv carries --lcosc-shard, runs that shard to
// completion and returns the process exit code; std::nullopt otherwise.
// Call first thing in main() of any binary used as a coordinator.
[[nodiscard]] std::optional<int> maybe_run_shard(int argc, char** argv);

// In-process body of one shard (exposed for tests): runs the cases of
// shard `shard_index` of `shard_count` not already present in any
// checkpoint of spec.checkpoint_dir, appending to this shard's stream.
void run_shard(const CampaignSpec& spec, int shard_index, int shard_count);

}  // namespace lcosc::service
