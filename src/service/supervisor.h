// Crash-resilient sharded campaign coordinator.
//
// CampaignSupervisor splits a campaign's case range contiguously across
// `spec.shards` worker subprocesses (fork/exec of the same binary in
// --lcosc-shard mode), supervises them with per-shard wall timeouts and
// a bounded exponential-backoff restart budget, and merges the per-shard
// checkpoint streams into the final report in case-index order.  The
// report is byte-identical for any shard count, any kill or resume
// schedule, and any restart count (DESIGN.md §13); a shard that exhausts
// its restart budget degrades gracefully -- its undelivered cases become
// SimulationError rows instead of aborting the run.
//
// The supervisor is a stepping state machine, not a blocking loop: each
// step() performs one supervision poll (reap exits, enforce timeouts,
// spawn pending shards as the shared ShardSlotPool grants capacity).
// run_campaign_service() drives one supervisor to completion; the job
// queue (service/queue.h) steps many supervisors against one slot pool
// so concurrent campaigns share the worker fleet.
#pragma once

#include <sys/resource.h>
#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/spec.h"

namespace lcosc {
class ShardableCampaign;
}

namespace lcosc::service {

// Contiguous case range [begin, end) of one shard.
struct CaseRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const CaseRange&, const CaseRange&) = default;
};

// Deterministic contiguous split: ranges cover [0, total) in order, and
// sizes differ by at most one.
[[nodiscard]] CaseRange shard_case_range(std::size_t total, int shard_index, int shard_count);

struct ShardStatus {
  int index = 0;
  CaseRange range{};
  int spawns = 0;
  int restarts = 0;
  int timeouts = 0;
  int last_exit_code = 0;
  bool ok = false;                // delivered (or inherited) all its cases
  std::size_t cases_computed = 0;  // fresh records this run
  double active_seconds = 0.0;     // summed subprocess lifetimes
};

struct ServiceResult {
  std::string report;
  std::size_t cases_total = 0;
  std::size_t cases_resumed = 0;  // replayed from pre-existing checkpoints
  std::size_t cases_failed = 0;   // synthesized SimulationError rows
  std::vector<ShardStatus> shards;

  // True when a permanently-failed shard forced synthesized rows.
  [[nodiscard]] bool degraded() const { return cases_failed > 0; }
};

struct ServiceOptions {
  // Binary re-exec'd in --lcosc-shard mode; empty = this binary
  // (/proc/self/exe).  Its main() must call maybe_run_shard() first.
  std::string worker_exe;
  int poll_ms = 20;      // supervision poll period
  bool verbose = false;  // stream shard lifecycle lines to stderr
};

// Global cap on live shard subprocesses.  Supervisors acquire one slot
// per spawned worker and release it when the worker is reaped, so
// concurrent campaigns stepping against the same pool share a bounded
// worker fleet.  capacity <= 0 means unlimited.
class ShardSlotPool {
 public:
  explicit ShardSlotPool(int capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] bool try_acquire() {
    if (capacity_ > 0 && in_use_ >= capacity_) return false;
    ++in_use_;
    return true;
  }
  void release() {
    if (in_use_ > 0) --in_use_;
  }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int in_use() const { return in_use_; }

 private:
  int capacity_ = 0;
  int in_use_ = 0;
};

// One campaign's supervision state machine.  Construction validates the
// checkpoint directory (spec signature match), persists the effective
// spec, and seeds the resume set; step() then advances supervision one
// poll at a time until every shard is terminal, and finish() merges the
// checkpoint streams into the final report.  The destructor SIGKILLs and
// reaps any still-live workers, so a supervisor abandoned mid-run (error
// unwind, coordinator shutdown) never leaks subprocesses.
class CampaignSupervisor {
 public:
  // `slots` bounds concurrent worker spawns across supervisors; nullptr
  // runs unconstrained.  The pool must outlive the supervisor.
  CampaignSupervisor(const CampaignSpec& spec, const ServiceOptions& options = {},
                     ShardSlotPool* slots = nullptr);
  ~CampaignSupervisor();

  CampaignSupervisor(const CampaignSupervisor&) = delete;
  CampaignSupervisor& operator=(const CampaignSupervisor&) = delete;

  // One supervision poll: reap exited workers, SIGKILL the timed-out,
  // spawn pending/backed-off shards as the slot pool allows.  Returns
  // true once every shard is terminal (Done or Failed).
  bool step();
  [[nodiscard]] bool finished() const;

  // SIGKILL and reap every live worker (releasing their slots).  The
  // shards stay resumable: a later run inherits their checkpoints.
  void kill_all();

  // Merge all checkpointed records in case-index order, synthesize
  // SimulationError rows for cases no shard delivered, render the report
  // and (when spec.report_path is set) write it atomically.  Call after
  // step() returns true (or after kill_all() for a partial result).
  [[nodiscard]] ServiceResult finish();

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t case_count() const { return total_; }
  // Live per-shard status (ranges, spawns, restarts, timeouts).
  [[nodiscard]] std::vector<ShardStatus> shard_statuses() const;

 private:
  enum class ShardPhase { Pending, Running, Backoff, Done, Failed };

  struct ShardRuntime {
    ShardStatus status;
    ShardPhase phase = ShardPhase::Pending;
    pid_t pid = -1;
    bool holds_slot = false;
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point next_spawn{};
    std::size_t checkpoint_records_before = 0;
    // Worker stderr capture: nonblocking read end of the worker's stderr
    // pipe, drained each poll into a bounded tail for forensics.
    int stderr_fd = -1;
    std::string stderr_tail;
  };

  void step_spawn(ShardRuntime& shard, std::chrono::steady_clock::time_point now);
  void step_running(ShardRuntime& shard, std::chrono::steady_clock::time_point now);
  void release_slot(ShardRuntime& shard);
  void drain_stderr(ShardRuntime& shard);
  void close_stderr(ShardRuntime& shard);
  // One forensics.jsonl row per worker exit (exit/crash/timeout/shutdown/
  // spawn_error): decoded status, rusage, last checkpoint index, stderr
  // tail.  Always on -- forensics never touches the report bytes.
  void record_forensics(const ShardRuntime& shard, const char* event, int exit_code,
                        int signal, double wall_s, const struct ::rusage* usage) const;
  void note(const char* fmt, int shard, long long a = 0, long long b = 0) const;

  CampaignSpec spec_;
  ServiceOptions options_;
  ShardSlotPool* slots_ = nullptr;
  ShardSlotPool unbounded_{0};
  std::unique_ptr<ShardableCampaign> campaign_;
  std::size_t total_ = 0;
  std::string exe_;
  std::string spec_path_;
  std::size_t cases_resumed_ = 0;
  std::vector<ShardRuntime> shards_;
};

// Scoped SIGINT/SIGTERM capture for coordinator loops.  The handler
// records the signal; the loop polls pending() and shuts its workers
// down before dying.  Without this, killing a coordinator orphans its
// fork/exec'd shard workers (they keep running and writing checkpoints
// with nobody left to reap or merge them).  The destructor restores the
// previous handlers.
class ScopedSignalCapture {
 public:
  ScopedSignalCapture();
  ~ScopedSignalCapture();

  ScopedSignalCapture(const ScopedSignalCapture&) = delete;
  ScopedSignalCapture& operator=(const ScopedSignalCapture&) = delete;

  // Signal number received since construction, or 0.
  [[nodiscard]] int pending() const;

  // Restore the default disposition and re-raise `sig`, so the process
  // exits with the conventional signal status.  Call after worker
  // cleanup; does not return.
  [[noreturn]] static void exit_via(int sig);
};

// Coordinator entry.  Requires spec.checkpoint_dir; re-running with the
// same directory resumes (checkpointed cases are never recomputed).
// Writes the report to spec.report_path (atomically) when set.  SIGINT/
// SIGTERM during supervision kill and reap all live shard workers before
// the signal is re-raised, so no subprocess outlives the coordinator.
[[nodiscard]] ServiceResult run_campaign_service(const CampaignSpec& spec,
                                                 const ServiceOptions& options = {});

// Worker-mode guard: when argv carries --lcosc-shard, runs that shard to
// completion and returns the process exit code; std::nullopt otherwise.
// Call first thing in main() of any binary used as a coordinator.  The
// optional --lcosc-shard-attempt N (1-based spawn number, default 1)
// names this attempt's telemetry flush files so a restarted worker never
// overwrites what a killed predecessor already flushed (DESIGN.md §15).
[[nodiscard]] std::optional<int> maybe_run_shard(int argc, char** argv);

// In-process body of one shard (exposed for tests): runs the cases of
// shard `shard_index` of `shard_count` not already present in any
// checkpoint of spec.checkpoint_dir, appending to this shard's stream.
void run_shard(const CampaignSpec& spec, int shard_index, int shard_count);

}  // namespace lcosc::service
