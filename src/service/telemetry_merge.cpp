#include "service/telemetry_merge.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/atomic_file.h"
#include "obs/snapshot_io.h"
#include "obs/span_tracer.h"
#include "service/checkpoint.h"
#include "service/flat_json.h"

namespace lcosc::service {

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

// "shard_<i>_of_<n>.a<k>" + suffix; returns false for anything else.
struct ShardFileName {
  int shard = -1;
  int count = -1;
  int attempt = -1;
};

bool parse_shard_file(const std::string& name, std::string_view suffix, ShardFileName& out) {
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  int consumed = 0;
  if (std::sscanf(name.c_str(), "shard_%d_of_%d.a%d%n", &out.shard, &out.count,
                  &out.attempt, &consumed) != 3) {
    return false;
  }
  return static_cast<std::size_t>(consumed) + suffix.size() == name.size() &&
         out.shard >= 0 && out.count >= 1 && out.attempt >= 1;
}

// Shard flush files under `dir` with the given suffix, sorted in
// numeric-aware name order (shard 2 before shard 10, attempt order
// within a shard) so concatenated artifacts are deterministic.
std::vector<std::pair<ShardFileName, std::string>> shard_files(const std::string& dir,
                                                               std::string_view suffix) {
  std::vector<std::pair<ShardFileName, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    ShardFileName parsed;
    if (parse_shard_file(name, suffix, parsed)) out.emplace_back(parsed, entry.path().string());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return numeric_name_less(a.second, b.second);
  });
  return out;
}

void append_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  out << v;
}

}  // namespace

std::string telemetry_dir(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/telemetry";
}

std::string shard_telemetry_base(int shard_index, int shard_count, int attempt) {
  return "shard_" + std::to_string(shard_index) + "_of_" + std::to_string(shard_count) +
         ".a" + std::to_string(attempt);
}

bool is_wall_metric(std::string_view name) {
  constexpr std::string_view kSuffix = ".wall_ms";
  return name.size() >= kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0;
}

// --- TelemetryFlusher ------------------------------------------------------

TelemetryFlusher::TelemetryFlusher(const std::string& dir, const std::string& base,
                                   std::chrono::milliseconds period)
    : metrics_path_(dir + "/" + base + ".metrics.json"),
      trace_path_(dir + "/" + base + ".trace.jsonl"),
      metrics_on_(obs::metrics_enabled()),
      trace_on_(obs::trace_enabled()) {
  if (!metrics_on_ && !trace_on_) return;
  if (period.count() <= 0) return;
  thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      lock.unlock();
      flush_now();
      lock.lock();
    }
  });
}

TelemetryFlusher::~TelemetryFlusher() {
  if (thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  flush_now();  // at-exit flush: the authoritative full snapshot
}

void TelemetryFlusher::flush_now() {
  if (metrics_on_) {
    obs::write_metrics_snapshot_json(obs::MetricsRegistry::instance().snapshot(),
                                     metrics_path_);
  }
  if (trace_on_) {
    obs::write_trace_jsonl(obs::trace_snapshot(), trace_path_);
  }
}

// --- crash forensics -------------------------------------------------------

std::string forensics_path(const std::string& checkpoint_dir) {
  return telemetry_dir(checkpoint_dir) + "/forensics.jsonl";
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    default: return "signal_" + std::to_string(sig);
  }
}

bool append_forensics_row(const std::string& path, const ForensicsRow& row) {
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  std::ostringstream line;
  line << "{\"ts_unix_ms\": " << row.ts_unix_ms << ", \"shard\": " << row.shard
       << ", \"attempt\": " << row.attempt << ", \"pid\": " << row.pid << ", \"event\": \""
       << json_escape(row.event) << "\", \"exit_code\": " << row.exit_code
       << ", \"signal\": " << row.signal << ", \"signal_name\": \""
       << json_escape(row.signal == 0 ? std::string() : signal_name(row.signal))
       << "\", \"wall_s\": ";
  append_number(line, row.wall_s);
  line << ", \"cpu_user_s\": ";
  append_number(line, row.cpu_user_s);
  line << ", \"cpu_sys_s\": ";
  append_number(line, row.cpu_sys_s);
  line << ", \"max_rss_kb\": " << row.max_rss_kb
       << ", \"last_checkpoint_index\": " << row.last_checkpoint_index
       << ", \"checkpoint_records\": " << row.checkpoint_records << ", \"stderr_tail\": \""
       << json_escape(row.stderr_tail) << "\"}\n";
  const std::string text = line.str();

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  // One write per row: concurrent appenders never interleave (O_APPEND),
  // and a crash mid-write loses at most this row's tail.
  const ::ssize_t n = ::write(fd, text.data(), text.size());
  ::close(fd);
  return n == static_cast<::ssize_t>(text.size());
}

// --- fleet merge -----------------------------------------------------------

FleetTelemetry merge_fleet_metrics(const std::string& dir) {
  FleetTelemetry out;
  std::vector<obs::MetricsSnapshot> deterministic;
  std::vector<obs::MetricsSnapshot> wall;
  for (const auto& [parsed, path] : shard_files(dir, ".metrics.json")) {
    (void)parsed;
    std::string text;
    obs::MetricsSnapshot snap;
    if (!read_file(path, text) || !obs::parse_metrics_snapshot(text, snap)) continue;
    ++out.metrics_files;
    obs::MetricsSnapshot det;
    obs::MetricsSnapshot wall_part;
    det.counters = std::move(snap.counters);
    for (obs::HistogramSnapshot& h : snap.histograms) {
      (is_wall_metric(h.name) ? wall_part : det).histograms.push_back(std::move(h));
    }
    deterministic.push_back(std::move(det));
    wall.push_back(std::move(wall_part));
  }
  out.metrics = obs::merge_metrics_snapshots(deterministic);
  out.wall_histograms = obs::merge_metrics_snapshots(wall).histograms;
  return out;
}

int write_fleet_trace(const std::string& dir, const std::string& out_path) {
  std::map<int, obs::FleetTraceProcess> processes;
  int files = 0;
  for (const auto& [parsed, path] : shard_files(dir, ".trace.jsonl")) {
    std::string text;
    if (!read_file(path, text)) continue;
    std::vector<obs::TraceEventRecord> events;
    if (!obs::parse_trace_jsonl(text, events)) continue;
    ++files;
    obs::FleetTraceProcess& proc = processes[parsed.shard];
    if (proc.name.empty()) {
      proc.pid = parsed.shard;
      proc.name = "shard " + std::to_string(parsed.shard) + " of " +
                  std::to_string(parsed.count);
    }
    proc.events.insert(proc.events.end(), std::make_move_iterator(events.begin()),
                       std::make_move_iterator(events.end()));
  }
  if (files == 0) return 0;
  std::vector<obs::FleetTraceProcess> list;
  list.reserve(processes.size());
  for (auto& [shard, proc] : processes) list.push_back(std::move(proc));
  if (!obs::write_fleet_chrome_trace(std::move(list), out_path)) return 0;
  return files;
}

int merge_fleet_events(const std::string& dir, const std::string& out_path) {
  std::string merged;
  int files = 0;
  for (const auto& [parsed, path] : shard_files(dir, ".events.jsonl")) {
    (void)parsed;
    std::string text;
    if (!read_file(path, text)) continue;
    ++files;
    if (text.empty()) continue;
    if (text.back() != '\n') {
      // Torn tail from a killed writer: drop the incomplete last line.
      const std::size_t cut = text.find_last_of('\n');
      text = cut == std::string::npos ? std::string() : text.substr(0, cut + 1);
    }
    merged += text;
  }
  if (files == 0) return 0;
  if (!write_file_atomic(out_path, merged)) return 0;
  return files;
}

bool write_fleet_summary(const std::string& path, const FleetSummaryInfo& info,
                         const FleetTelemetry& telemetry) {
  int spawns = 0;
  int restarts = 0;
  int timeouts = 0;
  std::size_t cases_computed = 0;
  double active_seconds = 0.0;
  for (const ShardSummary& shard : info.per_shard) {
    spawns += shard.spawns;
    restarts += shard.restarts;
    timeouts += shard.timeouts;
    cases_computed += shard.cases_computed;
    active_seconds += shard.active_seconds;
  }

  std::ostringstream out;
  out << "{\n"
      << "  \"campaign\": \"" << json_escape(info.campaign) << "\",\n"
      << "  \"cases_total\": " << info.cases_total << ",\n"
      << "  \"cases_resumed\": " << info.cases_resumed << ",\n"
      << "  \"cases_failed\": " << info.cases_failed << ",\n"
      << "  \"shards\": " << info.shards << ",\n"
      << "  \"fleet\": {\"spawns\": " << spawns << ", \"restarts\": " << restarts
      << ", \"timeouts\": " << timeouts << ", \"cases_computed\": " << cases_computed
      << ", \"active_seconds\": ";
  append_number(out, active_seconds);
  out << ", \"cases_per_s\": ";
  append_number(out, active_seconds > 0.0
                         ? static_cast<double>(cases_computed) / active_seconds
                         : std::numeric_limits<double>::quiet_NaN());
  out << "},\n  \"per_shard\": [";
  for (std::size_t i = 0; i < info.per_shard.size(); ++i) {
    const ShardSummary& shard = info.per_shard[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"shard\": " << shard.index
        << ", \"begin\": " << shard.begin << ", \"end\": " << shard.end
        << ", \"spawns\": " << shard.spawns << ", \"restarts\": " << shard.restarts
        << ", \"timeouts\": " << shard.timeouts
        << ", \"cases_computed\": " << shard.cases_computed << ", \"active_seconds\": ";
    append_number(out, shard.active_seconds);
    out << ", \"ok\": " << (shard.ok ? "true" : "false") << "}";
  }
  out << (info.per_shard.empty() ? "" : "\n  ") << "],\n";

  // Wall-clock latency histograms: excluded from the deterministic
  // metrics.json merge, reported here with interpolated percentiles.
  out << "  \"latency\": {";
  for (std::size_t i = 0; i < telemetry.wall_histograms.size(); ++i) {
    const obs::HistogramSnapshot& h = telemetry.wall_histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
        << "\": {\"count\": " << h.count << ", \"min\": ";
    append_number(out, h.count > 0 ? h.min : std::numeric_limits<double>::quiet_NaN());
    out << ", \"max\": ";
    append_number(out, h.count > 0 ? h.max : std::numeric_limits<double>::quiet_NaN());
    out << ", \"p50\": ";
    append_number(out, obs::histogram_quantile(h, 0.50));
    out << ", \"p95\": ";
    append_number(out, obs::histogram_quantile(h, 0.95));
    out << ", \"p99\": ";
    append_number(out, obs::histogram_quantile(h, 0.99));
    out << "}";
  }
  out << (telemetry.wall_histograms.empty() ? "" : "\n  ") << "},\n";

  out << "  \"telemetry\": {\"metrics_files\": " << telemetry.metrics_files
      << ", \"trace_files\": " << telemetry.trace_files
      << ", \"event_files\": " << telemetry.event_files << "}\n}\n";
  return write_file_atomic(path, out.str());
}

bool merge_fleet_telemetry(const std::string& checkpoint_dir, const FleetSummaryInfo& info) {
  const std::string dir = telemetry_dir(checkpoint_dir);
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return false;

  FleetTelemetry telemetry = merge_fleet_metrics(dir);
  telemetry.trace_files = write_fleet_trace(dir, dir + "/trace.json");
  telemetry.event_files = merge_fleet_events(dir, dir + "/events.jsonl");
  if (telemetry.metrics_files == 0 && telemetry.trace_files == 0 &&
      telemetry.event_files == 0) {
    return false;  // telemetry was off: leave no artifacts behind
  }
  if (telemetry.metrics_files > 0) {
    obs::write_metrics_snapshot_json(telemetry.metrics, dir + "/metrics.json");
  }
  write_fleet_summary(dir + "/summary.json", info, telemetry);
  return true;
}

}  // namespace lcosc::service
