#include "service/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/error.h"

namespace lcosc::service {

namespace {

// Sanity bound on one record: a length field above this is treated as
// corruption (it would otherwise make the reader attempt a huge
// allocation from a few flipped bits).
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

constexpr std::size_t kHeaderBytes = 12;  // len + index + crc

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v & 0xFF);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFF);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xFF);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

// CRC covers the index field and the payload, so a bit flip in either is
// caught; the length field is implicitly validated by frame alignment
// (a wrong length misplaces the payload under the CRC, which then fails).
std::uint32_t frame_crc(std::uint32_t index, std::string_view payload) {
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.resize(4);
  put_u32(reinterpret_cast<unsigned char*>(buf.data()), index);
  buf.append(payload.data(), payload.size());
  return crc32(buf.data(), buf.size());
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

bool numeric_name_less(std::string_view a, std::string_view b) {
  const auto is_digit = [](char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (is_digit(a[i]) && is_digit(b[j])) {
      // Compare the two digit runs by value: strip leading zeros, then a
      // longer run is larger, and equal-length runs compare bytewise.
      std::size_t ia = i;
      std::size_t jb = j;
      while (ia < a.size() && a[ia] == '0') ++ia;
      while (jb < b.size() && b[jb] == '0') ++jb;
      std::size_t ea = ia;
      std::size_t eb = jb;
      while (ea < a.size() && is_digit(a[ea])) ++ea;
      while (eb < b.size() && is_digit(b[eb])) ++eb;
      const std::string_view da = a.substr(ia, ea - ia);
      const std::string_view db = b.substr(jb, eb - jb);
      if (da.size() != db.size()) return da.size() < db.size();
      if (da != db) return da < db;
      i = ea;
      j = eb;
    } else {
      if (a[i] != b[j]) return a[i] < b[j];
      ++i;
      ++j;
    }
  }
  if (a.size() - i != b.size() - j) return a.size() - i < b.size() - j;
  // Numerically-equal names (leading zeros): bytewise compare keeps the
  // order total so a merge is deterministic for any directory layout.
  return a < b;
}

std::map<std::uint32_t, std::string> scan_checkpoint_dir(
    const std::string& dir, const std::function<bool(const std::string&)>& is_degraded) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".ckpt") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end(), [](const std::string& a, const std::string& b) {
    return numeric_name_less(a, b);
  });

  std::map<std::uint32_t, std::string> merged;
  for (const std::string& file : files) {
    for (CheckpointRecord& record : read_checkpoint(file).records) {
      const auto it = merged.find(record.index);
      if (it == merged.end()) {
        merged.emplace(record.index, std::move(record.payload));
      } else if (is_degraded && is_degraded(it->second) && !is_degraded(record.payload)) {
        it->second = std::move(record.payload);
      }
    }
  }
  return merged;
}

CheckpointReadResult read_checkpoint(const std::string& path) {
  CheckpointReadResult result;

  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // missing file: fresh shard, empty and clean
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  std::uint64_t pos = 0;
  while (bytes.size() - pos >= kHeaderBytes) {
    const std::uint32_t len = get_u32(data + pos);
    const std::uint32_t index = get_u32(data + pos + 4);
    const std::uint32_t crc = get_u32(data + pos + 8);
    if (len > kMaxPayloadBytes) break;                       // corrupt length
    if (bytes.size() - pos - kHeaderBytes < len) break;      // short read (torn tail)
    const std::string_view payload(bytes.data() + pos + kHeaderBytes, len);
    if (frame_crc(index, payload) != crc) break;             // CRC mismatch
    result.records.push_back({index, std::string(payload)});
    pos += kHeaderBytes + len;
  }
  result.valid_bytes = pos;
  result.clean = pos == bytes.size();
  return result;
}

CheckpointWriter::CheckpointWriter(std::string path) : path_(std::move(path)) {
  const std::filesystem::path target(path_);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }

  CheckpointReadResult prior = read_checkpoint(path_);
  existing_ = std::move(prior.records);

  // Discard a torn tail before appending: an O_APPEND write after a
  // partial record would otherwise leave the stream permanently
  // desynchronized at that offset.
  if (!prior.clean) {
    if (::truncate(path_.c_str(), static_cast<off_t>(prior.valid_bytes)) != 0) {
      throw Error("checkpoint: cannot truncate torn tail of " + path_ + ": " +
                  std::strerror(errno));
    }
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error("checkpoint: cannot open " + path_ + ": " + std::strerror(errno));
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void CheckpointWriter::append(std::uint32_t index, std::string_view payload) {
  LCOSC_REQUIRE(payload.size() <= kMaxPayloadBytes, "checkpoint record too large");

  std::string frame;
  frame.resize(kHeaderBytes);
  auto* header = reinterpret_cast<unsigned char*>(frame.data());
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  put_u32(header + 4, index);
  put_u32(header + 8, frame_crc(index, payload));
  frame.append(payload.data(), payload.size());

  // One write() per record: O_APPEND makes the offset atomic, so even a
  // superseded twin writer (coordinator killed and resumed while the old
  // worker drains) interleaves whole frames, never bytes.
  const char* data = frame.data();
  std::size_t remaining = frame.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("checkpoint: write to " + path_ + " failed: " + std::strerror(errno));
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw Error("checkpoint: fsync of " + path_ + " failed: " + std::strerror(errno));
  }
}

}  // namespace lcosc::service
