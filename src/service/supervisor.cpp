#include "service/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/campaign.h"
#include "common/error.h"
#include "common/parallel.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "service/adapters.h"
#include "service/checkpoint.h"
#include "service/telemetry_merge.h"

namespace lcosc::service {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string shard_checkpoint_path(const CampaignSpec& spec, int shard_index,
                                  int shard_count) {
  return spec.checkpoint_dir + "/shard_" + std::to_string(shard_index) + "_of_" +
         std::to_string(shard_count) + ".ckpt";
}

std::string spec_file_path(const CampaignSpec& spec) {
  return spec.checkpoint_dir + "/spec.json";
}

// All committed records in the checkpoint directory.  Scanning every
// *.ckpt (not just the current shard layout's files) lets a resume with
// a different shard count inherit all prior work: records carry absolute
// case indices, so the shard layout that produced them is irrelevant.
// Files merge in numeric-aware name order with real records preferred
// over degraded SimulationError rows (scan_checkpoint_dir).
std::map<std::uint32_t, std::string> scan_checkpoints(const std::string& dir,
                                                      const ShardableCampaign& campaign) {
  return scan_checkpoint_dir(
      dir, [&campaign](const std::string& record) { return campaign.is_error_record(record); });
}

void emit_shard_event(const char* action, int shard, long long pid, int detail = 0) {
  if (!obs::events_enabled()) return;
  obs::Event event("service.shard");
  event.str("action", action).integer("shard", shard).integer("pid", pid);
  if (detail != 0) event.integer("detail", detail);
}

void count_metric(const char* name, std::uint64_t delta = 1) {
  if (obs::metrics_enabled()) obs::MetricsRegistry::instance().counter(name).add(delta);
}

void live_gauge_add(double delta) {
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::instance().gauge("service.shards.live").add(delta);
  }
}

}  // namespace

CaseRange shard_case_range(std::size_t total, int shard_index, int shard_count) {
  LCOSC_REQUIRE(shard_count >= 1 && shard_index >= 0 && shard_index < shard_count,
                "shard index out of range");
  const auto count = static_cast<std::size_t>(shard_count);
  const auto index = static_cast<std::size_t>(shard_index);
  const std::size_t base = total / count;
  const std::size_t remainder = total % count;
  CaseRange range;
  range.begin = index * base + std::min(index, remainder);
  range.end = range.begin + base + (index < remainder ? 1 : 0);
  return range;
}

void run_shard(const CampaignSpec& spec, int shard_index, int shard_count) {
  LCOSC_REQUIRE(!spec.checkpoint_dir.empty(), "spec.checkpoint_dir is required");
  const std::unique_ptr<ShardableCampaign> campaign = make_campaign(spec);
  const CaseRange range = shard_case_range(campaign->case_count(), shard_index, shard_count);

  // Test hook: the first spawn of each shard wedges forever so the
  // coordinator's timeout -> SIGKILL -> restart path runs; the sentinel
  // disarms every later spawn.
  if (spec.test_stall_once) {
    const std::string sentinel =
        spec.checkpoint_dir + "/stall_" + std::to_string(shard_index) + ".flag";
    if (!fs::exists(sentinel)) {
      write_file_atomic(sentinel, "armed\n");
      while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }

  // Skip set: every case already committed by ANY checkpoint in the
  // directory (prior runs may have used a different shard count).
  const std::map<std::uint32_t, std::string> done =
      scan_checkpoints(spec.checkpoint_dir, *campaign);

  CheckpointWriter writer(shard_checkpoint_path(spec, shard_index, shard_count));

  std::vector<std::size_t> remaining;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    if (done.find(static_cast<std::uint32_t>(i)) == done.end()) remaining.push_back(i);
  }

  // Chunk-group drain (DESIGN.md §16): contiguous runs of missing cases,
  // cut at multiples of the campaign's chunk stride in GLOBAL case
  // index, drain through run_cases() -- the tolerance adapter advances a
  // whole group in one lockstep batched sweep instead of one simulator
  // per case.  Cutting at global boundaries keeps the lane grouping a
  // pure function of the case indices themselves, so the record bytes
  // cannot depend on the shard layout or on which cases a killed worker
  // had already committed.
  const std::size_t stride = std::max<std::size_t>(1, campaign->chunk_stride());
  struct CaseGroup {
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<CaseGroup> groups;
  for (std::size_t k = 0; k < remaining.size();) {
    const std::size_t first = remaining[k];
    const std::size_t boundary = (first / stride + 1) * stride;
    std::size_t count = 1;
    while (k + count < remaining.size() && remaining[k + count] == first + count &&
           first + count < boundary) {
      ++count;
    }
    groups.push_back({first, count});
    k += count;
  }

  std::mutex append_mutex;
  int fresh = 0;
  auto run_group = [&](std::size_t slot) {
    const CaseGroup group = groups[slot];
    const Clock::time_point group_start = Clock::now();
    const std::vector<std::string> records = campaign->run_cases(group.first, group.count);
    LCOSC_REQUIRE(records.size() == group.count, "run_cases returned a short batch");
    if (obs::metrics_enabled()) {
      // Wall-clock per-case latency; a chunked group is timed as a whole
      // and amortized evenly over its cases.  The ".wall_ms" suffix keeps
      // this histogram out of the deterministic fleet metrics.json merge;
      // the coordinator surfaces its p50/p95/p99 through summary.json.
      static const std::vector<double> bounds{0.5,  1,    2,    5,    10,   20,  50,
                                              100,  200,  500,  1000, 2000, 5000, 10000};
      const double per_case =
          std::chrono::duration<double, std::milli>(Clock::now() - group_start).count() /
          static_cast<double>(group.count);
      auto& histogram =
          obs::MetricsRegistry::instance().histogram("service.case.wall_ms", bounds);
      for (std::size_t c = 0; c < group.count; ++c) histogram.record(per_case);
    }
    {
      const std::lock_guard<std::mutex> lock(append_mutex);
      for (std::size_t c = 0; c < group.count; ++c) {
        writer.append(static_cast<std::uint32_t>(group.first + c), records[c]);
        count_metric("service.cases.computed");
        ++fresh;
        // Test hook: die abruptly (no atexit, like a kill -9 landing just
        // after the fsync) once this spawn has committed its quota --
        // possibly mid-group, leaving the chunk partially checkpointed.
        if (spec.test_kill_after_cases > 0 && fresh >= spec.test_kill_after_cases) {
          std::_Exit(137);
        }
      }
    }
    return 0;
  };

  const auto workers = static_cast<std::size_t>(std::max(0, spec.workers_per_shard));
  if (workers == 1 || groups.size() <= 1) {
    for (std::size_t slot = 0; slot < groups.size(); ++slot) run_group(slot);
  } else {
    // In-shard thread parallelism over chunk groups: append order becomes
    // completion order, which is safe -- records carry their case index,
    // and the merge step orders by index, never by file position.
    (void)parallel_map(groups.size(), run_group, workers);
  }
}

std::optional<int> maybe_run_shard(int argc, char** argv) {
  // Strict integer parse: '--lcosc-shard garbage' must fail loudly, not
  // silently become shard 0 and duplicate shard 0's work.
  auto parse_shard_int = [](const char* s) -> int {
    if (s == nullptr || *s == '\0') return -1;
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v < 0 || v > INT_MAX) return -1;
    return static_cast<int>(v);
  };
  int shard_index = -1;
  int shard_count = -1;
  int attempt = 1;
  std::string spec_path;
  bool is_shard = false;
  bool bad_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--lcosc-shard") {
      is_shard = true;
      shard_index = parse_shard_int(value());
      bad_value |= shard_index < 0;
    } else if (arg == "--lcosc-shard-count") {
      shard_count = parse_shard_int(value());
      bad_value |= shard_count < 0;
    } else if (arg == "--lcosc-spec") {
      if (const char* v = value()) spec_path = v;
    } else if (arg == "--lcosc-shard-attempt") {
      attempt = parse_shard_int(value());
      bad_value |= attempt < 1;
    }
  }
  if (!is_shard) return std::nullopt;

  try {
    if (bad_value || shard_index < 0 || shard_count < 1 || spec_path.empty()) {
      throw ConfigError("shard mode needs --lcosc-shard N --lcosc-shard-count M --lcosc-spec F");
    }
    std::ifstream in(spec_path);
    if (!in) throw ConfigError("cannot read spec file " + spec_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const CampaignSpec spec = parse_campaign_spec(buffer.str());

    // Per-shard telemetry (DESIGN.md §15): tag event lines with this
    // shard, re-route the event log into the job's telemetry directory
    // and flush metrics/trace snapshots periodically + at exit, so this
    // process's counters and spans survive _exit for the coordinator to
    // merge.  All of it is inert when the LCOSC_* toggles are off.
    obs::set_event_shard(shard_index);
    const std::string dir = telemetry_dir(spec.checkpoint_dir);
    const std::string base = shard_telemetry_base(shard_index, shard_count, attempt);
    if (obs::events_enabled()) obs::open_event_log(dir + "/" + base + ".events.jsonl");
    TelemetryFlusher flusher(dir, base);

    run_shard(spec, shard_index, shard_count);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcosc shard worker: %s\n", e.what());
    return 3;
  }
}

namespace {

std::string self_exe_path() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  LCOSC_REQUIRE(n > 0, "cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return buf;
}

struct SpawnedWorker {
  pid_t pid = -1;
  int stderr_fd = -1;   // nonblocking read end of the worker's stderr pipe
  int fork_errno = 0;   // errno of a failed fork (pid < 0)
};

SpawnedWorker spawn_worker(const std::string& exe, int shard_index, int shard_count,
                           const std::string& spec_path, int attempt) {
  SpawnedWorker out;
  // Give the worker its own stderr: several shards crashing or retrying
  // at once must not interleave on the coordinator's stderr.  The parent
  // drains the read end into a bounded tail (forensics + verbose
  // diagnostics).  A failed pipe() degrades to the inherited stderr.
  int fds[2] = {-1, -1};
  const bool piped = ::pipe(fds) == 0;
  const std::string idx = std::to_string(shard_index);
  const std::string count = std::to_string(shard_count);
  const std::string att = std::to_string(attempt);
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (piped) {
      ::close(fds[0]);
      ::dup2(fds[1], 2);
      if (fds[1] != 2) ::close(fds[1]);
    }
    const char* argv[] = {exe.c_str(),    "--lcosc-shard",       idx.c_str(),
                          "--lcosc-shard-count", count.c_str(),  "--lcosc-spec",
                          spec_path.c_str(),     "--lcosc-shard-attempt", att.c_str(),
                          nullptr};
    ::execv(exe.c_str(), const_cast<char* const*>(argv));
    std::_Exit(127);  // exec failed
  }
  out.fork_errno = pid < 0 ? errno : 0;
  if (piped) {
    ::close(fds[1]);
    if (pid < 0) {
      ::close(fds[0]);
    } else {
      const int flags = ::fcntl(fds[0], F_GETFL, 0);
      ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
      out.stderr_fd = fds[0];
    }
  }
  out.pid = pid;
  return out;
}

}  // namespace

CampaignSupervisor::CampaignSupervisor(const CampaignSpec& spec, const ServiceOptions& options,
                                       ShardSlotPool* slots)
    : spec_(spec), options_(options), slots_(slots != nullptr ? slots : &unbounded_) {
  LCOSC_REQUIRE(!spec_.checkpoint_dir.empty(), "spec.checkpoint_dir is required");
  std::error_code ec;
  fs::create_directories(spec_.checkpoint_dir, ec);

  campaign_ = make_campaign(spec_);
  total_ = campaign_->case_count();

  // Persist the effective spec next to the checkpoints: the shard
  // workers re-exec from it, and a later resume invocation can point at
  // the directory alone.  If the directory already holds a spec, the
  // record-content fields must match: resuming checkpoints computed
  // under a different seed/samples/durations would silently merge stale
  // records into the new report.  (Sharding/supervision knobs may
  // change freely -- records carry absolute case indices.)
  spec_path_ = spec_file_path(spec_);
  if (std::ifstream existing{spec_path_}) {
    std::stringstream buffer;
    buffer << existing.rdbuf();
    std::string prior_signature;
    try {
      prior_signature = determinism_signature(parse_campaign_spec(buffer.str()));
    } catch (const std::exception& e) {
      throw ConfigError("checkpoint_dir holds an unreadable spec (" + spec_path_ +
                        "): " + e.what() +
                        "; delete the directory to start this campaign fresh");
    }
    if (prior_signature != determinism_signature(spec_)) {
      throw ConfigError(
          "checkpoint_dir was written under a different campaign spec (" +
          prior_signature + " vs " + determinism_signature(spec_) +
          "); resuming would merge stale records -- use a fresh checkpoint_dir "
          "or delete " + spec_.checkpoint_dir);
    }
  }
  LCOSC_REQUIRE(write_file_atomic(spec_path_, to_json(spec_)),
                "cannot write effective spec to " + spec_path_);

  exe_ = options_.worker_exe.empty() ? self_exe_path() : options_.worker_exe;

  // Resume set: work inherited from any prior run of this directory.
  const std::map<std::uint32_t, std::string> prior =
      scan_checkpoints(spec_.checkpoint_dir, *campaign_);
  for (const auto& [index, payload] : prior) {
    (void)payload;
    if (index < total_) ++cases_resumed_;
  }

  shards_.resize(static_cast<std::size_t>(spec_.shards));
  for (int i = 0; i < spec_.shards; ++i) {
    ShardRuntime& shard = shards_[static_cast<std::size_t>(i)];
    shard.status.index = i;
    shard.status.range = shard_case_range(total_, i, spec_.shards);
    shard.checkpoint_records_before =
        read_checkpoint(shard_checkpoint_path(spec_, i, spec_.shards)).records.size();

    bool complete = true;
    for (std::size_t c = shard.status.range.begin; complete && c < shard.status.range.end;
         ++c) {
      complete = prior.find(static_cast<std::uint32_t>(c)) != prior.end();
    }
    if (complete) {
      // Nothing left for this shard (fully checkpointed, or empty range).
      shard.phase = ShardPhase::Done;
      shard.status.ok = true;
    } else {
      shard.next_spawn = Clock::now();
    }
  }
}

CampaignSupervisor::~CampaignSupervisor() {
  // Never leak workers past the supervisor's lifetime: an error unwind
  // or a coordinator shutdown mid-run must not orphan subprocesses.
  kill_all();
}

void CampaignSupervisor::note(const char* fmt, int shard, long long a, long long b) const {
  if (!options_.verbose) return;
  std::fprintf(stderr, "[campaign_service] shard %d: ", shard);
  std::fprintf(stderr, fmt, a, b);
  std::fputc('\n', stderr);
}

void CampaignSupervisor::release_slot(ShardRuntime& shard) {
  if (shard.holds_slot) {
    slots_->release();
    shard.holds_slot = false;
  }
}

void CampaignSupervisor::step_spawn(ShardRuntime& shard, Clock::time_point now) {
  const int i = shard.status.index;
  if (now < shard.next_spawn) return;
  // The shared fleet is full: stay Pending/Backoff and retry next poll.
  if (!slots_->try_acquire()) return;
  shard.holds_slot = true;
  const SpawnedWorker worker =
      spawn_worker(exe_, i, spec_.shards, spec_path_, shard.status.spawns + 1);
  if (worker.pid < 0) {
    // fork() failed (EAGAIN/ENOMEM).  A -1 pid must never reach the
    // Running phase: waitpid(-1) would reap arbitrary children and
    // kill(-1) would SIGKILL everything we can signal.  Retry on the
    // restart budget like a crash.
    shard.pid = -1;
    release_slot(shard);
    count_metric("service.shard.spawn_errors");
    emit_shard_event("spawn_error", i, -1, worker.fork_errno);
    record_forensics(shard, "spawn_error", worker.fork_errno, 0, 0.0, nullptr);
    if (shard.status.restarts >= spec_.max_restarts) {
      shard.phase = ShardPhase::Failed;
      count_metric("service.shard.failed");
      emit_shard_event("failed", i, -1, worker.fork_errno);
      note("permanently failed (fork errno %lld)", i, worker.fork_errno);
      return;
    }
    ++shard.status.restarts;
    count_metric("service.shard.restarts");
    const int delay_ms = retry_backoff_delay_ms(spec_.restart_backoff, shard.status.restarts);
    shard.next_spawn = now + std::chrono::milliseconds(delay_ms);
    shard.phase = ShardPhase::Backoff;
    note("fork failed (errno %lld), retrying in %lld ms", i, worker.fork_errno, delay_ms);
    return;
  }
  shard.pid = worker.pid;
  shard.stderr_fd = worker.stderr_fd;
  shard.stderr_tail.clear();
  shard.spawned_at = now;
  shard.phase = ShardPhase::Running;
  ++shard.status.spawns;
  count_metric("service.shard.spawned");
  live_gauge_add(1.0);
  emit_shard_event("spawn", i, shard.pid);
  note("spawned pid %lld (attempt %lld)", i, shard.pid, shard.status.spawns);
}

void CampaignSupervisor::step_running(ShardRuntime& shard, Clock::time_point now) {
  const int i = shard.status.index;
  if (shard.pid <= 0) {
    // Defensive: cannot happen after the spawn guard above, but
    // waitpid/kill on pid <= 0 address process groups, not a child --
    // never risk it.  Fall back to a respawn.
    release_slot(shard);
    shard.phase = ShardPhase::Backoff;
    shard.next_spawn = now;
    return;
  }
  drain_stderr(shard);
  int wait_status = 0;
  struct ::rusage usage {};
  const pid_t r = ::wait4(shard.pid, &wait_status, WNOHANG, &usage);
  const double up_ms =
      std::chrono::duration<double, std::milli>(now - shard.spawned_at).count();

  bool exited = r == shard.pid;
  bool timed_out = false;
  if (!exited && spec_.shard_timeout_ms > 0 && up_ms > spec_.shard_timeout_ms) {
    // Wedged (or just too slow): kill and account it as a
    // timeout-restart, backoff included.
    ::kill(shard.pid, SIGKILL);
    ::wait4(shard.pid, &wait_status, 0, &usage);
    exited = true;
    timed_out = true;
    ++shard.status.timeouts;
    count_metric("service.shard.timeouts");
    emit_shard_event("timeout", i, shard.pid);
    note("timed out after %lld ms, killed", i, static_cast<long long>(up_ms));
  }
  if (!exited) return;

  live_gauge_add(-1.0);
  release_slot(shard);
  drain_stderr(shard);
  close_stderr(shard);
  shard.status.active_seconds += up_ms * 1e-3;
  const int exit_code = WIFEXITED(wait_status)    ? WEXITSTATUS(wait_status)
                        : WIFSIGNALED(wait_status) ? 128 + WTERMSIG(wait_status)
                                                   : -1;
  const int term_signal = WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
  shard.status.last_exit_code = exit_code;
  record_forensics(shard,
                   timed_out ? "timeout" : (exit_code == 0 ? "exit" : "crash"),
                   exit_code, term_signal, up_ms * 1e-3, &usage);
  if (options_.verbose && (timed_out || exit_code != 0) && !shard.stderr_tail.empty()) {
    std::fprintf(stderr, "[campaign_service] shard %d stderr tail:\n%s%s", i,
                 shard.stderr_tail.c_str(),
                 shard.stderr_tail.back() == '\n' ? "" : "\n");
  }

  if (exit_code == 0 && !timed_out) {
    shard.phase = ShardPhase::Done;
    shard.status.ok = true;
    count_metric("service.shard.completed");
    emit_shard_event("exit", i, shard.pid, exit_code);
    note("completed (pid %lld)", i, shard.pid);
    return;
  }

  emit_shard_event(timed_out ? "killed" : "crashed", i, shard.pid, exit_code);
  if (shard.status.restarts >= spec_.max_restarts) {
    // Restart budget exhausted: degrade instead of aborting -- the merge
    // step fills this shard's missing cases with SimulationError rows.
    shard.phase = ShardPhase::Failed;
    count_metric("service.shard.failed");
    emit_shard_event("failed", i, shard.pid, exit_code);
    note("permanently failed (exit %lld)", i, exit_code);
    return;
  }
  ++shard.status.restarts;
  count_metric("service.shard.restarts");
  const int delay_ms = retry_backoff_delay_ms(spec_.restart_backoff, shard.status.restarts);
  shard.next_spawn = now + std::chrono::milliseconds(delay_ms);
  shard.phase = ShardPhase::Backoff;
  emit_shard_event("restart", i, shard.pid, delay_ms);
  note("restarting in %lld ms (exit %lld)", i, delay_ms, exit_code);
}

bool CampaignSupervisor::step() {
  bool all_terminal = true;
  const Clock::time_point now = Clock::now();
  for (ShardRuntime& shard : shards_) {
    switch (shard.phase) {
      case ShardPhase::Done:
      case ShardPhase::Failed:
        continue;
      case ShardPhase::Pending:
      case ShardPhase::Backoff:
        all_terminal = false;
        step_spawn(shard, now);
        break;
      case ShardPhase::Running:
        all_terminal = false;
        step_running(shard, now);
        break;
    }
  }
  return all_terminal;
}

bool CampaignSupervisor::finished() const {
  for (const ShardRuntime& shard : shards_) {
    if (shard.phase != ShardPhase::Done && shard.phase != ShardPhase::Failed) return false;
  }
  return true;
}

void CampaignSupervisor::kill_all() {
  for (ShardRuntime& shard : shards_) {
    if (shard.phase != ShardPhase::Running || shard.pid <= 0) continue;
    drain_stderr(shard);
    ::kill(shard.pid, SIGKILL);
    int wait_status = 0;
    struct ::rusage usage {};
    ::wait4(shard.pid, &wait_status, 0, &usage);
    live_gauge_add(-1.0);
    release_slot(shard);
    drain_stderr(shard);
    close_stderr(shard);
    emit_shard_event("shutdown", shard.status.index, shard.pid);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - shard.spawned_at).count();
    shard.status.active_seconds += wall_s;
    record_forensics(shard, "shutdown", 128 + SIGKILL, SIGKILL, wall_s, &usage);
    // Resumable, not failed: the checkpoints the worker committed stay
    // inherited by the next run of this directory.
    shard.phase = ShardPhase::Pending;
    shard.pid = -1;
    shard.next_spawn = Clock::now();
  }
}

void CampaignSupervisor::drain_stderr(ShardRuntime& shard) {
  if (shard.stderr_fd < 0) return;
  // Bounded ring tail: keep the newest bytes, drop the oldest.  4 KiB is
  // enough for the exception + a few context lines a dying worker prints.
  constexpr std::size_t kTailMax = 4096;
  char buf[1024];
  while (true) {
    const ::ssize_t n = ::read(shard.stderr_fd, buf, sizeof buf);
    if (n <= 0) break;  // 0 = EOF, -1 = would-block or error
    shard.stderr_tail.append(buf, static_cast<std::size_t>(n));
    if (shard.stderr_tail.size() > kTailMax) {
      shard.stderr_tail.erase(0, shard.stderr_tail.size() - kTailMax);
    }
  }
}

void CampaignSupervisor::close_stderr(ShardRuntime& shard) {
  if (shard.stderr_fd >= 0) {
    ::close(shard.stderr_fd);
    shard.stderr_fd = -1;
  }
}

void CampaignSupervisor::record_forensics(const ShardRuntime& shard, const char* event,
                                          int exit_code, int signal, double wall_s,
                                          const struct ::rusage* usage) const {
  ForensicsRow row;
  row.ts_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  row.shard = shard.status.index;
  row.attempt = std::max(1, shard.status.spawns);
  row.pid = shard.pid;
  row.event = event;
  row.exit_code = exit_code;
  row.signal = signal;
  row.wall_s = wall_s;
  if (usage != nullptr) {
    row.cpu_user_s = static_cast<double>(usage->ru_utime.tv_sec) +
                     static_cast<double>(usage->ru_utime.tv_usec) * 1e-6;
    row.cpu_sys_s = static_cast<double>(usage->ru_stime.tv_sec) +
                    static_cast<double>(usage->ru_stime.tv_usec) * 1e-6;
    row.max_rss_kb = usage->ru_maxrss;
  }
  const CheckpointReadResult ckpt =
      read_checkpoint(shard_checkpoint_path(spec_, shard.status.index, spec_.shards));
  row.checkpoint_records = ckpt.records.size();
  for (const CheckpointRecord& record : ckpt.records) {
    row.last_checkpoint_index =
        std::max(row.last_checkpoint_index, static_cast<long long>(record.index));
  }
  row.stderr_tail = shard.stderr_tail;
  append_forensics_row(forensics_path(spec_.checkpoint_dir), row);
}

std::vector<ShardStatus> CampaignSupervisor::shard_statuses() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const ShardRuntime& shard : shards_) out.push_back(shard.status);
  return out;
}

ServiceResult CampaignSupervisor::finish() {
  ServiceResult result;
  result.cases_total = total_;
  result.cases_resumed = cases_resumed_;

  // Merge in case-index order.  Every record is a pure function of its
  // index, so first-wins over any mix of shard layouts and restart
  // generations yields the same bytes as an uninterrupted run.
  const std::map<std::uint32_t, std::string> merged =
      scan_checkpoints(spec_.checkpoint_dir, *campaign_);
  std::vector<std::string> records;
  records.reserve(total_);
  for (std::size_t i = 0; i < total_; ++i) {
    const auto it = merged.find(static_cast<std::uint32_t>(i));
    if (it != merged.end()) {
      records.push_back(it->second);
    } else {
      records.push_back(campaign_->error_record(i, "shard failed permanently"));
      ++result.cases_failed;
      count_metric("service.cases.synthesized");
    }
  }

  auto& registry = obs::MetricsRegistry::instance();
  for (ShardRuntime& shard : shards_) {
    const std::size_t after =
        read_checkpoint(shard_checkpoint_path(spec_, shard.status.index, spec_.shards))
            .records.size();
    shard.status.cases_computed = after - std::min(after, shard.checkpoint_records_before);
    if (obs::metrics_enabled() && shard.status.active_seconds > 0.0) {
      registry
          .gauge("service.shard." + std::to_string(shard.status.index) + ".cases_per_s")
          .set(static_cast<double>(shard.status.cases_computed) /
               shard.status.active_seconds);
    }
    result.shards.push_back(shard.status);
  }

  // Fold whatever per-shard telemetry the workers flushed into the
  // per-job artifacts (metrics.json / trace.json / events.jsonl /
  // summary.json).  A telemetry-off run has no shard files and this is
  // a no-op, so campaign artifacts stay exactly as before.
  FleetSummaryInfo fleet;
  fleet.campaign = to_string(spec_.kind);
  fleet.cases_total = result.cases_total;
  fleet.cases_resumed = result.cases_resumed;
  fleet.cases_failed = result.cases_failed;
  fleet.shards = spec_.shards;
  for (const ShardStatus& shard : result.shards) {
    fleet.per_shard.push_back({shard.index, shard.range.begin, shard.range.end,
                               shard.spawns, shard.restarts, shard.timeouts,
                               shard.cases_computed, shard.active_seconds, shard.ok});
  }
  merge_fleet_telemetry(spec_.checkpoint_dir, fleet);

  result.report = campaign_->report(records);
  if (!spec_.report_path.empty()) {
    LCOSC_REQUIRE(write_file_atomic(spec_.report_path, result.report),
                  "cannot write report to " + spec_.report_path);
  }
  return result;
}

// --- SIGINT/SIGTERM capture -------------------------------------------------

namespace {

std::atomic<int> g_pending_signal{0};

void record_signal(int sig) { g_pending_signal.store(sig, std::memory_order_relaxed); }

struct SavedAction {
  int sig;
  struct sigaction action;
};

// Nested captures (queue coordinator around run_campaign_service) share
// the flag; only the outermost scope saves/restores dispositions.
int g_capture_depth = 0;
SavedAction g_saved[2];

}  // namespace

ScopedSignalCapture::ScopedSignalCapture() {
  if (g_capture_depth++ == 0) {
    g_pending_signal.store(0, std::memory_order_relaxed);
    struct sigaction action {};
    action.sa_handler = record_signal;
    sigemptyset(&action.sa_mask);
    const int signals[] = {SIGINT, SIGTERM};
    for (int k = 0; k < 2; ++k) {
      g_saved[k].sig = signals[k];
      ::sigaction(signals[k], &action, &g_saved[k].action);
    }
  }
}

ScopedSignalCapture::~ScopedSignalCapture() {
  if (--g_capture_depth == 0) {
    for (const SavedAction& saved : g_saved) {
      ::sigaction(saved.sig, &saved.action, nullptr);
    }
  }
}

int ScopedSignalCapture::pending() const {
  return g_pending_signal.load(std::memory_order_relaxed);
}

void ScopedSignalCapture::exit_via(int sig) {
  ::signal(sig, SIG_DFL);
  ::raise(sig);
  std::_Exit(128 + sig);  // unreachable unless the signal is blocked
}

ServiceResult run_campaign_service(const CampaignSpec& spec, const ServiceOptions& options) {
  CampaignSupervisor supervisor(spec, options);
  // A coordinator killed by Ctrl-C / SIGTERM must take its workers with
  // it: kill and reap every live shard, then die with the conventional
  // signal status.  (The checkpoints keep the run resumable.)
  ScopedSignalCapture signals;
  while (!supervisor.step()) {
    if (const int sig = signals.pending()) {
      supervisor.kill_all();
      count_metric("service.coordinator.interrupted");
      ScopedSignalCapture::exit_via(sig);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }
  return supervisor.finish();
}

}  // namespace lcosc::service
