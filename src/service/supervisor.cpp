#include "service/supervisor.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/error.h"
#include "common/parallel.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "service/adapters.h"
#include "service/checkpoint.h"

namespace lcosc::service {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string shard_checkpoint_path(const CampaignSpec& spec, int shard_index,
                                  int shard_count) {
  return spec.checkpoint_dir + "/shard_" + std::to_string(shard_index) + "_of_" +
         std::to_string(shard_count) + ".ckpt";
}

std::string spec_file_path(const CampaignSpec& spec) {
  return spec.checkpoint_dir + "/spec.json";
}

// All committed records in the checkpoint directory, first-wins by
// sorted file name.  Scanning every *.ckpt (not just the current shard
// layout's files) lets a resume with a different shard count inherit all
// prior work: records carry absolute case indices, so the shard layout
// that produced them is irrelevant.
std::map<std::uint32_t, std::string> scan_checkpoints(const std::string& dir) {
  std::map<std::uint32_t, std::string> merged;
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".ckpt") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    for (CheckpointRecord& record : read_checkpoint(file).records) {
      merged.emplace(record.index, std::move(record.payload));
    }
  }
  return merged;
}

void emit_shard_event(const char* action, int shard, long long pid, int detail = 0) {
  if (!obs::events_enabled()) return;
  obs::Event event("service.shard");
  event.str("action", action).integer("shard", shard).integer("pid", pid);
  if (detail != 0) event.integer("detail", detail);
}

void count_metric(const char* name, std::uint64_t delta = 1) {
  if (obs::metrics_enabled()) obs::MetricsRegistry::instance().counter(name).add(delta);
}

}  // namespace

CaseRange shard_case_range(std::size_t total, int shard_index, int shard_count) {
  LCOSC_REQUIRE(shard_count >= 1 && shard_index >= 0 && shard_index < shard_count,
                "shard index out of range");
  const auto count = static_cast<std::size_t>(shard_count);
  const auto index = static_cast<std::size_t>(shard_index);
  const std::size_t base = total / count;
  const std::size_t remainder = total % count;
  CaseRange range;
  range.begin = index * base + std::min(index, remainder);
  range.end = range.begin + base + (index < remainder ? 1 : 0);
  return range;
}

void run_shard(const CampaignSpec& spec, int shard_index, int shard_count) {
  LCOSC_REQUIRE(!spec.checkpoint_dir.empty(), "spec.checkpoint_dir is required");
  const std::unique_ptr<ShardableCampaign> campaign = make_campaign(spec);
  const CaseRange range = shard_case_range(campaign->case_count(), shard_index, shard_count);

  // Test hook: the first spawn of each shard wedges forever so the
  // coordinator's timeout -> SIGKILL -> restart path runs; the sentinel
  // disarms every later spawn.
  if (spec.test_stall_once) {
    const std::string sentinel =
        spec.checkpoint_dir + "/stall_" + std::to_string(shard_index) + ".flag";
    if (!fs::exists(sentinel)) {
      write_file_atomic(sentinel, "armed\n");
      while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }

  // Skip set: every case already committed by ANY checkpoint in the
  // directory (prior runs may have used a different shard count).
  const std::map<std::uint32_t, std::string> done = scan_checkpoints(spec.checkpoint_dir);

  CheckpointWriter writer(shard_checkpoint_path(spec, shard_index, shard_count));

  std::vector<std::size_t> remaining;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    if (done.find(static_cast<std::uint32_t>(i)) == done.end()) remaining.push_back(i);
  }

  std::mutex append_mutex;
  int fresh = 0;
  auto run_one = [&](std::size_t slot) {
    const std::size_t index = remaining[slot];
    const std::string record = campaign->run_case(index);
    {
      const std::lock_guard<std::mutex> lock(append_mutex);
      writer.append(static_cast<std::uint32_t>(index), record);
      count_metric("service.cases.computed");
      ++fresh;
      // Test hook: die abruptly (no atexit, like a kill -9 landing just
      // after the fsync) once this spawn has committed its quota.
      if (spec.test_kill_after_cases > 0 && fresh >= spec.test_kill_after_cases) {
        std::_Exit(137);
      }
    }
    return 0;
  };

  const auto workers = static_cast<std::size_t>(std::max(0, spec.workers_per_shard));
  if (workers == 1 || remaining.size() <= 1) {
    for (std::size_t slot = 0; slot < remaining.size(); ++slot) run_one(slot);
  } else {
    // In-shard thread parallelism: append order becomes completion
    // order, which is safe -- records carry their case index, and the
    // merge step orders by index, never by file position.
    (void)parallel_map(remaining.size(), run_one, workers);
  }
}

std::optional<int> maybe_run_shard(int argc, char** argv) {
  // Strict integer parse: '--lcosc-shard garbage' must fail loudly, not
  // silently become shard 0 and duplicate shard 0's work.
  auto parse_shard_int = [](const char* s) -> int {
    if (s == nullptr || *s == '\0') return -1;
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v < 0 || v > INT_MAX) return -1;
    return static_cast<int>(v);
  };
  int shard_index = -1;
  int shard_count = -1;
  std::string spec_path;
  bool is_shard = false;
  bool bad_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--lcosc-shard") {
      is_shard = true;
      shard_index = parse_shard_int(value());
      bad_value |= shard_index < 0;
    } else if (arg == "--lcosc-shard-count") {
      shard_count = parse_shard_int(value());
      bad_value |= shard_count < 0;
    } else if (arg == "--lcosc-spec") {
      if (const char* v = value()) spec_path = v;
    }
  }
  if (!is_shard) return std::nullopt;

  try {
    if (bad_value || shard_index < 0 || shard_count < 1 || spec_path.empty()) {
      throw ConfigError("shard mode needs --lcosc-shard N --lcosc-shard-count M --lcosc-spec F");
    }
    std::ifstream in(spec_path);
    if (!in) throw ConfigError("cannot read spec file " + spec_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    run_shard(parse_campaign_spec(buffer.str()), shard_index, shard_count);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcosc shard worker: %s\n", e.what());
    return 3;
  }
}

namespace {

enum class ShardPhase { Pending, Running, Backoff, Done, Failed };

struct ShardRuntime {
  ShardStatus status;
  ShardPhase phase = ShardPhase::Pending;
  pid_t pid = -1;
  Clock::time_point spawned_at{};
  Clock::time_point next_spawn{};
  std::size_t checkpoint_records_before = 0;
};

std::string self_exe_path() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  LCOSC_REQUIRE(n > 0, "cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return buf;
}

pid_t spawn_worker(const std::string& exe, int shard_index, int shard_count,
                   const std::string& spec_path) {
  const std::string idx = std::to_string(shard_index);
  const std::string count = std::to_string(shard_count);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const char* argv[] = {exe.c_str(),    "--lcosc-shard",       idx.c_str(),
                          "--lcosc-shard-count", count.c_str(),  "--lcosc-spec",
                          spec_path.c_str(),     nullptr};
    ::execv(exe.c_str(), const_cast<char* const*>(argv));
    std::_Exit(127);  // exec failed
  }
  return pid;
}

}  // namespace

ServiceResult run_campaign_service(const CampaignSpec& spec, const ServiceOptions& options) {
  LCOSC_REQUIRE(!spec.checkpoint_dir.empty(), "spec.checkpoint_dir is required");
  std::error_code ec;
  fs::create_directories(spec.checkpoint_dir, ec);

  const std::unique_ptr<ShardableCampaign> campaign = make_campaign(spec);
  const std::size_t total = campaign->case_count();
  const int shard_count = spec.shards;

  // Persist the effective spec next to the checkpoints: the shard
  // workers re-exec from it, and a later resume invocation can point at
  // the directory alone.  If the directory already holds a spec, the
  // record-content fields must match: resuming checkpoints computed
  // under a different seed/samples/durations would silently merge stale
  // records into the new report.  (Sharding/supervision knobs may
  // change freely -- records carry absolute case indices.)
  const std::string spec_path = spec_file_path(spec);
  if (std::ifstream existing{spec_path}) {
    std::stringstream buffer;
    buffer << existing.rdbuf();
    std::string prior_signature;
    try {
      prior_signature = determinism_signature(parse_campaign_spec(buffer.str()));
    } catch (const std::exception& e) {
      throw ConfigError("checkpoint_dir holds an unreadable spec (" + spec_path +
                        "): " + e.what() +
                        "; delete the directory to start this campaign fresh");
    }
    if (prior_signature != determinism_signature(spec)) {
      throw ConfigError(
          "checkpoint_dir was written under a different campaign spec (" +
          prior_signature + " vs " + determinism_signature(spec) +
          "); resuming would merge stale records -- use a fresh checkpoint_dir "
          "or delete " + spec.checkpoint_dir);
    }
  }
  LCOSC_REQUIRE(write_file_atomic(spec_path, to_json(spec)),
                "cannot write effective spec to " + spec_path);

  const std::string exe = options.worker_exe.empty() ? self_exe_path() : options.worker_exe;

  ServiceResult result;
  result.cases_total = total;

  // Resume set: work inherited from any prior run of this directory.
  const std::map<std::uint32_t, std::string> prior = scan_checkpoints(spec.checkpoint_dir);
  for (const auto& [index, payload] : prior) {
    (void)payload;
    if (index < total) ++result.cases_resumed;
  }

  std::vector<ShardRuntime> shards(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    ShardRuntime& shard = shards[static_cast<std::size_t>(i)];
    shard.status.index = i;
    shard.status.range = shard_case_range(total, i, shard_count);
    shard.checkpoint_records_before =
        read_checkpoint(shard_checkpoint_path(spec, i, shard_count)).records.size();

    bool complete = true;
    for (std::size_t c = shard.status.range.begin; complete && c < shard.status.range.end;
         ++c) {
      complete = prior.find(static_cast<std::uint32_t>(c)) != prior.end();
    }
    if (complete) {
      // Nothing left for this shard (fully checkpointed, or empty range).
      shard.phase = ShardPhase::Done;
      shard.status.ok = true;
    } else {
      shard.next_spawn = Clock::now();
    }
  }

  auto& registry = obs::MetricsRegistry::instance();
  auto live_gauge = [&]() -> obs::Gauge& { return registry.gauge("service.shards.live"); };

  auto note = [&](const char* fmt, int shard, long long a = 0, long long b = 0) {
    if (options.verbose) {
      std::fprintf(stderr, "[campaign_service] shard %d: ", shard);
      std::fprintf(stderr, fmt, a, b);
      std::fputc('\n', stderr);
    }
  };

  try {
    while (true) {
      bool all_terminal = true;
      const Clock::time_point now = Clock::now();

      for (ShardRuntime& shard : shards) {
        const int i = shard.status.index;
        switch (shard.phase) {
          case ShardPhase::Done:
          case ShardPhase::Failed:
            continue;
          case ShardPhase::Pending:
          case ShardPhase::Backoff: {
            all_terminal = false;
            if (now < shard.next_spawn) break;
            const pid_t pid = spawn_worker(exe, i, shard_count, spec_path);
            if (pid < 0) {
              // fork() failed (EAGAIN/ENOMEM).  A -1 pid must never reach
              // the Running phase: waitpid(-1) would reap arbitrary
              // children and kill(-1) would SIGKILL everything we can
              // signal.  Retry on the restart budget like a crash.
              shard.pid = -1;
              count_metric("service.shard.spawn_errors");
              emit_shard_event("spawn_error", i, -1, errno);
              if (shard.status.restarts >= spec.max_restarts) {
                shard.phase = ShardPhase::Failed;
                count_metric("service.shard.failed");
                emit_shard_event("failed", i, -1, errno);
                note("permanently failed (fork errno %lld)", i, errno);
                break;
              }
              ++shard.status.restarts;
              count_metric("service.shard.restarts");
              const int delay_ms =
                  retry_backoff_delay_ms(spec.restart_backoff, shard.status.restarts);
              shard.next_spawn = now + std::chrono::milliseconds(delay_ms);
              shard.phase = ShardPhase::Backoff;
              note("fork failed (errno %lld), retrying in %lld ms", i, errno, delay_ms);
              break;
            }
            shard.pid = pid;
            shard.spawned_at = now;
            shard.phase = ShardPhase::Running;
            ++shard.status.spawns;
            count_metric("service.shard.spawned");
            if (obs::metrics_enabled()) live_gauge().add(1.0);
            emit_shard_event("spawn", i, shard.pid);
            note("spawned pid %lld (attempt %lld)", i, shard.pid, shard.status.spawns);
            break;
          }
          case ShardPhase::Running: {
            all_terminal = false;
            if (shard.pid <= 0) {
              // Defensive: cannot happen after the spawn guard above, but
              // waitpid/kill on pid <= 0 address process groups, not a
              // child -- never risk it.  Fall back to a respawn.
              shard.phase = ShardPhase::Backoff;
              shard.next_spawn = now;
              break;
            }
            int wait_status = 0;
            const pid_t r = ::waitpid(shard.pid, &wait_status, WNOHANG);
            const double up_ms =
                std::chrono::duration<double, std::milli>(now - shard.spawned_at).count();

            bool exited = r == shard.pid;
            bool timed_out = false;
            if (!exited && spec.shard_timeout_ms > 0 && up_ms > spec.shard_timeout_ms) {
              // Wedged (or just too slow): kill and account it as a
              // timeout-restart, backoff included.
              ::kill(shard.pid, SIGKILL);
              ::waitpid(shard.pid, &wait_status, 0);
              exited = true;
              timed_out = true;
              ++shard.status.timeouts;
              count_metric("service.shard.timeouts");
              emit_shard_event("timeout", i, shard.pid);
              note("timed out after %lld ms, killed", i, static_cast<long long>(up_ms));
            }
            if (!exited) break;

            if (obs::metrics_enabled()) live_gauge().add(-1.0);
            shard.status.active_seconds += up_ms * 1e-3;
            const int exit_code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status)
                                  : WIFSIGNALED(wait_status)
                                      ? 128 + WTERMSIG(wait_status)
                                      : -1;
            shard.status.last_exit_code = exit_code;

            if (exit_code == 0 && !timed_out) {
              shard.phase = ShardPhase::Done;
              shard.status.ok = true;
              count_metric("service.shard.completed");
              emit_shard_event("exit", i, shard.pid, exit_code);
              note("completed (pid %lld)", i, shard.pid);
              break;
            }

            emit_shard_event(timed_out ? "killed" : "crashed", i, shard.pid, exit_code);
            if (shard.status.restarts >= spec.max_restarts) {
              // Restart budget exhausted: degrade instead of aborting --
              // the merge step fills this shard's missing cases with
              // SimulationError rows.
              shard.phase = ShardPhase::Failed;
              count_metric("service.shard.failed");
              emit_shard_event("failed", i, shard.pid, exit_code);
              note("permanently failed (exit %lld)", i, exit_code);
              break;
            }
            ++shard.status.restarts;
            count_metric("service.shard.restarts");
            const int delay_ms =
                retry_backoff_delay_ms(spec.restart_backoff, shard.status.restarts);
            shard.next_spawn = now + std::chrono::milliseconds(delay_ms);
            shard.phase = ShardPhase::Backoff;
            emit_shard_event("restart", i, shard.pid, delay_ms);
            note("restarting in %lld ms (exit %lld)", i, delay_ms, exit_code);
            break;
          }
        }
      }

      if (all_terminal) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
    }
  } catch (...) {
    // Never leak workers past a coordinator failure.
    for (ShardRuntime& shard : shards) {
      if (shard.phase == ShardPhase::Running && shard.pid > 0) {
        ::kill(shard.pid, SIGKILL);
        ::waitpid(shard.pid, nullptr, 0);
      }
    }
    throw;
  }

  // Merge in case-index order.  Every record is a pure function of its
  // index, so first-wins over any mix of shard layouts and restart
  // generations yields the same bytes as an uninterrupted run.
  const std::map<std::uint32_t, std::string> merged = scan_checkpoints(spec.checkpoint_dir);
  std::vector<std::string> records;
  records.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto it = merged.find(static_cast<std::uint32_t>(i));
    if (it != merged.end()) {
      records.push_back(it->second);
    } else {
      records.push_back(campaign->error_record(i, "shard failed permanently"));
      ++result.cases_failed;
      count_metric("service.cases.synthesized");
    }
  }

  for (ShardRuntime& shard : shards) {
    const std::size_t after =
        read_checkpoint(shard_checkpoint_path(spec, shard.status.index, shard_count))
            .records.size();
    shard.status.cases_computed = after - std::min(after, shard.checkpoint_records_before);
    if (obs::metrics_enabled() && shard.status.active_seconds > 0.0) {
      registry
          .gauge("service.shard." + std::to_string(shard.status.index) + ".cases_per_s")
          .set(static_cast<double>(shard.status.cases_computed) /
               shard.status.active_seconds);
    }
    result.shards.push_back(shard.status);
  }

  result.report = campaign->report(records);
  if (!spec.report_path.empty()) {
    LCOSC_REQUIRE(write_file_atomic(spec.report_path, result.report),
                  "cannot write report to " + spec.report_path);
  }
  return result;
}

}  // namespace lcosc::service
