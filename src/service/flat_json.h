// Minimal single-pass parser for the flat JSON objects the service
// persists (campaign specs, queue job records): string, number and
// boolean values only, no nesting.  Strings support the full JSON escape
// set (\" \\ \/ \n \t \r \b \f \uXXXX), enough to round-trip filesystem
// paths with control characters; json_escape() is the matching emitter.
// Shared by service/spec.cpp and service/queue.cpp so both sides of the
// on-disk format agree on one grammar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lcosc::service {

class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  // Calls visit(key, raw_value, is_string) per member.  Throws
  // lcosc::ConfigError (prefixed with `context`) on malformed input or
  // trailing bytes after the closing brace.
  template <typename Visit>
  void parse_object(Visit&& visit) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        bool is_string = false;
        std::string value;
        const char c = peek();
        if (c == '"') {
          value = parse_string();
          is_string = true;
        } else if (c == 't' || c == 'f') {
          value = parse_keyword();
        } else if (c == '-' || is_digit(c)) {
          value = parse_number();
        } else {
          fail("expected a string, number or boolean value");
        }
        visit(key, value, is_string);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the object");
  }

  // Error-message prefix, e.g. "campaign spec" or "queue job".
  FlatJsonParser& context(std::string label) {
    context_ = std::move(label);
    return *this;
  }

 private:
  static bool is_digit(char c);
  [[noreturn]] void fail(const std::string& why) const;
  char peek() const;
  void expect(char c);
  void skip_ws();
  std::string parse_string();
  unsigned parse_hex4();
  void append_codepoint(std::string& out, unsigned cp);
  std::string parse_keyword();
  std::string parse_number();

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string context_ = "flat json";
};

// Escape `s` for embedding in a JSON string literal: quotes, backslash,
// and every control character (so emitted files are valid JSON for
// external tooling).
[[nodiscard]] std::string json_escape(const std::string& s);

// Strict scalar conversions shared by the spec and queue parsers; each
// throws lcosc::ConfigError naming `key` on mismatch.
[[nodiscard]] double json_to_number(const std::string& key, const std::string& raw);
[[nodiscard]] int json_to_int(const std::string& key, const std::string& raw);
[[nodiscard]] std::uint64_t json_to_u64(const std::string& key, const std::string& raw);
[[nodiscard]] bool json_to_bool(const std::string& key, const std::string& raw,
                                bool is_string);

}  // namespace lcosc::service
