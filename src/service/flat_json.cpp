#include "service/flat_json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace lcosc::service {

bool FlatJsonParser::is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

void FlatJsonParser::fail(const std::string& why) const {
  throw ConfigError(context_ + ": " + why + " (at byte " + std::to_string(pos_) + ")");
}

char FlatJsonParser::peek() const {
  if (pos_ >= text_.size()) {
    throw ConfigError(context_ + ": unexpected end of input (truncated file?)");
  }
  return text_[pos_];
}

void FlatJsonParser::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

void FlatJsonParser::skip_ws() {
  while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
    ++pos_;
  }
}

std::string FlatJsonParser::parse_string() {
  expect('"');
  std::string out;
  while (true) {
    const char c = peek();
    ++pos_;
    if (c == '"') return out;
    if (c == '\\') {
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("unsupported string escape");
      }
    } else {
      out.push_back(c);
    }
  }
}

unsigned FlatJsonParser::parse_hex4() {
  unsigned cp = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = peek();
    ++pos_;
    unsigned digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
    else fail("expected four hex digits after \\u");
    cp = cp * 16 + digit;
  }
  return cp;
}

void FlatJsonParser::append_codepoint(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    // BMP only: surrogate pairs never appear in the files we emit.
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string FlatJsonParser::parse_keyword() {
  for (const std::string_view kw : {"true", "false"}) {
    if (text_.substr(pos_, kw.size()) == kw) {
      pos_ += kw.size();
      return std::string(kw);
    }
  }
  fail("expected true or false");
}

std::string FlatJsonParser::parse_number() {
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         (is_digit(text_[pos_]) || text_[pos_] == '-' || text_[pos_] == '+' ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (pos_ == start) fail("expected a number");
  return std::string(text_.substr(start, pos_ - start));
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

double json_to_number(const std::string& key, const std::string& raw) {
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
    throw ConfigError("key '" + key + "' is not a finite number");
  }
  return v;
}

int json_to_int(const std::string& key, const std::string& raw) {
  const double v = json_to_number(key, raw);
  if (v != std::floor(v)) {
    throw ConfigError("key '" + key + "' must be an integer");
  }
  return static_cast<int>(v);
}

// Exact 64-bit parse: routing a seed through double would silently round
// values above 2^53 (and cast UB above 2^63), giving re-parsing workers a
// different seed than the coordinator.
std::uint64_t json_to_u64(const std::string& key, const std::string& raw) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (raw.empty() || raw[0] == '-' || end == raw.c_str() || *end != '\0' ||
      errno == ERANGE) {
    throw ConfigError("key '" + key + "' must be a non-negative integer (64-bit)");
  }
  return v;
}

bool json_to_bool(const std::string& key, const std::string& raw, bool is_string) {
  if (is_string || (raw != "true" && raw != "false")) {
    throw ConfigError("key '" + key + "' must be true or false");
  }
  return raw == "true";
}

}  // namespace lcosc::service
