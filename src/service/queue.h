// Persistent, queryable multi-job campaign queue (DESIGN.md §14).
//
// A queue is a directory of jobs, each a self-contained resumable
// campaign: the submitted spec (spec.json, with checkpoint/report paths
// rewritten into the job directory), a small state record (job.json,
// updated only via atomic temp+rename writes so the queue itself
// survives `kill -9` at any instant), the shard checkpoint streams, and
// the finished report.  Clients submit specs with a priority (optionally
// expanding a template over a sweep list); a coordinator claims jobs in
// (priority desc, submit-order) order and runs each through the sharded
// CampaignSupervisor with checkpointed resume.  Concurrent campaigns
// share one ShardSlotPool, so the worker fleet stays bounded no matter
// how many jobs run at once, and every report is byte-identical to a
// solo run of the same spec.
//
// On-disk layout (everything under one queue root):
//
//   <root>/jobs/000042[-name]/
//     job.json        id, sequence, priority, state, runs, run_order, error
//     spec.json       effective CampaignSpec (paths point into this dir)
//     checkpoints/    per-shard CRC-framed record streams (service/checkpoint.h)
//     report.txt      final report (atomic write, present once finished)
//     progress.json   coordinator's last streamed progress snapshot
//     cancel.flag     cancellation request (written by any client)
//
// Job state machine (job.json "state"):
//
//   queued --claim--> running --all shards ok--> done
//     |                  |  \--degraded/error--> failed
//     |                  \--cancel.flag--------> cancelled
//     \--cancel.flag--> cancelled
//
// A `running` job is a lease, not a lock: a coordinator killed mid-job
// leaves it `running` on disk, and the next coordinator re-claims and
// resumes it from its checkpoints.  Submission commits by writing
// job.json last, so a half-created job directory is invisible to
// list()/claim and harmless.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/spec.h"
#include "service/supervisor.h"

namespace lcosc::service {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

[[nodiscard]] std::string to_string(JobState state);
[[nodiscard]] JobState parse_job_state(const std::string& name);

struct JobRecord {
  std::string id;             // directory name: zero-padded sequence [+ "-name"]
  std::uint64_t sequence = 0;  // submit order (monotonic per queue)
  int priority = 0;            // higher claims first
  JobState state = JobState::Queued;
  int runs = 0;                // coordinator claims (first run + resumes)
  long long run_order = -1;    // global claim order; -1 = never claimed
  std::string error;           // failure reason (state == Failed)
  bool cancel_requested = false;  // cancel.flag present (overlay, not in job.json)

  // Paths inside the job directory (derived, not persisted).
  std::string dir;
  std::string spec_path;
  std::string checkpoint_dir;
  std::string report_path;
  std::string progress_path;

  [[nodiscard]] bool terminal() const {
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled;
  }
};

// Per-shard completion derived from the durable checkpoint streams, so
// it is queryable with or without a live coordinator.
struct JobProgress {
  std::size_t cases_total = 0;
  std::size_t cases_done = 0;
  struct Shard {
    int index = 0;
    CaseRange range{};
    std::size_t done = 0;
  };
  std::vector<Shard> shards;  // layout of the job's current spec.shards
};

// Claim ordering: priority desc, then submit order.  Total, so the
// coordinator's claim sequence is deterministic for a fixed queue state.
[[nodiscard]] bool claim_order_less(const JobRecord& a, const JobRecord& b);

// Override one spec key (the JSON key names of service/spec.h, e.g.
// "seed", "samples", "run_duration_ms") with a raw value string and
// re-validate.  Used by sweep submission to expand a template.
[[nodiscard]] CampaignSpec apply_spec_override(const CampaignSpec& templ,
                                               const std::string& key,
                                               const std::string& value);

class JobQueue {
 public:
  // Opens (creating if needed) the queue rooted at `root`.
  explicit JobQueue(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }

  // Append one job.  The spec's checkpoint_dir/report_path are rewritten
  // into the job directory; `name` ([A-Za-z0-9_-], other bytes mapped to
  // '_') suffixes the directory name for humans.  Commit point is the
  // atomic job.json write: a crash mid-submit leaves no claimable job.
  JobRecord submit(const CampaignSpec& spec, int priority = 0, const std::string& name = "");

  // Expand `templ` over a sweep: one job per value, with `key` (a spec
  // JSON key) overridden.  Jobs are named "<name><value>" and submitted
  // in value order at equal priority (submit order breaks the tie).
  std::vector<JobRecord> submit_sweep(const CampaignSpec& templ, const std::string& key,
                                      const std::vector<std::string>& values,
                                      int priority = 0, const std::string& name = "");

  // All committed jobs, in submit order.  Unreadable/incomplete job
  // directories are skipped.
  [[nodiscard]] std::vector<JobRecord> list() const;
  [[nodiscard]] std::optional<JobRecord> find(const std::string& id) const;

  // Record a cancellation request (atomic cancel.flag write).  The
  // coordinator honors it at its next poll: a queued job is marked
  // cancelled without running; a running job's workers are killed and
  // reaped first.  Returns false for unknown or already-terminal jobs.
  bool cancel(const std::string& id);
  [[nodiscard]] bool cancel_requested(const JobRecord& job) const;

  // Durable per-shard completion counts (scans the checkpoint streams).
  [[nodiscard]] JobProgress progress(const JobRecord& job) const;

  // The job's effective spec / finished report, read from the job dir.
  [[nodiscard]] CampaignSpec load_spec(const JobRecord& job) const;
  [[nodiscard]] std::optional<std::string> report(const JobRecord& job) const;

  // Persist a state transition (atomic job.json rewrite).  `job` is
  // updated in place.  The coordinator is the only state writer after
  // submission, so transitions never race.
  void mark(JobRecord& job, JobState state, const std::string& error = "");
  // Persist a claim: state=running, runs+1, run_order assigned on the
  // first claim.
  void claim(JobRecord& job, long long run_order);

  // Jobs a coordinator may claim: queued, plus running jobs abandoned by
  // a dead coordinator (`exclude` holds ids this coordinator already
  // supervises), in claim order.
  [[nodiscard]] std::vector<JobRecord> claimable(
      const std::vector<std::string>& exclude = {}) const;

  // Largest run_order ever assigned (-1 when none): the next coordinator
  // continues the global claim sequence from here.
  [[nodiscard]] long long max_run_order() const;

  // Stream the coordinator's live view into progress.json (atomic): a
  // flat JSON object (FlatJsonParser-compatible, so `campaign_service
  // top` and external tooling can poll it) with per-shard checkpoint
  // completion and supervision counters, a `heartbeat_unix_ms` wall
  // clock (distinguishes a slow job from a dead coordinator), fleet
  // slot utilization when the caller knows it (pass -1 when not), and a
  // `cases_per_s` throughput averaged over a trailing ~10 s window --
  // chunked shard drains commit up to chunk_lanes cases per burst, so a
  // snapshot-to-snapshot delta would whipsaw between 0 and hundreds.
  void write_progress(const JobRecord& job, const std::vector<ShardStatus>& shards,
                      int slots_in_use = -1, int slots_capacity = -1) const;

 private:
  [[nodiscard]] std::string jobs_dir() const { return root_ + "/jobs"; }
  [[nodiscard]] std::optional<JobRecord> read_job(const std::string& dir) const;
  void write_job(const JobRecord& job) const;

  std::string root_;

  // Trailing completion samples per job id, feeding the windowed
  // cases_per_s in write_progress (live telemetry only -- never part of
  // the deterministic artifacts).
  struct ProgressSample {
    std::size_t cases_done = 0;
    std::chrono::steady_clock::time_point at{};
  };
  mutable std::map<std::string, std::deque<ProgressSample>> rate_history_;
};

struct QueueCoordinatorOptions {
  int shard_slots = 0;        // global live-worker cap across jobs; 0 = unlimited
  int max_parallel_jobs = 2;  // campaigns supervised concurrently
  int poll_ms = 20;           // supervision + claim poll period
  int progress_every_ms = 250;  // progress.json refresh period per job
  bool drain_and_exit = true;   // exit once no claimable or running job remains
  bool verbose = false;         // job/shard lifecycle lines to stderr
  std::string worker_exe;       // forwarded to ServiceOptions::worker_exe
};

struct QueueCoordinatorResult {
  int jobs_done = 0;
  int jobs_failed = 0;
  int jobs_cancelled = 0;
};

// Claim-and-run loop: claims claimable jobs up to max_parallel_jobs,
// steps every active CampaignSupervisor against one shared ShardSlotPool
// of `shard_slots`, streams progress, and settles each job's terminal
// state.  SIGINT/SIGTERM kill and reap all live shard workers, leave the
// active jobs `running` (resumable leases), and re-raise.  With
// drain_and_exit=false the loop keeps polling for new submissions until
// a signal arrives.
QueueCoordinatorResult run_queue_coordinator(JobQueue& queue,
                                             const QueueCoordinatorOptions& options = {});

}  // namespace lcosc::service
