// Fleet telemetry pipeline for the sharded campaign service
// (DESIGN.md §15).
//
// Worker side: a TelemetryFlusher in the shard process persists the
// metrics registry and span buffer to per-shard, per-attempt files under
// <checkpoint_dir>/telemetry/ (periodic + at-exit, atomic temp+rename),
// so the work a worker counted survives its _exit — or its SIGKILL, up
// to the last flush.
//
// Coordinator side: merge_fleet_telemetry() folds every shard file into
// the per-job artifacts —
//   metrics.json    deterministic fleet merge (counters + sim-time
//                   histograms; byte-identical for any shard count)
//   trace.json      one Chrome trace, pid = shard index (Perfetto shows
//                   the whole fleet on one timeline)
//   events.jsonl    per-shard JSONL event logs concatenated in shard
//                   order (lines carry a "shard" field)
//   summary.json    wall-clock case-latency histograms with p50/p95/p99
//                   plus per-shard supervision counters
//
// Wall-clock metrics (histogram names ending ".wall_ms") and gauges are
// nondeterministic per-process measurements: they are excluded from
// metrics.json (which must stay byte-identical across shard layouts)
// and surfaced through summary.json instead.
//
// Crash forensics: append_forensics_row() records one flat JSONL row per
// worker exit (exit code / signal, rusage, last checkpoint index, stderr
// tail) into <checkpoint_dir>/telemetry/forensics.jsonl — always on, so
// a SIGKILL'd or wedged shard is diagnosable after the fact.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lcosc::service {

// <checkpoint_dir>/telemetry — per-shard flush files, merged artifacts
// and forensics all live here (never collides with the *.ckpt scan).
[[nodiscard]] std::string telemetry_dir(const std::string& checkpoint_dir);

// Base name of one worker attempt's flush files: "shard_3_of_8.a2"
// (+ ".metrics.json" / ".trace.jsonl" / ".events.jsonl").  Attempts get
// distinct files so a restarted worker never overwrites the telemetry a
// killed predecessor already flushed.
[[nodiscard]] std::string shard_telemetry_base(int shard_index, int shard_count, int attempt);

// Histogram naming convention: names ending ".wall_ms" hold wall-clock
// measurements and are excluded from the deterministic fleet merge.
[[nodiscard]] bool is_wall_metric(std::string_view name);

// Worker-side flusher.  Inert (no thread, no files) when neither metrics
// nor tracing is enabled; otherwise flushes every `period` from a
// background thread and once more from the destructor.  period <= 0
// keeps only the at-exit flush.
class TelemetryFlusher {
 public:
  TelemetryFlusher(const std::string& dir, const std::string& base,
                   std::chrono::milliseconds period = std::chrono::milliseconds(500));
  ~TelemetryFlusher();

  void flush_now();

  TelemetryFlusher(const TelemetryFlusher&) = delete;
  TelemetryFlusher& operator=(const TelemetryFlusher&) = delete;

 private:
  std::string metrics_path_;
  std::string trace_path_;
  bool metrics_on_ = false;
  bool trace_on_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// --- crash forensics -------------------------------------------------------

struct ForensicsRow {
  long long ts_unix_ms = 0;
  int shard = -1;
  int attempt = 0;     // 1-based spawn number of this worker
  long long pid = -1;
  std::string event;   // exit | crash | timeout | shutdown | spawn_error
  int exit_code = 0;   // decoded wait status (128+sig when signaled); errno for spawn_error
  int signal = 0;      // terminating signal, 0 when none
  double wall_s = 0.0;
  double cpu_user_s = 0.0;
  double cpu_sys_s = 0.0;
  long long max_rss_kb = 0;
  long long last_checkpoint_index = -1;  // highest committed case index, -1 = none
  std::uint64_t checkpoint_records = 0;
  std::string stderr_tail;
};

[[nodiscard]] std::string forensics_path(const std::string& checkpoint_dir);

// Conventional name for a signal number ("SIGKILL"); "signal_<n>" for
// anything unmapped.
[[nodiscard]] std::string signal_name(int sig);

// Append one flat JSONL row (single O_APPEND write, so concurrent
// coordinators never interleave and a crash loses at most this row).
bool append_forensics_row(const std::string& path, const ForensicsRow& row);

// --- fleet merge -----------------------------------------------------------

struct FleetTelemetry {
  obs::MetricsSnapshot metrics;  // deterministic merge: no gauges, no *.wall_ms
  std::vector<obs::HistogramSnapshot> wall_histograms;  // merged, name-sorted
  int metrics_files = 0;
  int trace_files = 0;
  int event_files = 0;
};

// Parse and merge every shard_*.metrics.json under `dir` (unreadable or
// torn files are skipped — the atomic flush makes them whole-or-absent).
[[nodiscard]] FleetTelemetry merge_fleet_metrics(const std::string& dir);

// Merge every shard_*.trace.jsonl under `dir` into one Chrome trace at
// `out_path` (pid = shard index).  Returns the number of shard trace
// files merged; 0 writes nothing.
int write_fleet_trace(const std::string& dir, const std::string& out_path);

// Concatenate every shard_*.events.jsonl under `dir` (numeric shard
// order, torn tail lines dropped) into `out_path`.  Returns the number
// of event files merged; 0 writes nothing.
int merge_fleet_events(const std::string& dir, const std::string& out_path);

// Supervision stats feeding summary.json (mirrors ShardStatus without
// depending on supervisor.h).
struct ShardSummary {
  int index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  int spawns = 0;
  int restarts = 0;
  int timeouts = 0;
  std::size_t cases_computed = 0;
  double active_seconds = 0.0;
  bool ok = true;
};

struct FleetSummaryInfo {
  std::string campaign;  // kind name ("tolerance", "internal_fmea", ...)
  std::size_t cases_total = 0;
  std::size_t cases_resumed = 0;
  std::size_t cases_failed = 0;
  int shards = 0;
  std::vector<ShardSummary> per_shard;
};

// Write summary.json: campaign identity, fleet/per-shard supervision
// counters, and p50/p95/p99 for every wall-clock latency histogram.
bool write_fleet_summary(const std::string& path, const FleetSummaryInfo& info,
                         const FleetTelemetry& telemetry);

// Coordinator entry, called from CampaignSupervisor::finish(): merge all
// per-shard telemetry under <checkpoint_dir>/telemetry into metrics.json
// / trace.json / events.jsonl and write summary.json.  A run with
// telemetry disabled has no shard files and produces no artifacts.
// Returns true when anything was written.
bool merge_fleet_telemetry(const std::string& checkpoint_dir, const FleetSummaryInfo& info);

}  // namespace lcosc::service
