// Crash-safe per-shard checkpoint stream for the campaign service.
//
// A checkpoint file is a flat sequence of self-delimiting records:
//
//   [u32 payload_len][u32 case_index][u32 crc32(payload)][payload bytes]
//
// (all little-endian).  Each append is one write() to an O_APPEND fd
// followed by fsync(), so a `kill -9` at any instant leaves a file whose
// longest valid prefix is exactly the set of fully-committed records: a
// torn tail either stops short of a full header, promises more payload
// than the file holds, or fails its CRC.  read_checkpoint() returns that
// valid prefix and its byte length; CheckpointWriter truncates to the
// valid prefix before appending, so a resumed shard continues a torn
// file cleanly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lcosc::service {

// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

struct CheckpointRecord {
  std::uint32_t index = 0;  // absolute case index within the campaign
  std::string payload;      // serialized case row (adapter codec)
  friend bool operator==(const CheckpointRecord&, const CheckpointRecord&) = default;
};

struct CheckpointReadResult {
  std::vector<CheckpointRecord> records;
  // Length of the valid prefix; bytes past it (a torn or corrupt tail)
  // are ignored by readers and truncated away by CheckpointWriter.
  std::uint64_t valid_bytes = 0;
  // False when trailing bytes had to be discarded.
  bool clean = true;
};

// Read every fully-committed record of `path`.  A missing file reads as
// empty-and-clean (a fresh shard).  Corruption is not an error: reading
// stops at the first bad frame and reports what survived.
[[nodiscard]] CheckpointReadResult read_checkpoint(const std::string& path);

// Numeric-aware file-name ordering: runs of digits compare by value, so
// "shard_2_of_12.ckpt" sorts before "shard_10_of_12.ckpt" (a plain
// lexical sort puts 10 before 2, which made first-wins resume merges
// depend on the shard layout).  Non-digit runs compare bytewise; a full
// bytewise compare breaks exact ties (e.g. leading zeros) so the order
// is total and deterministic.
[[nodiscard]] bool numeric_name_less(std::string_view a, std::string_view b);

// Merge every fully-committed record of every *.ckpt file in `dir`,
// keyed by absolute case index.  Files are visited in numeric_name_less
// order of their names; within the resulting stream the FIRST record for
// an index wins, EXCEPT that a later record replaces an earlier one the
// `is_degraded` predicate flags (a shard that once recorded a degraded
// SimulationError row must not shadow the real record another layout's
// shard committed for the same index).  A null predicate means plain
// first-wins.
[[nodiscard]] std::map<std::uint32_t, std::string> scan_checkpoint_dir(
    const std::string& dir,
    const std::function<bool(const std::string&)>& is_degraded = {});

// Append-only record writer.  Opening truncates the file to its valid
// prefix (discarding any torn tail from a killed predecessor) and
// positions at its end; append() commits one record durably (write +
// fsync) before returning.  Throws lcosc::Error on I/O failure.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string path);
  ~CheckpointWriter();

  // Records already committed when the writer opened (resume set).
  [[nodiscard]] const std::vector<CheckpointRecord>& existing() const { return existing_; }

  void append(std::uint32_t index, std::string_view payload);

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

 private:
  std::string path_;
  int fd_ = -1;
  std::vector<CheckpointRecord> existing_;
};

}  // namespace lcosc::service
