#include "service/adapters.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "system/fmea_campaign.h"
#include "system/internal_fmea.h"
#include "system/tolerance_analysis.h"
#include "tank/rlc_tank.h"

namespace lcosc::service {

namespace {

// --- exact field codec ------------------------------------------------------
//
// Records are '|'-separated fields.  Doubles go through hexfloat
// ("%a"/strtod), which round-trips every finite value bit for bit, so a
// report rendered from checkpointed records is byte-identical to one
// rendered from freshly-computed rows.  Strings (error messages) escape
// the separator and newlines.

std::string enc_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '|': out += "\\p"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
}

class FieldWriter {
 public:
  FieldWriter& d(double v) { return raw(enc_double(v)); }
  FieldWriter& i(long long v) { return raw(std::to_string(v)); }
  FieldWriter& b(bool v) { return raw(v ? "1" : "0"); }
  FieldWriter& s(const std::string& v) {
    if (!line_.empty()) line_.push_back('|');
    append_escaped(line_, v);
    return *this;
  }
  [[nodiscard]] std::string str() && { return std::move(line_); }

 private:
  FieldWriter& raw(std::string field) {
    if (!line_.empty()) line_.push_back('|');
    line_ += field;
    return *this;
  }
  std::string line_;
};

class FieldReader {
 public:
  explicit FieldReader(const std::string& record) {
    std::string field;
    for (std::size_t i = 0; i < record.size(); ++i) {
      const char c = record[i];
      if (c == '\\' && i + 1 < record.size()) {
        const char e = record[++i];
        if (e == 'p') field.push_back('|');
        else if (e == 'n') field.push_back('\n');
        else field.push_back(e);
      } else if (c == '|') {
        fields_.push_back(std::move(field));
        field.clear();
      } else {
        field.push_back(c);
      }
    }
    fields_.push_back(std::move(field));
  }

  double d() { return std::strtod(next().c_str(), nullptr); }
  long long i() { return std::strtoll(next().c_str(), nullptr, 10); }
  bool b() { return next() == "1"; }
  std::string s() { return next(); }

 private:
  const std::string& next() {
    LCOSC_REQUIRE(pos_ < fields_.size(), "campaign record: too few fields");
    return fields_[pos_++];
  }

  std::vector<std::string> fields_;
  std::size_t pos_ = 0;
};

void enc_status(FieldWriter& w, const CampaignCase& status) {
  w.i(static_cast<int>(status.outcome)).i(status.retries).s(status.error);
}

CampaignCase dec_status(FieldReader& r) {
  CampaignCase status;
  status.outcome = static_cast<CaseOutcome>(r.i());
  status.retries = static_cast<int>(r.i());
  status.error = r.s();
  return status;
}

// Fixed human-readable number format for report bodies ("%.6g"):
// deterministic given bit-identical inputs, which the hexfloat records
// guarantee.
std::string g6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// --- shared bench-default system configs ------------------------------------

tank::TankConfig default_tank() { return tank::design_tank(4.0e6, 40.0, 3.3e-6); }

// --- tolerance adapter ------------------------------------------------------

class ToleranceCampaign final : public ShardableCampaign {
 public:
  explicit ToleranceCampaign(const CampaignSpec& spec) {
    config_.nominal.tank = default_tank();
    config_.nominal.regulation.tick_period = 0.25e-3;
    config_.samples = spec.samples;
    config_.seed = spec.seed;
    config_.run_duration = spec.run_duration;
    config_.max_retries = spec.max_retries;
    config_.retry_backoff = spec.case_backoff;
    config_.chunk_lanes = static_cast<std::size_t>(spec.chunk_lanes);
  }

  [[nodiscard]] std::size_t case_count() const override {
    return static_cast<std::size_t>(config_.samples);
  }

  [[nodiscard]] std::string case_label(std::size_t index) const override {
    return "tolerance:sample_" + std::to_string(index);
  }

  [[nodiscard]] std::string run_case(std::size_t index) const override {
    return encode(system::run_tolerance_sample(config_, static_cast<int>(index)));
  }

  // Chunked drain: the span goes through the lockstep batched engine
  // (run_tolerance_samples cuts it at global chunk_lanes boundaries), so
  // a shard worker advances up to chunk_lanes cases in one SoA time loop
  // instead of one EnvelopeSimulator per case.  Lane arithmetic is
  // independent and the serial fallback replays diverging lanes through
  // run_tolerance_sample, so record i is byte-identical to
  // run_case(first + i) for every span slicing.
  [[nodiscard]] std::vector<std::string> run_cases(std::size_t first,
                                                   std::size_t count) const override {
    const std::vector<system::ToleranceSample> samples =
        system::run_tolerance_samples(config_, first, count);
    std::vector<std::string> records;
    records.reserve(samples.size());
    for (const system::ToleranceSample& sample : samples) records.push_back(encode(sample));
    return records;
  }

  [[nodiscard]] std::size_t chunk_stride() const override { return config_.chunk_lanes; }

  [[nodiscard]] std::string error_record(std::size_t /*index*/,
                                         const std::string& message) const override {
    system::ToleranceSample sample;
    sample.status.outcome = CaseOutcome::SimulationError;
    sample.status.error = message;
    return encode(sample);
  }

  [[nodiscard]] bool is_error_record(const std::string& record) const override {
    return decode(record).status.outcome == CaseOutcome::SimulationError;
  }

  [[nodiscard]] std::string report(const std::vector<std::string>& records) const override {
    system::ToleranceReport rep;
    rep.samples.reserve(records.size());
    for (const std::string& record : records) rep.samples.push_back(decode(record));

    std::size_t completed = 0;
    for (const auto& s : rep.samples) {
      if (s.status.completed()) ++completed;
    }

    std::ostringstream out;
    out << "campaign: tolerance\n"
        << "samples: " << rep.samples.size() << "  seed: " << config_.seed
        << "  run_ms: " << g6(config_.run_duration * 1e3) << "\n"
        << "idx | L_uH | C1_nF | C2_nF | Rs_ohm | f0_MHz | Q | code | amp_V"
           " | supply_mA | window | outcome | retries | error\n";
    for (std::size_t i = 0; i < rep.samples.size(); ++i) {
      const system::ToleranceSample& s = rep.samples[i];
      out << i << " | " << g6(s.tank.inductance * 1e6) << " | "
          << g6(s.tank.capacitance1 * 1e9) << " | " << g6(s.tank.capacitance2 * 1e9)
          << " | " << g6(s.tank.series_resistance) << " | "
          << g6(s.resonance_frequency * 1e-6) << " | " << g6(s.quality_factor) << " | "
          << s.settled_code << " | " << g6(s.settled_amplitude) << " | "
          << g6(s.supply_current * 1e3) << " | " << (s.in_window ? "yes" : "no") << " | "
          << to_string(s.status.outcome) << " | " << s.status.retries << " | "
          << s.status.error << "\n";
    }
    out << "completed: " << completed << "  errors: " << rep.error_count()
        << "  yield: " << g6(rep.yield()) << "\n";
    if (completed > 0) {
      out << "amplitude_V: min " << g6(rep.min_amplitude()) << "  max "
          << g6(rep.max_amplitude()) << "\n"
          << "code: min " << rep.min_code() << "  max " << rep.max_code() << "\n"
          << "supply_mA: max " << g6(rep.max_supply_current() * 1e3) << "\n";
    }
    return out.str();
  }

 private:
  static std::string encode(const system::ToleranceSample& s) {
    FieldWriter w;
    w.d(s.tank.inductance)
        .d(s.tank.capacitance1)
        .d(s.tank.capacitance2)
        .d(s.tank.series_resistance)
        .d(s.resonance_frequency)
        .d(s.quality_factor)
        .i(s.settled_code)
        .d(s.settled_amplitude)
        .d(s.supply_current)
        .b(s.in_window);
    enc_status(w, s.status);
    return std::move(w).str();
  }

  static system::ToleranceSample decode(const std::string& record) {
    FieldReader r(record);
    system::ToleranceSample s;
    s.tank.inductance = r.d();
    s.tank.capacitance1 = r.d();
    s.tank.capacitance2 = r.d();
    s.tank.series_resistance = r.d();
    s.resonance_frequency = r.d();
    s.quality_factor = r.d();
    s.settled_code = static_cast<int>(r.i());
    s.settled_amplitude = r.d();
    s.supply_current = r.d();
    s.in_window = r.b();
    s.status = dec_status(r);
    return s;
  }

  system::ToleranceConfig config_;
};

// --- FMEA row codec (shared by the external and internal adapters) ----------

struct FmeaCaseFields {
  safety::FaultFlags observed{};
  bool detected = false;
  bool expected_channel_hit = false;
  bool safe_state_entered = false;
  std::optional<double> detection_latency;
  int final_code = 0;
  CampaignCase status{};
};

std::string encode_fmea_fields(const FmeaCaseFields& f) {
  FieldWriter w;
  w.b(f.observed.missing_oscillation)
      .b(f.observed.low_amplitude)
      .b(f.observed.asymmetry)
      .b(f.observed.frequency_out_of_band)
      .b(f.detected)
      .b(f.expected_channel_hit)
      .b(f.safe_state_entered)
      .b(f.detection_latency.has_value())
      .d(f.detection_latency.value_or(0.0))
      .i(f.final_code);
  enc_status(w, f.status);
  return std::move(w).str();
}

FmeaCaseFields decode_fmea_fields(const std::string& record) {
  FieldReader r(record);
  FmeaCaseFields f;
  f.observed.missing_oscillation = r.b();
  f.observed.low_amplitude = r.b();
  f.observed.asymmetry = r.b();
  f.observed.frequency_out_of_band = r.b();
  f.detected = r.b();
  f.expected_channel_hit = r.b();
  f.safe_state_entered = r.b();
  const bool has_latency = r.b();
  const double latency = r.d();
  if (has_latency) f.detection_latency = latency;
  f.final_code = static_cast<int>(r.i());
  f.status = dec_status(r);
  return f;
}

std::string latency_cell(const std::optional<double>& latency) {
  return latency.has_value() ? g6(*latency * 1e3) : std::string("-");
}

// --- external FMEA adapter --------------------------------------------------

class ExternalFmeaCampaign final : public ShardableCampaign {
 public:
  explicit ExternalFmeaCampaign(const CampaignSpec& spec) {
    config_.system.tank = default_tank();
    config_.system.regulation.tick_period = 0.25e-3;
    config_.system.waveform_decimation = 0;
    config_.settle_time = spec.settle_time;
    config_.observe_time = spec.observe_time;
    config_.max_retries = spec.max_retries;
    config_.retry_backoff = spec.case_backoff;
  }

  [[nodiscard]] std::size_t case_count() const override { return system::fmea_case_count(); }

  [[nodiscard]] std::string case_label(std::size_t index) const override {
    return "fmea:" + tank::to_string(system::fmea_fault_list()[index]);
  }

  [[nodiscard]] std::string run_case(std::size_t index) const override {
    const system::FmeaRow row = system::run_fmea_case_at(config_, index);
    FmeaCaseFields f;
    f.observed = row.observed;
    f.detected = row.detected;
    f.expected_channel_hit = row.expected_channel_hit;
    f.safe_state_entered = row.safe_state_entered;
    f.detection_latency = row.detection_latency;
    f.final_code = row.final_code;
    f.status = row.status;
    return encode_fmea_fields(f);
  }

  [[nodiscard]] std::string error_record(std::size_t /*index*/,
                                         const std::string& message) const override {
    FmeaCaseFields f;
    f.status.outcome = CaseOutcome::SimulationError;
    f.status.error = message;
    return encode_fmea_fields(f);
  }

  [[nodiscard]] bool is_error_record(const std::string& record) const override {
    return decode_fmea_fields(record).status.outcome == CaseOutcome::SimulationError;
  }

  [[nodiscard]] std::string report(const std::vector<std::string>& records) const override {
    const std::vector<tank::TankFault> faults = system::fmea_fault_list();
    system::FmeaReport rep;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const FmeaCaseFields f = decode_fmea_fields(records[i]);
      system::FmeaRow row;
      row.fault = faults[i];
      row.expected = tank::expected_detection(faults[i]);
      row.observed = f.observed;
      row.detected = f.detected;
      row.expected_channel_hit = f.expected_channel_hit;
      row.safe_state_entered = f.safe_state_entered;
      row.detection_latency = f.detection_latency;
      row.final_code = f.final_code;
      row.status = f.status;
      rep.rows.push_back(row);
    }

    std::ostringstream out;
    out << "campaign: fmea\n"
        << "cases: " << rep.rows.size() << "  settle_ms: " << g6(config_.settle_time * 1e3)
        << "  observe_ms: " << g6(config_.observe_time * 1e3) << "\n"
        << "fault | expected | detected | expected_hit | safe_state | latency_ms"
           " | final_code | outcome | retries | error\n";
    for (const system::FmeaRow& row : rep.rows) {
      out << tank::to_string(row.fault) << " | " << tank::to_string(row.expected) << " | "
          << (row.detected ? "yes" : "no") << " | "
          << (row.expected_channel_hit ? "yes" : "no") << " | "
          << (row.safe_state_entered ? "yes" : "no") << " | "
          << latency_cell(row.detection_latency) << " | " << row.final_code << " | "
          << to_string(row.status.outcome) << " | " << row.status.retries << " | "
          << row.status.error << "\n";
    }
    out << "detected: " << rep.detected_count() << "/" << rep.rows.size()
        << "  expected_channel: " << rep.expected_channel_count() << "/" << rep.rows.size()
        << "\n";
    return out.str();
  }

 private:
  system::FmeaCampaignConfig config_;
};

// --- internal FMEA adapter --------------------------------------------------

class InternalFmeaCampaign final : public ShardableCampaign {
 public:
  explicit InternalFmeaCampaign(const CampaignSpec& spec) {
    config_.system.tank = default_tank();
    config_.system.regulation.tick_period = 0.25e-3;
    config_.system.regulation.nvm_code = 45;
    config_.system.waveform_decimation = 0;
    config_.settle_time = spec.settle_time;
    config_.observe_time = spec.observe_time;
    config_.max_retries = spec.max_retries;
    config_.retry_backoff = spec.case_backoff;
    chunk_stride_ = static_cast<std::size_t>(spec.chunk_lanes);
    faults_ = system::internal_fmea_case_list(config_);
  }

  [[nodiscard]] std::size_t case_count() const override { return faults_.size(); }

  [[nodiscard]] std::string case_label(std::size_t index) const override {
    return "internal_fmea:" + faults::to_string(faults_[index]);
  }

  [[nodiscard]] std::string run_case(std::size_t index) const override {
    return encode_row(system::run_internal_fmea_case_at(config_, index));
  }

  // Chunked drain: a contiguous span shares one healthy settle prefix (a
  // paused RunSession copied per fault), skipping the re-simulated
  // startup that dominates each case.  Rows are byte-identical to
  // per-case execution -- diverging continuations fall back to the full
  // serial case inside run_internal_fmea_cases.
  [[nodiscard]] std::vector<std::string> run_cases(std::size_t first,
                                                   std::size_t count) const override {
    const std::vector<system::InternalFmeaRow> rows =
        system::run_internal_fmea_cases(config_, first, count);
    std::vector<std::string> records;
    records.reserve(rows.size());
    for (const system::InternalFmeaRow& row : rows) records.push_back(encode_row(row));
    return records;
  }

  [[nodiscard]] std::size_t chunk_stride() const override { return chunk_stride_; }

  [[nodiscard]] std::string error_record(std::size_t /*index*/,
                                         const std::string& message) const override {
    FmeaCaseFields f;
    f.status.outcome = CaseOutcome::SimulationError;
    f.status.error = message;
    return encode_fmea_fields(f);
  }

  [[nodiscard]] bool is_error_record(const std::string& record) const override {
    return decode_fmea_fields(record).status.outcome == CaseOutcome::SimulationError;
  }

  [[nodiscard]] std::string report(const std::vector<std::string>& records) const override {
    system::InternalFmeaReport rep;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const FmeaCaseFields f = decode_fmea_fields(records[i]);
      system::InternalFmeaRow row;
      row.fault = faults_[i];
      row.expected = faults::expected_detection(faults_[i]);
      row.observed = f.observed;
      row.detected = f.detected;
      row.expected_channel_hit = f.expected_channel_hit;
      row.safe_state_entered = f.safe_state_entered;
      row.detection_latency = f.detection_latency;
      row.final_code = f.final_code;
      row.status = f.status;
      rep.rows.push_back(row);
    }

    std::ostringstream out;
    out << "campaign: internal_fmea\n"
        << "cases: " << rep.rows.size() << "  settle_ms: " << g6(config_.settle_time * 1e3)
        << "  observe_ms: " << g6(config_.observe_time * 1e3) << "\n"
        << "fault | expected | observed | detected | safe_state | latency_ms"
           " | final_code | outcome | retries | error\n";
    for (const system::InternalFmeaRow& row : rep.rows) {
      out << faults::to_string(row.fault) << " | " << faults::to_string(row.expected)
          << " | " << faults::to_string(row.observed_channel()) << " | "
          << (row.detected ? "yes" : "no") << " | "
          << (row.safe_state_entered ? "yes" : "no") << " | "
          << latency_cell(row.detection_latency) << " | " << row.final_code << " | "
          << to_string(row.status.outcome) << " | " << row.status.retries << " | "
          << row.status.error << "\n";
    }
    out << "completed: " << rep.completed_count() << "  errors: " << rep.error_count()
        << "  detected: " << rep.detected_count()
        << "  diagnostic_coverage: " << g6(rep.diagnostic_coverage()) << "\n";
    for (const std::string& gap : rep.uncovered_gaps()) out << "gap: " << gap << "\n";
    return out.str();
  }

 private:
  [[nodiscard]] static std::string encode_row(const system::InternalFmeaRow& row) {
    FmeaCaseFields f;
    f.observed = row.observed;
    f.detected = row.detected;
    f.expected_channel_hit = row.expected_channel_hit;
    f.safe_state_entered = row.safe_state_entered;
    f.detection_latency = row.detection_latency;
    f.final_code = row.final_code;
    f.status = row.status;
    return encode_fmea_fields(f);
  }

  system::InternalFmeaConfig config_;
  std::vector<faults::InternalFault> faults_;
  std::size_t chunk_stride_ = 64;
};

}  // namespace

std::unique_ptr<ShardableCampaign> make_campaign(const CampaignSpec& spec) {
  // Same bound parse_spec_json enforces; flag-built specs (--chunk-lanes)
  // reach here without passing through the JSON parser, and an
  // out-of-range value must be a crisp up-front refusal, not a shard
  // worker crash-looping into degraded rows.
  LCOSC_REQUIRE(spec.chunk_lanes >= 1 && spec.chunk_lanes <= 4096,
                "campaign spec: chunk_lanes must be in [1, 4096]");
  switch (spec.kind) {
    case CampaignKind::Tolerance:
      return std::make_unique<ToleranceCampaign>(spec);
    case CampaignKind::ExternalFmea:
      return std::make_unique<ExternalFmeaCampaign>(spec);
    case CampaignKind::InternalFmea:
      return std::make_unique<InternalFmeaCampaign>(spec);
  }
  throw ConfigError("unknown campaign kind");
}

}  // namespace lcosc::service
