#include "safety/asymmetry_detector.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::safety {

AsymmetryDetector::AsymmetryDetector(AsymmetryConfig config)
    : config_(config), rectifier_(config.filter_tau) {
  LCOSC_REQUIRE(config_.threshold > 0.0, "asymmetry threshold must be positive");
  LCOSC_REQUIRE(config_.persistence > 0.0, "persistence must be positive");
}

bool AsymmetryDetector::step(double t, double dt, double v_lc1, double v_lc2) {
  const double midpoint = 0.5 * (v_lc1 + v_lc2);    // VR0
  const double differential = v_lc1 - v_lc2;        // phase reference
  rectifier_.step(dt, midpoint, differential);
  const bool above = std::abs(rectifier_.output()) > config_.threshold;
  if (above && !above_) above_since_ = t;
  above_ = above;
  if (above_ && (t - above_since_) >= config_.persistence) fault_ = true;
  return fault_;
}

void AsymmetryDetector::reset(double t) {
  rectifier_.reset();
  above_since_ = t;
  above_ = false;
  fault_ = false;
}

}  // namespace lcosc::safety
