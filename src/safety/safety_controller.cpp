#include "safety/safety_controller.h"

namespace lcosc::safety {

SafetyController::SafetyController(SafetyControllerConfig config)
    : config_(config),
      watchdog_(config.watchdog),
      low_amplitude_(config.low_amplitude),
      asymmetry_(config.asymmetry),
      frequency_(config.frequency) {}

bool SafetyController::step(double t, double dt, double v_lc1, double v_lc2) {
  watchdog_.step(t, v_lc1 - v_lc2);
  if (t - reset_time_ >= config_.arm_delay) {
    low_amplitude_.step(t, dt, v_lc1, v_lc2);
    asymmetry_.step(t, dt, v_lc1, v_lc2);
    frequency_.step(t, v_lc1 - v_lc2);
  }
  return safe_state_requested();
}

FaultFlags SafetyController::flags() const {
  const bool watchdog_dead = fault_bus_ != nullptr && fault_bus_->watchdog_dead();
  return {.missing_oscillation = !watchdog_dead && watchdog_.fault(),
          .low_amplitude = low_amplitude_.fault(),
          .asymmetry = asymmetry_.fault(),
          .frequency_out_of_band = frequency_.fault()};
}

void SafetyController::reset(double t) {
  reset_time_ = t;
  watchdog_.reset(t);
  low_amplitude_.reset(t);
  asymmetry_.reset(t);
  frequency_.reset(t);
}

}  // namespace lcosc::safety
