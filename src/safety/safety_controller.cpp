#include "safety/safety_controller.h"

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::safety {
namespace {

obs::Counter& trips_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("safety.trips");
  return c;
}

// One rising-edge report per channel per armed period: a structured
// event (with the simulation time, attributable to the running case via
// the campaign's EventContext), a trace instant and a per-channel
// counter.
void report_trip(const char* channel, double t) {
  trips_counter().add(1);
  obs::MetricsRegistry::instance().counter(std::string("safety.trips.") + channel).add(1);
  obs::trace_instant(std::string("safety.trip:") + channel);
  if (obs::events_enabled()) {
    obs::Event("safety.trip").str("channel", channel).num("t", t);
  }
}

}  // namespace

SafetyController::SafetyController(SafetyControllerConfig config)
    : config_(config),
      watchdog_(config.watchdog),
      low_amplitude_(config.low_amplitude),
      asymmetry_(config.asymmetry),
      frequency_(config.frequency) {}

bool SafetyController::step(double t, double dt, double v_lc1, double v_lc2) {
  watchdog_.step(t, v_lc1 - v_lc2);
  if (t - reset_time_ >= config_.arm_delay) {
    low_amplitude_.step(t, dt, v_lc1, v_lc2);
    asymmetry_.step(t, dt, v_lc1, v_lc2);
    frequency_.step(t, v_lc1 - v_lc2);
  }
  const FaultFlags now = flags();
  // Rising-edge trip reporting; the cheap common path (no telemetry sink,
  // no new flag) is two relaxed loads and a comparison.
  if (now != tripped_ &&
      (obs::metrics_enabled() || obs::trace_enabled() || obs::events_enabled())) {
    if (now.missing_oscillation && !tripped_.missing_oscillation) {
      report_trip("missing_oscillation", t);
    }
    if (now.low_amplitude && !tripped_.low_amplitude) report_trip("low_amplitude", t);
    if (now.asymmetry && !tripped_.asymmetry) report_trip("asymmetry", t);
    if (now.frequency_out_of_band && !tripped_.frequency_out_of_band) {
      report_trip("frequency_out_of_band", t);
    }
  }
  tripped_ = now;
  return now.any();
}

FaultFlags SafetyController::flags() const {
  const bool watchdog_dead = fault_bus_ != nullptr && fault_bus_->watchdog_dead();
  return {.missing_oscillation = !watchdog_dead && watchdog_.fault(),
          .low_amplitude = low_amplitude_.fault(),
          .asymmetry = asymmetry_.fault(),
          .frequency_out_of_band = frequency_.fault()};
}

void SafetyController::reset(double t) {
  reset_time_ = t;
  watchdog_.reset(t);
  low_amplitude_.reset(t);
  asymmetry_.reset(t);
  frequency_.reset(t);
  tripped_ = {};
}

}  // namespace lcosc::safety
