#include "safety/oscillation_watchdog.h"

#include "common/error.h"

namespace lcosc::safety {

OscillationWatchdog::OscillationWatchdog(WatchdogConfig config)
    : config_(config), comparator_({.hysteresis = config.comparator_hysteresis}) {
  LCOSC_REQUIRE(config_.timeout > 0.0, "watchdog timeout must be positive");
}

bool OscillationWatchdog::step(double t, double v_diff) {
  const bool output = comparator_.update(t, v_diff);
  if (output && !last_output_) {
    last_edge_ = t;
    ++edges_;
  }
  last_output_ = output;
  if (t - last_edge_ > config_.timeout) fault_ = true;
  return fault_;
}

void OscillationWatchdog::reset(double t) {
  comparator_.reset();
  last_output_ = false;
  last_edge_ = t;
  edges_ = 0;
  fault_ = false;
}

}  // namespace lcosc::safety
