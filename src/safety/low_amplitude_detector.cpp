#include "safety/low_amplitude_detector.h"

#include "common/error.h"

namespace lcosc::safety {

LowAmplitudeDetector::LowAmplitudeDetector(LowAmplitudeConfig config)
    : config_(config),
      rectifier_({.forward_drop = 0.0, .filter_tau = config.filter_tau}),
      threshold_vdc1_(regulation::AmplitudeDetector::amplitude_to_vdc1(
          config.target_amplitude * config.threshold_fraction)) {
  LCOSC_REQUIRE(config_.threshold_fraction > 0.0 && config_.threshold_fraction < 1.0,
                "threshold fraction must be in (0,1)");
  LCOSC_REQUIRE(config_.persistence > 0.0, "persistence must be positive");
}

bool LowAmplitudeDetector::step(double t, double dt, double v_lc1, double v_lc2) {
  rectifier_.step(dt, 0.5 * (v_lc1 - v_lc2));
  const bool below = rectifier_.output() < threshold_vdc1_;
  if (below && !below_) below_since_ = t;
  below_ = below;
  if (below_ && (t - below_since_) >= config_.persistence) fault_ = true;
  return fault_;
}

void LowAmplitudeDetector::reset(double t) {
  rectifier_.reset();
  below_since_ = t;
  below_ = false;
  fault_ = false;
}

}  // namespace lcosc::safety
