// Oscillation-frequency supervision.
//
// The paper's driver is designed for 2-5 MHz.  Several external failures
// move the resonance far outside that band long before the amplitude
// collapses -- most notably a missing Cosc (the residual parasitic
// capacitance resonates several times higher).  The same fast comparator
// that clocks the missing-oscillation watchdog yields the frequency for
// free; this monitor averages edge-to-edge periods and latches a fault
// when the frequency stays out of band.
#pragma once

#include <array>

#include "devices/comparator.h"

namespace lcosc::safety {

struct FrequencyMonitorConfig {
  double min_frequency = 2.0e6;
  double max_frequency = 5.0e6;
  double comparator_hysteresis = 50e-3;
  // Number of most-recent rising edges averaged for the estimate.
  int averaging_edges = 16;
  // Out-of-band condition must persist this long to latch.
  double persistence = 100e-6;
};

class FrequencyMonitor {
 public:
  explicit FrequencyMonitor(FrequencyMonitorConfig config = {});

  // Advance with the instantaneous differential pin voltage; returns the
  // latched fault flag.  A dead oscillation produces no edges and is the
  // watchdog's job, not this monitor's.
  bool step(double t, double v_diff);

  // Latest frequency estimate [Hz]; 0 until enough edges arrived.
  [[nodiscard]] double measured_frequency() const { return frequency_; }
  [[nodiscard]] bool fault() const { return fault_; }

  void reset(double t = 0.0);

 private:
  static constexpr std::size_t kMaxEdges = 64;

  FrequencyMonitorConfig config_;
  devices::Comparator comparator_;
  bool last_output_ = false;
  std::array<double, kMaxEdges> edge_times_{};
  std::size_t edge_count_ = 0;
  double frequency_ = 0.0;
  bool out_of_band_ = false;
  double out_since_ = 0.0;
  bool fault_ = false;
};

}  // namespace lcosc::safety
