// Low-amplitude detection (paper Sections 6-7): the same rectify-filter-
// compare principle as the regulation window, but against a lower fault
// threshold.  Detects degraded tank quality (shorted turns, increased
// series resistance) where the driver can no longer reach the regulation
// target even at maximum current.
#pragma once

#include "devices/rectifier.h"
#include "regulation/amplitude_detector.h"

namespace lcosc::safety {

struct LowAmplitudeConfig {
  // Fault threshold as a fraction of the regulation target amplitude.
  double threshold_fraction = 0.5;
  // Regulation target (differential peak) the fraction refers to.
  double target_amplitude = 2.7;
  // VDC1 must stay below the threshold for this long to latch the fault
  // (rides through startup and regulation transients).
  double persistence = 3e-3;
  double filter_tau = 20e-6;
};

class LowAmplitudeDetector {
 public:
  explicit LowAmplitudeDetector(LowAmplitudeConfig config = {});

  // Advance with the instantaneous pin voltages (relative to Vref).
  bool step(double t, double dt, double v_lc1, double v_lc2);

  [[nodiscard]] bool fault() const { return fault_; }
  [[nodiscard]] double vdc1() const { return rectifier_.output(); }
  [[nodiscard]] double threshold_vdc1() const { return threshold_vdc1_; }

  void reset(double t = 0.0);

 private:
  LowAmplitudeConfig config_;
  devices::FullWaveRectifierFilter rectifier_;
  double threshold_vdc1_;
  double below_since_ = 0.0;
  bool below_ = false;
  bool fault_ = false;
};

}  // namespace lcosc::safety
