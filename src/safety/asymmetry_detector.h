// Amplitude-asymmetry detection between the LC1 and LC2 pins (paper
// Section 7): with a healthy tank the midpoint VR0 = (v1+v2)/2 is a DC
// voltage; if one of the external capacitors is missing or degraded the
// pins swing unequally and VR0 oscillates at the tank frequency.  The
// silicon detects this by synchronous rectification of VR0 (phase
// reference: the pin differential), filtering, and comparison with a
// reference.
#pragma once

#include "devices/rectifier.h"

namespace lcosc::safety {

struct AsymmetryConfig {
  // Filtered synchronous-rectifier output that latches the fault [V].
  double threshold = 60e-3;
  // The detector output must stay above the threshold for this long.
  double persistence = 1e-3;
  double filter_tau = 50e-6;
};

class AsymmetryDetector {
 public:
  explicit AsymmetryDetector(AsymmetryConfig config = {});

  // Advance with the instantaneous pin voltages (relative to Vref).
  bool step(double t, double dt, double v_lc1, double v_lc2);

  [[nodiscard]] bool fault() const { return fault_; }
  // Filtered synchronous rectifier output (signed; sign identifies which
  // capacitor failed).
  [[nodiscard]] double detector_output() const { return rectifier_.output(); }

  void reset(double t = 0.0);

 private:
  AsymmetryConfig config_;
  devices::SynchronousRectifierFilter rectifier_;
  double above_since_ = 0.0;
  bool above_ = false;
  bool fault_ = false;
};

}  // namespace lcosc::safety
