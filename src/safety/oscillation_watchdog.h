// Missing-oscillation detection (paper Section 7): a fast comparator
// between the LC1 and LC2 pins turns the oscillation into a clock; a
// time-out circuit raises the fault when the clock stops.
//
// Detects hard failures: open coil connection, pin shorted to ground or
// to the supply.
#pragma once

#include "devices/comparator.h"

namespace lcosc::safety {

struct WatchdogConfig {
  // Comparator hysteresis [V]: the oscillation must exceed this to clock
  // the watchdog, so a collapsed (tiny) oscillation also times out.
  double comparator_hysteresis = 50e-3;
  // Time with no rising clock edge before the fault latches.  Must cover
  // at least one full period at the lowest frequency (2 MHz -> 500 ns)
  // with margin for startup.
  double timeout = 20e-6;
};

class OscillationWatchdog {
 public:
  explicit OscillationWatchdog(WatchdogConfig config = {});

  // Advance with the instantaneous differential pin voltage.  Calls must
  // have non-decreasing time stamps.  Returns the latched fault flag.
  bool step(double t, double v_diff);

  [[nodiscard]] bool fault() const { return fault_; }
  [[nodiscard]] long edge_count() const { return edges_; }
  [[nodiscard]] double last_edge_time() const { return last_edge_; }

  // Restart supervision (arms the timeout from time t).
  void reset(double t = 0.0);

 private:
  WatchdogConfig config_;
  devices::Comparator comparator_;
  bool last_output_ = false;
  double last_edge_ = 0.0;
  long edges_ = 0;
  bool fault_ = false;
};

}  // namespace lcosc::safety
