// Aggregation of the three on-chip detectors and the safety reaction
// (paper Sections 7 and 9): on any latched fault the oscillator driver is
// set to maximum output current and the system outputs are flagged safe.
//
// Detectors are blanked until `arm_delay` after reset so the startup
// transient (zero amplitude, asymmetric growth) cannot latch spurious
// faults.
#pragma once

#include "faults/fault_bus.h"
#include "safety/asymmetry_detector.h"
#include "safety/frequency_monitor.h"
#include "safety/low_amplitude_detector.h"
#include "safety/oscillation_watchdog.h"

namespace lcosc::safety {

struct FaultFlags {
  bool missing_oscillation = false;
  bool low_amplitude = false;
  bool asymmetry = false;
  bool frequency_out_of_band = false;

  [[nodiscard]] bool any() const {
    return missing_oscillation || low_amplitude || asymmetry || frequency_out_of_band;
  }
  friend bool operator==(const FaultFlags&, const FaultFlags&) = default;
};

struct SafetyControllerConfig {
  WatchdogConfig watchdog{};
  LowAmplitudeConfig low_amplitude{};
  AsymmetryConfig asymmetry{};
  FrequencyMonitorConfig frequency{};
  // Blanking after reset before the amplitude/asymmetry detectors arm.
  // The watchdog arms immediately (its own timeout covers startup).
  double arm_delay = 2e-3;
};

class SafetyController {
 public:
  explicit SafetyController(SafetyControllerConfig config = {});

  // Observe an internal-fault bus (nullptr detaches).  A dead-watchdog
  // fault suppresses the missing-oscillation flag: the timer never fires,
  // so the supervision channel is silently lost.
  void attach_fault_bus(const faults::FaultBus* bus) { fault_bus_ = bus; }

  // Advance with the instantaneous pin voltages (relative to Vref).
  // Returns true while the safety reaction is requested.  A rising edge
  // on any detector channel emits a "safety.trip" structured event and a
  // trace instant carrying the simulation time (obs/, DESIGN.md §10).
  bool step(double t, double dt, double v_lc1, double v_lc2);

  [[nodiscard]] FaultFlags flags() const;
  [[nodiscard]] bool safe_state_requested() const { return flags().any(); }

  // Outputs-to-safe-values flag for the surrounding system.
  [[nodiscard]] bool outputs_safe() const { return safe_state_requested(); }

  [[nodiscard]] const OscillationWatchdog& watchdog() const { return watchdog_; }
  [[nodiscard]] const LowAmplitudeDetector& low_amplitude() const { return low_amplitude_; }
  [[nodiscard]] const AsymmetryDetector& asymmetry() const { return asymmetry_; }
  [[nodiscard]] const FrequencyMonitor& frequency() const { return frequency_; }

  void reset(double t = 0.0);

 private:
  SafetyControllerConfig config_;
  OscillationWatchdog watchdog_;
  LowAmplitudeDetector low_amplitude_;
  AsymmetryDetector asymmetry_;
  FrequencyMonitor frequency_;
  double reset_time_ = 0.0;
  FaultFlags tripped_{};  // channels already reported since the last reset
  const faults::FaultBus* fault_bus_ = nullptr;
};

}  // namespace lcosc::safety
