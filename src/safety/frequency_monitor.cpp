#include "safety/frequency_monitor.h"

#include "common/error.h"

namespace lcosc::safety {

FrequencyMonitor::FrequencyMonitor(FrequencyMonitorConfig config)
    : config_(config), comparator_({.hysteresis = config.comparator_hysteresis}) {
  LCOSC_REQUIRE(config_.min_frequency > 0.0 &&
                    config_.max_frequency > config_.min_frequency,
                "frequency band must be ordered and positive");
  LCOSC_REQUIRE(config_.averaging_edges >= 2 &&
                    config_.averaging_edges <= static_cast<int>(kMaxEdges),
                "averaging edge count out of range");
  LCOSC_REQUIRE(config_.persistence > 0.0, "persistence must be positive");
}

bool FrequencyMonitor::step(double t, double v_diff) {
  const bool output = comparator_.update(t, v_diff);
  if (output && !last_output_) {
    // Rising edge: shift into the ring of recent edge times.
    const std::size_t n = static_cast<std::size_t>(config_.averaging_edges);
    edge_times_[edge_count_ % n] = t;
    ++edge_count_;
    if (edge_count_ >= n) {
      // Oldest retained edge is the next slot to be overwritten.
      const double oldest = edge_times_[edge_count_ % n];
      const double span = t - oldest;
      if (span > 0.0) {
        frequency_ = static_cast<double>(n - 1) / span;
        const bool out =
            frequency_ < config_.min_frequency || frequency_ > config_.max_frequency;
        if (out && !out_of_band_) out_since_ = t;
        out_of_band_ = out;
        if (out_of_band_ && (t - out_since_) >= config_.persistence) fault_ = true;
      }
    }
  }
  last_output_ = output;
  return fault_;
}

void FrequencyMonitor::reset(double t) {
  comparator_.reset();
  last_output_ = false;
  edge_count_ = 0;
  frequency_ = 0.0;
  out_of_band_ = false;
  out_since_ = t;
  fault_ = false;
}

}  // namespace lcosc::safety
