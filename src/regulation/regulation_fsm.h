// The digital amplitude regulation state machine (paper Section 4):
// every 1 ms the current limitation code moves by at most one step,
// decided by the window comparator.  Power-on reset presets code 105
// (about 40% of the maximum startup consumption); a few microseconds
// later the code stored in non-volatile memory is applied to speed up
// settling.  A latched safety fault forces the maximum output current.
#pragma once

#include "common/constants.h"
#include "devices/comparator.h"
#include "faults/fault_bus.h"

namespace lcosc::regulation {

struct RegulationConfig {
  double tick_period = kRegulationTickPeriod;  // 1 ms
  int startup_code = kStartupCode;             // 105
  int min_code = 0;
  int max_code = kDacCodeMax;                  // 127
  // Code applied from NVM shortly after startup; -1 disables the preset.
  int nvm_code = -1;
  // Delay from power-on to the NVM preset ("a few us after startup").
  double nvm_delay = 8e-6;
};

enum class RegulationMode { PowerOnReset, Regulating, SafeState };

class RegulationFsm {
 public:
  explicit RegulationFsm(RegulationConfig config = {});

  // Observe an internal-fault bus (nullptr detaches).  A frozen-FSM fault
  // keeps the code latched at its pre-fault value: ticks, NVM presets and
  // the safe-state reaction no longer move the code (the mode latch still
  // records requests, modelling a clock-gated digital block whose output
  // register is stuck).
  void attach_fault_bus(const faults::FaultBus* bus) { fault_bus_ = bus; }

  // Power-on reset: code := startup_code, mode := PowerOnReset.
  void por_reset();

  // Apply the NVM preset (system calls this nvm_delay after startup).
  void apply_nvm_preset();

  // One 1 ms regulation tick: move the code by -1 / 0 / +1.  Below the
  // window means the amplitude is too small -> increase the current.
  // Returns the new code.  Ignored while in SafeState.
  int tick(devices::WindowState window);

  // Latch the safety reaction: maximum output current (paper Section 9:
  // "the oscillator driver is set to maximum output current").
  void enter_safe_state();

  // Leave SafeState (explicit recovery / diagnostic reset).
  void clear_safe_state();

  [[nodiscard]] int code() const { return code_; }
  [[nodiscard]] RegulationMode mode() const { return mode_; }
  [[nodiscard]] long tick_count() const { return ticks_; }
  [[nodiscard]] const RegulationConfig& config() const { return config_; }

 private:
  [[nodiscard]] bool frozen() const {
    return fault_bus_ != nullptr && fault_bus_->fsm_frozen();
  }

  RegulationConfig config_;
  int code_;
  RegulationMode mode_ = RegulationMode::PowerOnReset;
  long ticks_ = 0;
  const faults::FaultBus* fault_bus_ = nullptr;
};

}  // namespace lcosc::regulation
