// Amplitude detection chain of paper Fig. 8: the LC pin voltages are full
// wave rectified against the filtered midpoint VR1, low-pass filtered into
// VDC1, and compared with two bandgap-derived references VR3/VR4 by a
// window comparator.
//
// Conventions: pin voltages are deviations from the Vref operating point;
// the differential amplitude A is the peak of v(LC1) - v(LC2).  A healthy
// symmetric tank swings each pin by A/2 around the midpoint, so
// VDC1(steady) = mean(|A/2 sin|) = A / pi.
#pragma once

#include "devices/bandgap.h"
#include "devices/comparator.h"
#include "devices/rectifier.h"
#include "faults/fault_bus.h"

namespace lcosc::regulation {

struct AmplitudeDetectorConfig {
  // Regulation target: differential peak amplitude [V].
  double target_amplitude = 2.7;
  // Total relative width of the regulation window (VR4-VR3 over the mid
  // value).  Must exceed the worst DAC step (6.25%) so a single step can
  // never jump across the window (paper Section 4).
  double window_width = 0.10;
  // Post-rectifier filter time constant.
  double filter_tau = 20e-6;
  // Rectifier forward drop (0 = active rectifier).
  double rectifier_drop = 0.0;
  // Comparator hysteresis on VDC1 [V].
  double comparator_hysteresis = 2e-3;
};

class AmplitudeDetector {
 public:
  explicit AmplitudeDetector(AmplitudeDetectorConfig config = {},
                             devices::BandgapConfig bandgap = {});

  // Observe an internal-fault bus (nullptr detaches): a dead rectifier
  // zeroes the sensed pin swing, a stuck window comparator output
  // overrides the reported window state.
  void attach_fault_bus(const faults::FaultBus* bus) { fault_bus_ = bus; }

  // Advance by dt with instantaneous pin voltages (relative to Vref).
  void step(double dt, double v_lc1, double v_lc2);

  // Filtered rectified output (the VDC1 node).
  [[nodiscard]] double vdc1() const { return rectifier_.output(); }

  // Window comparator verdict for the present VDC1 (including any active
  // stuck-output comparator fault).
  [[nodiscard]] devices::WindowState window_state() const;

  // Thresholds in VDC1 domain.
  [[nodiscard]] double vr3() const { return vr3_; }
  [[nodiscard]] double vr4() const { return vr4_; }

  // The thresholds expressed as fractions of the bandgap voltage (this is
  // how the silicon generates them -- Fig. 8).
  [[nodiscard]] double vr3_bandgap_fraction() const;
  [[nodiscard]] double vr4_bandgap_fraction() const;

  // Map between the differential amplitude and the VDC1 it settles to.
  [[nodiscard]] static double amplitude_to_vdc1(double amplitude);
  [[nodiscard]] static double vdc1_to_amplitude(double vdc1);

  // Window expressed as amplitude bounds [V differential peak].
  [[nodiscard]] double amplitude_low() const { return vdc1_to_amplitude(vr3_); }
  [[nodiscard]] double amplitude_high() const { return vdc1_to_amplitude(vr4_); }

  // Junction temperature [K].  The silicon derives VR3/VR4 as fixed
  // fractions of the bandgap voltage (Fig. 8), so the regulation window --
  // and with it the regulated amplitude -- drifts with the bandgap
  // curvature.  Rebuilds the window comparator.
  void set_temperature(double temperature_kelvin);
  [[nodiscard]] double temperature() const { return temperature_; }

  void reset();

  [[nodiscard]] const AmplitudeDetectorConfig& config() const { return config_; }

 private:
  void rebuild_window();

  AmplitudeDetectorConfig config_;
  devices::BandgapReference bandgap_;
  devices::FullWaveRectifierFilter rectifier_;
  devices::WindowComparator window_;
  devices::WindowState state_ = devices::WindowState::Below;
  double vr3_ = 0.0;
  double vr4_ = 0.0;
  // Nominal bandgap fractions fixed at design time.
  double vr3_fraction_ = 0.0;
  double vr4_fraction_ = 0.0;
  double temperature_ = 300.0;
  const faults::FaultBus* fault_bus_ = nullptr;
};

}  // namespace lcosc::regulation
