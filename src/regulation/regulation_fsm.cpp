#include "regulation/regulation_fsm.h"

#include <algorithm>

#include "common/error.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::regulation {
namespace {

const char* mode_name(RegulationMode mode) {
  switch (mode) {
    case RegulationMode::PowerOnReset:
      return "power_on_reset";
    case RegulationMode::Regulating:
      return "regulating";
    case RegulationMode::SafeState:
      return "safe_state";
  }
  return "?";
}

obs::Counter& ticks_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("fsm.ticks");
  return c;
}

obs::Counter& code_changes_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("fsm.code_changes");
  return c;
}

obs::Counter& safe_entries_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("fsm.safe_state_entries");
  return c;
}

}  // namespace

RegulationFsm::RegulationFsm(RegulationConfig config)
    : config_(config), code_(config.startup_code) {
  LCOSC_REQUIRE(config_.tick_period > 0.0, "tick period must be positive");
  // min == max pins the code (used by fixed-code characterization runs).
  LCOSC_REQUIRE(config_.min_code >= 0 && config_.max_code <= kDacCodeMax &&
                    config_.min_code <= config_.max_code,
                "invalid code range");
  LCOSC_REQUIRE(config_.startup_code >= config_.min_code &&
                    config_.startup_code <= config_.max_code,
                "startup code outside the code range");
  LCOSC_REQUIRE(config_.nvm_code == -1 || (config_.nvm_code >= config_.min_code &&
                                           config_.nvm_code <= config_.max_code),
                "NVM code outside the code range");
  LCOSC_REQUIRE(config_.nvm_delay >= 0.0, "NVM delay must be non-negative");
}

void RegulationFsm::por_reset() {
  code_ = config_.startup_code;
  mode_ = RegulationMode::PowerOnReset;
  ticks_ = 0;
}

void RegulationFsm::apply_nvm_preset() {
  if (mode_ == RegulationMode::SafeState) return;
  if (config_.nvm_code >= 0 && !frozen()) code_ = config_.nvm_code;
  if (mode_ != RegulationMode::Regulating && obs::events_enabled()) {
    obs::Event("fsm.mode")
        .str("from", mode_name(mode_))
        .str("to", "regulating")
        .integer("code", code_);
  }
  mode_ = RegulationMode::Regulating;
}

int RegulationFsm::tick(devices::WindowState window) {
  ++ticks_;
  ticks_counter().add(1);
  if (mode_ == RegulationMode::SafeState) return code_;
  mode_ = RegulationMode::Regulating;
  if (frozen()) return code_;
  const int previous = code_;
  switch (window) {
    case devices::WindowState::Below:
      code_ = std::min(code_ + 1, config_.max_code);
      break;
    case devices::WindowState::Above:
      code_ = std::max(code_ - 1, config_.min_code);
      break;
    case devices::WindowState::Inside:
      break;
  }
  if (code_ != previous) {
    code_changes_counter().add(1);
    if (obs::events_enabled()) {
      obs::Event("fsm.code")
          .integer("tick", ticks_)
          .integer("from", previous)
          .integer("to", code_);
    }
  }
  return code_;
}

void RegulationFsm::enter_safe_state() {
  if (mode_ != RegulationMode::SafeState) {
    safe_entries_counter().add(1);
    obs::trace_instant("fsm.safe_state");
    if (obs::events_enabled()) {
      obs::Event("fsm.mode")
          .str("from", mode_name(mode_))
          .str("to", "safe_state")
          .integer("tick", ticks_)
          .integer("code", frozen() ? code_ : config_.max_code);
    }
  }
  mode_ = RegulationMode::SafeState;
  if (!frozen()) code_ = config_.max_code;
}

void RegulationFsm::clear_safe_state() {
  if (mode_ == RegulationMode::SafeState) {
    if (obs::events_enabled()) {
      obs::Event("fsm.mode").str("from", "safe_state").str("to", "regulating").integer(
          "code", code_);
    }
    mode_ = RegulationMode::Regulating;
  }
}

}  // namespace lcosc::regulation
