#include "regulation/regulation_fsm.h"

#include <algorithm>

#include "common/error.h"

namespace lcosc::regulation {

RegulationFsm::RegulationFsm(RegulationConfig config)
    : config_(config), code_(config.startup_code) {
  LCOSC_REQUIRE(config_.tick_period > 0.0, "tick period must be positive");
  // min == max pins the code (used by fixed-code characterization runs).
  LCOSC_REQUIRE(config_.min_code >= 0 && config_.max_code <= kDacCodeMax &&
                    config_.min_code <= config_.max_code,
                "invalid code range");
  LCOSC_REQUIRE(config_.startup_code >= config_.min_code &&
                    config_.startup_code <= config_.max_code,
                "startup code outside the code range");
  LCOSC_REQUIRE(config_.nvm_code == -1 || (config_.nvm_code >= config_.min_code &&
                                           config_.nvm_code <= config_.max_code),
                "NVM code outside the code range");
  LCOSC_REQUIRE(config_.nvm_delay >= 0.0, "NVM delay must be non-negative");
}

void RegulationFsm::por_reset() {
  code_ = config_.startup_code;
  mode_ = RegulationMode::PowerOnReset;
  ticks_ = 0;
}

void RegulationFsm::apply_nvm_preset() {
  if (mode_ == RegulationMode::SafeState) return;
  if (config_.nvm_code >= 0 && !frozen()) code_ = config_.nvm_code;
  mode_ = RegulationMode::Regulating;
}

int RegulationFsm::tick(devices::WindowState window) {
  ++ticks_;
  if (mode_ == RegulationMode::SafeState) return code_;
  mode_ = RegulationMode::Regulating;
  if (frozen()) return code_;
  switch (window) {
    case devices::WindowState::Below:
      code_ = std::min(code_ + 1, config_.max_code);
      break;
    case devices::WindowState::Above:
      code_ = std::max(code_ - 1, config_.min_code);
      break;
    case devices::WindowState::Inside:
      break;
  }
  return code_;
}

void RegulationFsm::enter_safe_state() {
  mode_ = RegulationMode::SafeState;
  if (!frozen()) code_ = config_.max_code;
}

void RegulationFsm::clear_safe_state() {
  if (mode_ == RegulationMode::SafeState) mode_ = RegulationMode::Regulating;
}

}  // namespace lcosc::regulation
