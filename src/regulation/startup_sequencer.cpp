#include "regulation/startup_sequencer.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::regulation {

std::string to_string(StartupPhase phase) {
  switch (phase) {
    case StartupPhase::PowerOff: return "power-off";
    case StartupPhase::PorDelay: return "por-delay";
    case StartupPhase::ChargePumpRamp: return "charge-pump-ramp";
    case StartupPhase::DriverEnabled: return "driver-enabled";
    case StartupPhase::Running: return "running";
  }
  return "?";
}

StartupSequencer::StartupSequencer(StartupSequencerConfig config)
    : config_(config), pump_(config.charge_pump) {
  LCOSC_REQUIRE(config_.por_delay >= 0.0, "POR delay must be non-negative");
  LCOSC_REQUIRE(config_.pump_ready_fraction > 0.0 && config_.pump_ready_fraction < 1.0,
                "pump ready fraction must be in (0,1)");
  LCOSC_REQUIRE(config_.nvm_delay >= 0.0, "NVM delay must be non-negative");
}

void StartupSequencer::enter(double t, StartupPhase phase) {
  phase_ = phase;
  phase_entry_time_ = t;
  events_.push_back({t, phase});
}

void StartupSequencer::power_on(double t) {
  LCOSC_REQUIRE(phase_ == StartupPhase::PowerOff, "already powered");
  power_on_time_ = t;
  enter(t, StartupPhase::PorDelay);
}

void StartupSequencer::power_off(double t) {
  pump_.set_enabled(false);
  enter(t, StartupPhase::PowerOff);
}

StartupPhase StartupSequencer::step(double t, double dt) {
  pump_.step(dt);
  switch (phase_) {
    case StartupPhase::PowerOff:
      break;
    case StartupPhase::PorDelay:
      if (t - phase_entry_time_ >= config_.por_delay) {
        pump_.set_enabled(true);
        enter(t, StartupPhase::ChargePumpRamp);
      }
      break;
    case StartupPhase::ChargePumpRamp: {
      const double target = config_.charge_pump.target_voltage;
      if (pump_.output() <= config_.pump_ready_fraction * target) {
        enter(t, StartupPhase::DriverEnabled);
      }
      break;
    }
    case StartupPhase::DriverEnabled:
      if (t - phase_entry_time_ >= config_.nvm_delay) {
        enter(t, StartupPhase::Running);
      }
      break;
    case StartupPhase::Running:
      break;
  }
  return phase_;
}

double StartupSequencer::startup_time() const {
  for (const Event& e : events_) {
    if (e.phase == StartupPhase::Running) return e.time - power_on_time_;
  }
  return -1.0;
}

}  // namespace lcosc::regulation
