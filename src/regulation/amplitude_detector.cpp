#include "regulation/amplitude_detector.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace lcosc::regulation {

namespace {

devices::WindowComparator make_window(double vr3, double vr4, double hysteresis) {
  return devices::WindowComparator(
      {.low_threshold = vr3, .high_threshold = vr4, .hysteresis = hysteresis});
}

}  // namespace

AmplitudeDetector::AmplitudeDetector(AmplitudeDetectorConfig config,
                                     devices::BandgapConfig bandgap)
    : config_(config),
      bandgap_(bandgap),
      rectifier_({.forward_drop = config.rectifier_drop, .filter_tau = config.filter_tau}),
      window_(make_window(1.0, 2.0, 0.0)),  // placeholder, rebuilt below
      vr3_(0.0),
      vr4_(0.0) {
  LCOSC_REQUIRE(config_.target_amplitude > 0.0, "target amplitude must be positive");
  LCOSC_REQUIRE(config_.window_width > 0.0 && config_.window_width < 1.0,
                "window width must be in (0,1)");
  // Design-time sizing at the nominal bandgap: fix the fractions, then
  // derive the actual thresholds from the bandgap at temperature.
  const double mid = amplitude_to_vdc1(config_.target_amplitude);
  vr3_fraction_ = mid * (1.0 - 0.5 * config_.window_width) / bandgap_.nominal();
  vr4_fraction_ = mid * (1.0 + 0.5 * config_.window_width) / bandgap_.nominal();
  rebuild_window();
}

void AmplitudeDetector::rebuild_window() {
  const double vbg = bandgap_.voltage(temperature_);
  vr3_ = vr3_fraction_ * vbg;
  vr4_ = vr4_fraction_ * vbg;
  window_ = make_window(vr3_, vr4_, config_.comparator_hysteresis);
}

void AmplitudeDetector::set_temperature(double temperature_kelvin) {
  LCOSC_REQUIRE(temperature_kelvin > 0.0, "temperature must be positive");
  temperature_ = temperature_kelvin;
  rebuild_window();
}

void AmplitudeDetector::step(double dt, double v_lc1, double v_lc2) {
  // Full wave rectification of the pin voltage against the midpoint VR1:
  // |v1 - (v1+v2)/2| = |v1 - v2| / 2.
  double pin_swing = 0.5 * (v_lc1 - v_lc2);
  if (fault_bus_ != nullptr && fault_bus_->rectifier_dead()) pin_swing = 0.0;
  rectifier_.step(dt, pin_swing);
  state_ = window_.update(rectifier_.output());
}

devices::WindowState AmplitudeDetector::window_state() const {
  if (fault_bus_ != nullptr && fault_bus_->active()) {
    switch (fault_bus_->window_override()) {
      case faults::WindowOverride::ForceBelow:
        return devices::WindowState::Below;
      case faults::WindowOverride::ForceAbove:
        return devices::WindowState::Above;
      case faults::WindowOverride::None:
        break;
    }
  }
  return state_;
}

double AmplitudeDetector::vr3_bandgap_fraction() const { return vr3_ / bandgap_.nominal(); }
double AmplitudeDetector::vr4_bandgap_fraction() const { return vr4_ / bandgap_.nominal(); }

double AmplitudeDetector::amplitude_to_vdc1(double amplitude) {
  // Mean of |(A/2) sin| through the filter: A / pi.
  return amplitude / kPi;
}

double AmplitudeDetector::vdc1_to_amplitude(double vdc1) { return vdc1 * kPi; }

void AmplitudeDetector::reset() {
  rectifier_.reset();
  window_.reset();
  state_ = devices::WindowState::Below;
}

}  // namespace lcosc::regulation
