// Power-up sequencing of the oscillator driver (paper Sections 4 and 8):
//
//   supply good -> POR release -> negative charge pump ramps (the Fig. 11
//   output stage needs its gate rails before the driver may switch) ->
//   driver enable (Ena/EnaN) + current limitation preset to code 105 ->
//   a few microseconds later the NVM-stored code is applied -> running.
//
// The sequencer is a small event-logged state machine driven by the
// simulation clock; OscillatorSystem uses fixed delays internally, this
// class models the full chain (including the charge-pump-ready gate) for
// startup-timing studies.
#pragma once

#include <string>
#include <vector>

#include "devices/charge_pump.h"

namespace lcosc::regulation {

enum class StartupPhase {
  PowerOff,
  PorDelay,        // supply present, POR counter running
  ChargePumpRamp,  // pump enabled, waiting for the negative rail
  DriverEnabled,   // Ena asserted, code at the POR preset
  Running,         // NVM code applied, regulation active
};

[[nodiscard]] std::string to_string(StartupPhase phase);

struct StartupSequencerConfig {
  double por_delay = 2e-6;  // POR release after the supply is good
  // The driver may only be enabled once the negative charge pump reached
  // this fraction of its target (gate rails valid).
  double pump_ready_fraction = 0.8;
  // NVM read time after driver enable ("a few us after startup").
  double nvm_delay = 8e-6;
  devices::ChargePumpConfig charge_pump{};
};

class StartupSequencer {
 public:
  explicit StartupSequencer(StartupSequencerConfig config = {});

  // Supply becomes valid at time t (starts the POR counter).
  void power_on(double t);
  // Supply lost: everything de-asserts immediately.
  void power_off(double t);

  // Advance the sequencer; returns the current phase.
  StartupPhase step(double t, double dt);

  [[nodiscard]] StartupPhase phase() const { return phase_; }
  [[nodiscard]] bool driver_enabled() const {
    return phase_ == StartupPhase::DriverEnabled || phase_ == StartupPhase::Running;
  }
  [[nodiscard]] bool nvm_applied() const { return phase_ == StartupPhase::Running; }
  [[nodiscard]] double charge_pump_voltage() const { return pump_.output(); }

  struct Event {
    double time = 0.0;
    StartupPhase phase{};
  };
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // Total time from power-on to Running (-1 until reached).
  [[nodiscard]] double startup_time() const;

 private:
  void enter(double t, StartupPhase phase);

  StartupSequencerConfig config_;
  devices::NegativeChargePump pump_;
  StartupPhase phase_ = StartupPhase::PowerOff;
  double power_on_time_ = 0.0;
  double phase_entry_time_ = 0.0;
  std::vector<Event> events_;
};

}  // namespace lcosc::regulation
