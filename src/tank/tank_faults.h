// Fault taxonomy of the external LC network (paper paragraph 7) and the
// transformation each fault applies to a healthy tank.
#pragma once

#include <string>

#include "tank/rlc_tank.h"

namespace lcosc::tank {

enum class TankFault {
  None,
  // Hard failures -> missing oscillations.
  OpenCoil,             // broken connection to the coil
  CoilShortToGround,    // LC pin shorted to ground
  CoilShortToSupply,    // LC pin shorted to the supply
  // Quality degradation -> low amplitude.
  ShortedTurns,         // partial coil short: L down, Rs relatively up
  IncreasedResistance,  // corroded contact / thin wire: Rs up
  // Capacitor failures -> amplitude asymmetry between LC1 and LC2.
  MissingCosc1,
  MissingCosc2,
  DegradedCosc1,        // capacitance drop (cracked ceramic)
};

[[nodiscard]] std::string to_string(TankFault fault);

// Expected primary detection channel for each fault class (paper Sec. 7).
enum class DetectionChannel { NoneExpected, MissingOscillation, LowAmplitude, Asymmetry };
[[nodiscard]] DetectionChannel expected_detection(TankFault fault);
[[nodiscard]] std::string to_string(DetectionChannel channel);

// Parameters describing *how bad* a parametric fault is.
struct FaultSeverity {
  double resistance_factor = 5.0;   // Rs multiplier for IncreasedResistance
  double shorted_turn_fraction = 0.5;  // fraction of turns shorted
  double capacitance_factor = 0.2;  // remaining fraction for DegradedCosc1
  // Residual capacitance when a capacitor is "missing" (pin parasitics).
  double parasitic_capacitance = 10e-12;
};

// Structural effects that the ODE model must apply in addition to the
// parameter changes (a broken loop cannot be expressed as an RLC value).
struct FaultedTank {
  TankConfig config;
  bool loop_open = false;          // inductor branch disconnected
  bool pin1_grounded = false;      // LC1 clamped to ground
  bool pin2_grounded = false;
  bool pin1_to_supply = false;     // LC1 clamped to the supply rail
};

// Apply a fault to a healthy tank configuration.
[[nodiscard]] FaultedTank apply_fault(const TankConfig& healthy, TankFault fault,
                                      const FaultSeverity& severity = {});

}  // namespace lcosc::tank
