#include "tank/tank_faults.h"

#include "common/error.h"

namespace lcosc::tank {

std::string to_string(TankFault fault) {
  switch (fault) {
    case TankFault::None: return "none";
    case TankFault::OpenCoil: return "open-coil";
    case TankFault::CoilShortToGround: return "coil-short-to-ground";
    case TankFault::CoilShortToSupply: return "coil-short-to-supply";
    case TankFault::ShortedTurns: return "shorted-turns";
    case TankFault::IncreasedResistance: return "increased-resistance";
    case TankFault::MissingCosc1: return "missing-cosc1";
    case TankFault::MissingCosc2: return "missing-cosc2";
    case TankFault::DegradedCosc1: return "degraded-cosc1";
  }
  return "?";
}

DetectionChannel expected_detection(TankFault fault) {
  switch (fault) {
    case TankFault::None:
      return DetectionChannel::NoneExpected;
    case TankFault::OpenCoil:
    case TankFault::CoilShortToGround:
    case TankFault::CoilShortToSupply:
      return DetectionChannel::MissingOscillation;
    case TankFault::ShortedTurns:
    case TankFault::IncreasedResistance:
      return DetectionChannel::LowAmplitude;
    case TankFault::MissingCosc1:
    case TankFault::MissingCosc2:
    case TankFault::DegradedCosc1:
      return DetectionChannel::Asymmetry;
  }
  return DetectionChannel::NoneExpected;
}

std::string to_string(DetectionChannel channel) {
  switch (channel) {
    case DetectionChannel::NoneExpected: return "none";
    case DetectionChannel::MissingOscillation: return "missing-oscillation";
    case DetectionChannel::LowAmplitude: return "low-amplitude";
    case DetectionChannel::Asymmetry: return "asymmetry";
  }
  return "?";
}

FaultedTank apply_fault(const TankConfig& healthy, TankFault fault,
                        const FaultSeverity& severity) {
  FaultedTank out;
  out.config = healthy;
  switch (fault) {
    case TankFault::None:
      break;
    case TankFault::OpenCoil:
      out.loop_open = true;
      break;
    case TankFault::CoilShortToGround:
      out.pin1_grounded = true;
      break;
    case TankFault::CoilShortToSupply:
      out.pin1_to_supply = true;
      break;
    case TankFault::ShortedTurns: {
      // Shorting a fraction s of the turns scales L by (1-s)^2; the
      // shorted turn acts as a lossy secondary whose reflected resistance
      // adds to the winding loss, so Rs grows by (1+s).  The quality
      // factor degrades by roughly (1-s)/(1+s).
      const double s = severity.shorted_turn_fraction;
      LCOSC_REQUIRE(s > 0.0 && s < 1.0, "shorted turn fraction must be in (0,1)");
      out.config.inductance *= (1.0 - s) * (1.0 - s);
      out.config.series_resistance *= 1.0 + s;
      break;
    }
    case TankFault::IncreasedResistance:
      LCOSC_REQUIRE(severity.resistance_factor > 1.0, "resistance factor must exceed 1");
      out.config.series_resistance *= severity.resistance_factor;
      break;
    case TankFault::MissingCosc1:
      out.config.capacitance1 = severity.parasitic_capacitance;
      break;
    case TankFault::MissingCosc2:
      out.config.capacitance2 = severity.parasitic_capacitance;
      break;
    case TankFault::DegradedCosc1:
      LCOSC_REQUIRE(severity.capacitance_factor > 0.0 && severity.capacitance_factor < 1.0,
                    "capacitance factor must be in (0,1)");
      out.config.capacitance1 *= severity.capacitance_factor;
      break;
  }
  return out;
}

}  // namespace lcosc::tank
