// The external LC resonance network of the sensor (paper Fig. 1):
// the excitation coil Losc with series loss Rs between the LC1 and LC2
// pins, and the two capacitors Cosc1/Cosc2 from the pins to (AC) ground.
//
// Derived quantities follow the paper's Section 2:
//   - effective series capacitance  Ceff = C1*C2/(C1+C2)     (= C/2 for C1=C2)
//   - resonance                     w0   = 1/sqrt(L*Ceff)    (= sqrt(2/(L*C)))
//   - quality factor                Q    = w0*L/Rs
//   - differential parallel loss    Rp   = L/(Ceff*Rs)       (= 2L/(C*Rs))
//   - critical transconductance     Gm0  = 2/Rp = Rs*C/L     (Eq. 1)
// The factor 2 between Gm0 and 1/Rp reflects the cross-coupled driver: a
// stage transconductance Gm presents only Gm/2 of negative conductance
// across the differential port.
#pragma once

namespace lcosc::tank {

struct TankConfig {
  double inductance = 0.0;     // Losc [H]
  double capacitance1 = 0.0;   // Cosc1 [F]
  double capacitance2 = 0.0;   // Cosc2 [F]
  double series_resistance = 0.0;  // Rs [ohm]
};

class RlcTank {
 public:
  explicit RlcTank(TankConfig config);

  [[nodiscard]] const TankConfig& config() const { return config_; }
  [[nodiscard]] double inductance() const { return config_.inductance; }
  [[nodiscard]] double capacitance1() const { return config_.capacitance1; }
  [[nodiscard]] double capacitance2() const { return config_.capacitance2; }
  [[nodiscard]] double series_resistance() const { return config_.series_resistance; }

  // C1 in series with C2 (the loop capacitance seen by the inductor).
  [[nodiscard]] double effective_capacitance() const;

  [[nodiscard]] double angular_resonance() const;  // w0 [rad/s]
  [[nodiscard]] double resonance_frequency() const;  // f0 [Hz]
  [[nodiscard]] double quality_factor() const;       // Q = w0 L / Rs

  // Equivalent parallel resistance across the LC1-LC2 differential port at
  // resonance (series-to-parallel transformation, valid for Q >> 1).
  [[nodiscard]] double parallel_resistance() const;

  // Critical per-stage transconductance for sustained oscillation (Eq. 1).
  [[nodiscard]] double critical_gm() const;

  // Energy stored at differential amplitude A (peak LC1-LC2 voltage).
  [[nodiscard]] double stored_energy(double amplitude) const;

  // Power dissipated at differential amplitude A (peak), Eq. 2.
  [[nodiscard]] double dissipated_power(double amplitude) const;

 private:
  TankConfig config_;
};

// Construct a tank from target resonance frequency, quality factor and
// inductance, with symmetric capacitors (the designer-facing handle: the
// paper specifies 2-5 MHz and two decades of Q).
[[nodiscard]] TankConfig design_tank(double frequency_hz, double quality_factor,
                                     double inductance);

// The paper's headline operating envelope as ready-made tank presets.
[[nodiscard]] TankConfig typical_high_q_tank();   // Q ~ 100 @ 4 MHz
[[nodiscard]] TankConfig typical_low_q_tank();    // Q ~ 2   @ 4 MHz
[[nodiscard]] TankConfig typical_mid_q_tank();    // Q ~ 20  @ 4 MHz

}  // namespace lcosc::tank
