// N mutually coupled coils: the general magnetics behind the sensor
// (excitation coil + receiving coils + the redundant partner's coil).
//
//   v = L di/dt   with   L[i][j] = k_ij sqrt(L_i L_j)
//
// The class validates physical realizability (symmetric, positive
// definite L) and precomputes the inverse so system models can map coil
// voltages to current derivatives each integration step in O(N^2).
#pragma once

#include <vector>

#include "numeric/matrix.h"

namespace lcosc::tank {

class InductanceMatrix {
 public:
  // Self inductances [H] and the symmetric coupling-factor matrix k
  // (diagonal ignored, |k_ij| < 1).  Throws ConfigError if the resulting
  // inductance matrix is not positive definite (unphysical couplings).
  InductanceMatrix(std::vector<double> self_inductances, const Matrix& coupling);

  // Convenience: N coils with one common pairwise coupling factor.
  static InductanceMatrix uniform(std::vector<double> self_inductances, double coupling);

  [[nodiscard]] std::size_t coil_count() const { return self_.size(); }
  [[nodiscard]] double self_inductance(std::size_t i) const { return self_[i]; }
  [[nodiscard]] double mutual(std::size_t i, std::size_t j) const { return l_(i, j); }

  // di/dt for the given coil voltages.
  [[nodiscard]] Vector current_derivatives(const Vector& voltages) const;

  // Magnetic energy 1/2 i^T L i for the given coil currents.
  [[nodiscard]] double stored_energy(const Vector& currents) const;

  // Flux linkage of each coil for the given currents (lambda = L i).
  [[nodiscard]] Vector flux_linkage(const Vector& currents) const;

 private:
  std::vector<double> self_;
  Matrix l_;      // full inductance matrix
  Matrix l_inv_;  // its inverse
};

}  // namespace lcosc::tank
