#include "tank/inductance_matrix.h"

#include <cmath>

#include "common/error.h"
#include "numeric/lu.h"

namespace lcosc::tank {

InductanceMatrix::InductanceMatrix(std::vector<double> self_inductances,
                                   const Matrix& coupling)
    : self_(std::move(self_inductances)) {
  const std::size_t n = self_.size();
  LCOSC_REQUIRE(n >= 1, "need at least one coil");
  LCOSC_REQUIRE(coupling.rows() == n && coupling.cols() == n,
                "coupling matrix size must match the coil count");
  for (const double l : self_) LCOSC_REQUIRE(l > 0.0, "self inductances must be positive");

  l_.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    l_(i, i) = self_[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      LCOSC_REQUIRE(std::abs(coupling(i, j) - coupling(j, i)) < 1e-12,
                    "coupling matrix must be symmetric");
      LCOSC_REQUIRE(std::abs(coupling(i, j)) < 1.0, "coupling magnitudes must be below 1");
      const double m = coupling(i, j) * std::sqrt(self_[i] * self_[j]);
      l_(i, j) = m;
      l_(j, i) = m;
    }
  }

  // Positive definiteness via Cholesky-style elimination: all pivots of
  // the symmetric LU must be positive.
  Matrix chol = l_;
  for (std::size_t k = 0; k < n; ++k) {
    LCOSC_REQUIRE(chol(k, k) > 0.0,
                  "inductance matrix is not positive definite (unphysical couplings)");
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = chol(i, k) / chol(k, k);
      for (std::size_t j = k; j < n; ++j) chol(i, j) -= factor * chol(k, j);
    }
  }

  // Invert via LU column solves.
  const LuDecomposition lu(l_);
  LCOSC_REQUIRE(!lu.singular(), "inductance matrix is singular");
  l_inv_.resize(n, n);
  Vector unit(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    unit.assign(n, 0.0);
    unit[c] = 1.0;
    const Vector col = lu.solve(unit);
    for (std::size_t r = 0; r < n; ++r) l_inv_(r, c) = col[r];
  }
}

InductanceMatrix InductanceMatrix::uniform(std::vector<double> self_inductances,
                                           double coupling) {
  const std::size_t n = self_inductances.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) k(i, j) = coupling;
    }
  }
  return InductanceMatrix(std::move(self_inductances), k);
}

Vector InductanceMatrix::current_derivatives(const Vector& voltages) const {
  LCOSC_REQUIRE(voltages.size() == self_.size(), "voltage vector size mismatch");
  return l_inv_.multiply(voltages);
}

double InductanceMatrix::stored_energy(const Vector& currents) const {
  LCOSC_REQUIRE(currents.size() == self_.size(), "current vector size mismatch");
  const Vector li = l_.multiply(currents);
  return 0.5 * dot(currents, li);
}

Vector InductanceMatrix::flux_linkage(const Vector& currents) const {
  LCOSC_REQUIRE(currents.size() == self_.size(), "current vector size mismatch");
  return l_.multiply(currents);
}

}  // namespace lcosc::tank
