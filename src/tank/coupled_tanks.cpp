#include "tank/coupled_tanks.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::tank {

CoupledTanks::CoupledTanks(CoupledTanksConfig config) : config_(config) {
  LCOSC_REQUIRE(std::abs(config_.coupling) < 1.0, "coupling factor magnitude must be below 1");
  // Validate both tanks through the RlcTank invariants.
  const RlcTank t1(config_.tank1);
  const RlcTank t2(config_.tank2);
  const double l1 = t1.inductance();
  const double l2 = t2.inductance();
  mutual_ = config_.coupling * std::sqrt(l1 * l2);

  const double det = l1 * l2 - mutual_ * mutual_;
  LCOSC_REQUIRE(det > 0.0, "inductance matrix must be positive definite");
  inv_l_ = {l2 / det, -mutual_ / det, -mutual_ / det, l1 / det};
}

std::array<double, 2> CoupledTanks::current_derivatives(double v1, double v2) const {
  return {inv_l_[0] * v1 + inv_l_[1] * v2, inv_l_[2] * v1 + inv_l_[3] * v2};
}

std::array<double, 2> CoupledTanks::coupled_mode_frequencies() const {
  const double f0 = 0.5 * (resonance1() + resonance2());
  const double k = std::abs(config_.coupling);
  return {f0 / std::sqrt(1.0 + k), f0 / std::sqrt(1.0 - k)};
}

}  // namespace lcosc::tank
