// Magnetically coupled excitation coils of the redundant dual system
// (paper Fig. 9): two tanks whose inductors share a coupling factor k.
//
//   v_L1 = L1 di1/dt + M di2/dt
//   v_L2 = M  di1/dt + L2 di2/dt     with M = k sqrt(L1 L2)
//
// The inverse inductance matrix is precomputed so the system ODE can get
// (di1/dt, di2/dt) from the two loop voltages in O(1).
#pragma once

#include <array>

#include "tank/rlc_tank.h"

namespace lcosc::tank {

struct CoupledTanksConfig {
  TankConfig tank1;
  TankConfig tank2;
  double coupling = 0.2;  // |k| < 1
};

class CoupledTanks {
 public:
  explicit CoupledTanks(CoupledTanksConfig config);

  [[nodiscard]] const CoupledTanksConfig& config() const { return config_; }
  [[nodiscard]] double mutual_inductance() const { return mutual_; }

  // Map loop voltages (v1, v2) across the two inductors to the current
  // derivatives (di1/dt, di2/dt).
  [[nodiscard]] std::array<double, 2> current_derivatives(double v1, double v2) const;

  // Resonance of each tank in isolation (coupling shifts these; the paper
  // runs both systems at the same frequency).
  [[nodiscard]] double resonance1() const { return RlcTank(config_.tank1).resonance_frequency(); }
  [[nodiscard]] double resonance2() const { return RlcTank(config_.tank2).resonance_frequency(); }

  // Split resonance modes of the coupled pair for identical tanks:
  // f_low = f0/sqrt(1+k), f_high = f0/sqrt(1-k).
  [[nodiscard]] std::array<double, 2> coupled_mode_frequencies() const;

 private:
  CoupledTanksConfig config_;
  double mutual_ = 0.0;
  // Inverse of [[L1, M], [M, L2]].
  std::array<double, 4> inv_l_{};
};

}  // namespace lcosc::tank
