#include "tank/rlc_tank.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"

namespace lcosc::tank {

using namespace lcosc::literals;

RlcTank::RlcTank(TankConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.inductance > 0.0, "tank inductance must be positive");
  LCOSC_REQUIRE(config_.capacitance1 > 0.0 && config_.capacitance2 > 0.0,
                "tank capacitances must be positive");
  LCOSC_REQUIRE(config_.series_resistance > 0.0, "tank series resistance must be positive");
}

double RlcTank::effective_capacitance() const {
  const double c1 = config_.capacitance1;
  const double c2 = config_.capacitance2;
  return c1 * c2 / (c1 + c2);
}

double RlcTank::angular_resonance() const {
  return 1.0 / std::sqrt(config_.inductance * effective_capacitance());
}

double RlcTank::resonance_frequency() const { return angular_resonance() / kTwoPi; }

double RlcTank::quality_factor() const {
  return angular_resonance() * config_.inductance / config_.series_resistance;
}

double RlcTank::parallel_resistance() const {
  return config_.inductance / (effective_capacitance() * config_.series_resistance);
}

double RlcTank::critical_gm() const { return 2.0 / parallel_resistance(); }

double RlcTank::stored_energy(double amplitude) const {
  LCOSC_REQUIRE(amplitude >= 0.0, "amplitude must be non-negative");
  // At the voltage peak the full energy sits in the series capacitance.
  return 0.5 * effective_capacitance() * amplitude * amplitude;
}

double RlcTank::dissipated_power(double amplitude) const {
  LCOSC_REQUIRE(amplitude >= 0.0, "amplitude must be non-negative");
  // Eq. 2 with the RMS of a sine: P = (A/sqrt(2))^2 / Rp.
  return 0.5 * amplitude * amplitude / parallel_resistance();
}

TankConfig design_tank(double frequency_hz, double quality_factor, double inductance) {
  LCOSC_REQUIRE(frequency_hz > 0.0, "frequency must be positive");
  LCOSC_REQUIRE(quality_factor > 0.0, "quality factor must be positive");
  LCOSC_REQUIRE(inductance > 0.0, "inductance must be positive");
  const double w0 = kTwoPi * frequency_hz;
  TankConfig config;
  config.inductance = inductance;
  // Symmetric capacitors: Ceff = C/2 = 1/(w0^2 L).
  const double c_eff = 1.0 / (w0 * w0 * inductance);
  config.capacitance1 = 2.0 * c_eff;
  config.capacitance2 = 2.0 * c_eff;
  config.series_resistance = w0 * inductance / quality_factor;
  return config;
}

// Preset inductance 3.3 uH: at 4 MHz this puts the parallel loss Rp of a
// Q in [1.5, 150] tank inside the span the DAC's 2.7 V operating point can
// serve with codes 16..127 (see DESIGN.md, "key modelling decisions").
TankConfig typical_high_q_tank() { return design_tank(4.0_MHz, 100.0, 3.3_uH); }
TankConfig typical_low_q_tank() { return design_tank(4.0_MHz, 2.0, 3.3_uH); }
TankConfig typical_mid_q_tank() { return design_tank(4.0_MHz, 20.0, 3.3_uH); }

}  // namespace lcosc::tank
