// LU decomposition with partial pivoting; the linear kernel behind both the
// MNA circuit solver and the Newton iteration.
#pragma once

#include "numeric/matrix.h"

namespace lcosc {

// Factorization of a square matrix A as P*A = L*U.  Construction performs
// the decomposition; solve() then back-substitutes for arbitrary rhs.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  // True if a pivot fell below the singularity threshold.
  [[nodiscard]] bool singular() const { return singular_; }

  // Estimated reciprocal condition indicator: min |pivot| / max |pivot|.
  [[nodiscard]] double pivot_ratio() const { return pivot_ratio_; }

  // Solve A x = b.  Throws ConvergenceError if the matrix was singular.
  [[nodiscard]] Vector solve(const Vector& b) const;

  // Solve in place into `x` (sizes must match); returns false if singular
  // instead of throwing, for callers that retry with regularization.
  bool try_solve(const Vector& b, Vector& x) const;

  // Determinant of A (product of pivots with permutation sign).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;                    // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;
  bool singular_ = false;
  int permutation_sign_ = 1;
  double pivot_ratio_ = 0.0;
};

// One-shot convenience: solve A x = b, throwing on singular A.
[[nodiscard]] Vector solve_linear_system(Matrix a, const Vector& b);

}  // namespace lcosc
