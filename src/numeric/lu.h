// LU decomposition with partial pivoting; the linear kernel behind both the
// MNA circuit solver and the Newton iteration.
#pragma once

#include "numeric/matrix.h"

namespace lcosc {

// Factorization of a square matrix A as P*A = L*U.  Construction performs
// the decomposition; solve() then back-substitutes for arbitrary rhs.
//
// For solver hot loops the object doubles as a reusable workspace: a
// default-constructed instance can be re-factored in place with factor(),
// which recycles the packed storage and permutation vector across calls
// (no allocation once the size is stable).  Callers that keep the factor
// alive can re-solve any number of right-hand sides against it -- the
// keep-factor path behind the transient solver's LU reuse.
class LuDecomposition {
 public:
  // Empty workspace; factor() must be called before solving.
  LuDecomposition() = default;

  explicit LuDecomposition(Matrix a);

  // (Re)factor `a` in place, reusing the internal storage.  Returns true
  // on success, false if a pivot fell below the singularity threshold
  // (the factor is then unusable until the next successful factor()).
  bool factor(const Matrix& a);

  // True if a pivot fell below the singularity threshold (or no matrix
  // has been factored yet).
  [[nodiscard]] bool singular() const { return singular_; }

  // Estimated reciprocal condition indicator: min |pivot| / max |pivot|.
  [[nodiscard]] double pivot_ratio() const { return pivot_ratio_; }

  // Solve A x = b.  Throws ConvergenceError if the matrix was singular.
  [[nodiscard]] Vector solve(const Vector& b) const;

  // Solve in place into `x` (sizes must match); returns false if singular
  // instead of throwing, for callers that retry with regularization.
  bool try_solve(const Vector& b, Vector& x) const;

  // Determinant of A (product of pivots with permutation sign).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  bool factor_in_place();

  Matrix lu_;                    // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;
  bool singular_ = true;         // nothing factored yet
  int permutation_sign_ = 1;
  double pivot_ratio_ = 0.0;
};

// One-shot convenience: solve A x = b, throwing on singular A.
[[nodiscard]] Vector solve_linear_system(Matrix a, const Vector& b);

}  // namespace lcosc
