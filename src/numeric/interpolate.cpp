#include "numeric/interpolate.h"

#include <algorithm>

#include "common/error.h"

namespace lcosc {

PwlTable::PwlTable(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
  LCOSC_REQUIRE(points_.size() >= 2, "PWL table needs at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    LCOSC_REQUIRE(points_[i].first > points_[i - 1].first,
                  "PWL table x values must be strictly increasing");
  }
}

double PwlTable::operator()(double x) const {
  LCOSC_REQUIRE(!points_.empty(), "PWL table is empty");
  // Find the segment whose right end is the first x-value > x.
  auto it = std::upper_bound(points_.begin(), points_.end(), x,
                             [](double v, const auto& p) { return v < p.first; });
  std::size_t hi = static_cast<std::size_t>(it - points_.begin());
  if (hi == 0) hi = 1;                       // extrapolate below using first segment
  if (hi == points_.size()) hi = points_.size() - 1;  // above using last segment
  const auto& [x0, y0] = points_[hi - 1];
  const auto& [x1, y1] = points_[hi];
  const double t = (x - x0) / (x1 - x0);
  return y0 + (y1 - y0) * t;
}

void SampledCurve::reserve(std::size_t n) {
  xs_.reserve(n);
  ys_.reserve(n);
}

void SampledCurve::append(double x, double y) {
  LCOSC_REQUIRE(xs_.empty() || x > xs_.back(),
                "SampledCurve abscissa must be strictly increasing");
  xs_.push_back(x);
  ys_.push_back(y);
}

void SampledCurve::clear() {
  xs_.clear();
  ys_.clear();
}

double SampledCurve::front_x() const {
  LCOSC_REQUIRE(!xs_.empty(), "SampledCurve is empty");
  return xs_.front();
}

double SampledCurve::back_x() const {
  LCOSC_REQUIRE(!xs_.empty(), "SampledCurve is empty");
  return xs_.back();
}

double SampledCurve::operator()(double x) const {
  LCOSC_REQUIRE(!xs_.empty(), "SampledCurve is empty");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  // First knot strictly greater than x; the clamps above guarantee an
  // interior segment.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const double x0 = xs_[hi - 1];
  const double x1 = xs_[hi];
  // Exact-knot hit: return the stored ordinate, not x0 + 0 * slope.
  if (x == x0) return ys_[hi - 1];
  return ys_[hi - 1] + (ys_[hi] - ys_[hi - 1]) * ((x - x0) / (x1 - x0));
}

double PwlTable::derivative(double x) const {
  LCOSC_REQUIRE(!points_.empty(), "PWL table is empty");
  auto it = std::upper_bound(points_.begin(), points_.end(), x,
                             [](double v, const auto& p) { return v < p.first; });
  std::size_t hi = static_cast<std::size_t>(it - points_.begin());
  if (hi == 0) hi = 1;
  if (hi == points_.size()) hi = points_.size() - 1;
  const auto& [x0, y0] = points_[hi - 1];
  const auto& [x1, y1] = points_[hi];
  return (y1 - y0) / (x1 - x0);
}

}  // namespace lcosc
