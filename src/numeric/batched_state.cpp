#include "numeric/batched_state.h"

#include "common/error.h"

namespace lcosc {

BatchedState::BatchedState(std::size_t channels, std::size_t lanes)
    : channels_(channels),
      lanes_(lanes),
      data_(channels * lanes, 0.0),
      active_(lanes, 1),
      active_count_(lanes) {
  LCOSC_REQUIRE(channels > 0, "batched state needs at least one channel");
  LCOSC_REQUIRE(lanes > 0, "batched state needs at least one lane");
}

void BatchedState::deactivate(std::size_t lane) {
  LCOSC_REQUIRE(lane < lanes_, "lane index out of range");
  if (active_[lane] != 0) {
    active_[lane] = 0;
    --active_count_;
  }
}

}  // namespace lcosc
