// Explicit and implicit ODE integrators for the behavioral transient engine.
//
// The oscillator macro-models are small non-stiff systems (3-6 states) that
// must be integrated for tens of thousands of RF cycles; fixed-step RK4 with
// ~60+ steps per cycle is both fast and accurate there.  Adaptive RKF45 is
// provided for validation sweeps and the trapezoidal rule for stiff
// detector states (large RC time constants next to the RF period).
#pragma once

#include <functional>

#include "numeric/matrix.h"

namespace lcosc {

// dx/dt = f(t, x) evaluated into dxdt (preallocated to x.size()).
using OdeRhs = std::function<void(double t, const Vector& x, Vector& dxdt)>;

// Called after every accepted step; return false to stop integration early.
using OdeObserver = std::function<bool(double t, const Vector& x)>;

struct OdeResult {
  // Final time actually reached (== t_end unless the observer stopped it).
  double t_end = 0.0;
  Vector state;
  std::size_t steps_taken = 0;
  std::size_t steps_rejected = 0;  // adaptive methods only
};

// --- fixed-step classic Runge-Kutta 4 --------------------------------------

struct Rk4Options {
  double step = 1e-9;
};

OdeResult integrate_rk4(const OdeRhs& rhs, double t0, double t1, Vector x0,
                        const Rk4Options& options, const OdeObserver& observer = nullptr);

// --- adaptive Runge-Kutta-Fehlberg 4(5) -------------------------------------

struct Rkf45Options {
  double initial_step = 1e-9;
  double min_step = 1e-15;
  double max_step = 1e-6;
  double abs_tolerance = 1e-9;
  double rel_tolerance = 1e-7;
  std::size_t max_steps = 100'000'000;
};

OdeResult integrate_rkf45(const OdeRhs& rhs, double t0, double t1, Vector x0,
                          const Rkf45Options& options, const OdeObserver& observer = nullptr);

// --- fixed-step trapezoidal rule (implicit, A-stable) ------------------------
//
// The nonlinear stage equation is solved with fixed-point iteration falling
// back to a numerically differentiated Newton step; adequate for the mildly
// nonlinear macro-models used here.

struct TrapezoidalOptions {
  double step = 1e-9;
  int max_corrector_iterations = 50;
  double corrector_tolerance = 1e-12;

  // Adaptive LTE control (default off: the fixed-step loop is unchanged).
  // When on, `step` is the initial/output-scale step; the actual step is
  // chosen by step doubling with a 2nd-order PI controller and quantized
  // onto a power-of-two geometric grid.  The observer then sees accepted
  // internal steps (variable spacing) instead of the fixed grid.
  bool adaptive = false;
  double abs_tolerance = 1e-9;
  double rel_tolerance = 1e-6;
  double min_step = 0.0;  // 0 = step / 4096
  double max_step = 0.0;  // 0 = 64 * step
  int step_grid_per_octave = 4;
};

OdeResult integrate_trapezoidal(const OdeRhs& rhs, double t0, double t1, Vector x0,
                                const TrapezoidalOptions& options,
                                const OdeObserver& observer = nullptr);

}  // namespace lcosc
