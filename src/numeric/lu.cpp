#include "numeric/lu.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace lcosc {
namespace {
constexpr double kSingularThreshold = 1e-300;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  (void)factor_in_place();
}

bool LuDecomposition::factor(const Matrix& a) {
  lu_ = a;  // copy-assign reuses the existing storage when sizes match
  return factor_in_place();
}

bool LuDecomposition::factor_in_place() {
  LCOSC_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  singular_ = false;
  permutation_sign_ = 1;

  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
      permutation_sign_ = -permutation_sign_;
    }
    const double pivot = lu_(k, k);
    if (std::abs(pivot) < kSingularThreshold) {
      singular_ = true;
      pivot_ratio_ = 0.0;
      return false;
    }
    min_pivot = std::min(min_pivot, std::abs(pivot));
    max_pivot = std::max(max_pivot, std::abs(pivot));

    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
  pivot_ratio_ = (max_pivot > 0.0) ? min_pivot / max_pivot : 0.0;
  return true;
}

bool LuDecomposition::try_solve(const Vector& b, Vector& x) const {
  if (singular_) return false;
  const std::size_t n = lu_.rows();
  LCOSC_REQUIRE(b.size() == n, "rhs size mismatch");
  x.resize(n);

  // Apply permutation and forward-substitute through L.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back-substitute through U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return true;
}

Vector LuDecomposition::solve(const Vector& b) const {
  Vector x;
  if (!try_solve(b, x)) throw ConvergenceError("LU solve on a singular matrix");
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = permutation_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve_linear_system(Matrix a, const Vector& b) {
  const LuDecomposition lu(std::move(a));
  return lu.solve(b);
}

}  // namespace lcosc
